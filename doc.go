// Package cmpsim reproduces "Interactions Between Compression and
// Prefetching in Chip Multiprocessors" (Alameldeen & Wood, HPCA 2007)
// as a from-scratch Go library: a trace-driven CMP memory-system timing
// simulator with Frequent Pattern Compression, a decoupled
// variable-segment compressed shared L2, MSI coherence, link
// compression over flit-based pins, Power4-style stride prefetching and
// the paper's adaptive prefetch throttling, plus synthetic models of the
// paper's eight benchmarks and drivers that regenerate every table and
// figure of its evaluation.
//
// The implementation lives under internal/: see internal/core for the
// experiment-facing API, cmd/cmpsim and cmd/experiments for the
// binaries, and the examples/ directory for runnable walkthroughs.
// bench_test.go in this directory holds one benchmark per table and
// figure of the paper, plus ablation benchmarks for the design choices
// discussed in DESIGN.md.
package cmpsim
