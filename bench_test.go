// Benchmarks regenerating the paper's tables and figures, one per
// exhibit, plus ablations of the design choices called out in DESIGN.md.
//
// Each benchmark runs its experiment driver on a scaled-down system
// (4 cores, 2 MB L2, short warmup) so `go test -bench=.` completes in
// minutes; cmd/experiments runs the same drivers at paper scale. The
// key headline numbers are attached with b.ReportMetric so bench output
// doubles as a compact results table.
package cmpsim_test

import (
	"testing"

	"cmpsim/internal/core"
)

// benchOptions is the scaled-down system all exhibit benchmarks use.
// Workers is left 0: the drivers fan seed runs out on the process-wide
// scheduler (one worker per CPU) and share its memoized point cache
// across exhibits, exactly as cmd/experiments does — so e.g. the
// compression benches reuse each other's points, and rerunning a bench
// (b.N > 1) measures the cache, not the simulator.
func benchOptions() core.Options {
	return core.Options{
		Cores:         4,
		Seeds:         1,
		Warmup:        300_000,
		Measure:       150_000,
		BandwidthGBps: 10, // half the pins for half the cores
		L2MB:          2,
	}
}

// The scheduler benchmarks run the same study on private, empty caches
// so the serial/parallel wall-clock ratio measures true fan-out speedup
// (the acceptance comparison), uncontaminated by cross-bench caching.

func BenchmarkSchedulerSerial(b *testing.B) {
	o := benchOptions()
	o.Workers = 1
	for i := 0; i < b.N; i++ {
		s := core.NewScheduler(1)
		s.CompressionStudy(core.CommercialBenchmarks(), o)
		s.Close()
	}
}

func BenchmarkSchedulerParallel(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		s := core.NewScheduler(0)
		s.CompressionStudy(core.CommercialBenchmarks(), o)
		s.Close()
	}
}

func BenchmarkTable3CompressionRatios(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.CompressionStudy(core.Benchmarks(), o)
		for _, r := range rows {
			if r.Benchmark == "jbb" {
				b.ReportMetric(r.Ratio, "jbb-ratio")
			}
			if r.Benchmark == "apsi" {
				b.ReportMetric(r.Ratio, "apsi-ratio")
			}
		}
	}
}

func BenchmarkFig3MissRateReduction(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.CompressionStudy(core.CommercialBenchmarks(), o)
		for _, r := range rows {
			if r.Benchmark == "apache" {
				b.ReportMetric(r.MissReductionPct, "apache-missred-%")
			}
		}
	}
}

func BenchmarkFig4BandwidthDemand(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.BandwidthStudy(core.Benchmarks(), o)
		for _, r := range rows {
			if r.Benchmark == "fma3d" {
				b.ReportMetric(r.None, "fma3d-GBps")
				if r.None > 0 {
					b.ReportMetric((1-r.Both/r.None)*100, "fma3d-linkred-%")
				}
			}
		}
	}
}

func BenchmarkFig5CompressionSpeedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.CompressionStudy(core.CommercialBenchmarks(), o)
		for _, r := range rows {
			if r.Benchmark == "zeus" {
				b.ReportMetric(r.SpeedupBothPct, "zeus-compr-%")
			}
		}
	}
}

func BenchmarkTable4PrefetchProperties(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.PrefetchProperties([]string{"zeus", "mgrid"}, o)
		for _, r := range rows {
			if r.Benchmark == "mgrid" {
				b.ReportMetric(r.L2.AccuracyPct, "mgrid-L2acc-%")
				b.ReportMetric(r.L1D.CoveragePct, "mgrid-L1Dcov-%")
			}
		}
	}
}

func BenchmarkFig6PrefetchSpeedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.PrefetchStudy([]string{"zeus", "jbb"}, o)
		for _, r := range rows {
			switch r.Benchmark {
			case "zeus":
				b.ReportMetric(r.SpeedupPct, "zeus-pf-%")
			case "jbb":
				b.ReportMetric(r.SpeedupPct, "jbb-pf-%")
				b.ReportMetric(r.AdaptiveSpeedupPct, "jbb-adaptive-%")
			}
		}
	}
}

func BenchmarkFig7BandwidthInteraction(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.InteractionStudy([]string{"zeus"}, o)
		b.ReportMetric(rows[0].BWBasePrefGrowthPct, "zeus-pf-bwgrowth-%")
		b.ReportMetric(rows[0].BWComprPrefGrowthPct, "zeus-pfcompr-bwgrowth-%")
	}
}

func BenchmarkFig8MissClassification(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.MissClassification([]string{"apache", "mgrid"}, o)
		for _, r := range rows {
			if r.Benchmark == "apache" {
				b.ReportMetric(r.EitherPct, "apache-overlap-%")
			}
		}
	}
}

func BenchmarkTable5Interactions(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.InteractionStudy([]string{"zeus", "jbb"}, o)
		for _, r := range rows {
			switch r.Benchmark {
			case "zeus":
				b.ReportMetric(r.InteractionPct, "zeus-interaction-%")
			case "jbb":
				b.ReportMetric(r.InteractionPct, "jbb-interaction-%")
			}
		}
	}
}

func BenchmarkFig10AdaptiveSpeedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.AdaptiveStudy([]string{"jbb"}, o)
		b.ReportMetric(rows[0].PrefPct, "jbb-pf-%")
		b.ReportMetric(rows[0].AdaptivePct, "jbb-adaptive-%")
		b.ReportMetric(rows[0].AdaptiveComprPct, "jbb-adcompr-%")
	}
}

func BenchmarkFig11BandwidthSweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.BandwidthSweep([]string{"zeus"}, []int{5, 10, 40}, o)
		b.ReportMetric(rows[0].InteractionPct[5], "zeus-inter-5GB-%")
		b.ReportMetric(rows[0].InteractionPct[40], "zeus-inter-40GB-%")
	}
}

func BenchmarkFig1CoreSweepZeus(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.CoreSweep("zeus", []int{1, 8}, o)
		b.ReportMetric(rows[0].PrefPct, "pf-1core-%")
		b.ReportMetric(rows[1].PrefPct, "pf-8core-%")
	}
}

func BenchmarkFig12CoreSweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := core.CoreSweep("jbb", []int{1, 8}, o)
		b.ReportMetric(rows[0].PrefPct, "jbb-pf-1core-%")
		b.ReportMetric(rows[1].PrefPct, "jbb-pf-8core-%")
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationNoVictimTags removes the extra-tag victim history the
// adaptive prefetcher uses for harmful-prefetch detection.
func BenchmarkAblationNoVictimTags(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		with := core.MustRun("jbb", core.AdaptivePf, o)
		o2 := o
		o2.UncompressedVictimTags = -1 // disable
		without := core.MustRun("jbb", core.AdaptivePf, o2)
		b.ReportMetric(core.Speedup(without, with), "with/without-victimtags")
	}
}

// BenchmarkAblationPrefetchDepth sweeps the L2 startup depth.
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		base := core.MustRun("zeus", core.Base, o)
		for _, depth := range []int{5, 25} {
			od := o
			od.L2PrefetchDepth = depth
			p := core.MustRun("zeus", core.Prefetch, od)
			if depth == 5 {
				b.ReportMetric((core.Speedup(base, p)-1)*100, "depth5-%")
			} else {
				b.ReportMetric((core.Speedup(base, p)-1)*100, "depth25-%")
			}
		}
	}
}

// BenchmarkAblationDecompressionPenalty sweeps the decompression
// latency to show how compression's benefit erodes.
func BenchmarkAblationDecompressionPenalty(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		base := core.MustRun("jbb", core.Base, o)
		for _, pen := range []float64{0, 5, 20} {
			op := o
			op.DecompressionCycles = pen
			op.DecompressionSet = true
			p := core.MustRun("jbb", core.Compression, op)
			switch pen {
			case 0:
				b.ReportMetric((core.Speedup(base, p)-1)*100, "pen0-%")
			case 5:
				b.ReportMetric((core.Speedup(base, p)-1)*100, "pen5-%")
			case 20:
				b.ReportMetric((core.Speedup(base, p)-1)*100, "pen20-%")
			}
		}
	}
}

// BenchmarkAblationTagCount compares the paper's 8-tag compressed sets
// against a 16-tag variant (more effective associativity headroom).
func BenchmarkAblationTagCount(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		base := core.MustRun("jbb", core.Base, o)
		for _, tags := range []int{8, 16} {
			ot := o
			ot.L2TagsPerSet = tags
			p := core.MustRun("jbb", core.Compression, ot)
			if tags == 8 {
				b.ReportMetric((core.Speedup(base, p)-1)*100, "tags8-%")
			} else {
				b.ReportMetric((core.Speedup(base, p)-1)*100, "tags16-%")
			}
		}
	}
}

// BenchmarkAblationSequentialBaseline compares the paper's stride
// prefetcher against the tagged sequential baseline: the stride engine
// must win on the non-unit-stride scientific code.
func BenchmarkAblationSequentialBaseline(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		base := core.MustRun("mgrid", core.Base, o)
		stride := core.MustRun("mgrid", core.Prefetch, o)
		oseq := o
		oseq.PrefetcherKind = "sequential"
		seq := core.MustRun("mgrid", core.Prefetch, oseq)
		b.ReportMetric((core.Speedup(base, stride)-1)*100, "stride-%")
		b.ReportMetric((core.Speedup(base, seq)-1)*100, "sequential-%")
	}
}

// BenchmarkAblationCounterProbe compares adaptive recovery probing
// against the paper's literal absorbing-zero counter, approximated by
// the depth-1 cap (see prefetch.Engine's probe documentation).
func BenchmarkAblationCounterProbe(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ad := core.MustRun("zeus", core.AdaptivePf, o)
		pf := core.MustRun("zeus", core.Prefetch, o)
		b.ReportMetric(core.Speedup(pf, ad), "adaptive/static")
	}
}
