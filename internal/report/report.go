// Package report renders the experiment drivers' results as the ASCII
// analogues of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"sort"

	"cmpsim/internal/core"
)

// failedCell renders a failed row's explicit marker. Studies degrade
// gracefully: a failed point produces a FAILED(reason) cell, never a
// silently-zero row.
func failedCell(reason string) string { return fmt.Sprintf("FAILED(%s)", reason) }

// Table3 prints the compression-ratio table.
func Table3(w io.Writer, rows []core.CompressionRow) {
	fmt.Fprintln(w, "Table 3: Cache compression ratios (effective size / 4 MB)")
	fmt.Fprintf(w, "  %-8s %8s %14s\n", "bench", "ratio", "effective MB")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %8.2f %14.2f\n", r.Benchmark, r.Ratio, r.Ratio*4)
	}
}

// Fig3 prints the miss-rate reduction chart data.
func Fig3(w io.Writer, rows []core.CompressionRow) {
	fmt.Fprintln(w, "Figure 3: L2 miss-rate reduction from cache compression (%)")
	fmt.Fprintf(w, "  %-8s %12s %12s %10s\n", "bench", "base /KI", "compr /KI", "reduction")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %12.2f %12.2f %9.1f%%\n",
			r.Benchmark, r.BaseMissPerKI, r.ComprMissPerKI, r.MissReductionPct)
	}
}

// Fig4 prints the pin-bandwidth demand chart data.
func Fig4(w io.Writer, rows []core.BandwidthRow) {
	fmt.Fprintln(w, "Figure 4: Pin bandwidth demand (GB/s), infinite pins")
	fmt.Fprintf(w, "  %-8s %8s %8s %8s %8s\n", "bench", "none", "cache", "link", "both")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %8.2f %8.2f %8.2f %8.2f\n",
			r.Benchmark, r.None, r.CacheOnly, r.LinkOnly, r.Both)
	}
}

// Fig5 prints the compression speedup chart data.
func Fig5(w io.Writer, rows []core.CompressionRow) {
	fmt.Fprintln(w, "Figure 5: Compression speedup (%) relative to base")
	fmt.Fprintf(w, "  %-8s %10s %10s %10s\n", "bench", "cache", "link", "both")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %+9.1f%% %+9.1f%% %+9.1f%%\n",
			r.Benchmark, r.SpeedupCachePct, r.SpeedupLinkPct, r.SpeedupBothPct)
	}
}

// Table4 prints the prefetching-properties table.
func Table4(w io.Writer, rows []core.PrefetchPropsRow) {
	fmt.Fprintln(w, "Table 4: Prefetching properties (rate /KI, coverage %, accuracy %)")
	fmt.Fprintf(w, "  %-8s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s\n",
		"bench", "I-rate", "I-cov", "I-acc", "D-rate", "D-cov", "D-acc", "2-rate", "2-cov", "2-acc")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s | %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s | %6.2f %6.1f %6.1f | %6.2f %6.1f %6.1f | %6.2f %6.1f %6.1f\n",
			r.Benchmark,
			r.L1I.RatePer1000, r.L1I.CoveragePct, r.L1I.AccuracyPct,
			r.L1D.RatePer1000, r.L1D.CoveragePct, r.L1D.AccuracyPct,
			r.L2.RatePer1000, r.L2.CoveragePct, r.L2.AccuracyPct)
	}
}

// Fig6 prints the prefetching speedup chart data.
func Fig6(w io.Writer, rows []core.PrefetchSpeedupRow) {
	fmt.Fprintln(w, "Figure 6: Prefetching speedup (%) relative to no prefetching")
	fmt.Fprintf(w, "  %-8s %10s %12s\n", "bench", "stride", "adaptive")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %+9.1f%% %+11.1f%%\n", r.Benchmark, r.SpeedupPct, r.AdaptiveSpeedupPct)
	}
}

// Fig7 prints the normalized bandwidth-demand growth.
func Fig7(w io.Writer, rows []core.InteractionRow) {
	fmt.Fprintln(w, "Figure 7: Bandwidth demand growth over base (%), infinite pins")
	fmt.Fprintf(w, "  %-8s %12s %14s\n", "bench", "pf alone", "pf+compression")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %+11.1f%% %+13.1f%%\n",
			r.Benchmark, r.BWBasePrefGrowthPct, r.BWComprPrefGrowthPct)
	}
}

// Fig8 prints the L2 miss classification.
func Fig8(w io.Writer, rows []core.MissClassRow) {
	fmt.Fprintln(w, "Figure 8: L2 miss/prefetch breakdown (% of base demand misses)")
	fmt.Fprintf(w, "  %-8s %9s %9s %9s %8s %9s %9s\n",
		"bench", "unavoid", "only-C", "only-P", "either", "pf-kept", "pf-avoid")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %8.1f%% %8.1f%% %8.1f%% %7.1f%% %8.1f%% %8.1f%%\n",
			r.Benchmark, r.NotAvoidedPct, r.OnlyComprPct, r.OnlyPrefPct,
			r.EitherPct, r.PrefFetchPct, r.PrefAvoidedPct)
	}
}

// Table5 prints the speedups-and-interactions table (also Figure 9).
func Table5(w io.Writer, rows []core.InteractionRow) {
	fmt.Fprintln(w, "Table 5 / Figure 9: Speedups and interactions (%)")
	fmt.Fprintf(w, "  %-8s %8s %8s %8s %10s %12s\n",
		"bench", "pref", "compr", "both", "ad+compr", "interaction")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %+7.1f%% %+7.1f%% %+7.1f%% %+9.1f%% %+11.1f%%\n",
			r.Benchmark, r.PrefPct, r.ComprPct, r.BothPct, r.AdaptiveBothPct, r.InteractionPct)
	}
}

// Fig10 prints the adaptive-prefetching comparison.
func Fig10(w io.Writer, rows []core.AdaptiveRow) {
	fmt.Fprintln(w, "Figure 10: Prefetching vs adaptive prefetching speedup (%)")
	fmt.Fprintf(w, "  %-8s %8s %10s %10s %12s\n", "bench", "pf", "adaptive", "pf+compr", "adapt+compr")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s %+7.1f%% %+9.1f%% %+9.1f%% %+11.1f%%\n",
			r.Benchmark, r.PrefPct, r.AdaptivePct, r.PrefComprPct, r.AdaptiveComprPct)
	}
}

// Fig11 prints the interaction-vs-bandwidth sweep.
func Fig11(w io.Writer, rows []core.BandwidthSweepRow) {
	fmt.Fprintln(w, "Figure 11: Interaction (%) vs available pin bandwidth (GB/s)")
	if len(rows) == 0 {
		return
	}
	// Derive the bandwidth header from the first row that has data — a
	// failed first row carries no InteractionPct map.
	var bws []int
	for _, r := range rows {
		if r.Failed != "" {
			continue
		}
		for gb := range r.InteractionPct {
			bws = append(bws, gb)
		}
		break
	}
	sort.Ints(bws)
	fmt.Fprintf(w, "  %-8s", "bench")
	for _, gb := range bws {
		fmt.Fprintf(w, " %7dGB", gb)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-8s %s\n", r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-8s", r.Benchmark)
		for _, gb := range bws {
			fmt.Fprintf(w, " %+8.1f%%", r.InteractionPct[gb])
		}
		fmt.Fprintln(w)
	}
}

// CoreSweep prints a Figure 1 / Figure 12 panel.
func CoreSweep(w io.Writer, title string, rows []core.CoreSweepRow) {
	fmt.Fprintf(w, "%s: improvement (%%) over same-core-count base\n", title)
	fmt.Fprintf(w, "  %5s %9s %10s %9s %9s %10s\n", "cores", "pf", "adaptive", "compr", "pf+compr", "ad+compr")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %5d %s\n", r.Cores, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %5d %+8.1f%% %+9.1f%% %+8.1f%% %+8.1f%% %+9.1f%%\n",
			r.Cores, r.PrefPct, r.AdaptivePct, r.ComprPct, r.BothPct, r.AdBothPct)
	}
}

// CodecTable prints the codec bakeoff: Table 5's terms per registered
// codec, plus the interaction at the constrained-bandwidth point.
func CodecTable(w io.Writer, rows []core.CodecRow) {
	fmt.Fprintf(w, "Codec bakeoff: Table 5 terms per codec (%%), interaction also at %d GB/s\n",
		core.CodecStudyBandwidthGBps)
	fmt.Fprintf(w, "  %-6s %-8s %8s %8s %8s %12s %12s\n",
		"codec", "bench", "pref", "compr", "both", "interaction", "inter@bw")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-6s %-8s %s\n", r.Codec, r.Benchmark, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-6s %-8s %+7.1f%% %+7.1f%% %+7.1f%% %+11.1f%% %+11.1f%%\n",
			r.Codec, r.Benchmark, r.PrefPct, r.ComprPct, r.BothPct,
			r.InteractionPct, r.InteractionAtBWPct)
	}
}

// IrregularTable prints the irregular-suite study: Figure 6 / Table 5
// terms per (benchmark, prefetch engine) over the linked-data-structure
// workloads.
func IrregularTable(w io.Writer, rows []core.IrregularRow) {
	fmt.Fprintln(w, "Irregular suite: speedups (%) per prefetch engine, interaction per EQ 5")
	fmt.Fprintf(w, "  %-9s %-10s %8s %9s %8s %8s %9s %12s\n",
		"bench", "prefetcher", "pref", "adaptive", "compr", "both", "ad+compr", "interaction")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(w, "  %-9s %-10s %s\n", r.Benchmark, r.Prefetcher, failedCell(r.Failed))
			continue
		}
		fmt.Fprintf(w, "  %-9s %-10s %+7.1f%% %+8.1f%% %+7.1f%% %+7.1f%% %+8.1f%% %+11.1f%%\n",
			r.Benchmark, r.Prefetcher, r.PrefPct, r.AdaptivePct, r.ComprPct,
			r.BothPct, r.AdaptiveBothPct, r.InteractionPct)
	}
}
