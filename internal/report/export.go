package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cmpsim/internal/coherence"
	"cmpsim/internal/core"
	"cmpsim/internal/sim"
)

// WriteJSON renders any experiment's row slice as indented JSON, for
// downstream plotting. All row types in internal/core marshal cleanly.
func WriteJSON(w io.Writer, rows any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// CompressionCSV writes the compression study (Table 3 / Fig 3 / Fig 5).
func CompressionCSV(w io.Writer, rows []core.CompressionRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "ratio", "base_miss_per_ki", "compr_miss_per_ki",
		"miss_reduction_pct", "speedup_cache_pct", "speedup_link_pct", "speedup_both_pct",
		"failed",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Benchmark,
			f(r.Ratio), f(r.BaseMissPerKI), f(r.ComprMissPerKI),
			f(r.MissReductionPct), f(r.SpeedupCachePct), f(r.SpeedupLinkPct), f(r.SpeedupBothPct),
			r.Failed,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// InteractionCSV writes Table 5 / Figure 9 rows.
func InteractionCSV(w io.Writer, rows []core.InteractionRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "pref_pct", "compr_pct", "both_pct", "adaptive_both_pct",
		"interaction_pct", "bw_pref_growth_pct", "bw_prefcompr_growth_pct",
		"failed",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Benchmark, f(r.PrefPct), f(r.ComprPct), f(r.BothPct),
			f(r.AdaptiveBothPct), f(r.InteractionPct),
			f(r.BWBasePrefGrowthPct), f(r.BWComprPrefGrowthPct),
			r.Failed,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CoreSweepCSV writes Figure 1 / Figure 12 rows.
func CoreSweepCSV(w io.Writer, rows []core.CoreSweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "cores", "pref_pct", "adaptive_pct", "compr_pct",
		"both_pct", "adaptive_both_pct", "failed",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Benchmark, strconv.Itoa(r.Cores), f(r.PrefPct), f(r.AdaptivePct),
			f(r.ComprPct), f(r.BothPct), f(r.AdBothPct), r.Failed,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// BandwidthSweepCSV writes Figure 11 rows (long format: one line per
// benchmark × bandwidth).
func BandwidthSweepCSV(w io.Writer, rows []core.BandwidthSweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "bandwidth_gbps", "interaction_pct", "failed"}); err != nil {
		return err
	}
	for _, r := range rows {
		if r.Failed != "" {
			if err := cw.Write([]string{r.Benchmark, "", "", r.Failed}); err != nil {
				return err
			}
			continue
		}
		var bws []int
		for gb := range r.InteractionPct {
			bws = append(bws, gb)
		}
		sort.Ints(bws)
		for _, gb := range bws {
			if err := cw.Write([]string{
				r.Benchmark, strconv.Itoa(gb), f(r.InteractionPct[gb]), "",
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// TimelineMeta identifies which run a timeline belongs to; it is
// repeated on every exported record so files concatenate cleanly.
type TimelineMeta struct {
	Benchmark string `json:"benchmark"`
	Label     string `json:"label"`
	Seed      int64  `json:"seed"`
}

// timelineRecord is one JSONL line: the run identity plus one sample.
type timelineRecord struct {
	TimelineMeta
	sim.IntervalSample
}

// TimelineJSONL writes one JSON object per interval sample, suitable
// for streaming into jq or a dataframe loader.
func TimelineJSONL(w io.Writer, meta TimelineMeta, tl []sim.IntervalSample) error {
	enc := json.NewEncoder(w)
	for i := range tl {
		if err := enc.Encode(timelineRecord{meta, tl[i]}); err != nil {
			return err
		}
	}
	return nil
}

// TimelineCSVHeader is the column set TimelineCSV emits.
var TimelineCSVHeader = []string{
	"benchmark", "label", "seed", "index", "end_instr", "instructions",
	"cycles", "ipc", "l2_accesses", "l2_misses", "l2_miss_rate",
	"compression_ratio", "mean_l2_hit_latency", "offchip_bytes",
	"link_utilization", "link_queue_delay", "dram_queue_delay",
	"pf_l1i_rate_per_ki", "pf_l1i_accuracy",
	"pf_l1d_rate_per_ki", "pf_l1d_accuracy",
	"pf_l2_rate_per_ki", "pf_l2_accuracy",
	"cap_l1i", "cap_l1d", "cap_l2",
}

// TimelineCSV writes the timeline in long CSV form, one row per sample.
func TimelineCSV(w io.Writer, meta TimelineMeta, tl []sim.IntervalSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(TimelineCSVHeader); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for i := range tl {
		s := &tl[i]
		row := []string{
			meta.Benchmark, meta.Label, strconv.FormatInt(meta.Seed, 10),
			strconv.Itoa(s.Index), u(s.EndInstr), u(s.Instructions),
			f(s.Cycles), f(s.IPC), u(s.L2Accesses), u(s.L2Misses), f(s.L2MissRate),
			f(s.CompressionRatio), f(s.MeanL2HitLatency), u(s.OffChipBytes),
			f(s.LinkUtilization), f(s.LinkQueueDelay), f(s.DRAMQueueDelay),
		}
		for _, src := range []coherence.PfSource{coherence.PfL1I, coherence.PfL1D, coherence.PfL2} {
			row = append(row, f(s.PfRate[src]), f(s.PfAccuracy[src]))
		}
		row = append(row, f(s.CapL1I), f(s.CapL1D), strconv.Itoa(s.CapL2))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// CodecCSV writes the codec bakeoff rows.
func CodecCSV(w io.Writer, rows []core.CodecRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"codec", "benchmark", "pref_pct", "compr_pct", "both_pct",
		"interaction_pct", "interaction_at_bw_pct", "failed",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Codec, r.Benchmark, f(r.PrefPct), f(r.ComprPct), f(r.BothPct),
			f(r.InteractionPct), f(r.InteractionAtBWPct), r.Failed,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// IrregularCSV writes the irregular-suite study rows.
func IrregularCSV(w io.Writer, rows []core.IrregularRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "prefetcher", "pref_pct", "adaptive_pct", "compr_pct",
		"both_pct", "adaptive_both_pct", "interaction_pct", "failed",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Benchmark, r.Prefetcher, f(r.PrefPct), f(r.AdaptivePct), f(r.ComprPct),
			f(r.BothPct), f(r.AdaptiveBothPct), f(r.InteractionPct), r.Failed,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
