package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cmpsim/internal/core"
)

// WriteJSON renders any experiment's row slice as indented JSON, for
// downstream plotting. All row types in internal/core marshal cleanly.
func WriteJSON(w io.Writer, rows any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// CompressionCSV writes the compression study (Table 3 / Fig 3 / Fig 5).
func CompressionCSV(w io.Writer, rows []core.CompressionRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "ratio", "base_miss_per_ki", "compr_miss_per_ki",
		"miss_reduction_pct", "speedup_cache_pct", "speedup_link_pct", "speedup_both_pct",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Benchmark,
			f(r.Ratio), f(r.BaseMissPerKI), f(r.ComprMissPerKI),
			f(r.MissReductionPct), f(r.SpeedupCachePct), f(r.SpeedupLinkPct), f(r.SpeedupBothPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// InteractionCSV writes Table 5 / Figure 9 rows.
func InteractionCSV(w io.Writer, rows []core.InteractionRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "pref_pct", "compr_pct", "both_pct", "adaptive_both_pct",
		"interaction_pct", "bw_pref_growth_pct", "bw_prefcompr_growth_pct",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Benchmark, f(r.PrefPct), f(r.ComprPct), f(r.BothPct),
			f(r.AdaptiveBothPct), f(r.InteractionPct),
			f(r.BWBasePrefGrowthPct), f(r.BWComprPrefGrowthPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CoreSweepCSV writes Figure 1 / Figure 12 rows.
func CoreSweepCSV(w io.Writer, rows []core.CoreSweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "cores", "pref_pct", "adaptive_pct", "compr_pct",
		"both_pct", "adaptive_both_pct",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Benchmark, strconv.Itoa(r.Cores), f(r.PrefPct), f(r.AdaptivePct),
			f(r.ComprPct), f(r.BothPct), f(r.AdBothPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// BandwidthSweepCSV writes Figure 11 rows (long format: one line per
// benchmark × bandwidth).
func BandwidthSweepCSV(w io.Writer, rows []core.BandwidthSweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "bandwidth_gbps", "interaction_pct"}); err != nil {
		return err
	}
	for _, r := range rows {
		var bws []int
		for gb := range r.InteractionPct {
			bws = append(bws, gb)
		}
		sort.Ints(bws)
		for _, gb := range bws {
			if err := cw.Write([]string{
				r.Benchmark, strconv.Itoa(gb), f(r.InteractionPct[gb]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
