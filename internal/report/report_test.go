package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"cmpsim/internal/core"
)

func TestTableAndFigureFormatting(t *testing.T) {
	var buf bytes.Buffer

	comprRows := []core.CompressionRow{{
		Benchmark: "zeus", Ratio: 1.45, BaseMissPerKI: 6.0, ComprMissPerKI: 5.0,
		MissReductionPct: 16.7, SpeedupCachePct: 8.1, SpeedupLinkPct: 1.2, SpeedupBothPct: 9.7,
	}}
	Table3(&buf, comprRows)
	Fig3(&buf, comprRows)
	Fig5(&buf, comprRows)

	Fig4(&buf, []core.BandwidthRow{{Benchmark: "fma3d", None: 27.7, CacheOnly: 26, LinkOnly: 21, Both: 21}})

	Table4(&buf, []core.PrefetchPropsRow{{
		Benchmark: "zeus",
		L1I:       core.PrefetcherProps{RatePer1000: 7.1, CoveragePct: 14.5, AccuracyPct: 38.9},
		L1D:       core.PrefetcherProps{RatePer1000: 5.5, CoveragePct: 17.7, AccuracyPct: 79.2},
		L2:        core.PrefetcherProps{RatePer1000: 8.2, CoveragePct: 44.4, AccuracyPct: 56.0},
	}})

	Fig6(&buf, []core.PrefetchSpeedupRow{{Benchmark: "zeus", SpeedupPct: 21.3, AdaptiveSpeedupPct: 42}})

	inter := []core.InteractionRow{{
		Benchmark: "zeus", PrefPct: 21.3, ComprPct: 9.7, BothPct: 50.7,
		AdaptiveBothPct: 50.8, InteractionPct: 13.2,
		BWBasePrefGrowthPct: 98, BWComprPrefGrowthPct: 14,
	}}
	Fig7(&buf, inter)
	Table5(&buf, inter)

	Fig8(&buf, []core.MissClassRow{{Benchmark: "apache", NotAvoidedPct: 60,
		OnlyComprPct: 15, OnlyPrefPct: 17, EitherPct: 8, PrefFetchPct: 30, PrefAvoidedPct: 10}})

	Fig10(&buf, []core.AdaptiveRow{{Benchmark: "jbb", PrefPct: -24.5,
		AdaptivePct: 0.8, PrefComprPct: -6.5, AdaptiveComprPct: 1.7}})

	Fig11(&buf, []core.BandwidthSweepRow{{Benchmark: "zeus",
		InteractionPct: map[int]float64{10: 29, 20: 17, 40: 2, 80: 0.5}}})

	CoreSweep(&buf, "Figure 1 (zeus)", []core.CoreSweepRow{{
		Benchmark: "zeus", Cores: 16, PrefPct: -8, AdaptivePct: 16,
		ComprPct: 12, BothPct: 28, AdBothPct: 28,
	}})

	out := buf.String()
	for _, want := range []string{
		"Table 3", "Figure 3", "Figure 4", "Figure 5", "Table 4",
		"Figure 6", "Figure 7", "Figure 8", "Table 5", "Figure 10",
		"Figure 11", "Figure 1 (zeus)",
		"zeus", "fma3d", "jbb", "apache",
		"+21.3%", "+13.2%", "27.70", "-24.5%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Fig11 bandwidth columns must be sorted ascending.
	i10 := strings.Index(out, "10GB")
	i80 := strings.Index(out, "80GB")
	if i10 == -1 || i80 == -1 || i10 > i80 {
		t.Error("Fig11 columns not in ascending bandwidth order")
	}
}

func TestFailedRowsRenderExplicitly(t *testing.T) {
	var buf bytes.Buffer
	reason := "panic: injected (seed 0)"

	comprRows := []core.CompressionRow{
		{Benchmark: "zeus", Failed: reason},
		{Benchmark: "mgrid", Ratio: 1.2},
	}
	Table3(&buf, comprRows)
	Fig3(&buf, comprRows)
	Fig5(&buf, comprRows)
	Fig4(&buf, []core.BandwidthRow{{Benchmark: "zeus", Failed: reason}})
	Table4(&buf, []core.PrefetchPropsRow{{Benchmark: "zeus", Failed: reason}})
	Fig6(&buf, []core.PrefetchSpeedupRow{{Benchmark: "zeus", Failed: reason}})
	inter := []core.InteractionRow{{Benchmark: "zeus", Failed: reason}}
	Fig7(&buf, inter)
	Table5(&buf, inter)
	Fig8(&buf, []core.MissClassRow{{Benchmark: "zeus", Failed: reason}})
	Fig10(&buf, []core.AdaptiveRow{{Benchmark: "zeus", Failed: reason}})
	// A failed first row must not hide the bandwidth header columns.
	Fig11(&buf, []core.BandwidthSweepRow{
		{Benchmark: "zeus", Failed: reason},
		{Benchmark: "mgrid", InteractionPct: map[int]float64{10: 2, 20: 1}},
	})
	CoreSweep(&buf, "Figure 1 (zeus)", []core.CoreSweepRow{{Benchmark: "zeus", Cores: 8, Failed: reason}})

	out := buf.String()
	if got := strings.Count(out, "FAILED("+reason+")"); got != 12 {
		t.Errorf("FAILED cell count = %d, want 12\n%s", got, out)
	}
	if !strings.Contains(out, "10GB") || !strings.Contains(out, "20GB") {
		t.Error("Fig11 header not derived from first non-failed row")
	}
	if !strings.Contains(out, "1.20") {
		t.Error("healthy row missing alongside failed row")
	}
}

func TestFailedRowsInCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CompressionCSV(&buf, []core.CompressionRow{{Benchmark: "zeus", Failed: "timeout (seed 1)"}})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if h := recs[0][len(recs[0])-1]; h != "failed" {
		t.Fatalf("last header column = %q, want failed", h)
	}
	if c := recs[1][len(recs[1])-1]; c != "timeout (seed 1)" {
		t.Fatalf("failed cell = %q", c)
	}

	buf.Reset()
	if err := BandwidthSweepCSV(&buf, []core.BandwidthSweepRow{{Benchmark: "zeus", Failed: "x"}}); err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][3] != "x" {
		t.Fatalf("bandwidth sweep failed row: %v", recs)
	}
}

func TestFig11EmptyRows(t *testing.T) {
	var buf bytes.Buffer
	Fig11(&buf, nil) // must not panic
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("header missing")
	}
}
