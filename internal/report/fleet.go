// Fleet progress rendering: the per-worker accounting table and the
// sweep totals line a coordinator prints after a distributed run. The
// row types mirror internal/fleet's stats without importing it, so
// report stays a pure rendering layer.
package report

import (
	"fmt"
	"io"
)

// FleetWorkerRow is one worker's accounting.
type FleetWorkerRow struct {
	Worker     string
	Leases     int
	Results    int
	Failures   int
	Duplicates int
	Malformed  int
	Lost       bool
}

// FleetTotals is the sweep-wide accounting.
type FleetTotals struct {
	Points     int
	FromStore  int
	Recovered  int // points rebuilt from the coordinator journal at startup
	Completed  int
	Failed     int
	Requeues   int
	Expired    int
	Lost       int
	Duplicates int
	Malformed  int
}

// Fleet prints the per-worker table followed by the totals line.
func Fleet(w io.Writer, rows []FleetWorkerRow, t FleetTotals) {
	fmt.Fprintln(w, "Fleet: per-worker progress")
	fmt.Fprintf(w, "  %-12s %7s %7s %8s %5s %9s %5s\n",
		"worker", "leases", "results", "failures", "dups", "malformed", "lost")
	for _, r := range rows {
		lost := ""
		if r.Lost {
			lost = "LOST"
		}
		fmt.Fprintf(w, "  %-12s %7d %7d %8d %5d %9d %5s\n",
			r.Worker, r.Leases, r.Results, r.Failures, r.Duplicates, r.Malformed, lost)
	}
	recovered := ""
	if t.Recovered > 0 {
		recovered = fmt.Sprintf(", %d recovered from journal", t.Recovered)
	}
	fmt.Fprintf(w, "  totals: %d points (%d from store, %d completed, %d failed), %d requeues (%d expired), %d workers lost, %d duplicate results, %d malformed%s\n",
		t.Points, t.FromStore, t.Completed, t.Failed, t.Requeues, t.Expired, t.Lost, t.Duplicates, t.Malformed, recovered)
}
