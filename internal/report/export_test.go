package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"cmpsim/internal/core"
	"cmpsim/internal/sim"
)

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	rows := []core.InteractionRow{{Benchmark: "zeus", InteractionPct: 13.2}}
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []core.InteractionRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Benchmark != "zeus" || back[0].InteractionPct != 13.2 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestCompressionCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CompressionCSV(&buf, []core.CompressionRow{
		{Benchmark: "jbb", Ratio: 1.8, MissReductionPct: 18},
		{Benchmark: "apsi", Ratio: 1.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "benchmark" || recs[1][0] != "jbb" {
		t.Fatalf("records: %v", recs)
	}
	if recs[1][1] != "1.8000" {
		t.Fatalf("ratio cell: %q", recs[1][1])
	}
}

func TestInteractionCSV(t *testing.T) {
	var buf bytes.Buffer
	err := InteractionCSV(&buf, []core.InteractionRow{
		{Benchmark: "mgrid", PrefPct: 18.9, InteractionPct: 21.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mgrid") || !strings.Contains(out, "21.5000") {
		t.Fatalf("csv: %s", out)
	}
}

func TestCoreSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CoreSweepCSV(&buf, []core.CoreSweepRow{
		{Benchmark: "zeus", Cores: 16, PrefPct: -8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "zeus,16,-8.0000") {
		t.Fatalf("csv: %s", buf.String())
	}
}

func TestBandwidthSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	err := BandwidthSweepCSV(&buf, []core.BandwidthSweepRow{
		{Benchmark: "zeus", InteractionPct: map[int]float64{20: 17, 10: 29}},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Long format, bandwidths ascending.
	if len(recs) != 3 || recs[1][1] != "10" || recs[2][1] != "20" {
		t.Fatalf("records: %v", recs)
	}
}

func sampleTimeline() []sim.IntervalSample {
	return []sim.IntervalSample{
		{
			Index: 0, EndInstr: 40_000, Instructions: 40_000, Cycles: 50_000,
			IPC: 0.8, L2Accesses: 900, L2Misses: 90, L2MissRate: 0.1,
			CompressionRatio: 1.55, OffChipBytes: 12_345,
			LinkUtilization: 0.42, LinkQueueDelay: 1234.5, DRAMQueueDelay: 67.25,
			PfIssued: [4]uint64{0, 5, 40, 12}, PfHits: [4]uint64{0, 2, 30, 6},
			PfRate:     [4]float64{0, 0.125, 1, 0.3},
			PfAccuracy: [4]float64{0, 0.4, 0.75, 0.5},
			CapL1I:     6, CapL1D: 5.5, CapL2: 25,
		},
		{Index: 1, EndInstr: 80_000, Instructions: 40_000, Cycles: 48_000, IPC: 0.8333, CapL2: 16},
	}
}

func TestTimelineJSONL(t *testing.T) {
	var buf bytes.Buffer
	meta := TimelineMeta{Benchmark: "zeus", Label: "pf+compression", Seed: 3}
	if err := TimelineJSONL(&buf, meta, sampleTimeline()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 JSONL lines, got %d", len(lines))
	}
	// Meta and sample fields must be flattened into one object per line.
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]any{
		"benchmark": "zeus", "label": "pf+compression", "seed": 3.0,
		"index": 0.0, "end_instr": 40_000.0, "ipc": 0.8,
		"link_queue_delay": 1234.5, "cap_l2": 25.0,
	} {
		if rec[key] != want {
			t.Errorf("line 0 %s = %v, want %v", key, rec[key], want)
		}
	}
	if _, ok := rec["pf_issued"]; !ok {
		t.Error("per-engine counters missing from JSONL record")
	}
}

func TestTimelineCSV(t *testing.T) {
	var buf bytes.Buffer
	meta := TimelineMeta{Benchmark: "jbb", Label: "adaptive-pf", Seed: 1}
	if err := TimelineCSV(&buf, meta, sampleTimeline()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("expected header + 2 rows, got %d records", len(recs))
	}
	if !reflect.DeepEqual(recs[0], TimelineCSVHeader) {
		t.Fatalf("header mismatch: %v", recs[0])
	}
	row := recs[1]
	cell := func(name string) string {
		for i, h := range TimelineCSVHeader {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	for name, want := range map[string]string{
		"benchmark": "jbb", "label": "adaptive-pf", "seed": "1",
		"end_instr": "40000", "l2_misses": "90", "compression_ratio": "1.5500",
		"pf_l1d_rate_per_ki": "1.0000", "pf_l1d_accuracy": "0.7500",
		"pf_l2_rate_per_ki": "0.3000", "cap_l2": "25",
	} {
		if got := cell(name); got != want {
			t.Errorf("%s = %q, want %q", name, got, want)
		}
	}
}
