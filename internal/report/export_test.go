package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"cmpsim/internal/core"
)

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	rows := []core.InteractionRow{{Benchmark: "zeus", InteractionPct: 13.2}}
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []core.InteractionRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Benchmark != "zeus" || back[0].InteractionPct != 13.2 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestCompressionCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CompressionCSV(&buf, []core.CompressionRow{
		{Benchmark: "jbb", Ratio: 1.8, MissReductionPct: 18},
		{Benchmark: "apsi", Ratio: 1.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "benchmark" || recs[1][0] != "jbb" {
		t.Fatalf("records: %v", recs)
	}
	if recs[1][1] != "1.8000" {
		t.Fatalf("ratio cell: %q", recs[1][1])
	}
}

func TestInteractionCSV(t *testing.T) {
	var buf bytes.Buffer
	err := InteractionCSV(&buf, []core.InteractionRow{
		{Benchmark: "mgrid", PrefPct: 18.9, InteractionPct: 21.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mgrid") || !strings.Contains(out, "21.5000") {
		t.Fatalf("csv: %s", out)
	}
}

func TestCoreSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CoreSweepCSV(&buf, []core.CoreSweepRow{
		{Benchmark: "zeus", Cores: 16, PrefPct: -8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "zeus,16,-8.0000") {
		t.Fatalf("csv: %s", buf.String())
	}
}

func TestBandwidthSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	err := BandwidthSweepCSV(&buf, []core.BandwidthSweepRow{
		{Benchmark: "zeus", InteractionPct: map[int]float64{20: 17, 10: 29}},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Long format, bandwidths ascending.
	if len(recs) != 3 || recs[1][1] != "10" || recs[2][1] != "20" {
		t.Fatalf("records: %v", recs)
	}
}
