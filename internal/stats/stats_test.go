package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !approx(s.Mean, 5, 1e-12) {
		t.Fatalf("sample %+v", s)
	}
	if !approx(s.StdDev, 2.138, 0.001) {
		t.Fatalf("stddev = %f", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("range %f..%f", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty sample %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || !approx(s.Mean, 3.5, 1e-12) || s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("single sample %+v", s)
	}
}

// The auditor can fail all but one seed of a point (single surviving
// seed) or every seed (empty value list). Neither degenerate sample may
// produce NaN/Inf anywhere report rendering consumes it.
func TestDegenerateSamplesRenderClean(t *testing.T) {
	for name, s := range map[string]Sample{
		"all-seeds-failed": Summarize(nil),
		"single-survivor":  Summarize([]float64{1.25}),
		"identical-values": Summarize([]float64{2, 2, 2}),
	} {
		for field, v := range map[string]float64{
			"Mean": s.Mean, "StdDev": s.StdDev, "CI95": s.CI95(),
			"Min": s.Min, "Max": s.Max,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %f", name, field, v)
			}
		}
		if out := s.String(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s: String() = %q", name, out)
		}
	}
	// A single survivor has no spread: the CI must be exactly zero (the
	// t-table lookup for df=0 would panic if CI95 consulted it).
	if ci := Summarize([]float64{1.25}).CI95(); ci != 0 {
		t.Errorf("single-survivor CI = %f, want 0", ci)
	}
}

func TestTCritical(t *testing.T) {
	if got := TCritical95(1); got != 12.706 {
		t.Fatalf("t(1) = %f", got)
	}
	if got := TCritical95(30); got != 2.042 {
		t.Fatalf("t(30) = %f", got)
	}
	if got := TCritical95(1000); got != 1.960 {
		t.Fatalf("t(1000) = %f", got)
	}
}

func TestTCriticalPanicsOnZeroDF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("df=0 should panic")
		}
	}()
	TCritical95(0)
}

func TestCI95KnownCase(t *testing.T) {
	// n=4, sd=2 -> ci = 3.182 * 2/2 = 3.182
	s := Sample{N: 4, Mean: 10, StdDev: 2}
	if !approx(s.CI95(), 3.182, 1e-9) {
		t.Fatalf("ci = %f", s.CI95())
	}
}

func TestSpeedupAndPct(t *testing.T) {
	sp := Speedup(200, 100)
	if !approx(sp, 2, 1e-12) {
		t.Fatalf("speedup = %f", sp)
	}
	if !approx(SpeedupPct(sp), 100, 1e-12) {
		t.Fatalf("pct = %f", SpeedupPct(sp))
	}
	if !approx(SpeedupPct(Speedup(100, 125)), -20, 1e-9) {
		t.Fatalf("slowdown pct = %f", SpeedupPct(Speedup(100, 125)))
	}
}

func TestSpeedupPanicsOnZeroRuntime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero runtime should panic")
		}
	}()
	Speedup(0, 1)
}

func TestInteractionMatchesEQ5(t *testing.T) {
	// Paper example shape: zeus on 16p, Speedup(P)=0.92, Speedup(C)=1.12,
	// Speedup(P,C)=1.28 -> interaction ≈ +24%.
	i := InteractionPct(0.92, 1.12, 1.28)
	if !approx(i, 24.2, 0.5) {
		t.Fatalf("interaction = %f", i)
	}
	// Multiplicative composition → zero interaction.
	if got := Interaction(1.2, 1.1, 1.32); !approx(got, 0, 1e-12) {
		t.Fatalf("neutral interaction = %g", got)
	}
}

// Property: EQ 5 round-trips — Speedup(A,B) reconstructed from the
// interaction term equals the measured combined speedup.
func TestInteractionRoundTripProperty(t *testing.T) {
	f := func(a, b, ab uint16) bool {
		sa := 0.5 + float64(a%200)/100 // 0.5..2.5
		sb := 0.5 + float64(b%200)/100
		sab := 0.5 + float64(ab%400)/100
		inter := Interaction(sa, sb, sab)
		recon := sa * sb * (1 + inter)
		return approx(recon, sab, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 || Pct(1, 0) != 0 {
		t.Fatal("division by zero must yield 0")
	}
	if !approx(Pct(1, 4), 25, 1e-12) {
		t.Fatalf("pct = %f", Pct(1, 4))
	}
}

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{1, 4}), 2, 1e-12) {
		t.Fatal("geomean of {1,4}")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive geomean should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if !approx(Median([]float64{4, 1, 2, 3}), 2.5, 1e-12) {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("median mutated its input")
	}
}

// Property: the CI shrinks as n grows for fixed variance.
func TestCIShrinksWithN(t *testing.T) {
	prev := math.Inf(1)
	for n := 2; n <= 30; n++ {
		s := Sample{N: n, StdDev: 1}
		ci := s.CI95()
		if ci >= prev {
			t.Fatalf("ci did not shrink at n=%d: %f >= %f", n, ci, prev)
		}
		prev = ci
	}
}
