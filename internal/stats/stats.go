// Package stats provides the statistical treatment the paper applies to
// its simulation results: sample means with 95% confidence intervals
// over multiple perturbed runs (Alameldeen & Wood's space-variability
// methodology), and the speedup/interaction arithmetic of §5:
//
//	Speedup(A)        = runtime(base) / runtime(A)
//	Speedup(A,B)      = Speedup(A) × Speedup(B) × (1 + Interaction(A,B))
//	Interaction(A,B)  = Speedup(A,B) / (Speedup(A) × Speedup(B)) − 1
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample summarizes a set of measurements of one data point.
type Sample struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
}

// Summarize computes a Sample from raw values.
func Summarize(values []float64) Sample {
	if len(values) == 0 {
		return Sample{}
	}
	s := Sample{N: len(values), Min: values[0], Max: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range values {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// tTable97p5 holds two-sided 95% Student-t critical values (0.975
// quantile) for 1..30 degrees of freedom; beyond 30 we use the normal
// approximation 1.96.
var tTable97p5 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (≥1).
func TCritical95(df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: %d degrees of freedom", df))
	}
	if df <= len(tTable97p5) {
		return tTable97p5[df-1]
	}
	return 1.960
}

// CI95 returns the half-width of the 95% confidence interval of the
// sample mean (0 for fewer than two values).
func (s Sample) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return TCritical95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
}

// String formats the sample as "mean ± ci".
func (s Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95())
}

// Speedup is runtime(base)/runtime(enhanced); > 1 means the enhancement
// helps. It panics on non-positive runtimes (measurement bug).
func Speedup(baseRuntime, enhancedRuntime float64) float64 {
	if baseRuntime <= 0 || enhancedRuntime <= 0 {
		panic(fmt.Sprintf("stats: non-positive runtimes %f, %f", baseRuntime, enhancedRuntime))
	}
	return baseRuntime / enhancedRuntime
}

// SpeedupPct converts a speedup factor to the paper's "performance
// improvement" percentage (Speedup − 100%).
func SpeedupPct(speedup float64) float64 { return (speedup - 1) * 100 }

// Interaction computes the paper's EQ 5 interaction term from the three
// speedups: positive when the combination beats the product of the
// individual speedups.
func Interaction(speedupA, speedupB, speedupAB float64) float64 {
	if speedupA <= 0 || speedupB <= 0 {
		panic("stats: speedups must be positive")
	}
	return speedupAB/(speedupA*speedupB) - 1
}

// InteractionPct returns Interaction × 100.
func InteractionPct(speedupA, speedupB, speedupAB float64) float64 {
	return Interaction(speedupA, speedupB, speedupAB) * 100
}

// Ratio is a simple safe division helper for rate metrics: a/b, or 0
// when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct returns a/b as a percentage, or 0 when b is 0.
func Pct(a, b float64) float64 { return Ratio(a, b) * 100 }

// GeoMean returns the geometric mean of positive values (used for
// summary speedup rows). It panics if any value is non-positive.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	logsum := 0.0
	for _, v := range values {
		if v <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %f", v))
		}
		logsum += math.Log(v)
	}
	return math.Exp(logsum / float64(len(values)))
}

// Median returns the median of values (0 for an empty slice). The input
// is not modified.
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	c := append([]float64(nil), values...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
