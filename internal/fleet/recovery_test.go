// In-process crash-recovery matrix: a coordinator with a journal and a
// store is driven through the protocol, abandoned mid-sweep like a
// crashed process (no Shutdown, no cleanup), and a second coordinator
// opened over the same directory must reconstruct the exact state —
// stored points never re-simulated, outstanding leases still
// resolvable, requeue budgets and failure signatures intact, permanent
// failures permanent.
package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cmpsim/internal/core"
)

// crashCoordinator abandons c the way a SIGKILL would: the journal's
// file handle is released (the process is gone) but nothing is failed,
// flushed, truncated, or shut down.
func crashCoordinator(c *Coordinator, j *Journal, st *Store) {
	j.Close()
	if st != nil {
		st.Close()
	}
}

// waitForPoints blocks until the coordinator tracks n points (RunPoint
// enqueues from goroutines, so submission is observed, not assumed).
func waitForPoints(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Points < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d points submitted", c.Stats().Points, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func openRecoveryPair(t *testing.T, dir string) (*Store, *Journal) {
	t.Helper()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, j
}

// TestRecoveryMatrix walks one crash through every recovered-point
// class at once: done-in-store, leased in-flight, pending, pending
// with spent budget and a failure signature, and permanently failed.
func TestRecoveryMatrix(t *testing.T) {
	dir := t.TempDir()
	st1, j1 := openRecoveryPair(t, dir)
	c1 := NewCoordinator(Config{Store: st1, Journal: j1, MaxPointFailures: 2})

	// pA: completed and stored before the crash.
	chA := runAsync(c1, "zeus", core.Base, tinyOpts())
	leaseA := awaitLease(t, c1, "w0")
	if resp := c1.Handle(leaseResult(t, "w0", leaseA)); resp.Type != MsgOK {
		t.Fatalf("result A rejected: %+v", resp)
	}
	rA := await(t, chA)
	if rA.err != nil {
		t.Fatal(rA.err)
	}

	// pD: permanently failed (two distinct workers, same signature).
	chD := runAsync(c1, "zeus", core.Prefetch, tinyOpts())
	leaseD := awaitLease(t, c1, "w0")
	c1.Handle(Message{Type: MsgResult, Worker: "w0", Lease: leaseD.Lease,
		Error: "broken point", Reason: core.ReasonError})
	leaseD2 := awaitLease(t, c1, "w1")
	c1.Handle(Message{Type: MsgResult, Worker: "w1", Lease: leaseD2.Lease,
		Error: "broken point", Reason: core.ReasonError})
	if rD := await(t, chD); rD.err == nil {
		t.Fatal("pD should have failed permanently")
	}

	// pE: failed once on w0 (requeued, budget spent, signature filed).
	runAsync(c1, "zeus", core.AdaptiveCompr, tinyOpts())
	leaseE := awaitLease(t, c1, "w0")
	c1.Handle(Message{Type: MsgResult, Worker: "w0", Lease: leaseE.Lease,
		Error: "flaky point", Reason: core.ReasonError})

	// pB: leased and in flight at crash time. It drains the queue first
	// (pE was requeued ahead of it), so lease pE to w1 and leave both
	// outstanding; pB is the one whose result arrives after recovery.
	leaseE2 := awaitLease(t, c1, "w1")
	if leaseE2.Benchmark != "zeus" || leaseE2.Mechanisms.Label() != core.AdaptiveCompr.Label() {
		t.Fatalf("expected pE release, got %s/%s", leaseE2.Benchmark, leaseE2.Mechanisms.Label())
	}
	runAsync(c1, "zeus", core.Compression, tinyOpts())
	leaseB := awaitLease(t, c1, "w0")

	// pC: queued, never leased. A never-granted point leaves no journal
	// trace on purpose — the driver re-submits every point on restart,
	// so only state that cannot be re-derived (leases, budgets, failure
	// signatures, verdicts) needs durability.
	runAsync(c1, "art", core.Base, tinyOpts())
	waitForPoints(t, c1, 5)

	crashCoordinator(c1, j1, st1)

	// Restart over the same directory.
	st2, j2 := openRecoveryPair(t, dir)
	defer st2.Close()
	defer j2.Close()
	c2 := NewCoordinator(Config{Store: st2, Journal: j2, MaxPointFailures: 2})

	stats := c2.Stats()
	if stats.Recovered != 4 {
		t.Fatalf("recovered %d points, want 4 (pA, pB, pD, pE): %+v", stats.Recovered, stats)
	}
	if stats.FromStore != 1 {
		t.Fatalf("fromStore = %d, want 1 (pA): %+v", stats.FromStore, stats)
	}

	// pA resolves instantly from the store — no lease, no simulation.
	pA2, err := c2.RunPoint("zeus", core.Base, tinyOpts())
	if err != nil {
		t.Fatalf("recovered stored point errored: %v", err)
	}
	if len(pA2.Runs) != tinyOpts().Seeds {
		t.Fatalf("recovered point malformed: %+v", pA2)
	}

	// pD stays permanently failed; the recovered error keeps its shape.
	_, err = c2.RunPoint("zeus", core.Prefetch, tinyOpts())
	var pe *core.PointError
	if !errors.As(err, &pe) || !strings.Contains(err.Error(), "2 workers reported") {
		t.Fatalf("recovered failure lost its cause: %v", err)
	}

	// pB's worker survived the outage: its result, reported under the
	// pre-crash lease id, is accepted and resolves the recovered point.
	chB2 := runAsync(c2, "zeus", core.Compression, tinyOpts())
	if resp := c2.Handle(leaseResult(t, "w0", leaseB)); resp.Type != MsgOK {
		t.Fatalf("late result under recovered lease rejected: %+v", resp)
	}
	if rB := await(t, chB2); rB.err != nil {
		t.Fatalf("recovered lease did not resolve: %v", rB.err)
	}

	// pE carries its pre-crash failure signature: one more failure with
	// the same signature from a different worker makes it permanent
	// (MaxPointFailures=2), even though this coordinator never saw w0.
	chE2 := runAsync(c2, "zeus", core.AdaptiveCompr, tinyOpts())
	if resp := c2.Handle(Message{Type: MsgResult, Worker: "w2", Lease: leaseE2.Lease,
		Error: "flaky point", Reason: core.ReasonError}); resp.Type != MsgOK {
		t.Fatalf("failure report rejected: %+v", resp)
	}
	rE := await(t, chE2)
	if rE.err == nil || !strings.Contains(rE.err.Error(), "2 workers reported") {
		t.Fatalf("failure signatures did not survive the restart: %v", rE.err)
	}

	// pC went back in the queue; a fresh worker completes it.
	chC2 := runAsync(c2, "art", core.Base, tinyOpts())
	leaseC := awaitLease(t, c2, "w3")
	if leaseC.Benchmark != "art" {
		t.Fatalf("expected pC lease, got %s/%s", leaseC.Benchmark, leaseC.Mechanisms.Label())
	}
	c2.Handle(leaseResult(t, "w3", leaseC))
	if rC := await(t, chC2); rC.err != nil {
		t.Fatal(rC.err)
	}
	c2.Shutdown()
}

// TestRequeueBudgetSurvivesRestart pins that a point's requeue count
// keeps accruing across a crash instead of resetting: budget spent
// before the crash still counts after it.
func TestRequeueBudgetSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1, j1 := openRecoveryPair(t, dir)
	c1 := NewCoordinator(Config{Store: st1, Journal: j1, MaxRequeues: 2})

	runAsync(c1, "zeus", core.Base, tinyOpts())
	for i := 0; i < 2; i++ {
		lease := awaitLease(t, c1, "w0")
		// A malformed result burns the lease and requeues the point.
		resp := c1.Handle(Message{Type: MsgResult, Worker: "w0", Lease: lease.Lease,
			Data: []byte("{"), CRC: 0})
		if resp.Type != MsgError {
			t.Fatalf("malformed result not rejected: %+v", resp)
		}
	}
	crashCoordinator(c1, j1, st1)

	st2, j2 := openRecoveryPair(t, dir)
	defer st2.Close()
	defer j2.Close()
	c2 := NewCoordinator(Config{Store: st2, Journal: j2, MaxRequeues: 2})
	defer c2.Shutdown()

	ch := runAsync(c2, "zeus", core.Base, tinyOpts())
	lease := awaitLease(t, c2, "w1")
	c2.Handle(Message{Type: MsgResult, Worker: "w1", Lease: lease.Lease,
		Data: []byte("{"), CRC: 0})
	r := await(t, ch)
	if r.err == nil || !strings.Contains(r.err.Error(), "requeue budget exhausted after 3 attempts") {
		t.Fatalf("budget restarted across the crash: %v", r.err)
	}
}

// TestCleanShutdownTruncatesJournal pins the lifecycle boundary: a
// sweep that finishes every point resets its journal, so the next run
// replays nothing; a crashed (abandoned) sweep keeps its journal.
func TestCleanShutdownTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	st1, j1 := openRecoveryPair(t, dir)
	c1 := NewCoordinator(Config{Store: st1, Journal: j1})

	ch := runAsync(c1, "zeus", core.Base, tinyOpts())
	lease := awaitLease(t, c1, "w0")
	c1.Handle(leaseResult(t, "w0", lease))
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
	c1.Shutdown()
	j1.Close()
	st1.Close()

	st2, j2 := openRecoveryPair(t, dir)
	defer st2.Close()
	defer j2.Close()
	if j2.Entries() != 0 {
		t.Fatalf("clean shutdown left %d journal entries", j2.Entries())
	}
	c2 := NewCoordinator(Config{Store: st2, Journal: j2})
	defer c2.Shutdown()
	if stats := c2.Stats(); stats.Recovered != 0 {
		t.Fatalf("recovered %d points from a truncated journal", stats.Recovered)
	}
	// The store still serves the finished point.
	if _, err := c2.RunPoint("zeus", core.Base, tinyOpts()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainKeepsSweepResumable drives the drain state machine: after
// Drain, next returns done, in-flight results are still accepted,
// leftover points fail with ReasonDrained — and because drain failures
// are never journaled as permanent, a restart resumes exactly the
// abandoned points.
func TestDrainKeepsSweepResumable(t *testing.T) {
	dir := t.TempDir()
	st1, j1 := openRecoveryPair(t, dir)
	c1 := NewCoordinator(Config{Store: st1, Journal: j1})

	chA := runAsync(c1, "zeus", core.Base, tinyOpts())
	leaseA := awaitLease(t, c1, "w0")
	chB := runAsync(c1, "zeus", core.Compression, tinyOpts())
	waitForPoints(t, c1, 2)

	c1.Drain()
	if resp := c1.Handle(Message{Type: MsgNext, Worker: "w1"}); resp.Type != MsgDone {
		t.Fatalf("draining coordinator still leases: %+v", resp)
	}
	// A point first requested mid-drain fails immediately.
	if _, err := c1.RunPoint("art", core.Base, tinyOpts()); err == nil {
		t.Fatal("draining coordinator accepted new work")
	} else {
		var pe *core.PointError
		if !errors.As(err, &pe) || pe.Reason != core.ReasonDrained {
			t.Fatalf("drain failure misclassified: %v", err)
		}
	}
	// The in-flight lease still lands.
	if resp := c1.Handle(leaseResult(t, "w0", leaseA)); resp.Type != MsgOK {
		t.Fatalf("in-flight result rejected during drain: %+v", resp)
	}
	if rA := await(t, chA); rA.err != nil {
		t.Fatal(rA.err)
	}

	abandoned := c1.DrainAndWait(time.Second)
	if abandoned != 1 {
		t.Fatalf("abandoned %d points, want 1 (pB)", abandoned)
	}
	rB := await(t, chB)
	var pe *core.PointError
	if !errors.As(rB.err, &pe) || pe.Reason != core.ReasonDrained {
		t.Fatalf("drained point misclassified: %v", rB.err)
	}
	j1.Close()
	st1.Close()

	// Restart: pA is in the store, pB is pending again — not failed.
	st2, j2 := openRecoveryPair(t, dir)
	defer st2.Close()
	defer j2.Close()
	c2 := NewCoordinator(Config{Store: st2, Journal: j2})
	defer c2.Shutdown()
	stats := c2.Stats()
	if stats.FromStore != 1 || stats.Failed != 0 {
		t.Fatalf("drained sweep did not resume cleanly: %+v", stats)
	}
	ch := runAsync(c2, "zeus", core.Compression, tinyOpts())
	lease := awaitLease(t, c2, "w0")
	c2.Handle(leaseResult(t, "w0", lease))
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
}

// TestWorkerReconnectAfterCoordinatorRestart runs a real worker loop
// against a caller whose backing coordinator crashes after granting a
// lease and comes back — journal-recovered — while the worker is mid-
// retry. The result computed during the outage must be delivered to
// the new coordinator.
func TestWorkerReconnectAfterCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	st1, j1 := openRecoveryPair(t, dir)
	c1 := NewCoordinator(Config{Store: st1, Journal: j1})

	// The switchable transport: phase 0 = c1, phase 1 = outage (every
	// call errors), phase 2 = c2.
	var mu sync.Mutex
	phase := 0
	var c2 *Coordinator
	caller := callerFunc(func(m Message) (Message, error) {
		mu.Lock()
		defer mu.Unlock()
		switch phase {
		case 0:
			if m.Type == MsgResult {
				// The coordinator "crashes" as the result arrives: the
				// message is lost unprocessed (like a real crash) and
				// every later call fails until the restart.
				phase = 1
				return Message{}, errors.New("connection refused")
			}
			return c1.Handle(m), nil
		case 1:
			return Message{}, errors.New("connection refused")
		default:
			return c2.Handle(m), nil
		}
	})

	chA := runAsync(c1, "zeus", core.Base, tinyOpts())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(WorkerConfig{
			ID: "w0", PollInterval: time.Millisecond,
			MaxCallRetries: 20, CallBackoff: 5 * time.Millisecond,
			Runner: func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
				return fakePoint(bench, m, o), nil
			},
		}, caller)
	}()

	// Wait for the injected crash (the worker's first result send).
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		p := phase
		mu.Unlock()
		if p == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never reported a result")
		}
		time.Sleep(time.Millisecond)
	}
	crashCoordinator(c1, j1, st1)

	// Restart the coordinator from the journal while the worker retries.
	st2, j2 := openRecoveryPair(t, dir)
	defer st2.Close()
	defer j2.Close()
	mu.Lock()
	c2 = NewCoordinator(Config{Store: st2, Journal: j2})
	phase = 2
	mu.Unlock()

	// The recovered coordinator resolves pA with the worker's redelivered
	// result — the point is never re-simulated and never re-leased.
	chA2 := runAsync(c2, "zeus", core.Base, tinyOpts())
	if r := await(t, chA2); r.err != nil {
		t.Fatalf("redelivered result did not resolve the recovered point: %v", r.err)
	}
	_ = chA // c1's waiter died with the crash; nothing to assert on it.
	c2.Shutdown()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker exited dirty after reconnect: %v", err)
	}
	st := c2.Stats()
	if st.Completed != 1 || st.Recovered != 1 {
		t.Fatalf("recovered sweep accounting: %+v", st)
	}
	if row := st.Workers[0]; row.Results != 1 {
		t.Fatalf("worker's redelivered result not counted: %+v", row)
	}
}

// TestWorkerDrainChannel pins ErrDrained: a worker whose Drain channel
// closes finishes nothing new and exits with the sentinel.
func TestWorkerDrainChannel(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Shutdown()
	drain := make(chan struct{})
	close(drain)
	err := RunWorker(WorkerConfig{
		ID: "w0", Drain: drain, PollInterval: time.Millisecond,
		Runner: func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
			t.Error("drained worker ran a point")
			return core.Point{}, nil
		},
	}, directCaller(c))
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("err = %v, want ErrDrained", err)
	}
}
