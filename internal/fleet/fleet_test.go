package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cmpsim/internal/core"
	"cmpsim/internal/faultinject"
	"cmpsim/internal/sim"
)

// tinyOpts is a canonical option set for protocol tests with stub
// runners (nothing is actually simulated).
func tinyOpts() core.Options {
	return core.Options{Cores: 2, Seeds: 2, Warmup: 100, Measure: 100, BandwidthGBps: 10, L2MB: 1}
}

// simOpts is small enough for real end-to-end simulation tests.
func simOpts() core.Options {
	return core.Options{Cores: 2, Seeds: 2, Warmup: 100_000, Measure: 60_000, BandwidthGBps: 10, L2MB: 1}
}

// fakePoint builds a deterministic stand-in point for protocol tests.
func fakePoint(bench string, m core.Mechanisms, o core.Options) core.Point {
	runs := make([]sim.Metrics, o.Seeds)
	for i := range runs {
		runs[i] = sim.Metrics{Benchmark: bench, Label: m.Label(), Seed: int64(i), Cycles: float64(1000 + i)}
	}
	return core.Point{Benchmark: bench, Mechanisms: m, Runs: runs}
}

// callerFunc adapts a function (usually Coordinator.Handle) to Caller,
// letting worker loops run in-process with no transport at all.
type callerFunc func(Message) (Message, error)

func (f callerFunc) Call(m Message) (Message, error) { return f(m) }

func directCaller(c *Coordinator) Caller {
	return callerFunc(func(m Message) (Message, error) { return c.Handle(m), nil })
}

// fakeClock is an adjustable Now for lease/heartbeat expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

type pointResult struct {
	p   core.Point
	err error
}

// runAsync starts RunPoint in the background and returns its result
// channel.
func runAsync(c *Coordinator, bench string, m core.Mechanisms, o core.Options) chan pointResult {
	ch := make(chan pointResult, 1)
	go func() {
		p, err := c.RunPoint(bench, m, o)
		ch <- pointResult{p, err}
	}()
	return ch
}

// awaitLease polls next on behalf of worker until a lease arrives.
func awaitLease(t *testing.T, c *Coordinator, worker string) Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp := c.Handle(Message{Type: MsgNext, Worker: worker})
		switch resp.Type {
		case MsgLease:
			return resp
		case MsgWait:
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("unexpected reply to next: %+v", resp)
		}
	}
	t.Fatal("no lease within 5s")
	return Message{}
}

// leaseResult builds the valid result message for a lease.
func leaseResult(t *testing.T, worker string, lease Message) Message {
	t.Helper()
	p := fakePoint(lease.Benchmark, *lease.Mechanisms, *lease.Options)
	msg, err := resultMessage(worker, lease.Lease, lease.Benchmark, *lease.Mechanisms, *lease.Options, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func await(t *testing.T, ch chan pointResult) pointResult {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(10 * time.Second):
		t.Fatal("RunPoint did not resolve")
		return pointResult{}
	}
}

func TestLeaseResultHappyPath(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Compression, tinyOpts())
	lease := awaitLease(t, c, "w1")
	if lease.Benchmark != "zeus" || *lease.Mechanisms != core.Compression {
		t.Fatalf("lease carries wrong identity: %+v", lease)
	}
	if lease.Options.Workers != 0 || lease.Options.CheckLevel != "" {
		t.Fatalf("lease options are not canonical: %+v", lease.Options)
	}
	if resp := c.Handle(leaseResult(t, "w1", lease)); resp.Type != MsgOK {
		t.Fatalf("result rejected: %+v", resp)
	}
	r := await(t, ch)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.p.Runs) != 2 || r.p.Benchmark != "zeus" {
		t.Fatalf("wrong point delivered: %+v", r.p)
	}
	st := c.Stats()
	if st.Completed != 1 || st.Requeues != 0 || len(st.Workers) != 1 || st.Workers[0].Results != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHeartbeatLossRequeues(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{Now: clock.Now, HeartbeatTimeout: 30 * time.Second})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	first := awaitLease(t, c, "w1")

	// Heartbeats keep the lease alive…
	clock.Advance(20 * time.Second)
	if resp := c.Handle(Message{Type: MsgHeartbeat, Worker: "w1", Lease: first.Lease}); resp.Type != MsgOK {
		t.Fatalf("live heartbeat not acknowledged: %+v", resp)
	}
	clock.Advance(20 * time.Second)
	c.CheckExpired()
	if st := c.Stats(); st.Requeues != 0 {
		t.Fatalf("lease with fresh heartbeat requeued: %+v", st)
	}

	// …until they stop.
	clock.Advance(31 * time.Second)
	c.CheckExpired()
	if st := c.Stats(); st.Requeues != 1 || st.Expired != 1 {
		t.Fatalf("heartbeat loss not requeued: %+v", st)
	}

	// The stale lease is cancelled if the worker beats again.
	if resp := c.Handle(Message{Type: MsgHeartbeat, Worker: "w1", Lease: first.Lease}); resp.Type != MsgCancel {
		t.Fatalf("stale heartbeat not cancelled: %+v", resp)
	}

	second := awaitLease(t, c, "w2")
	if second.Lease == first.Lease {
		t.Fatal("requeued point reissued under the same lease id")
	}
	c.Handle(leaseResult(t, "w2", second))
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
}

func TestLeaseLifetimeExpires(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{Now: clock.Now, HeartbeatTimeout: 30 * time.Second, LeaseTimeout: 100 * time.Second})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	lease := awaitLease(t, c, "w1")
	// A wedged worker heartbeats forever; the lease lifetime still caps it.
	for i := 0; i < 5; i++ {
		clock.Advance(25 * time.Second)
		c.Handle(Message{Type: MsgHeartbeat, Worker: "w1", Lease: lease.Lease})
		c.CheckExpired()
	}
	st := c.Stats()
	if st.Requeues != 1 || st.Expired != 1 {
		t.Fatalf("lease lifetime not enforced: %+v", st)
	}
	second := awaitLease(t, c, "w2")
	c.Handle(leaseResult(t, "w2", second))
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
}

func TestDuplicateResultIdempotent(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	lease := awaitLease(t, c, "w1")
	msg := leaseResult(t, "w1", lease)
	if resp := c.Handle(msg); resp.Type != MsgOK {
		t.Fatalf("first result rejected: %+v", resp)
	}
	if resp := c.Handle(msg); resp.Type != MsgOK {
		t.Fatalf("duplicate result not acknowledged: %+v", resp)
	}
	r := await(t, ch)
	if r.err != nil {
		t.Fatal(r.err)
	}
	st := c.Stats()
	if st.Completed != 1 || st.Duplicates != 1 {
		t.Fatalf("duplicate accounting: %+v", st)
	}
}

func TestLateResultFromPresumedDeadWorkerAccepted(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{Now: clock.Now, HeartbeatTimeout: 30 * time.Second})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	first := awaitLease(t, c, "w1")
	clock.Advance(31 * time.Second)
	c.CheckExpired() // w1 presumed dead, point requeued
	second := awaitLease(t, c, "w2")
	// w1 was alive after all and reports under its stale lease: the
	// result is deterministic, so it is accepted.
	if resp := c.Handle(leaseResult(t, "w1", first)); resp.Type != MsgOK {
		t.Fatalf("late result rejected: %+v", resp)
	}
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
	// w2's now-redundant result is a counted duplicate.
	if resp := c.Handle(leaseResult(t, "w2", second)); resp.Type != MsgOK {
		t.Fatalf("redundant result not acknowledged: %+v", resp)
	}
	st := c.Stats()
	if st.Completed != 1 || st.Duplicates != 1 {
		t.Fatalf("late-result accounting: %+v", st)
	}
}

func TestMalformedResultRequeues(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	lease := awaitLease(t, c, "w1")
	msg := leaseResult(t, "w1", lease)
	msg.CRC ^= 0xDEADBEEF // transport corruption
	if resp := c.Handle(msg); resp.Type != MsgError {
		t.Fatalf("corrupt result not rejected: %+v", resp)
	}
	st := c.Stats()
	if st.Malformed != 1 || st.Requeues != 1 {
		t.Fatalf("malformed accounting: %+v", st)
	}
	second := awaitLease(t, c, "w1")
	c.Handle(leaseResult(t, "w1", second))
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
}

func TestResultKeyMismatchRejected(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Shutdown()
	chA := runAsync(c, "zeus", core.Base, tinyOpts())
	leaseA := awaitLease(t, c, "w1")
	// A structurally valid record for a DIFFERENT point must not satisfy
	// this lease.
	wrong := leaseResult(t, "w1", Message{
		Type: MsgLease, Lease: leaseA.Lease, Benchmark: "apache",
		Mechanisms: leaseA.Mechanisms, Options: leaseA.Options,
	})
	if resp := c.Handle(wrong); resp.Type != MsgError || !strings.Contains(resp.Error, "does not match lease") {
		t.Fatalf("mismatched record accepted: %+v", resp)
	}
	second := awaitLease(t, c, "w1")
	c.Handle(leaseResult(t, "w1", second))
	if r := await(t, chA); r.err != nil {
		t.Fatal(r.err)
	}
}

func TestIdenticalFailuresDegradeToFailed(t *testing.T) {
	c := NewCoordinator(Config{MaxPointFailures: 2, MaxRequeues: 10})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	fail := func(worker string, lease Message) {
		c.Handle(Message{Type: MsgResult, Worker: worker, Lease: lease.Lease,
			Error: "panic: index out of range", Reason: core.ReasonPanic})
	}
	fail("w1", awaitLease(t, c, "w1"))
	if st := c.Stats(); st.Failed != 0 || st.Requeues != 1 {
		t.Fatalf("first failure should requeue, not fail: %+v", st)
	}
	fail("w2", awaitLease(t, c, "w2"))
	r := await(t, ch)
	if r.err == nil {
		t.Fatal("point with two identical failures did not fail")
	}
	var pe *core.PointError
	if !errors.As(r.err, &pe) || pe.Reason != core.ReasonPanic {
		t.Fatalf("failure lost its classification: %v", r.err)
	}
	if st := c.Stats(); st.Failed != 1 {
		t.Fatalf("failed accounting: %+v", st)
	}
}

func TestSameWorkerFailuresDoNotDegrade(t *testing.T) {
	// One flaky worker failing the same point repeatedly must not count
	// as N distinct confirmations.
	c := NewCoordinator(Config{MaxPointFailures: 2, MaxRequeues: 2})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	for i := 0; i < 2; i++ {
		lease := awaitLease(t, c, "w1")
		c.Handle(Message{Type: MsgResult, Worker: "w1", Lease: lease.Lease,
			Error: "panic: boom", Reason: core.ReasonPanic})
	}
	if st := c.Stats(); st.Failed != 0 {
		t.Fatalf("same-worker failures degraded the point: %+v", st)
	}
	// A healthy worker still completes it.
	c.Handle(leaseResult(t, "w2", awaitLease(t, c, "w2")))
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
}

func TestRequeueBudgetExhausts(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Config{Now: clock.Now, MaxRequeues: 2, HeartbeatTimeout: 10 * time.Second})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	for i := 0; i < 3; i++ {
		awaitLease(t, c, fmt.Sprintf("w%d", i))
		clock.Advance(11 * time.Second)
		c.CheckExpired()
	}
	r := await(t, ch)
	if r.err == nil || !strings.Contains(r.err.Error(), "requeue budget") {
		t.Fatalf("exhausted budget did not fail the point: %v", r.err)
	}
}

func TestWorkerLostRequeues(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Shutdown()
	ch := runAsync(c, "zeus", core.Base, tinyOpts())
	awaitLease(t, c, "w1")
	c.WorkerLost("w1")
	st := c.Stats()
	if st.Lost != 1 || st.Requeues != 1 {
		t.Fatalf("worker loss accounting: %+v", st)
	}
	c.Handle(leaseResult(t, "w2", awaitLease(t, c, "w2")))
	if r := await(t, ch); r.err != nil {
		t.Fatal(r.err)
	}
}

func TestStoreServesWithoutLease(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	o := core.CanonicalOptions(tinyOpts())
	p := fakePoint("zeus", core.Base, o)
	if err := st.Add(core.NewPointRecord("zeus", core.Base, o, p)); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Config{Store: st})
	defer c.Shutdown()
	// Resolves without any worker existing at all.
	got, err := c.RunPoint("zeus", core.Base, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != o.Seeds {
		t.Fatalf("stored point mangled: %+v", got)
	}
	if st := c.Stats(); st.FromStore != 1 || st.Completed != 1 {
		t.Fatalf("store accounting: %+v", st)
	}
}

func TestSchedulerStoreNeverResimulates(t *testing.T) {
	dir := t.TempDir()
	// First scheduler simulates (stub runner) and persists via the store.
	st1, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := core.NewScheduler(1)
	defer s1.Close()
	s1.SetPointStore(st1)
	s1.SetPointRunner(func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
		return fakePoint(bench, m, o), nil
	})
	p1, err := s1.Submit("zeus", core.Compression, tinyOpts()).Wait()
	if err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// Second scheduler must restore, never simulate.
	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Loaded() != 1 {
		t.Fatalf("store loaded %d records, want 1", st2.Loaded())
	}
	s2 := core.NewScheduler(1)
	defer s2.Close()
	s2.SetPointStore(st2)
	s2.SetPointRunner(func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
		t.Errorf("point %s/%s re-simulated despite store record", bench, m.Label())
		return core.Point{}, errors.New("must not run")
	})
	p2, err := s2.Submit("zeus", core.Compression, tinyOpts()).Wait()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(p1)
	b2, _ := json.Marshal(p2)
	if string(b1) != string(b2) {
		t.Fatalf("restored point not bit-identical:\n%s\n%s", b1, b2)
	}
	if stats := s2.Stats(); stats.FromStore != 1 || stats.Unique != 0 {
		t.Fatalf("scheduler stats: %+v", stats)
	}
}

// startPipeWorker wires an in-process RunWorker to the coordinator over
// real pipes, so worker death closes the stream exactly like a process
// exit would.
func startPipeWorker(t *testing.T, c *Coordinator, cfg WorkerConfig) chan error {
	t.Helper()
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	go c.ServePipe(reqR, respW)
	errCh := make(chan error, 1)
	go func() {
		err := RunWorker(cfg, NewPipeCaller(respR, reqW))
		reqW.Close() // the "process" exits: coordinator sees EOF
		respR.Close()
		errCh <- err
	}()
	return errCh
}

// TestPipeFleetKillOneWorkerBitIdentical is the acceptance scenario:
// a 2-worker pipe fleet, one worker deterministically killed mid-sweep,
// must deliver points bit-identical to plain single-process simulation,
// with the killed worker's in-flight lease requeued and completed.
// This one runs the real simulator.
func TestPipeFleetKillOneWorkerBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped with -short")
	}
	opts := simOpts()
	benches := []string{"zeus"}
	mechs := []core.Mechanisms{core.Base, core.Compression}

	// Reference: plain local scheduler.
	ref := core.NewScheduler(0)
	defer ref.Close()
	want := make(map[string][]byte)
	for _, b := range benches {
		for _, m := range mechs {
			p, err := ref.Submit(b, m, opts).Wait()
			if err != nil {
				t.Fatal(err)
			}
			buf, _ := json.Marshal(p)
			want[b+"/"+m.Label()] = buf
		}
	}

	// Fleet: coordinator + 2 pipe workers, w0 killed before its first
	// result report.
	c := NewCoordinator(Config{})
	inj, err := faultinject.Parse("kind=kill,worker=w0,msg=result,nth=1")
	if err != nil {
		t.Fatal(err)
	}
	simRunner := func(sched *core.Scheduler) Runner {
		return func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
			return sched.Submit(bench, m, o).Wait()
		}
	}
	ws0 := core.NewScheduler(0)
	defer ws0.Close()
	ws1 := core.NewScheduler(0)
	defer ws1.Close()
	err0 := startPipeWorker(t, c, WorkerConfig{ID: "w0", Runner: simRunner(ws0), Fault: inj, PollInterval: 5 * time.Millisecond})
	err1 := startPipeWorker(t, c, WorkerConfig{ID: "w1", Runner: simRunner(ws1), PollInterval: 5 * time.Millisecond})

	sched := core.NewScheduler(0)
	defer sched.Close()
	sched.SetPointRunner(c.RunPoint)
	futures := make(map[string]*core.PointFuture)
	for _, b := range benches {
		for _, m := range mechs {
			futures[b+"/"+m.Label()] = sched.Submit(b, m, opts)
		}
	}
	for key, f := range futures {
		p, err := f.Wait()
		if err != nil {
			t.Fatalf("%s failed through the fleet: %v", key, err)
		}
		buf, _ := json.Marshal(p)
		if string(buf) != string(want[key]) {
			t.Errorf("%s: fleet point is not bit-identical to local simulation", key)
		}
	}
	c.Shutdown()
	if err := <-err0; !errors.Is(err, ErrKilled) {
		t.Errorf("w0 should have been killed: %v", err)
	}
	if err := <-err1; err != nil {
		t.Errorf("w1 exited dirty: %v", err)
	}
	st := c.Stats()
	if st.Lost != 1 {
		t.Errorf("killed worker not declared lost: %+v", st)
	}
	if st.Requeues < 1 {
		t.Errorf("killed worker's lease not requeued: %+v", st)
	}
	if st.Completed != len(want) {
		t.Errorf("completed %d of %d points: %+v", st.Completed, len(want), st)
	}
}

// TestWorkerTransportFaultMatrix drives full worker loops (stub
// runners) against the coordinator under each transport fault kind and
// checks the sweep still converges with the right accounting.
func TestWorkerTransportFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		rules string
		cfg   Config
		check func(t *testing.T, st Stats)
	}{
		{
			name:  "duplicated result",
			rules: "kind=dup,msg=result,nth=1",
			check: func(t *testing.T, st Stats) {
				if st.Duplicates != 1 {
					t.Errorf("duplicates = %d, want 1: %+v", st.Duplicates, st)
				}
			},
		},
		{
			name:  "corrupted result",
			rules: "kind=corruptmsg,msg=result,nth=1",
			check: func(t *testing.T, st Stats) {
				if st.Malformed != 1 || st.Requeues != 1 {
					t.Errorf("malformed/requeues = %d/%d, want 1/1: %+v", st.Malformed, st.Requeues, st)
				}
			},
		},
		{
			name:  "dropped result",
			rules: "kind=drop,msg=result,nth=1",
			cfg:   Config{HeartbeatTimeout: 50 * time.Millisecond, ExpiryInterval: 10 * time.Millisecond},
			check: func(t *testing.T, st Stats) {
				if st.Expired < 1 || st.Requeues < 1 {
					t.Errorf("dropped result never expired: %+v", st)
				}
			},
		},
		{
			name:  "dropped lease",
			rules: "kind=drop,msg=lease,nth=1",
			cfg:   Config{HeartbeatTimeout: 50 * time.Millisecond, ExpiryInterval: 10 * time.Millisecond},
			check: func(t *testing.T, st Stats) {
				if st.Requeues < 1 {
					t.Errorf("dropped lease never requeued: %+v", st)
				}
			},
		},
		{
			name:  "delayed result",
			rules: "kind=delay,msg=result,delay=20ms,nth=1",
			check: func(t *testing.T, st Stats) {
				if st.Completed != 1 || st.Requeues != 0 {
					t.Errorf("delay should be harmless: %+v", st)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCoordinator(tc.cfg)
			inj, err := faultinject.Parse(tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			errCh := startPipeWorker(t, c, WorkerConfig{
				ID: "w0", Fault: inj, PollInterval: 2 * time.Millisecond,
				Runner: func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
					return fakePoint(bench, m, o), nil
				},
			})
			r := await(t, runAsync(c, "zeus", core.Base, tinyOpts()))
			if r.err != nil {
				t.Fatalf("sweep did not converge: %v", r.err)
			}
			c.Shutdown()
			if err := <-errCh; err != nil {
				t.Errorf("worker exited dirty: %v", err)
			}
			st := c.Stats()
			if st.Completed != 1 {
				t.Errorf("point not completed: %+v", st)
			}
			tc.check(t, st)
		})
	}
}

func TestWorkerPanicReportedAndClassified(t *testing.T) {
	c := NewCoordinator(Config{MaxPointFailures: 1})
	errCh := startPipeWorker(t, c, WorkerConfig{
		ID: "w0", PollInterval: 2 * time.Millisecond,
		Runner: func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
			panic("simulated worker bug")
		},
	})
	r := await(t, runAsync(c, "zeus", core.Base, tinyOpts()))
	if r.err == nil {
		t.Fatal("panicking runner produced a point")
	}
	var pe *core.PointError
	if !errors.As(r.err, &pe) || pe.Reason != core.ReasonPanic {
		t.Fatalf("panic not classified: %v", r.err)
	}
	c.Shutdown()
	if err := <-errCh; err != nil {
		t.Errorf("worker should survive its runner's panic: %v", err)
	}
}

func TestHTTPTransport(t *testing.T) {
	c := NewCoordinator(Config{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var werr error
	go func() {
		defer wg.Done()
		werr = RunWorker(WorkerConfig{
			ID: "hw0", PollInterval: 2 * time.Millisecond,
			Runner: func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
				return fakePoint(bench, m, o), nil
			},
		}, &HTTPCaller{URL: srv.URL})
	}()
	r := await(t, runAsync(c, "zeus", core.AdaptiveCompr, tinyOpts()))
	if r.err != nil {
		t.Fatal(r.err)
	}
	c.Shutdown()
	wg.Wait()
	if werr != nil {
		t.Fatalf("HTTP worker exited dirty: %v", werr)
	}
	st := c.Stats()
	if st.Completed != 1 || len(st.Workers) != 1 || st.Workers[0].Worker != "hw0" {
		t.Fatalf("HTTP stats: %+v", st)
	}
}

func TestCoordinatorAndWorkerStoreAgree(t *testing.T) {
	// A point completed through the fleet lands in the store under the
	// exact key a fresh RunPoint computes (shared canonical identity).
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := NewCoordinator(Config{Store: st})
	errCh := startPipeWorker(t, c, WorkerConfig{
		ID: "w0", PollInterval: 2 * time.Millisecond,
		Runner: func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
			return fakePoint(bench, m, o), nil
		},
	})
	r := await(t, runAsync(c, "zeus", core.Prefetch, tinyOpts()))
	if r.err != nil {
		t.Fatal(r.err)
	}
	c.Shutdown()
	<-errCh
	// Options with different scheduling knobs must still hit the record.
	noisy := tinyOpts()
	noisy.Workers = 7
	noisy.CheckLevel = "shadow"
	if _, ok := st.Lookup("zeus", core.Prefetch, noisy); !ok {
		t.Fatal("stored point not found under the canonical key")
	}
	c2 := NewCoordinator(Config{Store: st})
	defer c2.Shutdown()
	if _, err := c2.RunPoint("zeus", core.Prefetch, noisy); err != nil {
		t.Fatal(err)
	}
	if stats := c2.Stats(); stats.FromStore != 1 {
		t.Fatalf("second coordinator did not reuse the store: %+v", stats)
	}
}
