// Result-store adapter: wraps internal/store's content-addressed
// key→value store with the core.PointRecord schema, implementing
// core.PointStore so a scheduler (or coordinator) restores finished
// points from disk instead of re-simulating them.
package fleet

import (
	"encoding/json"
	"fmt"

	"cmpsim/internal/core"
	"cmpsim/internal/store"
)

// Store files finished points in a shared store directory under their
// canonical point key. It implements core.PointStore.
type Store struct {
	s *store.Store
}

// OpenStore opens (creating if needed) a result-store directory for
// reading and writing. At most one writing process per directory.
func OpenStore(dir string, shards int) (*Store, error) {
	s, err := store.Open(dir, shards)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// OpenStoreRead opens a result-store directory read-only (it need not
// exist yet). Adds are refused.
func OpenStoreRead(dir string) (*Store, error) {
	s, err := store.OpenRead(dir)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// Lookup returns the stored point for a request, if an intact record
// with a matching seed count exists. Never trusts a record that fails
// validation.
func (st *Store) Lookup(bench string, m core.Mechanisms, o core.Options) (core.Point, bool) {
	return st.LookupKey(core.PointKey(bench, m, o), core.CanonicalOptions(o).Seeds)
}

// LookupKey is Lookup for callers that already hold the canonical key.
// seeds is the expected run count (0 skips that check).
func (st *Store) LookupKey(key string, seeds int) (core.Point, bool) {
	raw, ok := st.s.Get(key)
	if !ok {
		return core.Point{}, false
	}
	var rec core.PointRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return core.Point{}, false
	}
	if rec.Validate() != nil || rec.Key() != key {
		return core.Point{}, false
	}
	if seeds > 0 && rec.Options.Seeds != seeds {
		return core.Point{}, false
	}
	return rec.Point, true
}

// Add files one finished point under its canonical key. A key already
// present is a no-op (results are deterministic, so first write wins).
func (st *Store) Add(rec core.PointRecord) error {
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("fleet: refusing to store invalid record: %w", err)
	}
	val, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: encode point record: %w", err)
	}
	return st.s.Put(rec.Key(), val)
}

// Len returns how many distinct points this process's view holds.
func (st *Store) Len() int { return st.s.Len() }

// Loaded returns how many intact records the open call restored.
func (st *Store) Loaded() int { return st.s.Loaded() }

// Skipped returns how many corrupt records the open call ignored.
func (st *Store) Skipped() int { return st.s.Skipped() }

// Reload rescans the directory (read-only stores picking up appends).
func (st *Store) Reload() error { return st.s.Reload() }

// Dir returns the backing directory.
func (st *Store) Dir() string { return st.s.Dir() }

// Close releases the underlying append handles.
func (st *Store) Close() error { return st.s.Close() }
