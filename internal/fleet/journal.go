// Durable coordinator journal: a write-ahead log of every state
// transition the result store cannot carry — lease grants, requeues,
// failure signatures, permanent failures and completions — filed next
// to the store's shards as journal.jsonl, with the store's record
// framing (CRC per entry, fsync per append, truncated-tail healing,
// corrupt-skip-never-trust). A restarted coordinator replays the
// journal plus a store scan and reconstructs exact pending/leased/
// failed state: stored points are never re-simulated, requeue budgets
// never restart, and recovered lease ids stay live so a worker that
// computed its point during the outage delivers it after reconnecting.
package fleet

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"

	"cmpsim/internal/core"
	"cmpsim/internal/store"
)

// JournalFile is the journal's filename inside a store directory.
const JournalFile = "journal.jsonl"

// Journal event kinds (the store-record key of each entry).
const (
	jGrant   = "grant"   // lease issued: id, worker, full point identity
	jRequeue = "requeue" // point back in the queue, one budget unit spent
	jFailSig = "failsig" // one worker's failure signature for a point
	jFail    = "fail"    // point permanently failed
	jDone    = "done"    // point completed (its record is in the store)
)

// Event payloads. Grant carries the full point identity so replay can
// rebuild a tracked point without waiting for the new run to request
// it; everything else keys on the canonical point key.
type grantEvent struct {
	Lease      uint64          `json:"lease"`
	Worker     string          `json:"worker"`
	Key        string          `json:"key"`
	Benchmark  string          `json:"benchmark"`
	Mechanisms core.Mechanisms `json:"mechanisms"`
	Options    core.Options    `json:"options"` // canonical form
}

type requeueEvent struct {
	Key      string `json:"key"`
	Requeues int    `json:"requeues"` // budget spent after this requeue
	Why      string `json:"why"`
}

type failSigEvent struct {
	Key    string `json:"key"`
	Worker string `json:"worker"`
	Sig    string `json:"sig"` // reason + ": " + error text
}

type failEvent struct {
	Key      string `json:"key"`
	Reason   string `json:"reason"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts"`
}

type doneEvent struct {
	Key   string `json:"key"`
	Lease uint64 `json:"lease"`
}

// Journal is the coordinator's write-ahead log. Nil methods are safe:
// a nil *Journal journals nothing (the in-memory-only coordinator).
type Journal struct {
	j   *store.Journal
	rec recovery
}

// recovery is the state replayed from a journal at open time.
type recovery struct {
	points    map[string]*recoveredPoint
	leases    map[uint64]string // every granted lease id -> key
	nextLease uint64
	entries   int
	skipped   int
	healed    bool
}

// recoveredPoint accumulates one point's replayed history.
type recoveredPoint struct {
	key   string
	bench string
	mech  core.Mechanisms
	opts  core.Options

	requeues int
	failures map[string]string // worker -> failure signature
	lease    uint64            // outstanding lease id (0 = none)
	worker   string            // outstanding lease holder

	done       bool
	failed     bool
	failReason string
	failError  string
	failTries  int
}

// OpenJournal opens (creating if needed) the journal inside a store
// directory and replays it. The recovered state is consumed by
// NewCoordinator via Config.Journal.
func OpenJournal(dir string) (*Journal, error) {
	sj, err := store.OpenJournal(filepath.Join(dir, JournalFile))
	if err != nil {
		return nil, err
	}
	j := &Journal{j: sj}
	j.rec = replay(sj)
	return j, nil
}

// replay folds the journal's entries into per-point recovered state.
// Unknown kinds and undecodable payloads are skipped (never trusted),
// matching the store's corrupt-record discipline.
func replay(sj *store.Journal) recovery {
	rec := recovery{points: make(map[string]*recoveredPoint), leases: make(map[uint64]string)}
	point := func(key string) *recoveredPoint {
		p, ok := rec.points[key]
		if !ok {
			p = &recoveredPoint{key: key, failures: make(map[string]string)}
			rec.points[key] = p
		}
		return p
	}
	for _, e := range sj.Entries() {
		switch e.Kind {
		case jGrant:
			var ev grantEvent
			if json.Unmarshal(e.Data, &ev) != nil || ev.Key == "" || ev.Lease == 0 {
				rec.skipped++
				continue
			}
			p := point(ev.Key)
			p.bench, p.mech, p.opts = ev.Benchmark, ev.Mechanisms, ev.Options
			p.lease, p.worker = ev.Lease, ev.Worker
			rec.leases[ev.Lease] = ev.Key
			if ev.Lease > rec.nextLease {
				rec.nextLease = ev.Lease
			}
		case jRequeue:
			var ev requeueEvent
			if json.Unmarshal(e.Data, &ev) != nil || ev.Key == "" {
				rec.skipped++
				continue
			}
			p := point(ev.Key)
			if ev.Requeues > p.requeues {
				p.requeues = ev.Requeues
			}
			p.lease, p.worker = 0, "" // the outstanding grant was requeued
		case jFailSig:
			var ev failSigEvent
			if json.Unmarshal(e.Data, &ev) != nil || ev.Key == "" {
				rec.skipped++
				continue
			}
			point(ev.Key).failures[ev.Worker] = ev.Sig
		case jFail:
			var ev failEvent
			if json.Unmarshal(e.Data, &ev) != nil || ev.Key == "" {
				rec.skipped++
				continue
			}
			p := point(ev.Key)
			p.failed = true
			p.failReason, p.failError, p.failTries = ev.Reason, ev.Error, ev.Attempts
			p.lease, p.worker = 0, ""
		case jDone:
			var ev doneEvent
			if json.Unmarshal(e.Data, &ev) != nil || ev.Key == "" {
				rec.skipped++
				continue
			}
			p := point(ev.Key)
			p.done = true
			p.lease, p.worker = 0, ""
			delete(rec.leases, ev.Lease)
		default:
			rec.skipped++
		}
	}
	rec.entries = len(sj.Entries())
	return rec
}

// sortedKeys returns the recovered point keys in deterministic order
// (replay must queue pending points identically across restarts).
func (r *recovery) sortedKeys() []string {
	keys := make([]string, 0, len(r.points))
	for k := range r.points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Entries returns how many intact events the open scan replayed.
func (j *Journal) Entries() int {
	if j == nil {
		return 0
	}
	return j.rec.entries
}

// Skipped returns how many corrupt or undecodable events were ignored.
func (j *Journal) Skipped() int {
	if j == nil {
		return 0
	}
	return j.rec.skipped + j.j.Skipped()
}

// Healed reports whether the open scan repaired a truncated tail.
func (j *Journal) Healed() bool { return j != nil && j.j.Healed() }

// Path returns the backing file.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.j.Path()
}

// append writes one event; a journal write failure must never stop the
// sweep, so the error is returned for logging only.
func (j *Journal) append(kind string, payload any) error {
	if j == nil {
		return nil
	}
	return j.j.Append(kind, payload)
}

// reset truncates the journal after a cleanly finished sweep.
func (j *Journal) reset() error {
	if j == nil {
		return nil
	}
	return j.j.Reset()
}

// Close releases the append handle.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.j.Close()
}

// String summarizes the replayed state for startup logging.
func (j *Journal) String() string {
	if j == nil {
		return "no journal"
	}
	return fmt.Sprintf("%d events replayed (%d points), %d corrupt entries skipped",
		j.rec.entries, len(j.rec.points), j.Skipped())
}
