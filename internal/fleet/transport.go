// Transports. Both carry the same Message state machine: a pipe pair
// exchanges one JSONL message per line in lockstep (the local-fleet
// deployment — the coordinator holds each worker's stdin/stdout), and
// HTTP posts one message per request (remote workers). Pipe transport
// detects worker loss the instant the stream closes; HTTP relies on
// heartbeat expiry.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// HTTP transport bounds. Every exchange is one small JSON message (the
// largest is a result carrying one PointRecord), so both the request
// body cap and the call timeout can be tight without ever cutting off
// legitimate traffic.
const (
	// MaxMessageBytes caps one HTTP request body: a hostile or confused
	// client cannot make the coordinator buffer an unbounded message.
	MaxMessageBytes = 16 << 20

	// DefaultCallTimeout bounds one HTTP exchange end to end (dial,
	// write, coordinator handling, read) when the caller supplies no
	// client of its own.
	DefaultCallTimeout = 30 * time.Second
)

// defaultHTTPClient replaces http.DefaultClient for HTTPCaller: the
// default client has no timeout at all, so one wedged coordinator
// connection would hang a worker forever instead of tripping the
// worker's retry-and-reconnect path.
var defaultHTTPClient = &http.Client{Timeout: DefaultCallTimeout}

// ServePipe drives the coordinator from one worker's message stream
// (reply written for every request, in order) until the stream ends.
// On EOF — the worker exited, cleanly or not — every lease held by the
// worker the stream identified is requeued via WorkerLost. A clean EOF
// returns nil.
func (c *Coordinator) ServePipe(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	var workerID string
	lost := func() {
		if workerID != "" {
			c.WorkerLost(workerID)
		}
	}
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			lost()
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return fmt.Errorf("fleet: read worker stream: %w", err)
		}
		if m.Worker != "" {
			workerID = m.Worker
		}
		if err := enc.Encode(c.Handle(m)); err != nil {
			lost()
			return fmt.Errorf("fleet: write worker stream: %w", err)
		}
	}
}

// PipeCaller is the worker's end of a pipe transport: requests written
// to w, replies read from r, strictly one at a time (the mutex keeps
// the heartbeat goroutine's exchanges from interleaving with the main
// loop's).
type PipeCaller struct {
	mu  sync.Mutex
	enc *json.Encoder
	dec *json.Decoder
}

// NewPipeCaller wraps a request writer and a reply reader.
func NewPipeCaller(r io.Reader, w io.Writer) *PipeCaller {
	return &PipeCaller{enc: json.NewEncoder(w), dec: json.NewDecoder(r)}
}

// Call sends one request and reads its reply.
func (p *PipeCaller) Call(m Message) (Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.enc.Encode(m); err != nil {
		return Message{}, fmt.Errorf("fleet: send %s: %w", m.Type, err)
	}
	var resp Message
	if err := p.dec.Decode(&resp); err != nil {
		return Message{}, fmt.Errorf("fleet: reply to %s: %w", m.Type, err)
	}
	return resp, nil
}

// Handler exposes the coordinator over HTTP: POST one Message as JSON,
// receive the reply Message. Worker loss over HTTP is detected only by
// heartbeat expiry — there is no stream to close.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "fleet: POST one protocol message", http.StatusMethodNotAllowed)
			return
		}
		var m Message
		r.Body = http.MaxBytesReader(w, r.Body, MaxMessageBytes)
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			http.Error(w, fmt.Sprintf("fleet: malformed message: %v", err), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Handle(m))
	})
}

// HTTPCaller is the worker's end of an HTTP transport.
type HTTPCaller struct {
	URL    string
	Client *http.Client // nil = a shared client with DefaultCallTimeout
}

// Call posts one request and decodes the reply.
func (h *HTTPCaller) Call(m Message) (Message, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return Message{}, fmt.Errorf("fleet: encode %s: %w", m.Type, err)
	}
	client := h.Client
	if client == nil {
		client = defaultHTTPClient
	}
	resp, err := client.Post(h.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return Message{}, fmt.Errorf("fleet: post %s: %w", m.Type, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return Message{}, fmt.Errorf("fleet: coordinator returned %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var out Message
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Message{}, fmt.Errorf("fleet: decode reply to %s: %w", m.Type, err)
	}
	return out, nil
}
