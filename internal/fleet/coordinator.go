// The coordinator: owns every pending data point, leases them to
// workers, tracks heartbeats, and requeues work the moment a worker
// goes quiet, a lease expires, a response is malformed, or a pipe
// closes. Its Handle method is the whole protocol state machine —
// transport-independent and driven identically by ServePipe, the HTTP
// handler, and tests calling it directly.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"cmpsim/internal/core"
)

// Defaults for Config's zero values.
const (
	DefaultLeaseTimeout     = 10 * time.Minute
	DefaultHeartbeatTimeout = 30 * time.Second
	DefaultMaxRequeues      = 3
	DefaultMaxPointFailures = 2
)

// Config tunes one coordinator. The zero value is usable: defaults
// above, no store, wall-clock time.
type Config struct {
	// LeaseTimeout bounds one lease's total lifetime: a point not
	// reported back within it is requeued even if heartbeats keep
	// arriving (a wedged simulation heartbeats forever).
	LeaseTimeout time.Duration

	// HeartbeatTimeout requeues a lease whose worker has not been heard
	// from (heartbeat or result) for this long.
	HeartbeatTimeout time.Duration

	// MaxRequeues bounds how many times one point may be requeued
	// (worker loss, expiry, malformed results, worker-reported failures)
	// before the point degrades to a permanent failure.
	MaxRequeues int

	// MaxPointFailures degrades a point to FAILED(reason) once this many
	// distinct workers report the same failure for it: the point, not
	// the workers, is broken.
	MaxPointFailures int

	// Store, when set, is consulted before leasing (a point already on
	// disk is served without simulation) and fed every accepted result.
	Store *Store

	// Now substitutes a fake clock for lease/heartbeat bookkeeping in
	// tests. Nil means time.Now.
	Now func() time.Time

	// ExpiryInterval, when positive, runs CheckExpired on a background
	// ticker until Shutdown. Zero means the owner calls CheckExpired.
	ExpiryInterval time.Duration

	// Logf, when set, receives one line per notable event (lease,
	// result, requeue, worker loss). Nil discards them.
	Logf func(format string, args ...any)
}

// Point lifecycle inside the coordinator.
type pointState int

const (
	statePending pointState = iota // queued, waiting for a worker
	stateLeased                    // leased out, heartbeats expected
	stateDone                      // result accepted
	stateFailed                    // permanently failed
)

// trackedPoint is the coordinator's bookkeeping for one data point.
type trackedPoint struct {
	key   string
	bench string
	mech  core.Mechanisms
	opts  core.Options // canonical

	state    pointState
	lease    uint64 // current lease id while leased
	worker   string // current lease holder
	leasedAt time.Time
	lastBeat time.Time
	requeues int

	// failures records, per distinct worker, the failure signature that
	// worker reported for this point (reason + error text).
	failures map[string]string

	point core.Point
	err   error
	done  chan struct{} // closed exactly once on done/failed
}

// workerInfo is the per-worker accounting surfaced by Report.
type workerInfo struct {
	leases     int
	results    int
	failures   int
	duplicates int
	malformed  int
	lost       bool
}

// Coordinator is the sweep service's server half. Safe for concurrent
// use from any number of transport goroutines and RunPoint callers.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	points    map[string]*trackedPoint
	queue     []string // pending keys, FIFO
	leases    map[uint64]string
	nextLease uint64
	workers   map[string]*workerInfo
	closed    bool

	fromStore  int
	requeues   int
	expired    int
	lost       int
	duplicates int
	malformed  int

	stopExpiry chan struct{}
}

// NewCoordinator builds a coordinator, applying Config defaults and —
// when ExpiryInterval is set — starting the expiry ticker.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.MaxRequeues <= 0 {
		cfg.MaxRequeues = DefaultMaxRequeues
	}
	if cfg.MaxPointFailures <= 0 {
		cfg.MaxPointFailures = DefaultMaxPointFailures
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Coordinator{
		cfg:     cfg,
		points:  make(map[string]*trackedPoint),
		leases:  make(map[uint64]string),
		workers: make(map[string]*workerInfo),
	}
	if cfg.ExpiryInterval > 0 {
		c.stopExpiry = make(chan struct{})
		go c.expiryLoop(cfg.ExpiryInterval)
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) expiryLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.CheckExpired()
		case <-c.stopExpiry:
			return
		}
	}
}

// RunPoint is the core.PointRunner the scheduler drives: it enqueues
// the point for leasing and blocks until a worker's accepted result (or
// a permanent failure) resolves it. Concurrent calls for the same key
// share one tracked point.
func (c *Coordinator) RunPoint(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
	o = core.CanonicalOptions(o)
	key := core.PointKey(bench, m, o)
	c.mu.Lock()
	tp, ok := c.points[key]
	if !ok {
		tp = &trackedPoint{
			key: key, bench: bench, mech: m, opts: o,
			failures: make(map[string]string),
			done:     make(chan struct{}),
		}
		c.points[key] = tp
		if c.cfg.Store != nil {
			if p, hit := c.cfg.Store.LookupKey(key, o.Seeds); hit {
				tp.state = stateDone
				tp.point = p
				c.fromStore++
				close(tp.done)
			}
		}
		if tp.state == statePending {
			if c.closed {
				tp.state = stateFailed
				tp.err = errors.New("fleet: coordinator is shut down")
				close(tp.done)
			} else {
				c.queue = append(c.queue, key)
			}
		}
	}
	c.mu.Unlock()
	<-tp.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return tp.point, tp.err
}

// Handle runs one protocol request through the state machine and
// returns the reply. Every transport funnels into it.
func (c *Coordinator) Handle(m Message) Message {
	switch m.Type {
	case MsgHello:
		c.mu.Lock()
		c.workerLocked(m.Worker)
		c.mu.Unlock()
		return Message{Type: MsgOK}
	case MsgNext:
		return c.handleNext(m)
	case MsgHeartbeat:
		return c.handleHeartbeat(m)
	case MsgResult:
		return c.handleResult(m)
	default:
		return Message{Type: MsgError, Error: fmt.Sprintf("fleet: unknown message type %q", m.Type)}
	}
}

// workerLocked returns (creating if needed) the row for one worker id.
func (c *Coordinator) workerLocked(id string) *workerInfo {
	if id == "" {
		id = "?"
	}
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{}
		c.workers[id] = w
	}
	return w
}

// handleNext pops the oldest pending point into a fresh lease.
func (c *Coordinator) handleNext(m Message) Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workerLocked(m.Worker)
	w.lost = false // a polling worker is alive by definition
	for len(c.queue) > 0 {
		key := c.queue[0]
		c.queue = c.queue[1:]
		tp := c.points[key]
		if tp == nil || tp.state != statePending {
			continue // resolved while queued (late result, store hit)
		}
		c.nextLease++
		now := c.cfg.Now()
		tp.state = stateLeased
		tp.lease = c.nextLease
		tp.worker = m.Worker
		tp.leasedAt = now
		tp.lastBeat = now
		c.leases[tp.lease] = key
		w.leases++
		c.logf("fleet: lease %d: %s/%s -> %s", tp.lease, tp.bench, tp.mech.Label(), m.Worker)
		mech, opts := tp.mech, tp.opts
		return Message{
			Type: MsgLease, Lease: tp.lease, Key: key,
			Benchmark: tp.bench, Mechanisms: &mech, Options: &opts,
		}
	}
	if c.closed {
		return Message{Type: MsgDone}
	}
	return Message{Type: MsgWait}
}

// handleHeartbeat refreshes a live lease; a stale one is cancelled so
// the worker abandons the point.
func (c *Coordinator) handleHeartbeat(m Message) Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.leases[m.Lease]
	if !ok {
		return Message{Type: MsgCancel}
	}
	tp := c.points[key]
	if tp == nil || tp.state != stateLeased || tp.lease != m.Lease {
		return Message{Type: MsgCancel}
	}
	tp.lastBeat = c.cfg.Now()
	return Message{Type: MsgOK}
}

// handleResult validates and accepts one reported point (or failure).
// Duplicate and late results are acknowledged idempotently; malformed
// ones requeue the point and are counted against the reporting worker.
func (c *Coordinator) handleResult(m Message) Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workerLocked(m.Worker)
	key, ok := c.leases[m.Lease]
	if !ok {
		// A lease we never issued (or one already retired along with its
		// point): nothing to do, but tell the worker all is well.
		w.duplicates++
		c.duplicates++
		return Message{Type: MsgOK}
	}
	tp := c.points[key]
	if tp == nil {
		delete(c.leases, m.Lease)
		return Message{Type: MsgOK}
	}
	if tp.state == stateDone || tp.state == stateFailed {
		// Late duplicate for an already-resolved point.
		delete(c.leases, m.Lease)
		w.duplicates++
		c.duplicates++
		return Message{Type: MsgOK}
	}
	// Note: m.Lease may be a requeued (stale) lease whose worker turned
	// out to be alive after all. Its result is still a deterministic
	// function of the key, so a valid record is accepted below exactly
	// like one from the current lease holder.

	if m.Error != "" {
		// Worker-reported failure: the simulation itself failed over
		// there. Count it per distinct worker; the same signature from
		// enough workers means the point is broken, not the worker.
		delete(c.leases, m.Lease)
		w.failures++
		sig := m.Reason + ": " + m.Error
		tp.failures[m.Worker] = sig
		n := 0
		for _, s := range tp.failures {
			if s == sig {
				n++
			}
		}
		if n >= c.cfg.MaxPointFailures {
			reason := m.Reason
			if reason == "" {
				reason = core.ReasonError
			}
			c.failLocked(tp, &core.PointError{
				Benchmark: tp.bench, Mechanisms: tp.mech, Options: tp.opts,
				Attempts: tp.requeues + 1, Reason: reason,
				Err: fmt.Errorf("fleet: %d workers reported: %s", n, m.Error),
			})
			return Message{Type: MsgOK}
		}
		c.requeueLocked(tp, fmt.Sprintf("worker %s failure: %s", m.Worker, m.Error))
		return Message{Type: MsgOK}
	}

	rec, err := decodeResult(m)
	if err == nil && rec.Key() != key {
		err = fmt.Errorf("fleet: result key does not match lease %d", m.Lease)
	}
	if err != nil {
		// Malformed response: never trusted. The lease is spent; the
		// point goes back in the queue.
		delete(c.leases, m.Lease)
		w.malformed++
		c.malformed++
		c.requeueLocked(tp, fmt.Sprintf("malformed result from %s: %v", m.Worker, err))
		return Message{Type: MsgError, Error: err.Error()}
	}

	delete(c.leases, m.Lease)
	w.results++
	c.resolveLocked(tp, rec.Point)
	return Message{Type: MsgOK}
}

// decodeResult checks a result message's CRC and validates the record.
func decodeResult(m Message) (core.PointRecord, error) {
	var rec core.PointRecord
	if len(m.Data) == 0 {
		return rec, errors.New("fleet: result carries no record")
	}
	if crc32.ChecksumIEEE(m.Data) != m.CRC {
		return rec, errors.New("fleet: result checksum mismatch")
	}
	if err := json.Unmarshal(m.Data, &rec); err != nil {
		return rec, fmt.Errorf("fleet: malformed result record: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return rec, err
	}
	return rec, nil
}

// resolveLocked publishes an accepted result: waiters released, store
// fed. Callers hold mu.
func (c *Coordinator) resolveLocked(tp *trackedPoint, p core.Point) {
	tp.state = stateDone
	tp.point = p
	tp.err = nil
	close(tp.done)
	c.logf("fleet: done: %s/%s", tp.bench, tp.mech.Label())
	if c.cfg.Store != nil {
		if err := c.cfg.Store.Add(core.NewPointRecord(tp.bench, tp.mech, tp.opts, p)); err != nil {
			c.logf("fleet: store append failed: %v", err)
		}
	}
}

// failLocked retires a point permanently. Callers hold mu.
func (c *Coordinator) failLocked(tp *trackedPoint, err error) {
	tp.state = stateFailed
	tp.err = err
	close(tp.done)
	c.logf("fleet: FAILED %s/%s: %v", tp.bench, tp.mech.Label(), err)
}

// requeueLocked puts a leased (or just-unleased) point back in the
// queue, spending one unit of its requeue budget; an exhausted budget
// degrades the point to a permanent failure. Callers hold mu.
func (c *Coordinator) requeueLocked(tp *trackedPoint, why string) {
	if tp.state == stateDone || tp.state == stateFailed {
		return
	}
	// The old lease stays in the lease map on purpose: if the presumed-
	// dead worker reports after all, its (deterministic) result is still
	// usable. Entries retire when their result or the point arrives.
	tp.requeues++
	c.requeues++
	if tp.requeues > c.cfg.MaxRequeues {
		c.failLocked(tp, &core.PointError{
			Benchmark: tp.bench, Mechanisms: tp.mech, Options: tp.opts,
			Attempts: tp.requeues, Reason: core.ReasonError,
			Err: fmt.Errorf("fleet: requeue budget exhausted after %d attempts (last: %s)", tp.requeues, why),
		})
		return
	}
	c.logf("fleet: requeue %s/%s (%s)", tp.bench, tp.mech.Label(), why)
	tp.state = statePending
	tp.lease = 0
	tp.worker = ""
	c.queue = append(c.queue, tp.key)
}

// CheckExpired requeues every lease whose heartbeats stopped
// (HeartbeatTimeout since the last one) or whose total lifetime passed
// LeaseTimeout. Driven by the expiry ticker or called directly.
func (c *Coordinator) CheckExpired() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	for _, tp := range c.points {
		if tp.state != stateLeased {
			continue
		}
		switch {
		case now.Sub(tp.lastBeat) > c.cfg.HeartbeatTimeout:
			c.expired++
			c.requeueLocked(tp, fmt.Sprintf("heartbeat lost (worker %s)", tp.worker))
		case now.Sub(tp.leasedAt) > c.cfg.LeaseTimeout:
			c.expired++
			c.requeueLocked(tp, fmt.Sprintf("lease expired (worker %s)", tp.worker))
		}
	}
}

// WorkerLost requeues every lease held by one worker — the pipe
// transport calls it the instant a worker's stream closes, so loss is
// detected without waiting out a heartbeat timeout.
func (c *Coordinator) WorkerLost(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return // workers draining after Shutdown exited cleanly, not lost
	}
	w := c.workerLocked(worker)
	if w.lost {
		return
	}
	w.lost = true
	c.lost++
	for _, tp := range c.points {
		if tp.state == stateLeased && tp.worker == worker {
			c.requeueLocked(tp, fmt.Sprintf("worker %s lost", worker))
		}
	}
	c.logf("fleet: worker %s lost", worker)
}

// Shutdown retires the coordinator: pending and leased points fail (a
// sweep normally calls it only after every RunPoint returned, so there
// is nothing left to fail), future next requests get done, and the
// expiry ticker stops. Idempotent.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, tp := range c.points {
		if tp.state == statePending || tp.state == stateLeased {
			c.failLocked(tp, errors.New("fleet: coordinator shut down with point unfinished"))
		}
	}
	c.queue = nil
	stop := c.stopExpiry
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// WorkerRow is one worker's accounting in Stats.
type WorkerRow struct {
	Worker     string
	Leases     int // leases issued to this worker
	Results    int // accepted results
	Failures   int // worker-reported point failures
	Duplicates int // late/duplicate results (acknowledged, ignored)
	Malformed  int // results rejected by CRC/validation
	Lost       bool
}

// Stats is a snapshot of the coordinator's accounting.
type Stats struct {
	Points     int // tracked points
	FromStore  int // served from the shared store without leasing
	Completed  int // resolved with an accepted result
	Failed     int // permanently failed
	Pending    int // still queued or leased
	Requeues   int // total requeue events
	Expired    int // requeues caused by heartbeat/lease expiry
	Lost       int // workers declared lost
	Duplicates int // duplicate results across all workers
	Malformed  int // malformed results across all workers
	Workers    []WorkerRow
}

// Stats snapshots the accounting (workers sorted by id).
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Points: len(c.points), FromStore: c.fromStore, Requeues: c.requeues,
		Expired: c.expired, Lost: c.lost, Duplicates: c.duplicates, Malformed: c.malformed,
	}
	for _, tp := range c.points {
		switch tp.state {
		case stateDone:
			st.Completed++
		case stateFailed:
			st.Failed++
		default:
			st.Pending++
		}
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerRow{
			Worker: id, Leases: w.leases, Results: w.results, Failures: w.failures,
			Duplicates: w.duplicates, Malformed: w.malformed, Lost: w.lost,
		})
	}
	return st
}
