// The coordinator: owns every pending data point, leases them to
// workers, tracks heartbeats, and requeues work the moment a worker
// goes quiet, a lease expires, a response is malformed, or a pipe
// closes. Its Handle method is the whole protocol state machine —
// transport-independent and driven identically by ServePipe, the HTTP
// handler, and tests calling it directly.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"cmpsim/internal/core"
	"cmpsim/internal/faultinject"
)

// Defaults for Config's zero values.
const (
	DefaultLeaseTimeout     = 10 * time.Minute
	DefaultHeartbeatTimeout = 30 * time.Second
	DefaultMaxRequeues      = 3
	DefaultMaxPointFailures = 2
)

// Config tunes one coordinator. The zero value is usable: defaults
// above, no store, wall-clock time.
type Config struct {
	// LeaseTimeout bounds one lease's total lifetime: a point not
	// reported back within it is requeued even if heartbeats keep
	// arriving (a wedged simulation heartbeats forever).
	LeaseTimeout time.Duration

	// HeartbeatTimeout requeues a lease whose worker has not been heard
	// from (heartbeat or result) for this long.
	HeartbeatTimeout time.Duration

	// MaxRequeues bounds how many times one point may be requeued
	// (worker loss, expiry, malformed results, worker-reported failures)
	// before the point degrades to a permanent failure.
	MaxRequeues int

	// MaxPointFailures degrades a point to FAILED(reason) once this many
	// distinct workers report the same failure for it: the point, not
	// the workers, is broken.
	MaxPointFailures int

	// Store, when set, is consulted before leasing (a point already on
	// disk is served without simulation) and fed every accepted result.
	Store *Store

	// Journal, when set, is the durable write-ahead log: every lease
	// grant, requeue, failure signature, permanent failure and
	// completion is fsync'd to it before the coordinator acts on the
	// event, and the replayed state it carries (from OpenJournal) seeds
	// the new coordinator — leases stay resolvable across a crash and
	// requeue budgets never restart. Nil journals nothing.
	Journal *Journal

	// Fault, when set together with Crash, consults coordinator crash
	// rules (kind=killcoord|restartcoord) as each worker request
	// arrives; a firing rule invokes Crash before the request is
	// processed. Test/chaos support only.
	Fault *faultinject.Injector

	// Crash performs an injected coordinator crash (normally it never
	// returns: os.Exit in the command, a panic or channel signal in
	// tests). Nil disables crash rules.
	Crash func(kind faultinject.Kind)

	// Now substitutes a fake clock for lease/heartbeat bookkeeping in
	// tests. Nil means time.Now.
	Now func() time.Time

	// ExpiryInterval, when positive, runs CheckExpired on a background
	// ticker until Shutdown. Zero means the owner calls CheckExpired.
	ExpiryInterval time.Duration

	// Logf, when set, receives one line per notable event (lease,
	// result, requeue, worker loss). Nil discards them.
	Logf func(format string, args ...any)
}

// Point lifecycle inside the coordinator.
type pointState int

const (
	statePending pointState = iota // queued, waiting for a worker
	stateLeased                    // leased out, heartbeats expected
	stateDone                      // result accepted
	stateFailed                    // permanently failed
)

// trackedPoint is the coordinator's bookkeeping for one data point.
type trackedPoint struct {
	key   string
	bench string
	mech  core.Mechanisms
	opts  core.Options // canonical

	state    pointState
	lease    uint64 // current lease id while leased
	worker   string // current lease holder
	leasedAt time.Time
	lastBeat time.Time
	requeues int

	// failures records, per distinct worker, the failure signature that
	// worker reported for this point (reason + error text).
	failures map[string]string

	point core.Point
	err   error
	done  chan struct{} // closed exactly once on done/failed
}

// workerInfo is the per-worker accounting surfaced by Report.
type workerInfo struct {
	leases     int
	results    int
	failures   int
	duplicates int
	malformed  int
	lost       bool
}

// Coordinator is the sweep service's server half. Safe for concurrent
// use from any number of transport goroutines and RunPoint callers.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	points    map[string]*trackedPoint
	queue     []string // pending keys, FIFO
	leases    map[uint64]string
	nextLease uint64
	workers   map[string]*workerInfo
	draining  bool
	closed    bool

	fromStore  int
	recovered  int
	requeues   int
	expired    int
	lost       int
	duplicates int
	malformed  int

	stopExpiry chan struct{}
}

// NewCoordinator builds a coordinator, applying Config defaults and —
// when ExpiryInterval is set — starting the expiry ticker.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.MaxRequeues <= 0 {
		cfg.MaxRequeues = DefaultMaxRequeues
	}
	if cfg.MaxPointFailures <= 0 {
		cfg.MaxPointFailures = DefaultMaxPointFailures
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Coordinator{
		cfg:     cfg,
		points:  make(map[string]*trackedPoint),
		leases:  make(map[uint64]string),
		workers: make(map[string]*workerInfo),
	}
	if cfg.Journal != nil {
		c.recoverFromJournal()
	}
	if cfg.ExpiryInterval > 0 {
		c.stopExpiry = make(chan struct{})
		go c.expiryLoop(cfg.ExpiryInterval)
	}
	return c
}

// recoverFromJournal rebuilds tracked points from the journal replay
// plus a store scan. Runs at construction time, before any transport
// goroutine exists, so no locking is needed. For every recovered point:
// a store record wins outright (done, counted FromStore — a stored
// point is never re-simulated); a journaled permanent failure stays
// failed; an outstanding lease is reinstated with a fresh heartbeat
// window (its worker may still be alive and report late); anything else
// returns to the queue with its requeue budget and failure signatures
// intact. Keys are processed in sorted order so the rebuilt queue is
// deterministic across restarts.
func (c *Coordinator) recoverFromJournal() {
	rec := &c.cfg.Journal.rec
	now := c.cfg.Now()
	c.nextLease = rec.nextLease
	for _, key := range rec.sortedKeys() {
		rp := rec.points[key]
		tp := &trackedPoint{
			key: key, bench: rp.bench, mech: rp.mech, opts: rp.opts,
			requeues: rp.requeues, failures: rp.failures,
			done: make(chan struct{}),
		}
		switch {
		case c.storeHitLocked(tp):
			// stateDone, point filled, fromStore counted.
		case rp.failed:
			tp.state = stateFailed
			tp.err = &core.PointError{
				Benchmark: rp.bench, Mechanisms: rp.mech, Options: rp.opts,
				Attempts: rp.failTries, Reason: rp.failReason,
				Err: fmt.Errorf("fleet: recovered permanent failure: %s", rp.failError),
			}
			close(tp.done)
		case rp.bench == "":
			// The grant carrying this point's identity was lost to journal
			// corruption: nothing usable to rebuild. The new run's RunPoint
			// recreates the point from scratch.
			continue
		case rp.lease != 0:
			tp.state = stateLeased
			tp.lease = rp.lease
			tp.worker = rp.worker
			tp.leasedAt, tp.lastBeat = now, now
			c.logf("fleet: recovered lease %d: %s/%s (worker %s)", rp.lease, rp.bench, rp.mech.Label(), rp.worker)
		default:
			c.queue = append(c.queue, key)
		}
		c.points[key] = tp
		c.recovered++
	}
	// Every granted-but-unresolved lease id stays resolvable: a worker
	// that computed its point during the outage reports under a lease
	// the journal remembers, and the result is accepted like any late
	// result from a presumed-dead worker.
	for id, key := range rec.leases {
		if tp, ok := c.points[key]; ok && tp.state != stateDone && tp.state != stateFailed {
			c.leases[id] = key
		}
	}
	if c.recovered > 0 {
		c.logf("fleet: journal replay recovered %d points (%d leases live)", c.recovered, len(c.leases))
	}
}

// storeHitLocked resolves a tracked point from the store if its record
// is there: stateDone, waiters released at close, FromStore counted.
func (c *Coordinator) storeHitLocked(tp *trackedPoint) bool {
	if c.cfg.Store == nil {
		return false
	}
	p, hit := c.cfg.Store.LookupKey(tp.key, tp.opts.Seeds)
	if !hit {
		return false
	}
	tp.state = stateDone
	tp.point = p
	c.fromStore++
	close(tp.done)
	return true
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) expiryLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.CheckExpired()
		case <-c.stopExpiry:
			return
		}
	}
}

// RunPoint is the core.PointRunner the scheduler drives: it enqueues
// the point for leasing and blocks until a worker's accepted result (or
// a permanent failure) resolves it. Concurrent calls for the same key
// share one tracked point.
func (c *Coordinator) RunPoint(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
	o = core.CanonicalOptions(o)
	key := core.PointKey(bench, m, o)
	c.mu.Lock()
	tp, ok := c.points[key]
	if !ok {
		tp = &trackedPoint{
			key: key, bench: bench, mech: m, opts: o,
			failures: make(map[string]string),
			done:     make(chan struct{}),
		}
		c.points[key] = tp
		c.storeHitLocked(tp)
		if tp.state == statePending {
			switch {
			case c.closed:
				tp.state = stateFailed
				tp.err = errors.New("fleet: coordinator is shut down")
				close(tp.done)
			case c.draining:
				c.failLocked(tp, &core.PointError{
					Benchmark: bench, Mechanisms: m, Options: o,
					Attempts: 1, Reason: core.ReasonDrained,
					Err: errors.New("fleet: sweep draining; point not started"),
				})
			default:
				c.queue = append(c.queue, key)
			}
		}
	}
	c.mu.Unlock()
	<-tp.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return tp.point, tp.err
}

// Handle runs one protocol request through the state machine and
// returns the reply. Every transport funnels into it. Coordinator
// crash rules are consulted before the request is processed, so an
// injected crash loses the message exactly like a real one would.
func (c *Coordinator) Handle(m Message) Message {
	if c.cfg.Fault != nil && c.cfg.Crash != nil {
		if kind, ok := c.cfg.Fault.Coord(m.Type, m.Worker); ok {
			c.logf("fleet: injected coordinator crash (%s) on %s from %s", kind, m.Type, m.Worker)
			c.cfg.Crash(kind)
			// If Crash returned (in-process harnesses), the request is
			// still lost: the "crashed" coordinator must not answer it.
			return Message{Type: MsgError, Error: "fleet: coordinator crashed"}
		}
	}
	switch m.Type {
	case MsgHello:
		c.mu.Lock()
		c.workerLocked(m.Worker)
		c.mu.Unlock()
		return Message{Type: MsgOK}
	case MsgNext:
		return c.handleNext(m)
	case MsgHeartbeat:
		return c.handleHeartbeat(m)
	case MsgResult:
		return c.handleResult(m)
	default:
		return Message{Type: MsgError, Error: fmt.Sprintf("fleet: unknown message type %q", m.Type)}
	}
}

// workerLocked returns (creating if needed) the row for one worker id.
func (c *Coordinator) workerLocked(id string) *workerInfo {
	if id == "" {
		id = "?"
	}
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{}
		c.workers[id] = w
	}
	return w
}

// handleNext pops the oldest pending point into a fresh lease.
func (c *Coordinator) handleNext(m Message) Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workerLocked(m.Worker)
	w.lost = false // a polling worker is alive by definition
	if c.draining {
		// Draining: no new leases; idle workers are released. In-flight
		// leases stay valid and their results are still accepted.
		return Message{Type: MsgDone}
	}
	for len(c.queue) > 0 {
		key := c.queue[0]
		c.queue = c.queue[1:]
		tp := c.points[key]
		if tp == nil || tp.state != statePending {
			continue // resolved while queued (late result, store hit)
		}
		c.nextLease++
		now := c.cfg.Now()
		tp.state = stateLeased
		tp.lease = c.nextLease
		tp.worker = m.Worker
		tp.leasedAt = now
		tp.lastBeat = now
		c.leases[tp.lease] = key
		w.leases++
		// Write-ahead: the grant is durable before the worker learns of
		// it, so no lease can outlive the journal's knowledge of it.
		if err := c.cfg.Journal.append(jGrant, grantEvent{
			Lease: tp.lease, Worker: m.Worker, Key: key,
			Benchmark: tp.bench, Mechanisms: tp.mech, Options: tp.opts,
		}); err != nil {
			c.logf("fleet: journal grant: %v", err)
		}
		c.logf("fleet: lease %d: %s/%s -> %s", tp.lease, tp.bench, tp.mech.Label(), m.Worker)
		mech, opts := tp.mech, tp.opts
		return Message{
			Type: MsgLease, Lease: tp.lease, Key: key,
			Benchmark: tp.bench, Mechanisms: &mech, Options: &opts,
		}
	}
	if c.closed {
		return Message{Type: MsgDone}
	}
	return Message{Type: MsgWait}
}

// handleHeartbeat refreshes a live lease; a stale one is cancelled so
// the worker abandons the point.
func (c *Coordinator) handleHeartbeat(m Message) Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.leases[m.Lease]
	if !ok {
		return Message{Type: MsgCancel}
	}
	tp := c.points[key]
	if tp == nil || tp.state != stateLeased || tp.lease != m.Lease {
		return Message{Type: MsgCancel}
	}
	tp.lastBeat = c.cfg.Now()
	return Message{Type: MsgOK}
}

// handleResult validates and accepts one reported point (or failure).
// Duplicate and late results are acknowledged idempotently; malformed
// ones requeue the point and are counted against the reporting worker.
func (c *Coordinator) handleResult(m Message) Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workerLocked(m.Worker)
	key, ok := c.leases[m.Lease]
	if !ok {
		// A lease we never issued (or one already retired along with its
		// point): nothing to do, but tell the worker all is well.
		w.duplicates++
		c.duplicates++
		return Message{Type: MsgOK}
	}
	tp := c.points[key]
	if tp == nil {
		delete(c.leases, m.Lease)
		return Message{Type: MsgOK}
	}
	if tp.state == stateDone || tp.state == stateFailed {
		// Late duplicate for an already-resolved point.
		delete(c.leases, m.Lease)
		w.duplicates++
		c.duplicates++
		return Message{Type: MsgOK}
	}
	// Note: m.Lease may be a requeued (stale) lease whose worker turned
	// out to be alive after all. Its result is still a deterministic
	// function of the key, so a valid record is accepted below exactly
	// like one from the current lease holder.

	if m.Error != "" {
		// Worker-reported failure: the simulation itself failed over
		// there. Count it per distinct worker; the same signature from
		// enough workers means the point is broken, not the worker.
		delete(c.leases, m.Lease)
		w.failures++
		sig := m.Reason + ": " + m.Error
		tp.failures[m.Worker] = sig
		if err := c.cfg.Journal.append(jFailSig, failSigEvent{Key: tp.key, Worker: m.Worker, Sig: sig}); err != nil {
			c.logf("fleet: journal failsig: %v", err)
		}
		n := 0
		for _, s := range tp.failures {
			if s == sig {
				n++
			}
		}
		if n >= c.cfg.MaxPointFailures {
			reason := m.Reason
			if reason == "" {
				reason = core.ReasonError
			}
			c.failPermanentLocked(tp, &core.PointError{
				Benchmark: tp.bench, Mechanisms: tp.mech, Options: tp.opts,
				Attempts: tp.requeues + 1, Reason: reason,
				Err: fmt.Errorf("fleet: %d workers reported: %s", n, m.Error),
			})
			return Message{Type: MsgOK}
		}
		c.requeueLocked(tp, fmt.Sprintf("worker %s failure: %s", m.Worker, m.Error))
		return Message{Type: MsgOK}
	}

	rec, err := decodeResult(m)
	if err == nil && rec.Key() != key {
		err = fmt.Errorf("fleet: result key does not match lease %d", m.Lease)
	}
	if err != nil {
		// Malformed response: never trusted. The lease is spent; the
		// point goes back in the queue.
		delete(c.leases, m.Lease)
		w.malformed++
		c.malformed++
		c.requeueLocked(tp, fmt.Sprintf("malformed result from %s: %v", m.Worker, err))
		return Message{Type: MsgError, Error: err.Error()}
	}

	delete(c.leases, m.Lease)
	w.results++
	c.resolveLocked(tp, rec.Point, m.Lease)
	return Message{Type: MsgOK}
}

// decodeResult checks a result message's CRC and validates the record.
func decodeResult(m Message) (core.PointRecord, error) {
	var rec core.PointRecord
	if len(m.Data) == 0 {
		return rec, errors.New("fleet: result carries no record")
	}
	if crc32.ChecksumIEEE(m.Data) != m.CRC {
		return rec, errors.New("fleet: result checksum mismatch")
	}
	if err := json.Unmarshal(m.Data, &rec); err != nil {
		return rec, fmt.Errorf("fleet: malformed result record: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return rec, err
	}
	return rec, nil
}

// resolveLocked publishes an accepted result: waiters released, store
// fed, completion journaled. The store record is written before the
// journal's done event, so a journaled completion always implies a
// stored record (a crash in between leaves store-only, which replay
// resolves via its store scan). Callers hold mu.
func (c *Coordinator) resolveLocked(tp *trackedPoint, p core.Point, lease uint64) {
	tp.state = stateDone
	tp.point = p
	tp.err = nil
	close(tp.done)
	c.logf("fleet: done: %s/%s", tp.bench, tp.mech.Label())
	if c.cfg.Store != nil {
		if err := c.cfg.Store.Add(core.NewPointRecord(tp.bench, tp.mech, tp.opts, p)); err != nil {
			c.logf("fleet: store append failed: %v", err)
		}
	}
	if err := c.cfg.Journal.append(jDone, doneEvent{Key: tp.key, Lease: lease}); err != nil {
		c.logf("fleet: journal done: %v", err)
	}
}

// failLocked retires a point permanently. Callers hold mu. It does NOT
// journal: drain and shutdown failures are transient to the sweep (a
// restarted coordinator should retry those points), so only the
// genuine permanent-failure sites go through failPermanentLocked.
func (c *Coordinator) failLocked(tp *trackedPoint, err error) {
	tp.state = stateFailed
	tp.err = err
	close(tp.done)
	c.logf("fleet: FAILED %s/%s: %v", tp.bench, tp.mech.Label(), err)
}

// failPermanentLocked journals a genuine permanent failure (requeue
// budget exhausted, too many distinct workers reporting the same
// signature) and retires the point. A restarted coordinator keeps the
// point failed instead of burning workers on it again. Callers hold mu.
func (c *Coordinator) failPermanentLocked(tp *trackedPoint, perr *core.PointError) {
	if err := c.cfg.Journal.append(jFail, failEvent{
		Key: tp.key, Reason: perr.Reason, Error: perr.Err.Error(), Attempts: perr.Attempts,
	}); err != nil {
		c.logf("fleet: journal fail: %v", err)
	}
	c.failLocked(tp, perr)
}

// requeueLocked puts a leased (or just-unleased) point back in the
// queue, spending one unit of its requeue budget; an exhausted budget
// degrades the point to a permanent failure. Callers hold mu.
func (c *Coordinator) requeueLocked(tp *trackedPoint, why string) {
	if tp.state == stateDone || tp.state == stateFailed {
		return
	}
	// The old lease stays in the lease map on purpose: if the presumed-
	// dead worker reports after all, its (deterministic) result is still
	// usable. Entries retire when their result or the point arrives.
	tp.requeues++
	c.requeues++
	if tp.requeues > c.cfg.MaxRequeues {
		c.failPermanentLocked(tp, &core.PointError{
			Benchmark: tp.bench, Mechanisms: tp.mech, Options: tp.opts,
			Attempts: tp.requeues, Reason: core.ReasonError,
			Err: fmt.Errorf("fleet: requeue budget exhausted after %d attempts (last: %s)", tp.requeues, why),
		})
		return
	}
	if err := c.cfg.Journal.append(jRequeue, requeueEvent{Key: tp.key, Requeues: tp.requeues, Why: why}); err != nil {
		c.logf("fleet: journal requeue: %v", err)
	}
	c.logf("fleet: requeue %s/%s (%s)", tp.bench, tp.mech.Label(), why)
	tp.state = statePending
	tp.lease = 0
	tp.worker = ""
	c.queue = append(c.queue, tp.key)
}

// CheckExpired requeues every lease whose heartbeats stopped
// (HeartbeatTimeout since the last one) or whose total lifetime passed
// LeaseTimeout. Driven by the expiry ticker or called directly.
func (c *Coordinator) CheckExpired() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	for _, tp := range c.points {
		if tp.state != stateLeased {
			continue
		}
		switch {
		case now.Sub(tp.lastBeat) > c.cfg.HeartbeatTimeout:
			c.expired++
			c.requeueLocked(tp, fmt.Sprintf("heartbeat lost (worker %s)", tp.worker))
		case now.Sub(tp.leasedAt) > c.cfg.LeaseTimeout:
			c.expired++
			c.requeueLocked(tp, fmt.Sprintf("lease expired (worker %s)", tp.worker))
		}
	}
}

// WorkerLost requeues every lease held by one worker — the pipe
// transport calls it the instant a worker's stream closes, so loss is
// detected without waiting out a heartbeat timeout.
func (c *Coordinator) WorkerLost(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return // workers draining after Shutdown exited cleanly, not lost
	}
	w := c.workerLocked(worker)
	if w.lost {
		return
	}
	w.lost = true
	c.lost++
	for _, tp := range c.points {
		if tp.state == stateLeased && tp.worker == worker {
			c.requeueLocked(tp, fmt.Sprintf("worker %s lost", worker))
		}
	}
	c.logf("fleet: worker %s lost", worker)
}

// Drain flips the coordinator into drain mode: next requests get done
// (idle workers exit cleanly), no new leases are issued, and RunPoint
// calls for not-yet-queued points fail immediately with ReasonDrained.
// In-flight leases stay valid so their results are still accepted.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	c.logf("fleet: draining: no new leases; waiting for in-flight points")
}

// InFlight counts points currently leased out.
func (c *Coordinator) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, tp := range c.points {
		if tp.state == stateLeased {
			n++
		}
	}
	return n
}

// DrainAndWait drains, waits (bounded by timeout) for in-flight leases
// to resolve, then fails whatever is left with ReasonDrained and shuts
// down. Queued-but-unleased points fail without waiting: their journal
// state survives, so a restarted coordinator re-runs exactly them.
// Returns how many points were abandoned to the drain.
func (c *Coordinator) DrainAndWait(timeout time.Duration) int {
	c.Drain()
	deadline := time.Now().Add(timeout)
	for c.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	c.mu.Lock()
	abandoned := 0
	for _, tp := range c.points {
		if tp.state == statePending || tp.state == stateLeased {
			abandoned++
			c.failLocked(tp, &core.PointError{
				Benchmark: tp.bench, Mechanisms: tp.mech, Options: tp.opts,
				Attempts: tp.requeues + 1, Reason: core.ReasonDrained,
				Err: errors.New("fleet: sweep drained before the point finished"),
			})
		}
	}
	c.queue = nil
	c.mu.Unlock()
	c.Shutdown()
	return abandoned
}

// Shutdown retires the coordinator: pending and leased points fail (a
// sweep normally calls it only after every RunPoint returned, so there
// is nothing left to fail), future next requests get done, and the
// expiry ticker stops. A sweep that finished cleanly — nothing pending,
// leased, or drained away — truncates its journal: the store alone
// carries the finished state, and the next run starts a fresh log.
// Idempotent.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	clean := !c.draining
	for _, tp := range c.points {
		if tp.state == statePending || tp.state == stateLeased {
			clean = false
			c.failLocked(tp, errors.New("fleet: coordinator shut down with point unfinished"))
		}
	}
	c.queue = nil
	if clean {
		if err := c.cfg.Journal.reset(); err != nil {
			c.logf("fleet: journal reset: %v", err)
		}
	}
	stop := c.stopExpiry
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// WorkerRow is one worker's accounting in Stats.
type WorkerRow struct {
	Worker     string
	Leases     int // leases issued to this worker
	Results    int // accepted results
	Failures   int // worker-reported point failures
	Duplicates int // late/duplicate results (acknowledged, ignored)
	Malformed  int // results rejected by CRC/validation
	Lost       bool
}

// Stats is a snapshot of the coordinator's accounting.
type Stats struct {
	Points     int // tracked points
	FromStore  int // served from the shared store without leasing
	Recovered  int // rebuilt from the journal replay at startup
	Completed  int // resolved with an accepted result
	Failed     int // permanently failed
	Pending    int // still queued or leased
	Requeues   int // total requeue events
	Expired    int // requeues caused by heartbeat/lease expiry
	Lost       int // workers declared lost
	Duplicates int // duplicate results across all workers
	Malformed  int // malformed results across all workers
	Workers    []WorkerRow
}

// Stats snapshots the accounting (workers sorted by id).
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Points: len(c.points), FromStore: c.fromStore, Recovered: c.recovered,
		Requeues: c.requeues, Expired: c.expired, Lost: c.lost,
		Duplicates: c.duplicates, Malformed: c.malformed,
	}
	for _, tp := range c.points {
		switch tp.state {
		case stateDone:
			st.Completed++
		case stateFailed:
			st.Failed++
		default:
			st.Pending++
		}
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerRow{
			Worker: id, Leases: w.leases, Results: w.results, Failures: w.failures,
			Duplicates: w.duplicates, Malformed: w.malformed, Lost: w.lost,
		})
	}
	return st
}
