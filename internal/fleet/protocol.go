// Package fleet turns a sweep into a fault-tolerant service: a
// coordinator owns the grid of pending data points and leases them, one
// at a time, to worker processes that simulate and report back. The
// protocol is a strict request/response exchange of small JSON messages
// that works identically over stdin/stdout pipes (one JSONL message per
// line, lockstep) and HTTP (one POST per message), so the same worker
// binary serves local fleets and remote ones.
//
// Worker → coordinator requests:
//
//	hello      {worker}                  announce; reply ok
//	next       {worker}                  ask for work; reply lease, wait or done
//	heartbeat  {worker, lease}           point still running; reply ok or cancel
//	result     {worker, lease, data, crc}   finished point (checksummed
//	           PointRecord) — or {worker, lease, error, reason} for a failure
//
// Coordinator → worker replies:
//
//	lease      {lease, key, benchmark, mechanisms, options}
//	wait                                 nothing pending right now; poll again
//	done                                 sweep complete; exit cleanly
//	ok                                   acknowledged
//	cancel                               the lease is stale; abandon the point
//	error      {error}                   request rejected (malformed, unknown)
//
// Fault tolerance lives entirely in the coordinator (coordinator.go): a
// lease whose heartbeats stop, whose deadline passes, or whose worker's
// pipe closes is requeued, with bounded retry accounting; results are
// CRC-checked and validated before they are trusted, and a late or
// duplicate result for an already-finished point is acknowledged
// idempotently (the simulation is deterministic, so every valid result
// for a key is bit-identical).
package fleet

import (
	"encoding/json"

	"cmpsim/internal/core"
)

// Message types. Requests flow worker → coordinator, replies back.
const (
	MsgHello     = "hello"
	MsgNext      = "next"
	MsgHeartbeat = "heartbeat"
	MsgResult    = "result"

	MsgLease  = "lease"
	MsgWait   = "wait"
	MsgDone   = "done"
	MsgOK     = "ok"
	MsgCancel = "cancel"
	MsgError  = "error"
)

// Message is one protocol message in either direction; unused fields
// are omitted on the wire.
type Message struct {
	Type   string `json:"type"`
	Worker string `json:"worker,omitempty"` // requester id (requests only)
	Lease  uint64 `json:"lease,omitempty"`  // lease id (lease/heartbeat/result)

	// Lease payload: the point's identity.
	Key        string           `json:"key,omitempty"`
	Benchmark  string           `json:"benchmark,omitempty"`
	Mechanisms *core.Mechanisms `json:"mechanisms,omitempty"`
	Options    *core.Options    `json:"options,omitempty"` // canonical form

	// Result payload: a core.PointRecord as JSON, guarded by an IEEE
	// CRC-32 so transport corruption is detected before the record is
	// trusted (the coordinator additionally validates the record and
	// checks its key against the lease).
	Data json.RawMessage `json:"data,omitempty"`
	CRC  uint32          `json:"crc,omitempty"`

	// Failure payload (worker-side point failure) or rejection detail.
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"` // core.Reason* taxonomy when known
}

// Caller is the worker's view of a coordinator: send one request, get
// one reply. Implementations must be safe for concurrent use (the
// worker's heartbeat goroutine shares the caller with its main loop).
type Caller interface {
	Call(Message) (Message, error)
}
