// The worker: a simulate-and-report loop around any Caller. It asks
// for a lease, heartbeats while the point runs, and reports the result
// as a checksummed PointRecord — or the failure, classified, if the
// simulation failed. Transport fault rules (internal/faultinject) hook
// the three exchange points (lease received, heartbeat due, result due)
// so tests can drop, delay, duplicate or corrupt any message, or kill
// the worker mid-point, deterministically.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"runtime/debug"
	"sync/atomic"
	"time"

	"cmpsim/internal/core"
	"cmpsim/internal/faultinject"
)

// Runner simulates one whole data point locally — cmd/experiments wires
// it to a core.Scheduler's Submit+Wait. The options are canonical.
type Runner func(bench string, m core.Mechanisms, o core.Options) (core.Point, error)

// ErrKilled is returned by RunWorker when a kind=kill fault rule fires:
// the worker abandons everything mid-point without a word to the
// coordinator, exactly like a crashed process.
var ErrKilled = errors.New("fleet: worker killed by fault rule")

// ErrDrained is returned by RunWorker when its Drain channel closed:
// the in-flight point (if any) was finished and reported, and the
// worker stopped asking for new leases.
var ErrDrained = errors.New("fleet: worker drained")

// Defaults for WorkerConfig's zero values.
const (
	DefaultHeartbeatInterval = 5 * time.Second
	DefaultPollInterval      = 200 * time.Millisecond
	DefaultMaxCallRetries    = 8
	DefaultCallBackoff       = 250 * time.Millisecond
)

// WorkerConfig tunes one worker loop.
type WorkerConfig struct {
	ID     string // worker id carried on every request
	Runner Runner // simulates one point; required

	// HeartbeatInterval spaces the keep-alives sent while a point runs;
	// it must be comfortably under the coordinator's HeartbeatTimeout.
	HeartbeatInterval time.Duration

	// PollInterval spaces next requests while the coordinator has no
	// pending work (wait replies).
	PollInterval time.Duration

	// MaxCallRetries bounds how many times one coordinator exchange is
	// retried after a transport failure (connection refused, EOF, 5xx —
	// anything the Caller reports as an error). Coordinator loss is
	// transient: the worker backs off exponentially with deterministic
	// jitter, re-introduces itself (hello) under the same ID, and
	// resends, so a result computed during a coordinator outage is
	// delivered after the restart. Zero means DefaultMaxCallRetries;
	// negative disables retry entirely.
	MaxCallRetries int

	// CallBackoff is the base of the exponential retry backoff (the
	// delay before retry n is roughly CallBackoff<<(n-1), capped, plus
	// jitter derived from the worker ID so a fleet does not reconnect in
	// lockstep). Zero means DefaultCallBackoff.
	CallBackoff time.Duration

	// Drain, when non-nil, stops the worker once the channel is closed:
	// the in-flight point (if any) is finished and reported first, then
	// RunWorker returns ErrDrained instead of asking for another lease.
	Drain <-chan struct{}

	// Fault, when set, applies transport fault rules at each exchange
	// point. Nil injects nothing.
	Fault *faultinject.Injector

	// Logf, when set, receives one line per notable event. Nil discards.
	Logf func(format string, args ...any)
}

// RunWorker runs the worker loop until the coordinator says done (nil),
// a kill rule fires (ErrKilled), or the transport breaks (the error).
func (cfg WorkerConfig) validate() error {
	if cfg.Runner == nil {
		return errors.New("fleet: WorkerConfig.Runner is required")
	}
	if cfg.ID == "" {
		return errors.New("fleet: WorkerConfig.ID is required")
	}
	return nil
}

// transportFault consults the fault rules for one exchange point and
// applies the immediate part (delay sleeps here). The returned kind is
// Drop, Dup, CorruptMsg or Kill; ok=false means proceed normally.
func (cfg *WorkerConfig) transportFault(msg, bench, label string) (faultinject.Kind, bool) {
	if cfg.Fault == nil {
		return 0, false
	}
	act, ok := cfg.Fault.Transport(msg, cfg.ID, bench, label)
	if !ok {
		return 0, false
	}
	if act.Kind == faultinject.Delay {
		time.Sleep(act.Delay)
		return 0, false
	}
	return act.Kind, true
}

// RunWorker connects to a coordinator through call and serves leases
// until the sweep is done (nil), the Drain channel closes (ErrDrained),
// a kill rule fires (ErrKilled), or the transport stays broken past the
// retry budget (the error).
func RunWorker(cfg WorkerConfig, call Caller) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.MaxCallRetries == 0 {
		cfg.MaxCallRetries = DefaultMaxCallRetries
	}
	if cfg.MaxCallRetries < 0 {
		cfg.MaxCallRetries = 0
	}
	if cfg.CallBackoff <= 0 {
		cfg.CallBackoff = DefaultCallBackoff
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if _, err := cfg.call(call, Message{Type: MsgHello, Worker: cfg.ID}, logf); err != nil {
		return err
	}
	for {
		if cfg.drained() {
			logf("fleet: worker %s: drained", cfg.ID)
			return ErrDrained
		}
		resp, err := cfg.call(call, Message{Type: MsgNext, Worker: cfg.ID}, logf)
		if err != nil {
			return err
		}
		switch resp.Type {
		case MsgWait:
			time.Sleep(cfg.PollInterval)
		case MsgDone:
			logf("fleet: worker %s: sweep done", cfg.ID)
			return nil
		case MsgLease:
			if err := cfg.runLease(call, resp, logf); err != nil {
				return err
			}
		case MsgError:
			return fmt.Errorf("fleet: coordinator rejected next: %s", resp.Error)
		default:
			return fmt.Errorf("fleet: unexpected reply to next: %q", resp.Type)
		}
	}
}

// drained reports whether the Drain channel has closed.
func (cfg *WorkerConfig) drained() bool {
	if cfg.Drain == nil {
		return false
	}
	select {
	case <-cfg.Drain:
		return true
	default:
		return false
	}
}

// call sends one request, absorbing transient coordinator loss: a
// failed exchange backs off (exponential, deterministically jittered by
// worker ID), re-introduces the worker under its existing ID, and
// resends — so a restarted coordinator sees the same worker resume, and
// a result computed during the outage still lands. The retry budget
// bounds how long an unreachable coordinator is tolerated.
func (cfg *WorkerConfig) call(c Caller, m Message, logf func(string, ...any)) (Message, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			time.Sleep(cfg.retryDelay(attempt))
			if m.Type != MsgHello {
				if _, err := c.Call(Message{Type: MsgHello, Worker: cfg.ID}); err != nil {
					lastErr = err
					if attempt >= cfg.MaxCallRetries {
						break
					}
					continue
				}
				logf("fleet: worker %s: reconnected to coordinator (attempt %d)", cfg.ID, attempt)
			}
		}
		resp, err := c.Call(m)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= cfg.MaxCallRetries {
			break
		}
		logf("fleet: worker %s: %s failed (%v), retrying", cfg.ID, m.Type, err)
	}
	return Message{}, fmt.Errorf("fleet: %s failed after %d attempts: %w", m.Type, cfg.MaxCallRetries+1, lastErr)
}

// retryDelay computes the pause before retry n: exponential in the base
// backoff (shift capped so a long outage polls steadily instead of
// diverging) plus up to 50% deterministic jitter from the worker ID —
// reproducible for a given fleet layout, but staggered across workers.
func (cfg *WorkerConfig) retryDelay(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	d := cfg.CallBackoff << uint(shift)
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", cfg.ID, attempt)
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d + jitter
}

// runLease simulates one leased point and reports back. A drop or
// corruptmsg rule on the lease discards it silently (the coordinator
// requeues it on expiry); a kill rule anywhere aborts the worker.
func (cfg *WorkerConfig) runLease(call Caller, lease Message, logf func(string, ...any)) error {
	if lease.Mechanisms == nil || lease.Options == nil || lease.Benchmark == "" {
		return fmt.Errorf("fleet: lease %d is missing the point identity", lease.Lease)
	}
	bench, mech, opts := lease.Benchmark, *lease.Mechanisms, *lease.Options
	label := mech.Label()

	switch kind, ok := cfg.transportFault("lease", bench, label); {
	case !ok:
	case kind == faultinject.Kill:
		logf("fleet: worker %s: killed on lease %d", cfg.ID, lease.Lease)
		return ErrKilled
	default: // Drop or CorruptMsg: an undelivered/unreadable lease
		logf("fleet: worker %s: dropped lease %d", cfg.ID, lease.Lease)
		return nil
	}

	// Heartbeat until the point resolves; a cancel reply means the
	// coordinator requeued the lease, so the result must not be sent.
	var cancelled, killed atomic.Bool
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				switch kind, ok := cfg.transportFault("heartbeat", bench, label); {
				case !ok:
				case kind == faultinject.Kill:
					killed.Store(true)
					return
				default: // Drop/CorruptMsg: this heartbeat never arrives
					continue
				}
				resp, err := call.Call(Message{Type: MsgHeartbeat, Worker: cfg.ID, Lease: lease.Lease})
				if err != nil {
					// Coordinator unreachable: keep ticking. A restarted
					// coordinator reinstates the lease from its journal
					// with a fresh heartbeat window, so the next beat (or
					// the result itself) lands once it is back.
					continue
				}
				if resp.Type == MsgCancel {
					cancelled.Store(true)
					return
				}
			}
		}
	}()

	point, runErr := runGuarded(cfg.Runner, bench, mech, opts)
	close(stop)
	<-hbDone

	if killed.Load() {
		logf("fleet: worker %s: killed mid-point (lease %d)", cfg.ID, lease.Lease)
		return ErrKilled
	}
	if cancelled.Load() {
		logf("fleet: worker %s: lease %d cancelled, result discarded", cfg.ID, lease.Lease)
		return nil
	}

	msg, err := resultMessage(cfg.ID, lease.Lease, bench, mech, opts, point, runErr)
	if err != nil {
		// The record would not encode — report it as a failure instead
		// of going silent.
		msg = Message{Type: MsgResult, Worker: cfg.ID, Lease: lease.Lease,
			Error: err.Error(), Reason: core.ReasonError}
	}

	sends := 1
	switch kind, ok := cfg.transportFault("result", bench, label); {
	case !ok:
	case kind == faultinject.Kill:
		logf("fleet: worker %s: killed before result (lease %d)", cfg.ID, lease.Lease)
		return ErrKilled
	case kind == faultinject.Drop:
		logf("fleet: worker %s: dropped result (lease %d)", cfg.ID, lease.Lease)
		return nil
	case kind == faultinject.Dup:
		sends = 2
	case kind == faultinject.CorruptMsg:
		if len(msg.Data) > 0 {
			// Flip one payload byte after the CRC was computed, so the
			// coordinator's checksum rejects the record.
			msg.Data = append(json.RawMessage(nil), msg.Data...)
			msg.Data[len(msg.Data)/2] ^= 0xFF
		}
	}
	for i := 0; i < sends; i++ {
		resp, err := cfg.call(call, msg, logf)
		if err != nil {
			return err
		}
		if resp.Type == MsgError {
			logf("fleet: worker %s: result for lease %d rejected: %s", cfg.ID, lease.Lease, resp.Error)
		}
	}
	return nil
}

// runGuarded isolates runner panics into classified failures so a
// broken simulation reports instead of crashing the worker loop.
func runGuarded(run Runner, bench string, m core.Mechanisms, o core.Options) (p core.Point, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &workerPanic{val: rec, stack: string(debug.Stack())}
		}
	}()
	return run(bench, m, o)
}

// workerPanic carries a recovered runner panic.
type workerPanic struct {
	val   any
	stack string
}

func (e *workerPanic) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// resultMessage encodes one finished point (or its failure) for the
// wire. Success carries the checksummed PointRecord; failure carries
// the error text plus the core failure taxonomy when known.
func resultMessage(worker string, lease uint64, bench string, m core.Mechanisms, o core.Options, p core.Point, runErr error) (Message, error) {
	if runErr != nil {
		reason := core.ReasonError
		var pe *core.PointError
		var wp *workerPanic
		switch {
		case errors.As(runErr, &pe):
			reason = pe.Reason
		case errors.As(runErr, &wp):
			reason = core.ReasonPanic
		}
		return Message{Type: MsgResult, Worker: worker, Lease: lease,
			Error: runErr.Error(), Reason: reason}, nil
	}
	rec := core.NewPointRecord(bench, m, o, p)
	if err := rec.Validate(); err != nil {
		return Message{}, err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return Message{}, fmt.Errorf("fleet: encode result record: %w", err)
	}
	return Message{Type: MsgResult, Worker: worker, Lease: lease,
		Data: data, CRC: crc32.ChecksumIEEE(data)}, nil
}
