// Journal: an append-only, checksummed event log sharing the store's
// record framing and durability discipline. Where the key→value store
// keeps only the latest state per key, the journal keeps *every* event
// in order — it is the write-ahead log a coordinator replays after a
// crash to reconstruct in-flight state the result store alone cannot
// carry (leases, requeue budgets, failure signatures).
//
// Each entry is one store record line whose key is the event kind and
// whose value is the event payload; appends are O_APPEND + fsync, so a
// kill at any instant loses at most the entry being written. Opening a
// journal heals a truncated tail and replays every intact entry in
// file order; corrupt entries are counted and skipped, never trusted.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// JournalEntry is one replayed event: its kind and raw payload.
type JournalEntry struct {
	Kind string
	Data json.RawMessage
}

// Journal is one process's append handle on an event log file. At most
// one process may append to a given journal; Append is safe for
// concurrent use within the process.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries []JournalEntry
	skipped int
	healed  bool
}

// OpenJournal opens (creating if needed) a journal file, heals a
// truncated tail, and loads every intact entry for replay via Entries.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path}
	if err := j.load(); err != nil {
		return nil, err
	}
	if _, err := os.Stat(path); err == nil {
		healed, err := healTail(path)
		if err != nil {
			return nil, err
		}
		j.healed = healed
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal %s: %w", path, err)
	}
	j.f = f
	return j, nil
}

// load scans the journal file's intact entries (missing file = empty).
func (j *Journal) load() error {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: open journal %s: %w", j.path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26) // grant entries carry full option sets
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		kind, value, err := ParseRecord(b)
		if err != nil {
			j.skipped++
			continue
		}
		j.entries = append(j.entries, JournalEntry{Kind: kind, Data: append(json.RawMessage(nil), value...)})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: read journal %s: %w", j.path, err)
	}
	return nil
}

// Entries returns the intact events loaded at open time, in log order.
// The caller replays them once; later Appends are not reflected.
func (j *Journal) Entries() []JournalEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entries
}

// Skipped returns how many corrupt entries the open scan ignored.
func (j *Journal) Skipped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Healed reports whether the open scan found (and repaired) a tail
// truncated by a mid-write kill.
func (j *Journal) Healed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.healed
}

// Path returns the backing file.
func (j *Journal) Path() string { return j.path }

// Append writes one event and syncs it before returning — write-ahead
// discipline: an event acknowledged here survives any later crash.
func (j *Journal) Append(kind string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encode journal %s event: %w", kind, err)
	}
	rec, err := EncodeRecord(kind, data)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("store: append journal entry: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: sync journal: %w", err)
	}
	return nil
}

// Reset truncates the journal to empty: called after a sweep completes
// cleanly, when every event it recorded is subsumed by the result store
// and replaying it would only rebuild retired state.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = nil
	if j.f == nil {
		return fmt.Errorf("store: journal %s is closed", j.path)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: reset journal: %w", err)
	}
	return j.f.Sync()
}

// Close releases the append handle. Append after Close fails.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
