package store

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseRecord guards the store's single record-parsing path: on
// arbitrary input it must never panic, and any record it accepts must
// satisfy the invariants every reader relies on (non-empty key, valid
// JSON value). Valid encodings round-trip exactly.
func FuzzParseRecord(f *testing.F) {
	seed := func(key string, value []byte) {
		rec, err := EncodeRecord(key, value)
		if err == nil {
			f.Add(rec)
		}
	}
	seed("k", []byte(`{"x":1}`))
	seed("point-key", []byte(`{"benchmark":"zeus","point":{"runs":[1,2]}}`))
	f.Add([]byte(`{"v":1,"crc":0,"data":{"key":"k","value":1}}`))
	f.Add([]byte(`{"v":99,"crc":12,"data":{}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		key, value, err := ParseRecord(bytes.TrimSuffix(line, []byte{'\n'}))
		if err != nil {
			return
		}
		if key == "" {
			t.Fatal("accepted record with empty key")
		}
		if !json.Valid(value) {
			t.Fatalf("accepted record with invalid JSON value: %s", value)
		}
		// A record that parses must re-encode to something that parses to
		// the same payload (the writer/reader agree on the format).
		rec, err := EncodeRecord(key, value)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		k2, v2, err := ParseRecord(bytes.TrimSuffix(rec, []byte{'\n'}))
		if err != nil {
			t.Fatalf("re-encoded record does not parse: %v", err)
		}
		if k2 != key || !bytes.Equal(v2, value) {
			t.Fatalf("round trip drifted: %q/%s -> %q/%s", key, value, k2, v2)
		}
	})
}
