// Package store implements the content-addressed result store shared
// across sweep processes: a directory of sharded, checksummed JSONL
// files mapping canonical string keys to opaque JSON values. It is the
// cross-process generalization of internal/core's single-file
// checkpoint — same record discipline (CRC-32 per record, fsync'd
// appends, truncated-tail healing, corrupt records skipped and never
// trusted), but sharded so a coordinator and any number of readers can
// share one directory.
//
// Record format (one JSON object per line of shard-NNN.jsonl):
//
//	{"v":1,"crc":<IEEE CRC-32 of data>,"data":{"key":K,"value":V}}
//
// Concurrency contract: any number of processes may read a store
// directory at any time (a reader never trusts a record that fails to
// parse or checksum, so scanning mid-append is safe); at most one
// process may write a given shard. Shard assignment is content-driven
// (ShardOf hashes the key), so the usual deployment is one writing
// coordinator per directory. Within a process a Store is safe for
// concurrent use.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Version guards the record schema; bump on incompatible changes so old
// files are skipped rather than misread.
const Version = 1

// DefaultShards is the shard-file count writers create when the caller
// has no opinion. More shards means more independent append streams;
// readers always scan every shard file present regardless of the count
// they were opened with.
const DefaultShards = 8

// payload is the checksummed body of one record.
type payload struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// line is one JSONL line on disk.
type line struct {
	V    int             `json:"v"`
	CRC  uint32          `json:"crc"`
	Data json.RawMessage `json:"data"`
}

// EncodeRecord renders one complete record line (including the trailing
// newline) for key and value. The value must be valid JSON.
func EncodeRecord(key string, value []byte) ([]byte, error) {
	if !json.Valid(value) {
		return nil, fmt.Errorf("store: value for key %q is not valid JSON", key)
	}
	data, err := json.Marshal(payload{Key: key, Value: value})
	if err != nil {
		return nil, fmt.Errorf("store: encode record payload: %w", err)
	}
	rec, err := json.Marshal(line{V: Version, CRC: crc32.ChecksumIEEE(data), Data: data})
	if err != nil {
		return nil, fmt.Errorf("store: encode record line: %w", err)
	}
	return append(rec, '\n'), nil
}

// ParseRecord decodes one record line, verifying the version and the
// CRC. It is the single parsing path for every store read (and the
// fuzz target guarding it): a record it rejects is never trusted.
func ParseRecord(b []byte) (key string, value json.RawMessage, err error) {
	var rec line
	if err := json.Unmarshal(b, &rec); err != nil {
		return "", nil, fmt.Errorf("store: malformed record: %w", err)
	}
	if rec.V != Version {
		return "", nil, fmt.Errorf("store: record version %d (want %d)", rec.V, Version)
	}
	if crc32.ChecksumIEEE(rec.Data) != rec.CRC {
		return "", nil, fmt.Errorf("store: record checksum mismatch")
	}
	var p payload
	if err := json.Unmarshal(rec.Data, &p); err != nil {
		return "", nil, fmt.Errorf("store: malformed record payload: %w", err)
	}
	if p.Key == "" || len(p.Value) == 0 {
		return "", nil, fmt.Errorf("store: record missing key or value")
	}
	return p.Key, p.Value, nil
}

// ShardOf assigns a key to one of shards append streams (FNV-1a).
func ShardOf(key string, shards int) int {
	h := fnv.New32a()
	io.WriteString(h, key)
	return int(h.Sum32() % uint32(shards))
}

// shardPath names one shard's backing file.
func shardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.jsonl", shard))
}

// Store is one process's view of a store directory. Writers (Open) own
// every shard they append to; readers (OpenRead) never modify the
// directory and can Reload to pick up records appended by the writer.
type Store struct {
	mu       sync.Mutex
	dir      string
	shards   int
	readOnly bool
	files    map[int]*os.File // writer mode: open append handles per shard
	mem      map[string]json.RawMessage
	loaded   int
	skipped  int
	healed   int
}

// Open opens (creating if needed) a store directory for reading and
// writing with the given shard count (<1 means DefaultShards). Every
// intact record in every shard file present is loaded; corrupt records
// are counted in Skipped and ignored; files whose tail was truncated by
// a mid-write kill are healed so later appends start on a fresh line.
func Open(dir string, shards int) (*Store, error) {
	if shards < 1 {
		shards = DefaultShards
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, shards: shards, files: make(map[int]*os.File), mem: make(map[string]json.RawMessage)}
	if err := s.scan(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// OpenRead opens a store directory read-only. The directory may not
// exist yet (an empty store); the writer creates it. Use Reload to pick
// up records appended since.
func OpenRead(dir string) (*Store, error) {
	s := &Store{dir: dir, shards: DefaultShards, readOnly: true, mem: make(map[string]json.RawMessage)}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan (re)loads every shard file in the directory. Writer mode heals
// truncated tails; read-only mode just skips them.
func (s *Store) scan() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem = make(map[string]json.RawMessage)
	s.loaded, s.skipped = 0, 0
	paths, err := filepath.Glob(filepath.Join(s.dir, "shard-*.jsonl"))
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := s.scanFile(p); err != nil {
			return err
		}
	}
	return nil
}

// scanFile loads one shard file's intact records.
func (s *Store) scanFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // raced with nothing yet written
		}
		return fmt.Errorf("store: open shard %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26) // points with miss profiles are large
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		key, value, err := ParseRecord(b)
		if err != nil {
			s.skipped++
			continue
		}
		if _, dup := s.mem[key]; !dup {
			s.mem[key] = append(json.RawMessage(nil), value...)
			s.loaded++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: read shard %s: %w", path, err)
	}
	if !s.readOnly {
		healed, err := healTail(path)
		if err != nil {
			return err
		}
		if healed {
			s.healed++
		}
	}
	return nil
}

// healTail appends a newline to a file whose last byte is not one (a
// process killed mid-write left a partial record), so the writer's next
// append starts on a fresh line.
func healTail(path string) (bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return false, fmt.Errorf("store: heal shard %s: %w", path, err)
	}
	defer f.Close()
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil || end == 0 {
		return false, err
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, end-1); err != nil || buf[0] == '\n' {
		return false, nil
	}
	if _, err := f.Write([]byte{'\n'}); err != nil {
		return false, fmt.Errorf("store: heal shard %s: %w", path, err)
	}
	return true, nil
}

// Get returns the value stored for key in this process's view (Open,
// the last Reload, plus this process's own Puts).
func (s *Store) Get(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.mem[key]
	return v, ok
}

// Len returns how many distinct keys this process's view holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Keys returns every key in this process's view, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Loaded returns how many intact records the last scan restored.
func (s *Store) Loaded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loaded
}

// Skipped returns how many corrupt or incompatible records the last
// scan detected and ignored.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Healed returns how many shard files had a truncated tail healed over
// this store's lifetime (writer mode only).
func (s *Store) Healed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healed
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// Put appends one record to the key's shard and syncs it, so a kill at
// any moment loses at most the record being written. A key already in
// this process's view is a no-op (first write wins; values are expected
// to be deterministic functions of the key). Read-only stores refuse.
func (s *Store) Put(key string, value []byte) error {
	if s.readOnly {
		return fmt.Errorf("store: Put on read-only store %s", s.dir)
	}
	rec, err := EncodeRecord(key, value)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[key]; ok {
		return nil
	}
	f, err := s.shardFileLocked(ShardOf(key, s.shards))
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		return fmt.Errorf("store: append record: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync shard: %w", err)
	}
	s.mem[key] = append(json.RawMessage(nil), value...)
	return nil
}

// shardFileLocked opens (once) the append handle for one shard. Callers
// hold mu.
func (s *Store) shardFileLocked(shard int) (*os.File, error) {
	if f, ok := s.files[shard]; ok {
		return f, nil
	}
	f, err := os.OpenFile(shardPath(s.dir, shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open shard for append: %w", err)
	}
	s.files[shard] = f
	return f, nil
}

// Reload rescans the directory, replacing this process's view with
// everything intact on disk (picking up records appended by the
// writing process since Open/the last Reload).
func (s *Store) Reload() error {
	return s.scan()
}

// Close releases the writer's append handles. The in-memory view stays
// usable for Get; Put after Close reopens handles, so Close is only a
// resource courtesy, not a seal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for sh, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, sh)
	}
	return first
}
