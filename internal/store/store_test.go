package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func val(s string) []byte { return []byte(fmt.Sprintf("{\"x\":%q}", s)) }

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := s.Put(k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	if v, ok := s.Get("key-7"); !ok || !bytes.Equal(v, val("key-7")) {
		t.Fatalf("Get key-7 = %s, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported a hit")
	}
	s.Close()

	r, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Loaded() != 20 || r.Skipped() != 0 {
		t.Fatalf("reopen: loaded %d skipped %d, want 20/0", r.Loaded(), r.Skipped())
	}
	if v, ok := r.Get("key-13"); !ok || !bytes.Equal(v, val("key-13")) {
		t.Fatalf("reopened Get key-13 = %s, %v", v, ok)
	}
}

func TestPutDuplicateIsNoop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", val("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", val("second")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); !bytes.Equal(v, val("first")) {
		t.Fatalf("duplicate Put overwrote: %s", v)
	}
	// Only one record on disk.
	b, err := os.ReadFile(shardPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(b, []byte{'\n'}); n != 1 {
		t.Fatalf("shard has %d records, want 1", n)
	}
}

func TestReadOnlyRefusesPut(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not-created-yet")
	r, err := OpenRead(dir)
	if err != nil {
		t.Fatalf("OpenRead on a missing dir should succeed (empty store): %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("empty store Len = %d", r.Len())
	}
	if err := r.Put("k", val("v")); err == nil {
		t.Fatal("Put on a read-only store succeeded")
	}
}

// TestDisjointShardWriters exercises the store's cross-process
// concurrency contract in miniature: two independent Store handles on
// the same directory (separate fds, like two processes) append
// concurrently to disjoint shards while a read-only handle reloads
// mid-write. The reader must only ever observe intact records.
func TestDisjointShardWriters(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	// Partition keys by their shard so the two writers never touch the
	// same file.
	keysFor := func(want func(int) bool, n int) []string {
		var keys []string
		for i := 0; len(keys) < n; i++ {
			k := fmt.Sprintf("key-%d", i)
			if want(ShardOf(k, shards)) {
				keys = append(keys, k)
			}
		}
		return keys
	}
	even := keysFor(func(s int) bool { return s%2 == 0 }, 50)
	odd := keysFor(func(s int) bool { return s%2 == 1 }, 50)

	a, err := Open(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	reader, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	write := func(s *Store, keys []string) {
		defer wg.Done()
		for _, k := range keys {
			if err := s.Put(k, val(k)); err != nil {
				t.Errorf("Put %s: %v", k, err)
				return
			}
		}
	}
	wg.Add(3)
	go write(a, even)
	go write(b, odd)
	go func() {
		// Reload mid-write: every observed record must be intact, and the
		// view only ever grows.
		defer wg.Done()
		last := 0
		for i := 0; i < 20; i++ {
			if err := reader.Reload(); err != nil {
				t.Errorf("mid-write Reload: %v", err)
				return
			}
			if reader.Skipped() != 0 {
				t.Errorf("mid-write reader skipped %d records", reader.Skipped())
				return
			}
			if n := reader.Len(); n < last {
				t.Errorf("reader view shrank: %d -> %d", last, n)
				return
			} else {
				last = n
			}
			for _, k := range reader.Keys() {
				v, _ := reader.Get(k)
				if !bytes.Equal(v, val(k)) {
					t.Errorf("reader saw wrong value for %s: %s", k, v)
					return
				}
			}
		}
	}()
	wg.Wait()

	if err := reader.Reload(); err != nil {
		t.Fatal(err)
	}
	if reader.Len() != 100 || reader.Skipped() != 0 {
		t.Fatalf("final view: %d keys, %d skipped; want 100/0", reader.Len(), reader.Skipped())
	}
}

// TestCorruptionMatrix mirrors the checkpoint corruption tests: every
// way a record can be damaged must be skipped (never trusted) while
// intact neighbours still load, and a truncated tail must be healed so
// the writer's next append starts cleanly.
func TestCorruptionMatrix(t *testing.T) {
	build := func(t *testing.T) (string, []string) {
		dir := t.TempDir()
		s, err := Open(dir, 1) // one shard: every key in one file
		if err != nil {
			t.Fatal(err)
		}
		keys := []string{"alpha", "beta", "gamma"}
		for _, k := range keys {
			if err := s.Put(k, val(k)); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		return dir, keys
	}
	path := func(dir string) string { return shardPath(dir, 0) }

	cases := []struct {
		name       string
		damage     func(t *testing.T, p string)
		wantLoaded int
		wantSkip   int
		wantHealed int
	}{
		{
			name: "garbage line between records",
			damage: func(t *testing.T, p string) {
				lines := readLines(t, p)
				lines = append(lines[:1], append([]string{"{not json"}, lines[1:]...)...)
				writeLines(t, p, lines)
			},
			wantLoaded: 3, wantSkip: 1,
		},
		{
			name: "flipped payload byte fails the CRC",
			damage: func(t *testing.T, p string) {
				lines := readLines(t, p)
				lines[1] = strings.Replace(lines[1], "\"x\"", "\"y\"", 1)
				writeLines(t, p, lines)
			},
			wantLoaded: 2, wantSkip: 1,
		},
		{
			name: "wrong version is skipped",
			damage: func(t *testing.T, p string) {
				lines := readLines(t, p)
				lines[0] = strings.Replace(lines[0], "{\"v\":1", "{\"v\":99", 1)
				writeLines(t, p, lines)
			},
			wantLoaded: 2, wantSkip: 1,
		},
		{
			name: "truncated tail is skipped and healed",
			damage: func(t *testing.T, p string) {
				b, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(p, b[:len(b)-20], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantLoaded: 2, wantSkip: 1, wantHealed: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _ := build(t)
			tc.damage(t, path(dir))
			s, err := Open(dir, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if s.Loaded() != tc.wantLoaded || s.Skipped() != tc.wantSkip || s.Healed() != tc.wantHealed {
				t.Fatalf("loaded/skipped/healed = %d/%d/%d, want %d/%d/%d",
					s.Loaded(), s.Skipped(), s.Healed(), tc.wantLoaded, tc.wantSkip, tc.wantHealed)
			}
			// The store must stay appendable after damage: a fresh record
			// lands on its own line and survives a reopen.
			if err := s.Put("delta", val("delta")); err != nil {
				t.Fatal(err)
			}
			s.Close()
			r, err := Open(dir, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if v, ok := r.Get("delta"); !ok || !bytes.Equal(v, val("delta")) {
				t.Fatalf("post-damage append lost: %s, %v", v, ok)
			}
		})
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	rec, err := EncodeRecord("k1", val("v1"))
	if err != nil {
		t.Fatal(err)
	}
	key, value, err := ParseRecord(bytes.TrimSuffix(rec, []byte{'\n'}))
	if err != nil {
		t.Fatal(err)
	}
	if key != "k1" || !bytes.Equal(value, val("v1")) {
		t.Fatalf("round trip: %q %s", key, value)
	}
	if _, err := EncodeRecord("k", []byte("not json")); err == nil {
		t.Fatal("EncodeRecord accepted invalid JSON")
	}
}

func TestShardOfStable(t *testing.T) {
	// Shard assignment is part of the on-disk layout contract: two
	// processes must agree on which file a key lives in.
	for _, k := range []string{"a", "b", "key-0"} {
		first := ShardOf(k, DefaultShards)
		if first < 0 || first >= DefaultShards {
			t.Fatalf("ShardOf(%q) = %d out of range", k, first)
		}
		if again := ShardOf(k, DefaultShards); again != first {
			t.Fatalf("ShardOf(%q) unstable: %d then %d", k, first, again)
		}
	}
}

func readLines(t *testing.T, p string) []string {
	t.Helper()
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
}

func writeLines(t *testing.T, p string, lines []string) {
	t.Helper()
	if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestValuesAreIndependentCopies(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v := val("orig")
	if err := s.Put("k", v); err != nil {
		t.Fatal(err)
	}
	v[0] = 'X' // caller mutates its buffer after Put
	got, _ := s.Get("k")
	if !json.Valid(got) || bytes.Equal(got[:1], []byte{'X'}) {
		t.Fatalf("stored value aliases the caller's buffer: %s", got)
	}
}
