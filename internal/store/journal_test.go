package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type testEvent struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func openJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append("tick", testEvent{N: i, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append("tock", testEvent{N: 99}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openJournal(t, path)
	entries := j2.Entries()
	if len(entries) != 4 {
		t.Fatalf("replayed %d entries, want 4", len(entries))
	}
	for i := 0; i < 3; i++ {
		if entries[i].Kind != "tick" {
			t.Fatalf("entry %d kind = %q", i, entries[i].Kind)
		}
		var ev testEvent
		if err := json.Unmarshal(entries[i].Data, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.N != i {
			t.Fatalf("entry %d payload = %+v", i, ev)
		}
	}
	if entries[3].Kind != "tock" {
		t.Fatalf("last entry kind = %q", entries[3].Kind)
	}
	if j2.Skipped() != 0 || j2.Healed() {
		t.Fatalf("clean journal reported skipped=%d healed=%v", j2.Skipped(), j2.Healed())
	}
}

func TestJournalCorruptEntrySkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openJournal(t, path)
	j.Append("a", testEvent{N: 1})
	j.Append("b", testEvent{N: 2})
	j.Close()

	// Flip a byte in the middle of the first record: its CRC must reject
	// it while the second record survives.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/4] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openJournal(t, path)
	if j2.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", j2.Skipped())
	}
	entries := j2.Entries()
	if len(entries) != 1 || entries[0].Kind != "b" {
		t.Fatalf("surviving entries: %+v", entries)
	}
}

func TestJournalTruncatedTailHealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openJournal(t, path)
	j.Append("a", testEvent{N: 1})
	j.Append("b", testEvent{N: 2})
	j.Close()

	// A mid-write kill leaves a partial final record with no newline.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openJournal(t, path)
	if !j2.Healed() {
		t.Fatal("truncated tail not healed")
	}
	entries := j2.Entries()
	if len(entries) != 1 || entries[0].Kind != "a" {
		t.Fatalf("surviving entries: %+v", entries)
	}
	// Appends after healing start on a fresh line and replay intact.
	if err := j2.Append("c", testEvent{N: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openJournal(t, path)
	entries = j3.Entries()
	if len(entries) != 2 || entries[1].Kind != "c" {
		t.Fatalf("post-heal replay: %+v", entries)
	}
}

func TestJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openJournal(t, path)
	j.Append("a", testEvent{N: 1})
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if len(j.Entries()) != 0 {
		t.Fatal("Reset left entries behind")
	}
	// Appends after Reset land at the start of the (truncated) file.
	if err := j.Append("b", testEvent{N: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openJournal(t, path)
	entries := j2.Entries()
	if len(entries) != 1 || entries[0].Kind != "b" {
		t.Fatalf("post-reset replay: %+v", entries)
	}
}

func TestJournalClosedAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openJournal(t, path)
	j.Close()
	if err := j.Append("a", testEvent{}); err == nil {
		t.Fatal("Append on closed journal succeeded")
	}
}
