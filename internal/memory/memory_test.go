package memory

import (
	"testing"

	"cmpsim/internal/cache"
	"cmpsim/internal/timing"
)

// cy converts whole cycles to ticks for test readability.
func cy(n int64) timing.Tick { return timing.FromIntCycles(n) }

func TestFetchLatencyUncontended(t *testing.T) {
	m := New(DefaultConfig())
	done := m.Fetch(0, 0, cache.MaxSegs)
	// Request: 8 B / 4 Bpc = 2 cycles. DRAM: 400. Response: 72 B / 4 = 18.
	want := cy(2 + 400 + 18)
	if done != want {
		t.Fatalf("fetch done = %v, want %v", done, want)
	}
	if got := m.UncontendedFetchLatency(cache.MaxSegs); got != want {
		t.Fatalf("uncontended latency = %v, want %v", got, want)
	}
}

func TestLinkCompressionShortensResponse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkCompression = true
	m := New(cfg)
	done := m.Fetch(0, 0, 2)
	// Response: header + 2 flits = 24 B / 4 = 6 cycles.
	want := cy(2 + 400 + 6)
	if done != want {
		t.Fatalf("compressed fetch = %v, want %v", done, want)
	}
	if m.FetchFlits != 2 {
		t.Fatalf("fetch flits = %d", m.FetchFlits)
	}
}

func TestNoLinkCompressionAlwaysEightFlits(t *testing.T) {
	m := New(DefaultConfig())
	m.Fetch(0, 0, 2)
	if m.FetchFlits != 8 {
		t.Fatalf("fetch flits = %d, want 8", m.FetchFlits)
	}
}

func TestBankConflictDelays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkBytesPerCycle = 0 // isolate DRAM behaviour
	m := New(cfg)
	occ := timing.FromCycles(cfg.BankOccupancy)
	// Same bank (addr 0 and addr 16 with 16 banks).
	first := m.Fetch(0, 0, 8)
	second := m.Fetch(0, 16, 8)
	if second != first+occ {
		t.Fatalf("second fetch = %v, want %v", second, first+occ)
	}
	if m.DRAMWaits != occ {
		t.Fatalf("DRAM waits = %v", m.DRAMWaits)
	}
	// Different bank: no delay.
	third := m.Fetch(0, 1, 8)
	if third != first {
		t.Fatalf("third fetch (other bank) = %v, want %v", third, first)
	}
}

func TestWritebackConsumesLink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkCompression = true
	m := New(cfg)
	m.Writeback(0, 5, 3)
	if m.Writebacks != 1 || m.WriteFlits != 3 {
		t.Fatalf("writeback stats: %+v", m)
	}
	if m.Data.TotalBytes != 8+3*8 {
		t.Fatalf("data bytes = %d", m.Data.TotalBytes)
	}
}

func TestWritebackBankWaitNotCountedAsDRAMWait(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkBytesPerCycle = 0 // isolate DRAM behaviour
	m := New(cfg)
	m.Fetch(0, 0, 8)      // bank 0 busy until 40
	m.Writeback(0, 16, 8) // same bank: waits, but fire-and-forget
	if m.DRAMWaits != 0 {
		t.Fatalf("writeback bank wait leaked into DRAMWaits: %v", m.DRAMWaits)
	}
}

func TestWritebackDelaysSubsequentFetchResponse(t *testing.T) {
	m := New(DefaultConfig())
	m.Writeback(0, 5, 8) // occupies the data channel for 18 cycles
	done := m.Fetch(0, 16, 8)
	// The request uses the address channel (no wait), but the response
	// shares the data channel; here DRAM latency dwarfs the writeback,
	// so there is no queueing: 2 + 400 + 18.
	want := cy(2 + 400 + 18)
	if done != want {
		t.Fatalf("fetch after writeback = %v, want %v", done, want)
	}
	// A second immediate fetch to another bank queues its response
	// behind the first on the data channel.
	done2 := m.Fetch(0, 17, 8)
	if done2 <= done {
		t.Fatalf("second response should queue: %v vs %v", done2, done)
	}
}

func TestInfiniteBandwidthMeasurementMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkBytesPerCycle = 0
	m := New(cfg)
	done := m.Fetch(0, 7, 8)
	if done != timing.FromCycles(cfg.DRAMLatency) {
		t.Fatalf("infinite-bw fetch = %v, want %gcy", done, cfg.DRAMLatency)
	}
	// Bytes are still counted for the bandwidth-demand metric.
	if m.TotalBytes() == 0 {
		t.Fatal("bytes must be accounted in measurement mode")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LinkBytesPerCycle: -1, DRAMLatency: 400, Banks: 16},
		{LinkBytesPerCycle: 4, DRAMLatency: 0, Banks: 16},
		{LinkBytesPerCycle: 4, DRAMLatency: 400, Banks: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d should fail validation", i)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic in New", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestNonPowerOfTwoBanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Banks = 3
	cfg.LinkBytesPerCycle = 0
	m := New(cfg)
	occ := timing.FromCycles(cfg.BankOccupancy)
	// Addresses 0 and 3 collide under modulo-3 interleave; 1 does not.
	first := m.Fetch(0, 0, 8)
	if other := m.Fetch(0, 1, 8); other != first {
		t.Fatalf("bank 1 fetch = %v, want %v", other, first)
	}
	if conflict := m.Fetch(0, 3, 8); conflict != first+occ {
		t.Fatalf("conflicting fetch = %v, want %v", conflict, first+occ)
	}
}

func TestFlitClamping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkCompression = true
	m := New(cfg)
	m.Fetch(0, 0, 0)  // clamped to 1
	m.Fetch(0, 1, 99) // clamped to 8
	if m.FetchFlits != 9 {
		t.Fatalf("fetch flits = %d, want 9", m.FetchFlits)
	}
}
