package memory

import (
	"math"
	"testing"

	"cmpsim/internal/cache"
)

func TestFetchLatencyUncontended(t *testing.T) {
	m := New(DefaultConfig())
	done := m.Fetch(0, 0, cache.MaxSegs)
	// Request: 8 B / 4 Bpc = 2 cycles. DRAM: 400. Response: 72 B / 4 = 18.
	want := 2.0 + 400 + 18
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("fetch done = %f, want %f", done, want)
	}
	if got := m.UncontendedFetchLatency(cache.MaxSegs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("uncontended latency = %f, want %f", got, want)
	}
}

func TestLinkCompressionShortensResponse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkCompression = true
	m := New(cfg)
	done := m.Fetch(0, 0, 2)
	// Response: header + 2 flits = 24 B / 4 = 6 cycles.
	want := 2.0 + 400 + 6
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("compressed fetch = %f, want %f", done, want)
	}
	if m.FetchFlits != 2 {
		t.Fatalf("fetch flits = %d", m.FetchFlits)
	}
}

func TestNoLinkCompressionAlwaysEightFlits(t *testing.T) {
	m := New(DefaultConfig())
	m.Fetch(0, 0, 2)
	if m.FetchFlits != 8 {
		t.Fatalf("fetch flits = %d, want 8", m.FetchFlits)
	}
}

func TestBankConflictDelays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkBytesPerCycle = 0 // isolate DRAM behaviour
	m := New(cfg)
	// Same bank (addr 0 and addr 16 with 16 banks).
	first := m.Fetch(0, 0, 8)
	second := m.Fetch(0, 16, 8)
	if second != first+cfg.BankOccupancy {
		t.Fatalf("second fetch = %f, want %f", second, first+cfg.BankOccupancy)
	}
	if m.DRAMWaits != cfg.BankOccupancy {
		t.Fatalf("DRAM waits = %f", m.DRAMWaits)
	}
	// Different bank: no delay.
	third := m.Fetch(0, 1, 8)
	if third != first {
		t.Fatalf("third fetch (other bank) = %f, want %f", third, first)
	}
}

func TestWritebackConsumesLink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkCompression = true
	m := New(cfg)
	m.Writeback(0, 5, 3)
	if m.Writebacks != 1 || m.WriteFlits != 3 {
		t.Fatalf("writeback stats: %+v", m)
	}
	if m.Data.TotalBytes != 8+3*8 {
		t.Fatalf("data bytes = %d", m.Data.TotalBytes)
	}
}

func TestWritebackDelaysSubsequentFetchResponse(t *testing.T) {
	m := New(DefaultConfig())
	m.Writeback(0, 5, 8) // occupies the data channel for 18 cycles
	done := m.Fetch(0, 16, 8)
	// The request uses the address channel (no wait), but the response
	// shares the data channel; here DRAM latency dwarfs the writeback,
	// so there is no queueing: 2 + 400 + 18.
	want := 2.0 + 400 + 18
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("fetch after writeback = %f, want %f", done, want)
	}
	// A second immediate fetch to another bank queues its response
	// behind the first on the data channel.
	done2 := m.Fetch(0, 17, 8)
	if done2 <= done {
		t.Fatalf("second response should queue: %f vs %f", done2, done)
	}
}

func TestInfiniteBandwidthMeasurementMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkBytesPerCycle = 0
	m := New(cfg)
	done := m.Fetch(0, 7, 8)
	if done != cfg.DRAMLatency {
		t.Fatalf("infinite-bw fetch = %f, want %f", done, cfg.DRAMLatency)
	}
	// Bytes are still counted for the bandwidth-demand metric.
	if m.TotalBytes() == 0 {
		t.Fatal("bytes must be accounted in measurement mode")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LinkBytesPerCycle: -1, DRAMLatency: 400, Banks: 16},
		{LinkBytesPerCycle: 4, DRAMLatency: 0, Banks: 16},
		{LinkBytesPerCycle: 4, DRAMLatency: 400, Banks: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestFlitClamping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkCompression = true
	m := New(cfg)
	m.Fetch(0, 0, 0)  // clamped to 1
	m.Fetch(0, 1, 99) // clamped to 8
	if m.FetchFlits != 9 {
		t.Fatalf("fetch flits = %d, want 9", m.FetchFlits)
	}
}
