// Package memory models the off-chip memory system: the memory
// controller reached over the pin link and a banked DRAM. Lines are
// stored in memory in the form the processor sends across the interface
// — compressed or uncompressed, with a bit encoded in the ECC recording
// which (the paper's simple memory interface that does not change
// effective memory capacity).
//
// Config latencies are expressed in cycles (the paper's units) and
// quantized to the timing package's tick grid once, at New; all
// per-access arithmetic afterwards is integer.
package memory

import (
	"fmt"

	"cmpsim/internal/cache"
	"cmpsim/internal/link"
	"cmpsim/internal/timing"
)

// Config parameterizes the memory system (paper Table 1 defaults via
// DefaultConfig).
type Config struct {
	// LinkBytesPerCycle is the pin bandwidth in bytes per core cycle;
	// 20 GB/s at 5 GHz is 4.0. Zero models infinite bandwidth.
	LinkBytesPerCycle float64
	// DRAMLatency is the access latency in cycles (paper: 400).
	DRAMLatency float64
	// Banks is the number of DRAM banks (block-address interleaved;
	// any positive count works, the interleave is a modulo).
	Banks int
	// BankOccupancy is the cycles a bank stays busy per access.
	BankOccupancy float64
	// LinkCompression transfers lines in their FPC-compressed size.
	LinkCompression bool
}

// DefaultConfig returns the paper's memory parameters: 20 GB/s pins at a
// 5 GHz core clock, 400-cycle DRAM, 16 banks.
func DefaultConfig() Config {
	return Config{
		LinkBytesPerCycle: 4.0,
		DRAMLatency:       400,
		Banks:             16,
		BankOccupancy:     40,
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	if c.LinkBytesPerCycle < 0 {
		return fmt.Errorf("memory: negative link bandwidth")
	}
	if _, err := timing.CostPerByte(c.LinkBytesPerCycle); err != nil {
		return fmt.Errorf("memory: %v", err)
	}
	if c.DRAMLatency <= 0 || c.BankOccupancy < 0 {
		return fmt.Errorf("memory: DRAM latency must be positive")
	}
	if c.Banks <= 0 {
		return fmt.Errorf("memory: bank count must be positive")
	}
	return nil
}

// System is the controller + DRAM + link composite. The pins are
// modeled as two channels at the configured rate: a narrow address
// channel carrying request messages, and the data channel carrying
// fetch responses and writebacks (the direction whose queueing the
// paper's contention results hinge on). Keeping requests off the data
// channel avoids a reservation-model artifact where a request issued
// at time t would queue behind a response slot reserved at t+400.
type System struct {
	cfg     Config
	Addr    *link.Channel
	Data    *link.Channel
	banks   *timing.Banks
	dramLat timing.Tick

	// ECC meta-state: blocks currently stored compressed in memory.
	// Tracked only for accounting/tests; sizes come from the SizeFunc.
	Fetches    uint64
	Writebacks uint64
	// DRAMWaits is the cumulative bank queueing delay on the fetch path
	// only — writeback drains are fire-and-forget and their bank waits
	// never reach a processor, so they do not count toward the paper's
	// DRAM queueing-delay metric.
	DRAMWaits  timing.Tick
	FetchFlits uint64
	WriteFlits uint64
}

// New builds a memory system; it panics on invalid configuration
// (callers that need an error use Config.Validate first).
func New(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	banks, err := timing.NewBanks(cfg.Banks, timing.FromCycles(cfg.BankOccupancy))
	if err != nil {
		panic(fmt.Sprintf("memory: %v", err))
	}
	return &System{
		cfg:     cfg,
		Addr:    link.NewChannel(cfg.LinkBytesPerCycle),
		Data:    link.NewChannel(cfg.LinkBytesPerCycle),
		banks:   banks,
		dramLat: timing.FromCycles(cfg.DRAMLatency),
	}
}

// TotalBytes returns bytes moved across the pins in both channels.
func (m *System) TotalBytes() uint64 { return m.Addr.TotalBytes + m.Data.TotalBytes }

// DataBusyTicks returns the data channel's cumulative occupancy.
func (m *System) DataBusyTicks() timing.Tick { return m.Data.BusyTicks() }

// Config returns the active configuration.
func (m *System) Config() Config { return m.cfg }

// flitsFor returns the payload flit count for a line of the given
// compressed size under the active link-compression setting.
func (m *System) flitsFor(segs uint8) int {
	if m.cfg.LinkCompression {
		if segs < 1 {
			segs = 1
		}
		if segs > cache.MaxSegs {
			segs = cache.MaxSegs
		}
		return int(segs)
	}
	return cache.MaxSegs
}

// Fetch performs a demand line read: the request message crosses the
// link, DRAM is accessed (bank conflicts delay), and the response
// message returns with demand priority. It returns the tick the line
// is on chip.
func (m *System) Fetch(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick {
	return m.fetch(now, addr, segs, true)
}

// FetchLow is Fetch at prefetch priority: the response queues behind
// all other traffic on the data channel.
func (m *System) FetchLow(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick {
	return m.fetch(now, addr, segs, false)
}

func (m *System) fetch(now timing.Tick, addr cache.BlockAddr, segs uint8, demand bool) timing.Tick {
	m.Fetches++
	// Request message: header only, on the address channel.
	reqDone := m.Addr.Send(now, 0)
	// DRAM bank access; the wait (if any) is fetch-path queueing.
	start := m.banks.Acquire(uint64(addr), reqDone)
	m.DRAMWaits += start - reqDone
	dataReady := start + m.dramLat
	// Response: the bandwidth slot is claimed in request order (the
	// controller pipelines transfers), but the data cannot leave before
	// the DRAM produces it.
	flits := m.flitsFor(segs)
	m.FetchFlits += uint64(flits)
	slot := m.Data.Reserve(reqDone, flits, demand)
	if slot < dataReady {
		slot = dataReady
	}
	return slot + m.Data.Occupancy(flits)
}

// Writeback sends a dirty line to memory, consuming link bandwidth and
// a DRAM bank slot. The caller does not wait for completion; the return
// value is when the write has fully drained (for tests).
func (m *System) Writeback(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick {
	m.Writebacks++
	flits := m.flitsFor(segs)
	m.WriteFlits += uint64(flits)
	done := m.Data.SendLow(now, flits)
	start := m.banks.Acquire(uint64(addr), done)
	return start + m.banks.Occupancy()
}

// CheckInvariants verifies flit conservation across the memory system
// (audit support): both channels internally conserve bytes, every data
// payload flit belongs to exactly one fetch or writeback, requests ride
// the address channel header-only, one request message exists per
// fetch, and the DRAM banks' reservation state is sane. It returns the
// first violation, or "".
func (m *System) CheckInvariants() string {
	if bad := m.Addr.CheckInvariants(); bad != "" {
		return "addr channel: " + bad
	}
	if bad := m.Data.CheckInvariants(); bad != "" {
		return "data channel: " + bad
	}
	if bad := m.banks.CheckInvariants(); bad != "" {
		return "dram banks: " + bad
	}
	if want := m.FetchFlits + m.WriteFlits; m.Data.PayloadFlits != want {
		return fmt.Sprintf("flit conservation: data channel carried %d payload flits but fetches (%d) + writebacks (%d) account for %d",
			m.Data.PayloadFlits, m.FetchFlits, m.WriteFlits, want)
	}
	if m.Addr.PayloadFlits != 0 {
		return fmt.Sprintf("address channel carried %d payload flits (requests are header-only)", m.Addr.PayloadFlits)
	}
	if m.Addr.Messages != m.Fetches {
		return fmt.Sprintf("%d request messages for %d fetches", m.Addr.Messages, m.Fetches)
	}
	if m.Data.Messages != m.Fetches+m.Writebacks {
		return fmt.Sprintf("%d data messages for %d fetches + %d writebacks", m.Data.Messages, m.Fetches, m.Writebacks)
	}
	if m.banks.Grants() != m.Fetches+m.Writebacks {
		return fmt.Sprintf("%d bank grants for %d fetches + %d writebacks", m.banks.Grants(), m.Fetches, m.Writebacks)
	}
	return ""
}

// UncontendedFetchLatency returns the no-queueing round-trip latency of
// a fetch with the given compressed size: the lower bound the timing
// model approaches when bandwidth is plentiful.
func (m *System) UncontendedFetchLatency(segs uint8) timing.Tick {
	lat := m.dramLat
	if !m.Data.Infinite() {
		lat += m.Addr.Occupancy(0) + m.Data.Occupancy(m.flitsFor(segs))
	}
	return lat
}
