// Package memory models the off-chip memory system: the memory
// controller reached over the pin link and a banked DRAM. Lines are
// stored in memory in the form the processor sends across the interface
// — compressed or uncompressed, with a bit encoded in the ECC recording
// which (the paper's simple memory interface that does not change
// effective memory capacity).
package memory

import (
	"fmt"

	"cmpsim/internal/cache"
	"cmpsim/internal/link"
)

// Config parameterizes the memory system (paper Table 1 defaults via
// DefaultConfig).
type Config struct {
	// LinkBytesPerCycle is the pin bandwidth in bytes per core cycle;
	// 20 GB/s at 5 GHz is 4.0. Zero models infinite bandwidth.
	LinkBytesPerCycle float64
	// DRAMLatency is the access latency in cycles (paper: 400).
	DRAMLatency float64
	// Banks is the number of DRAM banks (block-address interleaved).
	Banks int
	// BankOccupancy is the cycles a bank stays busy per access.
	BankOccupancy float64
	// LinkCompression transfers lines in their FPC-compressed size.
	LinkCompression bool
}

// DefaultConfig returns the paper's memory parameters: 20 GB/s pins at a
// 5 GHz core clock, 400-cycle DRAM, 16 banks.
func DefaultConfig() Config {
	return Config{
		LinkBytesPerCycle: 4.0,
		DRAMLatency:       400,
		Banks:             16,
		BankOccupancy:     40,
	}
}

func (c Config) validate() error {
	if c.LinkBytesPerCycle < 0 {
		return fmt.Errorf("memory: negative link bandwidth")
	}
	if c.DRAMLatency <= 0 || c.BankOccupancy < 0 {
		return fmt.Errorf("memory: DRAM latency must be positive")
	}
	if c.Banks <= 0 {
		return fmt.Errorf("memory: bank count must be positive")
	}
	return nil
}

// System is the controller + DRAM + link composite. The pins are
// modeled as two channels at the configured rate: a narrow address
// channel carrying request messages, and the data channel carrying
// fetch responses and writebacks (the direction whose queueing the
// paper's contention results hinge on). Keeping requests off the data
// channel avoids a reservation-model artifact where a request issued
// at time t would queue behind a response slot reserved at t+400.
type System struct {
	cfg      Config
	Addr     *link.Channel
	Data     *link.Channel
	bankBusy []float64

	// ECC meta-state: blocks currently stored compressed in memory.
	// Tracked only for accounting/tests; sizes come from the SizeFunc.
	Fetches    uint64
	Writebacks uint64
	DRAMWaits  float64 // cumulative bank queueing delay
	FetchFlits uint64
	WriteFlits uint64
}

// New builds a memory system.
func New(cfg Config) *System {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &System{
		cfg:      cfg,
		Addr:     link.NewChannel(cfg.LinkBytesPerCycle),
		Data:     link.NewChannel(cfg.LinkBytesPerCycle),
		bankBusy: make([]float64, cfg.Banks),
	}
}

// TotalBytes returns bytes moved across the pins in both channels.
func (m *System) TotalBytes() uint64 { return m.Addr.TotalBytes + m.Data.TotalBytes }

// DataBusyCycles returns the data channel's cumulative occupancy.
func (m *System) DataBusyCycles() float64 { return m.Data.BusyCycles }

// Config returns the active configuration.
func (m *System) Config() Config { return m.cfg }

// flitsFor returns the payload flit count for a line of the given
// compressed size under the active link-compression setting.
func (m *System) flitsFor(segs uint8) int {
	if m.cfg.LinkCompression {
		if segs < 1 {
			segs = 1
		}
		if segs > cache.MaxSegs {
			segs = cache.MaxSegs
		}
		return int(segs)
	}
	return cache.MaxSegs
}

// Fetch performs a demand line read: the request message crosses the
// link, DRAM is accessed (bank conflicts delay), and the response
// message returns with demand priority. It returns the cycle the line
// is on chip.
func (m *System) Fetch(now float64, addr cache.BlockAddr, segs uint8) float64 {
	return m.fetch(now, addr, segs, true)
}

// FetchLow is Fetch at prefetch priority: the response queues behind
// all other traffic on the data channel.
func (m *System) FetchLow(now float64, addr cache.BlockAddr, segs uint8) float64 {
	return m.fetch(now, addr, segs, false)
}

func (m *System) fetch(now float64, addr cache.BlockAddr, segs uint8, demand bool) float64 {
	m.Fetches++
	// Request message: header only, on the address channel.
	reqDone := m.Addr.Send(now, 0)
	// DRAM bank access.
	bank := int(uint64(addr) % uint64(m.cfg.Banks))
	start := reqDone
	if m.bankBusy[bank] > start {
		m.DRAMWaits += m.bankBusy[bank] - start
		start = m.bankBusy[bank]
	}
	m.bankBusy[bank] = start + m.cfg.BankOccupancy
	dataReady := start + m.cfg.DRAMLatency
	// Response: the bandwidth slot is claimed in request order (the
	// controller pipelines transfers), but the data cannot leave before
	// the DRAM produces it.
	flits := m.flitsFor(segs)
	m.FetchFlits += uint64(flits)
	slot := m.Data.Reserve(reqDone, flits, demand)
	if slot < dataReady {
		slot = dataReady
	}
	return slot + m.Data.Occupancy(flits)
}

// Writeback sends a dirty line to memory, consuming link bandwidth and
// a DRAM bank slot. The caller does not wait for completion; the return
// value is when the write has fully drained (for tests).
func (m *System) Writeback(now float64, addr cache.BlockAddr, segs uint8) float64 {
	m.Writebacks++
	flits := m.flitsFor(segs)
	m.WriteFlits += uint64(flits)
	done := m.Data.SendLow(now, flits)
	bank := int(uint64(addr) % uint64(m.cfg.Banks))
	start := done
	if m.bankBusy[bank] > start {
		start = m.bankBusy[bank]
	}
	m.bankBusy[bank] = start + m.cfg.BankOccupancy
	return start + m.cfg.BankOccupancy
}

// CheckInvariants verifies flit conservation across the memory system
// (audit support): both channels internally conserve bytes, every data
// payload flit belongs to exactly one fetch or writeback, requests ride
// the address channel header-only, and one request message exists per
// fetch. It returns the first violation, or "".
func (m *System) CheckInvariants() string {
	if bad := m.Addr.CheckInvariants(); bad != "" {
		return "addr channel: " + bad
	}
	if bad := m.Data.CheckInvariants(); bad != "" {
		return "data channel: " + bad
	}
	if want := m.FetchFlits + m.WriteFlits; m.Data.PayloadFlits != want {
		return fmt.Sprintf("flit conservation: data channel carried %d payload flits but fetches (%d) + writebacks (%d) account for %d",
			m.Data.PayloadFlits, m.FetchFlits, m.WriteFlits, want)
	}
	if m.Addr.PayloadFlits != 0 {
		return fmt.Sprintf("address channel carried %d payload flits (requests are header-only)", m.Addr.PayloadFlits)
	}
	if m.Addr.Messages != m.Fetches {
		return fmt.Sprintf("%d request messages for %d fetches", m.Addr.Messages, m.Fetches)
	}
	if m.Data.Messages != m.Fetches+m.Writebacks {
		return fmt.Sprintf("%d data messages for %d fetches + %d writebacks", m.Data.Messages, m.Fetches, m.Writebacks)
	}
	return ""
}

// UncontendedFetchLatency returns the no-queueing round-trip latency of
// a fetch with the given compressed size: the lower bound the timing
// model approaches when bandwidth is plentiful.
func (m *System) UncontendedFetchLatency(segs uint8) float64 {
	lat := m.cfg.DRAMLatency
	if !m.Data.Infinite() {
		reqBytes := float64(link.HeaderBytes)
		respBytes := float64(link.HeaderBytes + m.flitsFor(segs)*link.FlitBytes)
		lat += (reqBytes + respBytes) / m.cfg.LinkBytesPerCycle
	}
	return lat
}
