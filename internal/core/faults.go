// Failure taxonomy for the experiment pipeline. The scheduler separates
// two classes of trouble:
//
//   - Programmer errors surface immediately: Submit on a closed
//     scheduler panics, and MustWait/MustRun panic on any point error,
//     because a driver iterating known-good inputs that still fails is
//     itself broken.
//   - Point failures — a panicking seed job, a runaway simulation
//     abandoned by the watchdog, a transient fault that survived its
//     retries, an invalid request — are data, not disasters: they are
//     carried through the future/Observer plumbing as a *PointError and
//     render as FAILED cells in study rows, so one bad point cannot take
//     down a sweep.
package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"cmpsim/internal/audit"
	"cmpsim/internal/sim"
)

// Failure reasons carried by PointError.
const (
	ReasonPanic     = "panic"     // the seed job panicked (isolated by recover)
	ReasonTimeout   = "timeout"   // the watchdog abandoned a runaway simulation
	ReasonError     = "error"     // the simulation (or fault hook) returned an error
	ReasonInvariant = "invariant" // the runtime auditor detected state corruption
	ReasonDrained   = "drained"   // the sweep was drained (SIGINT/SIGTERM) before the point ran
)

// ErrPointTimeout marks a seed job abandoned by the per-point watchdog
// (Options.PointTimeout). Timeouts are not retried: a runaway simulation
// would most likely run away again, and its goroutine is already burned.
var ErrPointTimeout = errors.New("core: point deadline exceeded")

// PointError describes one failed data point: which seed job failed,
// why, and with what evidence. It is the error PointFuture.Wait returns
// for failed points and the Err carried by their PointFinish events.
type PointError struct {
	Benchmark  string
	Mechanisms Mechanisms
	Options    Options // canonical form (the cache key's option set)
	Seed       int     // the first failing seed
	Attempts   int     // simulation attempts for that seed (1 + retries)
	Reason     string  // ReasonPanic, ReasonTimeout or ReasonError
	Stack      string  // goroutine stack at the panic site (ReasonPanic only)
	Err        error   // underlying cause
}

// Error formats the full failure record (sans stack).
func (e *PointError) Error() string {
	return fmt.Sprintf("core: point %s/%s seed %d failed after %d attempt(s): %v",
		e.Benchmark, e.Mechanisms.Label(), e.Seed, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *PointError) Unwrap() error { return e.Err }

// Cell is the short form report tables print inside FAILED(...) cells.
func (e *PointError) Cell() string {
	if e.Reason == ReasonTimeout {
		return fmt.Sprintf("timeout (seed %d)", e.Seed)
	}
	var v *audit.Violation
	if errors.As(e.Err, &v) {
		return fmt.Sprintf("invariant:%s (seed %d)", v.Invariant, e.Seed)
	}
	return fmt.Sprintf("%v (seed %d)", e.Err, e.Seed)
}

// panicError wraps a recovered panic value so it can travel as an error.
type panicError struct {
	val   any
	stack string
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// IsRetryable reports whether retry-with-backoff may resolve err: some
// error in its chain implements Retryable() bool and returns true.
// Panics and watchdog timeouts are never retryable.
func IsRetryable(err error) bool {
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// newPointError classifies err and wraps it with the failing job's
// identity.
func (e *pointEntry) newPointError(seed, attempts int, err error) *PointError {
	pe := &PointError{
		Benchmark: e.bench, Mechanisms: e.mech, Options: e.opts,
		Seed: seed, Attempts: attempts, Reason: ReasonError, Err: err,
	}
	var p *panicError
	var v *audit.Violation
	switch {
	case errors.As(err, &p):
		pe.Reason = ReasonPanic
		pe.Stack = p.stack
	case errors.Is(err, ErrPointTimeout):
		pe.Reason = ReasonTimeout
	case errors.As(err, &v):
		pe.Reason = ReasonInvariant
	}
	return pe
}

// simulateSeed runs one seed job with panic isolation, the optional
// watchdog deadline, and bounded retry-with-backoff for retryable
// failures. Any failure comes back as a *PointError.
func (e *pointEntry) simulateSeed(s *Scheduler, seed int) (sim.Metrics, error) {
	cfg := e.opts.config(e.bench, e.mech, int64(seed)+1)
	if e.checkSet {
		cfg.CheckLevel = e.checkLevel
	}
	if e.stateFault != nil {
		cfg.StateFault = e.stateFault(e.bench, e.mech.Label(), seed)
	}
	for attempt := 0; ; attempt++ {
		met, err := e.attemptOnce(cfg, seed)
		if err == nil {
			return met, nil
		}
		if !IsRetryable(err) || attempt >= e.retries {
			return sim.Metrics{}, e.newPointError(seed, attempt+1, err)
		}
		s.noteRetry()
		if e.backoff > 0 {
			time.Sleep(e.backoff << uint(attempt)) // exponential backoff
		}
	}
}

// attemptOnce executes one simulation attempt. Without a deadline it
// runs inline on the worker; with one it runs in a child goroutine the
// watchdog abandons on expiry (the runaway goroutine finishes into a
// buffered channel nobody reads and is then collected).
func (e *pointEntry) attemptOnce(cfg sim.Config, seed int) (sim.Metrics, error) {
	if e.timeout <= 0 {
		return e.guardedRun(cfg, seed)
	}
	type result struct {
		met sim.Metrics
		err error
	}
	ch := make(chan result, 1)
	go func() {
		met, err := e.guardedRun(cfg, seed)
		ch <- result{met, err}
	}()
	timer := time.NewTimer(e.timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.met, r.err
	case <-timer.C:
		return sim.Metrics{}, fmt.Errorf("%w (no result within %v)", ErrPointTimeout, e.timeout)
	}
}

// guardedRun fires the fault-injection hook (if any) and the simulation
// with panic isolation: a panic anywhere below becomes a panicError
// instead of killing the worker pool.
func (e *pointEntry) guardedRun(cfg sim.Config, seed int) (met sim.Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: string(debug.Stack())}
		}
	}()
	if e.faultHook != nil {
		if herr := e.faultHook(e.bench, e.mech.Label(), seed); herr != nil {
			return sim.Metrics{}, herr
		}
	}
	return sim.Run(cfg)
}
