package core

import (
	"testing"

	"cmpsim/internal/sim"
)

// TestPaperShape locks in the paper's headline qualitative findings at a
// moderate scale (8 cores, 2 MB L2, shortened warmup). It is the
// regression net for the reproduction itself: if a refactor breaks one
// of these directional results, the repository no longer reproduces the
// paper. Skipped under -short.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape test is expensive")
	}
	o := Options{Cores: 8, Seeds: 1, Warmup: 1_200_000, Measure: 400_000,
		BandwidthGBps: 10, L2MB: 2}

	t.Run("CommercialCompressesSPECompDoesNot", func(t *testing.T) {
		jbb := MustRun("jbb", CacheCompr, o)
		apsi := MustRun("apsi", CacheCompr, o)
		jr := jbb.Mean(ratioOf)
		ar := apsi.Mean(ratioOf)
		if jr < 1.3 {
			t.Errorf("jbb ratio %.2f should be well above 1.3", jr)
		}
		if ar > 1.15 {
			t.Errorf("apsi ratio %.2f should stay near 1", ar)
		}
	})

	t.Run("CompressionHelpsCommercial", func(t *testing.T) {
		base := MustRun("oltp", Base, o)
		compr := MustRun("oltp", Compression, o)
		if sp := Speedup(base, compr); sp < 1.0 {
			t.Errorf("oltp compression speedup %.3f should be positive", sp)
		}
	})

	t.Run("PrefetchingHurtsJbb", func(t *testing.T) {
		base := MustRun("jbb", Base, o)
		pf := MustRun("jbb", Prefetch, o)
		if sp := Speedup(base, pf); sp > 1.0 {
			t.Errorf("jbb prefetch speedup %.3f should be a slowdown", sp)
		}
	})

	t.Run("AdaptiveRescuesJbb", func(t *testing.T) {
		base := MustRun("jbb", Base, o)
		pf := MustRun("jbb", Prefetch, o)
		ad := MustRun("jbb", AdaptivePf, o)
		if Speedup(base, ad) <= Speedup(base, pf) {
			t.Errorf("adaptive (%.3f) should beat static prefetching (%.3f) on jbb",
				Speedup(base, ad), Speedup(base, pf))
		}
	})

	t.Run("PrefetchingHelpsScientific", func(t *testing.T) {
		// mgrid is a streaming benchmark: at the scaled-down 10 GB/s it
		// is bandwidth-saturated and prefetching cannot help, so this
		// sub-test keeps the paper's full 20 GB/s pins.
		om := o
		om.BandwidthGBps = 20
		base := MustRun("mgrid", Base, om)
		pf := MustRun("mgrid", Prefetch, om)
		if sp := Speedup(base, pf); sp < 1.05 {
			t.Errorf("mgrid prefetch speedup %.3f should be strong", sp)
		}
	})

	t.Run("PrefetchBenefitCollapsesWithCores", func(t *testing.T) {
		o1 := o
		o1.Cores = 1
		base1 := MustRun("zeus", Base, o1)
		pf1 := MustRun("zeus", Prefetch, o1)
		base8 := MustRun("zeus", Base, o)
		pf8 := MustRun("zeus", Prefetch, o)
		gain1 := Speedup(base1, pf1)
		gain8 := Speedup(base8, pf8)
		if gain8 >= gain1 {
			t.Errorf("prefetch gain should shrink with cores: 1p %.3f vs 8p %.3f", gain1, gain8)
		}
	})

	t.Run("LinkCompressionCutsCommercialDemand", func(t *testing.T) {
		oInf := o
		oInf.BandwidthGBps = 0
		base := MustRun("oltp", Base, oInf)
		lc := MustRun("oltp", LinkCompr, oInf)
		bwBase := base.Mean(bwOf)
		bwLC := lc.Mean(bwOf)
		if bwLC > bwBase*0.85 {
			t.Errorf("link compression cut oltp demand only %.1f%% (%.2f -> %.2f GB/s)",
				(1-bwLC/bwBase)*100, bwBase, bwLC)
		}
	})

	t.Run("PrefetchingInflatesDemand", func(t *testing.T) {
		oInf := o
		oInf.BandwidthGBps = 0
		base := MustRun("zeus", Base, oInf)
		pf := MustRun("zeus", Prefetch, oInf)
		if pf.Mean(bwOf) <= base.Mean(bwOf) {
			t.Error("prefetching should increase bandwidth demand")
		}
	})
}

func ratioOf(m *sim.Metrics) float64 { return m.CompressionRatio }
func bwOf(m *sim.Metrics) float64    { return m.BandwidthGBps }
