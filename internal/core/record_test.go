package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cmpsim/internal/sim"
)

// schedulingOnlyFields is the complete list of Options fields that are
// canonicalized out of the point identity. The drift guard below forces
// every NEW Options field to be classified: either it changes PointKey
// (identity-bearing) or its name is added here (scheduling-only) — it
// cannot be left ambiguous, because the scheduler cache, the checkpoint
// and the shared result store all key on the same function.
var schedulingOnlyFields = map[string]bool{
	"Workers":      true,
	"Shards":       true,
	"PointTimeout": true,
	"MaxRetries":   true,
	"RetryBackoff": true,
	"CheckLevel":   true,
}

// perturb sets one struct field to a value different from its current
// one, so the guard can observe whether the key moves.
func perturb(f reflect.Value) {
	switch f.Kind() {
	case reflect.Int, reflect.Int64:
		f.SetInt(f.Int() + 7)
	case reflect.Uint64:
		f.SetUint(f.Uint() + 7777)
	case reflect.Float64:
		f.SetFloat(f.Float() + 3.5)
	case reflect.Bool:
		f.SetBool(!f.Bool())
	case reflect.String:
		f.SetString(f.String() + "xx")
	default:
		panic("record_test: unhandled Options field kind " + f.Kind().String())
	}
}

func TestPointKeyDriftGuard(t *testing.T) {
	base := tinyOptions()
	baseKey := PointKey("zeus", Compression, base)
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		field := typ.Field(i)
		t.Run(field.Name, func(t *testing.T) {
			o := base
			perturb(reflect.ValueOf(&o).Elem().Field(i))
			if field.Name == "DecompressionCycles" {
				// Gated: ignored unless DecompressionSet, identity-bearing
				// with it. Both halves are pinned.
				if PointKey("zeus", Compression, o) != baseKey {
					t.Fatal("DecompressionCycles without DecompressionSet changed the key")
				}
				o.DecompressionSet = true
				withSet := base
				withSet.DecompressionSet = true
				if PointKey("zeus", Compression, o) == PointKey("zeus", Compression, withSet) {
					t.Fatal("DecompressionCycles with DecompressionSet did not change the key")
				}
				return
			}
			changed := PointKey("zeus", Compression, o) != baseKey
			if schedulingOnlyFields[field.Name] && changed {
				t.Fatalf("scheduling-only field %s changed the point key", field.Name)
			}
			if !schedulingOnlyFields[field.Name] && !changed {
				t.Fatalf("field %s did not change the point key; classify it: either it is identity-bearing (fix canonicalOpts) or add it to schedulingOnlyFields AND canonicalOpts", field.Name)
			}
		})
	}
}

func TestPointKeyAliases(t *testing.T) {
	base := tinyOptions()
	ref := PointKey("zeus", Prefetch, base)

	o := base
	o.PrefetcherKind = "stride" // the engine "" already selects
	if PointKey("zeus", Prefetch, o) != ref {
		t.Error("PrefetcherKind \"stride\" is not key-equivalent to \"\"")
	}
	o = base
	o.Codec = "fpc" // the explicit default codec
	if PointKey("zeus", Prefetch, o) != ref {
		t.Error("Codec \"fpc\" is not key-equivalent to \"\"")
	}
	for _, lvl := range []string{"off", "invariants", "shadow"} {
		o = base
		o.CheckLevel = lvl
		if PointKey("zeus", Prefetch, o) != ref {
			t.Errorf("CheckLevel %q changed the point key", lvl)
		}
	}
}

// TestPointKeyMatchesSchedulerCache pins the contract PointKey
// documents: two requests share a string key if and only if they land
// on the same scheduler cache entry (canonicalKey).
func TestPointKeyMatchesSchedulerCache(t *testing.T) {
	a := tinyOptions()
	b := a
	b.Workers = 9
	b.PointTimeout = time.Minute
	b.CheckLevel = "shadow"
	if canonicalKey("zeus", Base, a) != canonicalKey("zeus", Base, b) {
		t.Fatal("scheduling-only fields changed the cache key")
	}
	if PointKey("zeus", Base, a) != PointKey("zeus", Base, b) {
		t.Fatal("scheduling-only fields changed the string key")
	}
	c := a
	c.Cores = a.Cores + 1
	if canonicalKey("zeus", Base, a) == canonicalKey("zeus", Base, c) {
		t.Fatal("Cores did not change the cache key")
	}
	if PointKey("zeus", Base, a) == PointKey("zeus", Base, c) {
		t.Fatal("Cores did not change the string key")
	}
	// The key is canonicalization-idempotent: pre-canonicalized options
	// produce the identical string.
	if PointKey("zeus", Base, b) != PointKey("zeus", Base, CanonicalOptions(b)) {
		t.Fatal("PointKey is not canonicalization-idempotent")
	}
}

func TestPointRecordValidate(t *testing.T) {
	o := tinyOptions()
	p := Point{Benchmark: "zeus", Runs: make([]sim.Metrics, o.Seeds)}
	good := NewPointRecord("zeus", Base, o, p)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}

	bad := good
	bad.Benchmark = ""
	if bad.Validate() == nil {
		t.Error("record without benchmark accepted")
	}

	bad = good
	bad.Options.Workers = 4 // non-canonical stored identity
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "canonical") {
		t.Errorf("non-canonical options accepted: %v", err)
	}

	bad = good
	bad.Point.Runs = bad.Point.Runs[:1]
	bad.Options.Seeds = 2
	if bad.Validate() == nil {
		t.Error("run count / seed mismatch accepted")
	}

	bad = good
	bad.Options.Seeds = 0
	bad.Point.Runs = nil
	if bad.Validate() == nil {
		t.Error("zero-seed record accepted")
	}
}
