// Package core is the library facade for the reproduction: it assembles
// paper-configured simulations (sim), runs each data point over several
// seeds with the paper's statistical treatment (stats), and provides
// one driver per table and figure of the evaluation section.
//
// The mechanism combinations under study are named the way the paper's
// figure legends name them:
//
//	Base          no compression, no prefetching
//	CacheCompr    L2 cache compression only
//	LinkCompr     link compression only
//	Compression   cache + link compression
//	Prefetch      stride prefetching only
//	AdaptivePf    stride prefetching with adaptive throttling
//	PrefCompr     prefetching + both compressions
//	AdaptiveCompr adaptive prefetching + both compressions
package core

import (
	"fmt"
	"runtime"
	"time"

	"cmpsim/internal/codec"
	"cmpsim/internal/sim"
	"cmpsim/internal/stats"
	"cmpsim/internal/workload"
)

// Mechanisms selects the architectural enhancements for a run.
type Mechanisms struct {
	CacheCompression bool
	LinkCompression  bool
	Prefetching      bool
	Adaptive         bool
}

// The paper's mechanism combinations.
var (
	Base          = Mechanisms{}
	CacheCompr    = Mechanisms{CacheCompression: true}
	LinkCompr     = Mechanisms{LinkCompression: true}
	Compression   = Mechanisms{CacheCompression: true, LinkCompression: true}
	Prefetch      = Mechanisms{Prefetching: true}
	AdaptivePf    = Mechanisms{Prefetching: true, Adaptive: true}
	PrefCompr     = Mechanisms{CacheCompression: true, LinkCompression: true, Prefetching: true}
	AdaptiveCompr = Mechanisms{CacheCompression: true, LinkCompression: true, Prefetching: true, Adaptive: true}
)

// Label names the combination as in the paper's legends.
func (m Mechanisms) Label() string {
	switch m {
	case Base:
		return "base"
	case CacheCompr:
		return "cache-compr"
	case LinkCompr:
		return "link-compr"
	case Compression:
		return "compression"
	case Prefetch:
		return "prefetch"
	case AdaptivePf:
		return "adaptive-pf"
	case PrefCompr:
		return "pf+compr"
	case AdaptiveCompr:
		return "adaptive+compr"
	default:
		return fmt.Sprintf("%+v", struct{ C, L, P, A bool }{m.CacheCompression, m.LinkCompression, m.Prefetching, m.Adaptive})
	}
}

// Options controls run size and system scale.
type Options struct {
	Cores   int
	Seeds   int // independent runs per data point
	Workers int // concurrent seed simulations; <= 0 = one per CPU
	// Shards is the per-run reference-generation goroutine count
	// (sim.Config.Shards). Scheduling-only: metrics are bit-identical
	// for any value, so it is excluded from the point-cache key.
	Shards int

	// Robustness knobs (scheduling-only: they never change simulation
	// results and are excluded from the point-cache key).
	//
	// PointTimeout is the per-seed watchdog deadline: a simulation that
	// produces no result within it is abandoned and the point fails with
	// a timeout PointError (0 = no deadline). MaxRetries bounds
	// retry-with-backoff for retryable failures (see IsRetryable);
	// RetryBackoff is the first retry's delay, doubled per attempt
	// (0 = retry immediately).
	PointTimeout time.Duration
	MaxRetries   int
	RetryBackoff time.Duration

	// CheckLevel forces the runtime audit tier for every seed run: "off",
	// "invariants" or "shadow" (see internal/audit). "" keeps the
	// environment default (CMPSIM_CHECK). The audit is read-only — any
	// level produces bit-identical metrics — so the field is canonicalized
	// out of the point-cache key like the scheduling knobs above.
	CheckLevel string

	Warmup        uint64  // instructions per core
	Measure       uint64  // instructions per core
	BandwidthGBps float64 // pin bandwidth; 0 = infinite (demand metric)
	L2MB          int

	// CollectMissProfile enables per-block miss accounting (Figure 8).
	CollectMissProfile bool

	// TelemetryInterval samples interval telemetry every N aggregate
	// instructions of each run's measurement window (0 = disabled); the
	// samples land in each run's sim.Metrics.Timeline.
	TelemetryInterval uint64

	// Hardware overrides for sensitivity/ablation studies. Zero values
	// keep the paper's Table 1 parameters; UncompressedVictimTags uses
	// -1 to disable victim tags entirely.
	L1PrefetchDepth        int
	L2PrefetchDepth        int
	DecompressionCycles    float64 // applied only when DecompressionSet
	DecompressionSet       bool
	L2TagsPerSet           int
	UncompressedVictimTags int
	// PrefetcherKind selects the engine from the internal/prefetch
	// registry; "" canonicalizes to "stride" (the paper's engine) for
	// the point-cache key. "sequential", "stream" and "markov" are the
	// alternative families.
	PrefetcherKind string

	// RefSource overrides the reference-source kind for every benchmark
	// (internal/workload source registry name). "" uses each profile's
	// own kind, which is NOT an alias for "strided": forcing "strided"
	// changes what an irregular benchmark runs, so the field is
	// identity-bearing in the point key with no canonical alias.
	RefSource string

	// Codec selects the line-compression scheme (internal/codec registry
	// name); "" or "fpc" is the paper's FPC and canonicalizes to the
	// same point-cache key. Selecting a codec without DecompressionSet
	// applies the codec's own default decompression latency.
	Codec string
}

// DefaultOptions is the paper's 8-core system with enough warmup for the
// 4 MB L2 to reach steady state.
func DefaultOptions() Options {
	return Options{Cores: 8, Seeds: 2, Warmup: 3_000_000, Measure: 1_000_000, BandwidthGBps: 20, L2MB: 4}
}

// QuickOptions is a scaled-down configuration for tests and benchmarks:
// the same mechanisms on a smaller cache and shorter runs.
func QuickOptions() Options {
	return Options{Cores: 8, Seeds: 1, Warmup: 400_000, Measure: 200_000, BandwidthGBps: 20, L2MB: 4}
}

// config builds the sim.Config for one run.
func (o Options) config(bench string, m Mechanisms, seed int64) sim.Config {
	cfg := sim.NewConfig(bench)
	cfg.Cores = o.Cores
	cfg.Seed = seed
	cfg.WarmupInstr = o.Warmup
	cfg.MeasureInstr = o.Measure
	cfg.CacheCompression = m.CacheCompression
	cfg.LinkCompression = m.LinkCompression
	cfg.Prefetching = m.Prefetching
	cfg.AdaptivePrefetch = m.Adaptive
	if o.L2MB > 0 {
		cfg.L2Bytes = o.L2MB << 20
	}
	cfg.L1PrefetchDepth = o.L1PrefetchDepth
	cfg.L2PrefetchDepth = o.L2PrefetchDepth
	cfg.Codec = o.Codec
	if o.DecompressionSet {
		cfg.DecompressionCycles = o.DecompressionCycles
	} else if c, err := codec.ByName(o.Codec); err == nil && c.Name() != codec.DefaultName {
		// A non-default codec brings its own decompression pipeline
		// depth; unknown names fall through to sim.Validate for a clean
		// point failure.
		cfg.DecompressionCycles = c.DecompressionCycles()
	}
	if o.L2TagsPerSet > 0 {
		cfg.L2TagsPerSet = o.L2TagsPerSet
	}
	if o.UncompressedVictimTags > 0 {
		cfg.UncompressedVictimTags = o.UncompressedVictimTags
	} else if o.UncompressedVictimTags < 0 {
		cfg.UncompressedVictimTags = 0
	}
	cfg.PrefetcherKind = o.PrefetcherKind
	cfg.RefSource = o.RefSource
	cfg.Memory.LinkBytesPerCycle = o.BandwidthGBps / cfg.ClockGHz
	cfg.CollectMissProfile = o.CollectMissProfile
	cfg.TelemetryInterval = o.TelemetryInterval
	cfg.Shards = o.Shards
	return cfg
}

// Point is one measured data point: a benchmark × mechanism combination,
// run over Options.Seeds seeds.
type Point struct {
	Benchmark  string
	Mechanisms Mechanisms
	Runtime    stats.Sample  // cycles
	Runs       []sim.Metrics // one per seed
}

// Mean returns a scalar metric's mean over the seeds.
func (p Point) Mean(f func(*sim.Metrics) float64) float64 {
	if len(p.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for i := range p.Runs {
		sum += f(&p.Runs[i])
	}
	return sum / float64(len(p.Runs))
}

// workerCount resolves Options.Workers: values below 1 mean one worker
// per CPU.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run measures one data point on the process-wide scheduler: its seeds
// fan out over the worker pool and the result is memoized, so repeated
// requests for the same point (from any study) simulate only once. A
// returned Point (and its error, for invalid requests) is bit-identical
// to a serial run: seeds are fixed and collected in order.
func Run(bench string, m Mechanisms, o Options) (Point, error) {
	return sharedScheduler(o).Submit(bench, m, o).Wait()
}

// MustRun is Run for drivers iterating known-good benchmark names.
func MustRun(bench string, m Mechanisms, o Options) Point {
	p, err := Run(bench, m, o)
	if err != nil {
		panic(err)
	}
	return p
}

// Speedup returns runtime(base)/runtime(enhanced) between two points.
func Speedup(base, enhanced Point) float64 {
	return stats.Speedup(base.Runtime.Mean, enhanced.Runtime.Mean)
}

// Benchmarks returns the paper's eight benchmarks in figure order.
func Benchmarks() []string { return workload.PaperOrder() }

// CommercialBenchmarks returns the four Wisconsin commercial workloads.
func CommercialBenchmarks() []string { return workload.PaperOrder()[:4] }

// IrregularBenchmarks returns the linked-data-structure suite the
// irregular study runs over.
func IrregularBenchmarks() []string { return workload.IrregularOrder() }
