package core

import (
	"cmpsim/internal/coherence"
	"cmpsim/internal/sim"
	"cmpsim/internal/stats"
)

// CompressionRow is one benchmark's compression study results:
// Table 3 (ratio), Figure 3 (miss-rate reduction) and Figure 5
// (speedups of the three compression configurations).
type CompressionRow struct {
	Benchmark        string
	Ratio            float64 // Table 3: effective / physical cache size
	BaseMissPerKI    float64
	ComprMissPerKI   float64
	MissReductionPct float64 // Figure 3
	SpeedupCachePct  float64 // Figure 5: cache compression only
	SpeedupLinkPct   float64 // Figure 5: link compression only
	SpeedupBothPct   float64 // Figure 5: both
}

// CompressionStudy regenerates Table 3, Figure 3 and Figure 5.
func CompressionStudy(benchmarks []string, o Options) []CompressionRow {
	var rows []CompressionRow
	for _, b := range benchmarks {
		base := MustRun(b, Base, o)
		cc := MustRun(b, CacheCompr, o)
		lc := MustRun(b, LinkCompr, o)
		both := MustRun(b, Compression, o)
		rows = append(rows, CompressionRow{
			Benchmark:        b,
			Ratio:            cc.Mean(func(m *sim.Metrics) float64 { return m.CompressionRatio }),
			BaseMissPerKI:    base.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI }),
			ComprMissPerKI:   cc.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI }),
			MissReductionPct: missReductionPct(base, cc),
			SpeedupCachePct:  stats.SpeedupPct(Speedup(base, cc)),
			SpeedupLinkPct:   stats.SpeedupPct(Speedup(base, lc)),
			SpeedupBothPct:   stats.SpeedupPct(Speedup(base, both)),
		})
	}
	return rows
}

func missReductionPct(base, enh Point) float64 {
	b := base.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI })
	e := enh.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI })
	if b == 0 {
		return 0
	}
	return (b - e) / b * 100
}

// BandwidthRow is one benchmark's Figure 4 row: pin-bandwidth demand in
// GB/s under the four compression configurations (infinite pins).
type BandwidthRow struct {
	Benchmark string
	None      float64
	CacheOnly float64
	LinkOnly  float64
	Both      float64
}

// BandwidthStudy regenerates Figure 4. It forces infinite pin bandwidth
// (the paper's demand definition).
func BandwidthStudy(benchmarks []string, o Options) []BandwidthRow {
	o.BandwidthGBps = 0
	bw := func(p Point) float64 {
		return p.Mean(func(m *sim.Metrics) float64 { return m.BandwidthGBps })
	}
	var rows []BandwidthRow
	for _, b := range benchmarks {
		rows = append(rows, BandwidthRow{
			Benchmark: b,
			None:      bw(MustRun(b, Base, o)),
			CacheOnly: bw(MustRun(b, CacheCompr, o)),
			LinkOnly:  bw(MustRun(b, LinkCompr, o)),
			Both:      bw(MustRun(b, Compression, o)),
		})
	}
	return rows
}

// PrefetchPropsRow is one benchmark's Table 4 row: rate, coverage and
// accuracy of the three prefetcher classes.
type PrefetchPropsRow struct {
	Benchmark string
	L1I       PrefetcherProps
	L1D       PrefetcherProps
	L2        PrefetcherProps
}

// PrefetcherProps is EQ 2-4 for one engine class.
type PrefetcherProps struct {
	RatePer1000 float64
	CoveragePct float64
	AccuracyPct float64
}

// PrefetchProperties regenerates Table 4 (prefetching on, compression
// off, as in the paper's §4.3).
func PrefetchProperties(benchmarks []string, o Options) []PrefetchPropsRow {
	var rows []PrefetchPropsRow
	for _, b := range benchmarks {
		p := MustRun(b, Prefetch, o)
		props := func(src coherence.PfSource) PrefetcherProps {
			var pr PrefetcherProps
			for i := range p.Runs {
				e := p.Runs[i].Engine(src)
				pr.RatePer1000 += e.RatePer1000(p.Runs[i].Instructions)
				pr.CoveragePct += e.Coverage() * 100
				pr.AccuracyPct += e.Accuracy() * 100
			}
			n := float64(len(p.Runs))
			pr.RatePer1000 /= n
			pr.CoveragePct /= n
			pr.AccuracyPct /= n
			return pr
		}
		rows = append(rows, PrefetchPropsRow{
			Benchmark: b,
			L1I:       props(coherence.PfL1I),
			L1D:       props(coherence.PfL1D),
			L2:        props(coherence.PfL2),
		})
	}
	return rows
}

// PrefetchSpeedupRow is one benchmark's Figure 6 row.
type PrefetchSpeedupRow struct {
	Benchmark          string
	SpeedupPct         float64 // base stride prefetching
	AdaptiveSpeedupPct float64
}

// PrefetchStudy regenerates Figure 6.
func PrefetchStudy(benchmarks []string, o Options) []PrefetchSpeedupRow {
	var rows []PrefetchSpeedupRow
	for _, b := range benchmarks {
		base := MustRun(b, Base, o)
		pf := MustRun(b, Prefetch, o)
		ad := MustRun(b, AdaptivePf, o)
		rows = append(rows, PrefetchSpeedupRow{
			Benchmark:          b,
			SpeedupPct:         stats.SpeedupPct(Speedup(base, pf)),
			AdaptiveSpeedupPct: stats.SpeedupPct(Speedup(base, ad)),
		})
	}
	return rows
}

// InteractionRow is one benchmark's Table 5 / Figure 9 row.
type InteractionRow struct {
	Benchmark            string
	PrefPct              float64 // Speedup(Pref.) − 1
	ComprPct             float64 // Speedup(Compr.) − 1
	BothPct              float64 // Speedup(Pref., Compr.) − 1
	AdaptiveBothPct      float64 // Speedup(Adaptive-Pref, Compr.) − 1
	InteractionPct       float64 // EQ 5
	BWBasePrefGrowthPct  float64 // Figure 7: demand growth of pf alone
	BWComprPrefGrowthPct float64 // Figure 7: demand growth of pf+compr
}

// InteractionStudy regenerates Table 5, Figure 9 and the Figure 7 demand
// ratios (the latter on infinite pins).
func InteractionStudy(benchmarks []string, o Options) []InteractionRow {
	var rows []InteractionRow
	for _, b := range benchmarks {
		base := MustRun(b, Base, o)
		pf := MustRun(b, Prefetch, o)
		compr := MustRun(b, Compression, o)
		both := MustRun(b, PrefCompr, o)
		adBoth := MustRun(b, AdaptiveCompr, o)

		sp := Speedup(base, pf)
		sc := Speedup(base, compr)
		sb := Speedup(base, both)

		// Figure 7 bandwidth demand, infinite pins.
		oInf := o
		oInf.BandwidthGBps = 0
		bw := func(m Mechanisms) float64 {
			return MustRun(b, m, oInf).Mean(func(mm *sim.Metrics) float64 { return mm.BandwidthGBps })
		}
		bwBase := bw(Base)
		row := InteractionRow{
			Benchmark:       b,
			PrefPct:         stats.SpeedupPct(sp),
			ComprPct:        stats.SpeedupPct(sc),
			BothPct:         stats.SpeedupPct(sb),
			AdaptiveBothPct: stats.SpeedupPct(Speedup(base, adBoth)),
			InteractionPct:  stats.InteractionPct(sp, sc, sb),
		}
		if bwBase > 0 {
			row.BWBasePrefGrowthPct = (bw(Prefetch)/bwBase - 1) * 100
			row.BWComprPrefGrowthPct = (bw(PrefCompr)/bwBase - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// AdaptiveRow is one commercial benchmark's Figure 10 row.
type AdaptiveRow struct {
	Benchmark        string
	PrefPct          float64
	AdaptivePct      float64
	PrefComprPct     float64
	AdaptiveComprPct float64
}

// AdaptiveStudy regenerates Figure 10 (the paper shows the commercial
// workloads, where adaptation matters).
func AdaptiveStudy(benchmarks []string, o Options) []AdaptiveRow {
	var rows []AdaptiveRow
	for _, b := range benchmarks {
		base := MustRun(b, Base, o)
		sp := func(m Mechanisms) float64 { return stats.SpeedupPct(Speedup(base, MustRun(b, m, o))) }
		rows = append(rows, AdaptiveRow{
			Benchmark:        b,
			PrefPct:          sp(Prefetch),
			AdaptivePct:      sp(AdaptivePf),
			PrefComprPct:     sp(PrefCompr),
			AdaptiveComprPct: sp(AdaptiveCompr),
		})
	}
	return rows
}

// MissClassRow is one benchmark's Figure 8 breakdown, as percentages of
// the baseline's total demand misses.
type MissClassRow struct {
	Benchmark      string
	NotAvoidedPct  float64 // demand misses neither mechanism avoids
	OnlyComprPct   float64 // avoided only by L2 compression
	OnlyPrefPct    float64 // avoided only by L2 prefetching
	EitherPct      float64 // avoidable by either (the overlap)
	PrefFetchPct   float64 // prefetch fetches not avoided by compression
	PrefAvoidedPct float64 // prefetch fetches avoided by compression
}

// MissClassification regenerates Figure 8 using per-block miss profiles
// of the base, compression-only, prefetch-only and combined runs and
// inclusion–exclusion, as the paper describes.
func MissClassification(benchmarks []string, o Options) []MissClassRow {
	o.CollectMissProfile = true
	o.Seeds = 1
	var rows []MissClassRow
	for _, b := range benchmarks {
		base := MustRun(b, Base, o).Runs[0]
		compr := MustRun(b, CacheCompr, o).Runs[0]
		pf := MustRun(b, Prefetch, o).Runs[0]
		both := MustRun(b, PrefCompr, o).Runs[0]

		var total, onlyC, onlyP, either float64
		for blk, m0 := range base.MissProfile {
			total += float64(m0)
			ac := avoided(m0, compr.MissProfile[blk])
			ap := avoided(m0, pf.MissProfile[blk])
			inter := ac
			if ap < inter {
				inter = ap
			}
			onlyC += ac - inter
			onlyP += ap - inter
			either += inter
		}
		if total == 0 {
			rows = append(rows, MissClassRow{Benchmark: b})
			continue
		}
		// Prefetch fetches = memory fetches beyond demand misses.
		pfFetches := float64(pf.MemFetches) - float64(pf.L2Misses)
		pfFetchesBoth := float64(both.MemFetches) - float64(both.L2Misses)
		avoidedPf := pfFetches - pfFetchesBoth
		if avoidedPf < 0 {
			avoidedPf = 0
		}
		rows = append(rows, MissClassRow{
			Benchmark:      b,
			NotAvoidedPct:  (total - onlyC - onlyP - either) / total * 100,
			OnlyComprPct:   onlyC / total * 100,
			OnlyPrefPct:    onlyP / total * 100,
			EitherPct:      either / total * 100,
			PrefFetchPct:   pfFetchesBoth / total * 100,
			PrefAvoidedPct: avoidedPf / total * 100,
		})
	}
	return rows
}

func avoided(base, enh uint32) float64 {
	if enh >= base {
		return 0
	}
	return float64(base - enh)
}

// BandwidthSweepRow is one benchmark's Figure 11 row: the interaction
// term at each available pin bandwidth.
type BandwidthSweepRow struct {
	Benchmark      string
	InteractionPct map[int]float64 // GB/s -> interaction %
}

// BandwidthSweep regenerates Figure 11 (10-80 GB/s).
func BandwidthSweep(benchmarks []string, bandwidths []int, o Options) []BandwidthSweepRow {
	var rows []BandwidthSweepRow
	for _, b := range benchmarks {
		row := BandwidthSweepRow{Benchmark: b, InteractionPct: map[int]float64{}}
		for _, gb := range bandwidths {
			ob := o
			ob.BandwidthGBps = float64(gb)
			base := MustRun(b, Base, ob)
			sp := Speedup(base, MustRun(b, Prefetch, ob))
			sc := Speedup(base, MustRun(b, Compression, ob))
			sb := Speedup(base, MustRun(b, PrefCompr, ob))
			row.InteractionPct[gb] = stats.InteractionPct(sp, sc, sb)
		}
		rows = append(rows, row)
	}
	return rows
}

// CoreSweepRow is one (benchmark, core count) entry of Figures 1 and 12:
// performance improvement over the same-core-count base system.
type CoreSweepRow struct {
	Benchmark   string
	Cores       int
	PrefPct     float64
	AdaptivePct float64
	ComprPct    float64
	BothPct     float64
	AdBothPct   float64
}

// CoreSweep regenerates Figure 1 (zeus) and Figure 12 (apache, jbb):
// the mechanisms' improvements as the core count scales, all other
// parameters fixed.
func CoreSweep(bench string, coreCounts []int, o Options) []CoreSweepRow {
	var rows []CoreSweepRow
	for _, n := range coreCounts {
		on := o
		on.Cores = n
		base := MustRun(bench, Base, on)
		sp := func(m Mechanisms) float64 { return stats.SpeedupPct(Speedup(base, MustRun(bench, m, on))) }
		rows = append(rows, CoreSweepRow{
			Benchmark:   bench,
			Cores:       n,
			PrefPct:     sp(Prefetch),
			AdaptivePct: sp(AdaptivePf),
			ComprPct:    sp(Compression),
			BothPct:     sp(PrefCompr),
			AdBothPct:   sp(AdaptiveCompr),
		})
	}
	return rows
}

// EffectiveSizeSample reports the time-averaged effective size of the
// compressed cache for one benchmark (Table 3 support).
func EffectiveSizeSample(bench string, o Options) (ratio float64, effectiveBytes float64) {
	p := MustRun(bench, CacheCompr, o)
	return p.Mean(func(m *sim.Metrics) float64 { return m.CompressionRatio }),
		p.Mean(func(m *sim.Metrics) float64 { return m.EffectiveL2Bytes })
}
