package core

import (
	"errors"

	"cmpsim/internal/codec"
	"cmpsim/internal/coherence"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/sim"
	"cmpsim/internal/stats"
)

// Every study driver follows the same submit-then-collect pattern: all
// of a study's data points are submitted to the scheduler first (fanning
// seed-level jobs over the worker pool, deduplicated against the point
// cache), then collected in paper order. Rows are therefore emitted in
// the same order, with bit-identical metrics, as the old serial drivers.
// The package-level functions run on the process-wide scheduler; the
// Scheduler methods allow isolated caches (tests, ablation harnesses).
//
// Studies degrade gracefully: a failed point (panic, watchdog timeout,
// exhausted retries, invalid request) does not abort the study — the
// affected row carries the failure reason in its Failed field, renders
// as a FAILED(reason) cell in internal/report, and leaves every other
// row bit-identical to a fault-free run.

// await resolves a row's futures in submit order. It always waits for
// every future (so scheduler accounting stays deterministic) and
// returns the points plus the first failure's reason, "" when the whole
// row succeeded.
func await(fs ...*PointFuture) ([]Point, string) {
	pts := make([]Point, len(fs))
	failed := ""
	for i, f := range fs {
		p, err := f.Wait()
		if err != nil && failed == "" {
			failed = failureReason(err)
		}
		pts[i] = p
	}
	return pts, failed
}

// failureReason compresses a point error into the short form FAILED
// cells print.
func failureReason(err error) string {
	var pe *PointError
	if errors.As(err, &pe) {
		return pe.Cell()
	}
	return err.Error()
}

// CompressionRow is one benchmark's compression study results:
// Table 3 (ratio), Figure 3 (miss-rate reduction) and Figure 5
// (speedups of the three compression configurations).
type CompressionRow struct {
	Benchmark        string
	Ratio            float64 // Table 3: effective / physical cache size
	BaseMissPerKI    float64
	ComprMissPerKI   float64
	MissReductionPct float64 // Figure 3
	SpeedupCachePct  float64 // Figure 5: cache compression only
	SpeedupLinkPct   float64 // Figure 5: link compression only
	SpeedupBothPct   float64 // Figure 5: both
	Failed           string  `json:",omitempty"` // non-empty: the row failed for this reason
}

// CompressionStudy regenerates Table 3, Figure 3 and Figure 5.
func CompressionStudy(benchmarks []string, o Options) []CompressionRow {
	return sharedScheduler(o).CompressionStudy(benchmarks, o)
}

// CompressionStudy is the scheduler-scoped form of the package function.
func (s *Scheduler) CompressionStudy(benchmarks []string, o Options) []CompressionRow {
	type futures struct{ base, cc, lc, both *PointFuture }
	subs := make([]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = futures{
			base: s.Submit(b, Base, o),
			cc:   s.Submit(b, CacheCompr, o),
			lc:   s.Submit(b, LinkCompr, o),
			both: s.Submit(b, Compression, o),
		}
	}
	rows := make([]CompressionRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		pts, failed := await(subs[i].base, subs[i].cc, subs[i].lc, subs[i].both)
		if failed != "" {
			rows = append(rows, CompressionRow{Benchmark: b, Failed: failed})
			continue
		}
		base, cc, lc, both := pts[0], pts[1], pts[2], pts[3]
		rows = append(rows, CompressionRow{
			Benchmark:        b,
			Ratio:            cc.Mean(func(m *sim.Metrics) float64 { return m.CompressionRatio }),
			BaseMissPerKI:    base.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI }),
			ComprMissPerKI:   cc.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI }),
			MissReductionPct: missReductionPct(base, cc),
			SpeedupCachePct:  stats.SpeedupPct(Speedup(base, cc)),
			SpeedupLinkPct:   stats.SpeedupPct(Speedup(base, lc)),
			SpeedupBothPct:   stats.SpeedupPct(Speedup(base, both)),
		})
	}
	return rows
}

func missReductionPct(base, enh Point) float64 {
	b := base.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI })
	e := enh.Mean(func(m *sim.Metrics) float64 { return m.L2MissesPerKI })
	if b == 0 {
		return 0
	}
	return (b - e) / b * 100
}

// BandwidthRow is one benchmark's Figure 4 row: pin-bandwidth demand in
// GB/s under the four compression configurations (infinite pins).
type BandwidthRow struct {
	Benchmark string
	None      float64
	CacheOnly float64
	LinkOnly  float64
	Both      float64
	Failed    string `json:",omitempty"`
}

// BandwidthStudy regenerates Figure 4. It forces infinite pin bandwidth
// (the paper's demand definition).
func BandwidthStudy(benchmarks []string, o Options) []BandwidthRow {
	return sharedScheduler(o).BandwidthStudy(benchmarks, o)
}

// BandwidthStudy is the scheduler-scoped form of the package function.
func (s *Scheduler) BandwidthStudy(benchmarks []string, o Options) []BandwidthRow {
	o.BandwidthGBps = 0
	type futures struct{ none, cache, link, both *PointFuture }
	subs := make([]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = futures{
			none:  s.Submit(b, Base, o),
			cache: s.Submit(b, CacheCompr, o),
			link:  s.Submit(b, LinkCompr, o),
			both:  s.Submit(b, Compression, o),
		}
	}
	bw := func(p Point) float64 {
		return p.Mean(func(m *sim.Metrics) float64 { return m.BandwidthGBps })
	}
	rows := make([]BandwidthRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		pts, failed := await(subs[i].none, subs[i].cache, subs[i].link, subs[i].both)
		if failed != "" {
			rows = append(rows, BandwidthRow{Benchmark: b, Failed: failed})
			continue
		}
		rows = append(rows, BandwidthRow{
			Benchmark: b,
			None:      bw(pts[0]),
			CacheOnly: bw(pts[1]),
			LinkOnly:  bw(pts[2]),
			Both:      bw(pts[3]),
		})
	}
	return rows
}

// PrefetchPropsRow is one benchmark's Table 4 row: rate, coverage and
// accuracy of the three prefetcher classes.
type PrefetchPropsRow struct {
	Benchmark string
	L1I       PrefetcherProps
	L1D       PrefetcherProps
	L2        PrefetcherProps
	Failed    string `json:",omitempty"`
}

// PrefetcherProps is EQ 2-4 for one engine class.
type PrefetcherProps struct {
	RatePer1000 float64
	CoveragePct float64
	AccuracyPct float64
}

// PrefetchProperties regenerates Table 4 (prefetching on, compression
// off, as in the paper's §4.3).
func PrefetchProperties(benchmarks []string, o Options) []PrefetchPropsRow {
	return sharedScheduler(o).PrefetchProperties(benchmarks, o)
}

// PrefetchProperties is the scheduler-scoped form of the package function.
func (s *Scheduler) PrefetchProperties(benchmarks []string, o Options) []PrefetchPropsRow {
	subs := make([]*PointFuture, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = s.Submit(b, Prefetch, o)
	}
	rows := make([]PrefetchPropsRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		pts, failed := await(subs[i])
		if failed != "" {
			rows = append(rows, PrefetchPropsRow{Benchmark: b, Failed: failed})
			continue
		}
		p := pts[0]
		props := func(src coherence.PfSource) PrefetcherProps {
			var pr PrefetcherProps
			for i := range p.Runs {
				e := p.Runs[i].Engine(src)
				pr.RatePer1000 += e.RatePer1000(p.Runs[i].Instructions)
				pr.CoveragePct += e.Coverage() * 100
				pr.AccuracyPct += e.Accuracy() * 100
			}
			n := float64(len(p.Runs))
			pr.RatePer1000 /= n
			pr.CoveragePct /= n
			pr.AccuracyPct /= n
			return pr
		}
		rows = append(rows, PrefetchPropsRow{
			Benchmark: b,
			L1I:       props(coherence.PfL1I),
			L1D:       props(coherence.PfL1D),
			L2:        props(coherence.PfL2),
		})
	}
	return rows
}

// PrefetchSpeedupRow is one benchmark's Figure 6 row.
type PrefetchSpeedupRow struct {
	Benchmark          string
	SpeedupPct         float64 // base stride prefetching
	AdaptiveSpeedupPct float64
	Failed             string `json:",omitempty"`
}

// PrefetchStudy regenerates Figure 6.
func PrefetchStudy(benchmarks []string, o Options) []PrefetchSpeedupRow {
	return sharedScheduler(o).PrefetchStudy(benchmarks, o)
}

// PrefetchStudy is the scheduler-scoped form of the package function.
func (s *Scheduler) PrefetchStudy(benchmarks []string, o Options) []PrefetchSpeedupRow {
	type futures struct{ base, pf, ad *PointFuture }
	subs := make([]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = futures{
			base: s.Submit(b, Base, o),
			pf:   s.Submit(b, Prefetch, o),
			ad:   s.Submit(b, AdaptivePf, o),
		}
	}
	rows := make([]PrefetchSpeedupRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		pts, failed := await(subs[i].base, subs[i].pf, subs[i].ad)
		if failed != "" {
			rows = append(rows, PrefetchSpeedupRow{Benchmark: b, Failed: failed})
			continue
		}
		rows = append(rows, PrefetchSpeedupRow{
			Benchmark:          b,
			SpeedupPct:         stats.SpeedupPct(Speedup(pts[0], pts[1])),
			AdaptiveSpeedupPct: stats.SpeedupPct(Speedup(pts[0], pts[2])),
		})
	}
	return rows
}

// InteractionRow is one benchmark's Table 5 / Figure 9 row.
type InteractionRow struct {
	Benchmark            string
	PrefPct              float64 // Speedup(Pref.) − 1
	ComprPct             float64 // Speedup(Compr.) − 1
	BothPct              float64 // Speedup(Pref., Compr.) − 1
	AdaptiveBothPct      float64 // Speedup(Adaptive-Pref, Compr.) − 1
	InteractionPct       float64 // EQ 5
	BWBasePrefGrowthPct  float64 // Figure 7: demand growth of pf alone
	BWComprPrefGrowthPct float64 // Figure 7: demand growth of pf+compr
	Failed               string  `json:",omitempty"`
}

// InteractionStudy regenerates Table 5, Figure 9 and the Figure 7 demand
// ratios (the latter on infinite pins).
func InteractionStudy(benchmarks []string, o Options) []InteractionRow {
	return sharedScheduler(o).InteractionStudy(benchmarks, o)
}

// InteractionStudy is the scheduler-scoped form of the package function.
func (s *Scheduler) InteractionStudy(benchmarks []string, o Options) []InteractionRow {
	oInf := o
	oInf.BandwidthGBps = 0 // Figure 7 bandwidth demand, infinite pins
	type futures struct {
		base, pf, compr, both, adBoth *PointFuture
		bwBase, bwPf, bwBoth          *PointFuture
	}
	subs := make([]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = futures{
			base:   s.Submit(b, Base, o),
			pf:     s.Submit(b, Prefetch, o),
			compr:  s.Submit(b, Compression, o),
			both:   s.Submit(b, PrefCompr, o),
			adBoth: s.Submit(b, AdaptiveCompr, o),
			bwBase: s.Submit(b, Base, oInf),
			bwPf:   s.Submit(b, Prefetch, oInf),
			bwBoth: s.Submit(b, PrefCompr, oInf),
		}
	}
	bw := func(p Point) float64 {
		return p.Mean(func(m *sim.Metrics) float64 { return m.BandwidthGBps })
	}
	rows := make([]InteractionRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		pts, failed := await(subs[i].base, subs[i].pf, subs[i].compr, subs[i].both,
			subs[i].adBoth, subs[i].bwBase, subs[i].bwPf, subs[i].bwBoth)
		if failed != "" {
			rows = append(rows, InteractionRow{Benchmark: b, Failed: failed})
			continue
		}
		base := pts[0]
		sp := Speedup(base, pts[1])
		sc := Speedup(base, pts[2])
		sb := Speedup(base, pts[3])

		row := InteractionRow{
			Benchmark:       b,
			PrefPct:         stats.SpeedupPct(sp),
			ComprPct:        stats.SpeedupPct(sc),
			BothPct:         stats.SpeedupPct(sb),
			AdaptiveBothPct: stats.SpeedupPct(Speedup(base, pts[4])),
			InteractionPct:  stats.InteractionPct(sp, sc, sb),
		}
		if bwBase := bw(pts[5]); bwBase > 0 {
			row.BWBasePrefGrowthPct = (bw(pts[6])/bwBase - 1) * 100
			row.BWComprPrefGrowthPct = (bw(pts[7])/bwBase - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// AdaptiveRow is one commercial benchmark's Figure 10 row.
type AdaptiveRow struct {
	Benchmark        string
	PrefPct          float64
	AdaptivePct      float64
	PrefComprPct     float64
	AdaptiveComprPct float64
	Failed           string `json:",omitempty"`
}

// AdaptiveStudy regenerates Figure 10 (the paper shows the commercial
// workloads, where adaptation matters).
func AdaptiveStudy(benchmarks []string, o Options) []AdaptiveRow {
	return sharedScheduler(o).AdaptiveStudy(benchmarks, o)
}

// AdaptiveStudy is the scheduler-scoped form of the package function.
func (s *Scheduler) AdaptiveStudy(benchmarks []string, o Options) []AdaptiveRow {
	mechs := []Mechanisms{Prefetch, AdaptivePf, PrefCompr, AdaptiveCompr}
	type futures struct {
		base *PointFuture
		enh  [4]*PointFuture
	}
	subs := make([]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i].base = s.Submit(b, Base, o)
		for j, m := range mechs {
			subs[i].enh[j] = s.Submit(b, m, o)
		}
	}
	rows := make([]AdaptiveRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		pts, failed := await(subs[i].base, subs[i].enh[0], subs[i].enh[1], subs[i].enh[2], subs[i].enh[3])
		if failed != "" {
			rows = append(rows, AdaptiveRow{Benchmark: b, Failed: failed})
			continue
		}
		base := pts[0]
		sp := func(j int) float64 {
			return stats.SpeedupPct(Speedup(base, pts[1+j]))
		}
		rows = append(rows, AdaptiveRow{
			Benchmark:        b,
			PrefPct:          sp(0),
			AdaptivePct:      sp(1),
			PrefComprPct:     sp(2),
			AdaptiveComprPct: sp(3),
		})
	}
	return rows
}

// MissClassRow is one benchmark's Figure 8 breakdown, as percentages of
// the baseline's total demand misses.
type MissClassRow struct {
	Benchmark      string
	NotAvoidedPct  float64 // demand misses neither mechanism avoids
	OnlyComprPct   float64 // avoided only by L2 compression
	OnlyPrefPct    float64 // avoided only by L2 prefetching
	EitherPct      float64 // avoidable by either (the overlap)
	PrefFetchPct   float64 // prefetch fetches not avoided by compression
	PrefAvoidedPct float64 // prefetch fetches avoided by compression
	Failed         string  `json:",omitempty"`
}

// MissClassification regenerates Figure 8 using per-block miss profiles
// of the base, compression-only, prefetch-only and combined runs and
// inclusion–exclusion, as the paper describes.
func MissClassification(benchmarks []string, o Options) []MissClassRow {
	return sharedScheduler(o).MissClassification(benchmarks, o)
}

// MissClassification is the scheduler-scoped form of the package function.
func (s *Scheduler) MissClassification(benchmarks []string, o Options) []MissClassRow {
	o.CollectMissProfile = true
	o.Seeds = 1
	type futures struct{ base, compr, pf, both *PointFuture }
	subs := make([]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = futures{
			base:  s.Submit(b, Base, o),
			compr: s.Submit(b, CacheCompr, o),
			pf:    s.Submit(b, Prefetch, o),
			both:  s.Submit(b, PrefCompr, o),
		}
	}
	rows := make([]MissClassRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		pts, failed := await(subs[i].base, subs[i].compr, subs[i].pf, subs[i].both)
		if failed != "" {
			rows = append(rows, MissClassRow{Benchmark: b, Failed: failed})
			continue
		}
		base := pts[0].Runs[0]
		compr := pts[1].Runs[0]
		pf := pts[2].Runs[0]
		both := pts[3].Runs[0]

		var total, onlyC, onlyP, either float64
		for blk, m0 := range base.MissProfile {
			total += float64(m0)
			ac := avoided(m0, compr.MissProfile[blk])
			ap := avoided(m0, pf.MissProfile[blk])
			inter := ac
			if ap < inter {
				inter = ap
			}
			onlyC += ac - inter
			onlyP += ap - inter
			either += inter
		}
		if total == 0 {
			rows = append(rows, MissClassRow{Benchmark: b})
			continue
		}
		// Prefetch fetches = memory fetches beyond demand misses.
		pfFetches := float64(pf.MemFetches) - float64(pf.L2Misses)
		pfFetchesBoth := float64(both.MemFetches) - float64(both.L2Misses)
		avoidedPf := pfFetches - pfFetchesBoth
		if avoidedPf < 0 {
			avoidedPf = 0
		}
		rows = append(rows, MissClassRow{
			Benchmark:      b,
			NotAvoidedPct:  (total - onlyC - onlyP - either) / total * 100,
			OnlyComprPct:   onlyC / total * 100,
			OnlyPrefPct:    onlyP / total * 100,
			EitherPct:      either / total * 100,
			PrefFetchPct:   pfFetchesBoth / total * 100,
			PrefAvoidedPct: avoidedPf / total * 100,
		})
	}
	return rows
}

func avoided(base, enh uint32) float64 {
	if enh >= base {
		return 0
	}
	return float64(base - enh)
}

// BandwidthSweepRow is one benchmark's Figure 11 row: the interaction
// term at each available pin bandwidth.
type BandwidthSweepRow struct {
	Benchmark      string
	InteractionPct map[int]float64 // GB/s -> interaction %
	Failed         string          `json:",omitempty"`
}

// BandwidthSweep regenerates Figure 11 (10-80 GB/s).
func BandwidthSweep(benchmarks []string, bandwidths []int, o Options) []BandwidthSweepRow {
	return sharedScheduler(o).BandwidthSweep(benchmarks, bandwidths, o)
}

// BandwidthSweep is the scheduler-scoped form of the package function.
func (s *Scheduler) BandwidthSweep(benchmarks []string, bandwidths []int, o Options) []BandwidthSweepRow {
	type futures struct{ base, pf, compr, both *PointFuture }
	subs := make([][]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = make([]futures, len(bandwidths))
		for j, gb := range bandwidths {
			ob := o
			ob.BandwidthGBps = float64(gb)
			subs[i][j] = futures{
				base:  s.Submit(b, Base, ob),
				pf:    s.Submit(b, Prefetch, ob),
				compr: s.Submit(b, Compression, ob),
				both:  s.Submit(b, PrefCompr, ob),
			}
		}
	}
	rows := make([]BandwidthSweepRow, 0, len(benchmarks))
	for i, b := range benchmarks {
		row := BandwidthSweepRow{Benchmark: b, InteractionPct: map[int]float64{}}
		for j, gb := range bandwidths {
			pts, failed := await(subs[i][j].base, subs[i][j].pf, subs[i][j].compr, subs[i][j].both)
			if failed != "" && row.Failed == "" {
				row.Failed = failed
			}
			if row.Failed != "" {
				continue
			}
			sp := Speedup(pts[0], pts[1])
			sc := Speedup(pts[0], pts[2])
			sb := Speedup(pts[0], pts[3])
			row.InteractionPct[gb] = stats.InteractionPct(sp, sc, sb)
		}
		if row.Failed != "" {
			row.InteractionPct = nil
		}
		rows = append(rows, row)
	}
	return rows
}

// CoreSweepRow is one (benchmark, core count) entry of Figures 1 and 12:
// performance improvement over the same-core-count base system.
type CoreSweepRow struct {
	Benchmark   string
	Cores       int
	PrefPct     float64
	AdaptivePct float64
	ComprPct    float64
	BothPct     float64
	AdBothPct   float64
	Failed      string `json:",omitempty"`
}

// CoreSweep regenerates Figure 1 (zeus) and Figure 12 (apache, jbb):
// the mechanisms' improvements as the core count scales, all other
// parameters fixed.
func CoreSweep(bench string, coreCounts []int, o Options) []CoreSweepRow {
	return sharedScheduler(o).CoreSweep(bench, coreCounts, o)
}

// CoreSweep is the scheduler-scoped form of the package function.
func (s *Scheduler) CoreSweep(bench string, coreCounts []int, o Options) []CoreSweepRow {
	mechs := []Mechanisms{Prefetch, AdaptivePf, Compression, PrefCompr, AdaptiveCompr}
	type futures struct {
		base *PointFuture
		enh  [5]*PointFuture
	}
	subs := make([]futures, len(coreCounts))
	for i, n := range coreCounts {
		on := o
		on.Cores = n
		subs[i].base = s.Submit(bench, Base, on)
		for j, m := range mechs {
			subs[i].enh[j] = s.Submit(bench, m, on)
		}
	}
	rows := make([]CoreSweepRow, 0, len(coreCounts))
	for i, n := range coreCounts {
		pts, failed := await(subs[i].base, subs[i].enh[0], subs[i].enh[1],
			subs[i].enh[2], subs[i].enh[3], subs[i].enh[4])
		if failed != "" {
			rows = append(rows, CoreSweepRow{Benchmark: bench, Cores: n, Failed: failed})
			continue
		}
		base := pts[0]
		sp := func(j int) float64 {
			return stats.SpeedupPct(Speedup(base, pts[1+j]))
		}
		rows = append(rows, CoreSweepRow{
			Benchmark:   bench,
			Cores:       n,
			PrefPct:     sp(0),
			AdaptivePct: sp(1),
			ComprPct:    sp(2),
			BothPct:     sp(3),
			AdBothPct:   sp(4),
		})
	}
	return rows
}

// EffectiveSizeSample reports the time-averaged effective size of the
// compressed cache for one benchmark (Table 3 support).
func EffectiveSizeSample(bench string, o Options) (ratio float64, effectiveBytes float64) {
	p := MustRun(bench, CacheCompr, o)
	return p.Mean(func(m *sim.Metrics) float64 { return m.CompressionRatio }),
		p.Mean(func(m *sim.Metrics) float64 { return m.EffectiveL2Bytes })
}

// CodecRow is one (codec, benchmark) entry of the codec bakeoff: the
// Table 5 interaction terms re-run with a different line-compression
// algorithm in the L2, plus the interaction at the most contended point
// of the Figure 11 sweep, where the codecs' ratio and decompression
// latency trade off most visibly.
type CodecRow struct {
	Codec              string
	Benchmark          string
	PrefPct            float64 // Speedup(Pref.) − 1
	ComprPct           float64 // Speedup(Compr.) − 1
	BothPct            float64 // Speedup(Pref., Compr.) − 1
	InteractionPct     float64 // EQ 5 at the study's default bandwidth
	InteractionAtBWPct float64 // EQ 5 at CodecStudyBandwidthGBps
	Failed             string  `json:",omitempty"`
}

// CodecStudyBandwidthGBps is the constrained-bandwidth column of the
// codec study: the left edge of the Figure 11 sweep, where compression
// buys the most and slow decompression hurts the most.
const CodecStudyBandwidthGBps = 10

// CodecStudy re-runs the Table 5 speedup/interaction terms once per
// registered codec, each at its own default decompression latency
// (unless o pins one explicitly). The uncompressed baseline exercises
// no codec, so every codec's speedups are measured against the same
// shared Base point per (benchmark, bandwidth).
func CodecStudy(benchmarks []string, o Options) []CodecRow {
	return sharedScheduler(o).CodecStudy(benchmarks, o)
}

// CodecStudy is the scheduler-scoped form of the package function.
func (s *Scheduler) CodecStudy(benchmarks []string, o Options) []CodecRow {
	names := codec.Names()
	oBW := o
	oBW.BandwidthGBps = CodecStudyBandwidthGBps
	type futures struct {
		base, pf, compr, both         *PointFuture
		bwBase, bwPf, bwCompr, bwBoth *PointFuture
	}
	subs := make([][]futures, len(names))
	for ci, name := range names {
		oc := o
		oc.Codec = name
		ocBW := oBW
		ocBW.Codec = name
		subs[ci] = make([]futures, len(benchmarks))
		for i, b := range benchmarks {
			subs[ci][i] = futures{
				// Base and Prefetch never touch the codec; submitting
				// them with the default codec lets the point cache
				// share one run across all codecs.
				base:    s.Submit(b, Base, o),
				pf:      s.Submit(b, Prefetch, o),
				compr:   s.Submit(b, Compression, oc),
				both:    s.Submit(b, PrefCompr, oc),
				bwBase:  s.Submit(b, Base, oBW),
				bwPf:    s.Submit(b, Prefetch, oBW),
				bwCompr: s.Submit(b, Compression, ocBW),
				bwBoth:  s.Submit(b, PrefCompr, ocBW),
			}
		}
	}
	rows := make([]CodecRow, 0, len(names)*len(benchmarks))
	for ci, name := range names {
		for i, b := range benchmarks {
			f := subs[ci][i]
			pts, failed := await(f.base, f.pf, f.compr, f.both,
				f.bwBase, f.bwPf, f.bwCompr, f.bwBoth)
			if failed != "" {
				rows = append(rows, CodecRow{Codec: name, Benchmark: b, Failed: failed})
				continue
			}
			sp := Speedup(pts[0], pts[1])
			sc := Speedup(pts[0], pts[2])
			sb := Speedup(pts[0], pts[3])
			rows = append(rows, CodecRow{
				Codec:          name,
				Benchmark:      b,
				PrefPct:        stats.SpeedupPct(sp),
				ComprPct:       stats.SpeedupPct(sc),
				BothPct:        stats.SpeedupPct(sb),
				InteractionPct: stats.InteractionPct(sp, sc, sb),
				InteractionAtBWPct: stats.InteractionPct(
					Speedup(pts[4], pts[5]), Speedup(pts[4], pts[6]), Speedup(pts[4], pts[7])),
			})
		}
	}
	return rows
}

// IrregularRow is one (benchmark, prefetcher) entry of the irregular
// study: the Figure 6 / Table 5 speedup and interaction terms re-run
// over the linked-data-structure suite, once per registered prefetch
// engine. It answers the question the paper's strided suite cannot:
// which engine family still earns its bandwidth when addresses are
// data-dependent, and whether compression's freed bandwidth still
// amplifies it (positive interaction) or only masks its waste.
type IrregularRow struct {
	Benchmark       string
	Prefetcher      string
	PrefPct         float64 // Speedup(Pref.) − 1
	AdaptivePct     float64 // Speedup(Adaptive Pref.) − 1
	ComprPct        float64 // Speedup(Compr.) − 1
	BothPct         float64 // Speedup(Pref., Compr.) − 1
	AdaptiveBothPct float64 // Speedup(Adaptive Pref., Compr.) − 1
	InteractionPct  float64 // EQ 5 over the non-adaptive terms
	Failed          string  `json:",omitempty"`
}

// IrregularStudy runs the irregular suite (or any benchmark list) over
// every registered prefetcher. Base and Compression never touch the
// prefetch engine, so they are submitted with the request's own kind
// and shared across all engines through the point cache.
func IrregularStudy(benchmarks []string, o Options) []IrregularRow {
	return sharedScheduler(o).IrregularStudy(benchmarks, o)
}

// IrregularStudy is the scheduler-scoped form of the package function.
func (s *Scheduler) IrregularStudy(benchmarks []string, o Options) []IrregularRow {
	kinds := prefetch.Names()
	type futures struct {
		base, compr, pf, adpf, both, adboth *PointFuture
	}
	subs := make([][]futures, len(benchmarks))
	for i, b := range benchmarks {
		subs[i] = make([]futures, len(kinds))
		for ki, kind := range kinds {
			ok := o
			ok.PrefetcherKind = kind
			subs[i][ki] = futures{
				base:   s.Submit(b, Base, o),
				compr:  s.Submit(b, Compression, o),
				pf:     s.Submit(b, Prefetch, ok),
				adpf:   s.Submit(b, AdaptivePf, ok),
				both:   s.Submit(b, PrefCompr, ok),
				adboth: s.Submit(b, AdaptiveCompr, ok),
			}
		}
	}
	rows := make([]IrregularRow, 0, len(benchmarks)*len(kinds))
	for i, b := range benchmarks {
		for ki, kind := range kinds {
			f := subs[i][ki]
			pts, failed := await(f.base, f.compr, f.pf, f.adpf, f.both, f.adboth)
			if failed != "" {
				rows = append(rows, IrregularRow{Benchmark: b, Prefetcher: kind, Failed: failed})
				continue
			}
			sp := Speedup(pts[0], pts[2])
			sc := Speedup(pts[0], pts[1])
			sb := Speedup(pts[0], pts[4])
			rows = append(rows, IrregularRow{
				Benchmark:       b,
				Prefetcher:      kind,
				PrefPct:         stats.SpeedupPct(sp),
				AdaptivePct:     stats.SpeedupPct(Speedup(pts[0], pts[3])),
				ComprPct:        stats.SpeedupPct(sc),
				BothPct:         stats.SpeedupPct(sb),
				AdaptiveBothPct: stats.SpeedupPct(Speedup(pts[0], pts[5])),
				InteractionPct:  stats.InteractionPct(sp, sc, sb),
			})
		}
	}
	return rows
}
