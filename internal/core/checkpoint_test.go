package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCheckpointResume(t *testing.T) {
	o := tinyOptions()
	path := filepath.Join(t.TempDir(), "points.jsonl")

	// First process: simulate a subset, then "die".
	cp1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(2)
	s1.SetCheckpoint(cp1)
	p1 := s1.Submit("zeus", Base, o).MustWait()
	p2 := s1.Submit("zeus", CacheCompr, o).MustWait()
	s1.Close()
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second process: resume. The two finished points are restored
	// bit-identically; only the missing ones simulate.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Loaded() != 2 || cp2.Skipped() != 0 {
		t.Fatalf("loaded %d skipped %d, want 2/0", cp2.Loaded(), cp2.Skipped())
	}
	s2 := NewScheduler(2)
	defer s2.Close()
	s2.SetCheckpoint(cp2)

	r1 := s2.Submit("zeus", Base, o).MustWait()
	r2 := s2.Submit("zeus", CacheCompr, o).MustWait()
	r3 := s2.Submit("zeus", Prefetch, o).MustWait() // not in the checkpoint

	if !reflect.DeepEqual(r1, p1) || !reflect.DeepEqual(r2, p2) {
		t.Fatal("restored points are not bit-identical to the original run")
	}
	if want := faultFreePoint(t, "zeus", Prefetch, o); !reflect.DeepEqual(r3, want) {
		t.Fatal("freshly simulated point differs from fault-free reference")
	}
	st := s2.Stats()
	if st.Restored != 2 || st.Unique != 1 || st.SeedRuns != uint64(o.Seeds) {
		t.Fatalf("resume stats = %+v (want 2 restored, 1 simulated)", st)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	o := tinyOptions()
	path := filepath.Join(t.TempDir(), "points.jsonl")

	cp1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(2)
	s1.SetCheckpoint(cp1)
	want := s1.Submit("zeus", Base, o).MustWait()
	s1.Close()
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the record's data payload: the CRC must catch
	// it and the point must be re-simulated, never trusted.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := len(raw) / 2
	raw[i] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Loaded() != 0 || cp2.Skipped() != 1 {
		t.Fatalf("loaded %d skipped %d, want 0/1", cp2.Loaded(), cp2.Skipped())
	}
	s2 := NewScheduler(2)
	defer s2.Close()
	s2.SetCheckpoint(cp2)
	got := s2.Submit("zeus", Base, o).MustWait()
	if st := s2.Stats(); st.Restored != 0 || st.Unique != 1 {
		t.Fatalf("corrupt record was trusted: %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("re-simulated point differs from the original")
	}
}

func TestCheckpointHealsTruncatedTail(t *testing.T) {
	o := tinyOptions()
	path := filepath.Join(t.TempDir(), "points.jsonl")

	cp1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(2)
	s1.SetCheckpoint(cp1)
	s1.Submit("zeus", Base, o).MustWait()
	s1.Close()
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-write: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"crc":12,"data":{"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: the partial line is skipped and healed so the next append
	// starts fresh.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Loaded() != 1 || cp2.Skipped() != 1 {
		t.Fatalf("loaded %d skipped %d, want 1/1", cp2.Loaded(), cp2.Skipped())
	}
	s2 := NewScheduler(2)
	s2.SetCheckpoint(cp2)
	s2.Submit("zeus", CacheCompr, o).MustWait()
	s2.Close()
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}

	cp3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	if cp3.Loaded() != 2 {
		t.Fatalf("post-heal append lost: loaded %d, want 2", cp3.Loaded())
	}
}

func TestCheckpointStudyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full study round trip")
	}
	o := tinyOptions()
	benches := []string{"zeus", "mgrid"}
	path := filepath.Join(t.TempDir(), "points.jsonl")

	fresh := func() []CompressionRow {
		s := NewScheduler(2)
		defer s.Close()
		return s.CompressionStudy(benches, o)
	}()

	// Interrupted run: only zeus's points land in the checkpoint.
	cp1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(2)
	s1.SetCheckpoint(cp1)
	s1.CompressionStudy(benches[:1], o)
	s1.Close()
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run: the full study must reproduce the fresh rows exactly
	// while simulating only mgrid's points.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	s2 := NewScheduler(2)
	defer s2.Close()
	s2.SetCheckpoint(cp2)
	resumed := s2.CompressionStudy(benches, o)

	if !reflect.DeepEqual(resumed, fresh) {
		t.Fatalf("resumed study differs from fresh run:\nfresh   %+v\nresumed %+v", fresh, resumed)
	}
	st := s2.Stats()
	if st.Restored != 4 || st.Unique != 4 {
		t.Fatalf("stats = %+v (want 4 restored zeus points, 4 simulated mgrid points)", st)
	}
}
