// Parallel experiment scheduler: a worker pool that fans out seed-level
// simulation jobs plus a memoizing point cache, so every unique
// (benchmark, mechanisms, canonical options) data point is simulated
// exactly once per process no matter how many studies request it.
//
// Determinism contract: a point's seeds are fixed (1..Seeds), each seed
// is an independent sim.Run on a private System, and the runs are
// assembled in seed order before the point is published. The resulting
// Point — including the stats.Summarize reduction — is therefore
// bit-identical whatever the worker count, including Workers == 1.
//
// Fault tolerance: every seed job runs with panic isolation, an
// optional watchdog deadline (Options.PointTimeout) and bounded
// retry-with-backoff for retryable failures; a failed point resolves
// its future with a *PointError instead of crashing the pool (see
// faults.go). A Checkpoint (SetCheckpoint) persists finished points to
// a checksummed JSONL file and restores them on resubmission, so an
// interrupted sweep resumes with only the missing points simulated.
package core

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cmpsim/internal/audit"
	"cmpsim/internal/sim"
	"cmpsim/internal/stats"
	"cmpsim/internal/workload"
)

// PointEventKind classifies scheduler progress events.
type PointEventKind int

const (
	// PointStart: a new unique point was submitted and its seed jobs queued.
	PointStart PointEventKind = iota
	// PointFinish: the point's last seed completed (or it failed validation).
	PointFinish
	// PointCached: a Submit was served from the memoized point cache.
	PointCached
	// PointRestored: a Submit was served from the checkpoint file
	// without simulating (checkpoint/resume).
	PointRestored
)

// String names the event kind for progress displays.
func (k PointEventKind) String() string {
	switch k {
	case PointStart:
		return "start"
	case PointFinish:
		return "finish"
	case PointCached:
		return "cached"
	case PointRestored:
		return "restored"
	default:
		return fmt.Sprintf("PointEventKind(%d)", int(k))
	}
}

// PointEvent is one scheduler progress notification.
type PointEvent struct {
	Kind       PointEventKind
	Benchmark  string
	Mechanisms Mechanisms
	Options    Options // canonical form (the cache key's option set)
	Seeds      int
	Wall       time.Duration // submit→finish wall-clock (PointFinish only)
	Point      *Point        // the finished point (PointFinish without error only)
	Err        error         // PointFinish only
}

// Observer receives progress events. Finish events fire from worker
// goroutines, so an observer must be safe for concurrent use; it should
// also return quickly, since it runs on the simulation workers. A
// panicking observer cannot kill a worker: the scheduler recovers,
// reports the first such panic to stderr, and keeps simulating.
type Observer func(PointEvent)

// FaultHook is consulted before every seed simulation. It exists for
// deterministic fault injection (internal/faultinject): the hook may
// panic, stall, or return an error, and the scheduler must survive all
// three. A nil hook is a no-op.
type FaultHook func(bench, label string, seed int) error

// StateFaultHook is consulted before every seed simulation to pick a
// state-corruption injection for that run: it returns a sim.Config
// StateFault spec ("name@step") or "" for none. It exists for
// internal/faultinject's corruption rules, which prove the runtime
// auditor's checker classes fire. A nil hook injects nothing.
type StateFaultHook func(bench, label string, seed int) string

// PointRunner executes one whole data point somewhere other than the
// local worker pool — internal/fleet's coordinator implements it by
// leasing the point to a worker process. The options are canonical; the
// runner must return a Point whose Runs length matches Options.Seeds,
// bit-identical to a local simulation (the fleet protocol's record
// round-trip guarantees this).
type PointRunner func(bench string, m Mechanisms, o Options) (Point, error)

// PointStore is a shared, cross-process cache of finished points (the
// result-store adapter in internal/fleet implements it over
// internal/store). Lookup must only return points it can vouch for
// (checksummed, seed count matching); Add must be safe to call from
// worker goroutines.
type PointStore interface {
	Lookup(bench string, m Mechanisms, o Options) (Point, bool)
	Add(rec PointRecord) error
}

// pointKey identifies one unique data point in the scheduler cache.
type pointKey struct {
	bench string
	mech  Mechanisms
	opts  Options
}

// pointEntry is the cache slot for one data point: filled in by seed
// jobs, published exactly once by closing done.
type pointEntry struct {
	bench string
	mech  Mechanisms
	opts  Options // canonical; builds the same sim.Configs as the original

	started time.Time
	notify  Observer // observer at submit time (nil = no events)

	// Robustness settings captured from the submitting Options (they are
	// canonicalized out of the cache key but still govern execution).
	timeout    time.Duration
	retries    int
	backoff    time.Duration
	faultHook  FaultHook
	stateFault StateFaultHook
	checkLevel audit.Level
	checkSet   bool // Options.CheckLevel was non-empty (overrides the env)

	mu      sync.Mutex
	runs    []sim.Metrics
	pending int
	err     error

	point Point
	done  chan struct{}
}

// key rebuilds the entry's cache key (opts are already canonical).
func (e *pointEntry) key() pointKey {
	return pointKey{bench: e.bench, mech: e.mech, opts: e.opts}
}

// runSeed executes one seed's simulation — with panic isolation, the
// watchdog deadline and retry policy (faults.go) — and publishes the
// point when it is the last seed to finish. Successful points are
// appended to the scheduler's checkpoint, failed ones counted.
func (e *pointEntry) runSeed(s *Scheduler, seed int) {
	met, err := e.simulateSeed(s, seed)
	e.mu.Lock()
	if err != nil && e.err == nil {
		e.err = err
	}
	e.runs[seed] = met
	e.pending--
	last := e.pending == 0
	e.mu.Unlock()
	if !last {
		return
	}
	if e.err == nil {
		p := Point{Benchmark: e.bench, Mechanisms: e.mech, Runs: e.runs}
		runtimes := make([]float64, len(e.runs))
		for i := range e.runs {
			runtimes[i] = e.runs[i].Cycles
		}
		p.Runtime = stats.Summarize(runtimes)
		e.point = p
	}
	close(e.done)
	if e.err == nil {
		s.checkpointAdd(e.key(), e.point)
		s.storeAdd(e.key(), e.point)
	} else {
		s.noteFailed()
	}
	ev := PointEvent{
		Kind: PointFinish, Benchmark: e.bench, Mechanisms: e.mech, Options: e.opts,
		Seeds: len(e.runs), Wall: time.Since(e.started), Err: e.err,
	}
	if e.err == nil {
		ev.Point = &e.point
	}
	s.safeNotify(e.notify, ev)
}

// runRemote executes the whole point through the installed PointRunner
// (the fleet lease adapter) and publishes the result exactly like the
// last local seed job would: future resolved, checkpoint/store fed,
// finish event fired. Runner panics are isolated into point errors so a
// broken transport cannot crash the process.
func (e *pointEntry) runRemote(s *Scheduler, r PointRunner) {
	p, err := func() (p Point, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = &panicError{val: rec, stack: string(debug.Stack())}
			}
		}()
		return r(e.bench, e.mech, e.opts)
	}()
	if err == nil && len(p.Runs) != e.opts.Seeds {
		err = fmt.Errorf("core: remote runner returned %d runs for %d seeds", len(p.Runs), e.opts.Seeds)
	}
	if err != nil {
		var pe *PointError
		if !errors.As(err, &pe) {
			err = e.newPointError(0, 1, err)
		}
	}
	e.mu.Lock()
	if err != nil {
		e.err = err
	} else {
		e.point = p
		e.runs = p.Runs
	}
	e.mu.Unlock()
	close(e.done)
	if err == nil {
		s.checkpointAdd(e.key(), e.point)
		s.storeAdd(e.key(), e.point)
	} else {
		s.noteFailed()
	}
	ev := PointEvent{
		Kind: PointFinish, Benchmark: e.bench, Mechanisms: e.mech, Options: e.opts,
		Seeds: e.opts.Seeds, Wall: time.Since(e.started), Err: e.err,
	}
	if err == nil {
		ev.Point = &e.point
	}
	s.safeNotify(e.notify, ev)
}

// PointFuture is a handle to a submitted (possibly cached) data point.
type PointFuture struct{ e *pointEntry }

// Wait blocks until every seed of the point has been simulated and
// returns the assembled Point. Cached points return immediately.
func (f *PointFuture) Wait() (Point, error) {
	<-f.e.done
	return f.e.point, f.e.err
}

// MustWait is Wait for drivers iterating known-good benchmark names.
func (f *PointFuture) MustWait() Point {
	p, err := f.Wait()
	if err != nil {
		panic(err)
	}
	return p
}

type seedJob struct {
	entry *pointEntry
	seed  int
}

// Scheduler owns a worker pool and a memoizing point cache. Drivers
// submit every point of a study up front and then collect in paper
// order, so output order stays deterministic while the pool runs ahead.
// All methods are safe for concurrent use.
type Scheduler struct {
	mu         sync.Mutex
	cond       *sync.Cond
	queue      []seedJob
	target     int // pool size; workers spawn lazily up to it
	running    int
	closed     bool
	cache      map[pointKey]*pointEntry
	observer   Observer
	faultHook  FaultHook
	stateFault StateFaultHook
	checkpoint *Checkpoint
	store      PointStore
	runner     PointRunner

	requests  uint64
	unique    uint64
	seedRuns  uint64
	restored  uint64
	fromStore uint64
	failed    uint64
	retries   uint64

	obsPanicOnce sync.Once // first observer panic reported to stderr
	cpErrOnce    sync.Once // first checkpoint write error reported
	stErrOnce    sync.Once // first result-store write error reported
}

// SetObserver installs (or, with nil, removes) the progress observer.
// Points submitted before the call keep the observer they were submitted
// with; install the observer before the study drivers run.
func (s *Scheduler) SetObserver(fn Observer) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

// SetFaultHook installs (or, with nil, removes) the deterministic
// fault-injection hook consulted before every seed simulation. Points
// submitted before the call keep the hook they were submitted with.
// This is test-only plumbing for internal/faultinject.
func (s *Scheduler) SetFaultHook(fn FaultHook) {
	s.mu.Lock()
	s.faultHook = fn
	s.mu.Unlock()
}

// SetStateFaultHook installs (or, with nil, removes) the state-fault
// injection hook consulted before every seed simulation. Points
// submitted before the call keep the hook they were submitted with.
// This is test plumbing for internal/faultinject's corruption rules.
func (s *Scheduler) SetStateFaultHook(fn StateFaultHook) {
	s.mu.Lock()
	s.stateFault = fn
	s.mu.Unlock()
}

// SetCheckpoint attaches a persistent point checkpoint: finished points
// are appended to it, and submissions it already holds are restored
// without simulating (PointRestored events). Attach before the study
// drivers run. A nil checkpoint detaches.
func (s *Scheduler) SetCheckpoint(cp *Checkpoint) {
	s.mu.Lock()
	s.checkpoint = cp
	s.mu.Unlock()
}

// SetPointStore attaches a shared cross-process result store: finished
// points are appended to it, and submissions it already holds are
// restored without simulating (PointRestored events, counted in
// FromStore). Attach before the study drivers run. A nil store detaches.
func (s *Scheduler) SetPointStore(ps PointStore) {
	s.mu.Lock()
	s.store = ps
	s.mu.Unlock()
}

// SetPointRunner installs (or, with nil, removes) a remote point
// executor: newly submitted points are handed to it — one goroutine per
// point, the runner is expected to do its own admission control —
// instead of fanning seed jobs over the local worker pool. The
// determinism contract is unchanged: futures resolve with the same
// bit-identical Points a local run produces. Install before the study
// drivers run.
func (s *Scheduler) SetPointRunner(r PointRunner) {
	s.mu.Lock()
	s.runner = r
	s.mu.Unlock()
}

// safeNotify delivers ev to fn, recovering observer panics so they
// cannot kill a worker goroutine. The first panic is reported once to
// stderr; later ones are dropped.
func (s *Scheduler) safeNotify(fn Observer, ev PointEvent) {
	if fn == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.obsPanicOnce.Do(func() {
				fmt.Fprintf(os.Stderr, "core: observer panicked (event %s, point %s/%s): %v\n%s",
					ev.Kind, ev.Benchmark, ev.Mechanisms.Label(), r, debug.Stack())
			})
		}
	}()
	fn(ev)
}

// checkpointAdd appends a finished point to the attached checkpoint, if
// any. Write failures must not fail the point (the result is still good
// in memory), so they are reported to stderr once and otherwise dropped.
func (s *Scheduler) checkpointAdd(k pointKey, p Point) {
	s.mu.Lock()
	cp := s.checkpoint
	s.mu.Unlock()
	if cp == nil {
		return
	}
	if err := cp.add(k, p); err != nil {
		s.cpErrOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "core: checkpoint write failed: %v\n", err)
		})
	}
}

// storeAdd appends a finished point to the attached result store, if
// any. Like checkpoint writes, store write failures must not fail the
// point: they are reported to stderr once and otherwise dropped.
func (s *Scheduler) storeAdd(k pointKey, p Point) {
	s.mu.Lock()
	ps := s.store
	s.mu.Unlock()
	if ps == nil {
		return
	}
	if err := ps.Add(PointRecord{Benchmark: k.bench, Mechanisms: k.mech, Options: k.opts, Point: p}); err != nil {
		s.stErrOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "core: result-store write failed: %v\n", err)
		})
	}
}

// storeRestore fills e from the attached result store, if the point is
// there. Called by Submit with the scheduler lock held; it touches only
// e (not yet shared).
func (s *Scheduler) storeRestore(k pointKey, e *pointEntry) bool {
	if s.store == nil {
		return false
	}
	p, ok := s.store.Lookup(k.bench, k.mech, k.opts)
	if !ok {
		return false
	}
	e.point = p
	e.runs = p.Runs
	close(e.done)
	return true
}

// noteFailed counts a point that finished with an error.
func (s *Scheduler) noteFailed() {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
}

// noteRetry counts one seed-level retry.
func (s *Scheduler) noteRetry() {
	s.mu.Lock()
	s.retries++
	s.mu.Unlock()
}

// NewScheduler returns a scheduler with its own empty cache running at
// most workers simulations concurrently; workers < 1 means one per CPU.
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{target: workers, cache: make(map[pointKey]*pointEntry)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers reports the current pool size.
func (s *Scheduler) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// grow raises the pool size to at least n workers. The pool never
// shrinks: for guaranteed-serial execution use NewScheduler(1).
func (s *Scheduler) grow(n int) {
	s.mu.Lock()
	if n > s.target {
		s.target = n
		s.spawnLocked()
	}
	s.mu.Unlock()
}

// spawnLocked starts workers up to the target pool size. Callers hold mu.
func (s *Scheduler) spawnLocked() {
	if len(s.queue) == 0 {
		return
	}
	for s.running < s.target {
		s.running++
		go s.worker()
	}
}

func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 { // closed and drained
			s.running--
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		j.entry.runSeed(s, j.seed)
		s.mu.Lock()
	}
}

// Submit requests one data point. It never blocks on simulation work:
// the point's seed jobs are queued (or the cached entry is found) and a
// future is returned for collection via Wait. Invalid requests resolve
// immediately with the same errors Run reports. Progress events fire
// outside the scheduler lock: PointCached for cache hits, PointRestored
// for points served from the attached checkpoint, PointStart for newly
// queued points, PointFinish when the last seed lands (invalid
// submissions fire PointFinish with the error directly).
func (s *Scheduler) Submit(bench string, m Mechanisms, o Options) *PointFuture {
	key := canonicalKey(bench, m, o)
	s.mu.Lock()
	s.requests++
	if e, ok := s.cache[key]; ok {
		obs := s.observer
		s.mu.Unlock()
		s.safeNotify(obs, PointEvent{Kind: PointCached, Benchmark: bench, Mechanisms: m, Options: key.opts, Seeds: o.Seeds})
		return &PointFuture{e}
	}
	lvl, lerr := audit.ParseLevel(o.CheckLevel)
	e := &pointEntry{
		bench: bench, mech: m, opts: key.opts,
		started: time.Now(), notify: s.observer, done: make(chan struct{}),
		timeout: o.PointTimeout, retries: o.MaxRetries, backoff: o.RetryBackoff,
		faultHook: s.faultHook, stateFault: s.stateFault,
		checkLevel: lvl, checkSet: o.CheckLevel != "",
	}
	if lerr == nil {
		// An invalid CheckLevel must not poison the cache: the field is
		// canonicalized out of the key, so a valid resubmission would
		// otherwise hit this failed entry.
		s.cache[key] = e
	}
	_, werr := workload.ByName(bench)
	kind := PointFinish
	switch {
	case o.Seeds < 1:
		e.err = fmt.Errorf("core: Seeds must be at least 1")
		s.failed++
		close(e.done)
	case lerr != nil:
		e.err = lerr
		s.failed++
		close(e.done)
	case werr != nil:
		e.err = werr
		s.failed++
		close(e.done)
	case s.checkpoint != nil && s.checkpoint.restore(key, e):
		s.restored++
		kind = PointRestored
	case s.storeRestore(key, e):
		s.fromStore++
		kind = PointRestored
	default:
		if s.closed {
			s.mu.Unlock()
			panic("core: Submit on closed Scheduler")
		}
		s.unique++
		if r := s.runner; r != nil {
			// Remote execution: the whole point runs through the lease
			// adapter; nothing touches the local pool.
			go e.runRemote(s, r)
			kind = PointStart
			break
		}
		if s.target < 1 {
			s.target = runtime.GOMAXPROCS(0)
		}
		s.seedRuns += uint64(o.Seeds)
		e.runs = make([]sim.Metrics, o.Seeds)
		e.pending = o.Seeds
		for i := 0; i < o.Seeds; i++ {
			s.queue = append(s.queue, seedJob{e, i})
		}
		s.spawnLocked()
		s.cond.Broadcast()
		kind = PointStart
	}
	s.mu.Unlock()
	ev := PointEvent{Kind: kind, Benchmark: bench, Mechanisms: m, Options: key.opts, Seeds: o.Seeds}
	switch kind {
	case PointFinish:
		ev.Err = e.err
	case PointRestored:
		ev.Point = &e.point
	}
	s.safeNotify(e.notify, ev)
	return &PointFuture{e}
}

// Close lets the workers exit once the queue drains. Futures already
// submitted still complete; submitting new work afterwards panics. It
// exists so tests with private schedulers do not leak parked goroutines.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SchedulerStats counts cache effectiveness and pipeline health: how
// much simulation the memoized point cache and the checkpoint avoided,
// and how many points failed despite isolation and retries.
type SchedulerStats struct {
	Requests    uint64 // Submit calls
	Unique      uint64 // distinct points actually simulated (locally or via the lease adapter)
	SeedRuns    uint64 // individual seed-level sim.Run jobs executed locally
	Restored    uint64 // points served from the checkpoint file
	FromStore   uint64 // points served from the shared result store
	Failed      uint64 // points that finished with an error
	SeedRetries uint64 // retry attempts for retryable seed failures
}

// Cached returns how many requests were served from the in-process
// cache (checkpoint and result-store restores are counted separately
// in Restored and FromStore).
func (st SchedulerStats) Cached() uint64 {
	return st.Requests - st.Unique - st.Restored - st.FromStore
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{
		Requests: s.requests, Unique: s.unique, SeedRuns: s.seedRuns,
		Restored: s.restored, FromStore: s.fromStore,
		Failed: s.failed, SeedRetries: s.retries,
	}
}

var (
	defaultOnce  sync.Once
	defaultSched *Scheduler
)

// DefaultScheduler returns the process-wide scheduler backing Run,
// MustRun and the package-level study drivers. Its pool starts at the
// first caller's worker count and grows if a later Options asks for
// more; it never shrinks, so use NewScheduler(1) when serial execution
// itself (not just serial-identical results) is required.
func DefaultScheduler() *Scheduler {
	defaultOnce.Do(func() {
		defaultSched = &Scheduler{cache: make(map[pointKey]*pointEntry)}
		defaultSched.cond = sync.NewCond(&defaultSched.mu)
	})
	return defaultSched
}

// sharedScheduler returns the default scheduler grown to o's workers.
func sharedScheduler(o Options) *Scheduler {
	s := DefaultScheduler()
	s.grow(o.workerCount())
	return s
}
