// Parallel experiment scheduler: a worker pool that fans out seed-level
// simulation jobs plus a memoizing point cache, so every unique
// (benchmark, mechanisms, canonical options) data point is simulated
// exactly once per process no matter how many studies request it.
//
// Determinism contract: a point's seeds are fixed (1..Seeds), each seed
// is an independent sim.Run on a private System, and the runs are
// assembled in seed order before the point is published. The resulting
// Point — including the stats.Summarize reduction — is therefore
// bit-identical whatever the worker count, including Workers == 1.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cmpsim/internal/sim"
	"cmpsim/internal/stats"
	"cmpsim/internal/workload"
)

// PointEventKind classifies scheduler progress events.
type PointEventKind int

const (
	// PointStart: a new unique point was submitted and its seed jobs queued.
	PointStart PointEventKind = iota
	// PointFinish: the point's last seed completed (or it failed validation).
	PointFinish
	// PointCached: a Submit was served from the memoized point cache.
	PointCached
)

// String names the event kind for progress displays.
func (k PointEventKind) String() string {
	switch k {
	case PointStart:
		return "start"
	case PointFinish:
		return "finish"
	case PointCached:
		return "cached"
	default:
		return fmt.Sprintf("PointEventKind(%d)", int(k))
	}
}

// PointEvent is one scheduler progress notification.
type PointEvent struct {
	Kind       PointEventKind
	Benchmark  string
	Mechanisms Mechanisms
	Options    Options // canonical form (the cache key's option set)
	Seeds      int
	Wall       time.Duration // submit→finish wall-clock (PointFinish only)
	Point      *Point        // the finished point (PointFinish without error only)
	Err        error         // PointFinish only
}

// Observer receives progress events. Finish events fire from worker
// goroutines, so an observer must be safe for concurrent use; it should
// also return quickly, since it runs on the simulation workers.
type Observer func(PointEvent)

// pointKey identifies one unique data point in the scheduler cache.
type pointKey struct {
	bench string
	mech  Mechanisms
	opts  Options
}

// canonicalOpts normalizes scheduling-only and aliasing fields so that
// equivalent requests share one cache entry: Workers does not affect
// simulation results, "stride" names the engine "" already selects, and
// DecompressionCycles is ignored by config unless DecompressionSet.
func canonicalOpts(o Options) Options {
	o.Workers = 0
	if o.PrefetcherKind == "stride" {
		o.PrefetcherKind = ""
	}
	if !o.DecompressionSet {
		o.DecompressionCycles = 0
	}
	return o
}

// pointEntry is the cache slot for one data point: filled in by seed
// jobs, published exactly once by closing done.
type pointEntry struct {
	bench string
	mech  Mechanisms
	opts  Options // canonical; builds the same sim.Configs as the original

	started time.Time
	notify  Observer // observer at submit time (nil = no events)

	mu      sync.Mutex
	runs    []sim.Metrics
	pending int
	err     error

	point Point
	done  chan struct{}
}

// runSeed executes one seed's simulation and publishes the point when
// it is the last seed to finish.
func (e *pointEntry) runSeed(seed int) {
	met, err := sim.Run(e.opts.config(e.bench, e.mech, int64(seed)+1))
	e.mu.Lock()
	if err != nil && e.err == nil {
		e.err = err
	}
	e.runs[seed] = met
	e.pending--
	last := e.pending == 0
	e.mu.Unlock()
	if !last {
		return
	}
	if e.err == nil {
		p := Point{Benchmark: e.bench, Mechanisms: e.mech, Runs: e.runs}
		runtimes := make([]float64, len(e.runs))
		for i := range e.runs {
			runtimes[i] = e.runs[i].Cycles
		}
		p.Runtime = stats.Summarize(runtimes)
		e.point = p
	}
	close(e.done)
	if e.notify != nil {
		ev := PointEvent{
			Kind: PointFinish, Benchmark: e.bench, Mechanisms: e.mech, Options: e.opts,
			Seeds: len(e.runs), Wall: time.Since(e.started), Err: e.err,
		}
		if e.err == nil {
			ev.Point = &e.point
		}
		e.notify(ev)
	}
}

// PointFuture is a handle to a submitted (possibly cached) data point.
type PointFuture struct{ e *pointEntry }

// Wait blocks until every seed of the point has been simulated and
// returns the assembled Point. Cached points return immediately.
func (f *PointFuture) Wait() (Point, error) {
	<-f.e.done
	return f.e.point, f.e.err
}

// MustWait is Wait for drivers iterating known-good benchmark names.
func (f *PointFuture) MustWait() Point {
	p, err := f.Wait()
	if err != nil {
		panic(err)
	}
	return p
}

type seedJob struct {
	entry *pointEntry
	seed  int
}

// Scheduler owns a worker pool and a memoizing point cache. Drivers
// submit every point of a study up front and then collect in paper
// order, so output order stays deterministic while the pool runs ahead.
// All methods are safe for concurrent use.
type Scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []seedJob
	target   int // pool size; workers spawn lazily up to it
	running  int
	closed   bool
	cache    map[pointKey]*pointEntry
	observer Observer

	requests uint64
	unique   uint64
	seedRuns uint64
}

// SetObserver installs (or, with nil, removes) the progress observer.
// Points submitted before the call keep the observer they were submitted
// with; install the observer before the study drivers run.
func (s *Scheduler) SetObserver(fn Observer) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

// NewScheduler returns a scheduler with its own empty cache running at
// most workers simulations concurrently; workers < 1 means one per CPU.
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{target: workers, cache: make(map[pointKey]*pointEntry)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers reports the current pool size.
func (s *Scheduler) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// grow raises the pool size to at least n workers. The pool never
// shrinks: for guaranteed-serial execution use NewScheduler(1).
func (s *Scheduler) grow(n int) {
	s.mu.Lock()
	if n > s.target {
		s.target = n
		s.spawnLocked()
	}
	s.mu.Unlock()
}

// spawnLocked starts workers up to the target pool size. Callers hold mu.
func (s *Scheduler) spawnLocked() {
	if len(s.queue) == 0 {
		return
	}
	for s.running < s.target {
		s.running++
		go s.worker()
	}
}

func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 { // closed and drained
			s.running--
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		j.entry.runSeed(j.seed)
		s.mu.Lock()
	}
}

// Submit requests one data point. It never blocks on simulation work:
// the point's seed jobs are queued (or the cached entry is found) and a
// future is returned for collection via Wait. Invalid requests resolve
// immediately with the same errors Run reports. Progress events fire
// outside the scheduler lock: PointCached for cache hits, PointStart for
// newly queued points, PointFinish when the last seed lands (invalid
// submissions fire PointFinish with the error directly).
func (s *Scheduler) Submit(bench string, m Mechanisms, o Options) *PointFuture {
	key := pointKey{bench: bench, mech: m, opts: canonicalOpts(o)}
	s.mu.Lock()
	s.requests++
	if e, ok := s.cache[key]; ok {
		obs := s.observer
		s.mu.Unlock()
		if obs != nil {
			obs(PointEvent{Kind: PointCached, Benchmark: bench, Mechanisms: m, Options: key.opts, Seeds: o.Seeds})
		}
		return &PointFuture{e}
	}
	e := &pointEntry{
		bench: bench, mech: m, opts: key.opts,
		started: time.Now(), notify: s.observer, done: make(chan struct{}),
	}
	s.cache[key] = e
	_, werr := workload.ByName(bench)
	queued := false
	switch {
	case o.Seeds < 1:
		e.err = fmt.Errorf("core: Seeds must be at least 1")
		close(e.done)
	case werr != nil:
		e.err = werr
		close(e.done)
	default:
		if s.closed {
			s.mu.Unlock()
			panic("core: Submit on closed Scheduler")
		}
		if s.target < 1 {
			s.target = runtime.GOMAXPROCS(0)
		}
		s.unique++
		s.seedRuns += uint64(o.Seeds)
		e.runs = make([]sim.Metrics, o.Seeds)
		e.pending = o.Seeds
		for i := 0; i < o.Seeds; i++ {
			s.queue = append(s.queue, seedJob{e, i})
		}
		s.spawnLocked()
		s.cond.Broadcast()
		queued = true
	}
	s.mu.Unlock()
	if e.notify != nil {
		if queued {
			e.notify(PointEvent{Kind: PointStart, Benchmark: bench, Mechanisms: m, Options: key.opts, Seeds: o.Seeds})
		} else {
			e.notify(PointEvent{Kind: PointFinish, Benchmark: bench, Mechanisms: m, Options: key.opts, Seeds: o.Seeds, Err: e.err})
		}
	}
	return &PointFuture{e}
}

// Close lets the workers exit once the queue drains. Futures already
// submitted still complete; submitting new work afterwards panics. It
// exists so tests with private schedulers do not leak parked goroutines.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SchedulerStats counts cache effectiveness: how much simulation the
// memoized point cache avoided.
type SchedulerStats struct {
	Requests uint64 // Submit calls
	Unique   uint64 // distinct points actually simulated
	SeedRuns uint64 // individual seed-level sim.Run jobs executed
}

// Cached returns how many requests were served from the cache.
func (st SchedulerStats) Cached() uint64 { return st.Requests - st.Unique }

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{Requests: s.requests, Unique: s.unique, SeedRuns: s.seedRuns}
}

var (
	defaultOnce  sync.Once
	defaultSched *Scheduler
)

// DefaultScheduler returns the process-wide scheduler backing Run,
// MustRun and the package-level study drivers. Its pool starts at the
// first caller's worker count and grows if a later Options asks for
// more; it never shrinks, so use NewScheduler(1) when serial execution
// itself (not just serial-identical results) is required.
func DefaultScheduler() *Scheduler {
	defaultOnce.Do(func() {
		defaultSched = &Scheduler{cache: make(map[pointKey]*pointEntry)}
		defaultSched.cond = sync.NewCond(&defaultSched.mu)
	})
	return defaultSched
}

// sharedScheduler returns the default scheduler grown to o's workers.
func sharedScheduler(o Options) *Scheduler {
	s := DefaultScheduler()
	s.grow(o.workerCount())
	return s
}
