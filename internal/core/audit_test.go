package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cmpsim/internal/audit"
	"cmpsim/internal/faultinject"
)

// TestInvariantFailureFlowsThroughPipeline injects a state corruption
// via a faultinject Corrupt rule and verifies the auditor's violation
// arrives as a structured ReasonInvariant point failure with an
// attributable FAILED cell, while a sibling point stays clean.
func TestInvariantFailureFlowsThroughPipeline(t *testing.T) {
	o := tinyOptions()
	o.CheckLevel = "invariants"
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Corrupt, Benchmark: "zeus", Label: "compression",
		Seed: faultinject.AnySeed, Fault: "corrupt-segs", After: 2000,
		Count: faultinject.Forever,
	})
	s := NewScheduler(2)
	defer s.Close()
	s.SetStateFaultHook(in.StateFault)

	fBad := s.Submit("zeus", Compression, o)
	fOK := s.Submit("zeus", Base, o)

	_, err := fBad.Wait()
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("corrupted point returned %v, want *PointError", err)
	}
	if pe.Reason != ReasonInvariant {
		t.Fatalf("Reason = %q, want %q (%+v)", pe.Reason, ReasonInvariant, pe)
	}
	var v *audit.Violation
	if !errors.As(pe.Err, &v) || v.Invariant != "l2-set-state" {
		t.Fatalf("underlying cause %v, want an l2-set-state *audit.Violation", pe.Err)
	}
	if cell := pe.Cell(); !strings.HasPrefix(cell, "invariant:l2-set-state") {
		t.Fatalf("Cell() = %q, want invariant:l2-set-state prefix", cell)
	}

	if _, err := fOK.Wait(); err != nil {
		t.Fatalf("sibling point failed: %v", err)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (stats %+v)", st.Failed, st)
	}
}

// TestCheckLevelCanonicalizedOutOfCacheKey verifies the audit level
// shares one cache entry across submissions (the audit never changes
// results) and that points run at shadow level match unchecked ones.
func TestCheckLevelCanonicalizedOutOfCacheKey(t *testing.T) {
	o := tinyOptions()
	s := NewScheduler(2)
	defer s.Close()

	oShadow := o
	oShadow.CheckLevel = "shadow"
	pShadow, err := s.Submit("zeus", Base, oShadow).Wait()
	if err != nil {
		t.Fatalf("shadow run failed: %v", err)
	}
	oOff := o
	oOff.CheckLevel = "off"
	if _, err := s.Submit("zeus", Base, oOff).Wait(); err != nil {
		t.Fatalf("off run failed: %v", err)
	}
	if st := s.Stats(); st.Unique != 1 || st.Cached() != 1 {
		t.Fatalf("stats %+v: want 1 unique point and 1 cached request", st)
	}

	// Bit-identical contract across schedulers and levels.
	s2 := NewScheduler(2)
	defer s2.Close()
	pOff, err := s2.Submit("zeus", Base, oOff).Wait()
	if err != nil {
		t.Fatalf("unchecked reference run failed: %v", err)
	}
	if !reflect.DeepEqual(pShadow.Runs, pOff.Runs) {
		t.Fatal("shadow-audited point differs from unchecked point")
	}
}

// TestInvalidCheckLevelFailsFastWithoutPoisoningCache verifies an
// unparseable CheckLevel resolves immediately with an error and that a
// later valid submission of the same point still simulates.
func TestInvalidCheckLevelFailsFastWithoutPoisoningCache(t *testing.T) {
	o := tinyOptions()
	o.CheckLevel = "bogus"
	s := NewScheduler(1)
	defer s.Close()
	if _, err := s.Submit("zeus", Base, o).Wait(); err == nil {
		t.Fatal("bogus CheckLevel did not fail")
	}
	o.CheckLevel = "off"
	if _, err := s.Submit("zeus", Base, o).Wait(); err != nil {
		t.Fatalf("valid resubmission hit the poisoned entry: %v", err)
	}
}
