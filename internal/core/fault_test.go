package core

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cmpsim/internal/faultinject"
)

// faultFreePoint simulates one point on a private fault-free scheduler,
// the reference result the fault tests compare against.
func faultFreePoint(t *testing.T, bench string, m Mechanisms, o Options) Point {
	t.Helper()
	s := NewScheduler(2)
	defer s.Close()
	p, err := s.Submit(bench, m, o).Wait()
	if err != nil {
		t.Fatalf("fault-free reference run failed: %v", err)
	}
	return p
}

func TestPanicIsolation(t *testing.T) {
	o := tinyOptions()
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Panic, Benchmark: "zeus", Label: "base", Seed: 0,
	})
	s := NewScheduler(2)
	defer s.Close()
	s.SetFaultHook(in.Hook)

	var finishErrs int32
	s.SetObserver(func(ev PointEvent) {
		if ev.Kind == PointFinish && ev.Err != nil {
			atomic.AddInt32(&finishErrs, 1)
		}
	})

	fBase := s.Submit("zeus", Base, o)
	fPf := s.Submit("zeus", Prefetch, o)

	_, err := fBase.Wait()
	if err == nil {
		t.Fatal("panicking point did not fail")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PointError", err)
	}
	if pe.Reason != ReasonPanic || pe.Seed != 0 {
		t.Fatalf("PointError = %+v", pe)
	}
	if pe.Stack == "" || !strings.Contains(pe.Err.Error(), "injected panic") {
		t.Fatalf("panic evidence missing: stack %d bytes, err %v", len(pe.Stack), pe.Err)
	}

	// The sibling point on the same pool must be untouched — bit-identical
	// to a fault-free scheduler's result.
	got, err := fPf.Wait()
	if err != nil {
		t.Fatalf("unrelated point failed: %v", err)
	}
	if want := faultFreePoint(t, "zeus", Prefetch, o); !reflect.DeepEqual(got, want) {
		t.Fatal("sibling point differs from fault-free run")
	}

	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (stats %+v)", st.Failed, st)
	}
	if n := atomic.LoadInt32(&finishErrs); n != 1 {
		t.Fatalf("observer saw %d failed PointFinish events, want 1", n)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	o := tinyOptions()
	o.Seeds = 1
	o.MaxRetries = 3
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Transient, Benchmark: "zeus", Label: "base", Seed: 0,
		Count: 2, // first two attempts fail, third succeeds
	})
	s := NewScheduler(1)
	defer s.Close()
	s.SetFaultHook(in.Hook)

	got, err := s.Submit("zeus", Base, o).Wait()
	if err != nil {
		t.Fatalf("point failed despite retry budget: %v", err)
	}
	if fired := in.Fired(); fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}
	if st := s.Stats(); st.SeedRetries != 2 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if want := faultFreePoint(t, "zeus", Base, o); !reflect.DeepEqual(got, want) {
		t.Fatal("retried point differs from fault-free run")
	}
}

func TestRetryExhaustion(t *testing.T) {
	o := tinyOptions()
	o.Seeds = 1
	o.MaxRetries = 2
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Transient, Benchmark: "zeus", Label: "base", Seed: 0,
		Count: faultinject.Forever,
	})
	s := NewScheduler(1)
	defer s.Close()
	s.SetFaultHook(in.Hook)

	_, err := s.Submit("zeus", Base, o).Wait()
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PointError, got %v", err)
	}
	if pe.Attempts != 3 || pe.Reason != ReasonError {
		t.Fatalf("PointError = %+v", pe)
	}
	if !errors.Is(err, faultinject.ErrTransient) {
		t.Fatalf("cause not preserved through wrapping: %v", err)
	}
	if st := s.Stats(); st.SeedRetries != 2 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransientNoRetryBudget(t *testing.T) {
	o := tinyOptions()
	o.Seeds = 1 // MaxRetries left 0: first transient failure is final
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Transient, Benchmark: "zeus", Label: "base", Seed: 0,
	})
	s := NewScheduler(1)
	defer s.Close()
	s.SetFaultHook(in.Hook)

	_, err := s.Submit("zeus", Base, o).Wait()
	var pe *PointError
	if !errors.As(err, &pe) || pe.Attempts != 1 {
		t.Fatalf("want 1-attempt *PointError, got %v", err)
	}
	if st := s.Stats(); st.SeedRetries != 0 {
		t.Fatalf("retried without budget: %+v", st)
	}
}

func TestWatchdogTimeout(t *testing.T) {
	o := tinyOptions()
	o.Seeds = 1
	o.PointTimeout = 50 * time.Millisecond
	o.MaxRetries = 3 // must be ignored: timeouts are not retryable
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Stall, Benchmark: "zeus", Label: "base", Seed: 0,
		StallFor: 2 * time.Second,
	})
	s := NewScheduler(1)
	defer s.Close()
	s.SetFaultHook(in.Hook)

	start := time.Now()
	_, err := s.Submit("zeus", Base, o).Wait()
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PointError, got %v", err)
	}
	if pe.Reason != ReasonTimeout || !errors.Is(err, ErrPointTimeout) {
		t.Fatalf("PointError = %+v", pe)
	}
	if pe.Attempts != 1 {
		t.Fatalf("timeout was retried: attempts = %d", pe.Attempts)
	}
	if wall := time.Since(start); wall >= 2*time.Second {
		t.Fatalf("watchdog did not abandon the stalled run (waited %v)", wall)
	}
	if got, want := pe.Cell(), "timeout (seed 0)"; got != want {
		t.Fatalf("Cell() = %q, want %q", got, want)
	}
}

func TestPanicNotRetried(t *testing.T) {
	o := tinyOptions()
	o.Seeds = 1
	o.MaxRetries = 3
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Panic, Benchmark: "zeus", Label: "base", Seed: 0,
		Count: faultinject.Forever,
	})
	s := NewScheduler(1)
	defer s.Close()
	s.SetFaultHook(in.Hook)

	_, err := s.Submit("zeus", Base, o).Wait()
	var pe *PointError
	if !errors.As(err, &pe) || pe.Reason != ReasonPanic {
		t.Fatalf("want panic *PointError, got %v", err)
	}
	if pe.Attempts != 1 {
		t.Fatalf("panic was retried: attempts = %d", pe.Attempts)
	}
	if fired := in.Fired(); fired[0] != 1 {
		t.Fatalf("hook fired %d times, want 1", fired[0])
	}
}

func TestObserverPanicDoesNotKillWorker(t *testing.T) {
	o := tinyOptions()
	s := NewScheduler(2)
	defer s.Close()
	s.SetObserver(func(ev PointEvent) {
		panic("observer bug")
	})

	// Both a fresh point and a cached request notify the observer; neither
	// may crash or hang the pool.
	got, err := s.Submit("zeus", Base, o).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("zeus", Base, o).Wait(); err != nil {
		t.Fatal(err)
	}
	if want := faultFreePoint(t, "zeus", Base, o); !reflect.DeepEqual(got, want) {
		t.Fatal("point differs from fault-free run under panicking observer")
	}
	if st := s.Stats(); st.Failed != 0 || st.Cached() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidSubmissionsCountFailed(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	o := tinyOptions()

	if _, err := s.Submit("nosuch", Base, o).Wait(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	o.Seeds = 0
	if _, err := s.Submit("zeus", Base, o).Wait(); err == nil {
		t.Fatal("Seeds=0 accepted")
	}
	if st := s.Stats(); st.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", st.Failed)
	}
}

func TestStudyDegradesGracefully(t *testing.T) {
	o := tinyOptions()
	in := faultinject.New(faultinject.Rule{
		Kind: faultinject.Panic, Benchmark: "zeus", Label: "base", Seed: 0,
	})
	s := NewScheduler(2)
	defer s.Close()
	s.SetFaultHook(in.Hook)

	rows := s.CompressionStudy([]string{"zeus", "mgrid"}, o)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Benchmark != "zeus" || rows[0].Failed == "" {
		t.Fatalf("zeus row not marked failed: %+v", rows[0])
	}
	if !strings.Contains(rows[0].Failed, "seed 0") {
		t.Fatalf("failure reason lacks seed identity: %q", rows[0].Failed)
	}
	if rows[1].Benchmark != "mgrid" || rows[1].Failed != "" || rows[1].Ratio == 0 {
		t.Fatalf("healthy row damaged: %+v", rows[1])
	}
}
