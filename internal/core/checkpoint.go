// Persistent point-cache checkpointing. A Checkpoint mirrors the
// scheduler's memoized point cache into a checksummed JSONL file, one
// finished point per line, written incrementally as points finish. A
// re-run of an interrupted study opens the same file, restores every
// intact record, and simulates only the missing points.
//
// File format (one JSON object per line):
//
//	{"v":1,"crc":<IEEE CRC-32 of data>,"data":{benchmark,mechanisms,options,point}}
//
// The data payload is a PointRecord (record.go): the point's canonical
// identity alongside the full Point (all seed runs plus the runtime
// summary). Restores are bit-identical to fresh simulation: every
// numeric field round-trips exactly through encoding/json
// (shortest-form float encoding), which preserves the PR 1 determinism
// contract across process restarts. The identity is derived by the same
// canonical-key function the scheduler cache and the shared result
// store use, so the three can never disagree.
//
// Corruption handling: a record whose line fails to parse, whose CRC
// mismatches, or whose run count disagrees with its options is counted
// in Skipped and ignored — never trusted — and the point is simply
// re-simulated. A truncated trailing line (process killed mid-write) is
// healed on open so later appends start on a fresh line.
package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// checkpointVersion guards the record schema; bump on incompatible
// changes so old files are skipped rather than misread.
const checkpointVersion = 1

// checkpointLine is one JSONL line on disk.
type checkpointLine struct {
	V    int             `json:"v"`
	CRC  uint32          `json:"crc"`
	Data json.RawMessage `json:"data"`
}

// Checkpoint is a persistent point cache backed by a checksummed JSONL
// file. All methods are safe for concurrent use; a Checkpoint assumes a
// single writing process (no file locking).
type Checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	points  map[pointKey]Point
	loaded  int
	skipped int
}

// OpenCheckpoint opens (creating if needed) a checkpoint file and loads
// every intact record. Corrupt or incompatible records are counted in
// Skipped and ignored.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open checkpoint: %w", err)
	}
	cp := &Checkpoint{f: f, path: path, points: make(map[pointKey]Point)}
	if err := cp.load(); err != nil {
		f.Close()
		return nil, err
	}
	return cp, nil
}

// load scans the whole file, restoring intact records, and leaves the
// file offset at the end ready for appends (healing a truncated tail).
func (c *Checkpoint) load() error {
	sc := bufio.NewScanner(c.f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26) // points with miss profiles are large
	endsWithNewline := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec checkpointLine
		if err := json.Unmarshal(line, &rec); err != nil {
			c.skipped++
			continue
		}
		if rec.V != checkpointVersion || crc32.ChecksumIEEE(rec.Data) != rec.CRC {
			c.skipped++
			continue
		}
		var d PointRecord
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			c.skipped++
			continue
		}
		// Canonicalize defensively (files written by older versions may
		// carry raw options) and revalidate before trusting the record.
		d.Options = canonicalOpts(d.Options)
		if d.Validate() != nil {
			c.skipped++
			continue
		}
		c.points[canonicalKey(d.Benchmark, d.Mechanisms, d.Options)] = d.Point
		c.loaded++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("core: read checkpoint %s: %w", c.path, err)
	}
	// Heal a missing trailing newline (kill mid-write) so the next
	// append does not concatenate onto the partial record.
	if end, err := c.f.Seek(0, io.SeekEnd); err == nil && end > 0 {
		buf := make([]byte, 1)
		if _, err := c.f.ReadAt(buf, end-1); err == nil && buf[0] != '\n' {
			endsWithNewline = false
		}
	}
	if !endsWithNewline {
		if _, err := c.f.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("core: heal checkpoint %s: %w", c.path, err)
		}
	}
	return nil
}

// Loaded returns how many intact records the open call restored.
func (c *Checkpoint) Loaded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loaded
}

// Skipped returns how many corrupt or incompatible records were
// detected and ignored on load.
func (c *Checkpoint) Skipped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// Path returns the backing file's path.
func (c *Checkpoint) Path() string { return c.path }

// Close flushes and closes the backing file. The in-memory point set
// stays usable for lookups; appends after Close fail.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// restore fills e from the checkpointed point for k, if present. Called
// by Submit with the scheduler lock held; it touches only e (not yet
// shared) and the checkpoint's own state.
func (c *Checkpoint) restore(k pointKey, e *pointEntry) bool {
	c.mu.Lock()
	p, ok := c.points[k]
	c.mu.Unlock()
	if !ok {
		return false
	}
	e.point = p
	e.runs = p.Runs
	close(e.done)
	return true
}

// add appends one finished point as a checksummed record and syncs, so
// a kill at any moment loses at most the record being written.
func (c *Checkpoint) add(k pointKey, p Point) error {
	data, err := json.Marshal(PointRecord{
		Benchmark: k.bench, Mechanisms: k.mech, Options: k.opts, Point: p,
	})
	if err != nil {
		return fmt.Errorf("core: encode checkpoint record: %w", err)
	}
	line, err := json.Marshal(checkpointLine{
		V: checkpointVersion, CRC: crc32.ChecksumIEEE(data), Data: data,
	})
	if err != nil {
		return fmt.Errorf("core: encode checkpoint line: %w", err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.points[k]; ok {
		return nil // already persisted (e.g. restored point resubmitted)
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("core: append checkpoint record: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	c.points[k] = p
	return nil
}
