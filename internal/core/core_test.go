package core

import (
	"math"
	"strings"
	"testing"

	"cmpsim/internal/codec"
	"cmpsim/internal/sim"
)

// tinyOptions keeps core tests fast: 2 cores, 1 MB L2, short runs.
func tinyOptions() Options {
	return Options{
		Cores: 2, Seeds: 2, Warmup: 100_000, Measure: 60_000,
		BandwidthGBps: 10, L2MB: 1,
	}
}

func TestRunProducesSeededSample(t *testing.T) {
	p, err := Run("zeus", Base, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Runtime.N != 2 || len(p.Runs) != 2 {
		t.Fatalf("expected 2 seeds, got %d", p.Runtime.N)
	}
	if p.Runtime.Mean <= 0 || p.Runtime.CI95() < 0 {
		t.Fatalf("sample %+v", p.Runtime)
	}
	if p.Runs[0].Cycles == p.Runs[1].Cycles {
		t.Fatal("seeds produced identical runtimes")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run("nosuch", Base, tinyOptions()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	o := tinyOptions()
	o.Seeds = 0
	if _, err := Run("zeus", Base, o); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

func TestMechanismLabels(t *testing.T) {
	want := map[string]Mechanisms{
		"base": Base, "cache-compr": CacheCompr, "link-compr": LinkCompr,
		"compression": Compression, "prefetch": Prefetch, "adaptive-pf": AdaptivePf,
		"pf+compr": PrefCompr, "adaptive+compr": AdaptiveCompr,
	}
	for label, m := range want {
		if m.Label() != label {
			t.Errorf("%v label = %q, want %q", m, m.Label(), label)
		}
	}
	odd := Mechanisms{CacheCompression: true, Prefetching: true}
	if !strings.Contains(odd.Label(), "true") {
		t.Errorf("fallback label %q", odd.Label())
	}
}

func TestPointMean(t *testing.T) {
	p := Point{Runs: []sim.Metrics{{IPC: 1}, {IPC: 3}}}
	if got := p.Mean(func(m *sim.Metrics) float64 { return m.IPC }); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %f", got)
	}
	var empty Point
	if empty.Mean(func(m *sim.Metrics) float64 { return 1 }) != 0 {
		t.Fatal("empty point mean should be 0")
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 8 {
		t.Fatalf("benchmarks = %v", Benchmarks())
	}
	com := CommercialBenchmarks()
	if len(com) != 4 || com[0] != "apache" || com[3] != "jbb" {
		t.Fatalf("commercial = %v", com)
	}
}

func TestCompressionStudyShape(t *testing.T) {
	rows := CompressionStudy([]string{"jbb", "apsi"}, tinyOptions())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	jbb, apsi := rows[0], rows[1]
	if jbb.Benchmark != "jbb" || apsi.Benchmark != "apsi" {
		t.Fatal("row order")
	}
	// The central compressibility split must hold at any scale.
	if jbb.Ratio <= apsi.Ratio {
		t.Fatalf("jbb ratio %.2f should exceed apsi %.2f", jbb.Ratio, apsi.Ratio)
	}
	if jbb.BaseMissPerKI <= 0 {
		t.Fatal("no misses measured")
	}
}

func TestBandwidthStudyUsesInfinitePins(t *testing.T) {
	rows := BandwidthStudy([]string{"fma3d"}, tinyOptions())
	if len(rows) != 1 || rows[0].None <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	// Link compression must not increase demand.
	if rows[0].LinkOnly > rows[0].None*1.01 {
		t.Fatalf("link compression raised demand: %+v", rows[0])
	}
}

func TestPrefetchPropertiesShape(t *testing.T) {
	rows := PrefetchProperties([]string{"mgrid", "oltp"}, tinyOptions())
	mgrid, oltp := rows[0], rows[1]
	// Scientific codes barely touch the L1I prefetcher; commercial ones
	// drive it hard (Table 4's starkest contrast).
	if mgrid.L1I.RatePer1000 > 1 {
		t.Fatalf("mgrid L1I rate %.2f should be ~0", mgrid.L1I.RatePer1000)
	}
	if oltp.L1I.RatePer1000 < 1 {
		t.Fatalf("oltp L1I rate %.2f should be substantial", oltp.L1I.RatePer1000)
	}
	if mgrid.L1D.CoveragePct <= oltp.L1D.CoveragePct {
		t.Fatalf("mgrid L1D coverage %.1f should exceed oltp %.1f",
			mgrid.L1D.CoveragePct, oltp.L1D.CoveragePct)
	}
}

func TestInteractionStudyConsistency(t *testing.T) {
	rows := InteractionStudy([]string{"zeus"}, tinyOptions())
	r := rows[0]
	// EQ 5 must reconstruct: both = pref × compr × (1 + interaction).
	lhs := 1 + r.BothPct/100
	rhs := (1 + r.PrefPct/100) * (1 + r.ComprPct/100) * (1 + r.InteractionPct/100)
	if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("EQ 5 violated: %f vs %f", lhs, rhs)
	}
}

func TestMissClassificationSumsTo100(t *testing.T) {
	o := tinyOptions()
	rows := MissClassification([]string{"zeus"}, o)
	r := rows[0]
	sum := r.NotAvoidedPct + r.OnlyComprPct + r.OnlyPrefPct + r.EitherPct
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("demand-miss classes sum to %f", sum)
	}
	if r.NotAvoidedPct < 0 || r.OnlyComprPct < 0 || r.OnlyPrefPct < 0 || r.EitherPct < 0 {
		t.Fatalf("negative class: %+v", r)
	}
}

func TestCoreSweepRuns(t *testing.T) {
	rows := CoreSweep("zeus", []int{1, 2}, tinyOptions())
	if len(rows) != 2 || rows[0].Cores != 1 || rows[1].Cores != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestBandwidthSweepRuns(t *testing.T) {
	rows := BandwidthSweep([]string{"zeus"}, []int{10, 40}, tinyOptions())
	if len(rows) != 1 {
		t.Fatal("rows")
	}
	if _, ok := rows[0].InteractionPct[10]; !ok {
		t.Fatal("missing 10 GB/s point")
	}
	if _, ok := rows[0].InteractionPct[40]; !ok {
		t.Fatal("missing 40 GB/s point")
	}
}

func TestOptionsOverridesApply(t *testing.T) {
	o := tinyOptions()
	o.L2PrefetchDepth = 3
	o.DecompressionSet = true
	o.DecompressionCycles = 0
	o.L2TagsPerSet = 16
	o.UncompressedVictimTags = -1
	cfg := o.config("zeus", AdaptiveCompr, 1)
	if cfg.L2PrefetchDepth != 3 || cfg.DecompressionCycles != 0 || cfg.L2TagsPerSet != 16 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.UncompressedVictimTags != 0 {
		t.Fatalf("victim tags = %d, want 0", cfg.UncompressedVictimTags)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveSizeSample(t *testing.T) {
	// At this tiny scale the cache is only partially warm, so assert
	// plausibility rather than the full-scale Table 3 value (checked in
	// EXPERIMENTS.md): the sample must be positive and jbb must beat the
	// incompressible apsi.
	jbbRatio, eff := EffectiveSizeSample("jbb", tinyOptions())
	if jbbRatio <= 0 || eff <= 0 {
		t.Fatalf("ratio %f eff %f", jbbRatio, eff)
	}
	apsiRatio, _ := EffectiveSizeSample("apsi", tinyOptions())
	if jbbRatio <= apsiRatio {
		t.Fatalf("jbb ratio %f should exceed apsi %f", jbbRatio, apsiRatio)
	}
}

func TestCodecOptionThreading(t *testing.T) {
	// A non-default codec flows into sim.Config and brings its own
	// decompression latency when none was set explicitly.
	o := tinyOptions()
	o.Codec = "cpack"
	cfg := o.config("zeus", Compression, 1)
	if cfg.Codec != "cpack" {
		t.Fatalf("Codec not threaded: %+v", cfg)
	}
	if want := codec.MustByName("cpack").DecompressionCycles(); cfg.DecompressionCycles != want {
		t.Fatalf("DecompressionCycles = %g, want the codec default %g", cfg.DecompressionCycles, want)
	}
	// An explicit latency wins over the codec default.
	o.DecompressionSet = true
	o.DecompressionCycles = 2.5
	if cfg := o.config("zeus", Compression, 1); cfg.DecompressionCycles != 2.5 {
		t.Fatalf("explicit DecompressionCycles overridden: %g", cfg.DecompressionCycles)
	}
	// The default codec keeps the paper's 5-cycle latency untouched.
	o = tinyOptions()
	o.Codec = "fpc"
	if cfg := o.config("zeus", Compression, 1); cfg.DecompressionCycles != sim.NewConfig("zeus").DecompressionCycles {
		t.Fatalf("fpc changed the default latency: %g", cfg.DecompressionCycles)
	}
}

func TestCodecCanonicalization(t *testing.T) {
	// "" and "fpc" are the same point: the second Submit must be served
	// from the cache, not simulated again.
	a, b := tinyOptions(), tinyOptions()
	b.Codec = "fpc"
	if canonicalOpts(a) != canonicalOpts(b) {
		t.Fatal("fpc does not canonicalize to the default codec")
	}
	c := tinyOptions()
	c.Codec = "bdi"
	if canonicalOpts(a) == canonicalOpts(c) {
		t.Fatal("bdi collides with the default codec in the cache key")
	}
	// An unknown codec must fail the point cleanly, not crash the pool.
	bad := tinyOptions()
	bad.Codec = "lz4"
	if _, err := Run("zeus", Compression, bad); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
