package core

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestSchedulerDeterminism is the scheduler's regression contract: the
// same study run serially (Workers: 1) and in parallel must produce
// bit-identical Points, proving the fan-out introduces no hidden shared
// state. Fresh schedulers keep the comparison honest — with a shared
// cache the second run would trivially return the first run's points.
func TestSchedulerDeterminism(t *testing.T) {
	o := tinyOptions()
	benches := []string{"zeus", "mgrid"}

	serial := NewScheduler(1)
	defer serial.Close()
	parallel := NewScheduler(4)
	defer parallel.Close()

	for _, b := range benches {
		for _, m := range []Mechanisms{Base, Compression, AdaptiveCompr} {
			ps := serial.Submit(b, m, o).MustWait()
			pp := parallel.Submit(b, m, o).MustWait()
			if !reflect.DeepEqual(ps, pp) {
				t.Fatalf("%s/%s: serial and parallel points differ\nserial:   %+v\nparallel: %+v",
					b, m.Label(), ps, pp)
			}
		}
	}

	rs := serial.PrefetchStudy(benches, o)
	rp := parallel.PrefetchStudy(benches, o)
	if !reflect.DeepEqual(rs, rp) {
		t.Fatalf("PrefetchStudy rows differ\nserial:   %+v\nparallel: %+v", rs, rp)
	}
}

func TestSchedulerCacheDedup(t *testing.T) {
	o := tinyOptions()
	s := NewScheduler(2)
	defer s.Close()

	p1 := s.Submit("zeus", Base, o).MustWait()
	p2 := s.Submit("zeus", Base, o).MustWait()
	if &p1.Runs[0] != &p2.Runs[0] {
		t.Fatal("second request did not hit the cache")
	}
	st := s.Stats()
	if st.Requests != 2 || st.Unique != 1 || st.Cached() != 1 || st.SeedRuns != uint64(o.Seeds) {
		t.Fatalf("stats = %+v", st)
	}

	// Scheduling-only and aliasing option differences share the entry.
	o2 := o
	o2.Workers = 7
	o2.PrefetcherKind = "stride"
	o2.DecompressionCycles = 99 // ignored: DecompressionSet is false
	o2.PointTimeout = time.Minute
	o2.MaxRetries = 5
	o2.RetryBackoff = time.Second
	s.Submit("zeus", Base, o2).MustWait()
	if got := s.Stats().Unique; got != 1 {
		t.Fatalf("canonicalization missed: unique = %d", got)
	}

	// Semantic differences do not collide.
	o3 := o
	o3.BandwidthGBps = 0
	s.Submit("zeus", Base, o3).MustWait()
	if got := s.Stats().Unique; got != 2 {
		t.Fatalf("distinct options shared an entry: unique = %d", got)
	}
}

func TestSchedulerErrorPoints(t *testing.T) {
	o := tinyOptions()
	s := NewScheduler(1)
	defer s.Close()

	if _, err := s.Submit("nosuch", Base, o).Wait(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	bad := o
	bad.Seeds = 0
	if _, err := s.Submit("zeus", Base, bad).Wait(); err == nil {
		t.Fatal("zero seeds accepted")
	}
	if got := s.Stats().SeedRuns; got != 0 {
		t.Fatalf("invalid submissions ran %d simulations", got)
	}
}

// TestStudiesShareBasePoints checks the cross-study memoization the
// scheduler exists for: AdaptiveStudy reuses the base/prefetch/adaptive
// points PrefetchStudy already simulated.
func TestStudiesShareBasePoints(t *testing.T) {
	o := tinyOptions()
	s := NewScheduler(0)
	defer s.Close()
	benches := []string{"zeus"}

	s.PrefetchStudy(benches, o) // base, prefetch, adaptive-pf
	u := s.Stats().Unique
	if u != 3 {
		t.Fatalf("PrefetchStudy simulated %d points, want 3", u)
	}
	s.AdaptiveStudy(benches, o) // adds only pf+compr and adaptive+compr
	if got := s.Stats().Unique - u; got != 2 {
		t.Fatalf("AdaptiveStudy simulated %d new points, want 2", got)
	}
}

// TestSchedulerObserver checks the progress-event contract: one
// PointStart and one PointFinish per unique point, PointCached for
// repeat submissions, an immediate PointFinish with the error for
// invalid ones, and a non-nil Point with positive wall-clock on
// successful finishes.
func TestSchedulerObserver(t *testing.T) {
	o := tinyOptions()
	s := NewScheduler(2)
	defer s.Close()

	var mu sync.Mutex
	var events []PointEvent
	s.SetObserver(func(ev PointEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	s.Submit("zeus", Base, o).MustWait()
	s.Submit("zeus", Base, o).MustWait() // cached
	s.Submit("zeus", Prefetch, o).MustWait()
	if _, err := s.Submit("nosuch", Base, o).Wait(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}

	mu.Lock()
	defer mu.Unlock()
	counts := make(map[PointEventKind]int)
	for _, ev := range events {
		counts[ev.Kind]++
		switch ev.Kind {
		case PointFinish:
			if ev.Err == nil {
				if ev.Point == nil {
					t.Errorf("%s/%s: finish event without point", ev.Benchmark, ev.Mechanisms.Label())
				}
				if ev.Wall <= 0 {
					t.Errorf("%s/%s: finish event with wall %v", ev.Benchmark, ev.Mechanisms.Label(), ev.Wall)
				}
			} else if ev.Point != nil {
				t.Errorf("%s: failed finish carries a point", ev.Benchmark)
			}
		case PointStart, PointCached:
			if ev.Seeds != o.Seeds {
				t.Errorf("%v event reports %d seeds, want %d", ev.Kind, ev.Seeds, o.Seeds)
			}
		}
	}
	// zeus/base + zeus/pf started and finished; nosuch finished with an
	// error but never started; the repeat submission was served cached.
	if counts[PointStart] != 2 || counts[PointFinish] != 3 || counts[PointCached] != 1 {
		t.Fatalf("event counts start/finish/cached = %d/%d/%d, want 2/3/1",
			counts[PointStart], counts[PointFinish], counts[PointCached])
	}
}

// TestSchedulerTelemetryPlumbing: Options.TelemetryInterval must reach
// the per-seed sim configs (every run carries a timeline) and its zero
// value must leave timelines off. The two variants are distinct cache
// entries — the interval changes the result payload.
func TestSchedulerTelemetryPlumbing(t *testing.T) {
	o := tinyOptions()
	s := NewScheduler(2)
	defer s.Close()

	plain := s.Submit("zeus", Base, o).MustWait()
	for i := range plain.Runs {
		if plain.Runs[i].Timeline != nil {
			t.Fatalf("seed %d has a timeline with telemetry disabled", i)
		}
	}

	o.TelemetryInterval = 30_000
	traced := s.Submit("zeus", Base, o).MustWait()
	if s.Stats().Unique != 2 {
		t.Fatalf("telemetry variant shared the plain cache entry: %+v", s.Stats())
	}
	for i := range traced.Runs {
		if len(traced.Runs[i].Timeline) == 0 {
			t.Fatalf("seed %d missing timeline samples", i)
		}
	}
	// Identical non-timeline metrics: sampling must not perturb the run.
	a, b := plain.Runs[0], traced.Runs[0]
	b.Timeline = nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("telemetry perturbed the simulation:\n%+v\nvs\n%+v", a, b)
	}
}
