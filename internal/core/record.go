// Canonical point identity and the serialized point record. Exactly one
// function — canonicalOpts — decides which Options fields are part of a
// data point's identity; the in-process scheduler cache, the checkpoint
// file and the cross-process result store (internal/store via
// internal/fleet) all derive their keys from it, so the three can never
// disagree on whether two requests name the same simulation. A
// reflection drift guard in record_test.go forces every new Options
// field to be classified as identity-bearing or scheduling-only.
package core

import (
	"encoding/json"
	"fmt"

	"cmpsim/internal/codec"
	"cmpsim/internal/prefetch"
)

// CanonicalOptions normalizes scheduling-only and aliasing fields so
// that equivalent requests share one identity (the exported form of the
// scheduler's cache-key canonicalization; see canonicalOpts).
func CanonicalOptions(o Options) Options { return canonicalOpts(o) }

// canonicalOpts normalizes scheduling-only and aliasing fields so that
// equivalent requests share one cache entry: Workers, Shards and the
// robustness knobs (PointTimeout, MaxRetries, RetryBackoff) do not affect
// simulation results, CheckLevel is a read-only audit tier, the
// registries' default names ("stride", "fpc") select what "" already
// selects, and DecompressionCycles is ignored by config unless
// DecompressionSet. RefSource deliberately has no alias: "" means each
// profile's own kind, which is not the same simulation as "strided" on
// an irregular benchmark.
func canonicalOpts(o Options) Options {
	o.Workers = 0
	o.Shards = 0
	o.PointTimeout = 0
	o.MaxRetries = 0
	o.RetryBackoff = 0
	o.CheckLevel = ""
	if o.PrefetcherKind == prefetch.DefaultName {
		o.PrefetcherKind = ""
	}
	if o.Codec == codec.DefaultName {
		// The explicit default codec is the same simulation as "".
		o.Codec = ""
	}
	if !o.DecompressionSet {
		o.DecompressionCycles = 0
	}
	return o
}

// canonicalKey builds the scheduler's cache key for one request.
func canonicalKey(bench string, m Mechanisms, o Options) pointKey {
	return pointKey{bench: bench, mech: m, opts: canonicalOpts(o)}
}

// keyData is the JSON shape of a point's string identity: the record
// header minus the point payload, in fixed field order.
type keyData struct {
	Benchmark  string     `json:"benchmark"`
	Mechanisms Mechanisms `json:"mechanisms"`
	Options    Options    `json:"options"`
}

// PointKey returns the canonical string identity of one data point —
// the content address under which the result store files its record.
// Two requests get the same key if and only if they land on the same
// scheduler cache entry (pinned by the drift-guard test).
func PointKey(bench string, m Mechanisms, o Options) string {
	b, err := json.Marshal(keyData{Benchmark: bench, Mechanisms: m, Options: canonicalOpts(o)})
	if err != nil {
		// Options and Mechanisms are plain scalar structs; Marshal cannot
		// fail on them short of a programming error.
		panic(fmt.Sprintf("core: PointKey marshal: %v", err))
	}
	return string(b)
}

// PointRecord is the canonical serialized form of one finished data
// point: its full identity plus the Point itself. The checkpoint file,
// the shared result store and the fleet protocol all carry this shape,
// and every numeric field round-trips exactly through encoding/json
// (shortest-form float encoding), which preserves the determinism
// contract across process boundaries.
type PointRecord struct {
	Benchmark  string     `json:"benchmark"`
	Mechanisms Mechanisms `json:"mechanisms"`
	Options    Options    `json:"options"` // canonical form
	Point      Point      `json:"point"`
}

// NewPointRecord assembles the record for a finished point,
// canonicalizing the options so the stored identity matches the key.
func NewPointRecord(bench string, m Mechanisms, o Options, p Point) PointRecord {
	return PointRecord{Benchmark: bench, Mechanisms: m, Options: canonicalOpts(o), Point: p}
}

// Key returns the record's content address.
func (r PointRecord) Key() string {
	return PointKey(r.Benchmark, r.Mechanisms, r.Options)
}

// Validate rejects records that could not have been produced by a
// healthy run: a non-canonical option set (the stored identity would
// disagree with its own key), a seed count that does not match the
// options, or a missing benchmark. Restores must never trust a record
// that fails this.
func (r PointRecord) Validate() error {
	if r.Benchmark == "" {
		return fmt.Errorf("core: point record missing benchmark")
	}
	if r.Options != canonicalOpts(r.Options) {
		return fmt.Errorf("core: point record options are not canonical")
	}
	if r.Options.Seeds < 1 || len(r.Point.Runs) != r.Options.Seeds {
		return fmt.Errorf("core: point record has %d runs for %d seeds", len(r.Point.Runs), r.Options.Seeds)
	}
	return nil
}
