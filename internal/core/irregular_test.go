package core

import (
	"reflect"
	"testing"

	"cmpsim/internal/prefetch"
	"cmpsim/internal/workload"
)

// TestIrregularStudyDeterministicAcrossShards pins the irregular study's
// reproducibility contract: the full (benchmark × prefetcher) grid over
// the linked-data-structure suite is bit-identical whether reference
// generation runs serially or on 4 shard goroutines. Each run uses an
// isolated scheduler — the shared one would serve the second run from
// its point cache and the comparison would prove nothing.
func TestIrregularStudyDeterministicAcrossShards(t *testing.T) {
	benches := IrregularBenchmarks()
	if want := workload.IrregularOrder(); !reflect.DeepEqual(benches, want) {
		t.Fatalf("IrregularBenchmarks() = %v, want %v", benches, want)
	}
	// One benchmark per structural family keeps the grid affordable while
	// still covering the chase, probe and phased generators under every
	// registered engine.
	subset := []string{"ptrchase", "srvmix"}
	o := tinyOptions()
	o.Seeds = 1
	run := func(shards int) []IrregularRow {
		os := o
		os.Shards = shards
		return NewScheduler(2).IrregularStudy(subset, os)
	}
	serial := run(1)
	if want := len(subset) * len(prefetch.Names()); len(serial) != want {
		t.Fatalf("got %d rows, want %d", len(serial), want)
	}
	for _, r := range serial {
		if r.Failed != "" {
			t.Fatalf("row %s/%s failed: %s", r.Benchmark, r.Prefetcher, r.Failed)
		}
	}
	if sharded := run(4); !reflect.DeepEqual(sharded, serial) {
		t.Fatalf("shards=4 rows differ from serial:\n got %+v\nwant %+v", sharded, serial)
	}
}

// TestIrregularStudySharesEngineIndependentPoints verifies the cache
// economics the study is built on: Base and Compression are submitted
// with the request's unmodified options, so an engine sweep over N
// kinds simulates them once — provided the default kind and "" land on
// the same canonical point key. Pin both halves: default-vs-"" aliases,
// and a non-default engine really is a distinct point.
func TestIrregularStudySharesEngineIndependentPoints(t *testing.T) {
	o := tinyOptions()
	def := o
	def.PrefetcherKind = prefetch.DefaultName
	if PointKey("ptrchase", Base, o) != PointKey("ptrchase", Base, def) {
		t.Error("default prefetcher kind and \"\" map to different base points")
	}
	mk := o
	mk.PrefetcherKind = "markov"
	if PointKey("ptrchase", Prefetch, o) == PointKey("ptrchase", Prefetch, mk) {
		t.Error("Prefetch point key ignores PrefetcherKind; engines would share one result")
	}
}

// TestCanonicalOptionsConsultRegistries pins satellite-proofing for the
// alias rules: the default prefetcher and codec names alias to "" via
// the registries' DefaultName constants (not string literals), and
// RefSource is identity-bearing with no alias — "" means each profile's
// own kind, which differs from forcing "strided" on an irregular bench.
func TestCanonicalOptionsConsultRegistries(t *testing.T) {
	o := tinyOptions()
	o.PrefetcherKind = prefetch.DefaultName
	if got := CanonicalOptions(o).PrefetcherKind; got != "" {
		t.Errorf("default prefetcher kind canonicalized to %q, want \"\"", got)
	}
	o.PrefetcherKind = "markov"
	if got := CanonicalOptions(o).PrefetcherKind; got != "markov" {
		t.Errorf("non-default prefetcher kind canonicalized to %q", got)
	}
	o.RefSource = workload.DefaultSource
	if got := CanonicalOptions(o).RefSource; got != workload.DefaultSource {
		t.Errorf("RefSource %q aliased to %q; \"strided\" is not the same simulation as \"\"",
			workload.DefaultSource, got)
	}
}
