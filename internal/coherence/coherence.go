// Package coherence implements the on-chip memory hierarchy of the
// paper's baseline CMP: per-core private write-back L1 instruction and
// data caches kept coherent with an inclusive shared L2 by an MSI
// protocol. The L2 holds full knowledge of on-chip L1 sharers via
// per-line sharer bits; L1s communicate with memory only through the
// shared L2.
//
// The hierarchy is a functional state machine: Access, PrefetchL1 and
// PrefetchL2 mutate cache state and return an AccessResult describing
// every event the timing model needs to price (hit levels, decompression
// penalties, coherence invalidations, dirty forwards, memory fetches and
// writebacks) and every event the adaptive prefetcher consumes (useful,
// useless and harmful prefetch detections).
package coherence

import (
	"fmt"

	"cmpsim/internal/cache"
)

// Kind distinguishes the three demand access types.
type Kind uint8

// Access kinds.
const (
	Load Kind = iota
	Store
	IFetch
)

// String returns the access kind name.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case IFetch:
		return "ifetch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// PfSource identifies which prefetcher brought a line into a cache, for
// per-prefetcher coverage/accuracy accounting (paper Table 4).
type PfSource uint8

// Prefetch sources stored in cache.Line.PfBy.
const (
	PfNone PfSource = iota
	PfL1I
	PfL1D
	PfL2
)

// String returns the prefetcher name.
func (p PfSource) String() string {
	switch p {
	case PfNone:
		return "none"
	case PfL1I:
		return "L1I"
	case PfL1D:
		return "L1D"
	case PfL2:
		return "L2"
	default:
		return fmt.Sprintf("pf(%d)", uint8(p))
	}
}

// SizeFunc reports the current FPC-compressed size of a block in
// segments (1..8). The simulation engine derives it from the workload's
// data model; an always-8 function models incompressible data.
type SizeFunc func(cache.BlockAddr) uint8

// Config sizes the hierarchy.
type Config struct {
	Cores     int
	L1Bytes   int // per L1 (I and D separately)
	L1Ways    int
	L2        cache.L2
	Size      SizeFunc
	L1Victims int // victim tags per L1 set (0: no harmful detection at L1)
}

// AccessResult reports everything one demand access did. Slice fields
// alias buffers owned by the Hierarchy and are valid until the next call.
type AccessResult struct {
	L1Hit bool
	L2Hit bool

	// Prefetch-bit events (adaptive prefetcher inputs).
	L1PrefetchHit  bool     // L1 hit consumed a prefetch bit
	L1PfBy         PfSource // which prefetcher had brought that line
	L2PrefetchHit  bool
	L2PfBy         PfSource
	L1UselessEvict int // L1 victims evicted with prefetch bit set
	L2UselessEvict int
	L1Harmful      bool // miss matched an L1 victim tag with pf lines in set
	L2Harmful      bool // miss matched an L2 invalid/victim tag likewise

	// Timing inputs.
	L2CompressedHit bool  // decompression penalty applies
	StoreUpgrade    bool  // store to a line shared by other L1s
	DirtyForward    bool  // data supplied by another core's modified L1
	MemFetch        bool  // line fetched from off-chip memory
	FetchSegs       uint8 // FPC size of the fetched line (link compression)
	Invalidations   int   // L1 copies invalidated by coherence actions

	// Off-chip writebacks triggered by this access (dirty L2 victims).
	// Each entry is the victim's block address; the link layer computes
	// its transfer size.
	Writebacks []cache.BlockAddr

	// L1 writeback of a dirty victim into the L2 (on-chip traffic only,
	// but it can resize a compressed L2 line and evict).
	L1DirtyVictim bool
}

// PrefetchOutcome reports what a prefetch fill did.
type PrefetchOutcome struct {
	// AlreadyPresent: the target cache already held the line; the
	// prefetch was redundant and nothing was transferred.
	AlreadyPresent bool
	MemFetch       bool
	FetchSegs      uint8
	L2Hit          bool // L1 prefetch satisfied by the shared L2
	L2Compressed   bool
	// L2PrefetchHit: the L1 prefetch consumed an L2 line's prefetch bit
	// (the L2 prefetcher's work was useful — it staged the line on chip).
	L2PrefetchHit  bool
	L2PfBy         PfSource
	Writebacks     []cache.BlockAddr
	L2UselessEvict int
	L1UselessEvict int
	Invalidations  int
}

// Hierarchy is the coherent two-level cache system.
type Hierarchy struct {
	cfg  Config
	L1I  []*cache.SetAssoc
	L1D  []*cache.SetAssoc
	L2   cache.L2
	size SizeFunc

	vbuf []cache.Line      // scratch victim buffer
	wbuf []cache.BlockAddr // scratch writeback buffer

	// OnL2Size, when non-nil, observes every L2 fill and resize with the
	// stored segment count (audit support: the shadow checker records
	// and verifies sizes at the only sites allowed to change them).
	OnL2Size func(a cache.BlockAddr, segs uint8)

	// Protocol event counters.
	StoreUpgrades  uint64
	DirtyForwards  uint64
	InclusionInval uint64
	CoherenceInval uint64
	L2Writebacks   uint64
	L1Writebacks   uint64
}

// New builds a hierarchy; cfg.L2 and cfg.Size must be set.
func New(cfg Config) *Hierarchy {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		panic("coherence: cores must be in 1..32")
	}
	if cfg.L2 == nil || cfg.Size == nil {
		panic("coherence: L2 and Size are required")
	}
	h := &Hierarchy{cfg: cfg, L2: cfg.L2, size: cfg.Size}
	for c := 0; c < cfg.Cores; c++ {
		h.L1I = append(h.L1I, cache.NewSetAssoc(cfg.L1Bytes, cfg.L1Ways, cfg.L1Victims))
		h.L1D = append(h.L1D, cache.NewSetAssoc(cfg.L1Bytes, cfg.L1Ways, cfg.L1Victims))
	}
	return h
}

// Cores returns the configured core count.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// l1For selects core c's L1 for the access kind.
func (h *Hierarchy) l1For(core int, kind Kind) *cache.SetAssoc {
	if kind == IFetch {
		return h.L1I[core]
	}
	return h.L1D[core]
}

// FastHit retires the common demand access — an L1 hit whose line has
// no pending prefetch bit and, for stores, is already in M state — in
// one step: stats and LRU promotion only, no AccessResult, no L2 walk,
// no directory traffic. It returns false without side effects whenever
// the full Access path is required (miss, prefetch-bit consumption,
// store upgrade); the caller must then run Access, which repeats the
// lookup. The hierarchy state and statistics after a successful FastHit
// are bit-identical to what Access would have produced.
func (h *Hierarchy) FastHit(core int, kind Kind, a cache.BlockAddr) bool {
	return h.l1For(core, kind).FastHit(a, kind == Store)
}

// Access performs a demand access by core for kind at block a and
// returns the full event record. The line ends up in the issuing L1
// (MRU) and in the L2 (inclusion).
func (h *Hierarchy) Access(core int, kind Kind, a cache.BlockAddr) AccessResult {
	var r AccessResult
	h.wbuf = h.wbuf[:0]
	l1 := h.l1For(core, kind)

	if ln, wasPf, ok := l1.Access(a); ok {
		r.L1Hit = true
		if wasPf {
			r.L1PrefetchHit = true
			r.L1PfBy = PfSource(ln.PfBy)
			// The prefetch proved useful: clear the inclusion copy's
			// bit too so its later L2 eviction is not miscounted as a
			// useless prefetch.
			if l2ln := h.L2.Lookup(a); l2ln != nil {
				l2ln.Prefetch = false
			}
		}
		if kind == Store && !ln.Dirty {
			// Upgrade: invalidate other sharers through the L2 directory.
			r.StoreUpgrade = true
			h.StoreUpgrades++
			r.Invalidations += h.invalidateOtherSharers(core, a)
			ln.Dirty = true
			if l2ln := h.L2.Lookup(a); l2ln != nil {
				l2ln.Owner = int8(core)
			}
		}
		r.Writebacks = h.wbuf
		return r
	}

	// L1 miss: harmful-prefetch detection at the L1 (victim tags), then
	// go to the shared L2.
	if l1.VictimTagMatch(a) && l1.AnyPrefetchInSet(a) {
		r.L1Harmful = true
	}

	l2ln, wasPf, compressed, ok := h.L2.Access(a)
	if ok {
		r.L2Hit = true
		r.L2CompressedHit = compressed
		if wasPf {
			r.L2PrefetchHit = true
			r.L2PfBy = PfSource(l2ln.PfBy)
		}
		// If another core holds the line modified, it must supply the
		// data (writeback to L2) before we proceed.
		if l2ln.Owner >= 0 && int(l2ln.Owner) != core {
			r.DirtyForward = true
			h.DirtyForwards++
			owner := int(l2ln.Owner)
			if oln := h.L1D[owner].Lookup(a); oln != nil {
				oln.Dirty = false
			}
			l2ln.Dirty = true
			l2ln.Owner = -1
		}
	} else {
		// L2 miss: harmful-prefetch detection via the extra tags, then
		// fetch from memory and fill the L2.
		if h.L2.VictimMatch(a) && h.L2.AnyPrefetchInSet(a) {
			r.L2Harmful = true
		}
		r.MemFetch = true
		r.FetchSegs = h.clampSegs(h.size(a))
		segs := r.FetchSegs
		if !h.L2.StoresCompressed() {
			segs = cache.MaxSegs
		}
		h.vbuf = h.vbuf[:0]
		victims, inserted := h.L2.Fill(a, segs, false, h.vbuf)
		h.vbuf = victims // keep the grown backing array for reuse
		h.noteL2Size(a, segs)
		h.handleL2Victims(victims, &r)
		l2ln = inserted
	}

	// Coherence action for the requester.
	if kind == Store {
		r.Invalidations += h.invalidateOtherSharersLine(l2ln, core, a)
		l2ln.Owner = int8(core)
	}
	h.addSharer(l2ln, core, kind)

	// Fill the L1; a dirty victim is written back into the L2.
	h.fillL1(l1, core, kind, a, false, PfNone, &r)
	r.Writebacks = h.wbuf
	return r
}

// clampSegs bounds a SizeFunc result to the legal 1..8 range.
func (h *Hierarchy) clampSegs(s uint8) uint8 {
	if s < 1 {
		return 1
	}
	if s > cache.MaxSegs {
		return cache.MaxSegs
	}
	return s
}

// addSharer records core in the L2 line's sharer bits.
func (h *Hierarchy) addSharer(ln *cache.Line, core int, kind Kind) {
	if ln == nil {
		return
	}
	if kind == IFetch {
		ln.ISharers |= 1 << uint(core)
	} else {
		ln.Sharers |= 1 << uint(core)
	}
}

// invalidateOtherSharers invalidates every other core's L1D copy of a,
// using the L2 directory bits. Returns the number of invalidations.
func (h *Hierarchy) invalidateOtherSharers(core int, a cache.BlockAddr) int {
	ln := h.L2.Lookup(a)
	return h.invalidateOtherSharersLine(ln, core, a)
}

func (h *Hierarchy) invalidateOtherSharersLine(ln *cache.Line, core int, a cache.BlockAddr) int {
	if ln == nil {
		return 0
	}
	n := 0
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core {
			continue
		}
		if ln.Sharers&(1<<uint(c)) != 0 {
			if old := h.L1D[c].Invalidate(a); old.Valid {
				n++
				h.CoherenceInval++
				if old.Dirty {
					// The remote M copy's data comes back to the L2.
					ln.Dirty = true
				}
			}
			ln.Sharers &^= 1 << uint(c)
		}
	}
	if ln.Owner >= 0 && int(ln.Owner) != core {
		ln.Owner = -1
	}
	return n
}

// fillL1 inserts a into core's L1 for kind, handling the dirty victim
// writeback into the L2 (with recompression/resize) and sharer-bit
// bookkeeping for the replaced line.
func (h *Hierarchy) fillL1(l1 *cache.SetAssoc, core int, kind Kind, a cache.BlockAddr, prefetch bool, by PfSource, r *AccessResult) {
	victim, inserted := l1.Fill(a, prefetch)
	inserted.PfBy = uint8(by)
	if kind == Store && !prefetch {
		inserted.Dirty = true
	}
	if !victim.Valid {
		return
	}
	if victim.Prefetch {
		r.L1UselessEvict++
	}
	// Non-silent eviction: clear the sharer bit; write dirty data back.
	if l2ln := h.L2.Lookup(victim.Addr); l2ln != nil {
		if kind == IFetch {
			l2ln.ISharers &^= 1 << uint(core)
		} else {
			l2ln.Sharers &^= 1 << uint(core)
		}
		if victim.Dirty {
			h.L1Writebacks++
			r.L1DirtyVictim = true
			l2ln.Dirty = true
			if int8(core) == l2ln.Owner {
				l2ln.Owner = -1
			}
			if h.L2.StoresCompressed() {
				// Recompress: the stored size tracks current contents.
				segs := h.clampSegs(h.size(victim.Addr))
				h.vbuf = h.vbuf[:0]
				victims, _ := h.L2.Resize(victim.Addr, segs, h.vbuf)
				h.vbuf = victims
				h.noteL2Size(victim.Addr, segs)
				h.handleL2Victims(victims, r)
			}
		}
	} else if victim.Dirty {
		// Inclusion guarantees the L2 holds every L1 line; a missing
		// dirty victim indicates a protocol bug.
		panic(fmt.Sprintf("coherence: dirty L1 victim %#x absent from L2", uint64(victim.Addr)))
	}
}

// handleL2Victims processes L2 evictions: inclusion invalidations of L1
// copies (retrieving modified data), useless-prefetch accounting and
// dirty writebacks to memory.
func (h *Hierarchy) handleL2Victims(victims []cache.Line, r *AccessResult) {
	for i := range victims {
		v := &victims[i]
		dirty := v.Dirty
		if v.Prefetch {
			r.L2UselessEvict++
		}
		// Inclusion: invalidate every L1 copy.
		for c := 0; c < h.cfg.Cores; c++ {
			if v.Sharers&(1<<uint(c)) != 0 {
				if old := h.L1D[c].Invalidate(v.Addr); old.Valid {
					h.InclusionInval++
					r.Invalidations++
					if old.Dirty {
						dirty = true
					}
				}
			}
			if v.ISharers&(1<<uint(c)) != 0 {
				if old := h.L1I[c].Invalidate(v.Addr); old.Valid {
					h.InclusionInval++
					r.Invalidations++
				}
			}
		}
		if dirty {
			h.L2Writebacks++
			h.wbuf = append(h.wbuf, v.Addr)
		}
	}
}

// PrefetchL1 fetches a into core's L1 (I or D per kind) on behalf of the
// L1 prefetcher, filling the L2 first if needed (inclusion). The line's
// prefetch bit is set in both levels.
func (h *Hierarchy) PrefetchL1(core int, kind Kind, a cache.BlockAddr, by PfSource) PrefetchOutcome {
	var out PrefetchOutcome
	h.wbuf = h.wbuf[:0]
	l1 := h.l1For(core, kind)
	if l1.Lookup(a) != nil {
		out.AlreadyPresent = true
		return out
	}
	var r AccessResult
	var l2ln *cache.Line
	if h.L2.Touch(a) {
		// Touch reorders the set, so look the line up afterwards.
		l2ln = h.L2.Lookup(a)
		out.L2Hit = true
		out.L2Compressed = l2ln.Segs < cache.MaxSegs
		if l2ln.Prefetch {
			l2ln.Prefetch = false
			out.L2PrefetchHit = true
			out.L2PfBy = PfSource(l2ln.PfBy)
			h.L2.BaseStats().PrefetchHits++
		}
		// A modified copy in another L1 stays put: prefetching does not
		// steal ownership; skip the prefetch instead (conservative).
		if l2ln.Owner >= 0 && int(l2ln.Owner) != core {
			out.AlreadyPresent = true
			return out
		}
	} else {
		out.MemFetch = true
		out.FetchSegs = h.clampSegs(h.size(a))
		segs := out.FetchSegs
		if !h.L2.StoresCompressed() {
			segs = cache.MaxSegs
		}
		h.vbuf = h.vbuf[:0]
		victims, inserted := h.L2.Fill(a, segs, true, h.vbuf)
		h.vbuf = victims
		inserted.PfBy = uint8(by)
		h.noteL2Size(a, segs)
		h.handleL2Victims(victims, &r)
		l2ln = inserted
	}
	h.addSharer(l2ln, core, kind)
	h.fillL1(l1, core, kind, a, true, by, &r)
	out.Writebacks = h.wbuf
	out.L2UselessEvict = r.L2UselessEvict
	out.L1UselessEvict = r.L1UselessEvict
	out.Invalidations = r.Invalidations
	return out
}

// PrefetchL2 fetches a into the shared L2 on behalf of core's L2
// prefetcher. No L1 is filled.
func (h *Hierarchy) PrefetchL2(core int, a cache.BlockAddr, by PfSource) PrefetchOutcome {
	var out PrefetchOutcome
	h.wbuf = h.wbuf[:0]
	if h.L2.Lookup(a) != nil {
		out.AlreadyPresent = true
		return out
	}
	out.MemFetch = true
	out.FetchSegs = h.clampSegs(h.size(a))
	segs := out.FetchSegs
	if !h.L2.StoresCompressed() {
		segs = cache.MaxSegs
	}
	var r AccessResult
	h.vbuf = h.vbuf[:0]
	victims, inserted := h.L2.Fill(a, segs, true, h.vbuf)
	h.vbuf = victims
	inserted.PfBy = uint8(by)
	h.noteL2Size(a, segs)
	h.handleL2Victims(victims, &r)
	out.Writebacks = h.wbuf
	out.L2UselessEvict = r.L2UselessEvict
	out.Invalidations = r.Invalidations
	return out
}

// noteL2Size reports an L2 fill/resize to the audit observer, if any.
func (h *Hierarchy) noteL2Size(a cache.BlockAddr, segs uint8) {
	if h.OnL2Size != nil {
		h.OnL2Size(a, segs)
	}
}

// AuditMSI verifies the full MSI directory state in both directions
// (audit support): inclusion (every L1 line resident in L2 with its
// sharer bit set), sharer bits pointing only at caches that hold the
// line, bitmasks within the configured core count, and ownership (an
// owning core exists, holds the line modified in its L1D, and no other
// L1D copy is modified). It returns the first violation, or "".
func (h *Hierarchy) AuditMSI() string {
	if bad := h.CheckInclusion(); bad != "" {
		return bad
	}
	if bad := h.CheckSharerBits(); bad != "" {
		return bad
	}
	// L1I residency must likewise be covered by ISharers.
	for c := 0; c < h.cfg.Cores; c++ {
		var bad string
		core := c
		h.L1I[c].ForEachValid(func(ln *cache.Line) {
			if bad != "" {
				return
			}
			l2ln := h.L2.Lookup(ln.Addr)
			if l2ln == nil || l2ln.ISharers&(1<<uint(core)) == 0 {
				bad = fmt.Sprintf("L1I[%d] holds %#x without isharer bit", core, uint64(ln.Addr))
			}
		})
		if bad != "" {
			return bad
		}
	}
	mask := uint32(1)<<uint(h.cfg.Cores) - 1
	var bad string
	h.L2.ForEachValid(func(ln *cache.Line) {
		if bad != "" {
			return
		}
		switch {
		case ln.Sharers&^mask != 0:
			bad = fmt.Sprintf("L2 line %#x has sharer bits %#x beyond %d cores", uint64(ln.Addr), ln.Sharers, h.cfg.Cores)
		case ln.ISharers&^mask != 0:
			bad = fmt.Sprintf("L2 line %#x has isharer bits %#x beyond %d cores", uint64(ln.Addr), ln.ISharers, h.cfg.Cores)
		case ln.Owner < -1 || int(ln.Owner) >= h.cfg.Cores:
			bad = fmt.Sprintf("L2 line %#x has owner %d beyond %d cores", uint64(ln.Addr), ln.Owner, h.cfg.Cores)
		}
		if bad != "" {
			return
		}
		dirtyCopies := 0
		for c := 0; c < h.cfg.Cores; c++ {
			dBit := ln.Sharers&(1<<uint(c)) != 0
			iBit := ln.ISharers&(1<<uint(c)) != 0
			dln := h.L1D[c].Lookup(ln.Addr)
			if dBit && dln == nil {
				bad = fmt.Sprintf("L2 line %#x has sharer bit for core %d but L1D misses it", uint64(ln.Addr), c)
				return
			}
			if iBit && h.L1I[c].Lookup(ln.Addr) == nil {
				bad = fmt.Sprintf("L2 line %#x has isharer bit for core %d but L1I misses it", uint64(ln.Addr), c)
				return
			}
			if dln != nil && dln.Dirty {
				dirtyCopies++
				if int(ln.Owner) != c {
					bad = fmt.Sprintf("L1D[%d] holds %#x modified but L2 owner is %d", c, uint64(ln.Addr), ln.Owner)
					return
				}
			}
		}
		if dirtyCopies > 1 {
			bad = fmt.Sprintf("L2 line %#x has %d modified L1 copies", uint64(ln.Addr), dirtyCopies)
			return
		}
		if ln.Owner >= 0 {
			dln := h.L1D[ln.Owner].Lookup(ln.Addr)
			if dln == nil || !dln.Dirty {
				bad = fmt.Sprintf("L2 line %#x owned by core %d whose L1D copy is %s", uint64(ln.Addr), ln.Owner,
					map[bool]string{true: "clean", false: "absent"}[dln != nil])
			}
		}
	})
	return bad
}

// CheckInclusion verifies that every valid L1 line is present in the L2
// (test support). It returns a description of the first violation, or "".
func (h *Hierarchy) CheckInclusion() string {
	var bad string
	check := func(which string, core int, c *cache.SetAssoc) {
		c.ForEachValid(func(ln *cache.Line) {
			if bad == "" && h.L2.Lookup(ln.Addr) == nil {
				bad = fmt.Sprintf("%s[%d] line %#x not in L2", which, core, uint64(ln.Addr))
			}
		})
	}
	for c := 0; c < h.cfg.Cores; c++ {
		check("L1I", c, h.L1I[c])
		check("L1D", c, h.L1D[c])
	}
	return bad
}

// CheckSharerBits verifies that L2 sharer bits exactly match L1 contents
// (test support). Returns the first violation, or "".
func (h *Hierarchy) CheckSharerBits() string {
	var bad string
	for c := 0; c < h.cfg.Cores && bad == ""; c++ {
		core := c
		h.L1D[c].ForEachValid(func(ln *cache.Line) {
			if bad != "" {
				return
			}
			l2ln := h.L2.Lookup(ln.Addr)
			if l2ln == nil || l2ln.Sharers&(1<<uint(core)) == 0 {
				bad = fmt.Sprintf("L1D[%d] holds %#x without sharer bit", core, uint64(ln.Addr))
			}
		})
	}
	return bad
}
