package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cmpsim/internal/cache"
)

// newTestHierarchy builds a small hierarchy: 4 cores, 1 KB 2-way L1s,
// 16 KB L2. size controls compressed sizes (nil = incompressible).
func newTestHierarchy(t testing.TB, compressed bool, size SizeFunc) *Hierarchy {
	t.Helper()
	if size == nil {
		size = func(cache.BlockAddr) uint8 { return cache.MaxSegs }
	}
	var l2 cache.L2
	if compressed {
		l2 = cache.NewCompressedL2(16*1024, 8, 32)
	} else {
		l2 = cache.NewUncompressedL2(16*1024, 8, 4)
	}
	return New(Config{
		Cores:   4,
		L1Bytes: 1024,
		L1Ways:  2,
		L2:      l2,
		Size:    size,
	})
}

func TestColdMissGoesToMemory(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	r := h.Access(0, Load, 0x100)
	if r.L1Hit || r.L2Hit || !r.MemFetch {
		t.Fatalf("cold access: %+v", r)
	}
	if r.FetchSegs != cache.MaxSegs {
		t.Fatalf("fetch segs = %d", r.FetchSegs)
	}
}

func TestL1HitAfterFill(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(0, Load, 0x100)
	r := h.Access(0, Load, 0x100)
	if !r.L1Hit || r.MemFetch {
		t.Fatalf("second access: %+v", r)
	}
}

func TestL2HitFromAnotherCore(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(0, Load, 0x100)
	r := h.Access(1, Load, 0x100)
	if r.L1Hit || !r.L2Hit || r.MemFetch {
		t.Fatalf("cross-core access: %+v", r)
	}
	// Both cores are now sharers.
	ln := h.L2.Lookup(0x100)
	if ln.Sharers != 0b11 {
		t.Fatalf("sharers = %b", ln.Sharers)
	}
}

func TestStoreUpgradeInvalidatesSharers(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(0, Load, 0x100)
	h.Access(1, Load, 0x100)
	h.Access(2, Load, 0x100)
	r := h.Access(0, Store, 0x100)
	if !r.L1Hit || !r.StoreUpgrade {
		t.Fatalf("store upgrade: %+v", r)
	}
	if r.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", r.Invalidations)
	}
	if h.L1D[1].Lookup(0x100) != nil || h.L1D[2].Lookup(0x100) != nil {
		t.Fatal("other sharers must be invalidated")
	}
	ln := h.L2.Lookup(0x100)
	if ln.Owner != 0 {
		t.Fatalf("owner = %d, want 0", ln.Owner)
	}
	if msg := h.CheckSharerBits(); msg != "" {
		t.Fatal(msg)
	}
}

func TestDirtyForwardOnRemoteLoad(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(0, Store, 0x100) // core 0 holds M
	r := h.Access(1, Load, 0x100)
	if !r.L2Hit || !r.DirtyForward {
		t.Fatalf("remote load: %+v", r)
	}
	// Core 0's copy becomes clean; L2 holds the dirty data.
	if ln := h.L1D[0].Lookup(0x100); ln == nil || ln.Dirty {
		t.Fatal("owner's copy should be clean-shared now")
	}
	l2ln := h.L2.Lookup(0x100)
	if !l2ln.Dirty || l2ln.Owner != -1 {
		t.Fatalf("L2 line after forward: %+v", l2ln)
	}
}

func TestStoreMissInvalidatesRemoteOwner(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(0, Store, 0x100)
	r := h.Access(1, Store, 0x100)
	if !r.L2Hit || r.Invalidations != 1 {
		t.Fatalf("remote store: %+v", r)
	}
	if h.L1D[0].Lookup(0x100) != nil {
		t.Fatal("previous owner must be invalidated")
	}
	if ln := h.L2.Lookup(0x100); ln.Owner != 1 {
		t.Fatalf("owner = %d, want 1", ln.Owner)
	}
}

func TestDirtyL1VictimWritesBackToL2(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	// 1 KB 2-way L1: 8 sets. Blocks 0x100 and 0x100+8 and +16 map to the
	// same L1 set; two stores then a load evicts the first dirty line.
	h.Access(0, Store, 0x100)
	h.Access(0, Store, 0x108)
	r := h.Access(0, Load, 0x110) // evicts 0x100 (dirty)
	if !r.L1DirtyVictim {
		t.Fatalf("expected dirty L1 victim: %+v", r)
	}
	l2ln := h.L2.Lookup(0x100)
	if l2ln == nil || !l2ln.Dirty {
		t.Fatal("L2 should hold the written-back dirty data")
	}
	if l2ln.Sharers&1 != 0 {
		t.Fatal("evicted line must clear core 0's sharer bit")
	}
}

func TestInclusionInvalidatesL1OnL2Eviction(t *testing.T) {
	// Tiny L2 to force evictions: 4 KB uncompressed, 8-way = 8 sets.
	l2 := cache.NewUncompressedL2(4*1024, 8, 4)
	h := New(Config{Cores: 2, L1Bytes: 1024, L1Ways: 2, L2: l2,
		Size: func(cache.BlockAddr) uint8 { return cache.MaxSegs }})
	// Fill one L2 set (addresses congruent mod 8) beyond capacity.
	base := cache.BlockAddr(0)
	for i := 0; i < 8; i++ {
		h.Access(0, Load, base+cache.BlockAddr(i*8))
	}
	r := h.Access(0, Load, base+cache.BlockAddr(8*8))
	if !r.MemFetch {
		t.Fatalf("expected miss: %+v", r)
	}
	if msg := h.CheckInclusion(); msg != "" {
		t.Fatal(msg)
	}
}

func TestDirtyL2VictimGeneratesWriteback(t *testing.T) {
	l2 := cache.NewUncompressedL2(4*1024, 8, 4)
	h := New(Config{Cores: 1, L1Bytes: 1024, L1Ways: 2, L2: l2,
		Size: func(cache.BlockAddr) uint8 { return cache.MaxSegs }})
	h.Access(0, Store, 0)
	// Evict block 0's dirty line from its own L1 first so the data is in
	// the L2, then push 8 more blocks through the same L2 set.
	wrote := false
	for i := 1; i <= 9; i++ {
		r := h.Access(0, Load, cache.BlockAddr(i*8))
		for _, wb := range r.Writebacks {
			if wb == 0 {
				wrote = true
			}
		}
	}
	if !wrote {
		t.Fatal("dirty L2 victim 0 never written back to memory")
	}
}

func TestPrefetchL1SetsBitsBothLevels(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	out := h.PrefetchL1(0, Load, 0x200, PfL1D)
	if out.AlreadyPresent || !out.MemFetch {
		t.Fatalf("prefetch outcome: %+v", out)
	}
	if ln := h.L1D[0].Lookup(0x200); ln == nil || !ln.Prefetch || PfSource(ln.PfBy) != PfL1D {
		t.Fatal("L1 line should be marked prefetched by L1D")
	}
	if ln := h.L2.Lookup(0x200); ln == nil || !ln.Prefetch {
		t.Fatal("L2 line should be marked prefetched (inclusion fill)")
	}
	// First demand access consumes the bit and reports attribution.
	r := h.Access(0, Load, 0x200)
	if !r.L1Hit || !r.L1PrefetchHit || r.L1PfBy != PfL1D {
		t.Fatalf("demand after prefetch: %+v", r)
	}
}

func TestPrefetchL2OnlyFillsL2(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	out := h.PrefetchL2(0, 0x300, PfL2)
	if !out.MemFetch {
		t.Fatalf("outcome: %+v", out)
	}
	if h.L1D[0].Lookup(0x300) != nil {
		t.Fatal("L2 prefetch must not fill the L1")
	}
	ln := h.L2.Lookup(0x300)
	if ln == nil || !ln.Prefetch || PfSource(ln.PfBy) != PfL2 {
		t.Fatal("L2 line should be marked prefetched by L2")
	}
	r := h.Access(0, Load, 0x300)
	if !r.L2Hit || !r.L2PrefetchHit || r.L2PfBy != PfL2 {
		t.Fatalf("demand after L2 prefetch: %+v", r)
	}
}

func TestRedundantPrefetchReportsPresent(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(0, Load, 0x400)
	if out := h.PrefetchL1(0, Load, 0x400, PfL1D); !out.AlreadyPresent {
		t.Fatal("prefetch of resident line should be redundant")
	}
	if out := h.PrefetchL2(0, 0x400, PfL2); !out.AlreadyPresent {
		t.Fatal("L2 prefetch of resident line should be redundant")
	}
}

func TestPrefetchDoesNotStealModifiedLine(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(1, Store, 0x500) // core 1 owns M
	out := h.PrefetchL1(0, Load, 0x500, PfL1D)
	if !out.AlreadyPresent {
		t.Fatalf("prefetch should be skipped: %+v", out)
	}
	if ln := h.L1D[1].Lookup(0x500); ln == nil || !ln.Dirty {
		t.Fatal("owner's modified copy must be untouched")
	}
}

func TestCompressedL2UsesSizeFunc(t *testing.T) {
	size := func(a cache.BlockAddr) uint8 { return 2 }
	h := newTestHierarchy(t, true, size)
	r := h.Access(0, Load, 0x100)
	if !r.MemFetch || r.FetchSegs != 2 {
		t.Fatalf("fetch segs = %d, want 2", r.FetchSegs)
	}
	// Second core's access hits compressed in L2.
	r = h.Access(1, Load, 0x100)
	if !r.L2Hit || !r.L2CompressedHit {
		t.Fatalf("compressed hit: %+v", r)
	}
}

func TestDirtyWritebackResizesCompressedLine(t *testing.T) {
	sizes := map[cache.BlockAddr]uint8{}
	size := func(a cache.BlockAddr) uint8 {
		if s, ok := sizes[a]; ok {
			return s
		}
		return 2
	}
	h := newTestHierarchy(t, true, size)
	h.Access(0, Store, 0x100) // fetched at 2 segs
	sizes[0x100] = 7          // contents changed: now less compressible
	// Evict the dirty line from the L1 (same-set fills).
	h.Access(0, Store, 0x108)
	h.Access(0, Load, 0x110)
	ln := h.L2.Lookup(0x100)
	if ln == nil || ln.Segs != 7 {
		t.Fatalf("L2 line after writeback: %+v", ln)
	}
}

func TestHarmfulPrefetchDetection(t *testing.T) {
	// One-set compressed L2 (4 lines uncompressed); fill it, let a
	// prefetch evict a demand line, then miss on that line again.
	l2 := cache.NewCompressedL2(4*64, 8, 32)
	h := New(Config{Cores: 1, L1Bytes: 1024, L1Ways: 2, L2: l2,
		Size: func(cache.BlockAddr) uint8 { return cache.MaxSegs }})
	for i := 0; i < 4; i++ {
		h.Access(0, Load, cache.BlockAddr(i))
	}
	// Prefetch evicts LRU line 0 (all lines uncompressed: set full).
	h.PrefetchL2(0, 100, PfL2)
	// Demand miss on 0: invalid tag matches, prefetched line in set.
	r := h.Access(0, Load, 0)
	if !r.MemFetch || !r.L2Harmful {
		t.Fatalf("expected harmful-prefetch detection: %+v", r)
	}
}

func TestUselessPrefetchEvictDetection(t *testing.T) {
	l2 := cache.NewCompressedL2(4*64, 8, 32)
	h := New(Config{Cores: 1, L1Bytes: 1024, L1Ways: 2, L2: l2,
		Size: func(cache.BlockAddr) uint8 { return cache.MaxSegs }})
	h.PrefetchL2(0, 100, PfL2)
	// Fill the set with demand lines until the unused prefetch is evicted.
	useless := 0
	for i := 0; i < 8; i++ {
		r := h.Access(0, Load, cache.BlockAddr(i))
		useless += r.L2UselessEvict
	}
	if useless != 1 {
		t.Fatalf("useless evicts = %d, want 1", useless)
	}
}

func TestInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64, compressed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		size := func(a cache.BlockAddr) uint8 {
			return uint8(1 + (uint64(a)*2654435761)%8)
		}
		var l2 cache.L2
		if compressed {
			l2 = cache.NewCompressedL2(8*1024, 8, 32)
		} else {
			l2 = cache.NewUncompressedL2(8*1024, 8, 4)
		}
		h := New(Config{Cores: 4, L1Bytes: 512, L1Ways: 2, L2: l2, Size: size})
		for op := 0; op < 3000; op++ {
			core := rng.Intn(4)
			a := cache.BlockAddr(rng.Intn(512))
			switch rng.Intn(6) {
			case 0, 1, 2:
				h.Access(core, Load, a)
			case 3:
				h.Access(core, Store, a)
			case 4:
				h.PrefetchL1(core, Load, a, PfL1D)
			case 5:
				h.PrefetchL2(core, a, PfL2)
			}
		}
		if msg := h.CheckInclusion(); msg != "" {
			t.Log(msg)
			return false
		}
		if msg := h.CheckSharerBits(); msg != "" {
			t.Log(msg)
			return false
		}
		if cc, ok := l2.(cache.CompressedL2); ok {
			if msg := cc.CheckInvariants(); msg != "" {
				t.Log(msg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndPfSourceStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || IFetch.String() != "ifetch" {
		t.Fatal("kind strings")
	}
	if PfL1D.String() != "L1D" || PfNone.String() != "none" || PfL2.String() != "L2" || PfL1I.String() != "L1I" {
		t.Fatal("pf source strings")
	}
}

func TestIFetchUsesICache(t *testing.T) {
	h := newTestHierarchy(t, false, nil)
	h.Access(0, IFetch, 0x700)
	if h.L1I[0].Lookup(0x700) == nil {
		t.Fatal("ifetch should fill L1I")
	}
	if h.L1D[0].Lookup(0x700) != nil {
		t.Fatal("ifetch must not fill L1D")
	}
	ln := h.L2.Lookup(0x700)
	if ln.ISharers&1 == 0 || ln.Sharers != 0 {
		t.Fatalf("ifetch sharer bits: %+v", ln)
	}
}
