package sim

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
	"cmpsim/internal/timing"
)

// EngineMetrics reports one prefetcher class's Table 4 measures,
// aggregated over the cores.
type EngineMetrics struct {
	Prefetches   uint64 // issued (redundant drops excluded)
	Redundant    uint64 // dropped: line already present
	PrefetchHits uint64 // first demand reference to a prefetched block
	PartialHits  uint64 // demand arrived while the block was in flight
	DemandMisses uint64 // demand misses of the associated cache(s)
	StreamAllocs uint64
}

// RatePer1000 is prefetches per 1000 instructions (EQ 2).
func (e EngineMetrics) RatePer1000(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(e.Prefetches) * 1000 / float64(instructions)
}

// Coverage is EQ 3: PrefetchHits / (PrefetchHits + DemandMisses).
func (e EngineMetrics) Coverage() float64 {
	d := float64(e.PrefetchHits + e.DemandMisses)
	if d == 0 {
		return 0
	}
	return float64(e.PrefetchHits) / d
}

// Accuracy is EQ 4: PrefetchHits / TotalPrefetches.
func (e EngineMetrics) Accuracy() float64 {
	if e.Prefetches == 0 {
		return 0
	}
	return float64(e.PrefetchHits) / float64(e.Prefetches)
}

// AdaptiveMetrics aggregates the saturating-counter event streams and
// the controllers' final counter values (mean over cores for the L1s).
type AdaptiveMetrics struct {
	Useful  uint64
	Useless uint64
	Harmful uint64

	FinalCapL1I float64
	FinalCapL1D float64
	FinalCapL2  int
}

// Metrics is the result of one Run: every quantity the paper's
// evaluation reports, measured over the post-warmup window. This is
// the reporting boundary of the tick domain: all simulation time is
// integer timing.Tick internally and converts to float64 cycles
// exactly here (and in the interval telemetry), never the other way.
type Metrics struct {
	Benchmark string
	Label     string
	Cores     int
	Seed      int64

	// Work and time.
	Instructions uint64  // total over cores (measurement window)
	Cycles       float64 // runtime: max per-core elapsed cycles
	Seconds      float64
	IPC          float64 // aggregate instructions per cycle

	// Cache behaviour.
	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2Accesses, L2Misses   uint64
	L2MissRate             float64
	L2MissesPerKI          float64
	L2CompressedHits       uint64
	L2Evictions            uint64  // lines evicted from the L2
	L2UselessPfEvictions   uint64  // prefetched lines evicted unreferenced (Table 4 analysis)
	MeanL2HitLatency       float64 // includes decompression penalties

	// Compression.
	EffectiveL2Bytes float64 // time-averaged valid lines × 64
	CompressionRatio float64 // effective / physical

	// Off-chip traffic.
	OffChipBytes    uint64
	BandwidthGBps   float64 // paper's demand metric on infinite-BW runs
	LinkUtilization float64
	LinkQueueDelay  float64 // cycles messages waited for the pins (measurement window)
	DRAMQueueDelay  float64 // cycles requests waited on busy banks (measurement window)
	MemFetches      uint64
	MemWritebacks   uint64

	// Prefetching (indexed by coherence.PfSource: L1I, L1D, L2).
	Engines  [4]EngineMetrics
	Adaptive AdaptiveMetrics

	// Coherence activity.
	StoreUpgrades uint64
	DirtyForwards uint64
	Invalidations uint64

	// Per-block L2 demand-miss profile (nil unless requested).
	MissProfile map[cache.BlockAddr]uint32

	// Timeline holds one sample per TelemetryInterval aggregate
	// instructions of the measurement window (nil when disabled).
	Timeline []IntervalSample
}

// Engine returns the metrics for one prefetcher class.
func (m *Metrics) Engine(src coherence.PfSource) EngineMetrics { return m.Engines[src] }

// Runtime returns the measured runtime in cycles (convenience for the
// speedup computations).
func (m *Metrics) Runtime() float64 { return m.Cycles }

// totals is the flat counter snapshot used to compute measurement-window
// deltas (snapshot at measurement start, subtract at end). The windowing
// contract: no Metrics field may read a cumulative simulator counter
// directly — every reported quantity is a delta of two totals snapshots,
// so warmup activity can never leak into reported numbers. The interval
// telemetry reuses the same snapshots at a finer grain.
type totals struct {
	instr uint64

	l1iAcc, l1iMiss    uint64
	l1dAcc, l1dMiss    uint64
	l2Acc, l2Miss      uint64
	l2ComprHits        uint64
	l2Evict, l2Useless uint64

	memFetches, memWritebacks uint64
	linkBytes                 uint64
	linkBusy                  timing.Tick
	linkQDelay                timing.Tick // data-channel queueing (was read cumulatively pre-fix)
	dramQDelay                timing.Tick // DRAM bank queueing (was read cumulatively pre-fix)

	effSizeSum uint64 // effective-L2-size accumulator (bytes × samples)
	effSizeN   uint64
	hitLatSum  timing.Tick // L2 hit latency accumulator (ticks × hits)
	hitLatN    uint64

	pfIssued, pfHits, pfPartial, pfRedundant, pfAllocs [4]uint64

	adUseful, adUseless, adHarmful uint64

	storeUpgrades, dirtyForwards, invals uint64
}

// sub returns t - o field-wise.
func (t totals) sub(o totals) totals {
	r := t
	r.instr -= o.instr
	r.l1iAcc -= o.l1iAcc
	r.l1iMiss -= o.l1iMiss
	r.l1dAcc -= o.l1dAcc
	r.l1dMiss -= o.l1dMiss
	r.l2Acc -= o.l2Acc
	r.l2Miss -= o.l2Miss
	r.l2ComprHits -= o.l2ComprHits
	r.l2Evict -= o.l2Evict
	r.l2Useless -= o.l2Useless
	r.memFetches -= o.memFetches
	r.memWritebacks -= o.memWritebacks
	r.linkBytes -= o.linkBytes
	r.linkBusy -= o.linkBusy
	r.linkQDelay -= o.linkQDelay
	r.dramQDelay -= o.dramQDelay
	r.effSizeSum -= o.effSizeSum
	r.effSizeN -= o.effSizeN
	r.hitLatSum -= o.hitLatSum
	r.hitLatN -= o.hitLatN
	for i := range r.pfIssued {
		r.pfIssued[i] -= o.pfIssued[i]
		r.pfHits[i] -= o.pfHits[i]
		r.pfPartial[i] -= o.pfPartial[i]
		r.pfRedundant[i] -= o.pfRedundant[i]
		r.pfAllocs[i] -= o.pfAllocs[i]
	}
	r.adUseful -= o.adUseful
	r.adUseless -= o.adUseless
	r.adHarmful -= o.adHarmful
	r.storeUpgrades -= o.storeUpgrades
	r.dirtyForwards -= o.dirtyForwards
	r.invals -= o.invals
	return r
}
