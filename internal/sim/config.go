// Package sim assembles the full CMP timing simulator: workload
// generators drive per-core sequencers (cpu.Core) whose memory
// references flow through the coherent cache hierarchy
// (coherence.Hierarchy over plain or compressed L2), the stride
// prefetch engines, and the off-chip memory system (memory.System).
// Shared resources — L2 banks, the pin link, DRAM banks — use
// busy-until reservation, so contention emerges from traffic.
//
// One Run produces a Metrics snapshot covering everything the paper's
// tables and figures report: runtime/IPC, miss rates, pin-bandwidth
// demand, compression ratios, per-prefetcher rate/coverage/accuracy,
// adaptive-event counts and (optionally) per-block miss profiles for
// the Figure 8 classification.
//
// Run is safe for concurrent use from multiple goroutines: every call
// assembles a private System (its own caches, RNGs, generators and
// counters) and shares no mutable package state, which is what lets
// internal/core's scheduler fan seed-level runs across a worker pool
// with bit-identical results to a serial sweep.
package sim

import (
	"fmt"

	"cmpsim/internal/audit"
	"cmpsim/internal/cache"
	"cmpsim/internal/codec"
	"cmpsim/internal/cpu"
	"cmpsim/internal/memory"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/timing"
	"cmpsim/internal/workload"
)

// Config describes one simulation run. NewConfig supplies the paper's
// Table 1 parameters; callers toggle the four mechanisms under study.
type Config struct {
	Benchmark string
	Cores     int
	Seed      int64

	// Run length, instructions per core.
	WarmupInstr  uint64
	MeasureInstr uint64

	// The four mechanisms under study.
	CacheCompression bool
	LinkCompression  bool
	Prefetching      bool
	AdaptivePrefetch bool

	// Prefetch-depth overrides for ablation studies (0 = the paper's
	// defaults: 6 startup prefetches for L1 engines, 25 for L2).
	L1PrefetchDepth int
	L2PrefetchDepth int

	// PrefetcherKind selects the engine from the internal/prefetch
	// registry: "" or "stride" is the paper's Power4-style prefetcher;
	// "sequential" is the tagged sequential baseline, "stream" the
	// Jouppi stream buffers, "markov" the miss-correlation table.
	PrefetcherKind string

	// RefSource overrides the reference-source kind for every core
	// (internal/workload source registry name). "" uses each profile's
	// own kind — the strided Generator for the paper's eight
	// benchmarks, the linked-structure walks for the irregular suite —
	// which is NOT the same as forcing "strided".
	RefSource string

	// Codec selects the line-compression scheme (internal/codec registry
	// name). "" or "fpc" is the paper's Frequent Pattern Compression;
	// the choice drives block sizing, knob calibration and the shadow
	// audit roundtrip. DecompressionCycles is NOT re-defaulted here —
	// internal/core applies the codec's default latency when the caller
	// did not override it.
	Codec string

	// L1 parameters (per core, I and D each).
	L1Bytes     int
	L1Ways      int
	L1HitCycles float64

	// Shared L2.
	L2Bytes             int
	L2Ways              int // uncompressed associativity
	L2TagsPerSet        int // compressed geometry
	L2SegsPerSet        int
	L2Banks             int
	L2HitCycles         float64
	DecompressionCycles float64
	L2BankOccupancy     float64
	// VictimTags per set for the adaptive prefetcher when cache
	// compression is off (the paper's "four extra tags per set").
	UncompressedVictimTags int

	// Off-chip memory.
	Memory memory.Config

	// Core.
	CPU      cpu.Config
	ClockGHz float64

	// CollectMissProfile records per-block L2 demand miss counts
	// (needed only for the Figure 8 classification; costs memory).
	CollectMissProfile bool

	// TelemetryInterval samples the full counter set every N aggregate
	// (all-core) instructions of the measurement window into
	// Metrics.Timeline. 0 disables sampling (Timeline stays nil).
	TelemetryInterval uint64

	// CheckLevel selects the runtime audit tier (internal/audit): Off,
	// Invariants (structural sweeps at event boundaries) or Shadow
	// (plus a functional reference model cross-checking every load and
	// compressed fill). NewConfig defaults it from CMPSIM_CHECK. The
	// audit is read-only: any level leaves metrics bit-identical.
	CheckLevel audit.Level
	// CheckInterval is the number of simulation steps between structural
	// audit sweeps (0 means the 65536 default). Sweeps also run at phase
	// boundaries and at run end.
	CheckInterval uint64
	// StateFault injects one deterministic state corruption, spelled
	// "name@step" (e.g. "flip-sharer@5000"); see StateFaultNames. Test
	// support: proves each auditor class fires. "" disables.
	StateFault string

	// Shards is the number of worker goroutines that pre-generate
	// reference batches (capped at Cores; 0 or 1 = generate inline on
	// the simulation goroutine). Sharding is scheduling-only: workers
	// run ahead only on core-private generator state, bounded by the
	// batch window, while the simulation goroutine consumes the streams
	// in the same serial min-clock order — metrics are bit-identical
	// for every shard count.
	Shards int
}

// NewConfig returns the paper's baseline system (Table 1) for a
// benchmark: 8 cores, 64 KB 4-way L1s (3-cycle), 4 MB 8-banked shared
// L2 (15-cycle, +5 decompression), 20 GB/s pins, 400-cycle DRAM, all
// mechanisms off.
func NewConfig(benchmark string) Config {
	return Config{
		Benchmark:    benchmark,
		Cores:        8,
		Seed:         1,
		WarmupInstr:  1_000_000,
		MeasureInstr: 500_000,

		L1Bytes:     64 * 1024,
		L1Ways:      4,
		L1HitCycles: 3,

		L2Bytes:                4 << 20,
		L2Ways:                 8,
		L2TagsPerSet:           cache.DefaultTagsPerSet,
		L2SegsPerSet:           cache.DefaultSegsPerSet,
		L2Banks:                8,
		L2HitCycles:            15,
		DecompressionCycles:    5,
		L2BankOccupancy:        4,
		UncompressedVictimTags: 4,

		Memory:   memory.DefaultConfig(),
		CPU:      cpu.DefaultConfig(),
		ClockGHz: 5.0,

		CheckLevel: audit.FromEnv(),
	}
}

// WithMechanisms returns a copy with the four toggles set: a compact
// helper for the experiment grids.
func (c Config) WithMechanisms(cacheCompr, linkCompr, pref, adaptive bool) Config {
	c.CacheCompression = cacheCompr
	c.LinkCompression = linkCompr
	c.Prefetching = pref
	c.AdaptivePrefetch = adaptive
	return c
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if _, err := workload.ByName(c.Benchmark); err != nil {
		return err
	}
	switch {
	case c.Cores < 1 || c.Cores > 32:
		return fmt.Errorf("sim: cores %d out of range", c.Cores)
	case c.MeasureInstr == 0:
		return fmt.Errorf("sim: MeasureInstr must be positive")
	case c.L1Bytes <= 0 || c.L1Ways <= 0:
		return fmt.Errorf("sim: invalid L1 geometry")
	case c.L1HitCycles <= 0:
		return fmt.Errorf("sim: L1 hit latency must be positive")
	case c.UncompressedVictimTags < 0:
		return fmt.Errorf("sim: UncompressedVictimTags must be non-negative")
	case c.L2Bytes <= 0 || c.L2Ways <= 0 || c.L2TagsPerSet <= 0 || c.L2SegsPerSet < 8:
		return fmt.Errorf("sim: invalid L2 geometry")
	case c.L2Banks <= 0:
		return fmt.Errorf("sim: L2 banks must be positive")
	case c.L2HitCycles <= 0 || c.DecompressionCycles < 0 || c.L2BankOccupancy < 0:
		return fmt.Errorf("sim: invalid L2 latencies")
	case c.ClockGHz <= 0:
		return fmt.Errorf("sim: clock must be positive")
	case c.AdaptivePrefetch && !c.Prefetching:
		return fmt.Errorf("sim: AdaptivePrefetch requires Prefetching")
	case !c.CheckLevel.Valid():
		return fmt.Errorf("sim: invalid CheckLevel %d", c.CheckLevel)
	case c.Shards < 0:
		return fmt.Errorf("sim: Shards must be non-negative")
	}
	// Kind names are validated against their registries, so new codecs,
	// prefetchers and reference sources cannot drift out of validation.
	if _, err := codec.ByName(c.Codec); err != nil {
		return err
	}
	if _, err := prefetch.ByName(c.PrefetcherKind); err != nil {
		return err
	}
	if _, err := workload.SourceByName(c.RefSource); err != nil {
		return err
	}
	// The decompression latency must be exactly representable in the
	// integer tick domain, or the priced latency would silently drift
	// from the configured (and reported) value. Any multiple of 2^-24
	// cycles passes, so whole, half and quarter cycles are all fine.
	if _, ok := timing.ExactCycles(c.DecompressionCycles); !ok {
		return fmt.Errorf("sim: DecompressionCycles %g is not representable in the tick domain (use a multiple of 2^-%d cycles)",
			c.DecompressionCycles, timing.SubCycleBits)
	}
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if c.StateFault != "" {
		if _, _, err := parseStateFault(c.StateFault); err != nil {
			return err
		}
	}
	return nil
}

// MechanismLabel names the active mechanism combination, matching the
// paper's figure legends. Every distinct combination gets a distinct
// label: the adaptive cases mirror the plain-prefetching taxonomy
// (adaptive-pf+compression keeps its historical name for the full
// combination; the partial-compression variants name which side is on).
func (c Config) MechanismLabel() string {
	switch {
	case c.AdaptivePrefetch && c.CacheCompression && c.LinkCompression:
		return "adaptive-pf+compression"
	case c.AdaptivePrefetch && c.CacheCompression:
		return "adaptive-pf+cache-compr"
	case c.AdaptivePrefetch && c.LinkCompression:
		return "adaptive-pf+link-compr"
	case c.AdaptivePrefetch:
		return "adaptive-pf"
	case c.Prefetching && c.CacheCompression && c.LinkCompression:
		return "pf+compression"
	case c.Prefetching && c.CacheCompression:
		return "pf+cache-compr"
	case c.Prefetching && c.LinkCompression:
		return "pf+link-compr"
	case c.Prefetching:
		return "pf"
	case c.CacheCompression && c.LinkCompression:
		return "compression"
	case c.CacheCompression:
		return "cache-compr"
	case c.LinkCompression:
		return "link-compr"
	default:
		return "base"
	}
}
