package sim

import (
	"math"
	"reflect"
	"testing"

	"cmpsim/internal/audit"
	"cmpsim/internal/coherence"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/workload"
)

// smallConfig is a scaled-down system that still exercises every
// mechanism: 4 cores, 512 KB L2, short runs.
func smallConfig(bench string) Config {
	cfg := NewConfig(bench)
	cfg.Cores = 4
	cfg.L2Bytes = 512 << 10
	cfg.WarmupInstr = 150_000
	cfg.MeasureInstr = 80_000
	return cfg
}

func run(t *testing.T, cfg Config) Metrics {
	t.Helper()
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunBasicSanity(t *testing.T) {
	m := run(t, smallConfig("zeus"))
	if m.Instructions < 4*80_000 {
		t.Fatalf("instructions = %d", m.Instructions)
	}
	if m.Cycles <= 0 || m.IPC <= 0 {
		t.Fatalf("cycles=%f ipc=%f", m.Cycles, m.IPC)
	}
	if m.L2Accesses == 0 || m.L2Misses == 0 {
		t.Fatalf("L2 accesses=%d misses=%d", m.L2Accesses, m.L2Misses)
	}
	if m.L2MissRate <= 0 || m.L2MissRate > 1 {
		t.Fatalf("miss rate %f", m.L2MissRate)
	}
	if m.OffChipBytes == 0 || m.BandwidthGBps <= 0 {
		t.Fatalf("bytes=%d bw=%f", m.OffChipBytes, m.BandwidthGBps)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := smallConfig("apache")
	cfg.Prefetching = true
	cfg.CacheCompression = true
	cfg.LinkCompression = true
	m1 := run(t, cfg)
	m2 := run(t, cfg)
	if m1.Cycles != m2.Cycles || m1.L2Misses != m2.L2Misses || m1.OffChipBytes != m2.OffChipBytes {
		t.Fatalf("non-deterministic: %v/%v cycles, %d/%d misses",
			m1.Cycles, m2.Cycles, m1.L2Misses, m2.L2Misses)
	}
}

func TestSeedsChangeResults(t *testing.T) {
	cfg := smallConfig("apache")
	m1 := run(t, cfg)
	cfg.Seed = 2
	m2 := run(t, cfg)
	if m1.Cycles == m2.Cycles && m1.L2Misses == m2.L2Misses {
		t.Fatal("different seeds gave identical results")
	}
}

func TestCompressionIncreasesEffectiveSize(t *testing.T) {
	cfg := smallConfig("jbb") // most compressible benchmark
	cfg.CacheCompression = true
	m := run(t, cfg)
	if m.CompressionRatio <= 1.05 {
		t.Fatalf("compression ratio %f should exceed 1.05 for jbb", m.CompressionRatio)
	}
	if m.L2CompressedHits == 0 {
		t.Fatal("no compressed hits recorded")
	}
	if m.MeanL2HitLatency <= cfg.L2HitCycles {
		t.Fatalf("mean hit latency %f should include decompression", m.MeanL2HitLatency)
	}
}

func TestBaseCacheHasRatioOne(t *testing.T) {
	cfg := smallConfig("jbb")
	m := run(t, cfg)
	if m.CompressionRatio > 1.001 {
		t.Fatalf("uncompressed cache ratio %f > 1", m.CompressionRatio)
	}
	if m.L2CompressedHits != 0 {
		t.Fatal("uncompressed cache reported compressed hits")
	}
}

func TestLinkCompressionReducesBytes(t *testing.T) {
	cfg := smallConfig("jbb")
	base := run(t, cfg)
	cfg.LinkCompression = true
	lc := run(t, cfg)
	// Same miss stream, fewer flits per message.
	if lc.OffChipBytes >= base.OffChipBytes {
		t.Fatalf("link compression did not reduce bytes: %d vs %d",
			lc.OffChipBytes, base.OffChipBytes)
	}
}

func TestSPECompDataBarelyCompresses(t *testing.T) {
	cfg := smallConfig("apsi")
	cfg.CacheCompression = true
	m := run(t, cfg)
	if m.CompressionRatio > 1.1 {
		t.Fatalf("apsi ratio %f should stay near 1", m.CompressionRatio)
	}
}

func TestPrefetchingIssuesAndHits(t *testing.T) {
	cfg := smallConfig("mgrid") // highly strided
	cfg.Prefetching = true
	m := run(t, cfg)
	l2 := m.Engine(coherence.PfL2)
	if l2.Prefetches == 0 || l2.PrefetchHits == 0 {
		t.Fatalf("L2 prefetcher idle: %+v", l2)
	}
	if l2.Accuracy() <= 0.3 {
		t.Fatalf("mgrid L2 accuracy %f too low", l2.Accuracy())
	}
	// At this scaled-down geometry coverage is modest; the full-scale
	// value is checked by the Table 4 calibration in EXPERIMENTS.md.
	if l2.Coverage() <= 0.08 {
		t.Fatalf("mgrid L2 coverage %f too low", l2.Coverage())
	}
	if d := m.Engine(coherence.PfL1D); d.Coverage() <= 0.3 {
		t.Fatalf("mgrid L1D coverage %f too low", d.Coverage())
	}
	// Prefetching must reduce demand misses vs the base run.
	base := run(t, smallConfig("mgrid"))
	if m.L2Misses >= base.L2Misses {
		t.Fatalf("prefetching did not reduce misses: %d vs %d", m.L2Misses, base.L2Misses)
	}
}

func TestPrefetchingOffMeansNoPrefetches(t *testing.T) {
	m := run(t, smallConfig("mgrid"))
	for src := 0; src < 4; src++ {
		if m.Engines[src].Prefetches != 0 {
			t.Fatalf("engine %d issued prefetches with prefetching off", src)
		}
	}
}

func TestAdaptiveThrottlesUselessPrefetching(t *testing.T) {
	// jbb's short streams make the deep L2 prefetcher inaccurate; the
	// adaptive controller must cut its issue rate.
	cfg := smallConfig("jbb")
	cfg.Prefetching = true
	pf := run(t, cfg)
	cfg.AdaptivePrefetch = true
	ad := run(t, cfg)
	pfRate := pf.Engine(coherence.PfL2).RatePer1000(pf.Instructions)
	adRate := ad.Engine(coherence.PfL2).RatePer1000(ad.Instructions)
	if adRate >= pfRate {
		t.Fatalf("adaptive L2 rate %f should be below non-adaptive %f", adRate, pfRate)
	}
	if ad.Adaptive.Useful == 0 || ad.Adaptive.Useless == 0 {
		t.Fatalf("adaptive events missing: %+v", ad.Adaptive)
	}
}

func TestInfiniteBandwidthFaster(t *testing.T) {
	cfg := smallConfig("fma3d") // bandwidth-bound
	finite := run(t, cfg)
	cfg.Memory.LinkBytesPerCycle = 0
	infinite := run(t, cfg)
	if infinite.Cycles >= finite.Cycles {
		t.Fatalf("infinite bandwidth not faster: %f vs %f", infinite.Cycles, finite.Cycles)
	}
	if finite.LinkQueueDelay == 0 {
		t.Fatal("finite-bandwidth run recorded no queueing")
	}
}

func TestMissProfileCollection(t *testing.T) {
	cfg := smallConfig("zeus")
	cfg.CollectMissProfile = true
	m := run(t, cfg)
	if len(m.MissProfile) == 0 {
		t.Fatal("miss profile empty")
	}
	var total uint64
	for _, n := range m.MissProfile {
		total += uint64(n)
	}
	if total == 0 || total > m.L2Misses+m.MemFetches {
		t.Fatalf("profile total %d inconsistent with misses %d", total, m.L2Misses)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"unknown benchmark", func(c *Config) { c.Benchmark = "nosuch" }},
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"too many cores", func(c *Config) { c.Cores = 99 }},
		{"zero measure window", func(c *Config) { c.MeasureInstr = 0 }},
		{"zero L1 size", func(c *Config) { c.L1Bytes = 0 }},
		{"zero L1 hit latency", func(c *Config) { c.L1HitCycles = 0 }},
		{"negative victim tags", func(c *Config) { c.UncompressedVictimTags = -1 }},
		{"zero L2 size", func(c *Config) { c.L2Bytes = 0 }},
		{"zero L2 banks", func(c *Config) { c.L2Banks = 0 }},
		{"zero L2 hit latency", func(c *Config) { c.L2HitCycles = 0 }},
		{"zero clock", func(c *Config) { c.ClockGHz = 0 }},
		{"adaptive without prefetching", func(c *Config) { c.AdaptivePrefetch = true; c.Prefetching = false }},
		{"zero DRAM banks", func(c *Config) { c.Memory.Banks = 0 }},
		{"negative DRAM banks", func(c *Config) { c.Memory.Banks = -4 }},
		{"zero DRAM latency", func(c *Config) { c.Memory.DRAMLatency = 0 }},
		{"negative bank occupancy", func(c *Config) { c.Memory.BankOccupancy = -1 }},
		{"negative link bandwidth", func(c *Config) { c.Memory.LinkBytesPerCycle = -1 }},
		{"link bandwidth over tick resolution", func(c *Config) { c.Memory.LinkBytesPerCycle = 1e12 }},
		{"zero CPU BaseCPI", func(c *Config) { c.CPU.BaseCPI = 0 }},
		{"zero MSHRs", func(c *Config) { c.CPU.MSHRs = 0 }},
		{"unknown codec", func(c *Config) { c.Codec = "lz4" }},
		{"non-representable decompression latency", func(c *Config) { c.DecompressionCycles = 1.0 / 3.0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := NewConfig("zeus")
			tc.mut(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestCoreCountIsFreeParameter runs the full mechanism stack end to
// end at 4 and 16 cores (the paper's fixed 8 is just a default) and
// checks the per-core structures scale: total work is per-core, and
// more cores contending for the same L2 and pins must not deadlock or
// drop work. A non-power-of-two bank count rides along to cover the
// modulo interleave end to end.
func TestCoreCountIsFreeParameter(t *testing.T) {
	for _, cores := range []int{4, 16} {
		cfg := smallConfig("zeus").WithMechanisms(true, true, true, true)
		cfg.Cores = cores
		cfg.L2Banks = 7 // non-power-of-two interleave
		cfg.Memory.Banks = 5
		m := run(t, cfg)
		if m.Cores != cores {
			t.Fatalf("metrics report %d cores, want %d", m.Cores, cores)
		}
		if want := uint64(cores) * cfg.MeasureInstr; m.Instructions != want {
			t.Fatalf("%d cores: instructions %d, want %d", cores, m.Instructions, want)
		}
		if m.Cycles <= 0 || m.IPC <= 0 {
			t.Fatalf("%d cores: cycles=%f ipc=%f", cores, m.Cycles, m.IPC)
		}
		// Determinism must hold at every core count.
		if m2 := run(t, cfg); m2.Cycles != m.Cycles || m2.L2Misses != m.L2Misses {
			t.Fatalf("%d cores: non-deterministic", cores)
		}
	}
}

// TestHeavyBankConflict funnels every L2 and DRAM access through a
// single bank with prefetching on: the worst case for the in-flight
// prefetch table (resolveInflight sees many partial hits because
// serialized fills complete late) and for pruneInflight (entries
// accumulate behind the bank backlog). The invariant audit runs the
// mshr-inflight and resource-state sweeps throughout.
func TestHeavyBankConflict(t *testing.T) {
	cfg := smallConfig("mgrid").WithMechanisms(false, false, true, false)
	cfg.L2Banks = 1
	cfg.Memory.Banks = 1
	cfg.L2BankOccupancy = 8 // stretch the serialization
	cfg.CheckLevel = audit.Invariants
	m := run(t, cfg)
	var partial, hits uint64
	for src := range m.Engines {
		partial += m.Engines[src].PartialHits
		hits += m.Engines[src].PrefetchHits
	}
	if hits == 0 {
		t.Fatal("no prefetch hits under bank conflict")
	}
	if partial == 0 {
		t.Fatal("serialized banks produced no partial hits (resolveInflight untested)")
	}
	if m.DRAMQueueDelay == 0 {
		t.Fatal("single DRAM bank recorded no queueing")
	}
	// The conflicted run must cost more than the banked one.
	banked := cfg
	banked.L2Banks = 8
	banked.Memory.Banks = 16
	banked.L2BankOccupancy = 4
	mb := run(t, banked)
	if m.Cycles <= mb.Cycles {
		t.Fatalf("bank conflict not slower: %f vs %f", m.Cycles, mb.Cycles)
	}
}

func TestMechanismLabels(t *testing.T) {
	cfg := NewConfig("zeus")
	cases := []struct {
		cacheC, linkC, pf, adaptive bool
		want                        string
	}{
		{false, false, false, false, "base"},
		{true, false, false, false, "cache-compr"},
		{false, true, false, false, "link-compr"},
		{true, true, false, false, "compression"},
		{false, false, true, false, "pf"},
		{true, false, true, false, "pf+cache-compr"},
		{false, true, true, false, "pf+link-compr"},
		{true, true, true, false, "pf+compression"},
		{false, false, true, true, "adaptive-pf"},
		// The three adaptive+compression combinations used to collapse
		// into one label; each must now be distinct, with the full
		// combination keeping its historical name.
		{true, false, true, true, "adaptive-pf+cache-compr"},
		{false, true, true, true, "adaptive-pf+link-compr"},
		{true, true, true, true, "adaptive-pf+compression"},
	}
	seen := make(map[string]bool)
	for _, tc := range cases {
		got := cfg.WithMechanisms(tc.cacheC, tc.linkC, tc.pf, tc.adaptive).MechanismLabel()
		if got != tc.want {
			t.Errorf("WithMechanisms(%v,%v,%v,%v) = %q, want %q",
				tc.cacheC, tc.linkC, tc.pf, tc.adaptive, got, tc.want)
		}
		if seen[got] {
			t.Errorf("label %q not unique across combinations", got)
		}
		seen[got] = true
	}
}

func TestUniprocessorRuns(t *testing.T) {
	cfg := smallConfig("zeus")
	cfg.Cores = 1
	cfg.Prefetching = true
	m := run(t, cfg)
	if m.Cores != 1 || m.Instructions < 80_000 {
		t.Fatalf("uniprocessor run: %+v", m)
	}
}

func TestCommercialVsSPECompCharacter(t *testing.T) {
	// The commercial workload must show far more L1I misses (large
	// instruction footprint) than the scientific one.
	com := run(t, smallConfig("oltp"))
	sci := run(t, smallConfig("mgrid"))
	comRate := float64(com.L1IMisses) / float64(com.Instructions)
	sciRate := float64(sci.L1IMisses) / float64(sci.Instructions)
	if comRate < 4*sciRate {
		t.Fatalf("oltp L1I miss rate %g should dwarf mgrid's %g", comRate, sciRate)
	}
}

func TestCoherenceActivityOnSharedData(t *testing.T) {
	m := run(t, smallConfig("oltp")) // highest sharing
	if m.StoreUpgrades == 0 || m.Invalidations == 0 {
		t.Fatalf("no coherence activity: %+v", m)
	}
}

func TestMeasurementWindowDeltas(t *testing.T) {
	// Doubling the measurement window should roughly double instructions
	// but keep per-KI metrics stable.
	cfg := smallConfig("zeus")
	m1 := run(t, cfg)
	cfg.MeasureInstr *= 2
	m2 := run(t, cfg)
	if m2.Instructions < m1.Instructions*3/2 {
		t.Fatalf("instructions did not scale: %d vs %d", m1.Instructions, m2.Instructions)
	}
	if m1.L2MissesPerKI == 0 || math.Abs(m2.L2MissesPerKI-m1.L2MissesPerKI) > m1.L2MissesPerKI*0.5 {
		t.Fatalf("misses/KI unstable: %f vs %f", m1.L2MissesPerKI, m2.L2MissesPerKI)
	}
}

func BenchmarkSimZeusBase(b *testing.B) {
	cfg := smallConfig("zeus")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemStep measures the integer hot path in isolation: one
// step (reference generation, hierarchy access, tick-domain pricing)
// on a warmed system with every mechanism on, bypassing Run's
// construction and metric assembly.
func BenchmarkSystemStep(b *testing.B) {
	cfg := smallConfig("zeus").WithMechanisms(true, true, true, true)
	s, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.phase(cfg.WarmupInstr)
	targets := make([]uint64, s.fe.count())
	for i := range targets {
		targets[i] = ^uint64(0) // never finished: steps are driven by b.N
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.fe.nextCore(targets)
		s.step(c)
	}
}

func TestSequentialPrefetcherKind(t *testing.T) {
	cfg := smallConfig("mgrid")
	cfg.Prefetching = true
	cfg.PrefetcherKind = "sequential"
	seq := run(t, cfg)
	l2 := seq.Engine(coherence.PfL2)
	if l2.Prefetches == 0 {
		t.Fatal("sequential prefetcher idle")
	}
	// The stride engine must beat the sequential baseline on mgrid's
	// non-unit strides (strides 2 and 3 are invisible to sequential).
	cfg.PrefetcherKind = "stride"
	stride := run(t, cfg)
	if stride.Cycles >= seq.Cycles {
		t.Fatalf("stride (%f) should beat sequential (%f) on mgrid", stride.Cycles, seq.Cycles)
	}
}

func TestUnknownPrefetcherKindRejected(t *testing.T) {
	cfg := smallConfig("zeus")
	cfg.PrefetcherKind = "nosuch"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown prefetcher kind accepted")
	}
	cfg = smallConfig("zeus")
	cfg.RefSource = "nosuch"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown reference source accepted")
	}
}

func TestRegisteredPrefetcherKindsRun(t *testing.T) {
	// Every registry kind must drive a full run; the stream buffers
	// must actually prefetch on mgrid's unit-stride component.
	for _, kind := range prefetch.Names() {
		cfg := smallConfig("mgrid")
		cfg.Prefetching = true
		cfg.PrefetcherKind = kind
		m := run(t, cfg)
		if kind == "stream" && m.Engine(coherence.PfL1D).Prefetches == 0 {
			t.Errorf("%s: prefetcher idle on mgrid", kind)
		}
	}
}

func TestMarkovCoversPointerChase(t *testing.T) {
	// The correlation prefetcher must find recurring miss transitions
	// in the pointer chase and deliver useful prefetches where the
	// stride engine finds (nearly) nothing to train on.
	cfg := smallConfig("ptrchase")
	cfg.Prefetching = true
	cfg.PrefetcherKind = "markov"
	m := run(t, cfg)
	var hits uint64
	for _, e := range []coherence.PfSource{coherence.PfL1D, coherence.PfL2} {
		hits += m.Engine(e).PrefetchHits
	}
	if hits == 0 {
		t.Fatal("markov prefetcher produced no useful prefetches on ptrchase")
	}
}

func TestIrregularBenchmarksRun(t *testing.T) {
	// Every irregular benchmark completes a full all-mechanisms run
	// deterministically.
	for _, bench := range workload.IrregularOrder() {
		cfg := smallConfig(bench)
		cfg = cfg.WithMechanisms(true, true, true, true)
		a := run(t, cfg)
		b := run(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeated runs differ", bench)
		}
		if a.Instructions == 0 || a.Cycles <= 0 {
			t.Errorf("%s: degenerate run", bench)
		}
	}
}

func TestRefSourceOverride(t *testing.T) {
	// Forcing a reference-source kind onto a foreign profile must
	// change the run (and forcing the profile's own kind must not).
	cfg := smallConfig("zeus")
	base := run(t, cfg)
	cfg.RefSource = "ptrchase"
	forced := run(t, cfg)
	if reflect.DeepEqual(base, forced) {
		t.Fatal("RefSource override had no effect")
	}
	cfg.RefSource = "strided"
	explicit := run(t, cfg)
	if !reflect.DeepEqual(base, explicit) {
		t.Fatal(`RefSource "strided" must equal zeus's default stream`)
	}
}
