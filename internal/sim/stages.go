package sim

// Stage interfaces: the simulation loop is split into staged components
// — front end (core issue + reference generation + prefetch engines),
// shared L2 (banked, compressed or plain), and off-chip memory (pin
// link + DRAM banks) — that talk to each other through the narrow
// interfaces below. Each stage owns its timing state (timing.Resource /
// timing.Banks / timing.Port) and its latency constants, already
// quantized to ticks; the System only orchestrates the event order and
// the attribution counters. Cores and bank counts are free parameters:
// nothing below assumes a specific core count or a power-of-two bank
// geometry.

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
	"cmpsim/internal/timing"
)

// memService is what the L2 stage (and the writeback path) needs from
// the off-chip memory system: priced fetches in two priority classes
// and fire-and-forget writebacks. *memory.System implements it.
type memService interface {
	Fetch(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick
	FetchLow(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick
	Writeback(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick
}

// l2Service is what the issue loop needs from the shared-L2 stage: the
// price of an L1-missing demand access and of the two prefetch fill
// shapes, all returning the tick the data is available on chip.
// *l2Stage implements it.
type l2Service interface {
	// Demand prices an L1-missing demand access: L2 bank reservation,
	// then the hit latency (plus decompression / dirty-forward
	// penalties) or the full memory round trip. The result is passed by
	// value: a pointer would escape through the interface call and put
	// one AccessResult on the heap per simulated reference.
	Demand(now timing.Tick, addr cache.BlockAddr, r coherence.AccessResult) timing.Tick
	// FillForL1 prices an L1 prefetch fill (L2 hit or memory fetch).
	FillForL1(now timing.Tick, addr cache.BlockAddr, out coherence.PrefetchOutcome) timing.Tick
	// FillForL2 prices an L2 prefetch fill (always a memory fetch).
	FillForL2(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick
}
