package sim

import (
	"errors"
	"reflect"
	"testing"

	"cmpsim/internal/audit"
)

// auditTestConfig is a small compressed+prefetching system: every fault
// class has live state to corrupt (compressed L2 sets, streams, MSHR
// entries, link traffic).
func auditTestConfig() Config {
	cfg := NewConfig("zeus")
	cfg.Cores = 4
	cfg.WarmupInstr = 40_000
	cfg.MeasureInstr = 20_000
	cfg.CacheCompression = true
	cfg.LinkCompression = true
	cfg.Prefetching = true
	cfg.CheckLevel = audit.Off // tests pick the level explicitly
	cfg.CheckInterval = 1024
	return cfg
}

// TestStateFaultMatrix proves every injected corruption class is caught
// at its required check level with the right invariant name — and NOT
// caught at insufficient levels, where the run must still complete.
func TestStateFaultMatrix(t *testing.T) {
	t.Parallel()
	wantInvariant := map[string]string{
		"flip-sharer":    "msi",
		"double-owner":   "msi",
		"corrupt-segs":   "l2-set-state",
		"dup-tag":        "l2-set-state",
		"corrupt-stream": "stream-bounds",
		"drop-flit":      "flit-conservation",
		"leak-mshr":      "mshr-inflight",
		"corrupt-value":  "shadow-value",
		"corrupt-size":   "shadow-fpc",
	}
	names := StateFaultNames()
	if len(names) != len(wantInvariant) {
		t.Fatalf("StateFaultNames() = %v, want the %d catalogued faults", names, len(wantInvariant))
	}
	for _, name := range names {
		if _, ok := wantInvariant[name]; !ok {
			t.Fatalf("fault %q has no expected invariant in the test table", name)
		}
	}
	for _, name := range names {
		for _, level := range []audit.Level{audit.Off, audit.Invariants, audit.Shadow} {
			name, level := name, level
			t.Run(name+"/"+level.String(), func(t *testing.T) {
				t.Parallel()
				cfg := auditTestConfig()
				cfg.CheckLevel = level
				cfg.StateFault = name + "@2000"
				_, err := Run(cfg)
				caught := level >= StateFaultLevel(name)
				if !caught {
					if err != nil {
						t.Fatalf("fault %s at level %s: want clean completion, got %v", name, level, err)
					}
					return
				}
				var v *audit.Violation
				if !errors.As(err, &v) {
					t.Fatalf("fault %s at level %s: want *audit.Violation, got %v", name, level, err)
				}
				if v.Invariant != wantInvariant[name] {
					t.Fatalf("fault %s at level %s: violated %q, want %q (%v)",
						name, level, v.Invariant, wantInvariant[name], v)
				}
			})
		}
	}
}

// TestShadowBitIdentical is the audit determinism contract: a full run
// at shadow level must complete with zero violations and bit-identical
// metrics to the same run unchecked.
func TestShadowBitIdentical(t *testing.T) {
	t.Parallel()
	run := func(level audit.Level) Metrics {
		cfg := auditTestConfig()
		cfg.CheckLevel = level
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("level %s: %v", level, err)
		}
		return m
	}
	off := run(audit.Off)
	shadow := run(audit.Shadow)
	if !reflect.DeepEqual(off, shadow) {
		t.Fatalf("metrics differ between check levels:\noff:    %+v\nshadow: %+v", off, shadow)
	}
}

// TestShadowBitIdenticalUncompressed covers the uncompressed-L2 shadow
// path (size model disabled, value model and writeback checks active).
func TestShadowBitIdenticalUncompressed(t *testing.T) {
	t.Parallel()
	run := func(level audit.Level) Metrics {
		cfg := auditTestConfig()
		cfg.CacheCompression = false
		cfg.LinkCompression = false
		cfg.CheckLevel = level
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("level %s: %v", level, err)
		}
		return m
	}
	if off, shadow := run(audit.Off), run(audit.Shadow); !reflect.DeepEqual(off, shadow) {
		t.Fatalf("metrics differ between check levels:\noff:    %+v\nshadow: %+v", off, shadow)
	}
}

// TestStateFaultValidation covers the Config.Validate surface for
// StateFault and CheckLevel.
func TestStateFaultValidation(t *testing.T) {
	t.Parallel()
	cfg := auditTestConfig()
	for _, bad := range []string{"flip-sharer", "flip-sharer@", "flip-sharer@0", "@5", "nonsense@100", "flip-sharer@x"} {
		cfg.StateFault = bad
		if err := cfg.Validate(); err == nil {
			t.Errorf("StateFault %q: want validation error", bad)
		}
	}
	cfg.StateFault = "flip-sharer@100"
	if err := cfg.Validate(); err != nil {
		t.Errorf("StateFault flip-sharer@100: %v", err)
	}
	cfg.StateFault = ""
	cfg.CheckLevel = audit.Level(99)
	if err := cfg.Validate(); err == nil {
		t.Error("CheckLevel 99: want validation error")
	}
}
