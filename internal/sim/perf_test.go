package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"cmpsim/internal/audit"
)

// TestShardDeterminismMatrix pins the sharding contract: reference
// generation on 1, 2, 4 or NumCPU worker goroutines produces Metrics
// bit-identical to the serial path, because shard workers only run
// ahead on core-private generator state while the simulation goroutine
// consumes the streams in the same min-clock order (DESIGN.md,
// "Deterministic sharding").
func TestShardDeterminismMatrix(t *testing.T) {
	// zeus covers the strided Generator; ptrchase covers the irregular
	// RefSource seam (core-private walk state on shard workers).
	for _, bench := range []string{"zeus", "ptrchase"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			cfg := smallConfig(bench).WithMechanisms(true, true, true, true)
			base := run(t, cfg)
			shards := []int{1, 2, 4, runtime.NumCPU()}
			for _, sh := range shards {
				sh := sh
				t.Run(fmt.Sprintf("shards=%d", sh), func(t *testing.T) {
					c := cfg
					c.Shards = sh
					m := run(t, c)
					if !reflect.DeepEqual(m, base) {
						t.Fatalf("shards=%d metrics differ from serial:\n got %+v\nwant %+v", sh, m, base)
					}
				})
			}
		})
	}
}

// TestStepAllocFree is the allocation regression gate for the issue
// loop: a warmed system must retire references — both the L1-hit fast
// path and the full staged path — without per-step heap allocations.
// The budget tolerates rare map growth in the data model and in-flight
// tracker, nothing per-event.
func TestStepAllocFree(t *testing.T) {
	cfg := smallConfig("zeus").WithMechanisms(true, true, true, true)
	cfg.CheckLevel = audit.Off // auditing forces the slow path and allocates
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.phase(cfg.WarmupInstr)
	targets := make([]uint64, s.fe.count())
	for i := range targets {
		targets[i] = ^uint64(0)
	}
	const steps = 20000
	fastBefore, stepsBefore := s.fastSteps, s.steps
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < steps; i++ {
			s.step(s.fe.nextCore(targets))
		}
	})
	fast, total := s.fastSteps-fastBefore, s.steps-stepsBefore
	if fast == 0 {
		t.Fatal("fast path never engaged on a warmed all-mechanisms run")
	}
	if fast == total {
		t.Fatal("full path never engaged: the test must cover both paths")
	}
	if perStep := allocs / steps; perStep > 0.02 {
		t.Fatalf("%.4f allocs/step (%.0f over %d steps), want amortized zero",
			perStep, allocs, steps)
	}
}

// BenchmarkSystemRun measures a whole simulation — construction,
// warmup, measurement, drain — end to end, the number the CI bench
// smoke gates on (tools/benchguard). Sub-benchmarks vary the
// generation shard count; ns/event divides wall time by retired
// references.
func BenchmarkSystemRun(b *testing.B) {
	bench := func(name string, cfg Config) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				s, err := NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s.run()
				events += s.steps
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		})
	}
	for _, sh := range []int{1, 2, 4} {
		cfg := smallConfig("zeus").WithMechanisms(true, true, true, true)
		cfg.Shards = sh
		bench(fmt.Sprintf("shards=%d", sh), cfg)
	}
	// The irregular frontier: pointer chasing under the markov
	// prefetcher (data-dependent addresses, correlation-table lookups
	// on the miss path).
	chase := smallConfig("ptrchase").WithMechanisms(true, true, true, true)
	chase.PrefetcherKind = "markov"
	bench("ptrchase", chase)
}
