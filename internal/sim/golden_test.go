package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates testdata/golden.json from the current
// simulator instead of comparing against it. Run either
//
//	go test ./internal/sim -run TestGoldenMetrics -update
//
// or set CMPSIM_UPDATE_GOLDEN=1. Intentional timing-domain changes
// regenerate the file in one command; review the diff like any other
// code change.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json with current results")

// goldenRun pins one configuration's headline metrics. The integer
// tick domain makes every run bit-deterministic, so the comparison is
// exact — including the float64 fields, which are pure functions of
// integer counters (any mismatch at all means the timing model
// changed).
type goldenRun struct {
	Cycles           float64 `json:"cycles"`
	IPC              float64 `json:"ipc"`
	Instructions     uint64  `json:"instructions"`
	L2Misses         uint64  `json:"l2_misses"`
	L2CompressedHits uint64  `json:"l2_compressed_hits"`
	MemFetches       uint64  `json:"mem_fetches"`
	OffChipBytes     uint64  `json:"off_chip_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	LinkQueueDelay   float64 `json:"link_queue_delay"`
	DRAMQueueDelay   float64 `json:"dram_queue_delay"`
}

func pinned(m Metrics) goldenRun {
	return goldenRun{
		Cycles:           m.Cycles,
		IPC:              m.IPC,
		Instructions:     m.Instructions,
		L2Misses:         m.L2Misses,
		L2CompressedHits: m.L2CompressedHits,
		MemFetches:       m.MemFetches,
		OffChipBytes:     m.OffChipBytes,
		CompressionRatio: m.CompressionRatio,
		LinkQueueDelay:   m.LinkQueueDelay,
		DRAMQueueDelay:   m.DRAMQueueDelay,
	}
}

// goldenConfigs covers the four mechanism corners of the paper on
// scaled-down systems (one commercial and one scientific workload).
func goldenConfigs() map[string]Config {
	return map[string]Config{
		"zeus-base":           smallConfig("zeus"),
		"zeus-pf-compression": smallConfig("zeus").WithMechanisms(true, true, true, false),
		"jbb-cache-compr":     smallConfig("jbb").WithMechanisms(true, false, false, false),
		"mgrid-adaptive-pf":   smallConfig("mgrid").WithMechanisms(false, false, true, true),
	}
}

func TestGoldenMetrics(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	update := *updateGolden || os.Getenv("CMPSIM_UPDATE_GOLDEN") != ""

	got := make(map[string]goldenRun)
	for name, cfg := range goldenConfigs() {
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = pinned(m)
	}

	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d runs", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update or CMPSIM_UPDATE_GOLDEN=1)", err)
	}
	want := make(map[string]goldenRun)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d runs, test produced %d (regenerate with -update)", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: in golden file but not produced (regenerate with -update)", name)
			continue
		}
		if g != w {
			t.Errorf("%s: metrics drifted from golden pin\n got %+v\nwant %+v\n(intentional? regenerate with -update)", name, g, w)
		}
	}
}
