package sim

import (
	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
	"cmpsim/internal/timing"
)

// l2Stage is the shared L2's timing stage: the banked access port
// (address-interleaved timing.Banks) and the latency constants, all
// quantized to ticks at construction. It prices every request that
// reaches the L2 — demand accesses and both prefetch fill shapes —
// and forwards misses to the memory stage. The hit-latency
// accumulators feed the MeanL2HitLatency metric.
type l2Stage struct {
	banks     *timing.Banks
	hitLat    timing.Tick // tag+data access of one bank
	decompLat timing.Tick // added for compressed hits / compressed fetches
	// decompOnFetch: lines arriving from memory need decompression
	// (link compression compresses the transfer; cache compression
	// stores the line compressed and the processor reads it back).
	decompOnFetch bool

	mem memService

	hitLatSum timing.Tick // accumulated hit latency (demand hits only)
	hitLatN   uint64
}

// newL2Stage builds the stage from the validated Config (geometry and
// latencies) and the memory service behind it.
func newL2Stage(cfg Config, mem memService) (*l2Stage, error) {
	banks, err := timing.NewBanks(cfg.L2Banks, timing.FromCycles(cfg.L2BankOccupancy))
	if err != nil {
		return nil, err
	}
	return &l2Stage{
		banks:         banks,
		hitLat:        timing.FromCycles(cfg.L2HitCycles),
		decompLat:     timing.FromCycles(cfg.DecompressionCycles),
		decompOnFetch: cfg.LinkCompression || cfg.CacheCompression,
		mem:           mem,
	}, nil
}

// Demand implements l2Service: bank reservation, then hit latency or
// the full memory round trip.
func (l *l2Stage) Demand(now timing.Tick, addr cache.BlockAddr, r coherence.AccessResult) timing.Tick {
	st := l.banks.Acquire(uint64(addr), now)
	if r.L2Hit {
		lat := l.hitLat
		if r.L2CompressedHit {
			lat += l.decompLat
		}
		if r.DirtyForward {
			lat += l.hitLat // retrieve data from the remote L1
		}
		l.hitLatSum += lat
		l.hitLatN++
		return st + lat
	}
	// Miss: the request leaves the chip after the tag lookup.
	done := l.mem.Fetch(st+l.hitLat, addr, r.FetchSegs)
	if l.decompOnFetch {
		done += l.decompLat
	}
	return done
}

// FillForL1 implements l2Service: an L1 prefetch fill served by the L2
// (hit) or by memory.
func (l *l2Stage) FillForL1(now timing.Tick, addr cache.BlockAddr, out coherence.PrefetchOutcome) timing.Tick {
	st := l.banks.Acquire(uint64(addr), now)
	if out.MemFetch {
		done := l.mem.Fetch(st+l.hitLat, addr, out.FetchSegs)
		if l.decompOnFetch {
			done += l.decompLat
		}
		return done
	}
	lat := l.hitLat
	if out.L2Compressed {
		lat += l.decompLat
	}
	return st + lat
}

// FillForL2 implements l2Service: an L2 prefetch fill, always a memory
// fetch (no decompression — the line stays in its stored form until a
// demand reference reads it).
func (l *l2Stage) FillForL2(now timing.Tick, addr cache.BlockAddr, segs uint8) timing.Tick {
	st := l.banks.Acquire(uint64(addr), now)
	return l.mem.Fetch(st+l.hitLat, addr, segs)
}

// hitStats returns the demand-hit latency accumulators (totals
// snapshot support).
func (l *l2Stage) hitStats() (sum timing.Tick, n uint64) { return l.hitLatSum, l.hitLatN }

// CheckInvariants verifies the bank reservation state (audit support).
func (l *l2Stage) CheckInvariants() string { return l.banks.CheckInvariants() }
