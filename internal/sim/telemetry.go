package sim

import "cmpsim/internal/timing"

// Interval telemetry: the windowed-snapshot machinery (totals/sub) that
// already produces the end-of-run measurement-window Metrics, applied at
// a finer grain. When Config.TelemetryInterval > 0, the measurement
// phase records one IntervalSample per interval of aggregate (all-core)
// instructions, each computed as the delta between consecutive totals
// snapshots. Warmup is never sampled, and the per-interval counters sum
// exactly to the end-of-run window totals because the final sample is
// closed on the same snapshot the Metrics are computed from.
//
// With TelemetryInterval == 0 the simulator takes no snapshots and
// Metrics.Timeline stays nil: the only cost is one nil check per step.

// IntervalSample is one telemetry point: counters are deltas over the
// interval, rates are derived from those deltas, and the adaptive cap
// values are read at the sample instant. Engine-indexed arrays use
// coherence.PfSource (1 = L1I, 2 = L1D, 3 = L2; index 0 unused).
type IntervalSample struct {
	Index    int    `json:"index"`
	EndInstr uint64 `json:"end_instr"` // window instructions retired at the sample point

	Instructions uint64  `json:"instructions"`
	Cycles       float64 `json:"cycles"` // wall of the interval: max-core-time advance
	IPC          float64 `json:"ipc"`

	L2Accesses uint64  `json:"l2_accesses"`
	L2Misses   uint64  `json:"l2_misses"`
	L2MissRate float64 `json:"l2_miss_rate"`

	CompressionRatio float64 `json:"compression_ratio"` // carried forward if no size sample landed in the interval
	MeanL2HitLatency float64 `json:"mean_l2_hit_latency"`

	OffChipBytes    uint64  `json:"offchip_bytes"`
	LinkUtilization float64 `json:"link_utilization"`
	LinkQueueDelay  float64 `json:"link_queue_delay"`
	DRAMQueueDelay  float64 `json:"dram_queue_delay"`

	PfIssued   [4]uint64  `json:"pf_issued"`
	PfHits     [4]uint64  `json:"pf_hits"`
	PfRate     [4]float64 `json:"pf_rate_per_ki"` // prefetches per 1000 interval instructions
	PfAccuracy [4]float64 `json:"pf_accuracy"`

	CapL1I float64 `json:"cap_l1i"` // adaptive startup-depth caps (L1 = mean over cores)
	CapL1D float64 `json:"cap_l1d"`
	CapL2  int     `json:"cap_l2"`
}

// telemetry is the per-run sampling state, allocated at measurement
// start only when Config.TelemetryInterval > 0.
type telemetry struct {
	interval uint64 // aggregate instructions per sample
	instr    uint64 // window instructions accumulated so far
	next     uint64 // boundary that triggers the next sample

	startInstr uint64 // totals.instr at measurement start
	prev       totals
	prevMaxNow timing.Tick

	samples []IntervalSample
}

func newTelemetry(interval uint64, start totals, startMaxNow timing.Tick) *telemetry {
	return &telemetry{
		interval:   interval,
		next:       interval,
		startInstr: start.instr,
		prev:       start,
		prevMaxNow: startMaxNow,
	}
}

// tick advances the telemetry instruction count after one step and
// records a sample whenever an interval boundary is crossed. Boundaries
// advance by a fixed stride rather than resetting to the current count,
// so variable-length instruction groups cannot drift the sample rate.
func (s *System) tick(instrs uint64) {
	t := s.tel
	t.instr += instrs
	if t.instr < t.next {
		return
	}
	s.recordSample(s.rawTotals())
	t.next += t.interval
	if t.next <= t.instr { // a huge group may span several boundaries
		t.next = t.instr + t.interval
	}
}

// recordSample closes the current interval at snapshot now.
func (s *System) recordSample(now totals) {
	t := s.tel
	d := now.sub(t.prev)
	maxNow := s.maxCoreNow()
	elapsed := maxNow - t.prevMaxNow

	smp := IntervalSample{
		Index:          len(t.samples),
		EndInstr:       now.instr - t.startInstr,
		Instructions:   d.instr,
		Cycles:         elapsed.Cycles(),
		L2Accesses:     d.l2Acc,
		L2Misses:       d.l2Miss,
		OffChipBytes:   d.linkBytes,
		LinkQueueDelay: d.linkQDelay.Cycles(),
		DRAMQueueDelay: d.dramQDelay.Cycles(),
		PfIssued:       d.pfIssued,
		PfHits:         d.pfHits,
		CapL2:          s.fe.adL2.Cap(),
	}
	if elapsed > 0 {
		smp.IPC = float64(d.instr) / elapsed.Cycles()
		smp.LinkUtilization = float64(d.linkBusy) / float64(elapsed)
	}
	if d.l2Acc > 0 {
		smp.L2MissRate = float64(d.l2Miss) / float64(d.l2Acc)
	}
	if d.effSizeN > 0 {
		smp.CompressionRatio = float64(d.effSizeSum) / float64(d.effSizeN) / float64(s.cfg.L2Bytes)
	} else if n := len(t.samples); n > 0 {
		smp.CompressionRatio = t.samples[n-1].CompressionRatio
	}
	if d.hitLatN > 0 {
		smp.MeanL2HitLatency = d.hitLatSum.Cycles() / float64(d.hitLatN)
	}
	if d.instr > 0 {
		for i := range smp.PfRate {
			smp.PfRate[i] = float64(d.pfIssued[i]) * 1000 / float64(d.instr)
		}
	}
	for i := range smp.PfAccuracy {
		if d.pfIssued[i] > 0 {
			smp.PfAccuracy[i] = float64(d.pfHits[i]) / float64(d.pfIssued[i])
		}
	}
	for c := range s.fe.cores {
		smp.CapL1I += float64(s.fe.adL1I[c].Cap()) / float64(s.fe.count())
		smp.CapL1D += float64(s.fe.adL1D[c].Cap()) / float64(s.fe.count())
	}

	t.samples = append(t.samples, smp)
	t.prev = now
	t.prevMaxNow = maxNow
}

// finish closes the trailing partial interval against the run's final
// snapshot (taken after the cores drained — the same snapshot the
// end-of-run Metrics subtract), guaranteeing that the per-interval
// counters sum exactly to the window totals. If the last boundary fell
// exactly on the window end, the drain's residual cycles are folded into
// the final sample instead of opening an empty one.
func (s *System) finishTelemetry(end totals) []IntervalSample {
	t := s.tel
	d := end.sub(t.prev)
	if d.instr > 0 || len(t.samples) == 0 {
		s.recordSample(end)
	} else if extra := s.maxCoreNow() - t.prevMaxNow; extra > 0 {
		last := &t.samples[len(t.samples)-1]
		busyIn := last.LinkUtilization * last.Cycles
		last.Cycles += extra.Cycles()
		last.IPC = float64(last.Instructions) / last.Cycles
		last.LinkUtilization = busyIn / last.Cycles
	}
	return t.samples
}
