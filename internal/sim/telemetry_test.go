package sim

import (
	"math"
	"reflect"
	"testing"
)

// TestWarmupInvariantQueueDelays is the regression test for the
// warmup-contamination bug: LinkQueueDelay and DRAMQueueDelay used to be
// read from the cumulative channel/DRAM counters, so a longer warmup
// inflated them even though the measurement window was identical in
// length. Post-fix both are window deltas: growing the warmup 8x must
// leave them at the same order of magnitude (the window content shifts
// slightly as the caches warm, hence the factor-2 margin — the pre-fix
// code reports ~5x and fails).
func TestWarmupInvariantQueueDelays(t *testing.T) {
	cfg := smallConfig("fma3d") // bandwidth-bound: heavy link and DRAM queueing
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 60_000
	short := run(t, cfg)
	cfg.WarmupInstr = 800_000
	long := run(t, cfg)

	if short.LinkQueueDelay <= 0 || short.DRAMQueueDelay <= 0 {
		t.Fatalf("fma3d run recorded no queueing: link=%f dram=%f",
			short.LinkQueueDelay, short.DRAMQueueDelay)
	}
	if long.LinkQueueDelay >= 2*short.LinkQueueDelay {
		t.Fatalf("LinkQueueDelay contaminated by warmup: %f (long warmup) vs %f (short)",
			long.LinkQueueDelay, short.LinkQueueDelay)
	}
	if long.DRAMQueueDelay >= 2*short.DRAMQueueDelay {
		t.Fatalf("DRAMQueueDelay contaminated by warmup: %f (long warmup) vs %f (short)",
			long.DRAMQueueDelay, short.DRAMQueueDelay)
	}
}

// TestWarmupInvariantHitLatency covers the same bug class for the mean
// L2 hit latency, whose accumulators also used to span the whole run.
// With cache compression on, warmup and window see similar hit mixes, so
// the windowed mean must stay close between warmup lengths.
func TestWarmupInvariantHitLatency(t *testing.T) {
	cfg := smallConfig("jbb")
	cfg.CacheCompression = true
	cfg.WarmupInstr = 100_000
	short := run(t, cfg)
	cfg.WarmupInstr = 600_000
	long := run(t, cfg)
	if short.MeanL2HitLatency <= 0 {
		t.Fatal("no hit latency recorded")
	}
	if rel := math.Abs(long.MeanL2HitLatency-short.MeanL2HitLatency) / short.MeanL2HitLatency; rel > 0.25 {
		t.Fatalf("windowed hit latency unstable across warmups: %f vs %f",
			short.MeanL2HitLatency, long.MeanL2HitLatency)
	}
}

func TestTimelineDisabledIsNil(t *testing.T) {
	m := run(t, smallConfig("zeus"))
	if m.Timeline != nil {
		t.Fatalf("Timeline allocated with telemetry disabled: %d samples", len(m.Timeline))
	}
}

func TestTimelineDeterministic(t *testing.T) {
	cfg := smallConfig("apache")
	cfg.Prefetching = true
	cfg.AdaptivePrefetch = true
	cfg.CacheCompression = true
	cfg.LinkCompression = true
	cfg.TelemetryInterval = 40_000
	m1 := run(t, cfg)
	m2 := run(t, cfg)
	if len(m1.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	if !reflect.DeepEqual(m1.Timeline, m2.Timeline) {
		t.Fatalf("timeline not deterministic:\n%+v\nvs\n%+v", m1.Timeline, m2.Timeline)
	}
}

// TestTimelineReconcilesWithTotals checks the acceptance contract: the
// per-interval counters sum exactly to the end-of-run window totals
// (floats within rounding), because both are deltas of the same
// snapshot sequence.
func TestTimelineReconcilesWithTotals(t *testing.T) {
	cfg := smallConfig("zeus")
	cfg.Prefetching = true
	cfg.CacheCompression = true
	cfg.LinkCompression = true
	cfg.TelemetryInterval = 30_000
	m := run(t, cfg)
	if len(m.Timeline) < 5 {
		t.Fatalf("expected several samples, got %d", len(m.Timeline))
	}

	var instr, l2Acc, l2Miss, bytes uint64
	var pfIssued, pfHits [4]uint64
	var linkQ, dramQ, cycles float64
	for _, s := range m.Timeline {
		instr += s.Instructions
		l2Acc += s.L2Accesses
		l2Miss += s.L2Misses
		bytes += s.OffChipBytes
		linkQ += s.LinkQueueDelay
		dramQ += s.DRAMQueueDelay
		cycles += s.Cycles
		for i := range pfIssued {
			pfIssued[i] += s.PfIssued[i]
			pfHits[i] += s.PfHits[i]
		}
	}
	if instr != m.Instructions {
		t.Errorf("instructions: timeline %d vs totals %d", instr, m.Instructions)
	}
	if last := m.Timeline[len(m.Timeline)-1]; last.EndInstr != m.Instructions {
		t.Errorf("final EndInstr %d != window instructions %d", last.EndInstr, m.Instructions)
	}
	if l2Acc != m.L2Accesses || l2Miss != m.L2Misses {
		t.Errorf("L2: timeline %d/%d vs totals %d/%d", l2Acc, l2Miss, m.L2Accesses, m.L2Misses)
	}
	if bytes != m.OffChipBytes {
		t.Errorf("off-chip bytes: timeline %d vs totals %d", bytes, m.OffChipBytes)
	}
	for i := range pfIssued {
		if pfIssued[i] != m.Engines[i].Prefetches || pfHits[i] != m.Engines[i].PrefetchHits {
			t.Errorf("engine %d: timeline %d/%d vs totals %d/%d", i,
				pfIssued[i], pfHits[i], m.Engines[i].Prefetches, m.Engines[i].PrefetchHits)
		}
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
			t.Errorf("%s: timeline sum %f vs totals %f", name, got, want)
		}
	}
	approx("link queue delay", linkQ, m.LinkQueueDelay)
	approx("DRAM queue delay", dramQ, m.DRAMQueueDelay)
	// Interval wall-clock telescopes over the max-core clock, which can
	// differ slightly from the max per-core elapsed that defines Cycles.
	if cycles < 0.9*m.Cycles || cycles > 1.1*m.Cycles {
		t.Errorf("cycles: timeline sum %f vs runtime %f", cycles, m.Cycles)
	}
}

// TestTimelineShowsAdaptiveConvergence: the adaptive L2 cap must be
// visible per interval, and on jbb (useless-prefetch-heavy) the final
// sampled cap must not exceed the startup value it began from.
func TestTimelineAdaptiveCaps(t *testing.T) {
	cfg := smallConfig("jbb")
	cfg.Prefetching = true
	cfg.AdaptivePrefetch = true
	cfg.TelemetryInterval = 40_000
	m := run(t, cfg)
	if len(m.Timeline) == 0 {
		t.Fatal("no samples")
	}
	last := m.Timeline[len(m.Timeline)-1]
	if last.CapL2 != m.Adaptive.FinalCapL2 {
		t.Fatalf("final sampled cap %d != metrics final cap %d", last.CapL2, m.Adaptive.FinalCapL2)
	}
}

func TestTimelineIntervalLargerThanWindow(t *testing.T) {
	cfg := smallConfig("zeus")
	cfg.TelemetryInterval = 1 << 40 // one trailing sample covers the window
	m := run(t, cfg)
	if len(m.Timeline) != 1 {
		t.Fatalf("expected exactly one sample, got %d", len(m.Timeline))
	}
	if m.Timeline[0].Instructions != m.Instructions {
		t.Fatalf("single sample covers %d of %d instructions",
			m.Timeline[0].Instructions, m.Instructions)
	}
}

func TestSurfacedEvictionCounters(t *testing.T) {
	cfg := smallConfig("zeus")
	cfg.Prefetching = true
	m := run(t, cfg)
	if m.L2Evictions == 0 {
		t.Fatal("no L2 evictions surfaced on a thrashing workload")
	}
	if m.L2UselessPfEvictions > m.L2Evictions {
		t.Fatalf("useless-prefetch evictions %d exceed total evictions %d",
			m.L2UselessPfEvictions, m.L2Evictions)
	}
}
