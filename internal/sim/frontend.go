package sim

import (
	"cmpsim/internal/cpu"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/timing"
	"cmpsim/internal/workload"
)

// frontEnd is the per-core issue stage: the bounded run-ahead cores,
// their reference generators, and the prefetch machinery that observes
// each core's access stream — per-core L1I/L1D/L2 engines plus the
// adaptive controllers (one per L1 cache, a single shared one for the
// L2, paper §3). It owns everything indexed by core, so the rest of
// the simulator treats the core count as a free parameter.
type frontEnd struct {
	cores []*cpu.Core
	gens  []*workload.Generator

	engL1I, engL1D, engL2 []prefetch.Prefetcher
	adL1I, adL1D          []*prefetch.Adaptive
	adL2                  *prefetch.Adaptive
}

// newFrontEnd builds the per-core stage; the workload's BaseCPI
// overrides the CPU config's.
func newFrontEnd(cfg Config, prof workload.Profile) *frontEnd {
	l1cfg := prefetch.L1Config()
	if cfg.L1PrefetchDepth > 0 {
		l1cfg.StartupDepth = cfg.L1PrefetchDepth
	}
	l2cfg := prefetch.L2Config()
	if cfg.L2PrefetchDepth > 0 {
		l2cfg.StartupDepth = cfg.L2PrefetchDepth
	}
	cpuCfg := cfg.CPU
	cpuCfg.BaseCPI = prof.BaseCPI
	newEngine := func(c prefetch.Config) prefetch.Prefetcher {
		if cfg.PrefetcherKind == "sequential" {
			sc := prefetch.DefaultSequentialConfig()
			sc.Degree = c.StartupDepth / 3 // comparable aggressiveness
			if sc.Degree < 1 {
				sc.Degree = 1
			}
			return prefetch.NewSequential(sc)
		}
		return prefetch.New(c)
	}
	fe := &frontEnd{}
	for c := 0; c < cfg.Cores; c++ {
		fe.cores = append(fe.cores, cpu.New(cpuCfg))
		fe.gens = append(fe.gens, workload.NewGenerator(prof, c, cfg.Seed))
		fe.engL1I = append(fe.engL1I, newEngine(l1cfg))
		fe.engL1D = append(fe.engL1D, newEngine(l1cfg))
		fe.engL2 = append(fe.engL2, newEngine(l2cfg))
		fe.adL1I = append(fe.adL1I, prefetch.NewAdaptive(l1cfg.StartupDepth))
		fe.adL1D = append(fe.adL1D, prefetch.NewAdaptive(l1cfg.StartupDepth))
	}
	fe.adL2 = prefetch.NewAdaptive(l2cfg.StartupDepth)
	if cfg.AdaptivePrefetch {
		for c := 0; c < cfg.Cores; c++ {
			fe.engL1I[c].SetCap(fe.adL1I[c].Cap)
			fe.engL1D[c].SetCap(fe.adL1D[c].Cap)
			fe.engL2[c].SetCap(fe.adL2.Cap)
		}
	}
	return fe
}

// count returns the number of cores.
func (fe *frontEnd) count() int { return len(fe.cores) }

// nextCore picks the unfinished core with the smallest local clock —
// the simulator's deterministic event order. targets holds each
// generator's instruction goal; -1 means every core reached its target.
// Same-clock ties (exact in the integer tick domain) resolve to the
// lowest core index.
func (fe *frontEnd) nextCore(targets []uint64) int {
	c := -1
	for i := range fe.cores {
		if fe.gens[i].Instructions >= targets[i] {
			continue
		}
		if c == -1 || fe.cores[i].Now < fe.cores[c].Now {
			c = i
		}
	}
	return c
}

// maxNow returns the furthest-ahead core clock, the simulator's notion
// of elapsed wall time (Metrics.Cycles uses the same basis).
func (fe *frontEnd) maxNow() timing.Tick {
	max := fe.cores[0].Now
	for _, c := range fe.cores[1:] {
		if c.Now > max {
			max = c.Now
		}
	}
	return max
}

// minNow returns the furthest-behind core clock (in-flight pruning
// horizon: anything completed before it can never be referenced as
// pending again).
func (fe *frontEnd) minNow() timing.Tick {
	min := fe.cores[0].Now
	for _, c := range fe.cores[1:] {
		if c.Now < min {
			min = c.Now
		}
	}
	return min
}

// drain waits out every core's outstanding misses (end of a phase).
func (fe *frontEnd) drain() {
	for _, c := range fe.cores {
		c.Drain()
	}
}
