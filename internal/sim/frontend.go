package sim

import (
	"sync"

	"cmpsim/internal/cpu"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/timing"
	"cmpsim/internal/workload"
)

// refBatch is the per-core generation window: references are produced
// in blocks of this size, so a generator runs at most refBatch*2
// references ahead of its core (current buffer plus one in flight).
const refBatch = 256

// frontEnd is the per-core issue stage: the bounded run-ahead cores,
// their reference generators, and the prefetch machinery that observes
// each core's access stream — per-core L1I/L1D/L2 engines plus the
// adaptive controllers (one per L1 cache, a single shared one for the
// L2, paper §3). It owns everything indexed by core, so the rest of
// the simulator treats the core count as a free parameter.
type frontEnd struct {
	cores []*cpu.Core
	gens  []workload.RefSource

	engL1I, engL1D, engL2 []prefetch.Prefetcher
	adL1I, adL1D          []*prefetch.Adaptive
	adL2                  *prefetch.Adaptive

	// Batched issue state: each core consumes references from batch[c]
	// (filled refBatch at a time) instead of calling Generator.Next per
	// step. pool is non-nil when Config.Shards > 1: refills then run on
	// shard worker goroutines, double-buffered per core.
	batch [][]workload.Ref
	pos   []int
	n     []int
	pool  *shardPool
}

// newFrontEnd builds the per-core stage; the workload's BaseCPI
// overrides the CPU config's.
func newFrontEnd(cfg Config, prof workload.Profile) *frontEnd {
	l1cfg := prefetch.L1Config()
	if cfg.L1PrefetchDepth > 0 {
		l1cfg.StartupDepth = cfg.L1PrefetchDepth
	}
	l2cfg := prefetch.L2Config()
	if cfg.L2PrefetchDepth > 0 {
		l2cfg.StartupDepth = cfg.L2PrefetchDepth
	}
	cpuCfg := cfg.CPU
	cpuCfg.BaseCPI = prof.BaseCPI
	// Both kinds resolve through their registries; Config.Validate has
	// already vetted the names, so unknown kinds panic like an invalid
	// profile would.
	newEngine := prefetch.MustByName(cfg.PrefetcherKind)
	fe := &frontEnd{}
	for c := 0; c < cfg.Cores; c++ {
		fe.cores = append(fe.cores, cpu.New(cpuCfg))
		fe.gens = append(fe.gens, workload.MustNewSource(cfg.RefSource, prof, c, cfg.Seed))
		fe.engL1I = append(fe.engL1I, newEngine(l1cfg))
		fe.engL1D = append(fe.engL1D, newEngine(l1cfg))
		fe.engL2 = append(fe.engL2, newEngine(l2cfg))
		fe.adL1I = append(fe.adL1I, prefetch.NewAdaptive(l1cfg.StartupDepth))
		fe.adL1D = append(fe.adL1D, prefetch.NewAdaptive(l1cfg.StartupDepth))
	}
	fe.adL2 = prefetch.NewAdaptive(l2cfg.StartupDepth)
	if cfg.AdaptivePrefetch {
		for c := 0; c < cfg.Cores; c++ {
			fe.engL1I[c].SetCap(fe.adL1I[c].Cap)
			fe.engL1D[c].SetCap(fe.adL1D[c].Cap)
			fe.engL2[c].SetCap(fe.adL2.Cap)
		}
	}
	fe.batch = make([][]workload.Ref, cfg.Cores)
	fe.pos = make([]int, cfg.Cores)
	fe.n = make([]int, cfg.Cores)
	for c := range fe.batch {
		fe.batch[c] = make([]workload.Ref, refBatch)
	}
	if cfg.Shards > 1 {
		fe.pool = newShardPool(fe.gens, cfg.Shards)
		// Prime each core's pipeline with a spare buffer so the first
		// refill already has a filled batch waiting.
		for c := range fe.batch {
			fe.pool.request(c, make([]workload.Ref, refBatch))
		}
	}
	return fe
}

// nextRef returns the next reference for core c, refilling the core's
// batch when exhausted. The returned pointer is valid until the next
// nextRef call for the same core.
func (fe *frontEnd) nextRef(c int) *workload.Ref {
	if fe.pos[c] == fe.n[c] {
		fe.refill(c)
	}
	r := &fe.batch[c][fe.pos[c]]
	fe.pos[c]++
	return r
}

// refill replenishes core c's batch: inline in serial mode, or by
// swapping the exhausted buffer for the pool's pre-filled one. Either
// way the references come off the same generator in the same order, so
// the consumed stream — and every metric — is bit-identical.
func (fe *frontEnd) refill(c int) {
	if fe.pool == nil {
		fe.n[c] = fe.gens[c].NextN(fe.batch[c])
		fe.pos[c] = 0
		return
	}
	fe.pool.request(c, fe.batch[c])
	fe.batch[c] = <-fe.pool.full[c]
	fe.n[c] = len(fe.batch[c])
	fe.pos[c] = 0
}

// stopShards shuts the shard workers down (no-op in serial mode). After
// it returns the generators are quiescent and owned by the caller again.
func (fe *frontEnd) stopShards() {
	if fe.pool != nil {
		fe.pool.stop()
		fe.pool = nil
	}
}

// genReq asks a shard worker to refill buf from core's generator.
type genReq struct {
	core int
	buf  []workload.Ref
}

// shardPool runs reference generation on worker goroutines while
// keeping the simulation bit-exact for any shard count: each core's
// generator is owned by exactly one worker (core % shards), a worker
// fills whole refBatch windows strictly in the order the consumer
// exhausts them, and the orchestrator still interleaves the consumed
// streams in serial min-clock order. Workers therefore only run ahead
// on core-private state; nothing that touches shared simulator state
// ever leaves the orchestrating goroutine.
//
// The pipeline keeps exactly one buffer per core in flight (queued,
// being filled, or parked filled in full[c]) while the consumer drains
// the other — so the consumer blocks on full[c] only after queueing
// that core's refill, workers block only on their request channel, and
// no cycle of waits can form.
type shardPool struct {
	req  []chan genReq            // one per worker; worker w owns cores c with c%len(req)==w
	full []chan []workload.Ref    // one per core, capacity 1
	wg   sync.WaitGroup
}

func newShardPool(gens []workload.RefSource, shards int) *shardPool {
	n := len(gens)
	if shards > n {
		shards = n
	}
	p := &shardPool{
		req:  make([]chan genReq, shards),
		full: make([]chan []workload.Ref, n),
	}
	for c := range p.full {
		p.full[c] = make(chan []workload.Ref, 1)
	}
	perWorker := (n + shards - 1) / shards
	for w := range p.req {
		p.req[w] = make(chan genReq, perWorker+1)
		p.wg.Add(1)
		go func(reqs <-chan genReq) {
			defer p.wg.Done()
			for r := range reqs {
				buf := r.buf[:cap(r.buf)]
				buf = buf[:gens[r.core].NextN(buf)]
				p.full[r.core] <- buf
			}
		}(p.req[w])
	}
	return p
}

// request queues buf to be refilled from core c's generator.
func (p *shardPool) request(c int, buf []workload.Ref) {
	p.req[c%len(p.req)] <- genReq{core: c, buf: buf}
}

// stop closes the request channels and waits for the workers to exit.
func (p *shardPool) stop() {
	for _, ch := range p.req {
		close(ch)
	}
	p.wg.Wait()
}

// count returns the number of cores.
func (fe *frontEnd) count() int { return len(fe.cores) }

// nextCore picks the unfinished core with the smallest local clock —
// the simulator's deterministic event order. targets holds each core's
// retired-instruction goal; -1 means every core reached its target.
// Same-clock ties (exact in the integer tick domain) resolve to the
// lowest core index. Progress is measured by consumed instructions
// (cpu.Core.Instrs), not generated ones: with batching the generators
// run ahead of the cores by up to two refBatch windows.
func (fe *frontEnd) nextCore(targets []uint64) int {
	c := -1
	for i := range fe.cores {
		if fe.cores[i].Instrs >= targets[i] {
			continue
		}
		if c == -1 || fe.cores[i].Now < fe.cores[c].Now {
			c = i
		}
	}
	return c
}

// maxNow returns the furthest-ahead core clock, the simulator's notion
// of elapsed wall time (Metrics.Cycles uses the same basis).
func (fe *frontEnd) maxNow() timing.Tick {
	max := fe.cores[0].Now
	for _, c := range fe.cores[1:] {
		if c.Now > max {
			max = c.Now
		}
	}
	return max
}

// minNow returns the furthest-behind core clock (in-flight pruning
// horizon: anything completed before it can never be referenced as
// pending again).
func (fe *frontEnd) minNow() timing.Tick {
	min := fe.cores[0].Now
	for _, c := range fe.cores[1:] {
		if c.Now < min {
			min = c.Now
		}
	}
	return min
}

// drain waits out every core's outstanding misses (end of a phase).
func (fe *frontEnd) drain() {
	for _, c := range fe.cores {
		c.Drain()
	}
}
