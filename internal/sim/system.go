package sim

import (
	"math/rand"

	"cmpsim/internal/audit"
	"cmpsim/internal/cache"
	"cmpsim/internal/codec"
	"cmpsim/internal/coherence"
	"cmpsim/internal/memory"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/timing"
	"cmpsim/internal/workload"
)

// Compile-time checks that the concrete stages satisfy the stage seams.
var (
	_ memService = (*memory.System)(nil)
	_ l2Service  = (*l2Stage)(nil)
)

// System is one assembled CMP instance: the coherent cache hierarchy
// plus the three timing stages (frontEnd, l2Stage, memory.System) and
// the attribution counters the Metrics are computed from.
type System struct {
	cfg   Config
	prof  workload.Profile
	codec codec.Codec // resolved from Config.Codec
	data  *workload.DataModel

	h   *coherence.Hierarchy
	mem *memory.System // concrete memory stage (counter snapshots)
	fe  *frontEnd      // core issue + generators + prefetch engines
	l2  l2Service      // shared-L2 pricing seam
	l2s *l2Stage       // the same stage, concrete (hit stats, audit)

	// inflight is the MSHR-equivalent table of outstanding prefetch
	// fills: block → completion tick.
	inflight map[cache.BlockAddr]timing.Tick

	dirtyRng *rand.Rand

	// Simulator-level counters (cumulative; windowed via totals snapshots).
	pfIssued, pfHits, pfPartial, pfRedundant [4]uint64
	pfAllocsCount                            [4]uint64

	steps       uint64
	fastSteps   uint64 // events retired via the L1-hit fast path
	fastOK      bool   // audit off: fast path permitted (telemetry checked per step)
	effSizeSum  uint64 // valid-line bytes summed over samples (integer: no float accumulation order)
	effSizeN    uint64
	measuring   bool
	missProfile map[cache.BlockAddr]uint32
	ref         workload.Ref

	tel *telemetry // nil unless Config.TelemetryInterval > 0

	// Runtime self-checking (see audit.go); aud is nil at CheckLevel Off.
	aud        *audit.Auditor
	checkEvery uint64
	faultName  string // state-fault injection, "" = none
	faultAt    uint64
}

// NewSystem builds a system for cfg; the workload's BaseCPI overrides
// the CPU config's.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := workload.ByName(cfg.Benchmark)
	if err != nil {
		return nil, err
	}
	memCfg := cfg.Memory
	memCfg.LinkCompression = cfg.LinkCompression
	cdc := codec.MustByName(cfg.Codec) // validated above
	s := &System{
		cfg:      cfg,
		prof:     prof,
		codec:    cdc,
		data:     workload.NewDataModelCodec(prof, cfg.Seed, cdc),
		mem:      memory.New(memCfg),
		inflight: make(map[cache.BlockAddr]timing.Tick),
		dirtyRng: rand.New(rand.NewSource(cfg.Seed ^ 0x5EED)),
	}
	s.l2s, err = newL2Stage(cfg, s.mem)
	if err != nil {
		return nil, err
	}
	s.l2 = s.l2s

	var l2 cache.L2
	if cfg.CacheCompression {
		l2 = cache.NewCompressedL2(cfg.L2Bytes, cfg.L2TagsPerSet, cfg.L2SegsPerSet)
	} else {
		victims := 0
		if cfg.AdaptivePrefetch {
			victims = cfg.UncompressedVictimTags
		}
		l2 = cache.NewUncompressedL2(cfg.L2Bytes, cfg.L2Ways, victims)
	}
	s.h = coherence.New(coherence.Config{
		Cores:   cfg.Cores,
		L1Bytes: cfg.L1Bytes,
		L1Ways:  cfg.L1Ways,
		L2:      l2,
		Size:    s.data.SizeOf,
	})
	s.fe = newFrontEnd(cfg, prof)
	if cfg.CollectMissProfile {
		s.missProfile = make(map[cache.BlockAddr]uint32)
	}
	s.initAudit(cfg)
	s.fastOK = s.aud == nil && s.faultAt == 0
	return s, nil
}

// Run executes warmup then the measurement window and returns Metrics.
// An audit violation (CheckLevel > Off, or an injected StateFault that
// a check catches) is returned as a *audit.Violation error; any other
// panic propagates unchanged.
func Run(cfg Config) (m Metrics, err error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return Metrics{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			v, ok := r.(*audit.Violation)
			if !ok {
				panic(r)
			}
			m, err = Metrics{}, v
		}
	}()
	return s.run(), nil
}

// maxCoreNow returns the furthest-ahead core clock (audit and
// telemetry timebase).
func (s *System) maxCoreNow() timing.Tick { return s.fe.maxNow() }

// Close stops the shard workers (no-op when Config.Shards <= 1). Run
// calls it automatically; only callers driving phase/step directly on a
// sharded System need to call it themselves.
func (s *System) Close() { s.fe.stopShards() }

func (s *System) run() Metrics {
	defer s.fe.stopShards()
	s.phase(s.cfg.WarmupInstr)
	s.auditSweep() // warmup boundary
	start := s.rawTotals()
	startNow := make([]timing.Tick, s.fe.count())
	for i, c := range s.fe.cores {
		startNow[i] = c.Now
	}
	s.measuring = true
	if s.cfg.TelemetryInterval > 0 {
		s.tel = newTelemetry(s.cfg.TelemetryInterval, start, s.fe.maxNow())
	}
	s.phase(s.cfg.MeasureInstr)
	s.fe.drain()
	s.measuring = false
	s.auditSweep() // run end
	end := s.rawTotals()
	d := end.sub(start)

	var maxElapsed timing.Tick
	for i, c := range s.fe.cores {
		if e := c.Now - startNow[i]; e > maxElapsed {
			maxElapsed = e
		}
	}

	m := Metrics{
		Benchmark:    s.cfg.Benchmark,
		Label:        s.cfg.MechanismLabel(),
		Cores:        s.cfg.Cores,
		Seed:         s.cfg.Seed,
		Instructions: d.instr,
		Cycles:       maxElapsed.Cycles(),
		Seconds:      maxElapsed.Cycles() / (s.cfg.ClockGHz * 1e9),
		L1IAccesses:  d.l1iAcc, L1IMisses: d.l1iMiss,
		L1DAccesses: d.l1dAcc, L1DMisses: d.l1dMiss,
		L2Accesses: d.l2Acc, L2Misses: d.l2Miss,
		L2CompressedHits:     d.l2ComprHits,
		L2Evictions:          d.l2Evict,
		L2UselessPfEvictions: d.l2Useless,
		MemFetches:           d.memFetches,
		MemWritebacks:        d.memWritebacks,
		OffChipBytes:         d.linkBytes,
		LinkQueueDelay:       d.linkQDelay.Cycles(),
		DRAMQueueDelay:       d.dramQDelay.Cycles(),
		StoreUpgrades:        d.storeUpgrades,
		DirtyForwards:        d.dirtyForwards,
		Invalidations:        d.invals,
		Adaptive:             AdaptiveMetrics{Useful: d.adUseful, Useless: d.adUseless, Harmful: d.adHarmful, FinalCapL2: s.fe.adL2.Cap()},
		MissProfile:          s.missProfile,
	}
	if maxElapsed > 0 {
		m.IPC = float64(d.instr) / maxElapsed.Cycles()
		m.BandwidthGBps = float64(d.linkBytes) / 1e9 / m.Seconds
		m.LinkUtilization = float64(d.linkBusy) / float64(maxElapsed)
	}
	if d.l2Acc > 0 {
		m.L2MissRate = float64(d.l2Miss) / float64(d.l2Acc)
	}
	if d.instr > 0 {
		m.L2MissesPerKI = float64(d.l2Miss) * 1000 / float64(d.instr)
	}
	if d.effSizeN > 0 {
		m.EffectiveL2Bytes = float64(d.effSizeSum) / float64(d.effSizeN)
		m.CompressionRatio = m.EffectiveL2Bytes / float64(s.cfg.L2Bytes)
	}
	if d.hitLatN > 0 {
		m.MeanL2HitLatency = d.hitLatSum.Cycles() / float64(d.hitLatN)
	}
	for src := 0; src < 4; src++ {
		m.Engines[src] = EngineMetrics{
			Prefetches:   d.pfIssued[src],
			Redundant:    d.pfRedundant[src],
			PrefetchHits: d.pfHits[src],
			PartialHits:  d.pfPartial[src],
			StreamAllocs: d.pfAllocs[src],
		}
	}
	for c := range s.fe.cores {
		m.Adaptive.FinalCapL1I += float64(s.fe.adL1I[c].Cap()) / float64(s.fe.count())
		m.Adaptive.FinalCapL1D += float64(s.fe.adL1D[c].Cap()) / float64(s.fe.count())
	}
	m.Engines[coherence.PfL1I].DemandMisses = d.l1iMiss
	m.Engines[coherence.PfL1D].DemandMisses = d.l1dMiss
	m.Engines[coherence.PfL2].DemandMisses = d.l2Miss
	if s.tel != nil {
		m.Timeline = s.finishTelemetry(end)
	}
	return m
}

// phase runs every core for n further retired instructions.
func (s *System) phase(n uint64) {
	if n == 0 {
		return
	}
	targets := make([]uint64, s.fe.count())
	for i, c := range s.fe.cores {
		targets[i] = c.Instrs + n
	}
	for {
		c := s.fe.nextCore(targets)
		if c == -1 {
			return
		}
		s.step(c)
	}
}

// step advances core c by one generated reference.
func (s *System) step(c int) {
	s.steps++
	if s.aud != nil || s.faultAt != 0 {
		s.auditStep()
	}
	if s.steps&0x1FFF == 0 {
		s.sampleEffectiveSize()
		if s.steps&0xFFFFF == 0 {
			s.pruneInflight()
		}
	}
	core := s.fe.cores[c]
	s.ref = *s.fe.nextRef(c)
	core.Advance(uint64(s.ref.Gap))
	if s.tel != nil {
		s.tick(uint64(s.ref.Gap))
	}
	now := core.Now
	kind := s.ref.Kind
	addr := s.ref.Addr

	if s.aud != nil {
		s.aud.OnLoad(now, c, addr, s.data.Version(addr))
	}
	if kind == coherence.Store && s.dirtyRng.Float64() < s.prof.StoreDirtyProb {
		s.data.Dirty(addr)
		if s.aud != nil {
			s.aud.OnStore(addr)
		}
	}

	// Fast path: with auditing and telemetry off, a plain L1 hit (no
	// prefetch bit to consume, no store upgrade) retires here without
	// building an AccessResult or touching the staged L2/memory seams.
	// Prefetch training still observes the access: active streams
	// advance on every demand reference, hit or miss.
	if s.fastOK && s.tel == nil && s.h.FastHit(c, kind, addr) {
		s.fastSteps++
		if s.cfg.Prefetching {
			eng := s.fe.engL1D[c]
			src := coherence.PfL1D
			if kind == coherence.IFetch {
				eng = s.fe.engL1I[c]
				src = coherence.PfL1I
			}
			if reqs := eng.OnAccess(addr); len(reqs) != 0 {
				s.issueL1Prefetches(c, kind, src, now, reqs)
			}
		}
		return
	}

	r := s.h.Access(c, kind, addr)

	// Adaptive-controller events and per-engine attribution.
	ad := s.fe.adL1D[c]
	eng := s.fe.engL1D[c]
	if kind == coherence.IFetch {
		ad = s.fe.adL1I[c]
		eng = s.fe.engL1I[c]
	}
	partial := s.resolveInflight(addr, now, r)
	if r.L1PrefetchHit {
		ad.Useful()
	}
	if r.L2PrefetchHit {
		s.fe.adL2.Useful()
	}
	for i := 0; i < r.L1UselessEvict; i++ {
		ad.Useless()
	}
	for i := 0; i < r.L2UselessEvict; i++ {
		s.fe.adL2.Useless()
	}
	if r.L1Harmful {
		ad.Harmful()
	}
	if r.L2Harmful {
		s.fe.adL2.Harmful()
	}

	// Timing.
	blocking := s.ref.Blocking || kind == coherence.IFetch
	if r.L1Hit {
		if partial > now {
			core.IssueMiss(partial, blocking)
		}
	} else {
		done := s.l2.Demand(now, addr, r)
		if partial > done {
			done = partial
		}
		for _, wb := range r.Writebacks {
			s.auditWriteback(now, wb)
		}
		if r.MemFetch && s.measuring && s.missProfile != nil {
			s.missProfile[addr]++
		}
		core.IssueMiss(done, blocking)
	}

	if s.cfg.Prefetching {
		s.drivePrefetchers(c, kind, addr, now, &r, eng)
	}
}

// resolveInflight handles partial hits: the first demand reference to a
// block whose prefetch is still in flight waits for it. Returns the
// in-flight completion tick (or 0) and updates attribution counters.
func (s *System) resolveInflight(addr cache.BlockAddr, now timing.Tick, r coherence.AccessResult) timing.Tick {
	src := coherence.PfNone
	if r.L1PrefetchHit {
		src = r.L1PfBy
	} else if r.L2PrefetchHit {
		src = r.L2PfBy
	}
	if src == coherence.PfNone {
		return 0
	}
	t, ok := s.inflight[addr]
	if ok {
		delete(s.inflight, addr)
	}
	if ok && t > now {
		s.pfPartial[src]++
		return t
	}
	s.pfHits[src]++
	return 0
}

// drivePrefetchers feeds the three engines with this access and issues
// whatever they request.
func (s *System) drivePrefetchers(c int, kind coherence.Kind, addr cache.BlockAddr, now timing.Tick, r *coherence.AccessResult, eng prefetch.Prefetcher) {
	src := coherence.PfL1D
	if kind == coherence.IFetch {
		src = coherence.PfL1I
	}
	// L1 engine: stream advance on every access; training on misses.
	reqs := eng.OnAccess(addr)
	if len(reqs) == 0 && !r.L1Hit {
		allocs := eng.Allocations()
		reqs = eng.OnMiss(addr)
		if eng.Allocations() > allocs {
			s.pfAllocsDelta(src)
			// An L1 stream triggers an L2 stream along the same stride.
			l2reqs := s.fe.engL2[c].TriggerStream(addr, eng.StreamStride())
			if len(l2reqs) > 0 {
				s.pfAllocsDelta(coherence.PfL2)
			}
			s.issueL2Prefetches(c, now, l2reqs)
			// reqs still aliases eng's buffer: TriggerStream used engL2's.
		}
	}
	s.issueL1Prefetches(c, kind, src, now, reqs)

	// L2 engine sees the L2-level reference stream (L1 misses).
	if !r.L1Hit {
		l2eng := s.fe.engL2[c]
		l2reqs := l2eng.OnAccess(addr)
		if len(l2reqs) == 0 && !r.L2Hit {
			allocs := l2eng.Allocations()
			l2reqs = l2eng.OnMiss(addr)
			if l2eng.Allocations() > allocs {
				s.pfAllocsDelta(coherence.PfL2)
			}
		}
		s.issueL2Prefetches(c, now, l2reqs)
	}
}

// pfAllocsDelta tracks stream allocations per engine class.
func (s *System) pfAllocsDelta(src coherence.PfSource) {
	s.pfAllocsCount[src]++
}

// issueL1Prefetches sends L1 prefetch fills through the hierarchy with
// full timing (bank, link, DRAM) and in-flight tracking.
func (s *System) issueL1Prefetches(c int, kind coherence.Kind, src coherence.PfSource, now timing.Tick, reqs []cache.BlockAddr) {
	pfKind := coherence.Load
	if kind == coherence.IFetch {
		pfKind = coherence.IFetch
	}
	ad := s.fe.adL1D[c]
	if kind == coherence.IFetch {
		ad = s.fe.adL1I[c]
	}
	for _, a := range reqs {
		out := s.h.PrefetchL1(c, pfKind, a, src)
		if out.AlreadyPresent {
			s.pfRedundant[src]++
			continue
		}
		s.pfIssued[src]++
		if out.L2PrefetchHit {
			// The L1 prefetch consumed an L2 prefetched line: credit the
			// prefetcher that staged it and its adaptive controller.
			if t, ok := s.inflight[a]; ok && t > now {
				s.pfPartial[out.L2PfBy]++
				delete(s.inflight, a)
			} else {
				s.pfHits[out.L2PfBy]++
			}
			s.fe.adL2.Useful()
		}
		done := s.l2.FillForL1(now, a, out)
		for _, wb := range out.Writebacks {
			s.auditWriteback(now, wb)
		}
		s.inflight[a] = done
		for i := 0; i < out.L1UselessEvict; i++ {
			ad.Useless()
		}
		for i := 0; i < out.L2UselessEvict; i++ {
			s.fe.adL2.Useless()
		}
	}
}

// issueL2Prefetches sends L2 prefetch fills to memory.
func (s *System) issueL2Prefetches(c int, now timing.Tick, reqs []cache.BlockAddr) {
	for _, a := range reqs {
		out := s.h.PrefetchL2(c, a, coherence.PfL2)
		if out.AlreadyPresent {
			s.pfRedundant[coherence.PfL2]++
			continue
		}
		s.pfIssued[coherence.PfL2]++
		done := s.l2.FillForL2(now, a, out.FetchSegs)
		for _, wb := range out.Writebacks {
			s.auditWriteback(now, wb)
		}
		s.inflight[a] = done
		for i := 0; i < out.L2UselessEvict; i++ {
			s.fe.adL2.Useless()
		}
	}
}

// sampleEffectiveSize accumulates the effective-cache-size time average
// (only while measuring, matching the paper's periodic measurement).
func (s *System) sampleEffectiveSize() {
	if !s.measuring {
		return
	}
	s.effSizeSum += uint64(s.h.L2.ValidLines() * cache.LineBytes)
	s.effSizeN++
}

// pruneInflight drops completed in-flight entries so the map stays small.
func (s *System) pruneInflight() {
	minNow := s.fe.minNow()
	for a, t := range s.inflight {
		if t < minNow {
			delete(s.inflight, a)
		}
	}
}

// rawTotals snapshots every cumulative counter.
func (s *System) rawTotals() totals {
	var t totals
	for i := range s.fe.cores {
		t.instr += s.fe.cores[i].Instrs
		st := &s.h.L1I[i].Stats
		t.l1iAcc += st.Accesses
		t.l1iMiss += st.Misses
		sd := &s.h.L1D[i].Stats
		t.l1dAcc += sd.Accesses
		t.l1dMiss += sd.Misses
		t.adUseful += s.fe.adL1I[i].UsefulEvents + s.fe.adL1D[i].UsefulEvents
		t.adUseless += s.fe.adL1I[i].UselessEvents + s.fe.adL1D[i].UselessEvents
		t.adHarmful += s.fe.adL1I[i].HarmfulEvents + s.fe.adL1D[i].HarmfulEvents
	}
	l2 := s.h.L2.BaseStats()
	t.l2Acc = l2.Accesses
	t.l2Miss = l2.Misses
	t.l2Evict = l2.Evictions
	t.l2Useless = l2.UselessPf
	t.l2ComprHits = s.h.L2.CompressedHitCount()
	t.adUseful += s.fe.adL2.UsefulEvents
	t.adUseless += s.fe.adL2.UselessEvents
	t.adHarmful += s.fe.adL2.HarmfulEvents
	t.memFetches = s.mem.Fetches
	t.memWritebacks = s.mem.Writebacks
	t.linkBytes = s.mem.Data.TotalBytes // demand metric: data-bus bytes (addresses ride separate pins)
	t.linkBusy = s.mem.DataBusyTicks()
	t.linkQDelay = s.mem.Data.QueueDelay()
	t.dramQDelay = s.mem.DRAMWaits
	t.effSizeSum = s.effSizeSum
	t.effSizeN = s.effSizeN
	t.hitLatSum, t.hitLatN = s.l2s.hitStats()
	t.pfIssued = s.pfIssued
	t.pfHits = s.pfHits
	t.pfPartial = s.pfPartial
	t.pfRedundant = s.pfRedundant
	t.pfAllocs = s.pfAllocsCount
	t.storeUpgrades = s.h.StoreUpgrades
	t.dirtyForwards = s.h.DirtyForwards
	t.invals = s.h.CoherenceInval + s.h.InclusionInval
	return t
}
