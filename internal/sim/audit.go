package sim

// Runtime self-checking: this file wires internal/audit's tiered
// checker into the simulation loop. At CheckLevel Invariants the
// auditor sweeps every structural invariant (cache set accounting, MSI
// inclusion/ownership, prefetch stream bounds, link flit conservation,
// MSHR leaks) at a fixed step cadence plus phase boundaries; at Shadow
// it additionally cross-checks every load and every compressed L2 fill
// against a functional reference model. A violation panics with
// *audit.Violation, which Run converts into an ordinary error so the
// failure flows through internal/core's point-failure pipeline as a
// structured FAILED(invariant:...) cell.
//
// StateFault deliberately corrupts one piece of simulator state at a
// chosen step ("name@step") so tests can prove each auditor class
// actually fires; see stateFaults for the catalog.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cmpsim/internal/audit"
	"cmpsim/internal/cache"
	"cmpsim/internal/timing"
)

// defaultCheckInterval is the sweep cadence in simulation steps when
// Config.CheckInterval is zero.
const defaultCheckInterval = 65536

// stateFaults maps each injectable corruption to the audit level that
// must catch it (structural faults trip at Invariants; value/size
// faults need the Shadow reference model).
var stateFaults = map[string]audit.Level{
	"flip-sharer":    audit.Invariants, // sharer bit for a core without the line
	"double-owner":   audit.Invariants, // owner set to a core without a dirty copy
	"corrupt-segs":   audit.Invariants, // L2 line's segment count zeroed
	"dup-tag":        audit.Invariants, // two tags in one set map the same block
	"corrupt-stream": audit.Invariants, // stream-table entry with a zero stride
	"drop-flit":      audit.Invariants, // fetch flit counted but never sent
	"leak-mshr":      audit.Invariants, // in-flight entry that never completes
	"corrupt-value":  audit.Shadow,     // block contents change without a store
	"corrupt-size":   audit.Shadow,     // size memo disagrees with contents
}

// StateFaultNames lists the injectable state corruptions, sorted.
func StateFaultNames() []string {
	names := make([]string, 0, len(stateFaults))
	for n := range stateFaults {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StateFaultLevel returns the minimum CheckLevel that detects the named
// fault (test support), or Off for unknown names.
func StateFaultLevel(name string) audit.Level { return stateFaults[name] }

// parseStateFault splits a "name@step" spec and validates both halves.
func parseStateFault(spec string) (name string, step uint64, err error) {
	name, at, ok := strings.Cut(spec, "@")
	if !ok {
		return "", 0, fmt.Errorf("sim: state fault %q not of the form name@step", spec)
	}
	if _, known := stateFaults[name]; !known {
		return "", 0, fmt.Errorf("sim: unknown state fault %q (have %s)", name, strings.Join(StateFaultNames(), ", "))
	}
	step, err = strconv.ParseUint(at, 10, 64)
	if err != nil || step == 0 {
		return "", 0, fmt.Errorf("sim: state fault %q needs a positive step number", spec)
	}
	return name, step, nil
}

// initAudit installs the auditor and the state-fault trigger on a
// freshly built system (cfg already validated).
func (s *System) initAudit(cfg Config) {
	if cfg.StateFault != "" {
		s.faultName, s.faultAt, _ = parseStateFault(cfg.StateFault)
	}
	if !cfg.CheckLevel.Enabled() {
		return
	}
	s.aud = audit.NewCodec(cfg.CheckLevel, s.data, s.codec)
	s.checkEvery = cfg.CheckInterval
	if s.checkEvery == 0 {
		s.checkEvery = defaultCheckInterval
	}
	if cfg.CheckLevel >= audit.Shadow {
		storesCompressed := s.h.L2.StoresCompressed()
		s.h.OnL2Size = func(a cache.BlockAddr, segs uint8) {
			s.aud.OnL2Data(s.maxCoreNow(), a, segs, storesCompressed)
		}
	}
}

// auditStep runs the per-step audit work: the state-fault trigger
// (followed by an immediate sweep so a corruption cannot be healed by
// later protocol activity before the next periodic sweep) and the
// cadenced structural sweep.
func (s *System) auditStep() {
	if s.faultAt != 0 && s.steps == s.faultAt {
		s.applyStateFault()
		s.auditSweep()
	}
	if s.aud != nil && s.steps%s.checkEvery == 0 {
		s.auditSweep()
	}
}

// auditSweep checks every structural invariant across the hierarchy,
// prefetch engines, memory system and MSHR table; at Shadow level it
// also re-verifies every resident compressed line's size and the whole
// value model. Pure reads: it never mutates simulated state.
func (s *System) auditSweep() {
	a := s.aud
	if a == nil {
		return
	}
	now := s.maxCoreNow()
	for i := range s.h.L1I {
		a.Check("l1-set-state", now, s.h.L1I[i].CheckInvariants())
		a.Check("l1-set-state", now, s.h.L1D[i].CheckInvariants())
	}
	a.Check("l2-set-state", now, s.h.L2.CheckInvariants())
	a.Check("msi", now, s.h.AuditMSI())
	for c := range s.fe.engL1I {
		a.Check("stream-bounds", now, s.fe.engL1I[c].CheckInvariants())
		a.Check("stream-bounds", now, s.fe.engL1D[c].CheckInvariants())
		a.Check("stream-bounds", now, s.fe.engL2[c].CheckInvariants())
	}
	a.Check("flit-conservation", now, s.mem.CheckInvariants())
	a.Check("resource-state", now, s.l2s.CheckInvariants())
	s.checkInflight(a, now)
	if a.Level() >= audit.Shadow {
		s.h.L2.ForEachValid(func(ln *cache.Line) { a.CheckL2Line(now, ln) })
		a.CheckVersions(now, s.data.ForEachVersion)
	}
	a.Sweeps++
}

// checkInflight audits the MSHR-equivalent in-flight prefetch table:
// completion ticks must be non-negative and not absurdly far beyond
// the current tick (a leaked entry never resolves and would otherwise
// linger unnoticed, since pruning only removes past entries).
func (s *System) checkInflight(a *audit.Auditor, now timing.Tick) {
	// Generous bound: no fetch takes 10^10 cycles (any larger multiple
	// of TicksPerCycle would not fit the int64 tick domain).
	const horizon = 10_000_000_000 * timing.TicksPerCycle
	var badAddr cache.BlockAddr
	var badT timing.Tick
	found := false
	for addr, t := range s.inflight {
		if t < 0 || t > now+horizon {
			if !found || addr < badAddr {
				badAddr, badT, found = addr, t, true
			}
		}
	}
	if found {
		a.Fail("mshr-inflight", now, -1, -1, badAddr,
			fmt.Sprintf("in-flight completion time %v with current cycle %v", badT, now))
	}
}

// auditWriteback routes a dirty-line writeback through the shadow model
// (size cross-check) before handing it to the memory system.
func (s *System) auditWriteback(now timing.Tick, wb cache.BlockAddr) {
	segs := s.data.SizeOf(wb)
	if s.aud != nil {
		s.aud.OnWriteback(now, wb, segs)
	}
	s.mem.Writeback(now, wb, segs)
}

// applyStateFault performs the configured corruption. Each rule targets
// live state so the matching auditor class (see stateFaults) must trip
// on the immediately following sweep — or, for the latent shadow
// faults, on the next fill or writeback that consumes the poisoned
// state.
func (s *System) applyStateFault() {
	switch s.faultName {
	case "flip-sharer":
		// Set a sharer bit for a core that does not hold the line (or,
		// if every core holds the first line, an out-of-range bit).
		done := false
		s.h.L2.ForEachValid(func(ln *cache.Line) {
			if done {
				return
			}
			for c := 0; c < s.cfg.Cores; c++ {
				if ln.Sharers&(1<<uint(c)) == 0 && s.h.L1D[c].Lookup(ln.Addr) == nil {
					ln.Sharers |= 1 << uint(c)
					done = true
					return
				}
			}
			if s.cfg.Cores < 32 {
				ln.Sharers |= 1 << uint(s.cfg.Cores)
				done = true
			}
		})
	case "double-owner":
		// Claim ownership for a core without a modified copy.
		done := false
		s.h.L2.ForEachValid(func(ln *cache.Line) {
			if done {
				return
			}
			for c := 0; c < s.cfg.Cores; c++ {
				if dln := s.h.L1D[c].Lookup(ln.Addr); dln == nil || !dln.Dirty {
					ln.Owner = int8(c)
					done = true
					return
				}
			}
		})
	case "corrupt-segs", "dup-tag":
		if s.faultName == "dup-tag" {
			if cl2, ok := s.h.L2.(cache.CompressedL2); ok && cl2.InjectDuplicateTag() {
				return
			}
			// No set had a spare tag (or the L2 is uncompressed): fall
			// through to the segment corruption, same invariant class.
		}
		done := false
		s.h.L2.ForEachValid(func(ln *cache.Line) {
			if !done {
				ln.Segs = 0
				done = true
			}
		})
	case "corrupt-stream":
		if eng, ok := s.fe.engL1D[0].(interface{ CorruptStream() }); ok {
			eng.CorruptStream()
		} else {
			panic("sim: corrupt-stream fault requires a prefetcher with stream state")
		}
	case "drop-flit":
		s.mem.FetchFlits++
	case "leak-mshr":
		s.inflight[cache.BlockAddr(0xDEAD_BEEF)] = timing.Tick(1) << 62
	case "corrupt-value":
		// Mutate block contents without telling the shadow model.
		s.data.Dirty(s.ref.Addr)
	case "corrupt-size":
		// Poison the size memo from here on: the next compressed fill
		// or writeback stores a size that disagrees with the contents.
		s.data.PoisonNextSizes(1 << 30)
	default:
		panic(fmt.Sprintf("sim: unknown state fault %q", s.faultName))
	}
}
