package sim

import (
	"reflect"
	"testing"

	"cmpsim/internal/audit"
	"cmpsim/internal/cache"
	"cmpsim/internal/codec"
	"cmpsim/internal/workload"
)

// TestGeometryMatchesCacheConstants is the drift guard for the
// calibration-geometry coupling: sim builds the compressed L2 from
// Config, workload.PackedRatio packs calibration samples from the
// cache package's constants, and the two must describe the same sets
// or CalibrateKnob targets a cache that is never simulated.
func TestGeometryMatchesCacheConstants(t *testing.T) {
	cfg := NewConfig("zeus")
	if cfg.L2TagsPerSet != cache.DefaultTagsPerSet {
		t.Errorf("NewConfig L2TagsPerSet = %d, cache.DefaultTagsPerSet = %d",
			cfg.L2TagsPerSet, cache.DefaultTagsPerSet)
	}
	if cfg.L2SegsPerSet != cache.DefaultSegsPerSet {
		t.Errorf("NewConfig L2SegsPerSet = %d, cache.DefaultSegsPerSet = %d",
			cfg.L2SegsPerSet, cache.DefaultSegsPerSet)
	}
	if cache.DefaultSegsPerSet != cache.DefaultLinesPerSet*cache.MaxSegs {
		t.Error("segment budget is not LinesPerSet lines of data area")
	}
	// The ratio estimators saturate at the tag-limit bound derived from
	// the same constants.
	if got := workload.RatioForMeanSegs(1); got != cache.MaxEffectiveRatio {
		t.Errorf("RatioForMeanSegs(1) = %g, want %g", got, cache.MaxEffectiveRatio)
	}
	if got := workload.RatioForMeanSegs(float64(cache.MaxSegs)); got != 1 {
		t.Errorf("RatioForMeanSegs(MaxSegs) = %g, want 1", got)
	}
}

// codecTestConfig is a short full-stack run with compression on.
func codecTestConfig(name string) Config {
	cfg := NewConfig("zeus")
	cfg.WarmupInstr = 20_000
	cfg.MeasureInstr = 30_000
	cfg.Codec = name
	return cfg.WithMechanisms(true, true, true, false)
}

// TestCodecSelectionRuns drives every registered codec through a short
// compressed run under the Shadow audit, which encode/decode-roundtrips
// each compressed fill and writeback with the selected codec — a
// non-FPC codec wired in anywhere short of everywhere would trip the
// shadow-fpc invariant immediately.
func TestCodecSelectionRuns(t *testing.T) {
	for _, name := range codec.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := codecTestConfig(name)
			cfg.CheckLevel = audit.Shadow
			m, err := Run(cfg)
			if err != nil {
				t.Fatalf("run with codec %s: %v", name, err)
			}
			if m.CompressionRatio <= 0 {
				t.Errorf("codec %s: no effective-size samples landed", name)
			}
		})
	}
}

// TestDefaultCodecIsFPC pins the compatibility guarantee: Codec "" and
// Codec "fpc" are the same simulation, bit for bit.
func TestDefaultCodecIsFPC(t *testing.T) {
	a, err := Run(codecTestConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(codecTestConfig("fpc"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Codec \"\" and \"fpc\" metrics differ")
	}
}

// TestCodecRatioOrdering checks the codec choice actually reaches the
// sizing path: on a compressible commercial profile, the single-pattern
// zca codec must achieve no more packed effective size than FPC, which
// the data model's value mixture is built around; fpc calibrated at the
// profile's target must land near it.
func TestCodecRatioOrdering(t *testing.T) {
	prof := workload.MustByName("zeus")
	fpcR := workload.NewDataModelCodec(prof, 1, codec.MustByName("fpc")).PackedRatio(2048)
	zcaR := workload.NewDataModelCodec(prof, 1, codec.MustByName("zca")).PackedRatio(2048)
	if zcaR > fpcR {
		t.Errorf("zca packed ratio %g exceeds fpc %g on an FPC-patterned value stream", zcaR, fpcR)
	}
	if fpcR < prof.TargetRatio-0.1 {
		t.Errorf("fpc packed ratio %g misses the calibration target %g", fpcR, prof.TargetRatio)
	}
}

// TestFractionalDecompressionLatency covers the exact-tick contract:
// 2.5 cycles is representable and must validate and run; the
// TestConfigValidation table covers the rejection side.
func TestFractionalDecompressionLatency(t *testing.T) {
	cfg := codecTestConfig("")
	cfg.DecompressionCycles = 2.5
	if err := cfg.Validate(); err != nil {
		t.Fatalf("2.5-cycle decompression rejected: %v", err)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
