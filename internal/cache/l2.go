package cache

// L2 abstracts the shared second-level cache so the coherence hierarchy
// and simulation engine run unchanged over the uncompressed baseline
// (SetAssoc) and the decoupled variable-segment compressed cache.
type L2 interface {
	// Lookup returns the valid line for a or nil, with no side effects.
	Lookup(a BlockAddr) *Line
	// Access is a demand lookup with LRU update and statistics.
	// compressed reports whether the hit incurs a decompression penalty.
	Access(a BlockAddr) (ln *Line, wasPrefetch, compressed, ok bool)
	// Touch promotes a to MRU without statistics.
	Touch(a BlockAddr) bool
	// Fill inserts a occupying segs segments (ignored by an uncompressed
	// L2, which always stores 8). Victims are appended to vbuf.
	Fill(a BlockAddr, segs uint8, prefetch bool, vbuf []Line) (victims []Line, inserted *Line)
	// Resize updates the stored size of a after its data changed; it may
	// evict other lines in a compressed L2 and is a no-op when a is
	// absent or the cache is uncompressed.
	Resize(a BlockAddr, segs uint8, vbuf []Line) (victims []Line, found bool)
	// Invalidate removes a, returning the prior line state.
	Invalidate(a BlockAddr) Line
	// VictimMatch reports (and consumes) whether a was recently replaced
	// in its set, per the victim-address history available to the
	// adaptive prefetcher.
	VictimMatch(a BlockAddr) bool
	// AnyPrefetchInSet reports whether a's set holds an unreferenced
	// prefetched line.
	AnyPrefetchInSet(a BlockAddr) bool
	// BaseStats exposes the underlying hit/miss counters.
	BaseStats() *Stats
	// ValidLines counts resident lines; EffectiveBytes is that × 64.
	ValidLines() int
	// ForEachValid visits every resident line; fn must not mutate the
	// cache.
	ForEachValid(fn func(*Line))
	// CompressedHitCount returns hits that paid the decompression
	// penalty (always 0 for an uncompressed L2).
	CompressedHitCount() uint64
	// StoresCompressed reports whether this L2 stores compressed lines.
	StoresCompressed() bool
	// CheckInvariants returns a description of the first structural
	// inconsistency (duplicate tags, segment accounting, reset state),
	// or "" when the cache is sound (audit support).
	CheckInvariants() string
}

// UncompressedL2 adapts SetAssoc to the L2 interface.
type UncompressedL2 struct{ *SetAssoc }

// NewUncompressedL2 builds the baseline shared L2: totalBytes, ways-way
// set associative, with victimTags extra replaced-address tags per set
// for the adaptive prefetcher (0 disables harmful-prefetch detection).
func NewUncompressedL2(totalBytes, ways, victimTags int) UncompressedL2 {
	return UncompressedL2{NewSetAssoc(totalBytes, ways, victimTags)}
}

// Access adapts SetAssoc.Access; an uncompressed hit never pays a
// decompression penalty.
func (u UncompressedL2) Access(a BlockAddr) (*Line, bool, bool, bool) {
	ln, wasPf, ok := u.SetAssoc.Access(a)
	return ln, wasPf, false, ok
}

// Fill ignores segs: lines are stored uncompressed.
func (u UncompressedL2) Fill(a BlockAddr, segs uint8, prefetch bool, vbuf []Line) ([]Line, *Line) {
	victim, inserted := u.SetAssoc.Fill(a, prefetch)
	if victim.Valid {
		vbuf = append(vbuf, victim)
	}
	return vbuf, inserted
}

// Resize is a no-op for uncompressed storage.
func (u UncompressedL2) Resize(a BlockAddr, segs uint8, vbuf []Line) ([]Line, bool) {
	return vbuf, u.SetAssoc.Lookup(a) != nil
}

// VictimMatch consults the FIFO victim tags.
func (u UncompressedL2) VictimMatch(a BlockAddr) bool { return u.SetAssoc.VictimTagMatch(a) }

// BaseStats exposes the hit/miss counters.
func (u UncompressedL2) BaseStats() *Stats { return &u.SetAssoc.Stats }

// CompressedHitCount is always zero.
func (u UncompressedL2) CompressedHitCount() uint64 { return 0 }

// StoresCompressed reports false.
func (u UncompressedL2) StoresCompressed() bool { return false }

// CompressedL2 adapts Compressed to the L2 interface.
type CompressedL2 struct{ *Compressed }

// NewCompressedL2 builds the paper's compressed shared L2: dataBytes of
// data space, tagsPerSet address tags and dataSegsPerSet segments per set.
func NewCompressedL2(dataBytes, tagsPerSet, dataSegsPerSet int) CompressedL2 {
	return CompressedL2{NewCompressed(dataBytes, tagsPerSet, dataSegsPerSet)}
}

// VictimMatch consults the invalid-tag victim history.
func (c CompressedL2) VictimMatch(a BlockAddr) bool { return c.Compressed.InvalidTagMatch(a) }

// BaseStats exposes the hit/miss counters.
func (c CompressedL2) BaseStats() *Stats { return &c.Compressed.Stats }

// CompressedHitCount returns hits that paid the decompression penalty.
func (c CompressedL2) CompressedHitCount() uint64 { return c.Compressed.CompressedHits }

// StoresCompressed reports true.
func (c CompressedL2) StoresCompressed() bool { return true }

var (
	_ L2 = UncompressedL2{}
	_ L2 = CompressedL2{}
)
