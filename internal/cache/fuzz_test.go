package cache

import (
	"fmt"
	"testing"
)

// FuzzCompressedSetOps drives arbitrary fill/resize/invalidate/access
// sequences against one set of the decoupled variable-segment cache and
// cross-checks every step against a brute-force shadow set (a plain
// address → segments map with no LRU, packing or tag machinery). After
// each operation the two must agree on membership in both directions,
// per-line stored size, total segment usage — and CheckInvariants()
// must hold, which is the same sweep the runtime auditor runs.
func FuzzCompressedSetOps(f *testing.F) {
	f.Add([]byte{0x00, 0x01})
	f.Add([]byte{0x04, 0x01, 0x3c, 0x02, 0x1c, 0x03, 0x08, 0x01})
	f.Add([]byte{0x3c, 0x00, 0x3d, 0x01, 0x3e, 0x02, 0x3f, 0x03, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, ops []byte) {
		// 256 B data / 32 segments per set = exactly one 8-tag set, so
		// every address collides and packing pressure is maximal.
		c := NewCompressed(256, 8, 32)
		shadow := map[BlockAddr]uint8{}
		var vbuf []Line

		evict := func(victims []Line, op string) {
			for _, v := range victims {
				if !v.Valid {
					t.Fatalf("%s returned an invalid victim %+v", op, v)
				}
				if shadow[v.Addr] != v.Segs {
					t.Fatalf("%s evicted %#x at %d segs, shadow holds %d",
						op, uint64(v.Addr), v.Segs, shadow[v.Addr])
				}
				delete(shadow, v.Addr)
			}
		}
		check := func(op string) {
			t.Helper()
			if msg := c.CheckInvariants(); msg != "" {
				t.Fatalf("after %s: %s", op, msg)
			}
			if got, want := c.ValidLines(), len(shadow); got != want {
				t.Fatalf("after %s: %d valid lines, shadow holds %d", op, got, want)
			}
			total := 0
			for a, segs := range shadow {
				ln := c.Lookup(a)
				if ln == nil {
					t.Fatalf("after %s: shadow line %#x missing from cache", op, uint64(a))
				}
				if ln.Segs != segs {
					t.Fatalf("after %s: line %#x stored at %d segs, shadow says %d",
						op, uint64(a), ln.Segs, segs)
				}
				total += int(segs)
			}
			if got := c.UsedSegments(); got != total {
				t.Fatalf("after %s: %d segments used, shadow sums to %d", op, got, total)
			}
		}

		for i := 0; i+1 < len(ops); i += 2 {
			kind := ops[i] % 4
			segs := 1 + (ops[i]/4)%MaxSegs
			addr := BlockAddr(ops[i+1] % 16)
			_, present := shadow[addr]
			var op string
			switch kind {
			case 0: // fill
				if present {
					continue // duplicate fills are a caller bug by contract
				}
				op = fmt.Sprintf("fill %#x @%d", uint64(addr), segs)
				victims, inserted := c.Fill(addr, segs, ops[i]&0x80 != 0, vbuf[:0])
				evict(victims, op)
				shadow[addr] = segs
				if inserted == nil || inserted.Addr != addr || inserted.Segs != segs {
					t.Fatalf("%s inserted %+v", op, inserted)
				}
			case 1: // resize
				op = fmt.Sprintf("resize %#x @%d", uint64(addr), segs)
				victims, found := c.Resize(addr, segs, vbuf[:0])
				if found != present {
					t.Fatalf("%s found=%v, shadow presence %v", op, found, present)
				}
				evict(victims, op)
				if found {
					shadow[addr] = segs
				}
			case 2: // invalidate
				op = fmt.Sprintf("invalidate %#x", uint64(addr))
				ln := c.Invalidate(addr)
				if ln.Valid != present {
					t.Fatalf("%s returned Valid=%v, shadow presence %v", op, ln.Valid, present)
				}
				if present && (ln.Addr != addr || ln.Segs != shadow[addr]) {
					t.Fatalf("%s returned %+v, shadow holds %d segs", op, ln, shadow[addr])
				}
				delete(shadow, addr)
			default: // demand access
				op = fmt.Sprintf("access %#x", uint64(addr))
				ln, _, compressed, ok := c.Access(addr)
				if ok != present {
					t.Fatalf("%s hit=%v, shadow presence %v", op, ok, present)
				}
				if ok {
					if ln.Addr != addr || ln.Segs != shadow[addr] {
						t.Fatalf("%s returned %+v, shadow holds %d segs", op, ln, shadow[addr])
					}
					if compressed != (ln.Segs < MaxSegs) {
						t.Fatalf("%s compressed=%v at %d segs", op, compressed, ln.Segs)
					}
				}
			}
			check(op)
		}
	})
}
