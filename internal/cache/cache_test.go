package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetAssocGeometry(t *testing.T) {
	c := NewSetAssoc(64*1024, 4, 0) // 64 KB 4-way: 256 sets
	if c.Sets() != 256 || c.Ways() != 4 {
		t.Fatalf("got %d sets × %d ways", c.Sets(), c.Ways())
	}
	if c.CapacityBytes() != 64*1024 {
		t.Fatalf("capacity %d", c.CapacityBytes())
	}
}

func TestNewSetAssocRejectsBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewSetAssoc(0, 4, 0) },
		func() { NewSetAssoc(64*1024, 0, 0) },
		func() { NewSetAssoc(3*LineBytes, 3, 0) }, // 1 set? 3*64/(64*3)=1 ok... use non-pow2
		func() { NewSetAssoc(192*LineBytes, 64, 0) },
	} {
		func() {
			defer func() { recover() }()
			f()
			// Reaching here without panic is only acceptable for geometries
			// that are actually legal; the first two must panic.
		}()
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero capacity", func() { NewSetAssoc(0, 4, 0) })
	mustPanic("zero ways", func() { NewSetAssoc(64*1024, 0, 0) })
	mustPanic("non-pow2 sets", func() { NewSetAssoc(3*64*LineBytes, 4, 0) })
}

func TestSetAssocHitMiss(t *testing.T) {
	c := NewSetAssoc(4*LineBytes, 4, 0) // one set, 4 ways
	if _, _, ok := c.Access(1); ok {
		t.Fatal("cold access should miss")
	}
	c.Fill(1, false)
	if _, _, ok := c.Access(1); !ok {
		t.Fatal("filled block should hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	c := NewSetAssoc(4*LineBytes, 4, 0) // one set
	for a := BlockAddr(1); a <= 4; a++ {
		c.Fill(a, false)
	}
	// Touch 1 so 2 becomes LRU.
	c.Access(1)
	v, _ := c.Fill(5, false)
	if !v.Valid || v.Addr != 2 {
		t.Fatalf("expected to evict 2, got %+v", v)
	}
	if c.Lookup(1) == nil || c.Lookup(5) == nil {
		t.Fatal("1 and 5 should be present")
	}
}

func TestSetAssocDuplicateFillPanics(t *testing.T) {
	c := NewSetAssoc(4*LineBytes, 4, 0)
	c.Fill(1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate fill should panic")
		}
	}()
	c.Fill(1, false)
}

func TestPrefetchBitLifecycle(t *testing.T) {
	c := NewSetAssoc(4*LineBytes, 4, 0)
	c.Fill(7, true)
	if ln := c.Lookup(7); ln == nil || !ln.Prefetch {
		t.Fatal("prefetch bit should be set after prefetch fill")
	}
	_, wasPf, ok := c.Access(7)
	if !ok || !wasPf {
		t.Fatal("first access should report prefetch hit")
	}
	if c.Stats.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d", c.Stats.PrefetchHits)
	}
	_, wasPf, _ = c.Access(7)
	if wasPf {
		t.Fatal("second access must not be a prefetch hit")
	}
}

func TestUselessPrefetchCounted(t *testing.T) {
	c := NewSetAssoc(2*LineBytes, 2, 0) // one set, 2 ways
	c.Fill(1, true)                     // prefetched, never used
	c.Fill(3, false)
	c.Fill(5, false) // evicts LRU = 1 (prefetch bit still set)
	if c.Stats.UselessPf != 1 {
		t.Fatalf("useless prefetches = %d, want 1", c.Stats.UselessPf)
	}
}

func TestVictimTags(t *testing.T) {
	c := NewSetAssoc(2*LineBytes, 2, 2) // one set, 2 ways, 2 victim tags
	c.Fill(2, false)
	c.Fill(4, false)
	c.Fill(6, false) // evicts 2
	c.Fill(8, false) // evicts 4
	if !c.VictimTagMatch(2) {
		t.Fatal("2 should be in victim tags")
	}
	if c.VictimTagMatch(2) {
		t.Fatal("victim tag should be consumed after match")
	}
	if !c.VictimTagMatch(4) {
		t.Fatal("4 should be in victim tags")
	}
	// FIFO overflow: oldest is dropped.
	c.Fill(10, false) // evicts 6
	c.Fill(12, false) // evicts 8
	c.Fill(14, false) // evicts 10 -> FIFO holds {8,10}? capacity 2: {8,10}... 6 dropped
	if c.VictimTagMatch(6) {
		t.Fatal("6 should have been dropped from the 2-entry FIFO")
	}
	if !c.VictimTagMatch(10) {
		t.Fatal("10 should be in victim tags")
	}
}

func TestVictimTagsDisabled(t *testing.T) {
	c := NewSetAssoc(2*LineBytes, 2, 0)
	c.Fill(2, false)
	c.Fill(4, false)
	c.Fill(6, false)
	if c.VictimTagMatch(2) {
		t.Fatal("victim tags disabled: match must be false")
	}
}

func TestAnyPrefetchInSet(t *testing.T) {
	c := NewSetAssoc(4*LineBytes, 4, 0)
	c.Fill(1, false)
	if c.AnyPrefetchInSet(1) {
		t.Fatal("no prefetched lines yet")
	}
	c.Fill(3, true)
	if !c.AnyPrefetchInSet(1) {
		t.Fatal("prefetched line present")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewSetAssoc(4*LineBytes, 4, 0)
	_, ins := c.Fill(9, false)
	ins.Dirty = true
	ln := c.Invalidate(9)
	if !ln.Valid || !ln.Dirty || ln.Addr != 9 {
		t.Fatalf("invalidate returned %+v", ln)
	}
	if c.Lookup(9) != nil {
		t.Fatal("9 still present after invalidate")
	}
	if got := c.Invalidate(9); got.Valid {
		t.Fatal("second invalidate should report absent")
	}
}

func TestSetIndexingSpreadsSets(t *testing.T) {
	c := NewSetAssoc(1024*LineBytes, 4, 0) // 256 sets
	// Blocks that differ in set bits must not conflict.
	for a := BlockAddr(0); a < 256; a++ {
		c.Fill(a, false)
	}
	if got := c.ValidLines(); got != 256 {
		t.Fatalf("valid lines = %d, want 256", got)
	}
	if c.Stats.Evictions != 0 {
		t.Fatal("distinct sets must not evict")
	}
}

func TestForEachValid(t *testing.T) {
	c := NewSetAssoc(4*LineBytes, 4, 0)
	c.Fill(1, false)
	c.Fill(2, false)
	n := 0
	c.ForEachValid(func(ln *Line) { n++ })
	if n != 2 {
		t.Fatalf("visited %d lines, want 2", n)
	}
}

// Property: a SetAssoc cache never exceeds its way budget per set and
// Lookup agrees with the history of fills/invalidates.
func TestSetAssocModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewSetAssoc(8*LineBytes, 2, 2) // 4 sets, 2 ways
		model := map[BlockAddr]bool{}
		for op := 0; op < 500; op++ {
			a := BlockAddr(rng.Intn(32))
			switch rng.Intn(3) {
			case 0:
				if c.Lookup(a) == nil {
					victim, _ := c.Fill(a, rng.Intn(2) == 0)
					if victim.Valid {
						delete(model, victim.Addr)
					}
					model[a] = true
				} else {
					c.Access(a)
				}
			case 1:
				c.Access(a)
			case 2:
				c.Invalidate(a)
				delete(model, a)
			}
		}
		// Model agreement.
		for a := range model {
			if c.Lookup(a) == nil {
				return false
			}
		}
		if c.ValidLines() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
