package cache

// AdaptivePolicy is the adaptive compression policy of Alameldeen &
// Wood's ISCA 2004 paper, which the HPCA 2007 study also implements:
// a single global saturating counter weighs compression's benefit
// (misses avoided because a line was reachable only thanks to the
// extra effective capacity) against its cost (decompression latency on
// hits to compressed lines that would have been hits anyway).
//
// Classification uses the compressed cache's LRU stack position:
//
//   - A hit to a line at a stack depth the *uncompressed* cache would
//     also have held (depth < uncompressed ways) gains nothing from
//     compression; if the line is stored compressed, the 5-cycle
//     decompression penalty was pure cost: counter -= penalty.
//   - A hit to a line deeper than the uncompressed associativity is a
//     miss avoided by compression: the benefit is one memory access:
//     counter += memory latency.
//
// When the counter is positive the cache compresses compressible fills;
// when negative, new fills are stored uncompressed. The HPCA 2007 paper
// notes that for every workload it studied the policy converged to
// "always compress"; the unit tests exercise both regimes.
type AdaptivePolicy struct {
	counter int64
	max     int64

	// DecompressionPenalty and MemoryLatency weight the two event kinds.
	DecompressionPenalty int64
	MemoryLatency        int64

	// UncompressedWays is the associativity the baseline uncompressed
	// cache would have (the paper's compressed sets hold 4 uncompressed
	// lines, so depths 0..3 would hit either way).
	UncompressedWays int

	// Event counts, for analysis.
	PenalizedHits uint64 // hits that paid decompression for nothing
	AvoidedMisses uint64 // hits only compression made possible
}

// NewAdaptivePolicy returns the ISCA 2004 policy with the paper's
// weights: 5-cycle decompression penalty, 400-cycle memory latency, and
// a counter saturating at ±max (the paper uses a large saturating
// counter so a phase change must accumulate evidence).
func NewAdaptivePolicy() *AdaptivePolicy {
	return &AdaptivePolicy{
		max:                  1 << 20,
		DecompressionPenalty: 5,
		MemoryLatency:        400,
		UncompressedWays:     4,
	}
}

// OnHit classifies an L2 hit: stackDepth is the line's LRU position
// (0 = MRU) and compressed reports whether it was stored compressed.
func (p *AdaptivePolicy) OnHit(stackDepth int, compressed bool) {
	if stackDepth < p.UncompressedWays {
		// The uncompressed cache would have hit too.
		if compressed {
			p.PenalizedHits++
			p.add(-p.DecompressionPenalty)
		}
		return
	}
	// Reachable only because compression packed extra lines in.
	p.AvoidedMisses++
	p.add(p.MemoryLatency)
}

func (p *AdaptivePolicy) add(v int64) {
	p.counter += v
	if p.counter > p.max {
		p.counter = p.max
	}
	if p.counter < -p.max {
		p.counter = -p.max
	}
}

// ShouldCompress reports the policy's current decision for new fills.
// Ties (counter zero) compress, matching the papers' bias.
func (p *AdaptivePolicy) ShouldCompress() bool { return p.counter >= 0 }

// Counter exposes the raw counter for tests and instrumentation.
func (p *AdaptivePolicy) Counter() int64 { return p.counter }

// StackDepth returns a's current LRU position (0 = MRU) among the valid
// lines of its set, or -1 when absent. It is the policy's input and is
// also useful for miss-classification analysis.
func (c *Compressed) StackDepth(a BlockAddr) int {
	set := c.sets[c.setIndex(a)]
	depth := 0
	for i := range set {
		if !set[i].Valid {
			continue
		}
		if set[i].Addr == a {
			return depth
		}
		depth++
	}
	return -1
}
