package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// oneSet returns a single-set compressed cache with the paper geometry:
// 8 tags, 32 data segments (4 uncompressed lines).
func oneSet() *Compressed {
	return NewCompressed(4*LineBytes, 8, 32)
}

func TestNewCompressedGeometry(t *testing.T) {
	// Paper config: 4 MB data, 8 tags, 32 segments/set -> 16384 sets.
	c := NewCompressed(4<<20, 8, 32)
	if c.Sets() != 16384 {
		t.Fatalf("sets = %d, want 16384", c.Sets())
	}
	if c.CapacityBytes() != 4<<20 {
		t.Fatalf("capacity = %d", c.CapacityBytes())
	}
	if c.TagsPerSet() != 8 || c.DataSegsPerSet() != 32 {
		t.Fatalf("geometry %d tags %d segs", c.TagsPerSet(), c.DataSegsPerSet())
	}
}

func TestCompressedDoublesCapacityWithCompressibleLines(t *testing.T) {
	c := oneSet()
	// 8 lines of 4 segments each = 32 segments, 8 tags: all fit.
	for a := BlockAddr(0); a < 8; a++ {
		victims, _ := c.Fill(a, 4, false, nil)
		if len(victims) != 0 {
			t.Fatalf("fill %d evicted %v", a, victims)
		}
	}
	if c.ValidLines() != 8 {
		t.Fatalf("valid = %d, want 8", c.ValidLines())
	}
	if c.EffectiveBytes() != 8*LineBytes {
		t.Fatalf("effective = %d", c.EffectiveBytes())
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestCompressedUncompressedLinesGiveFourWay(t *testing.T) {
	c := oneSet()
	for a := BlockAddr(0); a < 4; a++ {
		if v, _ := c.Fill(a, MaxSegs, false, nil); len(v) != 0 {
			t.Fatalf("fill %d evicted %v", a, v)
		}
	}
	// Fifth uncompressed line must evict exactly one (the LRU, addr 0).
	victims, _ := c.Fill(4, MaxSegs, false, nil)
	if len(victims) != 1 || victims[0].Addr != 0 {
		t.Fatalf("victims = %+v, want [line 0]", victims)
	}
}

func TestCompressedEvictsMultipleForBigFill(t *testing.T) {
	c := oneSet()
	// Fill with 8 × 4-segment lines (set full: 32/32 segments).
	for a := BlockAddr(0); a < 8; a++ {
		c.Fill(a, 4, false, nil)
	}
	// An uncompressed (8-seg) fill needs two 4-seg victims.
	victims, _ := c.Fill(100, MaxSegs, false, nil)
	if len(victims) != 2 {
		t.Fatalf("got %d victims, want 2", len(victims))
	}
	if victims[0].Addr != 0 || victims[1].Addr != 1 {
		t.Fatalf("victims %+v, want LRU order 0 then 1", victims)
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestTagLimitEvenWithSpace(t *testing.T) {
	c := oneSet()
	// 8 one-segment lines: 8 segments used, but all 8 tags consumed.
	for a := BlockAddr(0); a < 8; a++ {
		c.Fill(a, 1, false, nil)
	}
	victims, _ := c.Fill(9, 1, false, nil)
	if len(victims) != 1 || victims[0].Addr != 0 {
		t.Fatalf("tag-limited fill: victims %+v", victims)
	}
}

func TestInvalidTagsRecordVictims(t *testing.T) {
	c := oneSet()
	for a := BlockAddr(0); a < 4; a++ {
		c.Fill(a, MaxSegs, false, nil)
	}
	c.Fill(4, MaxSegs, false, nil) // evicts 0
	if !c.InvalidTagMatch(0) {
		t.Fatal("evicted address 0 should match an invalid tag")
	}
	if c.InvalidTagMatch(0) {
		t.Fatal("invalid-tag match must be consumed")
	}
	if c.InvalidTagMatch(77) {
		t.Fatal("never-seen address must not match")
	}
}

func TestCompressedHitStats(t *testing.T) {
	c := oneSet()
	c.Fill(1, 3, false, nil)
	c.Fill(2, MaxSegs, false, nil)
	if _, _, compressed, ok := c.Access(1); !ok || !compressed {
		t.Fatal("line 1 should hit compressed")
	}
	if _, _, compressed, ok := c.Access(2); !ok || compressed {
		t.Fatal("line 2 should hit uncompressed")
	}
	if c.CompressedHits != 1 {
		t.Fatalf("compressed hits = %d", c.CompressedHits)
	}
}

func TestResizeShrink(t *testing.T) {
	c := oneSet()
	c.Fill(1, MaxSegs, false, nil)
	victims, found := c.Resize(1, 2, nil)
	if !found || len(victims) != 0 {
		t.Fatalf("shrink: found=%v victims=%v", found, victims)
	}
	if ln := c.Lookup(1); ln.Segs != 2 {
		t.Fatalf("segs = %d, want 2", ln.Segs)
	}
}

func TestResizeGrowEvicts(t *testing.T) {
	c := oneSet()
	for a := BlockAddr(0); a < 8; a++ {
		c.Fill(a, 4, false, nil) // full: 32 segments
	}
	// Grow line 7 from 4 to 8 segments: need 4 more, evict LRU (0).
	victims, found := c.Resize(7, MaxSegs, nil)
	if !found {
		t.Fatal("line 7 should be present")
	}
	if len(victims) != 1 || victims[0].Addr != 0 {
		t.Fatalf("victims = %+v", victims)
	}
	if ln := c.Lookup(7); ln == nil || ln.Segs != MaxSegs {
		t.Fatal("line 7 should now be uncompressed")
	}
	if c.ExpansionEvicts != 1 {
		t.Fatalf("expansion evicts = %d", c.ExpansionEvicts)
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestResizeGrowNeverEvictsSelf(t *testing.T) {
	c := NewCompressed(4*LineBytes, 8, 32)
	c.Fill(5, 1, false, nil)
	victims, found := c.Resize(5, MaxSegs, nil)
	if !found || len(victims) != 0 {
		t.Fatalf("lone line grow: found=%v victims=%v", found, victims)
	}
	if c.Lookup(5) == nil {
		t.Fatal("line 5 must survive its own resize")
	}
}

func TestResizeAbsent(t *testing.T) {
	c := oneSet()
	if _, found := c.Resize(42, 4, nil); found {
		t.Fatal("resize of absent line should report not found")
	}
}

func TestCompressedInvalidate(t *testing.T) {
	c := oneSet()
	_, ins := c.Fill(3, 2, false, nil)
	ins.Dirty = true
	ln := c.Invalidate(3)
	if !ln.Valid || !ln.Dirty || ln.Segs != 2 {
		t.Fatalf("invalidate returned %+v", ln)
	}
	// The invalid tag acts as victim history.
	if !c.InvalidTagMatch(3) {
		t.Fatal("invalidated address should match invalid tag")
	}
}

func TestCompressedLRUOrderAcrossAccess(t *testing.T) {
	c := oneSet()
	for a := BlockAddr(0); a < 4; a++ {
		c.Fill(a, MaxSegs, false, nil)
	}
	c.Access(0) // 0 becomes MRU; LRU is 1
	victims, _ := c.Fill(9, MaxSegs, false, nil)
	if len(victims) != 1 || victims[0].Addr != 1 {
		t.Fatalf("victims = %+v, want [1]", victims)
	}
}

func TestCompressedPrefetchBit(t *testing.T) {
	c := oneSet()
	c.Fill(2, 4, true, nil)
	_, wasPf, _, ok := c.Access(2)
	if !ok || !wasPf {
		t.Fatal("first access to prefetched line should report prefetch hit")
	}
	if c.Stats.PrefetchHits != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestCompressedRejectsBadSegs(t *testing.T) {
	c := oneSet()
	for _, segs := range []uint8{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fill segs=%d should panic", segs)
				}
			}()
			c.Fill(BlockAddr(segs)+50, segs, false, nil)
		}()
	}
}

func TestEffectiveSizeTracksCompressibility(t *testing.T) {
	// 64 KB compressed cache; fill a working set of 2-segment lines twice
	// the uncompressed capacity and verify effective size exceeds physical.
	c := NewCompressed(64*1024, 8, 32)
	lines := 2 * 64 * 1024 / LineBytes
	var buf []Line
	for a := 0; a < lines; a++ {
		buf = buf[:0]
		if c.Lookup(BlockAddr(a)) == nil {
			c.Fill(BlockAddr(a), 2, false, buf)
		}
	}
	if eff := c.EffectiveBytes(); eff <= 64*1024 {
		t.Fatalf("effective %d should exceed physical 65536", eff)
	}
	if msg := c.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// Property: invariants hold under arbitrary fill/access/resize/invalidate
// sequences, and the segment budget is never exceeded.
func TestCompressedInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCompressed(8*LineBytes, 8, 32) // 2 sets
		var buf []Line
		for op := 0; op < 800; op++ {
			a := BlockAddr(rng.Intn(24))
			segs := uint8(1 + rng.Intn(MaxSegs))
			switch rng.Intn(4) {
			case 0:
				if c.Lookup(a) == nil {
					buf = buf[:0]
					c.Fill(a, segs, rng.Intn(2) == 0, buf)
				}
			case 1:
				c.Access(a)
			case 2:
				buf = buf[:0]
				c.Resize(a, segs, buf)
			case 3:
				c.Invalidate(a)
			}
			if msg := c.CheckInvariants(); msg != "" {
				t.Logf("seed %d op %d: %s", seed, op, msg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressedFillAccess(b *testing.B) {
	c := NewCompressed(1<<20, 8, 32)
	rng := rand.New(rand.NewSource(1))
	var buf []Line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := BlockAddr(rng.Intn(1 << 16))
		if _, _, _, ok := c.Access(a); !ok {
			buf = buf[:0]
			c.Fill(a, uint8(1+rng.Intn(8)), false, buf)
		}
	}
}
