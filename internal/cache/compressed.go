package cache

import "fmt"

// Compressed is the decoupled variable-segment cache of Alameldeen &
// Wood: each set has more address tags than uncompressed-line data
// capacity, and the set's data space is divided into 8-byte segments.
// A compressed line occupies 1..7 segments, an uncompressed line 8.
// With the paper's configuration (8 tags, data space for 4 uncompressed
// lines = 32 segments) compression can at most double the capacity,
// raising effective associativity from 4-way to 8-way.
//
// Invalid tags retain the address of the line that last occupied them,
// providing the "extra address tags" that the adaptive prefetching
// mechanism uses to detect harmful prefetches.
//
// Note on the paper's parameters: §2 states both "data space for 4
// uncompressed lines ... 8 address tags" and "64 8-byte segments" per
// set; the two are inconsistent (4 × 64 B = 32 segments). We follow the
// capacity statement ("compression can at most double the capacity",
// "4-way to 8-way"), i.e. 32 segments per set, which also matches the
// decoupled variable-segment cache of the ISCA 2004 paper.
// Tag metadata is mirrored struct-of-arrays style (see SetAssoc): tagw
// holds one word per (set, tag) in LRU order so demand lookups scan
// contiguous memory; segsUsed and valid cache the per-set segment
// occupancy and global valid-line count that the packing and sampling
// paths would otherwise recompute by scanning Line structs.
type Compressed struct {
	sets     [][]Line    // ordered MRU first; invalid tags keep stale Addr
	tagw     []BlockAddr // nsets*tags mirror: Addr|tagValid, 0 = invalid
	segsUsed []int32     // per-set occupied data segments
	valid    int         // current valid-line count
	tags     int         // tags per set
	dataSegs int         // data segments per set
	setMask  BlockAddr
	Stats    Stats

	// CompressedHits counts hits to lines stored in fewer than MaxSegs
	// segments, which incur the decompression penalty.
	CompressedHits uint64
	// ExpansionEvicts counts evictions forced by in-place size growth.
	ExpansionEvicts uint64
}

// NewCompressed builds a decoupled variable-segment cache with
// dataBytes of data capacity, tagsPerSet address tags per set and
// dataSegsPerSet 8-byte data segments per set.
func NewCompressed(dataBytes, tagsPerSet, dataSegsPerSet int) *Compressed {
	if tagsPerSet <= 0 || dataSegsPerSet <= 0 {
		panic("cache: tags and segments per set must be positive")
	}
	if dataSegsPerSet < MaxSegs {
		panic("cache: a set must hold at least one uncompressed line")
	}
	nsets := dataBytes / (dataSegsPerSet * SegmentBytes)
	checkPow2(nsets, "compressed cache set count")
	c := &Compressed{
		sets:     make([][]Line, nsets),
		tagw:     make([]BlockAddr, nsets*tagsPerSet),
		segsUsed: make([]int32, nsets),
		tags:     tagsPerSet,
		dataSegs: dataSegsPerSet,
		setMask:  BlockAddr(nsets - 1),
	}
	backing := make([]Line, nsets*tagsPerSet)
	for i := range c.sets {
		c.sets[i] = backing[i*tagsPerSet : (i+1)*tagsPerSet : (i+1)*tagsPerSet]
		for w := range c.sets[i] {
			c.sets[i][w].Owner = -1
		}
	}
	return c
}

// Sets returns the number of sets.
func (c *Compressed) Sets() int { return len(c.sets) }

// TagsPerSet returns the number of address tags per set.
func (c *Compressed) TagsPerSet() int { return c.tags }

// DataSegsPerSet returns the data capacity of one set in segments.
func (c *Compressed) DataSegsPerSet() int { return c.dataSegs }

// CapacityBytes returns the physical data capacity.
func (c *Compressed) CapacityBytes() int {
	return len(c.sets) * c.dataSegs * SegmentBytes
}

func (c *Compressed) setIndex(a BlockAddr) int { return int(a & c.setMask) }

// findWay scans the set's tag mirror for a valid line holding a and
// returns the tag index, or -1.
func (c *Compressed) findWay(si int, a BlockAddr) int {
	key := a | tagValid
	tg := c.tagw[si*c.tags : si*c.tags+c.tags]
	for i, t := range tg {
		if t == key {
			return i
		}
	}
	return -1
}

// Lookup returns the valid line for a, or nil, without LRU or stats
// side effects.
func (c *Compressed) Lookup(a BlockAddr) *Line {
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		return &c.sets[si][i]
	}
	return nil
}

// Access performs a demand lookup with LRU update and statistics, as
// SetAssoc.Access. compressed reports whether the hit line is stored
// compressed (decompression penalty applies).
func (c *Compressed) Access(a BlockAddr) (ln *Line, wasPrefetch, compressed, ok bool) {
	c.Stats.Accesses++
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		set := c.sets[si]
		wasPrefetch = set[i].Prefetch
		if wasPrefetch {
			set[i].Prefetch = false
			c.Stats.PrefetchHits++
		}
		compressed = set[i].Segs < MaxSegs
		if compressed {
			c.CompressedHits++
		}
		c.touch(si, i)
		c.Stats.Hits++
		return &set[0], wasPrefetch, compressed, true
	}
	c.Stats.Misses++
	return nil, false, false, false
}

// touch moves tag i of set si to MRU position in both the Line array
// and the tag mirror.
func (c *Compressed) touch(si, i int) {
	if i == 0 {
		return
	}
	set := c.sets[si]
	ln := set[i]
	copy(set[1:i+1], set[0:i])
	set[0] = ln
	tg := c.tagw[si*c.tags : si*c.tags+c.tags]
	t := tg[i]
	copy(tg[1:i+1], tg[0:i])
	tg[0] = t
}

// Touch promotes a to MRU if present.
func (c *Compressed) Touch(a BlockAddr) bool {
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		c.touch(si, i)
		return true
	}
	return false
}

// Fill inserts a occupying segs segments at MRU position. Victims are
// appended to vbuf (reused to avoid allocation) and returned: the LRU
// valid lines are evicted until a tag is free and the data space fits.
// The inserted line pointer is valid until the set next mutates.
func (c *Compressed) Fill(a BlockAddr, segs uint8, prefetch bool, vbuf []Line) (victims []Line, inserted *Line) {
	if segs < 1 || segs > MaxSegs {
		panic(fmt.Sprintf("cache: fill with %d segments", segs))
	}
	si := c.setIndex(a)
	set := c.sets[si]
	if c.findWay(si, a) >= 0 {
		panic(fmt.Sprintf("cache: duplicate fill of block %#x", uint64(a)))
	}
	c.Stats.Fills++
	victims = c.makeRoom(si, int(segs), vbuf)
	// Claim the least-recently-used invalid tag (there is one now).
	tg := c.tagw[si*c.tags : si*c.tags+c.tags]
	vi := -1
	for i := len(set) - 1; i >= 0; i-- {
		if tg[i] == 0 {
			vi = i
			break
		}
	}
	if vi == -1 {
		panic("cache: makeRoom left no free tag")
	}
	set[vi].reset()
	set[vi].Addr = a
	set[vi].Valid = true
	set[vi].Prefetch = prefetch
	set[vi].Segs = segs
	tg[vi] = a | tagValid
	c.segsUsed[si] += int32(segs)
	c.valid++
	c.touch(si, vi)
	return victims, &set[0]
}

// makeRoom evicts LRU valid lines until the set has a free tag and at
// least need free segments. Evicted lines are appended to vbuf.
func (c *Compressed) makeRoom(si, need int, vbuf []Line) []Line {
	set := c.sets[si]
	tg := c.tagw[si*c.tags : si*c.tags+c.tags]
	for {
		freeTag := false
		for i := range tg {
			if tg[i] == 0 {
				freeTag = true
				break
			}
		}
		if freeTag && c.dataSegs-int(c.segsUsed[si]) >= need {
			return vbuf
		}
		// Evict the LRU valid line.
		vi := -1
		for i := len(set) - 1; i >= 0; i-- {
			if tg[i] != 0 {
				vi = i
				break
			}
		}
		if vi == -1 {
			panic("cache: set has no valid line to evict but no room")
		}
		victim := set[vi]
		c.Stats.Evictions++
		if victim.Dirty {
			c.Stats.DirtyEvicts++
		}
		if victim.Prefetch {
			c.Stats.UselessPf++
		}
		vbuf = append(vbuf, victim)
		set[vi].reset() // Addr retained: victim tag
		set[vi].VictimTag = true
		tg[vi] = 0
		c.segsUsed[si] -= int32(victim.Segs)
		c.valid--
	}
}

// Resize changes the stored size of a (e.g. a dirty writeback whose new
// contents compress differently). Growing a line may force evictions of
// other lines, returned via vbuf. It reports whether a was present.
func (c *Compressed) Resize(a BlockAddr, segs uint8, vbuf []Line) (victims []Line, found bool) {
	if segs < 1 || segs > MaxSegs {
		panic(fmt.Sprintf("cache: resize to %d segments", segs))
	}
	si := c.setIndex(a)
	set := c.sets[si]
	idx := c.findWay(si, a)
	if idx == -1 {
		return vbuf, false
	}
	old := set[idx].Segs
	if segs <= old {
		set[idx].Segs = segs
		c.segsUsed[si] -= int32(old - segs)
		return vbuf, true
	}
	grow := int(segs - old)
	victims = vbuf
	tg := c.tagw[si*c.tags : si*c.tags+c.tags]
	for c.dataSegs-int(c.segsUsed[si]) < grow {
		// Evict the LRU valid line other than a itself.
		vi := -1
		for i := len(set) - 1; i >= 0; i-- {
			if tg[i] != 0 && set[i].Addr != a {
				vi = i
				break
			}
		}
		if vi == -1 {
			// Only a remains; an uncompressed line always fits alone.
			break
		}
		victim := set[vi]
		c.Stats.Evictions++
		c.ExpansionEvicts++
		if victim.Dirty {
			c.Stats.DirtyEvicts++
		}
		if victim.Prefetch {
			c.Stats.UselessPf++
		}
		victims = append(victims, victim)
		set[vi].reset()
		set[vi].VictimTag = true
		tg[vi] = 0
		c.segsUsed[si] -= int32(victim.Segs)
		c.valid--
	}
	// reset() does not reorder the set, so idx is still correct.
	set[idx].Segs = segs
	c.segsUsed[si] += int32(segs - old)
	return victims, true
}

// Invalidate removes a, returning the line as it was (Valid=false if
// absent). The invalid tag keeps the address as victim history.
func (c *Compressed) Invalidate(a BlockAddr) Line {
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		set := c.sets[si]
		ln := set[i]
		c.Stats.Invals++
		set[i].reset()
		set[i].VictimTag = true
		c.tagw[si*c.tags+i] = 0
		c.segsUsed[si] -= int32(ln.Segs)
		c.valid--
		return ln
	}
	return Line{}
}

// InvalidTagMatch scans the invalid tags of a's set in LRU-stack order
// and reports whether any records address a — the paper's test for "this
// miss was caused by a replacement". The matching tag is cleared so one
// replacement is only counted once.
func (c *Compressed) InvalidTagMatch(a BlockAddr) bool {
	set := c.sets[c.setIndex(a)]
	for i := len(set) - 1; i >= 0; i-- {
		if !set[i].Valid && set[i].VictimTag && set[i].Addr == a {
			set[i].VictimTag = false
			return true
		}
	}
	return false
}

// VictimTagCount returns the number of invalid tags currently holding
// victim addresses in a's set — the paper's "unused compression tags"
// whose availability limits harmful-prefetch detection (§5.4).
func (c *Compressed) VictimTagCount(a BlockAddr) int {
	set := c.sets[c.setIndex(a)]
	n := 0
	for i := range set {
		if !set[i].Valid && set[i].VictimTag {
			n++
		}
	}
	return n
}

// AnyPrefetchInSet reports whether any valid line in a's set has its
// prefetch bit set.
func (c *Compressed) AnyPrefetchInSet(a BlockAddr) bool {
	set := c.sets[c.setIndex(a)]
	for i := range set {
		if set[i].Valid && set[i].Prefetch {
			return true
		}
	}
	return false
}

// ValidLines returns the number of valid cached lines.
func (c *Compressed) ValidLines() int { return c.valid }

// EffectiveBytes returns the effective cache size: valid lines × 64 B.
// With incompressible data this equals at most CapacityBytes; with
// compressible data it can reach 2× (tags permitting).
func (c *Compressed) EffectiveBytes() int { return c.ValidLines() * LineBytes }

// UsedSegments returns the total data segments currently occupied.
func (c *Compressed) UsedSegments() int {
	n := 0
	for _, u := range c.segsUsed {
		n += int(u)
	}
	return n
}

// ForEachValid calls fn for every valid line; the cache must not be
// mutated during iteration.
func (c *Compressed) ForEachValid(fn func(*Line)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].Valid {
				fn(&set[i])
			}
		}
	}
}

// CheckInvariants validates internal consistency (test and audit
// support): no duplicate valid tags in a set, segment budget respected,
// valid lines have legal sizes, invalid tags own no segments, and the
// struct-of-arrays mirrors (tag words, per-set segment counts, global
// valid-line count) exactly tracking the Line array. It returns a
// descriptive error string, or "".
func (c *Compressed) CheckInvariants() string {
	nvalid := 0
	for si, set := range c.sets {
		used := 0
		seen := map[BlockAddr]bool{}
		for i := range set {
			want := BlockAddr(0)
			if set[i].Valid {
				want = set[i].Addr | tagValid
				nvalid++
			}
			if got := c.tagw[si*c.tags+i]; got != want {
				return fmt.Sprintf("set %d tag %d: tag mirror %#x desynced from line (want %#x)",
					si, i, uint64(got), uint64(want))
			}
			if !set[i].Valid {
				if set[i].Segs != 0 || set[i].Dirty || set[i].Prefetch {
					return fmt.Sprintf("set %d tag %d: invalid tag not reset (segs %d dirty %v pf %v)",
						si, i, set[i].Segs, set[i].Dirty, set[i].Prefetch)
				}
				continue
			}
			if set[i].Segs < 1 || set[i].Segs > MaxSegs {
				return fmt.Sprintf("set %d: line %#x has %d segs", si, uint64(set[i].Addr), set[i].Segs)
			}
			if seen[set[i].Addr] {
				return fmt.Sprintf("set %d: duplicate tag %#x", si, uint64(set[i].Addr))
			}
			seen[set[i].Addr] = true
			used += int(set[i].Segs)
			if int(set[i].Addr&c.setMask) != si {
				return fmt.Sprintf("set %d: line %#x maps to set %d", si, uint64(set[i].Addr), set[i].Addr&c.setMask)
			}
		}
		if used > c.dataSegs {
			return fmt.Sprintf("set %d: %d segments used > %d budget", si, used, c.dataSegs)
		}
		if used != int(c.segsUsed[si]) {
			return fmt.Sprintf("set %d: segment counter %d desynced from actual usage %d", si, c.segsUsed[si], used)
		}
	}
	if nvalid != c.valid {
		return fmt.Sprintf("valid-line counter %d desynced from actual count %d", c.valid, nvalid)
	}
	return ""
}

// InjectDuplicateTag deliberately corrupts the cache for fault-injection
// tests: it revives an invalid tag with the address of a valid line in
// the same set, creating the double-owned state CheckInvariants must
// catch. The struct-of-arrays mirrors are kept consistent with the
// revived line so the duplicate-tag violation is the one that fires.
// It reports whether a suitable set was found.
func (c *Compressed) InjectDuplicateTag() bool {
	for si, set := range c.sets {
		vi, ii := -1, -1
		for i := range set {
			if set[i].Valid && vi == -1 {
				vi = i
			}
			if !set[i].Valid && ii == -1 {
				ii = i
			}
		}
		if vi == -1 || ii == -1 {
			continue
		}
		set[ii].Valid = true
		set[ii].Addr = set[vi].Addr
		set[ii].Segs = 1
		c.tagw[si*c.tags+ii] = set[ii].Addr | tagValid
		c.segsUsed[si]++
		c.valid++
		return true
	}
	return false
}
