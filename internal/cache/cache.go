// Package cache implements the cache structures of the HPCA 2007
// compression+prefetching CMP study: conventional set-associative caches
// (private L1s and the uncompressed shared-L2 baseline) and the decoupled
// variable-segment compressed cache used for the compressed shared L2.
//
// All caches operate on 64-byte block addresses (BlockAddr). They are
// purely functional state machines: hits, fills, evictions and
// invalidations mutate tag state and report what happened; all timing is
// applied by the simulation engine on top of these results.
package cache

import (
	"fmt"
	"math/bits"
)

// BlockAddr is a cache-block-aligned address: the byte address divided by
// the 64-byte line size.
type BlockAddr uint64

// LineBytes is the cache line size in bytes (fixed by the paper's Table 1).
const LineBytes = 64

// SegmentBytes is the compressed-cache allocation granule and off-chip
// flit size.
const SegmentBytes = 8

// MaxSegs is the size of an uncompressed line in segments.
const MaxSegs = LineBytes / SegmentBytes

// DefaultTagsPerSet and DefaultSegsPerSet are the paper's compressed-L2
// set geometry: DefaultLinesPerSet uncompressed lines of data area per
// set, with twice as many address tags so compression can double the
// effective line count. sim.NewConfig instantiates the compressed L2
// with these, and workload.PackedRatio packs its calibration samples
// against the same two bounds — deriving both from one place keeps a
// geometry change from silently skewing CalibrateKnob targets.
const (
	DefaultLinesPerSet = 4
	DefaultTagsPerSet  = 2 * DefaultLinesPerSet
	DefaultSegsPerSet  = DefaultLinesPerSet * MaxSegs
)

// MaxEffectiveRatio is the compressed cache's best-case effective-size
// gain over the uncompressed baseline: the tag budget caps a set at
// DefaultTagsPerSet lines in DefaultLinesPerSet lines' worth of space.
const MaxEffectiveRatio = float64(DefaultTagsPerSet) / float64(DefaultLinesPerSet)

// Line is one cache tag and its metadata. The same structure serves L1s
// (coherence state in Dirty: M==dirty, S==clean) and the shared L2
// (Sharers/Owner track on-chip L1 copies; Segs tracks compressed size).
type Line struct {
	Addr     BlockAddr
	Valid    bool
	Dirty    bool
	Prefetch bool   // set while a prefetched line is unreferenced (paper §3)
	PfBy     uint8  // prefetcher that brought the line (0 none; see coherence.PfSource)
	Segs     uint8  // occupied 8-byte segments, 1..8; 8 = uncompressed
	Sharers  uint32 // L2 only: bitmask of cores whose L1D holds the line
	ISharers uint32 // L2 only: bitmask of cores whose L1I holds the line
	Owner    int8   // L2 only: core holding the line in M state, or -1

	// VictimTag marks an invalid tag that still records the address of
	// the line that last occupied it (the compressed cache's extra-tag
	// victim history used for harmful-prefetch detection).
	VictimTag bool
}

// reset clears a line to the invalid state but preserves Addr so that
// invalid tags serve as victim-address history for harmful-prefetch
// detection (the compressed cache's "extra tags").
func (ln *Line) reset() {
	ln.Valid = false
	ln.Dirty = false
	ln.Prefetch = false
	ln.PfBy = 0
	ln.Segs = 0
	ln.Sharers = 0
	ln.ISharers = 0
	ln.Owner = -1
	ln.VictimTag = false
}

// Stats counts the events a cache observes. The simulation engine reads
// these for miss-rate and prefetch metrics.
type Stats struct {
	Accesses     uint64
	Hits         uint64
	Misses       uint64
	Fills        uint64
	Evictions    uint64
	DirtyEvicts  uint64
	PrefetchHits uint64 // first demand reference to a prefetched line
	UselessPf    uint64 // prefetched lines evicted unreferenced
	Invals       uint64
}

// MissRate returns misses per access, or 0 when no accesses occurred.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// tagValid is OR-ed into a line's address to form its entry in the
// struct-of-arrays tag mirror: valid lines store Addr|tagValid, invalid
// ways store 0, so a lookup key (a|tagValid) can never match an invalid
// way. Block addresses must stay below 2^63 (byte addresses below 2^69),
// far above any simulated footprint.
const tagValid BlockAddr = 1 << 63

// SetAssoc is a conventional set-associative write-back cache with true
// LRU replacement. Each set is ordered most-recently-used first. An
// optional victim-tag FIFO per set records recently replaced block
// addresses so the adaptive prefetcher can detect harmful prefetches even
// without the compressed cache's extra tags (paper §5.4 notes the
// adaptive algorithm has four extra tags per set when compression is
// disabled).
//
// Tag metadata is mirrored struct-of-arrays style: tags holds one word
// per (set, way) in LRU order, kept exactly in sync with sets, so the
// demand-lookup scan touches one contiguous cache line per set instead
// of striding across full Line structs.
type SetAssoc struct {
	sets       [][]Line
	tags       []BlockAddr   // nsets*ways mirror: Addr|tagValid, 0 = invalid
	victimTags [][]BlockAddr // per-set FIFO of replaced addresses
	valid      int           // current valid-line count
	ways       int
	setShift   uint
	setMask    BlockAddr
	Stats      Stats
}

// NewSetAssoc builds a cache of totalBytes capacity with the given
// associativity and 64-byte lines. victimTags extra replaced-address tags
// are kept per set (0 disables them). totalBytes must give a power-of-two
// set count.
func NewSetAssoc(totalBytes, ways, victimTags int) *SetAssoc {
	if totalBytes <= 0 || ways <= 0 {
		panic("cache: capacity and ways must be positive")
	}
	nsets := totalBytes / (LineBytes * ways)
	if nsets == 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", nsets))
	}
	c := &SetAssoc{
		sets:    make([][]Line, nsets),
		tags:    make([]BlockAddr, nsets*ways),
		ways:    ways,
		setMask: BlockAddr(nsets - 1),
	}
	backing := make([]Line, nsets*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
		for w := range c.sets[i] {
			c.sets[i][w].Owner = -1
		}
	}
	if victimTags > 0 {
		c.victimTags = make([][]BlockAddr, nsets)
		for i := range c.victimTags {
			c.victimTags[i] = make([]BlockAddr, 0, victimTags)
		}
	}
	return c
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// CapacityBytes returns the data capacity.
func (c *SetAssoc) CapacityBytes() int { return len(c.sets) * c.ways * LineBytes }

func (c *SetAssoc) setIndex(a BlockAddr) int { return int(a & c.setMask) }

// findWay scans the set's tag mirror for a and returns the way index,
// or -1. The scan touches only the contiguous tag words.
func (c *SetAssoc) findWay(si int, a BlockAddr) int {
	key := a | tagValid
	tg := c.tags[si*c.ways : si*c.ways+c.ways]
	for i, t := range tg {
		if t == key {
			return i
		}
	}
	return -1
}

// Lookup returns the line holding a, or nil, without updating LRU order
// or statistics. The pointer stays valid until the set is next mutated.
func (c *SetAssoc) Lookup(a BlockAddr) *Line {
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		return &c.sets[si][i]
	}
	return nil
}

// Access performs a demand lookup: on a hit the line is moved to MRU
// position and returned with ok=true; on a miss nil,false is returned.
// Hit/miss statistics are updated; a hit to a line with its prefetch bit
// set counts as a prefetch hit and clears the bit (the adaptive
// prefetcher's "useful prefetch" event, reported via the return).
func (c *SetAssoc) Access(a BlockAddr) (ln *Line, wasPrefetch bool, ok bool) {
	c.Stats.Accesses++
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		set := c.sets[si]
		wasPrefetch = set[i].Prefetch
		if wasPrefetch {
			set[i].Prefetch = false
			c.Stats.PrefetchHits++
		}
		c.touch(si, i)
		c.Stats.Hits++
		return &set[0], wasPrefetch, true
	}
	c.Stats.Misses++
	return nil, false, false
}

// FastHit handles the plain-hit case of a demand access in one step: the
// line is valid, its prefetch bit is clear (no adaptive event, no L2
// inclusion-bit bookkeeping), and a store finds it already dirty (no
// upgrade walk). On success the hit is fully accounted (stats + LRU
// promotion) exactly as Access would have. On failure nothing is
// mutated — the caller must run the full access path.
func (c *SetAssoc) FastHit(a BlockAddr, store bool) bool {
	si := c.setIndex(a)
	i := c.findWay(si, a)
	if i < 0 {
		return false
	}
	ln := &c.sets[si][i]
	if ln.Prefetch || (store && !ln.Dirty) {
		return false
	}
	c.Stats.Accesses++
	c.Stats.Hits++
	c.touch(si, i)
	return true
}

// touch moves way i of set si to the MRU (front) position in both the
// Line array and the tag mirror.
func (c *SetAssoc) touch(si, i int) {
	if i == 0 {
		return
	}
	set := c.sets[si]
	ln := set[i]
	copy(set[1:i+1], set[0:i])
	set[0] = ln
	tg := c.tags[si*c.ways : si*c.ways+c.ways]
	t := tg[i]
	copy(tg[1:i+1], tg[0:i])
	tg[0] = t
}

// Touch promotes a to MRU if present, without stats. It reports whether
// the line was found.
func (c *SetAssoc) Touch(a BlockAddr) bool {
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		c.touch(si, i)
		return true
	}
	return false
}

// Fill inserts address a at MRU position, evicting the LRU line if the
// set is full. It returns the victim (Valid=false in the returned copy
// means nothing was evicted). prefetch marks the inserted line's prefetch
// bit. The returned inserted pointer is valid until the set mutates.
func (c *SetAssoc) Fill(a BlockAddr, prefetch bool) (victim Line, inserted *Line) {
	si := c.setIndex(a)
	set := c.sets[si]
	// Refuse duplicate fills: caller must check with Lookup first.
	if c.findWay(si, a) >= 0 {
		panic(fmt.Sprintf("cache: duplicate fill of block %#x", uint64(a)))
	}
	c.Stats.Fills++
	// Prefer an invalid way; otherwise evict the true LRU (last valid).
	tg := c.tags[si*c.ways : si*c.ways+c.ways]
	vi := -1
	for i := len(set) - 1; i >= 0; i-- {
		if tg[i] == 0 {
			vi = i
			break
		}
	}
	if vi == -1 {
		vi = len(set) - 1
		victim = set[vi]
		c.Stats.Evictions++
		if victim.Dirty {
			c.Stats.DirtyEvicts++
		}
		if victim.Prefetch {
			c.Stats.UselessPf++
		}
		c.recordVictim(si, victim.Addr)
	} else {
		c.valid++
	}
	set[vi].reset()
	set[vi].Addr = a
	set[vi].Valid = true
	set[vi].Prefetch = prefetch
	set[vi].Segs = MaxSegs
	tg[vi] = a | tagValid
	c.touch(si, vi)
	return victim, &set[0]
}

// recordVictim appends a replaced address to the set's victim-tag FIFO.
func (c *SetAssoc) recordVictim(si int, a BlockAddr) {
	if c.victimTags == nil {
		return
	}
	vt := c.victimTags[si]
	if len(vt) == cap(vt) && len(vt) > 0 {
		copy(vt, vt[1:])
		vt = vt[:len(vt)-1]
	}
	c.victimTags[si] = append(vt, a)
}

// VictimTagMatch reports whether a appears in the set's victim-address
// history (FIFO victim tags), and removes it if so. Used by the adaptive
// prefetcher's harmful-prefetch check on misses.
func (c *SetAssoc) VictimTagMatch(a BlockAddr) bool {
	if c.victimTags == nil {
		return false
	}
	si := c.setIndex(a)
	vt := c.victimTags[si]
	for i := range vt {
		if vt[i] == a {
			c.victimTags[si] = append(vt[:i], vt[i+1:]...)
			return true
		}
	}
	return false
}

// AnyPrefetchInSet reports whether any valid line in a's set has its
// prefetch bit set (the conservative "victimized by a harmful prefetch"
// condition of paper §3).
func (c *SetAssoc) AnyPrefetchInSet(a BlockAddr) bool {
	set := c.sets[c.setIndex(a)]
	for i := range set {
		if set[i].Valid && set[i].Prefetch {
			return true
		}
	}
	return false
}

// Invalidate removes a from the cache, returning a copy of the line as
// it was (Valid=false if it was not present).
func (c *SetAssoc) Invalidate(a BlockAddr) Line {
	si := c.setIndex(a)
	if i := c.findWay(si, a); i >= 0 {
		set := c.sets[si]
		ln := set[i]
		c.Stats.Invals++
		set[i].reset()
		// Keep Addr for victim-tag purposes of plain caches too.
		set[i].Addr = a
		c.tags[si*c.ways+i] = 0
		c.valid--
		return ln
	}
	return Line{}
}

// ValidLines returns the number of valid lines currently cached.
func (c *SetAssoc) ValidLines() int { return c.valid }

// ForEachValid calls fn for every valid line. Mutating the cache inside
// fn is not allowed.
func (c *SetAssoc) ForEachValid(fn func(*Line)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].Valid {
				fn(&set[i])
			}
		}
	}
}

// CheckInvariants validates internal consistency (audit support): no
// duplicate valid tags, correct set mapping, uncompressed lines stored
// at full size, invalid lines fully reset, victim-tag FIFOs within
// bounds, and the struct-of-arrays tag mirror plus valid-line counter
// exactly tracking the Line array. It returns a description of the
// first violation, or "".
func (c *SetAssoc) CheckInvariants() string {
	nvalid := 0
	for si, set := range c.sets {
		seen := map[BlockAddr]bool{}
		for i := range set {
			ln := &set[i]
			want := BlockAddr(0)
			if ln.Valid {
				want = ln.Addr | tagValid
				nvalid++
			}
			if got := c.tags[si*c.ways+i]; got != want {
				return fmt.Sprintf("set %d way %d: tag mirror %#x desynced from line (want %#x)",
					si, i, uint64(got), uint64(want))
			}
			if !ln.Valid {
				if ln.Segs != 0 || ln.Dirty || ln.Prefetch || ln.Sharers != 0 || ln.ISharers != 0 {
					return fmt.Sprintf("set %d way %d: invalid line not reset (segs %d dirty %v pf %v)",
						si, i, ln.Segs, ln.Dirty, ln.Prefetch)
				}
				continue
			}
			if ln.Segs != MaxSegs {
				return fmt.Sprintf("set %d: line %#x stored in %d segments (uncompressed cache)",
					si, uint64(ln.Addr), ln.Segs)
			}
			if seen[ln.Addr] {
				return fmt.Sprintf("set %d: duplicate tag %#x", si, uint64(ln.Addr))
			}
			seen[ln.Addr] = true
			if c.setIndex(ln.Addr) != si {
				return fmt.Sprintf("set %d: line %#x maps to set %d", si, uint64(ln.Addr), c.setIndex(ln.Addr))
			}
		}
	}
	if nvalid != c.valid {
		return fmt.Sprintf("valid-line counter %d desynced from actual count %d", c.valid, nvalid)
	}
	return ""
}

// checkPow2 panics unless v is a power of two.
func checkPow2(v int, what string) {
	if v <= 0 || bits.OnesCount(uint(v)) != 1 {
		panic(fmt.Sprintf("cache: %s (%d) must be a power of two", what, v))
	}
}
