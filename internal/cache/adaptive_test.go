package cache

import "testing"

func TestPolicyStartsCompressing(t *testing.T) {
	p := NewAdaptivePolicy()
	if !p.ShouldCompress() {
		t.Fatal("fresh policy should compress")
	}
}

func TestPenalizedHitsTurnPolicyOff(t *testing.T) {
	p := NewAdaptivePolicy()
	// Many shallow hits to compressed lines, no capacity benefit: the
	// incompressible-workload pattern.
	for i := 0; i < 10; i++ {
		p.OnHit(1, true)
	}
	if p.ShouldCompress() {
		t.Fatalf("counter %d: policy should have turned compression off", p.Counter())
	}
	if p.PenalizedHits != 10 {
		t.Fatalf("penalized hits = %d", p.PenalizedHits)
	}
}

func TestAvoidedMissesKeepPolicyOn(t *testing.T) {
	p := NewAdaptivePolicy()
	// One deep hit outweighs many penalized hits (400 vs 5 per event).
	for i := 0; i < 50; i++ {
		p.OnHit(0, true)
	}
	p.OnHit(6, true)
	if !p.ShouldCompress() {
		t.Fatalf("counter %d: one avoided miss should outweigh 50 penalties", p.Counter())
	}
	if p.AvoidedMisses != 1 {
		t.Fatalf("avoided misses = %d", p.AvoidedMisses)
	}
}

func TestShallowUncompressedHitsAreNeutral(t *testing.T) {
	p := NewAdaptivePolicy()
	for i := 0; i < 100; i++ {
		p.OnHit(2, false) // uncompressed shallow hit: no cost, no benefit
	}
	if p.Counter() != 0 {
		t.Fatalf("counter = %d, want 0", p.Counter())
	}
}

func TestCounterSaturates(t *testing.T) {
	p := NewAdaptivePolicy()
	for i := 0; i < 1<<16; i++ {
		p.OnHit(7, true)
	}
	if p.Counter() != 1<<20 {
		t.Fatalf("counter = %d, want saturation at %d", p.Counter(), 1<<20)
	}
	for i := 0; i < 1<<20; i++ {
		p.OnHit(0, true)
	}
	if p.Counter() != -(1 << 20) {
		t.Fatalf("counter = %d, want floor", p.Counter())
	}
}

func TestStackDepth(t *testing.T) {
	c := NewCompressed(4*LineBytes, 8, 32)
	c.Fill(1, 4, false, nil)
	c.Fill(2, 4, false, nil)
	c.Fill(3, 4, false, nil)
	// MRU order: 3, 2, 1.
	if d := c.StackDepth(3); d != 0 {
		t.Fatalf("depth(3) = %d", d)
	}
	if d := c.StackDepth(1); d != 2 {
		t.Fatalf("depth(1) = %d", d)
	}
	if d := c.StackDepth(99); d != -1 {
		t.Fatalf("depth(absent) = %d", d)
	}
	// Access reorders.
	c.Access(1)
	if d := c.StackDepth(1); d != 0 {
		t.Fatalf("depth(1) after access = %d", d)
	}
}
