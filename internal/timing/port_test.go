package timing

import "testing"

// newPort is a test helper: 2 bytes/cycle → 1 byte costs half a cycle.
func newPort(t *testing.T, bw float64) *Port {
	t.Helper()
	p, err := NewPort(bw)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPortLowPriorityQueuesFIFO(t *testing.T) {
	p := newPort(t, 2)
	occ := p.Cost(8) // 4 cycles
	if occ != 4*TicksPerCycle {
		t.Fatalf("cost %v", occ)
	}
	if start := p.Reserve(0, 8, false); start != 0 {
		t.Fatalf("first low start %d", start)
	}
	if start := p.Reserve(0, 8, false); start != occ {
		t.Fatalf("second low start %d, want %d", start, occ)
	}
	if p.BusyUntil() != 2*occ || p.WaitTicks() != occ || p.Grants() != 2 {
		t.Fatalf("until=%d wait=%d grants=%d", p.BusyUntil(), p.WaitTicks(), p.Grants())
	}
}

// TestPortDemandOvertakesBacklog pins the priority policy: a demand
// message waits for at most one residual low-priority service, not the
// whole backlog.
func TestPortDemandOvertakesBacklog(t *testing.T) {
	p := newPort(t, 1)
	// Queue three low-priority messages of 10 bytes each.
	for i := 0; i < 3; i++ {
		p.Reserve(0, 10, false)
	}
	busyAll := p.BusyUntil() // 30 cycles
	// A demand message of 4 bytes at t=0 waits at most its own
	// occupancy (the residual bound), not the 30-cycle backlog.
	start := p.Reserve(0, 4, true)
	if want := p.Cost(4); start != want {
		t.Fatalf("demand start %d, want residual bound %d", start, want)
	}
	if p.BusyUntil() != busyAll {
		t.Fatalf("demand overlap must not extend the horizon: %d vs %d", p.BusyUntil(), busyAll)
	}
	// Demand traffic still queues behind demand traffic.
	start2 := p.Reserve(0, 4, true)
	if start2 < start+p.Cost(4) {
		t.Fatalf("second demand start %d overlaps first (ends %d)", start2, start+p.Cost(4))
	}
}

func TestPortSameTickSamePriorityCallOrder(t *testing.T) {
	p := newPort(t, 4)
	a := p.Reserve(100, 8, true)
	b := p.Reserve(100, 8, true)
	if a != 100 || b != a+p.Cost(8) {
		t.Fatalf("same-tick demand pair: %d then %d (want call order)", a, b)
	}
}

func TestPortInfinite(t *testing.T) {
	p := newPort(t, 0)
	if !p.Infinite() {
		t.Fatal("not infinite")
	}
	for i := 0; i < 5; i++ {
		if start := p.Reserve(50, 1000, i%2 == 0); start != 50 {
			t.Fatalf("infinite port queued: start %d", start)
		}
	}
	if p.BusyTicks() != 0 || p.WaitTicks() != 0 || p.Grants() != 5 {
		t.Fatalf("infinite stats busy=%d wait=%d grants=%d", p.BusyTicks(), p.WaitTicks(), p.Grants())
	}
	if p.Utilization(1000) != 0 {
		t.Fatal("infinite port has utilization")
	}
}

func TestPortUtilizationCapped(t *testing.T) {
	p := newPort(t, 1)
	p.Reserve(0, 100, false)
	if u := p.Utilization(50 * TicksPerCycle); u != 1 {
		t.Fatalf("utilization %g, want capped at 1", u)
	}
	if u := p.Utilization(200 * TicksPerCycle); u != 0.5 {
		t.Fatalf("utilization %g, want 0.5", u)
	}
}

func TestPortRejectsNegativeBandwidth(t *testing.T) {
	if _, err := NewPort(-2); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestPortCheckInvariants(t *testing.T) {
	p := newPort(t, 2)
	p.Reserve(0, 8, true)
	p.Reserve(0, 8, false)
	if bad := p.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
	p.busyDemand = p.server.BusyUntil() + 1
	if p.CheckInvariants() == "" {
		t.Fatal("demand horizon past overall horizon not caught")
	}
}
