package timing

import "testing"

func TestResourceFIFOReservation(t *testing.T) {
	var r Resource
	if start := r.Acquire(100, 40); start != 100 {
		t.Fatalf("idle acquire started at %d", start)
	}
	// A later request queues behind the first.
	if start := r.Acquire(110, 40); start != 140 {
		t.Fatalf("queued acquire started at %d, want 140", start)
	}
	if r.BusyUntil() != 180 {
		t.Fatalf("busy-until %d, want 180", r.BusyUntil())
	}
	if r.WaitTicks != 30 || r.BusyTicks != 80 || r.Grants != 2 {
		t.Fatalf("stats wait=%d busy=%d grants=%d", r.WaitTicks, r.BusyTicks, r.Grants)
	}
}

// TestResourceSameTickTieBreak pins the tie-break contract: grants
// requested at the identical tick are served strictly in call order,
// which is the simulator's deterministic event order.
func TestResourceSameTickTieBreak(t *testing.T) {
	var r Resource
	starts := make([]Tick, 4)
	for i := range starts {
		starts[i] = r.Acquire(1000, 25)
	}
	for i, want := range []Tick{1000, 1025, 1050, 1075} {
		if starts[i] != want {
			t.Fatalf("same-tick grant %d started at %d, want %d (call order must win)", i, starts[i], want)
		}
	}
}

// TestResourceZeroOccupancy pins zero-occupancy behaviour: the grant
// waits for the current holder but never delays later grants, and an
// unbounded number of them can share one tick.
func TestResourceZeroOccupancy(t *testing.T) {
	var r Resource
	for i := 0; i < 100; i++ {
		if start := r.Acquire(7, 0); start != 7 {
			t.Fatalf("zero-occupancy grant %d started at %d", i, start)
		}
	}
	if r.BusyUntil() != 7 || r.BusyTicks != 0 {
		t.Fatalf("zero-occupancy grants moved the busy horizon: until=%d busy=%d", r.BusyUntil(), r.BusyTicks)
	}
	// Behind a real reservation the zero-occupancy grant still queues.
	r.Acquire(10, 30)
	if start := r.Acquire(15, 0); start != 40 {
		t.Fatalf("zero-occupancy grant jumped the queue: started at %d, want 40", start)
	}
	if r.WaitTicks != 25 {
		t.Fatalf("wait ticks %d, want 25", r.WaitTicks)
	}
}

func TestResourceGrantPanics(t *testing.T) {
	for name, f := range map[string]func(*Resource){
		"negative occupancy": func(r *Resource) { r.Grant(0, 0, -1) },
		"start before request": func(r *Resource) {
			r.Grant(10, 5, 1)
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			var r Resource
			f(&r)
		})
	}
}

func TestResourceCheckInvariants(t *testing.T) {
	var r Resource
	if bad := r.CheckInvariants(); bad != "" {
		t.Fatalf("fresh resource: %s", bad)
	}
	r.Acquire(10, 5)
	if bad := r.CheckInvariants(); bad != "" {
		t.Fatalf("after acquire: %s", bad)
	}
	r.BusyTicks = -1
	if r.CheckInvariants() == "" {
		t.Fatal("negative accumulator not caught")
	}
	var r2 Resource
	r2.busyUntil = 5
	if r2.CheckInvariants() == "" {
		t.Fatal("busy horizon without grants not caught")
	}
}

func TestBanksInterleave(t *testing.T) {
	b, err := NewBanks(3, 40) // non-power-of-two on purpose
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 || b.Occupancy() != 40 {
		t.Fatalf("geometry: len=%d occ=%d", b.Len(), b.Occupancy())
	}
	// Addresses 0 and 3 share bank 0; 1 goes to bank 1.
	if start := b.Acquire(0, 100); start != 100 {
		t.Fatalf("bank 0 first grant at %d", start)
	}
	if start := b.Acquire(1, 100); start != 100 {
		t.Fatalf("bank 1 unaffected by bank 0, started %d", start)
	}
	if start := b.Acquire(3, 100); start != 140 {
		t.Fatalf("conflicting address got %d, want 140", start)
	}
	if b.WaitTicks() != 40 || b.Grants() != 3 {
		t.Fatalf("stats wait=%d grants=%d", b.WaitTicks(), b.Grants())
	}
	if bad := b.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestBanksRejectBadGeometry(t *testing.T) {
	if _, err := NewBanks(0, 1); err == nil {
		t.Fatal("zero banks accepted")
	}
	if _, err := NewBanks(-4, 1); err == nil {
		t.Fatal("negative banks accepted")
	}
	if _, err := NewBanks(4, -1); err == nil {
		t.Fatal("negative occupancy accepted")
	}
}
