package timing

import "testing"

func TestFromCyclesRounding(t *testing.T) {
	cases := []struct {
		cycles float64
		want   Tick
	}{
		{0, 0},
		{1, TicksPerCycle},
		{0.5, TicksPerCycle / 2},
		{400, 400 * TicksPerCycle},
		// Ties round away from zero.
		{0.5 / TicksPerCycle, 1},
		{-0.5 / TicksPerCycle, -1},
		// Sub-resolution values round to the nearest tick.
		{0.2 / TicksPerCycle, 0},
		{0.8 / TicksPerCycle, 1},
		{-1, -TicksPerCycle},
	}
	for _, tc := range cases {
		if got := FromCycles(tc.cycles); got != tc.want {
			t.Errorf("FromCycles(%g) = %d, want %d", tc.cycles, got, tc.want)
		}
	}
}

func TestCyclesRoundTrip(t *testing.T) {
	// Whole- and half-cycle values are exactly representable.
	for _, c := range []float64{0, 1, 0.5, 3, 15, 400, 4.25} {
		if got := FromCycles(c).Cycles(); got != c {
			t.Errorf("FromCycles(%g).Cycles() = %g", c, got)
		}
	}
	if FromIntCycles(400).WholeCycles() != 400 {
		t.Error("FromIntCycles/WholeCycles mismatch")
	}
}

func TestCostPerByte(t *testing.T) {
	if c, err := CostPerByte(4.0); err != nil || c != TicksPerCycle/4 {
		t.Fatalf("CostPerByte(4) = %v, %v", c, err)
	}
	if c, err := CostPerByte(0); err != nil || c != 0 {
		t.Fatalf("CostPerByte(0) = %v, %v", c, err)
	}
	if _, err := CostPerByte(-1); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	// A bandwidth too high for the resolution must be rejected, not
	// silently become infinite.
	if _, err := CostPerByte(4 * TicksPerCycle); err == nil {
		t.Fatal("over-resolution bandwidth accepted")
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Fatal("Max/Min broken")
	}
}
