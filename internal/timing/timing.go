// Package timing is the simulator's integer time domain. Every
// timestamp, latency and busy-until reservation in the timing model is
// a Tick: a 64-bit integer counting fixed-point sub-cycle units, with
// TicksPerCycle ticks to one core clock cycle. Integer time makes the
// simulation bit-deterministic across platforms and compilers — there
// is no float summation whose rounding depends on evaluation order —
// and keeps the hot path in integer arithmetic.
//
// Rounding contract: float quantities cross into the tick domain in
// exactly two places, both at construction time, never per event.
//
//   - Latencies and per-instruction costs (cycle-valued Config fields
//     such as L2HitCycles, DecompressionCycles, BaseCPI) convert via
//     FromCycles, which rounds to the nearest tick, ties away from
//     zero. With 24 sub-cycle bits the worst-case error is 2^-25 of a
//     cycle on the constant, applied consistently to every event that
//     uses it.
//   - Bandwidths convert via CostPerByte, which fixes the per-byte
//     channel occupancy to the nearest tick once; message occupancy is
//     then the exact integer product bytes × cost.
//
// Inside the domain all arithmetic is exact. Ticks convert back to
// float64 cycles (Cycles) only in the stats/reporting layer.
package timing

import "fmt"

// SubCycleBits is the fixed-point fraction width: a cycle subdivides
// into 2^SubCycleBits ticks. 24 bits keep quantization error below
// 2^-25 of a cycle per constant while leaving headroom for ~5×10^11
// cycles of simulated time in an int64.
const SubCycleBits = 24

// TicksPerCycle is the number of ticks in one core clock cycle.
const TicksPerCycle = 1 << SubCycleBits

// Tick is a point in simulated time (or a duration) in fixed-point
// sub-cycle units. The zero Tick is the start of the simulation.
type Tick int64

// FromCycles converts a cycle count to ticks, rounding to the nearest
// tick with ties away from zero. This is the only sanctioned
// float→tick conversion for latencies; call it at configuration time,
// not per event.
func FromCycles(cycles float64) Tick {
	scaled := cycles * TicksPerCycle
	if scaled >= 0 {
		return Tick(scaled + 0.5)
	}
	return Tick(scaled - 0.5)
}

// FromIntCycles converts a whole-cycle count to ticks exactly.
func FromIntCycles(cycles int64) Tick { return Tick(cycles) * TicksPerCycle }

// ExactCycles converts a cycle count to ticks and reports whether the
// conversion is exact — i.e. cycles is representable in the fixed-point
// tick domain with no rounding. Config validation uses it to reject
// latencies (such as per-codec decompression cycles) that would
// silently drift between the pricing and reporting paths: any multiple
// of 2^-24 cycles is exact, so whole and half cycle values always pass.
func ExactCycles(cycles float64) (Tick, bool) {
	t := FromCycles(cycles)
	return t, float64(t) == cycles*TicksPerCycle
}

// Cycles converts t back to float64 cycles (reporting only).
func (t Tick) Cycles() float64 { return float64(t) / TicksPerCycle }

// WholeCycles returns t truncated to whole cycles (reporting only).
func (t Tick) WholeCycles() int64 { return int64(t) / TicksPerCycle }

// String formats t as a cycle count for error messages and dumps.
func (t Tick) String() string { return fmt.Sprintf("%.4fcy", t.Cycles()) }

// CostPerByte converts a channel bandwidth in bytes per cycle to the
// tick cost of one byte, rounding to the nearest tick (ties away from
// zero). A zero bandwidth models an infinite channel and returns 0.
// The bandwidth is thereby quantized once, at construction: a message
// of n bytes occupies exactly n × CostPerByte ticks.
func CostPerByte(bytesPerCycle float64) (Tick, error) {
	if bytesPerCycle < 0 {
		return 0, fmt.Errorf("timing: negative bandwidth %g bytes/cycle", bytesPerCycle)
	}
	if bytesPerCycle == 0 {
		return 0, nil
	}
	c := FromCycles(1 / bytesPerCycle)
	if c <= 0 {
		return 0, fmt.Errorf("timing: bandwidth %g bytes/cycle exceeds the tick resolution (%d ticks/cycle)",
			bytesPerCycle, TicksPerCycle)
	}
	return c, nil
}

// Max returns the later of two ticks.
func Max(a, b Tick) Tick {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two ticks.
func Min(a, b Tick) Tick {
	if a < b {
		return a
	}
	return b
}
