package timing

import "fmt"

// Resource is one single-server shared resource using busy-until
// reservation: a grant requested at time t starts when the server
// frees, occupies it for a caller-chosen duration, and delays every
// later grant. L2 banks and DRAM banks use it directly (via Banks);
// the pin link's two-priority Port builds on it through Grant.
//
// Tie-break contract: grants are served in call order. Two requests
// arriving at the same tick are ordered by which Acquire ran first —
// the simulator's deterministic event order — never by address or
// priority, so results are bit-reproducible.
type Resource struct {
	busyUntil Tick

	// Stats, maintained by Grant.
	Grants    uint64 // completed reservations
	BusyTicks Tick   // cumulative occupancy
	WaitTicks Tick   // cumulative queueing delay (start - requested)
}

// Acquire reserves the resource for occ ticks starting no earlier than
// at, waiting behind every earlier grant. It returns the tick the
// reservation starts. occ may be zero: a zero-occupancy grant still
// queues behind the current holder but adds no delay for later grants.
func (r *Resource) Acquire(at, occ Tick) (start Tick) {
	start = Max(at, r.busyUntil)
	r.Grant(at, start, occ)
	return start
}

// Grant records a reservation whose start a policy layer has already
// chosen (Port's demand-priority scheduler computes starts that the
// plain FIFO rule of Acquire cannot express). It accounts the stats
// and advances the busy horizon to at least start+occ. start must not
// precede the request and occ must be non-negative.
func (r *Resource) Grant(requestedAt, start, occ Tick) {
	if occ < 0 {
		panic(fmt.Sprintf("timing: negative occupancy %v", occ))
	}
	if start < requestedAt {
		panic(fmt.Sprintf("timing: grant starts at %v before its request at %v", start, requestedAt))
	}
	r.Grants++
	r.WaitTicks += start - requestedAt
	r.BusyTicks += occ
	if done := start + occ; done > r.busyUntil {
		r.busyUntil = done
	}
}

// BusyUntil returns the tick at which the resource next frees.
func (r *Resource) BusyUntil() Tick { return r.busyUntil }

// CheckInvariants verifies accumulator sanity (audit support): counters
// must be non-negative and a busy resource must have recorded grants.
// It returns the first violation, or "".
func (r *Resource) CheckInvariants() string {
	switch {
	case r.BusyTicks < 0 || r.WaitTicks < 0 || r.busyUntil < 0:
		return fmt.Sprintf("negative accumulators (busy %v, wait %v, until %v)", r.BusyTicks, r.WaitTicks, r.busyUntil)
	case r.Grants == 0 && (r.BusyTicks != 0 || r.WaitTicks != 0 || r.busyUntil != 0):
		return "non-zero accumulators with zero grants"
	}
	return ""
}

// Banks is a set of identical Resources interleaved by block address:
// request addr is served by bank addr mod len. Any positive bank count
// is supported — non-power-of-two counts simply use the modulo — and
// every bank shares one fixed per-grant occupancy.
type Banks struct {
	banks []Resource
	occ   Tick
}

// NewBanks builds n banks with the given per-grant occupancy.
func NewBanks(n int, occ Tick) (*Banks, error) {
	if n <= 0 {
		return nil, fmt.Errorf("timing: bank count %d must be positive", n)
	}
	if occ < 0 {
		return nil, fmt.Errorf("timing: bank occupancy %v must be non-negative", occ)
	}
	return &Banks{banks: make([]Resource, n), occ: occ}, nil
}

// Len returns the bank count.
func (b *Banks) Len() int { return len(b.banks) }

// Occupancy returns the fixed per-grant occupancy.
func (b *Banks) Occupancy() Tick { return b.occ }

// For returns the bank serving addr (modulo interleave).
func (b *Banks) For(addr uint64) *Resource {
	return &b.banks[addr%uint64(len(b.banks))]
}

// Acquire reserves addr's bank for one grant starting no earlier than
// at and returns the grant's start tick.
func (b *Banks) Acquire(addr uint64, at Tick) (start Tick) {
	return b.For(addr).Acquire(at, b.occ)
}

// WaitTicks returns the cumulative queueing delay over all banks.
func (b *Banks) WaitTicks() Tick {
	var w Tick
	for i := range b.banks {
		w += b.banks[i].WaitTicks
	}
	return w
}

// Grants returns the total grant count over all banks.
func (b *Banks) Grants() uint64 {
	var n uint64
	for i := range b.banks {
		n += b.banks[i].Grants
	}
	return n
}

// CheckInvariants sweeps every bank (audit support) and returns the
// first violation, or "".
func (b *Banks) CheckInvariants() string {
	for i := range b.banks {
		if bad := b.banks[i].CheckInvariants(); bad != "" {
			return fmt.Sprintf("bank %d: %s", i, bad)
		}
	}
	return ""
}
