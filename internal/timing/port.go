package timing

import "fmt"

// Port is a fixed-bandwidth channel serving variable-length messages
// in two priority classes — the pin-link abstraction. It is a Resource
// with a scheduling policy in front: the underlying single server is a
// plain busy-until Resource (so occupancy, queueing and grant stats
// live in one place), and Reserve computes each message's start tick
// under non-preemptive demand priority before recording it with
// Resource.Grant.
//
// Demand messages wait for the demand backlog plus at most one
// in-progress low-priority transfer (the residual service); low
// priority messages queue behind everything. Within a class, requests
// at the same tick are served in call order (see Resource).
type Port struct {
	costPerByte Tick // per-byte occupancy; 0 = infinite bandwidth
	server      Resource
	busyDemand  Tick // busy-until from demand traffic only
}

// NewPort builds a port with the given bandwidth in bytes per core
// cycle; 0 models an infinite channel (messages are counted but never
// queue and occupy no time).
func NewPort(bytesPerCycle float64) (*Port, error) {
	cost, err := CostPerByte(bytesPerCycle)
	if err != nil {
		return nil, err
	}
	return &Port{costPerByte: cost}, nil
}

// Infinite reports whether the port models unlimited bandwidth.
func (p *Port) Infinite() bool { return p.costPerByte == 0 }

// Cost returns the occupancy of one message of the given size
// (0 on an infinite port).
func (p *Port) Cost(bytes int) Tick {
	if bytes < 0 {
		panic(fmt.Sprintf("timing: negative message size %d", bytes))
	}
	return Tick(bytes) * p.costPerByte
}

// Reserve claims a bandwidth slot for one message of the given size,
// no earlier than at, and returns the slot's start tick. Reservations
// are made in call order — callers reserve when the transfer is
// requested, not when its data is ready — so an idle port is never
// blocked by a far-future reservation.
func (p *Port) Reserve(at Tick, bytes int, demand bool) (start Tick) {
	occ := p.Cost(bytes)
	if p.Infinite() {
		p.server.Grant(at, at, 0)
		return at
	}
	start = at
	if demand {
		if p.busyDemand > start {
			start = p.busyDemand
		}
		if busyAll := p.server.BusyUntil(); busyAll > start {
			// Overtake queued low-priority reservations but not the
			// transfer in progress: wait at most one residual service.
			if residual := Min(at+occ, busyAll); residual > start {
				start = residual
			}
		}
	} else if busyAll := p.server.BusyUntil(); busyAll > start {
		start = busyAll
	}
	p.server.Grant(at, start, occ)
	if demand {
		p.busyDemand = start + occ
	}
	return start
}

// BusyUntil returns the tick at which the port next frees.
func (p *Port) BusyUntil() Tick { return p.server.BusyUntil() }

// BusyTicks returns the cumulative occupancy.
func (p *Port) BusyTicks() Tick { return p.server.BusyTicks }

// WaitTicks returns the cumulative queueing delay.
func (p *Port) WaitTicks() Tick { return p.server.WaitTicks }

// Grants returns the number of reserved messages.
func (p *Port) Grants() uint64 { return p.server.Grants }

// Utilization returns the fraction of an elapsed window the port was
// busy (0 for an infinite port; capped at 1).
func (p *Port) Utilization(elapsed Tick) float64 {
	if elapsed <= 0 || p.Infinite() {
		return 0
	}
	u := float64(p.server.BusyTicks) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// CheckInvariants verifies server-state sanity (audit support): the
// underlying Resource's accumulators and the priority horizon ordering
// (demand busy-until can never pass the overall busy-until). It
// returns the first violation, or "".
func (p *Port) CheckInvariants() string {
	if bad := p.server.CheckInvariants(); bad != "" {
		return bad
	}
	if p.busyDemand > p.server.BusyUntil() {
		return fmt.Sprintf("demand busy-until %v ahead of overall busy-until %v", p.busyDemand, p.server.BusyUntil())
	}
	return ""
}
