package prefetch

import (
	"fmt"

	"cmpsim/internal/cache"
)

// StreamConfig parameterizes the Jouppi-style stream buffers.
type StreamConfig struct {
	// Buffers is the number of concurrent stream buffers (Jouppi's
	// classic configuration uses 4).
	Buffers int
	// Depth is the lookahead each buffer maintains ahead of the demand
	// stream, in blocks.
	Depth int
}

// StreamConfigFor derives the buffer geometry from a level's stride
// engine Config: half the stream-table entries as buffers, the same
// startup depth as lookahead.
func StreamConfigFor(c Config) StreamConfig {
	buffers := c.StreamEntries / 2
	if buffers < 1 {
		buffers = 1
	}
	return StreamConfig{Buffers: buffers, Depth: c.StartupDepth}
}

// streamBuf is one buffer: a unit-stride window [next, tail] of blocks
// prefetched ahead of the demand stream. next is the address the
// demand stream is expected to ask for; tail is the last block issued.
type streamBuf struct {
	valid bool
	next  cache.BlockAddr
	tail  cache.BlockAddr
	used  uint64 // LRU timestamp
}

// StreamBuffers is a Jouppi-style prefetcher: on a miss that no buffer
// covers, the LRU buffer restarts as a unit-stride window after the
// miss; demand hits at a buffer head advance the window by one. Unlike
// the stride Engine it needs no training misses — but it only covers
// ascending unit-stride runs, which is exactly what the irregular
// suite withholds.
type StreamBuffers struct {
	cfg    StreamConfig
	bufs   []streamBuf
	tick   uint64
	cap    func() int
	reqbuf []cache.BlockAddr

	Stats Stats
}

// NewStreamBuffers builds the buffer set.
func NewStreamBuffers(cfg StreamConfig) *StreamBuffers {
	if cfg.Buffers < 1 || cfg.Depth < 1 {
		panic("prefetch: stream buffers need at least one buffer and depth 1")
	}
	return &StreamBuffers{
		cfg:    cfg,
		bufs:   make([]streamBuf, cfg.Buffers),
		reqbuf: make([]cache.BlockAddr, 0, cfg.Depth),
	}
}

// SetCap installs the adaptive issue bound.
func (s *StreamBuffers) SetCap(cap func() int) { s.cap = cap }

func (s *StreamBuffers) depth() int {
	d := s.cfg.Depth
	if s.cap != nil {
		if c := s.cap(); c < d {
			d = c
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// consume advances the buffer whose head matches a, issuing one block
// to keep the window at depth. Reports whether a matched.
func (s *StreamBuffers) consume(a cache.BlockAddr) bool {
	for i := range s.bufs {
		b := &s.bufs[i]
		if !b.valid || b.next != a {
			continue
		}
		b.next++
		b.used = s.tick
		s.Stats.Advances++
		if d := s.depth(); d > 0 && int64(b.tail)-int64(b.next)+1 < int64(d) {
			b.tail++
			s.reqbuf = append(s.reqbuf, b.tail)
			s.Stats.Issued++
		}
		if b.next > b.tail+1 {
			b.valid = false // drained with nothing in flight
		}
		return true
	}
	return false
}

// alloc restarts the LRU buffer as a window after a.
func (s *StreamBuffers) alloc(a cache.BlockAddr) {
	d := s.depth()
	if d == 0 {
		return
	}
	victim := 0
	for i := range s.bufs {
		if !s.bufs[i].valid {
			victim = i
			break
		}
		if s.bufs[i].used < s.bufs[victim].used {
			victim = i
		}
	}
	b := &s.bufs[victim]
	*b = streamBuf{valid: true, next: a + 1, tail: a + cache.BlockAddr(d), used: s.tick}
	for k := 1; k <= d; k++ {
		s.reqbuf = append(s.reqbuf, a+cache.BlockAddr(k))
	}
	s.Stats.StreamAllocs++
	s.Stats.Issued += uint64(d)
}

// OnAccess advances a matching buffer head (hit on a landed prefetch).
func (s *StreamBuffers) OnAccess(a cache.BlockAddr) []cache.BlockAddr {
	s.tick++
	s.reqbuf = s.reqbuf[:0]
	s.consume(a)
	return s.reqbuf
}

// OnMiss advances a matching buffer (prefetch issued but not landed)
// or restarts the LRU buffer after the miss.
func (s *StreamBuffers) OnMiss(a cache.BlockAddr) []cache.BlockAddr {
	s.tick++
	s.reqbuf = s.reqbuf[:0]
	if !s.consume(a) {
		s.alloc(a)
	}
	return s.reqbuf
}

// TriggerStream allocates a buffer for an externally detected
// unit-stride run; other strides do not fit an ascending buffer.
func (s *StreamBuffers) TriggerStream(a cache.BlockAddr, stride int64) []cache.BlockAddr {
	s.tick++
	s.reqbuf = s.reqbuf[:0]
	if stride != 1 {
		return s.reqbuf
	}
	for i := range s.bufs {
		if s.bufs[i].valid && s.bufs[i].next == a+1 {
			return s.reqbuf // already covering this run
		}
	}
	s.alloc(a)
	return s.reqbuf
}

// StreamStride is +1 once any buffer is live (buffers are ascending
// unit-stride by construction).
func (s *StreamBuffers) StreamStride() int64 {
	for i := range s.bufs {
		if s.bufs[i].valid {
			return 1
		}
	}
	return 0
}

// Allocations reports buffer (re)starts.
func (s *StreamBuffers) Allocations() uint64 { return s.Stats.StreamAllocs }

// CheckInvariants verifies every live window is well-formed.
func (s *StreamBuffers) CheckInvariants() string {
	for i := range s.bufs {
		b := &s.bufs[i]
		if !b.valid {
			continue
		}
		w := int64(b.tail) - int64(b.next) + 1
		if w < 0 || w > int64(s.cfg.Depth) {
			return fmt.Sprintf("stream buffer %d window [%d,%d] width %d outside [0,%d]",
				i, b.next, b.tail, w, s.cfg.Depth)
		}
	}
	return ""
}

// CorruptStream deliberately breaks a window (audit fault injection).
func (s *StreamBuffers) CorruptStream() {
	s.bufs[0] = streamBuf{valid: true, next: 1000, tail: 10, used: s.tick}
}
