package prefetch

import (
	"testing"

	"cmpsim/internal/cache"
)

func TestSequentialMissPrefetchesNextBlocks(t *testing.T) {
	s := NewSequential(SequentialConfig{Degree: 3})
	reqs := s.OnMiss(100)
	if len(reqs) != 3 || reqs[0] != 101 || reqs[2] != 103 {
		t.Fatalf("reqs = %v", reqs)
	}
	if s.Allocations() != 1 {
		t.Fatalf("allocations = %d", s.Allocations())
	}
}

func TestSequentialTaggedExtendsRun(t *testing.T) {
	s := NewSequential(DefaultSequentialConfig()) // degree 1, tagged
	s.OnMiss(100)                                 // prefetched 101
	reqs := s.OnAccess(101)                       // demand reaches the window
	if len(reqs) != 1 || reqs[0] != 102 {
		t.Fatalf("tagged extension = %v", reqs)
	}
	// The window slides: accessing 102 prefetches 103.
	if reqs = s.OnAccess(102); len(reqs) != 1 || reqs[0] != 103 {
		t.Fatalf("second extension = %v", reqs)
	}
	// Unrelated access does nothing.
	if reqs = s.OnAccess(999); len(reqs) != 0 {
		t.Fatalf("unrelated access prefetched %v", reqs)
	}
}

func TestSequentialUntaggedDoesNotExtend(t *testing.T) {
	s := NewSequential(SequentialConfig{Degree: 2, Tagged: false})
	s.OnMiss(100)
	if reqs := s.OnAccess(101); len(reqs) != 0 {
		t.Fatalf("untagged extension = %v", reqs)
	}
}

func TestSequentialCap(t *testing.T) {
	s := NewSequential(SequentialConfig{Degree: 4})
	cap := 2
	s.SetCap(func() int { return cap })
	if reqs := s.OnMiss(100); len(reqs) != 2 {
		t.Fatalf("capped reqs = %v", reqs)
	}
	cap = 0
	if reqs := s.OnMiss(200); len(reqs) != 0 {
		t.Fatalf("disabled reqs = %v", reqs)
	}
}

func TestSequentialTriggerStreamNoOp(t *testing.T) {
	s := NewSequential(DefaultSequentialConfig())
	if reqs := s.TriggerStream(100, 1); len(reqs) != 0 {
		t.Fatalf("trigger = %v", reqs)
	}
}

func TestSequentialStreamStride(t *testing.T) {
	s := NewSequential(DefaultSequentialConfig())
	if s.StreamStride() != 0 {
		t.Fatal("cold prefetcher should report stride 0")
	}
	s.OnMiss(100)
	if s.StreamStride() != 1 {
		t.Fatal("live window should report stride 1")
	}
}

func TestSequentialRejectsZeroDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree 0 should panic")
		}
	}()
	NewSequential(SequentialConfig{Degree: 0})
}

func TestSequentialMissesNonUnitStride(t *testing.T) {
	// The sequential baseline cannot follow stride-3 streams: its
	// prefetches never match the demand addresses.
	s := NewSequential(SequentialConfig{Degree: 2, Tagged: true})
	hits := 0
	addr := cache.BlockAddr(1000)
	prefetched := map[cache.BlockAddr]bool{}
	for i := 0; i < 100; i++ {
		for _, a := range s.OnMiss(addr) {
			prefetched[a] = true
		}
		addr += 3
		if prefetched[addr] {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("sequential prefetcher should never catch stride 3, got %d hits", hits)
	}
}
