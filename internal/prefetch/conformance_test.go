package prefetch

import (
	"math/rand"
	"strings"
	"testing"

	"cmpsim/internal/cache"
)

// TestRegistry pins the registry contract every caller relies on.
func TestRegistry(t *testing.T) {
	want := []string{"stride", "sequential", "stream", "markov"}
	if got := Names(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if _, err := ByName(""); err != nil {
		t.Fatalf("empty name must resolve to the default: %v", err)
	}
	if Canonical("") != DefaultName || Canonical("markov") != "markov" {
		t.Error("Canonical misbehaves")
	}
	_, err := ByName("nosuch")
	if err == nil || !strings.Contains(err.Error(), "stride") {
		t.Errorf("unknown-kind error must list registered names, got %v", err)
	}
	for _, name := range Names() {
		if p := MustByName(name)(L1Config()); p == nil {
			t.Errorf("%s factory returned nil", name)
		}
	}
}

// driveMixed feeds a deterministic mix of short unit-stride runs and
// scattered misses: enough structure that every kind trains, few
// enough distinct runs that the stride engine's suppressed-allocation
// probe trickle (1 probe per 32 allocations at depth 0) never fires
// during the cap-0 subtest.
func driveMixed(p Prefetcher, rng *rand.Rand, n int) (issued int) {
	base := cache.BlockAddr(1 << 12)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // a short unit-stride run of misses
			a := base + cache.BlockAddr(rng.Intn(1<<16))
			for k := 0; k < 8; k++ {
				issued += len(p.OnMiss(a + cache.BlockAddr(k)))
			}
		case 4, 5, 6, 7: // demand accesses (hits) nearby
			a := base + cache.BlockAddr(rng.Intn(1<<16))
			issued += len(p.OnAccess(a))
		case 8: // a scattered (pointer-like) miss
			issued += len(p.OnMiss(base + cache.BlockAddr(rng.Intn(1<<20))))
		default: // an externally detected stream
			issued += len(p.TriggerStream(base+cache.BlockAddr(rng.Intn(1<<16)), 1))
		}
	}
	return issued
}

// TestPrefetcherConformance runs the cross-implementation contract
// against every registered kind.
func TestPrefetcherConformance(t *testing.T) {
	for _, kind := range Names() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			mk := func() Prefetcher { return MustByName(kind)(L1Config()) }

			t.Run("cap-zero-issues-nothing", func(t *testing.T) {
				p := mk()
				p.SetCap(func() int { return 0 })
				// 24 runs keeps stride-engine stream allocations under
				// the 32-allocation probe-trickle period.
				rng := rand.New(rand.NewSource(1))
				if got := driveMixed(p, rng, 24); got != 0 {
					t.Fatalf("cap 0 issued %d prefetches", got)
				}
			})

			t.Run("slices-stable-until-next-call", func(t *testing.T) {
				p := mk()
				rng := rand.New(rand.NewSource(2))
				for i := 0; i < 2000; i++ {
					a := cache.BlockAddr(1<<12 + rng.Intn(1<<14))
					var out []cache.BlockAddr
					if i%3 == 0 {
						out = p.OnMiss(a)
					} else {
						out = p.OnAccess(a)
					}
					snap := append([]cache.BlockAddr(nil), out...)
					// Read-only methods must not clobber the returned
					// slice before the next generating call.
					_ = p.CheckInvariants()
					_ = p.StreamStride()
					_ = p.Allocations()
					for k := range out {
						if out[k] != snap[k] {
							t.Fatalf("returned slice mutated before next call (index %d)", k)
						}
					}
				}
			})

			t.Run("zero-allocs-on-hot-path", func(t *testing.T) {
				p := mk()
				rng := rand.New(rand.NewSource(3))
				driveMixed(p, rng, 10_000) // warm the request buffer
				var a cache.BlockAddr = 1 << 13
				avg := testing.AllocsPerRun(200, func() {
					p.OnAccess(a)
					p.OnMiss(a + 1)
					p.TriggerStream(a+2, 1)
					a += 3
				})
				if avg != 0 {
					t.Fatalf("hot path allocates %.2f allocs/op", avg)
				}
			})

			t.Run("invariants-under-random-load", func(t *testing.T) {
				p := mk()
				capVal := -1 // unlimited until SetCap draws below
				p.SetCap(func() int {
					if capVal < 0 {
						return 1 << 30
					}
					return capVal
				})
				rng := rand.New(rand.NewSource(4))
				for i := 0; i < 10_000; i++ {
					a := cache.BlockAddr(rng.Intn(1 << 22))
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4:
						p.OnAccess(a)
					case 5, 6, 7, 8:
						p.OnMiss(a)
					default:
						strides := []int64{1, 2, -1}
						p.TriggerStream(a, strides[rng.Intn(len(strides))])
					}
					if i%500 == 0 {
						capVal = rng.Intn(8) - 1 // wander through 0..6 and unlimited
					}
					if i%100 == 0 {
						if msg := p.CheckInvariants(); msg != "" {
							t.Fatalf("invariant violated after %d ops: %s", i, msg)
						}
					}
				}
				if msg := p.CheckInvariants(); msg != "" {
					t.Fatalf("invariant violated at end: %s", msg)
				}
			})
		})
	}
}

// TestCorruptStreamTripsInvariants pins the audit fault hook: every
// kind that offers CorruptStream must then fail its own invariants.
func TestCorruptStreamTripsInvariants(t *testing.T) {
	for _, kind := range Names() {
		p := MustByName(kind)(L1Config())
		c, ok := p.(interface{ CorruptStream() })
		if !ok {
			continue // sequential has no stream state to corrupt
		}
		c.CorruptStream()
		if p.CheckInvariants() == "" {
			t.Errorf("%s: CorruptStream left invariants clean", kind)
		}
	}
}

// BenchmarkPrefetcher measures the per-call hot path of every kind
// under the mixed pattern (bench-smoke tracks allocations).
func BenchmarkPrefetcher(b *testing.B) {
	for _, kind := range Names() {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			p := MustByName(kind)(L1Config())
			rng := rand.New(rand.NewSource(5))
			driveMixed(p, rng, 10_000)
			var a cache.BlockAddr = 1 << 13
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.OnAccess(a)
				p.OnMiss(a + 1)
				a += 3
			}
		})
	}
}
