package prefetch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cmpsim/internal/cache"
)

func collectStartup(e *Engine, start cache.BlockAddr, stride int64, misses int) []cache.BlockAddr {
	var out []cache.BlockAddr
	a := start
	for i := 0; i < misses; i++ {
		out = append(out[:0], e.OnMiss(a)...)
		a = advance(a, stride)
	}
	return out
}

func TestUnitStrideStreamAllocatesAfterFourMisses(t *testing.T) {
	e := New(L1Config())
	reqs := collectStartup(e, 100, 1, 4)
	if len(reqs) != 6 {
		t.Fatalf("startup prefetches = %d, want 6", len(reqs))
	}
	// Misses at 100..103; startup prefetches must be 104..109.
	for i, r := range reqs {
		if want := cache.BlockAddr(104 + i); r != want {
			t.Fatalf("req[%d] = %d, want %d", i, r, want)
		}
	}
	if e.Stats.StreamAllocs != 1 {
		t.Fatalf("stream allocs = %d", e.Stats.StreamAllocs)
	}
}

func TestThreeMissesDoNotAllocate(t *testing.T) {
	e := New(L1Config())
	if reqs := collectStartup(e, 100, 1, 3); len(reqs) != 0 {
		t.Fatalf("3 misses should not allocate, got %v", reqs)
	}
}

func TestNegativeUnitStride(t *testing.T) {
	e := New(L1Config())
	reqs := collectStartup(e, 100, -1, 4)
	if len(reqs) != 6 {
		t.Fatalf("startup prefetches = %d, want 6", len(reqs))
	}
	if reqs[0] != 96 || reqs[5] != 91 {
		t.Fatalf("reqs = %v", reqs)
	}
}

func TestNonUnitStride(t *testing.T) {
	e := New(L1Config())
	// Stride 3: misses at 10,13,16,19 → need threshold 4 recognitions.
	// First miss allocates candidates; second sets stride (count=2);
	// third and fourth strengthen (count=3,4) → allocate.
	reqs := collectStartup(e, 10, 3, 4)
	if len(reqs) != 6 {
		t.Fatalf("startup prefetches = %d, want 6", len(reqs))
	}
	if reqs[0] != 22 || reqs[1] != 25 {
		t.Fatalf("reqs = %v", reqs)
	}
}

func TestStrideBeyondMaxIgnored(t *testing.T) {
	e := New(L1Config()) // MaxStride 64
	if reqs := collectStartup(e, 0, 1000, 8); len(reqs) != 0 {
		t.Fatalf("giant stride should never allocate, got %v", reqs)
	}
}

func TestL2ConfigLaunches25(t *testing.T) {
	e := New(L2Config())
	reqs := collectStartup(e, 100, 1, 4)
	if len(reqs) != 25 {
		t.Fatalf("L2 startup prefetches = %d, want 25", len(reqs))
	}
}

func TestStreamAdvanceKeepsDistance(t *testing.T) {
	e := New(L1Config())
	collectStartup(e, 100, 1, 4) // stream: nextDemand=104, nextPf=110
	reqs := e.OnAccess(104)
	if len(reqs) != 1 || reqs[0] != 110 {
		t.Fatalf("advance reqs = %v, want [110]", reqs)
	}
	reqs = e.OnAccess(105)
	if len(reqs) != 1 || reqs[0] != 111 {
		t.Fatalf("advance reqs = %v, want [111]", reqs)
	}
	// A non-matching access does not advance any stream.
	if reqs = e.OnAccess(500); len(reqs) != 0 {
		t.Fatalf("unrelated access advanced a stream: %v", reqs)
	}
}

func TestStreamAdvanceToleratesOneSkip(t *testing.T) {
	e := New(L1Config())
	collectStartup(e, 100, 1, 4) // nextDemand=104
	// Demand skips 104 and goes straight to 105.
	reqs := e.OnAccess(105)
	if len(reqs) != 1 {
		t.Fatalf("skip tolerance failed: %v", reqs)
	}
	// Stream should now expect 106.
	if reqs = e.OnAccess(106); len(reqs) != 1 {
		t.Fatalf("stream lost after skip: %v", reqs)
	}
}

func TestStreamTableLRUReplacement(t *testing.T) {
	cfg := L1Config()
	cfg.StreamEntries = 2
	e := New(cfg)
	collectStartup(e, 1000, 1, 4)
	collectStartup(e, 2000, 1, 4)
	if e.ActiveStreams() != 2 {
		t.Fatalf("active streams = %d", e.ActiveStreams())
	}
	// Third stream evicts the LRU (the 1000 stream).
	collectStartup(e, 3000, 1, 4)
	if e.ActiveStreams() != 2 {
		t.Fatalf("active streams = %d", e.ActiveStreams())
	}
	// Stream 1004.. should no longer advance.
	if reqs := e.OnAccess(1004); len(reqs) != 0 {
		t.Fatalf("evicted stream advanced: %v", reqs)
	}
	// Stream 3004.. should.
	if reqs := e.OnAccess(3004); len(reqs) != 1 {
		t.Fatalf("fresh stream did not advance: %v", reqs)
	}
}

func TestTriggerStream(t *testing.T) {
	e := New(L2Config())
	reqs := e.TriggerStream(500, 1)
	if len(reqs) != 25 {
		t.Fatalf("trigger issued %d, want 25", len(reqs))
	}
	// Re-trigger of the same stream is suppressed.
	if reqs = e.TriggerStream(501, 1); len(reqs) != 0 {
		t.Fatalf("duplicate trigger issued %v", reqs)
	}
	// Zero stride is rejected.
	if reqs = e.TriggerStream(900, 0); len(reqs) != 0 {
		t.Fatal("zero-stride trigger must be ignored")
	}
}

func TestAdaptiveCapLimitsStartup(t *testing.T) {
	e := New(L1Config())
	ad := NewAdaptive(6)
	e.SetCap(ad.Cap)
	ad.Useless()
	ad.Useless() // counter 4
	reqs := collectStartup(e, 100, 1, 4)
	if len(reqs) != 4 {
		t.Fatalf("capped startup = %d, want 4", len(reqs))
	}
}

func TestAdaptiveDisablesPrefetching(t *testing.T) {
	e := New(L1Config())
	ad := NewAdaptive(6)
	e.SetCap(ad.Cap)
	for i := 0; i < 6; i++ {
		ad.Harmful()
	}
	if !ad.Disabled() {
		t.Fatal("controller should be disabled")
	}
	if reqs := collectStartup(e, 100, 1, 8); len(reqs) != 0 {
		t.Fatalf("disabled engine issued %v", reqs)
	}
	// A useful event re-enables at depth 1.
	ad.Useful()
	if ad.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", ad.Cap())
	}
}

func TestAdaptiveSaturation(t *testing.T) {
	ad := NewAdaptive(6)
	for i := 0; i < 100; i++ {
		ad.Useful()
	}
	if ad.Cap() != 6 {
		t.Fatalf("cap = %d, want saturation at 6", ad.Cap())
	}
	for i := 0; i < 100; i++ {
		ad.Useless()
	}
	if ad.Cap() != 0 {
		t.Fatalf("cap = %d, want floor 0", ad.Cap())
	}
	if ad.UsefulEvents != 100 || ad.UselessEvents != 100 {
		t.Fatal("event counters wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{FilterEntries: 0, StreamEntries: 8, TrainThreshold: 4, StartupDepth: 6, MaxStride: 64},
		{FilterEntries: 32, StreamEntries: 0, TrainThreshold: 4, StartupDepth: 6, MaxStride: 64},
		{FilterEntries: 32, StreamEntries: 8, TrainThreshold: 1, StartupDepth: 6, MaxStride: 64},
		{FilterEntries: 32, StreamEntries: 8, TrainThreshold: 4, StartupDepth: 0, MaxStride: 64},
		{FilterEntries: 32, StreamEntries: 8, TrainThreshold: 4, StartupDepth: 6, MaxStride: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should be rejected", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestNewAdaptiveRejectsZeroMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("max 0 should panic")
		}
	}()
	NewAdaptive(0)
}

func TestInterleavedStreamsBothDetected(t *testing.T) {
	// Two interleaved miss streams (as from two data structures) must
	// both allocate despite interleaving, via separate filter entries.
	e := New(L1Config())
	issued := 0
	a, b := cache.BlockAddr(1000), cache.BlockAddr(5000)
	for i := 0; i < 4; i++ {
		issued += len(e.OnMiss(a))
		issued += len(e.OnMiss(b))
		a++
		b++
	}
	if e.Stats.StreamAllocs != 2 {
		t.Fatalf("stream allocs = %d, want 2", e.Stats.StreamAllocs)
	}
	if issued != 12 {
		t.Fatalf("issued = %d, want 12", issued)
	}
}

func TestRandomMissesRarelyAllocate(t *testing.T) {
	e := New(L1Config())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		e.OnMiss(cache.BlockAddr(rng.Intn(1 << 24)))
	}
	if e.Stats.StreamAllocs > 5 {
		t.Fatalf("random misses allocated %d streams", e.Stats.StreamAllocs)
	}
}

// Property: startup prefetch addresses always continue the miss stream
// with the trained stride and never include trained addresses.
func TestStartupAddressesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stride := int64(1 + rng.Intn(32))
		if rng.Intn(2) == 0 {
			stride = -stride
		}
		start := cache.BlockAddr(1 << 20)
		e := New(L1Config())
		var reqs []cache.BlockAddr
		a := start
		for i := 0; i < 4; i++ {
			reqs = append(reqs[:0], e.OnMiss(a)...)
			a = advance(a, stride)
		}
		last := advance(a, -stride) // address of the 4th miss
		if len(reqs) != 6 {
			return false
		}
		for k, r := range reqs {
			if r != advance(last, int64(k+1)*stride) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOnMissStrided(b *testing.B) {
	e := New(L2Config())
	a := cache.BlockAddr(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.OnMiss(a)
		a++
	}
}
