package prefetch

import (
	"fmt"

	"cmpsim/internal/cache"
)

// MarkovConfig parameterizes the Markov (miss-correlation) prefetcher.
type MarkovConfig struct {
	// Entries is the correlation-table size, rounded up to a power of
	// two.
	Entries int
	// Successors is the number of successor addresses kept per entry,
	// MRU-ordered; all of them are candidates on a hit.
	Successors int
}

// MarkovConfigFor derives the table geometry from a level's stride
// engine Config: the filter-table budget scaled up (the correlation
// table is the scheme's main cost) and the classic two successors.
func MarkovConfigFor(c Config) MarkovConfig {
	return MarkovConfig{Entries: c.FilterEntries * 64, Successors: 2}
}

// markovNone marks an empty tag or successor slot.
const markovNone = ^cache.BlockAddr(0)

// Markov is a Joseph/Grunwald-style miss-correlation prefetcher: the
// table maps a miss address to the addresses that followed it in the
// miss stream, and a hit replays the recorded successors. It is the
// only kind here that can cover data-dependent pointer chases — the
// successor of a node is arbitrary, but it repeats across traversals.
type Markov struct {
	cfg  MarkovConfig
	mask uint64
	tags []cache.BlockAddr
	succ []cache.BlockAddr // cfg.Successors per entry, MRU first

	prev      cache.BlockAddr
	prevValid bool
	cap       func() int
	reqbuf    []cache.BlockAddr

	Stats Stats
}

// NewMarkov builds the correlation table.
func NewMarkov(cfg MarkovConfig) *Markov {
	if cfg.Entries < 1 || cfg.Successors < 1 {
		panic("prefetch: markov table needs at least one entry and one successor")
	}
	n := 1
	for n < cfg.Entries {
		n <<= 1
	}
	cfg.Entries = n
	m := &Markov{
		cfg:    cfg,
		mask:   uint64(n - 1),
		tags:   make([]cache.BlockAddr, n),
		succ:   make([]cache.BlockAddr, n*cfg.Successors),
		reqbuf: make([]cache.BlockAddr, 0, cfg.Successors),
	}
	for i := range m.tags {
		m.tags[i] = markovNone
	}
	for i := range m.succ {
		m.succ[i] = markovNone
	}
	return m
}

func (m *Markov) index(a cache.BlockAddr) int {
	return int((uint64(a) * 0x9E3779B97F4A7C15 >> 17) & m.mask)
}

// SetCap installs the adaptive issue bound.
func (m *Markov) SetCap(cap func() int) { m.cap = cap }

func (m *Markov) depth() int {
	d := m.cfg.Successors
	if m.cap != nil {
		if c := m.cap(); c < d {
			d = c
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// train records prev -> a in prev's entry, MRU first.
func (m *Markov) train(prev, a cache.BlockAddr) {
	e := m.index(prev)
	row := m.succ[e*m.cfg.Successors : (e+1)*m.cfg.Successors]
	if m.tags[e] != prev {
		m.tags[e] = prev
		for i := range row {
			row[i] = markovNone
		}
		m.Stats.StreamAllocs++
	}
	if row[0] == a {
		return
	}
	// Promote a to MRU, shifting the rest down (dropping a's old slot
	// if present so successors stay distinct).
	last := a
	for i := range row {
		row[i], last = last, row[i]
		if last == a || last == markovNone {
			break
		}
	}
}

// OnMiss trains the prev->a transition and replays a's recorded
// successors. Training continues under a zero cap so the table is warm
// when the adaptive controller reopens the bound.
func (m *Markov) OnMiss(a cache.BlockAddr) []cache.BlockAddr {
	m.reqbuf = m.reqbuf[:0]
	if m.prevValid {
		m.train(m.prev, a)
	}
	m.prev, m.prevValid = a, true
	e := m.index(a)
	if m.tags[e] != a {
		return m.reqbuf
	}
	m.Stats.FilterHits++
	d := m.depth()
	row := m.succ[e*m.cfg.Successors : (e+1)*m.cfg.Successors]
	for i := 0; i < len(row) && len(m.reqbuf) < d; i++ {
		if row[i] == markovNone {
			break
		}
		if row[i] != a {
			m.reqbuf = append(m.reqbuf, row[i])
		}
	}
	m.Stats.Issued += uint64(len(m.reqbuf))
	return m.reqbuf
}

// OnAccess is a no-op: the scheme correlates the miss stream only.
func (m *Markov) OnAccess(a cache.BlockAddr) []cache.BlockAddr {
	m.reqbuf = m.reqbuf[:0]
	return m.reqbuf
}

// TriggerStream is a no-op: there is no stream state to seed.
func (m *Markov) TriggerStream(a cache.BlockAddr, stride int64) []cache.BlockAddr {
	m.reqbuf = m.reqbuf[:0]
	return m.reqbuf
}

// StreamStride is always 0: correlated prefetches have no stride.
func (m *Markov) StreamStride() int64 { return 0 }

// Allocations reports correlation-entry installs.
func (m *Markov) Allocations() uint64 { return m.Stats.StreamAllocs }

// CheckInvariants verifies table shape: empty entries have no
// successors, live rows are MRU-compact and distinct.
func (m *Markov) CheckInvariants() string {
	for e := range m.tags {
		row := m.succ[e*m.cfg.Successors : (e+1)*m.cfg.Successors]
		if m.tags[e] == markovNone {
			for i := range row {
				if row[i] != markovNone {
					return fmt.Sprintf("markov entry %d empty but successor %d set", e, i)
				}
			}
			continue
		}
		seen := false
		for i := len(row) - 1; i >= 0; i-- {
			if row[i] != markovNone {
				seen = true
			} else if seen {
				return fmt.Sprintf("markov entry %d successors not MRU-compact", e)
			}
		}
		for i := range row {
			if row[i] == markovNone {
				continue
			}
			for j := i + 1; j < len(row); j++ {
				if row[j] == row[i] {
					return fmt.Sprintf("markov entry %d duplicate successor %d", e, uint64(row[i]))
				}
			}
		}
	}
	return ""
}

// CorruptStream deliberately breaks the table shape (audit fault
// injection).
func (m *Markov) CorruptStream() {
	row := m.succ[:m.cfg.Successors]
	if len(row) > 1 {
		m.tags[0] = 1
		row[0] = markovNone
		row[len(row)-1] = 2
		return
	}
	m.tags[0] = markovNone
	row[0] = 2
}
