package prefetch

import "cmpsim/internal/cache"

// Prefetcher is the interface the simulation engine drives; the
// stride Engine is the paper's prefetcher, and Sequential is the
// adaptive sequential (unit-stride, Dahlgren-style) baseline from the
// paper's related-work discussion, provided for comparison studies.
type Prefetcher interface {
	// OnAccess observes a demand access (hit or miss) and may return
	// prefetch addresses (valid until the next call).
	OnAccess(a cache.BlockAddr) []cache.BlockAddr
	// OnMiss observes a demand miss and may return prefetch addresses.
	OnMiss(a cache.BlockAddr) []cache.BlockAddr
	// TriggerStream starts a stream directly (no-op for prefetchers
	// without stream state).
	TriggerStream(a cache.BlockAddr, stride int64) []cache.BlockAddr
	// SetCap installs an adaptive issue bound (nil = unlimited).
	SetCap(cap func() int)
	// StreamStride reports the dominant detected stride (0 if none).
	StreamStride() int64
	// Allocations reports stream/window allocations for statistics.
	Allocations() uint64
	// CheckInvariants returns a description of the first internal-state
	// inconsistency, or "" when sound (audit support).
	CheckInvariants() string
}

var (
	_ Prefetcher = (*Engine)(nil)
	_ Prefetcher = (*Sequential)(nil)
)

// Allocations implements Prefetcher for the stride engine.
func (e *Engine) Allocations() uint64 { return e.Stats.StreamAllocs }

// SequentialConfig parameterizes the sequential prefetcher.
type SequentialConfig struct {
	// Degree is the number of next-sequential blocks fetched per miss.
	Degree int
	// Tagged also prefetches on the first demand reference to a
	// prefetched block (Smith's tagged prefetching), which keeps a
	// sequential run going without further misses.
	Tagged bool
}

// DefaultSequentialConfig matches the classic degree-1 tagged scheme.
func DefaultSequentialConfig() SequentialConfig {
	return SequentialConfig{Degree: 1, Tagged: true}
}

// Sequential is a one-block-lookahead (degree-N) sequential prefetcher:
// every miss to block a prefetches a+1..a+Degree. With Tagged it also
// extends runs on accesses that consumed a prefetch. It has no filter
// or stream tables and catches only unit-stride locality — the baseline
// the stride engine is measured against.
type Sequential struct {
	cfg    SequentialConfig
	cap    func() int
	reqbuf []cache.BlockAddr
	// lastPrefetched supports Tagged mode without per-line state in the
	// prefetcher: an access to the most recently prefetched window
	// extends the run.
	windowStart, windowEnd cache.BlockAddr
	windowValid            bool

	Stats Stats
}

// NewSequential builds the baseline prefetcher.
func NewSequential(cfg SequentialConfig) *Sequential {
	if cfg.Degree < 1 {
		panic("prefetch: sequential degree must be at least 1")
	}
	return &Sequential{cfg: cfg}
}

// SetCap installs the adaptive bound.
func (s *Sequential) SetCap(cap func() int) { s.cap = cap }

func (s *Sequential) degree() int {
	d := s.cfg.Degree
	if s.cap != nil {
		if c := s.cap(); c < d {
			d = c
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// OnMiss prefetches the next Degree sequential blocks.
func (s *Sequential) OnMiss(a cache.BlockAddr) []cache.BlockAddr {
	s.reqbuf = s.reqbuf[:0]
	d := s.degree()
	for k := 1; k <= d; k++ {
		s.reqbuf = append(s.reqbuf, a+cache.BlockAddr(k))
	}
	if d > 0 {
		s.windowStart, s.windowEnd = a+1, a+cache.BlockAddr(d)
		s.windowValid = true
		s.Stats.Issued += uint64(d)
		s.Stats.StreamAllocs++
	}
	return s.reqbuf
}

// OnAccess extends the current run in Tagged mode when the demand
// stream reaches the prefetched window.
func (s *Sequential) OnAccess(a cache.BlockAddr) []cache.BlockAddr {
	s.reqbuf = s.reqbuf[:0]
	if !s.cfg.Tagged || !s.windowValid || s.degree() == 0 {
		return s.reqbuf
	}
	if a >= s.windowStart && a <= s.windowEnd {
		next := s.windowEnd + 1
		s.reqbuf = append(s.reqbuf, next)
		s.windowEnd = next
		s.Stats.Issued++
		s.Stats.Advances++
	}
	return s.reqbuf
}

// TriggerStream is a no-op: the sequential scheme has no stream table.
func (s *Sequential) TriggerStream(a cache.BlockAddr, stride int64) []cache.BlockAddr {
	s.reqbuf = s.reqbuf[:0]
	return s.reqbuf
}

// StreamStride is always +1 once a window is live.
func (s *Sequential) StreamStride() int64 {
	if s.windowValid {
		return 1
	}
	return 0
}

// Allocations reports miss-triggered windows.
func (s *Sequential) Allocations() uint64 { return s.Stats.StreamAllocs }
