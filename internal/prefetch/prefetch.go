// Package prefetch implements the paper's Power4-style stride-based
// hardware prefetcher and the adaptive throttling mechanism proposed in
// §3 of the HPCA 2007 paper.
//
// Each cache (L1I, L1D and L2, per core) has an associated prefetch
// engine with three 32-entry filter tables — positive unit stride,
// negative unit stride, and non-unit stride — and an 8-entry stream
// table. A filter table allocates a miss stream into the stream table
// when it recognizes 4 fixed-stride misses; on allocation the engine
// launches a number of consecutive startup prefetches along the stream
// (6 for L1 engines, 25 for L2 engines, "at most" under the adaptive
// scheme). Demand accesses that follow an active stream advance it,
// keeping the prefetch distance ahead of the demand stream.
//
// The adaptive mechanism is a single saturating counter per cache that
// bounds the startup-prefetch count per stream. Useful prefetches
// (demand hit consumes a prefetch bit) increment it; useless prefetches
// (prefetched line evicted unreferenced) and harmful prefetches (miss
// matches a victim tag while prefetched lines sit in the set) decrement
// it. At zero, prefetching for that cache is disabled entirely.
package prefetch

import (
	"fmt"

	"cmpsim/internal/cache"
)

// Config parameterizes one prefetch engine (paper Table 1 values are the
// defaults from L1Config/L2Config).
type Config struct {
	FilterEntries  int // entries per filter table (paper: 32)
	StreamEntries  int // stream table entries (paper: 8)
	TrainThreshold int // fixed-stride misses to allocate a stream (paper: 4)
	StartupDepth   int // startup prefetches per stream (paper: 6 L1, 25 L2)
	MaxStride      int // |stride| bound in blocks for the non-unit table
}

// L1Config returns the paper's L1I/L1D engine parameters.
func L1Config() Config {
	return Config{FilterEntries: 32, StreamEntries: 8, TrainThreshold: 4, StartupDepth: 6, MaxStride: 64}
}

// L2Config returns the paper's L2 engine parameters.
func L2Config() Config {
	return Config{FilterEntries: 32, StreamEntries: 8, TrainThreshold: 4, StartupDepth: 25, MaxStride: 64}
}

func (c Config) validate() error {
	if c.FilterEntries <= 0 || c.StreamEntries <= 0 {
		return fmt.Errorf("prefetch: filter (%d) and stream (%d) entries must be positive", c.FilterEntries, c.StreamEntries)
	}
	if c.TrainThreshold < 2 {
		return fmt.Errorf("prefetch: train threshold %d must be at least 2", c.TrainThreshold)
	}
	if c.StartupDepth < 1 {
		return fmt.Errorf("prefetch: startup depth %d must be at least 1", c.StartupDepth)
	}
	if c.MaxStride < 2 {
		return fmt.Errorf("prefetch: max stride %d must be at least 2", c.MaxStride)
	}
	return nil
}

// Filter-table sentinels. Expected addresses are stored with expectKey
// OR-ed in so a lookup key can never match an empty slot; undetermined
// bases use a value whose delta from any simulated address is far
// outside the stride bound.
const (
	expectKey    cache.BlockAddr = 1 << 63
	baseSentinel cache.BlockAddr = 1 << 62
)

// filterTable tracks candidate miss streams in struct-of-arrays layout:
// the per-miss training scan reads only the contiguous expect (or base)
// words instead of striding across full entry structs — OnMiss runs on
// every demand miss, making this the hottest scan in the prefetcher.
// Entry i is valid iff used[i] != 0 (the LRU tick starts at 1).
//
// Replacement order is kept in an intrusive doubly-linked list (prev/
// next/head/tail): used timestamps are assigned from a strictly
// increasing tick, so the list tail IS the argmin the old linear LRU
// scan computed — replacement becomes O(1) instead of an O(entries)
// scan per unrecognized miss. used stays as the validity marker and the
// audit cross-check of the list order.
type filterTable struct {
	expect []cache.BlockAddr // (last+stride)|expectKey for trainable entries, else 0
	base   []cache.BlockAddr // last for valid undetermined entries, else baseSentinel
	used   []uint64          // LRU timestamp; 0 = invalid
	last   []cache.BlockAddr
	stride []int64 // fixed +1/-1 for the unit tables; 0 = undetermined
	count  []int32
	next   []int16 // toward LRU; -1 ends the list
	prev   []int16 // toward MRU; -1 ends the list
	head   int16   // MRU entry, -1 when no entry is valid
	tail   int16   // LRU entry, -1 when no entry is valid
	free   int16   // invalid-entry count
}

func newFilterTable(n int) filterTable {
	t := filterTable{
		expect: make([]cache.BlockAddr, n),
		base:   make([]cache.BlockAddr, n),
		used:   make([]uint64, n),
		last:   make([]cache.BlockAddr, n),
		stride: make([]int64, n),
		count:  make([]int32, n),
		next:   make([]int16, n),
		prev:   make([]int16, n),
		head:   -1,
		tail:   -1,
		free:   int16(n),
	}
	for i := range t.base {
		t.base[i] = baseSentinel
	}
	return t
}

// unlink removes entry i from the replacement list.
func (t *filterTable) unlink(i int16) {
	p, n := t.prev[i], t.next[i]
	if p >= 0 {
		t.next[p] = n
	} else {
		t.head = n
	}
	if n >= 0 {
		t.prev[n] = p
	} else {
		t.tail = p
	}
}

// pushHead links entry i at the MRU position.
func (t *filterTable) pushHead(i int16) {
	t.prev[i] = -1
	t.next[i] = t.head
	if t.head >= 0 {
		t.prev[t.head] = i
	} else {
		t.tail = i
	}
	t.head = i
}

// refresh moves a just-touched valid entry to the MRU position.
func (t *filterTable) refresh(i int16) {
	if t.head == i {
		return
	}
	t.unlink(i)
	t.pushHead(i)
}

// streamEntry is an active prefetch stream.
type streamEntry struct {
	valid      bool
	stride     int64
	nextDemand cache.BlockAddr // next demand address expected
	nextPf     cache.BlockAddr // next address to prefetch
	used       uint64
}

// Stats counts engine activity.
type Stats struct {
	Issued       uint64 // prefetch requests handed to the hierarchy
	StreamAllocs uint64
	FilterHits   uint64 // misses that strengthened a filter entry
	Advances     uint64 // stream advances from demand accesses
}

// Engine is one stride prefetcher.
type Engine struct {
	cfg        Config
	pos        filterTable // positive unit stride
	neg        filterTable // negative unit stride
	nonunit    filterTable
	streams    []streamEntry
	tick       uint64
	cap        func() int // adaptive startup cap; nil = always cfg.StartupDepth
	probeSkips uint64     // stream allocations suppressed while disabled
	reqbuf     []cache.BlockAddr
	Stats      Stats
}

// New builds an engine; it panics on an invalid Config (programmer error).
func New(cfg Config) *Engine {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Engine{
		cfg:     cfg,
		pos:     newFilterTable(cfg.FilterEntries),
		neg:     newFilterTable(cfg.FilterEntries),
		nonunit: newFilterTable(cfg.FilterEntries),
		streams: make([]streamEntry, cfg.StreamEntries),
	}
}

// SetCap installs the adaptive controller's startup-prefetch bound. A
// nil provider (the default) means non-adaptive operation at full depth.
func (e *Engine) SetCap(cap func() int) { e.cap = cap }

// depth returns the current allowed startup depth (0 disables).
func (e *Engine) depth() int {
	if e.cap == nil {
		return e.cfg.StartupDepth
	}
	d := e.cap()
	if d > e.cfg.StartupDepth {
		d = e.cfg.StartupDepth
	}
	if d < 0 {
		d = 0
	}
	return d
}

// OnAccess informs the engine of a demand access (hit or miss) so active
// streams advance. Prefetch addresses to issue are appended to the
// returned slice, which aliases an internal buffer valid until the next
// call.
func (e *Engine) OnAccess(a cache.BlockAddr) []cache.BlockAddr {
	e.tick++
	e.reqbuf = e.reqbuf[:0]
	issue := e.depth() > 0
	for i := range e.streams {
		s := &e.streams[i]
		if !s.valid {
			continue
		}
		// Advance when the demand stream reaches (or steps past) the
		// expected next address; tolerate one skipped element.
		if a == s.nextDemand || a == advance(s.nextDemand, s.stride) {
			if a != s.nextDemand {
				s.nextDemand = advance(s.nextDemand, s.stride)
			}
			s.nextDemand = advance(s.nextDemand, s.stride)
			s.used = e.tick
			if issue {
				e.reqbuf = append(e.reqbuf, s.nextPf)
				s.nextPf = advance(s.nextPf, s.stride)
				e.Stats.Advances++
				e.Stats.Issued++
			}
			break
		}
	}
	return e.reqbuf
}

// advance moves a block address by a signed stride.
func advance(a cache.BlockAddr, stride int64) cache.BlockAddr {
	return cache.BlockAddr(int64(a) + stride)
}

// OnMiss trains the filter tables with a demand miss and may allocate a
// stream, returning startup prefetch addresses (internal buffer, valid
// until the next call).
func (e *Engine) OnMiss(a cache.BlockAddr) []cache.BlockAddr {
	e.tick++
	e.reqbuf = e.reqbuf[:0]
	if e.train(&e.pos, a) || e.train(&e.neg, a) || e.trainNonUnit(a) {
		return e.reqbuf
	}
	// No table recognized the miss: allocate fresh candidates.
	e.alloc(&e.pos, a, 1)
	e.alloc(&e.neg, a, -1)
	e.alloc(&e.nonunit, a, 0)
	return e.reqbuf
}

// clear invalidates filter entry i.
func (t *filterTable) clear(i int) {
	t.used[i] = 0
	t.expect[i] = 0
	t.base[i] = baseSentinel
	t.unlink(int16(i))
	t.free++
}

// train strengthens a filter entry expecting address a (any table whose
// entries carry an established stride). The scan touches only the
// contiguous expected-address words.
func (e *Engine) train(t *filterTable, a cache.BlockAddr) bool {
	key := a | expectKey
	for i, x := range t.expect {
		if x != key {
			continue
		}
		t.last[i] = a
		t.count[i]++
		t.used[i] = e.tick
		e.Stats.FilterHits++
		if t.count[i] >= int32(e.cfg.TrainThreshold) {
			stride := t.stride[i]
			t.clear(i)
			e.allocStream(a, stride)
		} else {
			t.expect[i] = advance(a, t.stride[i]) | expectKey
			t.refresh(int16(i))
		}
		return true
	}
	return false
}

// trainNonUnit handles the variable-stride table: the first pair of
// misses establishes the candidate stride; later misses strengthen it.
func (e *Engine) trainNonUnit(a cache.BlockAddr) bool {
	if e.train(&e.nonunit, a) {
		return true
	}
	// Second chance: derive a stride from an undetermined entry. The
	// scan prefilters with one wrapping subtract per entry: b is a
	// candidate only if it lies in the window [a-MaxStride, a+MaxStride],
	// i.e. b-(a-MaxStride) <= 2*MaxStride unsigned (the sentinel always
	// fails). The exact two-sided stride check runs on the rare survivors.
	t := &e.nonunit
	maxStride := int64(e.cfg.MaxStride)
	lo := a - cache.BlockAddr(maxStride)
	window := uint64(2 * maxStride)
	for i, b := range t.base {
		if uint64(b-lo) > window {
			continue
		}
		d := int64(a) - int64(b)
		if d >= 2 && d <= maxStride || d <= -2 && d >= -maxStride {
			t.stride[i] = d
			t.last[i] = a
			t.count[i] = 2
			t.used[i] = e.tick
			t.expect[i] = advance(a, d) | expectKey
			t.base[i] = baseSentinel
			t.refresh(int16(i))
			e.Stats.FilterHits++
			return true
		}
	}
	return false
}

// alloc installs a new filter candidate, replacing the lowest-indexed
// invalid entry when one exists (rare: entries only vacate on stream
// allocation), otherwise the list-tail LRU entry in O(1).
func (e *Engine) alloc(t *filterTable, a cache.BlockAddr, stride int64) {
	var vi int
	if t.free > 0 {
		for i, u := range t.used {
			if u == 0 {
				vi = i
				break
			}
		}
		t.free--
		t.pushHead(int16(vi))
	} else {
		vi = int(t.tail)
		t.refresh(t.tail)
	}
	t.last[vi] = a
	t.stride[vi] = stride
	t.count[vi] = 1
	t.used[vi] = e.tick
	if stride != 0 {
		t.expect[vi] = advance(a, stride) | expectKey
		t.base[vi] = baseSentinel
	} else {
		t.expect[vi] = 0
		t.base[vi] = a
	}
}

// allocStream installs a stream (LRU replacement) and queues its startup
// prefetches into reqbuf. When the adaptive controller has disabled the
// engine (depth 0), most allocations are suppressed, but every 32nd one
// issues a single probe prefetch: the paper's counter can only recover
// through hits on prefetched lines, so a disabled engine must retain a
// trickle of evidence-gathering prefetches.
func (e *Engine) allocStream(a cache.BlockAddr, stride int64) {
	d := e.depth()
	if d == 0 {
		e.probeSkips++
		if e.probeSkips%32 != 0 {
			return
		}
		d = 1
	}
	vi := 0
	for i := range e.streams {
		if !e.streams[i].valid {
			vi = i
			break
		}
		if e.streams[i].used < e.streams[vi].used {
			vi = i
		}
	}
	s := &e.streams[vi]
	s.valid = true
	s.stride = stride
	s.nextDemand = advance(a, stride)
	s.nextPf = advance(a, int64(d+1)*stride)
	s.used = e.tick
	e.Stats.StreamAllocs++
	for k := 1; k <= d; k++ {
		e.reqbuf = append(e.reqbuf, advance(a, int64(k)*stride))
	}
	e.Stats.Issued += uint64(d)
}

// TriggerStream allocates a stream directly (the paper lets L1 prefetch
// streams trigger L2 prefetches). The returned startup addresses alias
// the internal buffer.
func (e *Engine) TriggerStream(a cache.BlockAddr, stride int64) []cache.BlockAddr {
	e.tick++
	e.reqbuf = e.reqbuf[:0]
	if stride == 0 {
		return e.reqbuf
	}
	// Skip if an equivalent stream is already active.
	for i := range e.streams {
		s := &e.streams[i]
		if s.valid && s.stride == stride {
			d := (int64(a) - int64(s.nextDemand)) * sign(stride)
			if d >= -1 && d <= int64(e.cfg.StartupDepth) {
				return e.reqbuf
			}
		}
	}
	e.allocStream(a, stride)
	return e.reqbuf
}

// ActiveStreams returns the number of valid stream entries.
func (e *Engine) ActiveStreams() int {
	n := 0
	for i := range e.streams {
		if e.streams[i].valid {
			n++
		}
	}
	return n
}

// StreamStride returns the stride of the most recently used active
// stream, or 0 when none is active (test and trigger support).
func (e *Engine) StreamStride() int64 {
	best := -1
	for i := range e.streams {
		if e.streams[i].valid && (best == -1 || e.streams[i].used > e.streams[best].used) {
			best = i
		}
	}
	if best == -1 {
		return 0
	}
	return e.streams[best].stride
}

func sign(v int64) int64 {
	if v < 0 {
		return -1
	}
	return 1
}

// CheckInvariants validates stream- and filter-table state (audit
// support): active streams have a non-zero stride within the configured
// bound with their prefetch pointer a whole number of strides from the
// demand pointer, and filter entries keep strides and counts in range.
// It returns the first violation, or "".
func (e *Engine) CheckInvariants() string {
	for i := range e.streams {
		s := &e.streams[i]
		if !s.valid {
			continue
		}
		switch {
		case s.stride == 0:
			return fmt.Sprintf("stream %d: zero stride", i)
		case s.stride > int64(e.cfg.MaxStride) || s.stride < -int64(e.cfg.MaxStride):
			return fmt.Sprintf("stream %d: stride %d exceeds bound %d", i, s.stride, e.cfg.MaxStride)
		case (int64(s.nextPf)-int64(s.nextDemand))%s.stride != 0:
			return fmt.Sprintf("stream %d: prefetch pointer %#x not stride-aligned with demand pointer %#x (stride %d)",
				i, uint64(s.nextPf), uint64(s.nextDemand), s.stride)
		}
	}
	for _, t := range []*filterTable{&e.pos, &e.neg, &e.nonunit} {
		for i, u := range t.used {
			if u == 0 {
				// Invalid entries must carry cleared scan words so they can
				// never match a training lookup.
				if t.expect[i] != 0 || t.base[i] != baseSentinel {
					return fmt.Sprintf("filter %d: invalid entry with live scan words", i)
				}
				continue
			}
			if t.stride[i] > int64(e.cfg.MaxStride) || t.stride[i] < -int64(e.cfg.MaxStride) {
				return fmt.Sprintf("filter %d: stride %d exceeds bound %d", i, t.stride[i], e.cfg.MaxStride)
			}
			if t.count[i] < 1 || t.count[i] > int32(e.cfg.TrainThreshold) {
				return fmt.Sprintf("filter %d: count %d outside [1, %d]", i, t.count[i], e.cfg.TrainThreshold)
			}
			// The scan word must agree with the entry it summarizes.
			if t.stride[i] != 0 {
				if want := advance(t.last[i], t.stride[i]) | expectKey; t.expect[i] != want {
					return fmt.Sprintf("filter %d: expect word %#x desynced (want %#x)",
						i, uint64(t.expect[i]), uint64(want))
				}
			} else if t.base[i] != t.last[i] {
				return fmt.Sprintf("filter %d: base word %#x desynced from last %#x",
					i, uint64(t.base[i]), uint64(t.last[i]))
			}
		}
		// The replacement list must visit exactly the valid entries in
		// strictly decreasing used order (MRU to LRU).
		visited := 0
		prevUsed := ^uint64(0)
		for i := t.head; i >= 0; i = t.next[i] {
			if t.used[i] == 0 {
				return fmt.Sprintf("filter %d: invalid entry linked in replacement list", i)
			}
			if t.used[i] >= prevUsed {
				return fmt.Sprintf("filter %d: replacement list out of LRU order", i)
			}
			prevUsed = t.used[i]
			visited++
			if visited > len(t.used) {
				return "filter replacement list has a cycle"
			}
		}
		if visited != len(t.used)-int(t.free) {
			return fmt.Sprintf("filter replacement list links %d entries, want %d valid",
				visited, len(t.used)-int(t.free))
		}
	}
	return ""
}

// CheckInvariants for the sequential baseline: a live tagged window
// must be well-ordered.
func (s *Sequential) CheckInvariants() string {
	if s.windowValid && s.windowEnd < s.windowStart {
		return fmt.Sprintf("window [%#x, %#x] inverted", uint64(s.windowStart), uint64(s.windowEnd))
	}
	return ""
}

// CorruptStream deliberately corrupts stream-table state for
// fault-injection tests: the first valid stream's stride is zeroed (or,
// with no active stream, a zero-stride entry is fabricated), a state
// CheckInvariants must catch.
func (e *Engine) CorruptStream() {
	for i := range e.streams {
		if e.streams[i].valid {
			e.streams[i].stride = 0
			return
		}
	}
	e.streams[0] = streamEntry{valid: true, stride: 0}
}

// Adaptive is the paper's saturating counter: one per cache. It starts
// saturated at Max (normal prefetching) and is stepped by the three
// event kinds. Cap() is the allowed startup-prefetch count; zero
// disables prefetching for the associated cache.
type Adaptive struct {
	counter int
	max     int

	// Event counters for analysis.
	UsefulEvents  uint64
	UselessEvents uint64
	HarmfulEvents uint64
}

// NewAdaptive returns a controller saturating at max (use the engine's
// startup depth: 6 for L1, 25 for L2).
func NewAdaptive(max int) *Adaptive {
	if max < 1 {
		panic("prefetch: adaptive max must be positive")
	}
	return &Adaptive{counter: max, max: max}
}

// Useful records a demand hit that consumed a prefetch bit.
func (a *Adaptive) Useful() {
	a.UsefulEvents++
	if a.counter < a.max {
		a.counter++
	}
}

// Useless records a prefetched line evicted without being referenced.
func (a *Adaptive) Useless() {
	a.UselessEvents++
	if a.counter > 0 {
		a.counter--
	}
}

// Harmful records a miss attributed to a prefetch-displaced victim.
func (a *Adaptive) Harmful() {
	a.HarmfulEvents++
	if a.counter > 0 {
		a.counter--
	}
}

// Cap returns the current startup-prefetch bound.
func (a *Adaptive) Cap() int { return a.counter }

// Disabled reports whether prefetching is currently shut off.
func (a *Adaptive) Disabled() bool { return a.counter == 0 }
