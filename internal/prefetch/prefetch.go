// Package prefetch implements the paper's Power4-style stride-based
// hardware prefetcher and the adaptive throttling mechanism proposed in
// §3 of the HPCA 2007 paper.
//
// Each cache (L1I, L1D and L2, per core) has an associated prefetch
// engine with three 32-entry filter tables — positive unit stride,
// negative unit stride, and non-unit stride — and an 8-entry stream
// table. A filter table allocates a miss stream into the stream table
// when it recognizes 4 fixed-stride misses; on allocation the engine
// launches a number of consecutive startup prefetches along the stream
// (6 for L1 engines, 25 for L2 engines, "at most" under the adaptive
// scheme). Demand accesses that follow an active stream advance it,
// keeping the prefetch distance ahead of the demand stream.
//
// The adaptive mechanism is a single saturating counter per cache that
// bounds the startup-prefetch count per stream. Useful prefetches
// (demand hit consumes a prefetch bit) increment it; useless prefetches
// (prefetched line evicted unreferenced) and harmful prefetches (miss
// matches a victim tag while prefetched lines sit in the set) decrement
// it. At zero, prefetching for that cache is disabled entirely.
package prefetch

import (
	"fmt"

	"cmpsim/internal/cache"
)

// Config parameterizes one prefetch engine (paper Table 1 values are the
// defaults from L1Config/L2Config).
type Config struct {
	FilterEntries  int // entries per filter table (paper: 32)
	StreamEntries  int // stream table entries (paper: 8)
	TrainThreshold int // fixed-stride misses to allocate a stream (paper: 4)
	StartupDepth   int // startup prefetches per stream (paper: 6 L1, 25 L2)
	MaxStride      int // |stride| bound in blocks for the non-unit table
}

// L1Config returns the paper's L1I/L1D engine parameters.
func L1Config() Config {
	return Config{FilterEntries: 32, StreamEntries: 8, TrainThreshold: 4, StartupDepth: 6, MaxStride: 64}
}

// L2Config returns the paper's L2 engine parameters.
func L2Config() Config {
	return Config{FilterEntries: 32, StreamEntries: 8, TrainThreshold: 4, StartupDepth: 25, MaxStride: 64}
}

func (c Config) validate() error {
	if c.FilterEntries <= 0 || c.StreamEntries <= 0 {
		return fmt.Errorf("prefetch: filter (%d) and stream (%d) entries must be positive", c.FilterEntries, c.StreamEntries)
	}
	if c.TrainThreshold < 2 {
		return fmt.Errorf("prefetch: train threshold %d must be at least 2", c.TrainThreshold)
	}
	if c.StartupDepth < 1 {
		return fmt.Errorf("prefetch: startup depth %d must be at least 1", c.StartupDepth)
	}
	if c.MaxStride < 2 {
		return fmt.Errorf("prefetch: max stride %d must be at least 2", c.MaxStride)
	}
	return nil
}

// filterEntry tracks a candidate miss stream.
type filterEntry struct {
	valid  bool
	last   cache.BlockAddr
	stride int64 // fixed +1/-1 for the unit tables; 0 = undetermined
	count  int
	used   uint64 // LRU timestamp
}

// streamEntry is an active prefetch stream.
type streamEntry struct {
	valid      bool
	stride     int64
	nextDemand cache.BlockAddr // next demand address expected
	nextPf     cache.BlockAddr // next address to prefetch
	used       uint64
}

// Stats counts engine activity.
type Stats struct {
	Issued       uint64 // prefetch requests handed to the hierarchy
	StreamAllocs uint64
	FilterHits   uint64 // misses that strengthened a filter entry
	Advances     uint64 // stream advances from demand accesses
}

// Engine is one stride prefetcher.
type Engine struct {
	cfg        Config
	pos        []filterEntry // positive unit stride
	neg        []filterEntry // negative unit stride
	nonunit    []filterEntry
	streams    []streamEntry
	tick       uint64
	cap        func() int // adaptive startup cap; nil = always cfg.StartupDepth
	probeSkips uint64     // stream allocations suppressed while disabled
	reqbuf     []cache.BlockAddr
	Stats      Stats
}

// New builds an engine; it panics on an invalid Config (programmer error).
func New(cfg Config) *Engine {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Engine{
		cfg:     cfg,
		pos:     make([]filterEntry, cfg.FilterEntries),
		neg:     make([]filterEntry, cfg.FilterEntries),
		nonunit: make([]filterEntry, cfg.FilterEntries),
		streams: make([]streamEntry, cfg.StreamEntries),
	}
}

// SetCap installs the adaptive controller's startup-prefetch bound. A
// nil provider (the default) means non-adaptive operation at full depth.
func (e *Engine) SetCap(cap func() int) { e.cap = cap }

// depth returns the current allowed startup depth (0 disables).
func (e *Engine) depth() int {
	if e.cap == nil {
		return e.cfg.StartupDepth
	}
	d := e.cap()
	if d > e.cfg.StartupDepth {
		d = e.cfg.StartupDepth
	}
	if d < 0 {
		d = 0
	}
	return d
}

// OnAccess informs the engine of a demand access (hit or miss) so active
// streams advance. Prefetch addresses to issue are appended to the
// returned slice, which aliases an internal buffer valid until the next
// call.
func (e *Engine) OnAccess(a cache.BlockAddr) []cache.BlockAddr {
	e.tick++
	e.reqbuf = e.reqbuf[:0]
	issue := e.depth() > 0
	for i := range e.streams {
		s := &e.streams[i]
		if !s.valid {
			continue
		}
		// Advance when the demand stream reaches (or steps past) the
		// expected next address; tolerate one skipped element.
		if a == s.nextDemand || a == advance(s.nextDemand, s.stride) {
			if a != s.nextDemand {
				s.nextDemand = advance(s.nextDemand, s.stride)
			}
			s.nextDemand = advance(s.nextDemand, s.stride)
			s.used = e.tick
			if issue {
				e.reqbuf = append(e.reqbuf, s.nextPf)
				s.nextPf = advance(s.nextPf, s.stride)
				e.Stats.Advances++
				e.Stats.Issued++
			}
			break
		}
	}
	return e.reqbuf
}

// advance moves a block address by a signed stride.
func advance(a cache.BlockAddr, stride int64) cache.BlockAddr {
	return cache.BlockAddr(int64(a) + stride)
}

// OnMiss trains the filter tables with a demand miss and may allocate a
// stream, returning startup prefetch addresses (internal buffer, valid
// until the next call).
func (e *Engine) OnMiss(a cache.BlockAddr) []cache.BlockAddr {
	e.tick++
	e.reqbuf = e.reqbuf[:0]
	if e.train(e.pos, a, 1) || e.train(e.neg, a, -1) || e.trainNonUnit(a) {
		return e.reqbuf
	}
	// No table recognized the miss: allocate fresh candidates.
	e.alloc(e.pos, a, 1)
	e.alloc(e.neg, a, -1)
	e.alloc(e.nonunit, a, 0)
	return e.reqbuf
}

// train strengthens a unit-stride filter entry expecting address a.
func (e *Engine) train(table []filterEntry, a cache.BlockAddr, stride int64) bool {
	for i := range table {
		f := &table[i]
		if f.valid && advance(f.last, stride) == a {
			f.last = a
			f.count++
			f.used = e.tick
			e.Stats.FilterHits++
			if f.count >= e.cfg.TrainThreshold {
				f.valid = false
				e.allocStream(a, stride)
			}
			return true
		}
	}
	return false
}

// trainNonUnit handles the variable-stride table: the first pair of
// misses establishes the candidate stride; later misses strengthen it.
func (e *Engine) trainNonUnit(a cache.BlockAddr) bool {
	for i := range e.nonunit {
		f := &e.nonunit[i]
		if f.valid && f.stride != 0 && advance(f.last, f.stride) == a {
			f.last = a
			f.count++
			f.used = e.tick
			e.Stats.FilterHits++
			if f.count >= e.cfg.TrainThreshold {
				f.valid = false
				e.allocStream(a, f.stride)
			}
			return true
		}
	}
	// Second chance: derive a stride from an undetermined entry.
	for i := range e.nonunit {
		f := &e.nonunit[i]
		if f.valid && f.stride == 0 {
			d := int64(a) - int64(f.last)
			if d >= 2 && d <= int64(e.cfg.MaxStride) || d <= -2 && d >= -int64(e.cfg.MaxStride) {
				f.stride = d
				f.last = a
				f.count = 2
				f.used = e.tick
				e.Stats.FilterHits++
				return true
			}
		}
	}
	return false
}

// alloc installs a new filter candidate, replacing the LRU entry.
func (e *Engine) alloc(table []filterEntry, a cache.BlockAddr, stride int64) {
	vi := 0
	for i := range table {
		if !table[i].valid {
			vi = i
			break
		}
		if table[i].used < table[vi].used {
			vi = i
		}
	}
	table[vi] = filterEntry{valid: true, last: a, stride: stride, count: 1, used: e.tick}
}

// allocStream installs a stream (LRU replacement) and queues its startup
// prefetches into reqbuf. When the adaptive controller has disabled the
// engine (depth 0), most allocations are suppressed, but every 32nd one
// issues a single probe prefetch: the paper's counter can only recover
// through hits on prefetched lines, so a disabled engine must retain a
// trickle of evidence-gathering prefetches.
func (e *Engine) allocStream(a cache.BlockAddr, stride int64) {
	d := e.depth()
	if d == 0 {
		e.probeSkips++
		if e.probeSkips%32 != 0 {
			return
		}
		d = 1
	}
	vi := 0
	for i := range e.streams {
		if !e.streams[i].valid {
			vi = i
			break
		}
		if e.streams[i].used < e.streams[vi].used {
			vi = i
		}
	}
	s := &e.streams[vi]
	s.valid = true
	s.stride = stride
	s.nextDemand = advance(a, stride)
	s.nextPf = advance(a, int64(d+1)*stride)
	s.used = e.tick
	e.Stats.StreamAllocs++
	for k := 1; k <= d; k++ {
		e.reqbuf = append(e.reqbuf, advance(a, int64(k)*stride))
	}
	e.Stats.Issued += uint64(d)
}

// TriggerStream allocates a stream directly (the paper lets L1 prefetch
// streams trigger L2 prefetches). The returned startup addresses alias
// the internal buffer.
func (e *Engine) TriggerStream(a cache.BlockAddr, stride int64) []cache.BlockAddr {
	e.tick++
	e.reqbuf = e.reqbuf[:0]
	if stride == 0 {
		return e.reqbuf
	}
	// Skip if an equivalent stream is already active.
	for i := range e.streams {
		s := &e.streams[i]
		if s.valid && s.stride == stride {
			d := (int64(a) - int64(s.nextDemand)) * sign(stride)
			if d >= -1 && d <= int64(e.cfg.StartupDepth) {
				return e.reqbuf
			}
		}
	}
	e.allocStream(a, stride)
	return e.reqbuf
}

// ActiveStreams returns the number of valid stream entries.
func (e *Engine) ActiveStreams() int {
	n := 0
	for i := range e.streams {
		if e.streams[i].valid {
			n++
		}
	}
	return n
}

// StreamStride returns the stride of the most recently used active
// stream, or 0 when none is active (test and trigger support).
func (e *Engine) StreamStride() int64 {
	best := -1
	for i := range e.streams {
		if e.streams[i].valid && (best == -1 || e.streams[i].used > e.streams[best].used) {
			best = i
		}
	}
	if best == -1 {
		return 0
	}
	return e.streams[best].stride
}

func sign(v int64) int64 {
	if v < 0 {
		return -1
	}
	return 1
}

// CheckInvariants validates stream- and filter-table state (audit
// support): active streams have a non-zero stride within the configured
// bound with their prefetch pointer a whole number of strides from the
// demand pointer, and filter entries keep strides and counts in range.
// It returns the first violation, or "".
func (e *Engine) CheckInvariants() string {
	for i := range e.streams {
		s := &e.streams[i]
		if !s.valid {
			continue
		}
		switch {
		case s.stride == 0:
			return fmt.Sprintf("stream %d: zero stride", i)
		case s.stride > int64(e.cfg.MaxStride) || s.stride < -int64(e.cfg.MaxStride):
			return fmt.Sprintf("stream %d: stride %d exceeds bound %d", i, s.stride, e.cfg.MaxStride)
		case (int64(s.nextPf)-int64(s.nextDemand))%s.stride != 0:
			return fmt.Sprintf("stream %d: prefetch pointer %#x not stride-aligned with demand pointer %#x (stride %d)",
				i, uint64(s.nextPf), uint64(s.nextDemand), s.stride)
		}
	}
	for _, tb := range [][]filterEntry{e.pos, e.neg, e.nonunit} {
		for i := range tb {
			f := &tb[i]
			if !f.valid {
				continue
			}
			if f.stride > int64(e.cfg.MaxStride) || f.stride < -int64(e.cfg.MaxStride) {
				return fmt.Sprintf("filter %d: stride %d exceeds bound %d", i, f.stride, e.cfg.MaxStride)
			}
			if f.count < 1 || f.count > e.cfg.TrainThreshold {
				return fmt.Sprintf("filter %d: count %d outside [1, %d]", i, f.count, e.cfg.TrainThreshold)
			}
		}
	}
	return ""
}

// CheckInvariants for the sequential baseline: a live tagged window
// must be well-ordered.
func (s *Sequential) CheckInvariants() string {
	if s.windowValid && s.windowEnd < s.windowStart {
		return fmt.Sprintf("window [%#x, %#x] inverted", uint64(s.windowStart), uint64(s.windowEnd))
	}
	return ""
}

// CorruptStream deliberately corrupts stream-table state for
// fault-injection tests: the first valid stream's stride is zeroed (or,
// with no active stream, a zero-stride entry is fabricated), a state
// CheckInvariants must catch.
func (e *Engine) CorruptStream() {
	for i := range e.streams {
		if e.streams[i].valid {
			e.streams[i].stride = 0
			return
		}
	}
	e.streams[0] = streamEntry{valid: true, stride: 0}
}

// Adaptive is the paper's saturating counter: one per cache. It starts
// saturated at Max (normal prefetching) and is stepped by the three
// event kinds. Cap() is the allowed startup-prefetch count; zero
// disables prefetching for the associated cache.
type Adaptive struct {
	counter int
	max     int

	// Event counters for analysis.
	UsefulEvents  uint64
	UselessEvents uint64
	HarmfulEvents uint64
}

// NewAdaptive returns a controller saturating at max (use the engine's
// startup depth: 6 for L1, 25 for L2).
func NewAdaptive(max int) *Adaptive {
	if max < 1 {
		panic("prefetch: adaptive max must be positive")
	}
	return &Adaptive{counter: max, max: max}
}

// Useful records a demand hit that consumed a prefetch bit.
func (a *Adaptive) Useful() {
	a.UsefulEvents++
	if a.counter < a.max {
		a.counter++
	}
}

// Useless records a prefetched line evicted without being referenced.
func (a *Adaptive) Useless() {
	a.UselessEvents++
	if a.counter > 0 {
		a.counter--
	}
}

// Harmful records a miss attributed to a prefetch-displaced victim.
func (a *Adaptive) Harmful() {
	a.HarmfulEvents++
	if a.counter > 0 {
		a.counter--
	}
}

// Cap returns the current startup-prefetch bound.
func (a *Adaptive) Cap() int { return a.counter }

// Disabled reports whether prefetching is currently shut off.
func (a *Adaptive) Disabled() bool { return a.counter == 0 }
