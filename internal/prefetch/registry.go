package prefetch

import "fmt"

// Factory builds one prefetch engine for a cache level from that
// level's stride-engine Config; implementations derive their own
// parameters from it so every kind scales comparably between the L1
// (StartupDepth 6) and L2 (StartupDepth 25) levels.
type Factory func(c Config) Prefetcher

// DefaultName is the kind an empty PrefetcherKind resolves to: the
// paper's Power4-style stride engine.
const DefaultName = "stride"

var (
	kindNames []string // registration order
	factories = map[string]Factory{}
)

// Register adds a factory under a unique kind name. The built-in kinds
// register from this package's init below, so registration order — and
// therefore Names() — is fixed.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("prefetch: Register with empty name or nil factory")
	}
	if _, dup := factories[name]; dup {
		panic("prefetch: duplicate prefetcher kind " + name)
	}
	kindNames = append(kindNames, name)
	factories[name] = f
}

func init() {
	Register(DefaultName, func(c Config) Prefetcher { return New(c) })
	Register("sequential", func(c Config) Prefetcher {
		sc := DefaultSequentialConfig()
		sc.Degree = c.StartupDepth / 3 // comparable aggressiveness
		if sc.Degree < 1 {
			sc.Degree = 1
		}
		return NewSequential(sc)
	})
	Register("stream", func(c Config) Prefetcher { return NewStreamBuffers(StreamConfigFor(c)) })
	Register("markov", func(c Config) Prefetcher { return NewMarkov(MarkovConfigFor(c)) })
}

// Names lists the registered prefetcher kinds in registration order
// (the default first).
func Names() []string {
	return append([]string(nil), kindNames...)
}

// ByName returns the factory for a kind; "" means the default stride
// engine.
func ByName(name string) (Factory, error) {
	if name == "" {
		name = DefaultName
	}
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q (have %v)", name, Names())
	}
	return f, nil
}

// MustByName is ByName for callers with validated kinds.
func MustByName(name string) Factory {
	f, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Canonical maps a kind name to its canonical spelling: the empty
// string and DefaultName are the same kind.
func Canonical(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}
