package codec

import (
	"encoding/binary"
	"fmt"
)

// ZCA implements zero-content / frequent-value line compression: the
// cheap end of Pekhimenko's taxonomy. Only two whole-line patterns
// compress — an all-zero line and a line that is one repeated 32-bit
// value — both to a single segment; everything else is stored raw.
// It models designs like Zero-Content Augmented caches (Dusser et al.)
// and single-entry frequent-value caches: near-zero decompression
// latency, but a compression ratio that collapses on data with any
// entropy. In the bakeoff it anchors the low-ratio/low-latency corner.
//
// Encoded layout: header byte (zcaZero or zcaValue), then for zcaValue
// the repeated 32-bit word, then zero padding to one segment.
type ZCA struct{}

const (
	zcaZero  = 0 // all-zero line
	zcaValue = 1 // one repeated non-zero 32-bit value
)

// zcaValueOf reports whether line is a single repeated 32-bit word.
func zcaValueOf(line []byte) (uint32, bool) {
	v := binary.LittleEndian.Uint32(line)
	for i := 4; i < LineSize; i += 4 {
		if binary.LittleEndian.Uint32(line[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

// Name returns the registry key.
func (ZCA) Name() string { return "zca" }

// CompressedSizeSegments returns 1 for zero/repeated-value lines and
// MaxSegments otherwise.
func (ZCA) CompressedSizeSegments(line []byte) int {
	mustLine(line)
	if _, ok := zcaValueOf(line); ok {
		return 1
	}
	return MaxSegments
}

// AppendEncode appends the ZCA encoding of line to dst.
func (c ZCA) AppendEncode(dst, line []byte) ([]byte, int) {
	mustLine(line)
	v, ok := zcaValueOf(line)
	if !ok {
		return append(dst, line...), MaxSegments
	}
	start := len(dst)
	if v == 0 {
		dst = append(dst, zcaZero)
	} else {
		dst = append(dst, zcaValue)
		dst = appendLE(dst, uint64(v), 4)
	}
	for len(dst)-start < SegmentSize {
		dst = append(dst, 0)
	}
	return dst, 1
}

// DecodeInto strictly decodes a ZCA stream: only segment counts 1 and
// MaxSegments exist, the header must be canonical (a zero line must use
// zcaZero, not zcaValue with value 0), and padding must be zero.
func (c ZCA) DecodeInto(dst, enc []byte, segs int) error {
	if err := checkLineDst("zca", dst, segs); err != nil {
		return err
	}
	dst = dst[:LineSize]
	if segs == MaxSegments {
		if len(enc) < LineSize {
			return fmt.Errorf("zca: raw stream holds %d bytes, need %d", len(enc), LineSize)
		}
		copy(dst, enc)
		if got := c.CompressedSizeSegments(dst); got != MaxSegments {
			return fmt.Errorf("zca: raw-stored line compresses to %d segments, not %d", got, MaxSegments)
		}
		return nil
	}
	if segs != 1 {
		return fmt.Errorf("zca: no encoding occupies %d segments", segs)
	}
	if len(enc) < SegmentSize {
		return fmt.Errorf("zca: stream holds %d bytes, need %d", len(enc), SegmentSize)
	}
	consumed := 1
	switch enc[0] {
	case zcaZero:
		for i := range dst {
			dst[i] = 0
		}
	case zcaValue:
		v := binary.LittleEndian.Uint32(enc[1:5])
		if v == 0 {
			return fmt.Errorf("zca: repeated-value encoding of zero (canonical form is the zero header)")
		}
		for i := 0; i < LineSize; i += 4 {
			binary.LittleEndian.PutUint32(dst[i:], v)
		}
		consumed = 5
	default:
		return fmt.Errorf("zca: invalid header byte %#02x", enc[0])
	}
	return checkZeroPadding("zca", enc, consumed, 1)
}

// DecompressionCycles: fanning a register out over the line is free
// relative to the L2 pipeline — one cycle.
func (ZCA) DecompressionCycles() float64 { return 1 }
