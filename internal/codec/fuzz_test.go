package codec

import (
	"bytes"
	"testing"
)

// fuzzRoundTrip is the shared property harness: any 64-byte line must
// encode with a size the estimator agrees on, decode back to itself,
// and fail to decode at a wrong segment count or truncated length.
func fuzzRoundTrip(f *testing.F, c Codec) {
	f.Add(make([]byte, LineSize))
	f.Add(bytes.Repeat([]byte{0xFF}, LineSize))
	f.Add(bytes.Repeat([]byte{0xEF, 0xBE, 0xAD, 0xDE}, LineSize/4))
	f.Add(bytes.Repeat([]byte{0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01}, LineSize/8))
	ramp := make([]byte, LineSize)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	f.Add(ramp)

	f.Fuzz(func(t *testing.T, line []byte) {
		if len(line) != LineSize {
			t.Skip()
		}
		enc, segs := c.AppendEncode(nil, line)
		if segs < 1 || segs > MaxSegments {
			t.Fatalf("segment count %d out of range [1, %d]", segs, MaxSegments)
		}
		if want := c.CompressedSizeSegments(line); segs != want {
			t.Fatalf("AppendEncode segs %d != CompressedSizeSegments %d", segs, want)
		}
		if len(enc) != segs*SegmentSize {
			t.Fatalf("encoding is %d bytes for %d segments", len(enc), segs)
		}
		dec := make([]byte, LineSize)
		if err := c.DecodeInto(dec, enc, segs); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", line, dec)
		}
		if segs+1 < MaxSegments {
			padded := append(append([]byte(nil), enc...), make([]byte, SegmentSize)...)
			if err := c.DecodeInto(dec, padded, segs+1); err == nil {
				t.Fatalf("wrong segs %d accepted for a %d-segment stream", segs+1, segs)
			}
		}
		if err := c.DecodeInto(dec, enc[:len(enc)-1], segs); err == nil {
			t.Fatal("truncated stream accepted")
		}
	})
}

func FuzzBDIRoundTrip(f *testing.F)   { fuzzRoundTrip(f, BDI{}) }
func FuzzZCARoundTrip(f *testing.F)   { fuzzRoundTrip(f, ZCA{}) }
func FuzzCPackRoundTrip(f *testing.F) { fuzzRoundTrip(f, CPack{}) }

// FuzzCodecDecode feeds arbitrary streams to every registered codec's
// strict decoder: it may reject them, but must never panic, and any
// stream it accepts must decode to a line whose recomputed size matches
// the claimed segment count.
func FuzzCodecDecode(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add(make([]byte, SegmentSize), 1)
	f.Add(make([]byte, 2*SegmentSize), 2)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 1)
	f.Add(bytes.Repeat([]byte{0xA5}, LineSize), MaxSegments)

	f.Fuzz(func(t *testing.T, enc []byte, segs int) {
		dst := make([]byte, LineSize)
		for _, c := range All() {
			if err := c.DecodeInto(dst, enc, segs); err != nil {
				continue
			}
			if want := c.CompressedSizeSegments(dst); want != segs {
				t.Fatalf("%s accepted segs %d but decoded line occupies %d segments", c.Name(), segs, want)
			}
			if _, got := c.AppendEncode(nil, dst); got != segs {
				t.Fatalf("%s accepted segs %d but re-encoding yields %d", c.Name(), segs, got)
			}
		}
	})
}
