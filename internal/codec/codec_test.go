package codec

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"cmpsim/internal/timing"
)

// lineOfWords builds a 64-byte line from 32-bit words, repeated
// cyclically.
func lineOfWords(words ...uint32) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < LineSize/4; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%len(words)])
	}
	return line
}

// lineOfQwords builds a 64-byte line from 64-bit values, repeated
// cyclically.
func lineOfQwords(qs ...uint64) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < LineSize/8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], qs[i%len(qs)])
	}
	return line
}

// testLines returns a corpus spanning every codec's pattern classes
// plus seeded random lines and mutations.
func testLines() [][]byte {
	rng := rand.New(rand.NewSource(20260808))
	lines := [][]byte{
		make([]byte, LineSize),                         // all zero
		lineOfWords(0xDEADBEEF),                        // repeated 32-bit value
		lineOfQwords(0x0102030405060708),               // repeated 64-bit value
		lineOfWords(1, 2, 3, 7),                        // 4-bit immediates
		lineOfWords(0x50, 0xFFFFFFA0, 0x31, 0x7F),     // 8-bit immediates / zzzx
		lineOfWords(0x1234, 0xFFFF8000, 0x7FFF),       // 16-bit immediates
		lineOfWords(0x00010000, 0x7FFF0000),           // zero-padded halfwords
		lineOfWords(0x41414141, 0x42424242),           // repeated bytes
		lineOfQwords(0x00007FBC00001000, 0x00007FBC00001008,
			0x00007FBC00001010, 0x00007FBC00001018), // pointer array: base + 1-byte deltas
		lineOfWords(0x08001000, 0x08001004, 0x08001008, 0x0800100C), // 4-byte base + deltas
		lineOfWords(0xCAFE0001, 0xCAFE0002, 3, 0xCAFE0003),          // shared upper halfword + immediates
		lineOfWords(0xAABBCC01, 0xAABBCC02, 0xAABBCC03),             // shared upper 24 bits
	}
	// Half-zero line.
	half := make([]byte, LineSize)
	rng.Read(half[:LineSize/2])
	lines = append(lines, half)
	// Full-entropy lines and byte-level mutations of the above.
	for i := 0; i < 8; i++ {
		l := make([]byte, LineSize)
		rng.Read(l)
		lines = append(lines, l)
	}
	base := len(lines)
	for i := 0; i < 100; i++ {
		l := append([]byte(nil), lines[rng.Intn(base)]...)
		for k := rng.Intn(4) + 1; k > 0; k-- {
			l[rng.Intn(LineSize)] = byte(rng.Intn(256))
		}
		lines = append(lines, l)
	}
	return lines
}

func TestRegistry(t *testing.T) {
	want := []string{"fpc", "bdi", "zca", "cpack"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if Default().Name() != DefaultName {
		t.Fatalf("Default() = %q, want %q", Default().Name(), DefaultName)
	}
	c, err := ByName("")
	if err != nil || c.Name() != DefaultName {
		t.Fatalf("ByName(\"\") = %v, %v; want the default codec", c, err)
	}
	if _, err := ByName("huffman"); err == nil {
		t.Fatal("ByName on an unknown codec did not fail")
	}
	if Canonical("") != DefaultName || Canonical("bdi") != "bdi" {
		t.Fatal("Canonical normalization wrong")
	}
	if len(All()) != len(want) {
		t.Fatalf("All() has %d codecs, want %d", len(All()), len(want))
	}
}

// TestRoundTrip drives the shared corpus through every codec:
// AppendEncode must agree with CompressedSizeSegments, stay within the
// segment bounds, pad to whole segments, and invert through DecodeInto.
func TestRoundTrip(t *testing.T) {
	for _, c := range All() {
		t.Run(c.Name(), func(t *testing.T) {
			dec := make([]byte, LineSize)
			for i, line := range testLines() {
				enc, segs := c.AppendEncode(nil, line)
				if segs < 1 || segs > MaxSegments {
					t.Fatalf("line %d: segment count %d out of range", i, segs)
				}
				if want := c.CompressedSizeSegments(line); segs != want {
					t.Fatalf("line %d: AppendEncode segs %d != CompressedSizeSegments %d", i, segs, want)
				}
				if want := segs * SegmentSize; len(enc) != want {
					t.Fatalf("line %d: encoding is %d bytes, want %d (%d segments)", i, len(enc), want, segs)
				}
				if err := c.DecodeInto(dec, enc, segs); err != nil {
					t.Fatalf("line %d: decode own encoding: %v", i, err)
				}
				if !bytes.Equal(dec, line) {
					t.Fatalf("line %d round trip mismatch:\n in  %x\n out %x", i, line, dec)
				}
			}
		})
	}
}

// TestDecodeStrictness asserts every codec rejects wrong-segs,
// truncated and padding-tampered variants of its own valid streams.
func TestDecodeStrictness(t *testing.T) {
	for _, c := range All() {
		t.Run(c.Name(), func(t *testing.T) {
			dst := make([]byte, LineSize)
			for i, line := range testLines() {
				enc, segs := c.AppendEncode(nil, line)
				if err := c.DecodeInto(dst, enc[:len(enc)-1], segs); err == nil {
					t.Fatalf("line %d: truncated stream accepted", i)
				}
				if segs+1 < MaxSegments {
					padded := append(append([]byte(nil), enc...), make([]byte, SegmentSize)...)
					if err := c.DecodeInto(dst, padded, segs+1); err == nil {
						t.Fatalf("line %d: wrong segs %d accepted for a %d-segment stream", i, segs+1, segs)
					}
				}
				if segs < MaxSegments && enc[len(enc)-1] == 0 {
					tampered := append([]byte(nil), enc...)
					tampered[len(tampered)-1] = 0x80
					if err := c.DecodeInto(dst, tampered, segs); err == nil {
						t.Fatalf("line %d: non-zero padding accepted", i)
					}
				}
			}
			// A compressible payload must not be accepted as raw storage.
			if err := c.DecodeInto(dst, make([]byte, LineSize), MaxSegments); err == nil {
				t.Fatal("all-zero line accepted as raw storage")
			}
			if err := c.DecodeInto(make([]byte, 8), make([]byte, LineSize), 1); err == nil {
				t.Fatal("short destination accepted")
			}
			if err := c.DecodeInto(dst, make([]byte, LineSize), 0); err == nil {
				t.Fatal("segs=0 accepted")
			}
			if err := c.DecodeInto(dst, make([]byte, LineSize), MaxSegments+1); err == nil {
				t.Fatalf("segs=%d accepted", MaxSegments+1)
			}
		})
	}
}

// TestCodecAllocFree is the allocation gate mirroring sim's
// TestStepAllocFree: with reused buffers, size/encode/decode must not
// allocate for any registered codec.
func TestCodecAllocFree(t *testing.T) {
	lines := testLines()
	for _, c := range All() {
		t.Run(c.Name(), func(t *testing.T) {
			buf := make([]byte, 0, LineSize)
			dec := make([]byte, LineSize)
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				line := lines[i%len(lines)]
				i++
				if c.CompressedSizeSegments(line) < 1 {
					t.Fatal("impossible size")
				}
				var segs int
				buf, segs = c.AppendEncode(buf[:0], line)
				if err := c.DecodeInto(dec, buf, segs); err != nil {
					t.Fatalf("decode: %v", err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%s hot path allocated %.1f times per op, want 0", c.Name(), allocs)
			}
		})
	}
}

// TestDecompressionCyclesExact asserts every codec's default latency is
// representable exactly in the integer tick domain, as the Codec
// contract requires.
func TestDecompressionCyclesExact(t *testing.T) {
	for _, c := range All() {
		cy := c.DecompressionCycles()
		if cy < 0 {
			t.Errorf("%s: negative DecompressionCycles %g", c.Name(), cy)
		}
		if _, ok := timing.ExactCycles(cy); !ok {
			t.Errorf("%s: DecompressionCycles %g does not map exactly onto the tick domain", c.Name(), cy)
		}
	}
}

// TestBDIKnownSizes pins the per-mode encoded sizes so the geometry in
// encodedBytes cannot drift silently.
func TestBDIKnownSizes(t *testing.T) {
	cases := []struct {
		name string
		line []byte
		segs int
	}{
		{"zero", make([]byte, LineSize), 1},
		{"rep8", lineOfQwords(0x1122334455667788), 2}, // header + 8-byte value = 9 bytes
		{"b8d1", lineOfQwords(0x00007FBC00001000, 0x00007FBC00001008), 3},
		{"b4d1", lineOfWords(0x08001000, 0x08001004, 0x08001010, 0x08001044), 3},
		{"b8d2", lineOfQwords(0x4000000000001000, 0x4000000000002000), 4},
		{"b8d4", lineOfQwords(0x4000000000001000, 0x4000000001002000), 6},
		{"raw", nil, MaxSegments},
	}
	raw := make([]byte, LineSize)
	rand.New(rand.NewSource(3)).Read(raw)
	cases[len(cases)-1].line = raw
	var c BDI
	for _, tc := range cases {
		if got := c.CompressedSizeSegments(tc.line); got != tc.segs {
			t.Errorf("%s: %d segments, want %d", tc.name, got, tc.segs)
		}
	}
}

// TestZCAKnownSizes pins the two compressible ZCA patterns.
func TestZCAKnownSizes(t *testing.T) {
	var c ZCA
	if got := c.CompressedSizeSegments(make([]byte, LineSize)); got != 1 {
		t.Errorf("zero line: %d segments, want 1", got)
	}
	if got := c.CompressedSizeSegments(lineOfWords(0xDEADBEEF)); got != 1 {
		t.Errorf("repeated value: %d segments, want 1", got)
	}
	if got := c.CompressedSizeSegments(lineOfWords(1, 2, 3, 7)); got != MaxSegments {
		t.Errorf("se4 line: %d segments, want %d (zca has no narrow-int pattern)", got, MaxSegments)
	}
	// A zero value encoded with the repeated-value header is
	// non-canonical and must be rejected.
	enc := make([]byte, SegmentSize)
	enc[0] = zcaValue
	dst := make([]byte, LineSize)
	if err := c.DecodeInto(dst, enc, 1); err == nil {
		t.Error("zca accepted a repeated-value encoding of zero")
	}
}

// TestCPackKnownSizes pins representative C-Pack encodings: all-zero is
// 16×2 bits, a repeated word is one literal plus 15 full matches, and
// dictionary indices stay canonical (lowest slot).
func TestCPackKnownSizes(t *testing.T) {
	var c CPack
	if got := c.compressedBits(make([]byte, LineSize)); got != 32 {
		t.Errorf("zero line: %d bits, want 32", got)
	}
	// 1 literal (34 bits) + 15 full matches (6 bits each) = 124 bits,
	// which rounds to 16 bytes = 2 segments.
	if got := c.compressedBits(lineOfWords(0xDEADBEEF)); got != 34+15*6 {
		t.Errorf("repeated word: %d bits, want %d", got, 34+15*6)
	}
	if got := c.CompressedSizeSegments(lineOfWords(0xDEADBEEF)); got != 2 {
		t.Errorf("repeated word: %d segments, want 2", got)
	}
	// Low-byte-only words use zzzx and never touch the dictionary.
	if got := c.compressedBits(lineOfWords(0x50, 0x31)); got != 16*12 {
		t.Errorf("low-byte words: %d bits, want %d", got, 16*12)
	}
}
