package codec

import "errors"

// bitWriter and bitReader are the MSB-first bitstream helpers C-Pack
// uses, mirroring the unexported pair in internal/fpc: big-endian
// within each byte, append-based so reused buffers write without
// allocating.

type bitWriter struct {
	buf  []byte
	nbit uint // bits written by this writer (it starts on a byte boundary)
}

// write appends the low n bits of v, most significant first.
func (bw *bitWriter) write(v uint32, n int) {
	for n > 0 {
		if bw.nbit%8 == 0 {
			bw.buf = append(bw.buf, 0)
		}
		free := 8 - int(bw.nbit%8)
		take := n
		if take > free {
			take = free
		}
		chunk := (v >> uint(n-take)) & (1<<uint(take) - 1)
		bw.buf[len(bw.buf)-1] |= byte(chunk << uint(free-take))
		bw.nbit += uint(take)
		n -= take
	}
}

// bitReader consumes a bitstream produced by bitWriter.
type bitReader struct {
	buf  []byte
	nbit uint
}

var errShortStream = errors.New("codec: truncated bitstream")

func (br *bitReader) read(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		idx := br.nbit / 8
		if int(idx) >= len(br.buf) {
			return 0, errShortStream
		}
		bit := (br.buf[idx] >> (7 - br.nbit%8)) & 1
		v = v<<1 | uint32(bit)
		br.nbit++
	}
	return v, nil
}
