// Package codec defines the cache-line compression interface the
// simulator prices timing against, and a registry of the classic
// line-compression schemes from the literature:
//
//	fpc    Frequent Pattern Compression (Alameldeen & Wood; the paper's
//	       codec and the simulator default)
//	bdi    Base-Delta-Immediate (Pekhimenko et al., PACT 2012)
//	zca    zero-content / frequent-value lines (Dusser et al.; Zhang et
//	       al.): whole-line zero and single-repeated-value detection
//	cpack  C-Pack (Chen et al., TVLSI 2010): pattern codes plus a small
//	       FIFO dictionary of recent words
//
// Every codec shares the segment contract of internal/fpc: a 64-byte
// line compresses to an integral number of 8-byte segments in
// [1, MaxSegments], and a line that does not beat MaxSegments is stored
// raw (segs == MaxSegments means the payload is the uncompressed line).
// Encode and decode hot paths are allocation-free with reused buffers,
// and DecodeInto is strict: it rejects streams that are not the
// codec's canonical encoding of the decoded line at the claimed
// segment count (wrong-segs or truncated streams fail instead of
// "successfully" decoding a line that was never encoded).
package codec

import (
	"fmt"

	"cmpsim/internal/fpc"
)

// LineSize is the cache-line size in bytes every codec compresses.
const LineSize = fpc.LineSize

// SegmentSize is the compression granularity in bytes.
const SegmentSize = fpc.SegmentSize

// MaxSegments is the size of an uncompressed line in segments.
const MaxSegments = fpc.MaxSegments

// Codec is one cache-line compression scheme. Implementations must be
// stateless (safe for concurrent use) and allocation-free on the
// CompressedSizeSegments, AppendEncode and DecodeInto hot paths when
// handed reused buffers of sufficient capacity.
type Codec interface {
	// Name is the registry key ("fpc", "bdi", ...).
	Name() string

	// CompressedSizeSegments returns the number of 8-byte segments the
	// 64-byte line occupies after compression, in [1, MaxSegments],
	// without materializing the encoding.
	CompressedSizeSegments(line []byte) int

	// AppendEncode appends the encoding of the 64-byte line to dst and
	// returns the extended slice plus the occupied size in segments
	// (identical to CompressedSizeSegments). The payload is padded to
	// whole segments; an incompressible line is appended raw.
	AppendEncode(dst, line []byte) ([]byte, int)

	// DecodeInto decompresses a stream produced by AppendEncode into
	// dst (>= LineSize bytes). It is strict: segs must agree with the
	// recomputed compressed size of the decoded line, the stream must
	// spend exactly its canonical bit/byte budget, and padding up to
	// the claimed segment boundary must be zero.
	DecodeInto(dst, enc []byte, segs int) error

	// DecompressionCycles is the codec's default decompression latency
	// in core cycles (sim.Config.DecompressionCycles when the codec is
	// selected without an explicit override). The value must map
	// exactly onto the integer tick domain (see timing.ExactCycles).
	DecompressionCycles() float64
}

// registry holds the codecs in registration order, so Names and All are
// deterministic across processes (the bakeoff CSV row order and the
// experiment sweep order depend on it).
var (
	registry []Codec
	byName   = make(map[string]Codec)
)

// register adds a codec at package init; duplicate names are a bug.
func register(c Codec) {
	if _, dup := byName[c.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate registration of %q", c.Name()))
	}
	registry = append(registry, c)
	byName[c.Name()] = c
}

func init() {
	register(FPC{})
	register(BDI{})
	register(ZCA{})
	register(CPack{})
}

// DefaultName is the simulator's default codec (the paper's).
const DefaultName = "fpc"

// Default returns the default codec (FPC).
func Default() Codec { return byName[DefaultName] }

// Names lists the registered codec names in registration order.
func Names() []string {
	names := make([]string, len(registry))
	for i, c := range registry {
		names[i] = c.Name()
	}
	return names
}

// All returns the registered codecs in registration order.
func All() []Codec {
	out := make([]Codec, len(registry))
	copy(out, registry)
	return out
}

// ByName resolves a codec by registry name. The empty string means the
// default codec, so config fields can leave "codec" unset.
func ByName(name string) (Codec, error) {
	if name == "" {
		return Default(), nil
	}
	c, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (have %v)", name, Names())
	}
	return c, nil
}

// MustByName is ByName for known-good names.
func MustByName(name string) Codec {
	c, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Canonical normalizes a codec name for cache keys and labels: the
// empty string becomes the default codec's name; anything else is
// returned unchanged (validation is ByName's job).
func Canonical(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}

// segsForBytes converts an encoded byte length to the segment count,
// clamped to the raw-storage convention.
func segsForBytes(n int) int {
	segs := (n + SegmentSize - 1) / SegmentSize
	if segs < 1 {
		segs = 1
	}
	if segs >= MaxSegments {
		return MaxSegments
	}
	return segs
}

// segsForBits converts an encoded bit length to the segment count,
// clamped to the raw-storage convention.
func segsForBits(bits int) int {
	return segsForBytes((bits + 7) / 8)
}

// checkLineDst validates the decode destination and claimed segment
// count shared by every codec's DecodeInto.
func checkLineDst(name string, dst []byte, segs int) error {
	if len(dst) < LineSize {
		return fmt.Errorf("%s: destination holds %d bytes, need %d", name, len(dst), LineSize)
	}
	if segs < 1 || segs > MaxSegments {
		return fmt.Errorf("%s: invalid segment count %d", name, segs)
	}
	return nil
}

// checkZeroPadding verifies enc[from:segs*SegmentSize] is all zero —
// the strictness guarantee that trailing padding cannot smuggle extra
// codewords. enc must hold at least segs*SegmentSize bytes.
func checkZeroPadding(name string, enc []byte, from, segs int) error {
	for i := from; i < segs*SegmentSize; i++ {
		if enc[i] != 0 {
			return fmt.Errorf("%s: non-zero padding byte %#02x at offset %d", name, enc[i], i)
		}
	}
	return nil
}
