package codec

import (
	"encoding/binary"
	"fmt"
)

// CPack implements a small C-Pack variant (Chen, Wong & Pai, TVLSI
// 2010): each 32-bit word is encoded by the cheapest of six pattern
// codes, four of which reference a 16-entry FIFO dictionary of
// recently seen words. The dictionary starts empty per line and is
// rebuilt identically by the decoder, so lines stay independently
// decodable.
//
//	code  bits                      meaning                          push
//	zzzz  00                  (2)   zero word                        -
//	xxxx  01 + word           (34)  literal, no pattern matched      yes
//	mmmm  10 + idx            (6)   full 32-bit dictionary match     -
//	mmxx  1100 + idx + low16  (24)  upper halfword matches entry     yes
//	zzzx  1101 + low8         (12)  word with only the low byte set  yes*
//	mmmx  1110 + idx + low8   (16)  upper 24 bits match entry        yes
//
// (*zzzx does not push in this variant: narrow immediates recur via
// zzzx itself at the same cost as mmmm+2, keeping the dictionary for
// wide words.) The encoder always picks the cheapest applicable code,
// breaking dictionary-index ties toward the lowest slot; the strict
// decoder re-derives that choice for every word and rejects any
// stream that is not the canonical encoding.
type CPack struct{}

// cpDictSize is the FIFO dictionary capacity in words.
const cpDictSize = 16

// cpCode identifies one C-Pack word encoding.
type cpCode uint8

const (
	cpZZZZ cpCode = iota
	cpXXXX
	cpMMMM
	cpMMXX
	cpZZZX
	cpMMMX
)

// cpBits is the total encoded size of each code (prefix + payload).
var cpBits = [...]int{cpZZZZ: 2, cpXXXX: 34, cpMMMM: 6, cpMMXX: 24, cpZZZX: 12, cpMMMX: 16}

// cpDict is the FIFO dictionary. Slot indices are stable (the FIFO
// overwrites in ring order rather than shifting), so encoder and
// decoder agree on every idx payload.
type cpDict struct {
	words [cpDictSize]uint32
	n     int // valid entries
	head  int // next slot to overwrite
}

func (d *cpDict) push(w uint32) {
	d.words[d.head] = w
	d.head = (d.head + 1) % cpDictSize
	if d.n < cpDictSize {
		d.n++
	}
}

// choose returns the canonical (cheapest, lowest-index) code for w
// against the current dictionary.
func (d *cpDict) choose(w uint32) (cpCode, int) {
	if w == 0 {
		return cpZZZZ, 0
	}
	for i := 0; i < d.n; i++ {
		if d.words[i] == w {
			return cpMMMM, i
		}
	}
	if w&0xFFFFFF00 == 0 {
		return cpZZZX, 0
	}
	for i := 0; i < d.n; i++ {
		if d.words[i]>>8 == w>>8 {
			return cpMMMX, i
		}
	}
	for i := 0; i < d.n; i++ {
		if d.words[i]>>16 == w>>16 {
			return cpMMXX, i
		}
	}
	return cpXXXX, 0
}

// pushes reports whether code c inserts its word into the dictionary.
func (c cpCode) pushes() bool {
	return c == cpXXXX || c == cpMMXX || c == cpMMMX
}

// compressedBits is the size-only dry run: the exact encoded bit count
// for line, without materializing the stream.
func (CPack) compressedBits(line []byte) int {
	var d cpDict
	bits := 0
	for i := 0; i < LineSize; i += 4 {
		w := binary.LittleEndian.Uint32(line[i:])
		c, _ := d.choose(w)
		bits += cpBits[c]
		if c.pushes() {
			d.push(w)
		}
	}
	return bits
}

// Name returns the registry key.
func (CPack) Name() string { return "cpack" }

// CompressedSizeSegments returns the C-Pack size of the line in
// segments.
func (c CPack) CompressedSizeSegments(line []byte) int {
	mustLine(line)
	return segsForBits(c.compressedBits(line))
}

// AppendEncode appends the canonical C-Pack bitstream of line to dst.
func (c CPack) AppendEncode(dst, line []byte) ([]byte, int) {
	mustLine(line)
	segs := segsForBits(c.compressedBits(line))
	if segs == MaxSegments {
		return append(dst, line...), MaxSegments
	}
	start := len(dst)
	bw := bitWriter{buf: dst}
	var d cpDict
	for i := 0; i < LineSize; i += 4 {
		w := binary.LittleEndian.Uint32(line[i:])
		code, idx := d.choose(w)
		switch code {
		case cpZZZZ:
			bw.write(0b00, 2)
		case cpXXXX:
			bw.write(0b01, 2)
			bw.write(w, 32)
		case cpMMMM:
			bw.write(0b10, 2)
			bw.write(uint32(idx), 4)
		case cpMMXX:
			bw.write(0b1100, 4)
			bw.write(uint32(idx), 4)
			bw.write(w&0xFFFF, 16)
		case cpZZZX:
			bw.write(0b1101, 4)
			bw.write(w&0xFF, 8)
		case cpMMMX:
			bw.write(0b1110, 4)
			bw.write(uint32(idx), 4)
			bw.write(w&0xFF, 8)
		}
		if code.pushes() {
			d.push(w)
		}
	}
	dst = bw.buf
	for len(dst)-start < segs*SegmentSize {
		dst = append(dst, 0)
	}
	return dst, segs
}

// DecodeInto strictly decodes a C-Pack stream. Because the decoder
// rebuilds the same dictionary, it can re-derive the canonical code
// for every reconstructed word and reject any stream that used a
// different (non-canonical) one; it then requires the total bit count
// to land on exactly the claimed segment count with zero padding.
func (c CPack) DecodeInto(dst, enc []byte, segs int) error {
	if err := checkLineDst("cpack", dst, segs); err != nil {
		return err
	}
	dst = dst[:LineSize]
	if segs == MaxSegments {
		if len(enc) < LineSize {
			return fmt.Errorf("cpack: raw stream holds %d bytes, need %d", len(enc), LineSize)
		}
		copy(dst, enc)
		if got := c.CompressedSizeSegments(dst); got != MaxSegments {
			return fmt.Errorf("cpack: raw-stored line compresses to %d segments, not %d", got, MaxSegments)
		}
		return nil
	}
	if len(enc) < segs*SegmentSize {
		return fmt.Errorf("cpack: stream holds %d bytes, claimed %d segments need %d",
			len(enc), segs, segs*SegmentSize)
	}
	br := bitReader{buf: enc[:segs*SegmentSize]}
	var d cpDict
	for i := 0; i < LineSize; i += 4 {
		code, idx, w, err := cpReadWord(&br, &d)
		if err != nil {
			return err
		}
		wantCode, wantIdx := d.choose(w)
		if wantCode != code || wantIdx != idx {
			return fmt.Errorf("cpack: word %d uses non-canonical code %d/idx %d (canonical %d/%d)",
				i/4, code, idx, wantCode, wantIdx)
		}
		if code.pushes() {
			d.push(w)
		}
		binary.LittleEndian.PutUint32(dst[i:], w)
	}
	bits := int(br.nbit)
	if want := segsForBits(bits); want != segs {
		return fmt.Errorf("cpack: segment count %d disagrees with the line's compressed size %d", segs, want)
	}
	// Remaining bits of the partial byte, then whole padding bytes,
	// must be zero up to the claimed segment boundary.
	from := bits / 8
	if rem := uint(bits % 8); rem != 0 {
		if enc[from]&(1<<(8-rem)-1) != 0 {
			return fmt.Errorf("cpack: non-zero padding bits in byte %d", from)
		}
		from++
	}
	return checkZeroPadding("cpack", enc, from, segs)
}

// cpReadWord reads one codeword and reconstructs its 32-bit word
// against the current dictionary state.
func cpReadWord(br *bitReader, d *cpDict) (cpCode, int, uint32, error) {
	p, err := br.read(2)
	if err != nil {
		return 0, 0, 0, err
	}
	switch p {
	case 0b00:
		return cpZZZZ, 0, 0, nil
	case 0b01:
		w, err := br.read(32)
		return cpXXXX, 0, w, err
	case 0b10:
		idx, err := br.read(4)
		if err != nil {
			return 0, 0, 0, err
		}
		if int(idx) >= d.n {
			return 0, 0, 0, fmt.Errorf("cpack: dictionary index %d out of range (%d entries)", idx, d.n)
		}
		return cpMMMM, int(idx), d.words[idx], nil
	}
	q, err := br.read(2)
	if err != nil {
		return 0, 0, 0, err
	}
	switch q {
	case 0b00: // mmxx
		idx, err := br.read(4)
		if err != nil {
			return 0, 0, 0, err
		}
		if int(idx) >= d.n {
			return 0, 0, 0, fmt.Errorf("cpack: dictionary index %d out of range (%d entries)", idx, d.n)
		}
		low, err := br.read(16)
		return cpMMXX, int(idx), d.words[idx]&0xFFFF0000 | low, err
	case 0b01: // zzzx
		low, err := br.read(8)
		return cpZZZX, 0, low, err
	case 0b10: // mmmx
		idx, err := br.read(4)
		if err != nil {
			return 0, 0, 0, err
		}
		if int(idx) >= d.n {
			return 0, 0, 0, fmt.Errorf("cpack: dictionary index %d out of range (%d entries)", idx, d.n)
		}
		low, err := br.read(8)
		return cpMMMX, int(idx), d.words[idx]&^0xFF | low, err
	default:
		return 0, 0, 0, fmt.Errorf("cpack: invalid prefix 1111")
	}
}

// DecompressionCycles: the serial dictionary pipeline is the slow end
// of the zoo — 8 cycles (Chen et al. report ~2 words/cycle plus
// pipeline fill for a 16-word line).
func (CPack) DecompressionCycles() float64 { return 8 }
