package codec

import "cmpsim/internal/fpc"

// FPC adapts internal/fpc (the paper's Frequent Pattern Compression) to
// the Codec interface. It is the registry default: selecting it
// reproduces the paper's (ratio, latency) point bit-exactly.
type FPC struct{}

// Name returns the registry key.
func (FPC) Name() string { return "fpc" }

// CompressedSizeSegments returns the FPC size of the line in segments.
func (FPC) CompressedSizeSegments(line []byte) int { return fpc.CompressedSizeSegments(line) }

// AppendEncode appends the FPC bitstream (see fpc.AppendEncode).
func (FPC) AppendEncode(dst, line []byte) ([]byte, int) { return fpc.AppendEncode(dst, line) }

// DecodeInto strictly decodes an FPC stream (see fpc.DecodeInto).
func (FPC) DecodeInto(dst, enc []byte, segs int) error { return fpc.DecodeInto(dst, enc, segs) }

// DecompressionCycles is the paper's Table 1 FPC pipeline: 5 cycles.
func (FPC) DecompressionCycles() float64 { return 5 }
