package codec

import "testing"

// benchCorpus mixes the pattern classes so throughput numbers reflect a
// realistic blend rather than one branch of the encoder.
func benchCorpus() [][]byte {
	return testLines()
}

// BenchmarkCodecCompress measures size+encode throughput per codec
// (what compbench reports as the compress column).
func BenchmarkCodecCompress(b *testing.B) {
	corpus := benchCorpus()
	for _, c := range All() {
		b.Run(c.Name(), func(b *testing.B) {
			buf := make([]byte, 0, LineSize)
			b.SetBytes(LineSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = c.AppendEncode(buf[:0], corpus[i%len(corpus)])
			}
		})
	}
}

// BenchmarkCodecDecompress measures strict-decode throughput per codec.
func BenchmarkCodecDecompress(b *testing.B) {
	corpus := benchCorpus()
	for _, c := range All() {
		b.Run(c.Name(), func(b *testing.B) {
			encs := make([][]byte, len(corpus))
			segs := make([]int, len(corpus))
			for i, line := range corpus {
				encs[i], segs[i] = c.AppendEncode(nil, line)
			}
			dst := make([]byte, LineSize)
			b.SetBytes(LineSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % len(corpus)
				if err := c.DecodeInto(dst, encs[k], segs[k]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
