package codec

import (
	"encoding/binary"
	"fmt"
)

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.,
// PACT 2012). A line is stored as one base value plus per-element
// deltas; each element is either a narrow delta from the base or a
// narrow immediate (a delta from the implicit second base, zero), with
// a per-element mask bit selecting which. The encoder tries every
// (base width, delta width) pair plus the zero-line and repeated-value
// special cases and picks the smallest.
//
// Encoded layout, byte-aligned:
//
//	header (1 byte: the bdiMode)
//	mask   (elements/8 bytes; delta modes only; bit i set = element i
//	       is a delta from the base, clear = immediate from zero)
//	base   (base-width bytes; delta modes only; the first element whose
//	       immediate does not fit, or zero if all fit)
//	deltas (elements × delta-width bytes, two's complement)
//
// followed by zero padding to a whole number of segments. A line no
// mode compresses below MaxSegments segments is stored raw.
type BDI struct{}

// bdiMode identifies one encoding; the value is the header byte.
type bdiMode uint8

const (
	bdiZero  bdiMode = iota // all-zero line: header only
	bdiRep8                 // line is one repeated 8-byte value
	bdiB8D1                 // 8-byte elements, 1-byte deltas
	bdiB4D1                 // 4-byte elements, 1-byte deltas
	bdiB8D2                 // 8-byte elements, 2-byte deltas
	bdiB2D1                 // 2-byte elements, 1-byte deltas
	bdiB4D2                 // 4-byte elements, 2-byte deltas
	bdiB8D4                 // 8-byte elements, 4-byte deltas
	bdiModes                // count; anything >= this is invalid
)

// bdiGeom returns (element width, delta width) for a delta mode.
func (m bdiMode) geom() (base, delta int) {
	switch m {
	case bdiB8D1:
		return 8, 1
	case bdiB4D1:
		return 4, 1
	case bdiB8D2:
		return 8, 2
	case bdiB2D1:
		return 2, 1
	case bdiB4D2:
		return 4, 2
	case bdiB8D4:
		return 8, 4
	default:
		panic("codec: bdiGeom on non-delta mode")
	}
}

// encodedBytes is the exact payload size of a delta mode (header + mask
// + base + deltas) before segment padding.
func (m bdiMode) encodedBytes() int {
	base, delta := m.geom()
	elems := LineSize / base
	return 1 + elems/8 + base + elems*delta
}

// deltaModes lists the delta encodings cheapest-first; ties in byte
// size resolve to the earlier-listed mode, which is the canonical
// choice the strict decoder verifies.
var deltaModes = [...]bdiMode{bdiB8D1, bdiB4D1, bdiB8D2, bdiB2D1, bdiB4D2, bdiB8D4}

// fitsSigned reports whether v is representable as a width-byte
// two's-complement integer.
func fitsSigned(v int64, width int) bool {
	lim := int64(1) << (uint(width)*8 - 1)
	return v >= -lim && v < lim
}

// bdiElem reads the little-endian element i of width base from line.
func bdiElem(line []byte, base, i int) uint64 {
	switch base {
	case 8:
		return binary.LittleEndian.Uint64(line[i*8:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(line[i*4:]))
	default:
		return uint64(binary.LittleEndian.Uint16(line[i*2:]))
	}
}

// bdiPlan is the outcome of trying one delta mode on a line.
type bdiPlan struct {
	ok   bool
	base uint64 // first element whose immediate does not fit (0 if all fit)
	mask uint64 // bit i set: element i is a delta from base
}

// tryDelta checks whether every element of line fits mode m and
// returns the canonical plan: the base is the first element that is
// not a narrow immediate, each such element must then be a narrow
// delta from it.
func tryDelta(line []byte, m bdiMode) bdiPlan {
	base, delta := m.geom()
	elems := LineSize / base
	var p bdiPlan
	haveBase := false
	for i := 0; i < elems; i++ {
		e := bdiElem(line, base, i)
		if fitsSigned(signedAt(e, base), delta) {
			continue // immediate from the zero base
		}
		if !haveBase {
			p.base = e
			haveBase = true
		}
		if !fitsSigned(signedDelta(e, p.base, base), delta) {
			return bdiPlan{}
		}
		p.mask |= 1 << uint(i)
	}
	p.ok = true
	return p
}

// signedAt reinterprets the low base bytes of e as a signed value.
func signedAt(e uint64, base int) int64 {
	shift := uint(64 - base*8)
	return int64(e<<shift) >> shift
}

// signedDelta computes e - b within the base width, sign-extended.
func signedDelta(e, b uint64, base int) int64 {
	return signedAt(e-b, base)
}

// isZeroLine reports whether every byte of line is zero.
func isZeroLine(line []byte) bool {
	for _, b := range line {
		if b != 0 {
			return false
		}
	}
	return true
}

// rep8Value reports whether line is one repeated 8-byte value.
func rep8Value(line []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(line)
	for i := 8; i < LineSize; i += 8 {
		if binary.LittleEndian.Uint64(line[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

// plan picks the canonical (cheapest) encoding for line.
func (BDI) plan(line []byte) (bdiMode, bdiPlan, int) {
	if isZeroLine(line) {
		return bdiZero, bdiPlan{ok: true}, 1
	}
	if _, ok := rep8Value(line); ok {
		return bdiRep8, bdiPlan{ok: true}, 1 + 8
	}
	bestMode, bestPlan, bestBytes := bdiMode(0), bdiPlan{}, LineSize
	for _, m := range deltaModes {
		n := m.encodedBytes()
		if n >= bestBytes || segsForBytes(n) >= MaxSegments {
			continue
		}
		if p := tryDelta(line, m); p.ok {
			bestMode, bestPlan, bestBytes = m, p, n
		}
	}
	if !bestPlan.ok {
		return 0, bdiPlan{}, LineSize // raw
	}
	return bestMode, bestPlan, bestBytes
}

// Name returns the registry key.
func (BDI) Name() string { return "bdi" }

// CompressedSizeSegments returns the BDI size of the line in segments.
func (c BDI) CompressedSizeSegments(line []byte) int {
	mustLine(line)
	_, _, n := c.plan(line)
	return segsForBytes(n)
}

// AppendEncode appends the canonical BDI encoding of line to dst.
func (c BDI) AppendEncode(dst, line []byte) ([]byte, int) {
	mustLine(line)
	m, p, n := c.plan(line)
	segs := segsForBytes(n)
	if segs == MaxSegments {
		return append(dst, line...), MaxSegments
	}
	start := len(dst)
	dst = append(dst, byte(m))
	switch m {
	case bdiZero:
		// header only
	case bdiRep8:
		v, _ := rep8Value(line)
		dst = appendLE(dst, v, 8)
	default:
		base, delta := m.geom()
		elems := LineSize / base
		dst = appendLE(dst, p.mask, elems/8)
		dst = appendLE(dst, p.base, base)
		for i := 0; i < elems; i++ {
			e := bdiElem(line, base, i)
			if p.mask&(1<<uint(i)) != 0 {
				dst = appendLE(dst, e-p.base, delta)
			} else {
				dst = appendLE(dst, e, delta)
			}
		}
	}
	for len(dst)-start < segs*SegmentSize {
		dst = append(dst, 0)
	}
	return dst, segs
}

// DecodeInto strictly decodes a BDI stream: the mode must be valid, the
// reconstructed line must re-plan to exactly the claimed mode and
// segment count, and the segment padding must be zero.
func (c BDI) DecodeInto(dst, enc []byte, segs int) error {
	if err := checkLineDst("bdi", dst, segs); err != nil {
		return err
	}
	dst = dst[:LineSize]
	if segs == MaxSegments {
		if len(enc) < LineSize {
			return fmt.Errorf("bdi: raw stream holds %d bytes, need %d", len(enc), LineSize)
		}
		copy(dst, enc)
		if got := c.CompressedSizeSegments(dst); got != MaxSegments {
			return fmt.Errorf("bdi: raw-stored line compresses to %d segments, not %d", got, MaxSegments)
		}
		return nil
	}
	if len(enc) < segs*SegmentSize {
		return fmt.Errorf("bdi: stream holds %d bytes, claimed %d segments need %d",
			len(enc), segs, segs*SegmentSize)
	}
	m := bdiMode(enc[0])
	if m >= bdiModes {
		return fmt.Errorf("bdi: invalid mode byte %#02x", enc[0])
	}
	consumed := 1
	switch m {
	case bdiZero:
		for i := range dst {
			dst[i] = 0
		}
	case bdiRep8:
		v := binary.LittleEndian.Uint64(enc[1:9])
		for i := 0; i < LineSize; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], v)
		}
		consumed += 8
	default:
		base, delta := m.geom()
		elems := LineSize / base
		n := m.encodedBytes()
		if n > segs*SegmentSize {
			return fmt.Errorf("bdi: mode %d needs %d bytes, claimed %d segments hold %d",
				m, n, segs, segs*SegmentSize)
		}
		mask := readLE(enc[1:], elems/8)
		b := readLE(enc[1+elems/8:], base)
		off := 1 + elems/8 + base
		for i := 0; i < elems; i++ {
			d := uint64(signedAt(readLE(enc[off+i*delta:], delta), delta))
			if mask&(1<<uint(i)) != 0 {
				d += b
			}
			putLE(dst[i*base:], d, base)
		}
		consumed = n
	}
	// Strictness: the decoded line must re-plan to exactly this mode
	// (canonical encoding) at exactly the claimed segment count.
	wantMode, _, wantBytes := c.plan(dst)
	if wantBytes != consumed || (segsForBytes(wantBytes) != MaxSegments && wantMode != m) {
		return fmt.Errorf("bdi: stream mode %d (%d bytes) is not the canonical encoding (mode %d, %d bytes)",
			m, consumed, wantMode, wantBytes)
	}
	if want := segsForBytes(wantBytes); want != segs {
		return fmt.Errorf("bdi: segment count %d disagrees with the line's compressed size %d", segs, want)
	}
	return checkZeroPadding("bdi", enc, consumed, segs)
}

// DecompressionCycles: BDI decompression is a masked vector add — one
// cycle in the original proposal.
func (BDI) DecompressionCycles() float64 { return 1 }

// mustLine panics unless line is exactly LineSize bytes (programming
// error, matching fpc's contract).
func mustLine(line []byte) {
	if len(line) != LineSize {
		panic("codec: line must be 64 bytes")
	}
}

// appendLE appends the low width bytes of v, little-endian.
func appendLE(dst []byte, v uint64, width int) []byte {
	for i := 0; i < width; i++ {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// readLE reads width little-endian bytes as a uint64.
func readLE(b []byte, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(b[i]) << (8 * uint(i))
	}
	return v
}

// putLE stores the low width bytes of v, little-endian.
func putLE(b []byte, v uint64, width int) {
	for i := 0; i < width; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}
