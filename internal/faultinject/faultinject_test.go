package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestMatchingAndNth(t *testing.T) {
	in := New(Rule{Kind: Transient, Benchmark: "zeus", Label: "base", Seed: 1, Nth: 2})

	if err := in.Hook("zeus", "base", 0); err != nil {
		t.Fatalf("seed 0 should not match: %v", err)
	}
	if err := in.Hook("mgrid", "base", 1); err != nil {
		t.Fatalf("other benchmark should not match: %v", err)
	}
	if err := in.Hook("zeus", "base", 1); err != nil {
		t.Fatalf("first match must not fire (nth=2): %v", err)
	}
	err := in.Hook("zeus", "base", 1)
	if err == nil {
		t.Fatal("second match must fire")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("fired error %v is not ErrTransient", err)
	}
	var r interface{ Retryable() bool }
	if !errors.As(err, &r) || !r.Retryable() {
		t.Fatalf("transient fault %v is not retryable", err)
	}
	// count defaults to 1: the rule has burnt out.
	if err := in.Hook("zeus", "base", 1); err != nil {
		t.Fatalf("burnt-out rule fired again: %v", err)
	}
	if got := in.Fired(); got[0] != 1 {
		t.Fatalf("fired = %v, want [1]", got)
	}
}

func TestCountAndForever(t *testing.T) {
	in := New(
		Rule{Kind: Transient, Seed: AnySeed, Count: 2},
		Rule{Kind: Transient, Seed: AnySeed, Count: Forever},
	)
	for i := 0; i < 5; i++ {
		if err := in.Hook("zeus", "base", 0); err == nil {
			t.Fatalf("call %d did not fire", i)
		}
	}
	// First rule acts (and burns out) first, then the forever rule.
	if got := in.Fired(); got[0] != 2 || got[1] != 3 {
		t.Fatalf("fired = %v, want [2 3]", got)
	}
}

func TestDeterministicSequence(t *testing.T) {
	mk := func() []error {
		in := New(Rule{Kind: Transient, Benchmark: "zeus", Seed: AnySeed, Nth: 3, Count: 2})
		var errs []error
		for i := 0; i < 6; i++ {
			errs = append(errs, in.Hook("zeus", "base", i))
		}
		return errs
	}
	a, b := mk(), mk()
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("call %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Fires exactly on matches 3 and 4.
	for i, err := range a {
		want := i == 2 || i == 3
		if (err != nil) != want {
			t.Fatalf("call %d fired=%v, want %v", i, err != nil, want)
		}
	}
}

func TestPanicKind(t *testing.T) {
	in := New(Rule{Kind: Panic})
	defer func() {
		if recover() == nil {
			t.Fatal("panic rule did not panic")
		}
	}()
	in.Hook("zeus", "base", 0)
}

func TestStallKind(t *testing.T) {
	in := New(Rule{Kind: Stall, StallFor: 30 * time.Millisecond})
	start := time.Now()
	if err := in.Hook("zeus", "base", 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stall returned after %v", d)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("kind=panic,bench=zeus,label=base,seed=0,nth=2; kind=stall,stall=50ms ;kind=transient,count=-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.rules) != 3 {
		t.Fatalf("rules = %d", len(in.rules))
	}
	p := in.rules[0]
	if p.Kind != Panic || p.Benchmark != "zeus" || p.Label != "base" || p.Seed != 0 || p.Nth != 2 || p.Count != 1 {
		t.Fatalf("panic rule = %+v", p.Rule)
	}
	if s := in.rules[1]; s.Kind != Stall || s.StallFor != 50*time.Millisecond || s.Seed != AnySeed {
		t.Fatalf("stall rule = %+v", s.Rule)
	}
	if tr := in.rules[2]; tr.Kind != Transient || tr.Count != Forever {
		t.Fatalf("transient rule = %+v", tr.Rule)
	}

	for _, bad := range []string{
		"", "kind=meteor", "bench=zeus", "kind=panic,nth=0", "kind=panic,seed=x",
		"kind=stall,stall=-1s", "kind=panic,count=0", "kind=panic,typo",
		"kind=panic,frobnicate=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestDefaultStall(t *testing.T) {
	in := New(Rule{Kind: Stall})
	if got := in.rules[0].StallFor; got != DefaultStall {
		t.Fatalf("default stall = %v", got)
	}
}
