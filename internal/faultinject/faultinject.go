// Package faultinject provides deterministic fault injection for the
// experiment scheduler: seeded rules that fire a panic, a stall, or a
// transient (retryable) error on the Nth matching seed job. It exists
// to prove the pipeline's fault tolerance — panic isolation, watchdog
// deadlines, retry-with-backoff — under `go test -race` and behind the
// test-only -faultinject flag of cmd/experiments.
//
// Determinism: an Injector is deterministic with respect to the
// sequence of Hook invocations it sees. With concurrent workers the
// global job order is not fixed, so rules meant to hit one specific job
// should pin benchmark, label and seed (the per-job identity is
// deterministic) rather than rely on nth counting across jobs.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind selects what a firing rule does to the seed job.
type Kind int

const (
	// Panic panics in the job (exercises recover/PointError isolation).
	Panic Kind = iota
	// Stall sleeps for StallFor before letting the job proceed
	// (exercises the watchdog deadline).
	Stall
	// Transient returns a retryable error (exercises retry-with-backoff
	// and retry exhaustion).
	Transient
	// Corrupt injects a state corruption into the simulation itself
	// (sim.Config.StateFault) instead of acting in the hook: the run
	// proceeds until the configured step, flips the named piece of
	// simulator state, and the runtime auditor — at a sufficient
	// CheckLevel — must catch it (exercises the invariant pipeline).
	Corrupt

	// Transport faults: consulted by internal/fleet's worker around
	// protocol messages (Transport method) rather than by the
	// scheduler's seed hooks. They exercise the coordinator's recovery
	// matrix — heartbeat loss, lease expiry, duplicate results,
	// checksum rejection, worker-loss requeue.

	// Drop discards the message: a dropped lease is silently abandoned,
	// a dropped result is lost in flight (the coordinator requeues the
	// point when its heartbeats stop), a dropped heartbeat simulates
	// heartbeat loss.
	Drop
	// Delay delivers the message after sleeping StallFor.
	Delay
	// Dup delivers the message twice (exercises result idempotency).
	Dup
	// CorruptMsg flips a byte in the message payload before sending, so
	// the coordinator's CRC/decode validation must reject it and requeue.
	CorruptMsg
	// Kill terminates the worker while it holds a lease (the worker loop
	// returns fleet.ErrKilled / the worker process exits), exercising
	// worker-loss requeue of in-flight points.
	Kill

	// Coordinator faults: consulted by the coordinator's Handle (Coord
	// method) as each worker request arrives, before the message is
	// processed — the crash loses the request, exactly like a process
	// dying mid-exchange. They exercise journal replay: a restarted
	// coordinator must reconstruct pending/leased state from its
	// write-ahead log and the result store, bit-identically.

	// KillCoord crashes the coordinator process hard (no flush, no
	// drain — the cmd wiring calls os.Exit) and leaves it down until an
	// external supervisor restarts it.
	KillCoord
	// RestartCoord is the same crash, but signals the supervising
	// harness (tools/chaossoak, or an in-process test) to restart the
	// coordinator against the same store immediately.
	RestartCoord
)

// String names the kind as the spec grammar spells it.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Transient:
		return "transient"
	case Corrupt:
		return "corrupt"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Dup:
		return "dup"
	case CorruptMsg:
		return "corruptmsg"
	case Kill:
		return "kill"
	case KillCoord:
		return "killcoord"
	case RestartCoord:
		return "restartcoord"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// transport reports whether the kind acts at the fleet protocol layer
// (worker side).
func (k Kind) transport() bool { return k >= Drop && k <= Kill }

// coordinator reports whether the kind crashes the coordinator.
func (k Kind) coordinator() bool { return k == KillCoord || k == RestartCoord }

// Rule describes one fault: which seed jobs it matches and what it does
// to them. Empty Benchmark/Label match anything; note that Seed's zero
// value matches only seed 0 — set Seed: AnySeed explicitly to match any
// seed (Parse defaults to AnySeed).
type Rule struct {
	Kind      Kind
	Benchmark string        // "" or "*" matches any benchmark
	Label     string        // mechanism label; "" or "*" matches any
	Seed      int           // AnySeed matches any seed
	Nth       int           // fire starting at the Nth match (1-based; <1 means 1st)
	Count     int           // firings before the rule burns out (<1 means 1; Forever = no limit)
	StallFor  time.Duration // Stall/Delay only; 0 means DefaultStall/DefaultDelay

	// Corrupt only: which state corruption to inject (a sim state-fault
	// name, e.g. "flip-sharer"; sim.Config validation rejects unknown
	// names) and the simulation step to inject it at (0 = DefaultAfter).
	Fault string
	After uint64

	// Transport kinds only: which protocol message the rule acts on
	// ("lease", "result", "heartbeat"; "" or "*" matches any) and which
	// worker it targets ("" or "*" matches any) — per-worker targeting is
	// what makes "kill exactly one worker mid-sweep" deterministic.
	Msg    string
	Worker string
}

// AnySeed makes a rule match every seed.
const AnySeed = -1

// Forever makes a rule fire on every match from Nth on.
const Forever = -1

// DefaultStall is the stall duration when a rule leaves StallFor zero:
// long enough that any sane watchdog deadline expires first.
const DefaultStall = 30 * time.Second

// DefaultAfter is the injection step for Corrupt rules that leave After
// zero: late enough that caches, stream tables and the in-flight table
// hold real state worth corrupting.
const DefaultAfter uint64 = 10_000

// DefaultDelay is the transport delay when a Delay rule leaves StallFor
// zero: long enough to reorder messages, short enough not to trip sane
// heartbeat timeouts on its own.
const DefaultDelay = 50 * time.Millisecond

// ErrTransient classifies injected transient faults: errors.Is(err,
// faultinject.ErrTransient) holds for every error Hook returns.
var ErrTransient = errors.New("faultinject: transient fault")

// transientErr is the retryable error Transient rules return.
type transientErr struct {
	bench, label string
	seed         int
}

func (e *transientErr) Error() string {
	return fmt.Sprintf("faultinject: transient fault (%s/%s seed %d)", e.bench, e.label, e.seed)
}

// Is matches ErrTransient so callers can classify without the type.
func (e *transientErr) Is(target error) bool { return target == ErrTransient }

// Retryable marks the fault as resolvable by retrying (the contract
// internal/core's IsRetryable checks for).
func (e *transientErr) Retryable() bool { return true }

// ruleState tracks one rule's match and firing counters.
type ruleState struct {
	Rule
	matched int
	fired   int
}

func (r *ruleState) matches(bench, label string, seed int) bool {
	if r.Benchmark != "" && r.Benchmark != "*" && r.Benchmark != bench {
		return false
	}
	if r.Label != "" && r.Label != "*" && r.Label != label {
		return false
	}
	if r.Seed != AnySeed && r.Seed != seed {
		return false
	}
	return true
}

// Injector evaluates rules against seed jobs. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules []*ruleState
}

// New builds an injector. Rules keep their slice order: when several
// fire on the same job, the first one acts.
func New(rules ...Rule) *Injector {
	in := &Injector{}
	for _, r := range rules {
		if r.Nth < 1 {
			r.Nth = 1
		}
		if r.Count == 0 {
			r.Count = 1
		}
		if r.Kind == Stall && r.StallFor <= 0 {
			r.StallFor = DefaultStall
		}
		if r.Kind == Delay && r.StallFor <= 0 {
			r.StallFor = DefaultDelay
		}
		if r.Kind == Corrupt && r.After == 0 {
			r.After = DefaultAfter
		}
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Hook is the scheduler-facing fault hook (core.FaultHook shaped): it
// counts every rule's matches and acts out the first rule due to fire —
// panicking, stalling, or returning a transient error.
func (in *Injector) Hook(bench, label string, seed int) error {
	in.mu.Lock()
	var act *ruleState
	for _, r := range in.rules {
		if r.Kind == Corrupt || r.Kind.transport() || r.Kind.coordinator() || !r.matches(bench, label, seed) {
			// Corrupt rules act through StateFault, transport rules
			// through Transport and coordinator rules through Coord —
			// none through the seed-job fault hook.
			continue
		}
		r.matched++
		if act == nil && r.matched >= r.Nth && (r.Count == Forever || r.fired < r.Count) {
			r.fired++
			act = r
		}
	}
	in.mu.Unlock()
	if act == nil {
		return nil
	}
	switch act.Kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic (%s/%s seed %d)", bench, label, seed))
	case Stall:
		time.Sleep(act.StallFor)
		return nil
	default:
		return &transientErr{bench: bench, label: label, seed: seed}
	}
}

// StateFault is the scheduler-facing state-corruption hook
// (core.StateFaultHook shaped): it counts Corrupt rules' matches and
// returns the "fault@step" spec of the first one due to fire, or "" when
// no corruption applies to this seed job.
func (in *Injector) StateFault(bench, label string, seed int) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var act *ruleState
	for _, r := range in.rules {
		if r.Kind != Corrupt || !r.matches(bench, label, seed) {
			continue
		}
		r.matched++
		if act == nil && r.matched >= r.Nth && (r.Count == Forever || r.fired < r.Count) {
			r.fired++
			act = r
		}
	}
	if act == nil {
		return ""
	}
	return fmt.Sprintf("%s@%d", act.Fault, act.After)
}

// TransportAction is what a fired transport rule tells the fleet layer
// to do with the message at hand.
type TransportAction struct {
	Kind  Kind          // Drop, Delay, Dup, CorruptMsg or Kill
	Delay time.Duration // Delay only
}

// Transport is the fleet-facing transport hook: it counts transport
// rules matching one protocol message (msg is "lease", "result" or
// "heartbeat"; worker is the worker's identity) and returns the action
// of the first rule due to fire. The boolean is false when the message
// should pass untouched. Transport rules that pin a seed never fire
// (protocol messages carry whole points, not seeds).
func (in *Injector) Transport(msg, worker, bench, label string) (TransportAction, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	var act *ruleState
	for _, r := range in.rules {
		if !r.Kind.transport() || !r.matchesTransport(msg, worker, bench, label) {
			continue
		}
		r.matched++
		if act == nil && r.matched >= r.Nth && (r.Count == Forever || r.fired < r.Count) {
			r.fired++
			act = r
		}
	}
	if act == nil {
		return TransportAction{}, false
	}
	return TransportAction{Kind: act.Kind, Delay: act.StallFor}, true
}

// Coord is the coordinator-facing crash hook: it counts coordinator
// rules matching one incoming worker request (msg is the request type —
// "hello", "next", "heartbeat" or "result" — and worker its sender) and
// returns the kind of the first rule due to fire. The boolean is false
// when the coordinator should process the request normally. The caller
// (fleet.Coordinator via Config.Crash) performs the actual crash.
func (in *Injector) Coord(msg, worker string) (Kind, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	var act *ruleState
	for _, r := range in.rules {
		if !r.Kind.coordinator() || !r.matchesCoord(msg, worker) {
			continue
		}
		r.matched++
		if act == nil && r.matched >= r.Nth && (r.Count == Forever || r.fired < r.Count) {
			r.fired++
			act = r
		}
	}
	if act == nil {
		return 0, false
	}
	return act.Kind, true
}

// matchesCoord is the coordinator-rule matcher: request type and worker
// identity, both with ""/"*" wildcards. Coordinator rules never match
// on benchmark/label/seed — hello and next carry no point identity, so
// schedules are pinned by message counting (nth=) instead.
func (r *ruleState) matchesCoord(msg, worker string) bool {
	if r.Msg != "" && r.Msg != "*" && r.Msg != msg {
		return false
	}
	if r.Worker != "" && r.Worker != "*" && r.Worker != worker {
		return false
	}
	return true
}

// matchesTransport is the transport-rule matcher: message type, worker
// identity, benchmark and mechanism label, all with ""/"*" wildcards.
func (r *ruleState) matchesTransport(msg, worker, bench, label string) bool {
	if r.Seed != AnySeed {
		return false
	}
	if r.Msg != "" && r.Msg != "*" && r.Msg != msg {
		return false
	}
	if r.Worker != "" && r.Worker != "*" && r.Worker != worker {
		return false
	}
	return r.matches(bench, label, AnySeed)
}

// Fired reports, per rule in construction order, how many times it has
// fired (test support).
func (in *Injector) Fired() []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]int, len(in.rules))
	for i, r := range in.rules {
		out[i] = r.fired
	}
	return out
}

// Parse builds an Injector from a compact rule spec, the grammar the
// test-only -faultinject flag of cmd/experiments accepts. Rules are
// separated by ';', fields within a rule by ',', each field key=value:
//
//	kind=panic|stall|transient|corrupt   (required; seed-job faults)
//	kind=drop|delay|dup|corruptmsg|kill  (transport faults, fleet workers)
//	kind=killcoord|restartcoord          (coordinator crash faults)
//	bench=NAME                   (default any; "*" explicit any)
//	label=LABEL                  (mechanism label, default any)
//	seed=N                       (seed-job rules only, default any)
//	nth=N                        (fire starting at the Nth match, default 1)
//	count=N                      (firings before burn-out, default 1; -1 forever)
//	stall=DURATION               (stall rules, default 30s)
//	fault=NAME                   (corrupt rules, required: a sim state-fault name)
//	after=N                      (corrupt rules: injection step, default 10000)
//	msg=lease|result|heartbeat   (transport rules: which message, default any)
//	msg=hello|next|heartbeat|result  (coordinator rules: which request)
//	worker=ID                    (transport/coordinator rules: which worker)
//	delay=DURATION               (delay rules, default 50ms)
//
// Examples: "kind=panic,bench=zeus,label=base,seed=0;kind=corrupt,fault=flip-sharer",
// "kind=kill,worker=w0,msg=lease" (kill worker w0 on its first lease), and
// "kind=killcoord,msg=result,nth=2" (crash the coordinator as the second
// result report arrives, before it is processed).
func Parse(spec string) (*Injector, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		r := Rule{Seed: AnySeed}
		haveKind := false
		for _, field := range strings.Split(rs, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: field %q is not key=value", field)
			}
			switch k {
			case "kind":
				switch v {
				case "panic":
					r.Kind = Panic
				case "stall":
					r.Kind = Stall
				case "transient":
					r.Kind = Transient
				case "corrupt":
					r.Kind = Corrupt
				case "drop":
					r.Kind = Drop
				case "delay":
					r.Kind = Delay
				case "dup":
					r.Kind = Dup
				case "corruptmsg":
					r.Kind = CorruptMsg
				case "kill":
					r.Kind = Kill
				case "killcoord":
					r.Kind = KillCoord
				case "restartcoord":
					r.Kind = RestartCoord
				default:
					return nil, fmt.Errorf("faultinject: unknown kind %q", v)
				}
				haveKind = true
			case "bench":
				r.Benchmark = v
			case "label":
				r.Label = v
			case "seed":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad seed %q", v)
				}
				r.Seed = n
			case "nth":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faultinject: bad nth %q", v)
				}
				r.Nth = n
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n == 0 || n < Forever {
					return nil, fmt.Errorf("faultinject: bad count %q", v)
				}
				r.Count = n
			case "stall":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("faultinject: bad stall %q", v)
				}
				r.StallFor = d
			case "fault":
				if v == "" {
					return nil, fmt.Errorf("faultinject: empty fault name")
				}
				r.Fault = v
			case "after":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("faultinject: bad after %q", v)
				}
				r.After = n
			case "msg":
				switch v {
				case "hello", "next", "lease", "result", "heartbeat", "*":
					r.Msg = v
				default:
					return nil, fmt.Errorf("faultinject: unknown msg %q", v)
				}
			case "worker":
				if v == "" {
					return nil, fmt.Errorf("faultinject: empty worker id")
				}
				r.Worker = v
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("faultinject: bad delay %q", v)
				}
				r.StallFor = d
			default:
				return nil, fmt.Errorf("faultinject: unknown field %q", k)
			}
		}
		if !haveKind {
			return nil, fmt.Errorf("faultinject: rule %q is missing kind=", rs)
		}
		if r.Kind == Corrupt && r.Fault == "" {
			return nil, fmt.Errorf("faultinject: corrupt rule %q is missing fault=", rs)
		}
		if r.Kind != Corrupt && (r.Fault != "" || r.After != 0) {
			return nil, fmt.Errorf("faultinject: fault=/after= only apply to kind=corrupt in %q", rs)
		}
		if !r.Kind.transport() && !r.Kind.coordinator() && (r.Msg != "" || r.Worker != "") {
			return nil, fmt.Errorf("faultinject: msg=/worker= only apply to transport and coordinator kinds in %q", rs)
		}
		if (r.Kind.transport() || r.Kind.coordinator()) && r.Seed != AnySeed {
			return nil, fmt.Errorf("faultinject: rule %q cannot pin seed=", rs)
		}
		if r.Kind.transport() && (r.Msg == "hello" || r.Msg == "next") {
			return nil, fmt.Errorf("faultinject: worker transport rules act on lease|result|heartbeat in %q", rs)
		}
		if r.Kind.coordinator() {
			if r.Benchmark != "" || r.Label != "" {
				return nil, fmt.Errorf("faultinject: bench=/label= do not apply to coordinator rules in %q", rs)
			}
			if r.Msg == "lease" {
				return nil, fmt.Errorf("faultinject: coordinator rules act on hello|next|heartbeat|result in %q", rs)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return New(rules...), nil
}
