// Package faultinject provides deterministic fault injection for the
// experiment scheduler: seeded rules that fire a panic, a stall, or a
// transient (retryable) error on the Nth matching seed job. It exists
// to prove the pipeline's fault tolerance — panic isolation, watchdog
// deadlines, retry-with-backoff — under `go test -race` and behind the
// test-only -faultinject flag of cmd/experiments.
//
// Determinism: an Injector is deterministic with respect to the
// sequence of Hook invocations it sees. With concurrent workers the
// global job order is not fixed, so rules meant to hit one specific job
// should pin benchmark, label and seed (the per-job identity is
// deterministic) rather than rely on nth counting across jobs.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind selects what a firing rule does to the seed job.
type Kind int

const (
	// Panic panics in the job (exercises recover/PointError isolation).
	Panic Kind = iota
	// Stall sleeps for StallFor before letting the job proceed
	// (exercises the watchdog deadline).
	Stall
	// Transient returns a retryable error (exercises retry-with-backoff
	// and retry exhaustion).
	Transient
	// Corrupt injects a state corruption into the simulation itself
	// (sim.Config.StateFault) instead of acting in the hook: the run
	// proceeds until the configured step, flips the named piece of
	// simulator state, and the runtime auditor — at a sufficient
	// CheckLevel — must catch it (exercises the invariant pipeline).
	Corrupt
)

// String names the kind as the spec grammar spells it.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Transient:
		return "transient"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule describes one fault: which seed jobs it matches and what it does
// to them. Empty Benchmark/Label match anything; note that Seed's zero
// value matches only seed 0 — set Seed: AnySeed explicitly to match any
// seed (Parse defaults to AnySeed).
type Rule struct {
	Kind      Kind
	Benchmark string        // "" or "*" matches any benchmark
	Label     string        // mechanism label; "" or "*" matches any
	Seed      int           // AnySeed matches any seed
	Nth       int           // fire starting at the Nth match (1-based; <1 means 1st)
	Count     int           // firings before the rule burns out (<1 means 1; Forever = no limit)
	StallFor  time.Duration // Stall only; 0 means DefaultStall

	// Corrupt only: which state corruption to inject (a sim state-fault
	// name, e.g. "flip-sharer"; sim.Config validation rejects unknown
	// names) and the simulation step to inject it at (0 = DefaultAfter).
	Fault string
	After uint64
}

// AnySeed makes a rule match every seed.
const AnySeed = -1

// Forever makes a rule fire on every match from Nth on.
const Forever = -1

// DefaultStall is the stall duration when a rule leaves StallFor zero:
// long enough that any sane watchdog deadline expires first.
const DefaultStall = 30 * time.Second

// DefaultAfter is the injection step for Corrupt rules that leave After
// zero: late enough that caches, stream tables and the in-flight table
// hold real state worth corrupting.
const DefaultAfter uint64 = 10_000

// ErrTransient classifies injected transient faults: errors.Is(err,
// faultinject.ErrTransient) holds for every error Hook returns.
var ErrTransient = errors.New("faultinject: transient fault")

// transientErr is the retryable error Transient rules return.
type transientErr struct {
	bench, label string
	seed         int
}

func (e *transientErr) Error() string {
	return fmt.Sprintf("faultinject: transient fault (%s/%s seed %d)", e.bench, e.label, e.seed)
}

// Is matches ErrTransient so callers can classify without the type.
func (e *transientErr) Is(target error) bool { return target == ErrTransient }

// Retryable marks the fault as resolvable by retrying (the contract
// internal/core's IsRetryable checks for).
func (e *transientErr) Retryable() bool { return true }

// ruleState tracks one rule's match and firing counters.
type ruleState struct {
	Rule
	matched int
	fired   int
}

func (r *ruleState) matches(bench, label string, seed int) bool {
	if r.Benchmark != "" && r.Benchmark != "*" && r.Benchmark != bench {
		return false
	}
	if r.Label != "" && r.Label != "*" && r.Label != label {
		return false
	}
	if r.Seed != AnySeed && r.Seed != seed {
		return false
	}
	return true
}

// Injector evaluates rules against seed jobs. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules []*ruleState
}

// New builds an injector. Rules keep their slice order: when several
// fire on the same job, the first one acts.
func New(rules ...Rule) *Injector {
	in := &Injector{}
	for _, r := range rules {
		if r.Nth < 1 {
			r.Nth = 1
		}
		if r.Count == 0 {
			r.Count = 1
		}
		if r.Kind == Stall && r.StallFor <= 0 {
			r.StallFor = DefaultStall
		}
		if r.Kind == Corrupt && r.After == 0 {
			r.After = DefaultAfter
		}
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Hook is the scheduler-facing fault hook (core.FaultHook shaped): it
// counts every rule's matches and acts out the first rule due to fire —
// panicking, stalling, or returning a transient error.
func (in *Injector) Hook(bench, label string, seed int) error {
	in.mu.Lock()
	var act *ruleState
	for _, r := range in.rules {
		if r.Kind == Corrupt || !r.matches(bench, label, seed) {
			// Corrupt rules act through StateFault, not the fault hook.
			continue
		}
		r.matched++
		if act == nil && r.matched >= r.Nth && (r.Count == Forever || r.fired < r.Count) {
			r.fired++
			act = r
		}
	}
	in.mu.Unlock()
	if act == nil {
		return nil
	}
	switch act.Kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic (%s/%s seed %d)", bench, label, seed))
	case Stall:
		time.Sleep(act.StallFor)
		return nil
	default:
		return &transientErr{bench: bench, label: label, seed: seed}
	}
}

// StateFault is the scheduler-facing state-corruption hook
// (core.StateFaultHook shaped): it counts Corrupt rules' matches and
// returns the "fault@step" spec of the first one due to fire, or "" when
// no corruption applies to this seed job.
func (in *Injector) StateFault(bench, label string, seed int) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var act *ruleState
	for _, r := range in.rules {
		if r.Kind != Corrupt || !r.matches(bench, label, seed) {
			continue
		}
		r.matched++
		if act == nil && r.matched >= r.Nth && (r.Count == Forever || r.fired < r.Count) {
			r.fired++
			act = r
		}
	}
	if act == nil {
		return ""
	}
	return fmt.Sprintf("%s@%d", act.Fault, act.After)
}

// Fired reports, per rule in construction order, how many times it has
// fired (test support).
func (in *Injector) Fired() []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]int, len(in.rules))
	for i, r := range in.rules {
		out[i] = r.fired
	}
	return out
}

// Parse builds an Injector from a compact rule spec, the grammar the
// test-only -faultinject flag of cmd/experiments accepts. Rules are
// separated by ';', fields within a rule by ',', each field key=value:
//
//	kind=panic|stall|transient|corrupt   (required)
//	bench=NAME                   (default any; "*" explicit any)
//	label=LABEL                  (mechanism label, default any)
//	seed=N                       (default any)
//	nth=N                        (fire starting at the Nth match, default 1)
//	count=N                      (firings before burn-out, default 1; -1 forever)
//	stall=DURATION               (stall rules, default 30s)
//	fault=NAME                   (corrupt rules, required: a sim state-fault name)
//	after=N                      (corrupt rules: injection step, default 10000)
//
// Example: "kind=panic,bench=zeus,label=base,seed=0;kind=corrupt,fault=flip-sharer"
func Parse(spec string) (*Injector, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		r := Rule{Seed: AnySeed}
		haveKind := false
		for _, field := range strings.Split(rs, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: field %q is not key=value", field)
			}
			switch k {
			case "kind":
				switch v {
				case "panic":
					r.Kind = Panic
				case "stall":
					r.Kind = Stall
				case "transient":
					r.Kind = Transient
				case "corrupt":
					r.Kind = Corrupt
				default:
					return nil, fmt.Errorf("faultinject: unknown kind %q", v)
				}
				haveKind = true
			case "bench":
				r.Benchmark = v
			case "label":
				r.Label = v
			case "seed":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad seed %q", v)
				}
				r.Seed = n
			case "nth":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faultinject: bad nth %q", v)
				}
				r.Nth = n
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n == 0 || n < Forever {
					return nil, fmt.Errorf("faultinject: bad count %q", v)
				}
				r.Count = n
			case "stall":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("faultinject: bad stall %q", v)
				}
				r.StallFor = d
			case "fault":
				if v == "" {
					return nil, fmt.Errorf("faultinject: empty fault name")
				}
				r.Fault = v
			case "after":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("faultinject: bad after %q", v)
				}
				r.After = n
			default:
				return nil, fmt.Errorf("faultinject: unknown field %q", k)
			}
		}
		if !haveKind {
			return nil, fmt.Errorf("faultinject: rule %q is missing kind=", rs)
		}
		if r.Kind == Corrupt && r.Fault == "" {
			return nil, fmt.Errorf("faultinject: corrupt rule %q is missing fault=", rs)
		}
		if r.Kind != Corrupt && (r.Fault != "" || r.After != 0) {
			return nil, fmt.Errorf("faultinject: fault=/after= only apply to kind=corrupt in %q", rs)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return New(rules...), nil
}
