package faultinject

import (
	"strings"
	"testing"
)

func TestCoordRuleFiresOnNthMessage(t *testing.T) {
	in, err := Parse("kind=killcoord,msg=result,nth=2")
	if err != nil {
		t.Fatal(err)
	}
	// hello/next never match a msg=result rule.
	if _, ok := in.Coord("hello", "w0"); ok {
		t.Fatal("hello matched a result rule")
	}
	if _, ok := in.Coord("result", "w0"); ok {
		t.Fatal("fired on the first match with nth=2")
	}
	kind, ok := in.Coord("result", "w1")
	if !ok || kind != KillCoord {
		t.Fatalf("second result did not fire: kind=%v ok=%v", kind, ok)
	}
	// count defaults to 1: burned out.
	if _, ok := in.Coord("result", "w0"); ok {
		t.Fatal("rule fired past its count")
	}
	if fired := in.Fired(); fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCoordRuleWorkerSelector(t *testing.T) {
	in, err := Parse("kind=restartcoord,msg=next,worker=w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in.Coord("next", "w0"); ok {
		t.Fatal("matched the wrong worker")
	}
	kind, ok := in.Coord("next", "w1")
	if !ok || kind != RestartCoord {
		t.Fatalf("targeted worker did not fire: kind=%v ok=%v", kind, ok)
	}
}

func TestCoordRulesDoNotLeakIntoOtherHooks(t *testing.T) {
	in, err := Parse("kind=killcoord,msg=*")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Hook("zeus", "base", 0); err != nil {
		t.Fatalf("seed hook acted on a coordinator rule: %v", err)
	}
	if _, ok := in.Transport("result", "w0", "zeus", "base"); ok {
		t.Fatal("worker transport hook acted on a coordinator rule")
	}
	// And the converse: worker/seed rules never reach Coord.
	in2, err := Parse("kind=kill,msg=result;kind=panic,bench=zeus")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in2.Coord("result", "w0"); ok {
		t.Fatal("Coord acted on a non-coordinator rule")
	}
}

func TestCoordRuleParseRejections(t *testing.T) {
	for _, spec := range []string{
		"kind=killcoord,seed=0",
		"kind=killcoord,bench=zeus",
		"kind=restartcoord,label=base",
		"kind=killcoord,msg=lease",
		"kind=killcoord,fault=flip-sharer",
		"kind=drop,msg=hello",
		"kind=kill,msg=next",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	for _, spec := range []string{
		"kind=killcoord",
		"kind=killcoord,msg=*",
		"kind=restartcoord,msg=hello,worker=w0,nth=3,count=-1",
	} {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
	}
}

func TestCoordRuleStringNames(t *testing.T) {
	if KillCoord.String() != "killcoord" || RestartCoord.String() != "restartcoord" {
		t.Fatalf("kind names: %v %v", KillCoord, RestartCoord)
	}
	if !strings.Contains("killcoord restartcoord", KillCoord.String()) {
		t.Fatal("unreachable")
	}
}
