package faultinject

import (
	"strings"
	"testing"
)

func TestStateFaultMatchingAndSpec(t *testing.T) {
	in := New(
		Rule{Kind: Corrupt, Benchmark: "zeus", Label: "base", Seed: 1, Fault: "flip-sharer", After: 500},
		Rule{Kind: Corrupt, Fault: "drop-flit", Seed: AnySeed}, // After defaults
	)
	if got := in.StateFault("zeus", "base", 1); got != "flip-sharer@500" {
		t.Fatalf("StateFault = %q, want flip-sharer@500", got)
	}
	// Both rules burned out / non-matching: second rule fires for any job.
	if got := in.StateFault("apache", "pf", 0); got != "drop-flit@10000" {
		t.Fatalf("StateFault = %q, want drop-flit@10000 (DefaultAfter)", got)
	}
	if got := in.StateFault("apache", "pf", 0); got != "" {
		t.Fatalf("burned-out rule still fired: %q", got)
	}
}

func TestCorruptRulesInvisibleToHook(t *testing.T) {
	in := New(Rule{Kind: Corrupt, Fault: "leak-mshr", Seed: AnySeed, Count: Forever})
	for i := 0; i < 3; i++ {
		if err := in.Hook("zeus", "base", i); err != nil {
			t.Fatalf("Hook acted on a corrupt rule: %v", err)
		}
	}
	if fired := in.Fired(); fired[0] != 0 {
		t.Fatalf("Hook consumed corrupt-rule firings: %v", fired)
	}
	if got := in.StateFault("zeus", "base", 0); got == "" {
		t.Fatal("StateFault did not fire after Hook calls")
	}
}

func TestParseCorrupt(t *testing.T) {
	in, err := Parse("kind=corrupt,fault=dup-tag,after=777,bench=zeus")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.StateFault("zeus", "base", 0); got != "dup-tag@777" {
		t.Fatalf("parsed rule produced %q", got)
	}
	for _, bad := range []string{
		"kind=corrupt",                    // missing fault=
		"kind=corrupt,fault=",             // empty fault name
		"kind=corrupt,fault=x,after=0",    // zero step
		"kind=corrupt,fault=x,after=-1",   // negative step
		"kind=panic,fault=x",              // fault= on a non-corrupt rule
		"kind=stall,after=5",              // after= on a non-corrupt rule
		"kind=corrupt,fault=x,after=junk", // unparseable step
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
	if _, err := Parse("kind=corrupt,fault=anything-sim-side"); err != nil {
		t.Errorf("fault names are validated by sim, not Parse: %v", err)
	}
	if !strings.Contains(Corrupt.String(), "corrupt") {
		t.Errorf("Corrupt.String() = %q", Corrupt.String())
	}
}
