package faultinject

import (
	"testing"
	"time"
)

func TestParseTransport(t *testing.T) {
	in, err := Parse("kind=kill,worker=w0,msg=result,nth=1; kind=drop,msg=lease; kind=delay,msg=result,delay=20ms; kind=dup,msg=*,count=-1; kind=corruptmsg,msg=result")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.rules) != 5 {
		t.Fatalf("rules = %d", len(in.rules))
	}
	k := in.rules[0]
	if k.Kind != Kill || k.Worker != "w0" || k.Msg != "result" || k.Nth != 1 || k.Seed != AnySeed {
		t.Fatalf("kill rule = %+v", k.Rule)
	}
	if d := in.rules[2]; d.Kind != Delay || d.StallFor != 20*time.Millisecond {
		t.Fatalf("delay rule = %+v", d.Rule)
	}
	if d := in.rules[3]; d.Msg != "*" || d.Count != Forever {
		t.Fatalf("dup rule = %+v", d.Rule)
	}

	for _, bad := range []string{
		"kind=drop,msg=hello",      // not an injectable message type
		"kind=drop,msg=",           // empty msg
		"kind=kill,worker=",        // empty worker
		"kind=panic,msg=result",    // msg= on a non-transport kind
		"kind=transient,worker=w0", // worker= on a non-transport kind
		"kind=drop,seed=3",         // transport rules cannot pin a seed
		"kind=delay,delay=-5ms",    // negative delay
		"kind=delay,delay=bogus",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestTransportMatching(t *testing.T) {
	in := New(
		Rule{Kind: Drop, Msg: "result", Worker: "w1", Seed: AnySeed, Nth: 2},
	)
	// Wrong worker, wrong message type: no action.
	if _, ok := in.Transport("result", "w0", "zeus", "base"); ok {
		t.Fatal("fired for the wrong worker")
	}
	if _, ok := in.Transport("lease", "w1", "zeus", "base"); ok {
		t.Fatal("fired for the wrong message type")
	}
	// First match is armed but nth=2 holds fire.
	if _, ok := in.Transport("result", "w1", "zeus", "base"); ok {
		t.Fatal("fired before nth reached")
	}
	act, ok := in.Transport("result", "w1", "zeus", "base")
	if !ok || act.Kind != Drop {
		t.Fatalf("second match did not drop: %+v %v", act, ok)
	}
	// Count defaults to 1: burnt out.
	if _, ok := in.Transport("result", "w1", "zeus", "base"); ok {
		t.Fatal("burnt-out transport rule fired again")
	}
}

func TestTransportWildcardAndDelay(t *testing.T) {
	in := New(
		Rule{Kind: Delay, Msg: "*", Seed: AnySeed, StallFor: 7 * time.Millisecond, Count: Forever},
	)
	for _, msg := range []string{"lease", "result", "heartbeat"} {
		act, ok := in.Transport(msg, "anyone", "zeus", "base")
		if !ok || act.Kind != Delay || act.Delay != 7*time.Millisecond {
			t.Fatalf("wildcard delay missed %s: %+v %v", msg, act, ok)
		}
	}
}

func TestTransportRulesInvisibleToHook(t *testing.T) {
	// A transport rule must never fire through the simulation-level Hook,
	// and simulation rules must never fire through Transport.
	in := New(
		Rule{Kind: Drop, Msg: "result", Seed: AnySeed, Count: Forever},
		Rule{Kind: Transient, Seed: AnySeed, Count: Forever},
	)
	if err := in.Hook("zeus", "base", 0); err == nil {
		t.Fatal("transient rule should fire through Hook")
	}
	act, ok := in.Transport("result", "w0", "zeus", "base")
	if !ok || act.Kind != Drop {
		t.Fatalf("drop rule should fire through Transport: %+v %v", act, ok)
	}
	// The transient rule fired via Hook only; the drop rule via Transport
	// only.
	if got := in.Fired(); got[0] == 0 || got[1] == 0 {
		t.Fatalf("fired = %v", got)
	}
}

func TestTransportBenchmarkFilter(t *testing.T) {
	in := New(Rule{Kind: CorruptMsg, Msg: "result", Benchmark: "zeus", Seed: AnySeed, Count: Forever})
	if _, ok := in.Transport("result", "w0", "mgrid", "base"); ok {
		t.Fatal("fired for the wrong benchmark")
	}
	if _, ok := in.Transport("result", "w0", "zeus", "base"); !ok {
		t.Fatal("did not fire for the matching benchmark")
	}
}
