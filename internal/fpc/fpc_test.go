package fpc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineOfWords builds a 64-byte line from 16 words, repeating the given
// words cyclically.
func lineOfWords(words ...uint32) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < wordsPerLine; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%len(words)])
	}
	return line
}

func TestAllZerosCompressesToOneSegment(t *testing.T) {
	line := make([]byte, LineSize)
	if got := CompressedSizeSegments(line); got != 1 {
		t.Fatalf("all-zero line: got %d segments, want 1", got)
	}
	// 16 zero words = 2 runs of 8 = 2*(3+3) = 12 bits.
	if got := CompressedBits(line); got != 12 {
		t.Fatalf("all-zero line: got %d bits, want 12", got)
	}
}

func TestSmallIntegersCompressWell(t *testing.T) {
	line := lineOfWords(1, 2, 3, 7)
	// 16 words × (3+4) bits = 112 bits = 2 segments.
	if got := CompressedBits(line); got != 112 {
		t.Fatalf("se4 line: got %d bits, want 112", got)
	}
	if got := CompressedSizeSegments(line); got != 2 {
		t.Fatalf("se4 line: got %d segments, want 2", got)
	}
}

func TestRandomDataIsIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	line := make([]byte, LineSize)
	incompressible := 0
	for trial := 0; trial < 50; trial++ {
		for i := range line {
			line[i] = byte(rng.Intn(256))
		}
		// Avoid pathological luck: most random lines must be full size.
		if CompressedSizeSegments(line) == MaxSegments {
			incompressible++
		}
	}
	if incompressible < 45 {
		t.Fatalf("only %d/50 random lines were incompressible", incompressible)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		w    uint32
		want Pattern
	}{
		{1, PatSE4},
		{0xFFFFFFFF, PatSE4}, // -1
		{0xFFFFFFF8, PatSE4}, // -8
		{100, PatSE8},
		{0xFFFFFF80, PatSE8}, // -128
		{1000, PatSE16},
		{0xFFFF8000, PatSE16}, // -32768
		{0x12340000, PatZeroPad16},
		{0x007FFF80, PatTwoSE8}, // 0x007F (127) and 0xFF80 (-128) are both SE8
		{0xABABABAB, PatRepByte},
		{0x12345678, PatUncomp},
	}
	for _, c := range cases {
		if got := classify(c.w); got != c.want {
			t.Errorf("classify(%#x) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestRoundTripFixedPatterns(t *testing.T) {
	lines := [][]byte{
		make([]byte, LineSize),
		lineOfWords(1),
		lineOfWords(0xFFFFFFFF),
		lineOfWords(0x7F, 0xFFFFFF80),
		lineOfWords(0x1234, 0xFFFF8000),
		lineOfWords(0xDEAD0000),
		lineOfWords(0x007F00FF, 0xFF80FF80),
		lineOfWords(0x55555555),
		lineOfWords(0x12345678, 0x9ABCDEF0),
		lineOfWords(0, 1, 0, 0x12345678, 0, 0, 0, 0xABABABAB),
	}
	for i, line := range lines {
		enc, segs := Encode(line)
		if len(enc) != segs*SegmentSize {
			t.Fatalf("line %d: enc length %d != segs %d × 8", i, len(enc), segs)
		}
		dec, err := Decode(enc, segs)
		if err != nil {
			t.Fatalf("line %d: decode: %v", i, err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("line %d: round trip mismatch\n got %x\nwant %x", i, dec, line)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: Decode(Encode(line)) == line for arbitrary content.
	f := func(seed int64, mode uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		line := make([]byte, LineSize)
		switch mode % 4 {
		case 0: // fully random
			rng.Read(line)
		case 1: // sparse: mostly zeros
			for i := 0; i < 4; i++ {
				binary.LittleEndian.PutUint32(line[rng.Intn(wordsPerLine)*4:], rng.Uint32())
			}
		case 2: // small integers
			for i := 0; i < wordsPerLine; i++ {
				binary.LittleEndian.PutUint32(line[i*4:], uint32(rng.Intn(256)))
			}
		case 3: // mixed patterns
			for i := 0; i < wordsPerLine; i++ {
				var w uint32
				switch rng.Intn(5) {
				case 0:
					w = 0
				case 1:
					w = uint32(int32(rng.Intn(16) - 8))
				case 2:
					w = rng.Uint32() << 16
				case 3:
					b := uint32(rng.Intn(256))
					w = b | b<<8 | b<<16 | b<<24
				default:
					w = rng.Uint32()
				}
				binary.LittleEndian.PutUint32(line[i*4:], w)
			}
		}
		enc, segs := Encode(line)
		dec, err := Decode(enc, segs)
		return err == nil && bytes.Equal(dec, line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeOnlyPathMatchesEncode(t *testing.T) {
	// Property: CompressedSizeSegments agrees with the size Encode reports.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line := make([]byte, LineSize)
		for i := 0; i < wordsPerLine; i++ {
			var w uint32
			if rng.Intn(2) == 0 {
				w = uint32(rng.Intn(1 << uint(rng.Intn(33))))
			} else {
				w = rng.Uint32()
			}
			binary.LittleEndian.PutUint32(line[i*4:], w)
		}
		_, segs := Encode(line)
		return segs == CompressedSizeSegments(line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsAlwaysInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line := make([]byte, LineSize)
		rng.Read(line)
		s := CompressedSizeSegments(line)
		return s >= 1 && s <= MaxSegments
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0x00}, 0); err == nil {
		t.Error("segs=0 should fail")
	}
	if _, err := Decode([]byte{0x00}, 9); err == nil {
		t.Error("segs=9 should fail")
	}
	if _, err := Decode(nil, MaxSegments); err == nil {
		t.Error("short uncompressed payload should fail")
	}
	// A truncated compressed stream must not round-trip silently: one byte
	// cannot hold 16 encoded words.
	if _, err := Decode([]byte{0xFF}, 1); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestZeroRunBoundaries(t *testing.T) {
	// A run longer than 8 zero words must be split into multiple runs.
	line := make([]byte, LineSize) // 16 zeros = two runs of 8
	enc, segs := Encode(line)
	dec, err := Decode(enc, segs)
	if err != nil || !bytes.Equal(dec, line) {
		t.Fatalf("16-zero-word line round trip failed: %v", err)
	}
	// 9 zeros then nonzero tail.
	line = lineOfWords(0, 0, 0, 0, 0, 0, 0, 0, 0, 0x12345678, 0x12345678,
		0x12345678, 0x12345678, 0x12345678, 0x12345678, 0x12345678)
	enc, segs = Encode(line)
	dec, err = Decode(enc, segs)
	if err != nil || !bytes.Equal(dec, line) {
		t.Fatalf("9-zero-run line round trip failed: %v", err)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(make([]byte, LineSize)); r != 8.0 {
		t.Errorf("all-zero ratio = %v, want 8", r)
	}
	rng := rand.New(rand.NewSource(7))
	line := make([]byte, LineSize)
	rng.Read(line)
	if r := Ratio(line); r != 1.0 {
		t.Errorf("random ratio = %v, want 1", r)
	}
}

func TestPatternHistogram(t *testing.T) {
	line := lineOfWords(0, 1, 0x12345678, 0xABABABAB)
	h := PatternHistogram(line)
	if h[PatZeroRun] != 4 || h[PatSE4] != 4 || h[PatUncomp] != 4 || h[PatRepByte] != 4 {
		t.Errorf("histogram = %v", h)
	}
}

func TestEncodePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode on short line should panic")
		}
	}()
	Encode(make([]byte, 32))
}

func TestAppendVariantsMatchEncodeDecode(t *testing.T) {
	// Property: AppendEncode/DecodeInto agree with Encode/Decode and
	// preserve any prefix already in dst.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line := make([]byte, LineSize)
		for i := 0; i < wordsPerLine; i++ {
			var w uint32
			switch rng.Intn(3) {
			case 0:
				w = 0
			case 1:
				w = uint32(rng.Intn(256))
			default:
				w = rng.Uint32()
			}
			binary.LittleEndian.PutUint32(line[i*4:], w)
		}
		enc, segs := Encode(line)
		prefix := []byte{0xA5, 0x5A}
		apEnc, apSegs := AppendEncode(append([]byte(nil), prefix...), line)
		if apSegs != segs || !bytes.Equal(apEnc[:2], prefix) || !bytes.Equal(apEnc[2:], enc) {
			return false
		}
		var out [LineSize]byte
		if err := DecodeInto(out[:], enc, segs); err != nil {
			return false
		}
		return bytes.Equal(out[:], line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeIntoErrors(t *testing.T) {
	if err := DecodeInto(make([]byte, 8), []byte{0}, 1); err == nil {
		t.Error("short destination should fail")
	}
	out := make([]byte, LineSize)
	if err := DecodeInto(out, []byte{0xFF}, 1); err == nil {
		t.Error("truncated stream should fail")
	}
	if err := DecodeInto(out, nil, MaxSegments); err == nil {
		t.Error("short uncompressed payload should fail")
	}
	// A failed decode must not have been reported as success on stale data.
	line := lineOfWords(1, 2, 3)
	enc, segs := Encode(line)
	if err := DecodeInto(out, enc, segs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, line) {
		t.Fatal("DecodeInto after failures returned wrong contents")
	}
}

func TestAppendEncodeDecodeIntoNoAllocs(t *testing.T) {
	lines := [][]byte{
		make([]byte, LineSize),
		lineOfWords(1, 2, 3, 7),
		lineOfWords(0, 1, 0x12340000, 0xABABABAB),
	}
	buf := make([]byte, 0, LineSize)
	var out [LineSize]byte
	allocs := testing.AllocsPerRun(200, func() {
		for _, line := range lines {
			var segs int
			buf, segs = AppendEncode(buf[:0], line)
			if err := DecodeInto(out[:], buf, segs); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode/DecodeInto with a reused buffer allocated %.1f times per op", allocs)
	}
}

func BenchmarkCompressedSizeSegments(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lines := make([][]byte, 64)
	for i := range lines {
		lines[i] = make([]byte, LineSize)
		for w := 0; w < wordsPerLine; w++ {
			if rng.Intn(3) == 0 {
				binary.LittleEndian.PutUint32(lines[i][w*4:], uint32(rng.Intn(128)))
			} else {
				binary.LittleEndian.PutUint32(lines[i][w*4:], rng.Uint32())
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompressedSizeSegments(lines[i%len(lines)])
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	line := lineOfWords(0, 1, 0x12340000, 0xABABABAB, 0x12345678)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, segs := Encode(line)
		if _, err := Decode(enc, segs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPCCompress guards the allocation-free compress/decompress
// hot path: a reused buffer round-tripped over a mixed line population
// must report 0 allocs/op.
func BenchmarkFPCCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lines := make([][]byte, 64)
	for i := range lines {
		lines[i] = make([]byte, LineSize)
		for w := 0; w < wordsPerLine; w++ {
			switch rng.Intn(4) {
			case 0: // leave zero
			case 1:
				binary.LittleEndian.PutUint32(lines[i][w*4:], uint32(rng.Intn(128)))
			case 2:
				binary.LittleEndian.PutUint32(lines[i][w*4:], rng.Uint32()<<16)
			default:
				binary.LittleEndian.PutUint32(lines[i][w*4:], rng.Uint32())
			}
		}
	}
	buf := make([]byte, 0, LineSize)
	var out [LineSize]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var segs int
		buf, segs = AppendEncode(buf[:0], lines[i%len(lines)])
		if err := DecodeInto(out[:], buf, segs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeStrictness(t *testing.T) {
	dst := make([]byte, LineSize)

	// Regression: the lenient decoder accepted an all-zero 2-segment
	// stream (reading the padding as 16 zero-run-of-1 codewords, 96
	// bits) even though the canonical all-zero encoding is 12 bits in 1
	// segment. Both the non-canonical spend and the wrong claimed size
	// must now be rejected.
	if err := DecodeInto(dst, make([]byte, 2*SegmentSize), 2); err == nil {
		t.Error("all-zero 2-segment stream accepted (padding decoded as zero runs)")
	}

	// Regression: a canonical stream zero-padded out to a larger claimed
	// segment count used to decode successfully, so the caller's segs
	// was never validated against the payload.
	line := lineOfWords(1, 2, 3, 7) // 2 segments
	enc, segs := Encode(line)
	padded := append(append([]byte(nil), enc...), make([]byte, SegmentSize)...)
	if err := DecodeInto(dst, padded, segs+1); err == nil {
		t.Errorf("stream of %d segments accepted with claimed segs %d", segs, segs+1)
	}

	// Non-zero bits hidden in the padding must be rejected, not ignored.
	tampered := append([]byte(nil), enc...)
	if tampered[len(tampered)-1] != 0 {
		t.Fatalf("expected zero padding at the tail of a %d-bit stream", CompressedBits(line))
	}
	tampered[len(tampered)-1] = 0x01
	if err := DecodeInto(dst, tampered, segs); err == nil {
		t.Error("non-zero padding byte accepted")
	}

	// Reads are bounded by the claimed segment count even when the
	// slice is longer: a 2-segment stream claimed as 1 segment must
	// fail instead of reading past segs*64 bits.
	if err := DecodeInto(dst, enc, segs-1); err == nil {
		t.Error("2-segment stream accepted with claimed segs 1")
	}

	// Raw storage is only for incompressible lines: a compressible line
	// claimed as MaxSegments disagrees with its recomputed size.
	raw := make([]byte, LineSize) // all-zero "raw" payload
	if err := DecodeInto(dst, raw, MaxSegments); err == nil {
		t.Error("compressible line accepted as raw storage")
	}

	// The canonical stream itself still decodes.
	if err := DecodeInto(dst, enc, segs); err != nil {
		t.Fatalf("canonical stream rejected: %v", err)
	}
	if !bytes.Equal(dst, line) {
		t.Fatal("canonical stream decoded to the wrong line")
	}
}
