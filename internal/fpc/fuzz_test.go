package fpc

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives arbitrary 64-byte lines through the encoder and
// back: every line must decode to its exact input, with a segment count
// the size estimator agrees on.
func FuzzRoundTrip(f *testing.F) {
	zero := make([]byte, LineSize)
	f.Add(zero)
	ones := bytes.Repeat([]byte{0xFF}, LineSize)
	f.Add(ones)
	ramp := make([]byte, LineSize)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	f.Add(ramp)
	// Small sign-extendable words, repeated bytes, and a halfword mix —
	// one seed per pattern class.
	f.Add(bytes.Repeat([]byte{0x00, 0x00, 0x00, 0x7F}, LineSize/4))
	f.Add(bytes.Repeat([]byte{0xAB, 0xAB, 0xAB, 0xAB}, LineSize/4))
	f.Add(bytes.Repeat([]byte{0xFF, 0xFE, 0x00, 0x01}, LineSize/4))

	f.Fuzz(func(t *testing.T, line []byte) {
		if len(line) != LineSize {
			t.Skip()
		}
		enc, segs := AppendEncode(nil, line)
		if segs < 1 || segs > MaxSegments {
			t.Fatalf("segment count %d out of range [1, %d]", segs, MaxSegments)
		}
		if want := CompressedSizeSegments(line); segs != want {
			t.Fatalf("AppendEncode segs %d != CompressedSizeSegments %d", segs, want)
		}
		dec := make([]byte, LineSize)
		if err := DecodeInto(dec, enc, segs); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", line, dec)
		}
	})
}

// FuzzDecode feeds arbitrary (not encoder-produced) bitstreams to the
// decoder: it may reject them, but must never panic or over-read.
func FuzzDecode(f *testing.F) {
	enc, segs := Encode(make([]byte, LineSize))
	f.Add(enc, segs)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF}, MaxSegments)

	f.Fuzz(func(t *testing.T, enc []byte, segs int) {
		dst := make([]byte, LineSize)
		_ = DecodeInto(dst, enc, segs)
	})
}
