package fpc

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives arbitrary 64-byte lines through the encoder and
// back: every line must decode to its exact input, with a segment count
// the size estimator agrees on.
func FuzzRoundTrip(f *testing.F) {
	zero := make([]byte, LineSize)
	f.Add(zero)
	ones := bytes.Repeat([]byte{0xFF}, LineSize)
	f.Add(ones)
	ramp := make([]byte, LineSize)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	f.Add(ramp)
	// Small sign-extendable words, repeated bytes, and a halfword mix —
	// one seed per pattern class.
	f.Add(bytes.Repeat([]byte{0x00, 0x00, 0x00, 0x7F}, LineSize/4))
	f.Add(bytes.Repeat([]byte{0xAB, 0xAB, 0xAB, 0xAB}, LineSize/4))
	f.Add(bytes.Repeat([]byte{0xFF, 0xFE, 0x00, 0x01}, LineSize/4))

	f.Fuzz(func(t *testing.T, line []byte) {
		if len(line) != LineSize {
			t.Skip()
		}
		enc, segs := AppendEncode(nil, line)
		if segs < 1 || segs > MaxSegments {
			t.Fatalf("segment count %d out of range [1, %d]", segs, MaxSegments)
		}
		if want := CompressedSizeSegments(line); segs != want {
			t.Fatalf("AppendEncode segs %d != CompressedSizeSegments %d", segs, want)
		}
		dec := make([]byte, LineSize)
		if err := DecodeInto(dec, enc, segs); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if !bytes.Equal(dec, line) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", line, dec)
		}
		// Strictness: the same stream must not also decode at a larger
		// claimed segment count (zero padding is not extra codewords).
		if segs+1 < MaxSegments {
			padded := append(append([]byte(nil), enc...), make([]byte, SegmentSize)...)
			if err := DecodeInto(dec, padded, segs+1); err == nil {
				t.Fatalf("wrong segs %d accepted for a %d-segment stream", segs+1, segs)
			}
		}
		// ... nor at a truncated length.
		if err := DecodeInto(dec, enc[:len(enc)-1], segs); err == nil {
			t.Fatal("truncated stream accepted")
		}
	})
}

// FuzzDecode feeds arbitrary (not encoder-produced) bitstreams to the
// decoder: it may reject them, but must never panic or over-read, and
// any stream it does accept must be the canonical encoding of the line
// it decodes to.
func FuzzDecode(f *testing.F) {
	enc, segs := Encode(make([]byte, LineSize))
	f.Add(enc, segs)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF}, MaxSegments)
	// Malformed streams the lenient decoder used to accept: an all-zero
	// stream claiming 2 segments (16 zero-run-of-1 codewords), and a
	// canonical 1-segment encoding claiming 2 segments with zero padding.
	f.Add(make([]byte, 2*SegmentSize), 2)
	f.Add(append(enc, make([]byte, SegmentSize)...), segs+1)

	f.Fuzz(func(t *testing.T, enc []byte, segs int) {
		dst := make([]byte, LineSize)
		if err := DecodeInto(dst, enc, segs); err != nil {
			return
		}
		if want := CompressedSizeSegments(dst); want != segs {
			t.Fatalf("accepted segs %d but decoded line occupies %d segments", segs, want)
		}
		if _, got := AppendEncode(nil, dst); got != segs {
			t.Fatalf("accepted segs %d but re-encoding yields %d", segs, got)
		}
	})
}
