// Package fpc implements Frequent Pattern Compression (FPC), the
// significance-based cache-line compression scheme of Alameldeen & Wood
// used for both cache compression and link compression in the HPCA 2007
// paper "Interactions Between Compression and Prefetching in Chip
// Multiprocessors".
//
// FPC compresses a cache line one 32-bit word at a time. Each word is
// encoded as a 3-bit prefix that identifies one of eight patterns,
// followed by the pattern's data bits:
//
//	prefix  pattern                                   data bits
//	000     run of 1-8 zero words                     3
//	001     4-bit sign-extended integer               4
//	010     8-bit sign-extended integer               8
//	011     16-bit sign-extended integer              16
//	100     16-bit value padded with a zero halfword  16
//	101     two halfwords, each an 8-bit s.e. int     16
//	110     word of four repeated bytes               8
//	111     uncompressed 32-bit word                  32
//
// A 64-byte line is 16 words. The encoded bit length is rounded up to
// 8-byte segments; a line that does not compress below 8 segments is
// stored uncompressed (8 segments, no prefix overhead, no decompression
// penalty).
package fpc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LineSize is the cache line size in bytes used throughout the simulator.
const LineSize = 64

// SegmentSize is the compression granularity in bytes: lines occupy an
// integral number of 8-byte segments in the compressed cache and cross
// the off-chip link in 8-byte flits.
const SegmentSize = 8

// MaxSegments is the size of an uncompressed line in segments.
const MaxSegments = LineSize / SegmentSize

// wordsPerLine is the number of 32-bit words in a line.
const wordsPerLine = LineSize / 4

// Pattern identifies one of the eight FPC word encodings.
type Pattern uint8

// The eight FPC patterns, in prefix order.
const (
	PatZeroRun   Pattern = 0 // run of consecutive zero words
	PatSE4       Pattern = 1 // 4-bit sign-extended
	PatSE8       Pattern = 2 // 8-bit sign-extended
	PatSE16      Pattern = 3 // 16-bit sign-extended
	PatZeroPad16 Pattern = 4 // halfword padded with zero halfword
	PatTwoSE8    Pattern = 5 // two halfwords, each byte sign-extended
	PatRepByte   Pattern = 6 // four repeated bytes
	PatUncomp    Pattern = 7 // uncompressed word
)

// String returns a short human-readable pattern name.
func (p Pattern) String() string {
	switch p {
	case PatZeroRun:
		return "zero-run"
	case PatSE4:
		return "se4"
	case PatSE8:
		return "se8"
	case PatSE16:
		return "se16"
	case PatZeroPad16:
		return "zero-pad16"
	case PatTwoSE8:
		return "two-se8"
	case PatRepByte:
		return "rep-byte"
	case PatUncomp:
		return "uncompressed"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// dataBits returns the number of data bits following the 3-bit prefix
// for each pattern.
func (p Pattern) dataBits() int {
	switch p {
	case PatZeroRun:
		return 3
	case PatSE4:
		return 4
	case PatSE8, PatRepByte:
		return 8
	case PatSE16, PatZeroPad16, PatTwoSE8:
		return 16
	case PatUncomp:
		return 32
	default:
		panic("fpc: invalid pattern")
	}
}

const prefixBits = 3

// classify returns the cheapest pattern that can represent word w.
// Zero words are handled by the caller (run-length coded).
func classify(w uint32) Pattern {
	s := int32(w)
	switch {
	case s >= -8 && s <= 7:
		return PatSE4
	case s >= -128 && s <= 127:
		return PatSE8
	case s >= -32768 && s <= 32767:
		return PatSE16
	case w&0xFFFF == 0:
		return PatZeroPad16
	case halfIsSE8(uint16(w>>16)) && halfIsSE8(uint16(w)):
		return PatTwoSE8
	case isRepeatedBytes(w):
		return PatRepByte
	default:
		return PatUncomp
	}
}

// halfIsSE8 reports whether the 16-bit halfword is an 8-bit
// sign-extended value.
func halfIsSE8(h uint16) bool {
	s := int16(h)
	return s >= -128 && s <= 127
}

// isRepeatedBytes reports whether all four bytes of w are equal.
func isRepeatedBytes(w uint32) bool {
	b := w & 0xFF
	return w == b|b<<8|b<<16|b<<24
}

// CompressedBits returns the exact number of bits FPC needs to encode
// line, which must be LineSize bytes long. It is the size-only fast path:
// no bitstream is materialized.
func CompressedBits(line []byte) int {
	if len(line) != LineSize {
		panic("fpc: line must be 64 bytes")
	}
	bits := 0
	i := 0
	for i < wordsPerLine {
		w := binary.LittleEndian.Uint32(line[i*4:])
		if w == 0 {
			run := 1
			for i+run < wordsPerLine && run < 8 {
				if binary.LittleEndian.Uint32(line[(i+run)*4:]) != 0 {
					break
				}
				run++
			}
			bits += prefixBits + PatZeroRun.dataBits()
			i += run
			continue
		}
		bits += prefixBits + classify(w).dataBits()
		i++
	}
	return bits
}

// CompressedSizeSegments returns the number of 8-byte segments the line
// occupies after FPC compression, in the range [1, MaxSegments]. A line
// whose encoded form would need MaxSegments or more is stored
// uncompressed and reports MaxSegments.
func CompressedSizeSegments(line []byte) int {
	segs := (CompressedBits(line) + SegmentSize*8 - 1) / (SegmentSize * 8)
	if segs < 1 {
		segs = 1
	}
	if segs >= MaxSegments {
		return MaxSegments
	}
	return segs
}

// Compressible reports whether FPC saves at least one segment on line.
func Compressible(line []byte) bool {
	return CompressedSizeSegments(line) < MaxSegments
}

// bitWriter accumulates a big-endian-within-byte bitstream by appending
// to buf, so callers can hand it a reused buffer and write without
// allocating.
type bitWriter struct {
	buf  []byte
	nbit uint // bits written by this writer (it starts on a byte boundary)
}

// write appends the low n bits of v, most significant first, in
// byte-sized chunks rather than bit by bit.
func (bw *bitWriter) write(v uint32, n int) {
	for n > 0 {
		if bw.nbit%8 == 0 {
			bw.buf = append(bw.buf, 0)
		}
		free := 8 - int(bw.nbit%8)
		take := n
		if take > free {
			take = free
		}
		chunk := (v >> uint(n-take)) & (1<<uint(take) - 1)
		bw.buf[len(bw.buf)-1] |= byte(chunk << uint(free-take))
		bw.nbit += uint(take)
		n -= take
	}
}

// bitReader consumes a bitstream produced by bitWriter.
type bitReader struct {
	buf  []byte
	nbit uint
}

var errShortStream = errors.New("fpc: truncated bitstream")

func (br *bitReader) read(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		idx := br.nbit / 8
		if int(idx) >= len(br.buf) {
			return 0, errShortStream
		}
		bit := (br.buf[idx] >> (7 - br.nbit%8)) & 1
		v = v<<1 | uint32(bit)
		br.nbit++
	}
	return v, nil
}

// Encode compresses a 64-byte line into an FPC bitstream. The returned
// slice is padded to a whole number of segments; Decode inverts it.
// The second result is the occupied size in segments, identical to
// CompressedSizeSegments. If the line is incompressible the raw line is
// returned (copied) with MaxSegments. Encode allocates its result; hot
// paths that can reuse a buffer should call AppendEncode.
func Encode(line []byte) ([]byte, int) {
	return AppendEncode(make([]byte, 0, LineSize), line)
}

// AppendEncode appends the FPC encoding of the 64-byte line to dst and
// returns the extended slice plus the occupied size in segments. The
// appended payload is padded to whole segments; an incompressible line
// is appended raw. dst may be nil; with a reused buffer of sufficient
// capacity the call does not allocate.
func AppendEncode(dst, line []byte) ([]byte, int) {
	if len(line) != LineSize {
		panic("fpc: line must be 64 bytes")
	}
	segs := CompressedSizeSegments(line)
	if segs == MaxSegments {
		return append(dst, line...), MaxSegments
	}
	base := len(dst)
	bw := bitWriter{buf: dst}
	i := 0
	for i < wordsPerLine {
		w := binary.LittleEndian.Uint32(line[i*4:])
		if w == 0 {
			run := 1
			for i+run < wordsPerLine && run < 8 {
				if binary.LittleEndian.Uint32(line[(i+run)*4:]) != 0 {
					break
				}
				run++
			}
			bw.write(uint32(PatZeroRun), prefixBits)
			bw.write(uint32(run-1), PatZeroRun.dataBits())
			i += run
			continue
		}
		p := classify(w)
		bw.write(uint32(p), prefixBits)
		bw.write(encodeData(p, w), p.dataBits())
		i++
	}
	dst = bw.buf
	for len(dst)-base < segs*SegmentSize {
		dst = append(dst, 0)
	}
	return dst, segs
}

// encodeData extracts the data bits for pattern p from word w.
func encodeData(p Pattern, w uint32) uint32 {
	switch p {
	case PatSE4:
		return w & 0xF
	case PatSE8:
		return w & 0xFF
	case PatSE16:
		return w & 0xFFFF
	case PatZeroPad16:
		return w >> 16
	case PatTwoSE8:
		return (w>>16&0xFF)<<8 | w&0xFF
	case PatRepByte:
		return w & 0xFF
	case PatUncomp:
		return w
	default:
		panic("fpc: encodeData on zero-run")
	}
}

// decodeData reconstructs the full word from pattern p's data bits.
func decodeData(p Pattern, d uint32) uint32 {
	switch p {
	case PatSE4:
		return signExtend(d, 4)
	case PatSE8:
		return signExtend(d, 8)
	case PatSE16:
		return signExtend(d, 16)
	case PatZeroPad16:
		return d << 16
	case PatTwoSE8:
		hi := signExtend(d>>8, 8) & 0xFFFF
		lo := signExtend(d&0xFF, 8) & 0xFFFF
		return hi<<16 | lo
	case PatRepByte:
		b := d & 0xFF
		return b | b<<8 | b<<16 | b<<24
	case PatUncomp:
		return d
	default:
		panic("fpc: decodeData on zero-run")
	}
}

// signExtend sign-extends the low n bits of v to 32 bits.
func signExtend(v uint32, n int) uint32 {
	shift := 32 - uint(n)
	return uint32(int32(v<<shift) >> shift)
}

// Decode decompresses an FPC bitstream produced by Encode back into a
// freshly allocated 64-byte line. segs must be the segment count Encode
// returned; a value of MaxSegments means the payload is the raw
// uncompressed line. Hot paths should call DecodeInto with a reused
// buffer instead.
func Decode(enc []byte, segs int) ([]byte, error) {
	out := make([]byte, LineSize)
	if err := DecodeInto(out, enc, segs); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto is the allocation-free variant of Decode: it decompresses
// the bitstream into dst, which must hold at least LineSize bytes and is
// cleared first (zero runs rely on it).
//
// DecodeInto is strict: it only accepts streams that AppendEncode could
// have produced at the claimed segment count. Reads are bounded to
// segs*64 bits, the decoded words must spend exactly CompressedBits of
// the decoded line (a truncated stream cannot pass its zero padding off
// as extra zero-run codewords), segs must equal the recomputed
// CompressedSizeSegments of the decoded line (raw storage included:
// segs == MaxSegments requires an incompressible payload), and the
// padding up to the segment boundary must be zero.
func DecodeInto(dst, enc []byte, segs int) error {
	if len(dst) < LineSize {
		return fmt.Errorf("fpc: destination holds %d bytes, need %d", len(dst), LineSize)
	}
	dst = dst[:LineSize]
	if segs < 1 || segs > MaxSegments {
		return fmt.Errorf("fpc: invalid segment count %d", segs)
	}
	if segs == MaxSegments {
		if len(enc) < LineSize {
			return errShortStream
		}
		copy(dst, enc)
		if got := CompressedSizeSegments(dst); got != MaxSegments {
			return fmt.Errorf("fpc: raw-stored line compresses to %d segments, not %d", got, MaxSegments)
		}
		return nil
	}
	if len(enc) < segs*SegmentSize {
		return errShortStream
	}
	for i := range dst {
		dst[i] = 0
	}
	br := bitReader{buf: enc[:segs*SegmentSize]}
	i := 0
	for i < wordsPerLine {
		pv, err := br.read(prefixBits)
		if err != nil {
			return err
		}
		p := Pattern(pv)
		d, err := br.read(p.dataBits())
		if err != nil {
			return err
		}
		if p == PatZeroRun {
			run := int(d) + 1
			if i+run > wordsPerLine {
				return fmt.Errorf("fpc: zero run of %d overflows line at word %d", run, i)
			}
			i += run // words already zero
			continue
		}
		binary.LittleEndian.PutUint32(dst[i*4:], decodeData(p, d))
		i++
	}
	if want := CompressedBits(dst); int(br.nbit) != want {
		return fmt.Errorf("fpc: stream spends %d bits where the canonical encoding of the decoded line spends %d",
			br.nbit, want)
	}
	if want := CompressedSizeSegments(dst); want != segs {
		return fmt.Errorf("fpc: segment count %d disagrees with the line's compressed size %d", segs, want)
	}
	// The remainder of the claimed segments is padding and must be zero.
	from := int(br.nbit) / 8
	if rem := br.nbit % 8; rem != 0 {
		if enc[from]&(1<<(8-rem)-1) != 0 {
			return fmt.Errorf("fpc: non-zero padding bits in byte %d", from)
		}
		from++
	}
	for ; from < segs*SegmentSize; from++ {
		if enc[from] != 0 {
			return fmt.Errorf("fpc: non-zero padding byte %#02x at offset %d", enc[from], from)
		}
	}
	return nil
}

// Ratio returns the compression ratio (original size / compressed size)
// of a single line, e.g. 4.0 for a line that compresses to 2 segments.
func Ratio(line []byte) float64 {
	return float64(MaxSegments) / float64(CompressedSizeSegments(line))
}

// PatternHistogram counts, for analysis and tests, how many words of the
// line fall into each pattern (zero-run words are counted individually).
func PatternHistogram(line []byte) [8]int {
	if len(line) != LineSize {
		panic("fpc: line must be 64 bytes")
	}
	var h [8]int
	for i := 0; i < wordsPerLine; i++ {
		w := binary.LittleEndian.Uint32(line[i*4:])
		if w == 0 {
			h[PatZeroRun]++
			continue
		}
		h[classify(w)]++
	}
	return h
}
