package workload

import "fmt"

// RefSource is the contract between a per-core reference generator and
// the simulator's front end: batched generation plus the counters the
// trace tooling reads. Implementations must be deterministic in
// (Profile, core, seed), hold only core-private mutable state, and
// never end — those properties are what make a source eligible for
// sharded generation (sim.Config.Shards hands each core's source to a
// worker goroutine; see DESIGN.md §6i).
type RefSource interface {
	// NextN fills refs with the next len(refs) references in program
	// order and returns len(refs).
	NextN(refs []Ref) int
	// Counts reports instructions retired, data references and
	// instruction-block fetches emitted so far.
	Counts() (instructions, dataRefs, ifetches uint64)
	// Profile returns the profile the source was built from.
	Profile() Profile
}

// SourceFactory builds the reference source for one core of a run.
type SourceFactory func(p Profile, core int, seed int64) RefSource

// DefaultSource is the kind a Profile with an empty Kind resolves to:
// the original strided Generator.
const DefaultSource = "strided"

var (
	sourceNames []string // registration order
	sources     = map[string]SourceFactory{}
)

// registerSource adds a factory under a unique name. All registrations
// happen from this package's init below so the name order is fixed.
func registerSource(name string, f SourceFactory) {
	if name == "" || f == nil {
		panic("workload: registerSource with empty name or nil factory")
	}
	if _, dup := sources[name]; dup {
		panic("workload: duplicate reference source " + name)
	}
	sourceNames = append(sourceNames, name)
	sources[name] = f
}

func init() {
	registerSource(DefaultSource, func(p Profile, core int, seed int64) RefSource {
		return NewGenerator(p, core, seed)
	})
	registerSource("ptrchase", newChaseSource)
	registerSource("hashprobe", newHashProbeSource)
	registerSource("btree", newBTreeSource)
	registerSource("srvmix", newServiceMixSource)
}

// SourceNames lists the registered reference-source kinds in
// registration order (the default first).
func SourceNames() []string {
	return append([]string(nil), sourceNames...)
}

// SourceRegistered reports whether name is a registered kind.
func SourceRegistered(name string) bool {
	_, ok := sources[name]
	return ok
}

// SourceByName returns the factory for a kind; "" means the default
// strided generator.
func SourceByName(name string) (SourceFactory, error) {
	if name == "" {
		name = DefaultSource
	}
	f, ok := sources[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown reference source %q (have %v)", name, SourceNames())
	}
	return f, nil
}

// NewSource builds core's reference source of the given kind; "" means
// the profile's own Kind (and, failing that, the strided default).
func NewSource(kind string, p Profile, core int, seed int64) (RefSource, error) {
	if kind == "" {
		kind = p.Kind
	}
	f, err := SourceByName(kind)
	if err != nil {
		return nil, err
	}
	return f(p, core, seed), nil
}

// MustNewSource is NewSource for callers with validated kinds.
func MustNewSource(kind string, p Profile, core int, seed int64) RefSource {
	s, err := NewSource(kind, p, core, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Counts implements RefSource for the strided Generator.
func (g *Generator) Counts() (instructions, dataRefs, ifetches uint64) {
	return g.Instructions, g.DataRefs, g.IFetches
}

var _ RefSource = (*Generator)(nil)
