package workload

import (
	"math/rand"

	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
)

// The irregular sources share the strided Generator's front half — the
// instruction-stream interleaving, exponential gap sampling and
// store/blocking assignment — so per-reference cost, the trace format
// and the profile's MemPer1000 calibration stay uniform across kinds;
// only the data-address function differs. Each source is deterministic
// in (Profile, core, seed) and holds only core-private state, keeping
// it eligible for sharded generation (DESIGN.md §6i).

// chaseHeads is the number of distinct list heads a pointer chase
// re-heads at. A small head set makes traversals revisit the same
// chains, so miss-pair transitions recur and a correlation prefetcher
// has something to learn.
const chaseHeads = 64

// irrGen is the shared front half of every irregular source.
type irrGen struct {
	p   Profile
	rng *rand.Rand

	// Instruction stream state (mirrors Generator).
	iBlock     cache.BlockAddr
	iRun       int
	instrInBlk int

	// Data stream state.
	gapData  int
	gapScale float64 // service-mix load phases modulate the data-ref rate
	privBase cache.BlockAddr

	data func(r *Ref) // kind-specific data-address generator

	instructions, dataRefs, ifetches uint64
}

func (g *irrGen) init(p Profile, core int, seed int64, kindSalt uint64) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g.p = p
	g.rng = rand.New(rand.NewSource(seed ^ int64(splitmix64(uint64(core)+kindSalt))))
	g.privBase = privateBase + cache.BlockAddr(core)*(privateSize+coreSkew)
	if p.DataShared {
		g.privBase = privateBase // one footprint for all cores
	}
	g.gapScale = 1
	g.iBlock = cache.BlockAddr(g.rng.Intn(p.IFootprint))
	g.iRun = p.ISeqRun
	g.gapData = g.sampleGap()
}

// sampleGap draws the instruction distance to the next data reference.
func (g *irrGen) sampleGap() int {
	mean := g.gapScale * 1000 / g.p.MemPer1000
	return int(g.rng.ExpFloat64()*mean + 0.5)
}

// nextIBlock advances the instruction stream to its next code block.
func (g *irrGen) nextIBlock() cache.BlockAddr {
	if g.iRun > 0 {
		g.iRun--
		g.iBlock++
		if g.iBlock >= cache.BlockAddr(g.p.IFootprint) {
			g.iBlock = 0
		}
	} else {
		g.iBlock = cache.BlockAddr(g.rng.Intn(g.p.IFootprint))
		g.iRun = g.p.ISeqRun
	}
	return codeBase + g.iBlock
}

// dataRef produces the next data reference: an occasional touch of the
// high-contention shared region, otherwise the kind-specific structure
// walk.
func (g *irrGen) dataRef(r *Ref) {
	if g.p.SharedFrac > 0 && g.rng.Float64() < g.p.SharedFrac {
		r.Addr = sharedBase + cache.BlockAddr(g.rng.Intn(g.p.SharedWS))
	} else {
		g.data(r)
	}
	if g.rng.Float64() < g.p.StoreFrac {
		r.Kind = coherence.Store
		r.Blocking = false
	} else {
		r.Kind = coherence.Load
		r.Blocking = g.rng.Float64() < g.p.BlockingFrac
	}
}

// Next fills r with the next reference in program order, interleaving
// instruction-block fetches with data references.
func (g *irrGen) Next(r *Ref) {
	dI := g.p.InstrPerIBlock - g.instrInBlk
	if g.gapData < dI {
		adv := g.gapData
		g.instrInBlk += adv
		g.gapData = g.sampleGap()
		g.instructions += uint64(adv)
		g.dataRefs++
		r.Gap = uint32(adv)
		g.dataRef(r)
		return
	}
	adv := dI
	g.gapData -= adv
	g.instrInBlk = 0
	g.instructions += uint64(adv)
	g.ifetches++
	r.Gap = uint32(adv)
	r.Kind = coherence.IFetch
	r.Addr = g.nextIBlock()
	r.Blocking = true
}

// NextN fills refs with the next len(refs) references and returns
// len(refs); the synthetic stream never ends.
func (g *irrGen) NextN(refs []Ref) int {
	for i := range refs {
		g.Next(&refs[i])
	}
	return len(refs)
}

// Counts implements RefSource.
func (g *irrGen) Counts() (instructions, dataRefs, ifetches uint64) {
	return g.instructions, g.dataRefs, g.ifetches
}

// Profile returns the source's benchmark profile.
func (g *irrGen) Profile() Profile { return g.p }

// chaseWalk is the data-dependent pointer walk shared by the ptrchase
// source and the service mix's maintenance phase. The successor of a
// node is a fixed hash of its index — the software analogue of reading
// the node's next pointer — so the address sequence is data-dependent
// and stride-free, but traversals from the same head repeat exactly.
type chaseWalk struct {
	salt  uint64
	nodes int64
	len   int
	cur   int64
	hops  int
}

func (w *chaseWalk) next(rng *rand.Rand) int64 {
	if w.hops <= 0 {
		w.cur = int64(splitmix64(w.salt^uint64(rng.Intn(chaseHeads))) % uint64(w.nodes))
		w.hops = w.len
	}
	cur := w.cur
	w.cur = int64(splitmix64(w.salt+uint64(w.cur)*0x9E3779B97F4A7C15) % uint64(w.nodes))
	w.hops--
	return cur
}

// chaseSource walks linked lists laid out hash-scattered across a
// heap-like arena: long chains of dependent loads with no stride.
type chaseSource struct {
	irrGen
	walk chaseWalk
}

func newChaseSource(p Profile, core int, seed int64) RefSource {
	s := &chaseSource{}
	s.init(p, core, seed, 0xC11A5E)
	length := p.ChaseLen
	if length <= 0 {
		length = 64
	}
	s.walk = chaseWalk{salt: s.rng.Uint64(), nodes: int64(p.PrivateWS), len: length}
	s.data = func(r *Ref) {
		r.Addr = s.privBase + cache.BlockAddr(s.walk.next(s.rng))
	}
	return s
}

// hashProbe models open-hashing lookups: a key hashes to a bucket whose
// short collision chain is then walked sequentially. Chain length is a
// property of the bucket, so repeated lookups of one bucket touch the
// same blocks.
type hashProbe struct {
	salt      uint64
	buckets   int64
	span      int64 // blocks per bucket arena = max chain length
	keys      int64
	hotKeys   int64
	hotProb   float64
	chainLeft int
	chainAddr int64
}

func newHashProbe(p Profile, rng *rand.Rand) hashProbe {
	span := int64(p.ChaseLen)
	if span <= 0 {
		span = 4
	}
	if span > 64 {
		span = 64
	}
	buckets := int64(p.PrivateWS) / span
	if buckets < 1 {
		buckets = 1
	}
	keys := buckets * 2
	hotKeys := int64(float64(keys) * p.HotFrac)
	if hotKeys < 1 {
		hotKeys = 1
	}
	return hashProbe{
		salt: rng.Uint64(), buckets: buckets, span: span,
		keys: keys, hotKeys: hotKeys, hotProb: p.HotProb,
	}
}

func (h *hashProbe) next(rng *rand.Rand) int64 {
	if h.chainLeft <= 0 {
		var key uint64
		if rng.Float64() < h.hotProb {
			key = uint64(rng.Int63n(h.hotKeys))
		} else {
			key = uint64(rng.Int63n(h.keys))
		}
		hv := splitmix64(h.salt ^ key*0xBF58476D1CE4E5B9)
		bucket := int64(hv % uint64(h.buckets))
		h.chainLeft = 1 + int(splitmix64(h.salt+uint64(bucket))%uint64(h.span))
		h.chainAddr = bucket * h.span
	}
	a := h.chainAddr
	h.chainAddr++
	h.chainLeft--
	return a
}

// hashProbeSource drives hash-table probing over the private arena.
type hashProbeSource struct {
	irrGen
	probe hashProbe
}

func newHashProbeSource(p Profile, core int, seed int64) RefSource {
	s := &hashProbeSource{}
	s.init(p, core, seed, 0x11A5_4B0B)
	s.probe = newHashProbe(p, s.rng)
	s.data = func(r *Ref) {
		r.Addr = s.privBase + cache.BlockAddr(s.probe.next(s.rng))
	}
	return s
}

// btreeWalk performs root-to-leaf descents of a B-tree laid out level
// by level: the root and upper levels are tiny and cache-hot, leaves
// are cold, and the child choice at each node is a hash of the lookup
// key and the node's address (data-dependent branching). A fraction of
// lookups finish with a short leaf-range scan.
type btreeWalk struct {
	salt     uint64
	fanout   uint64
	base     []int64 // level start offsets within the arena
	size     []int64 // nodes per level
	limit    int64   // arena size in blocks
	level    int
	node     int64
	key      uint64
	scanLeft int
	scanAddr int64
}

func newBTreeWalk(p Profile, rng *rand.Rand) btreeWalk {
	fanout := p.TreeFanout
	if fanout < 2 {
		fanout = 16
	}
	levels := p.TreeLevels
	if levels < 2 {
		levels = 5
	}
	w := btreeWalk{salt: rng.Uint64(), fanout: uint64(fanout), key: rng.Uint64()}
	var total, n int64 = 0, 1
	for l := 0; l < levels; l++ {
		if room := int64(p.PrivateWS) - total; n > room {
			n = room
		}
		if n < 1 {
			break
		}
		w.base = append(w.base, total)
		w.size = append(w.size, n)
		total += n
		n *= int64(fanout)
	}
	w.limit = total
	return w
}

func (w *btreeWalk) next(rng *rand.Rand) int64 {
	if w.scanLeft > 0 {
		a := w.scanAddr
		w.scanAddr++
		w.scanLeft--
		return a
	}
	a := w.base[w.level] + w.node
	if w.level == len(w.size)-1 {
		// Leaf reached: occasionally a short range scan, then a fresh
		// key restarts the descent at the root.
		if rng.Float64() < 0.25 {
			w.scanAddr = a + 1
			w.scanLeft = 4
			if room := w.limit - w.scanAddr; int64(w.scanLeft) > room {
				w.scanLeft = int(room)
			}
		}
		w.key = rng.Uint64()
		w.level, w.node = 0, 0
	} else {
		child := splitmix64(w.salt^w.key^uint64(a)*0x9E3779B97F4A7C15) % w.fanout
		w.level++
		w.node = (w.node*int64(w.fanout) + int64(child)) % w.size[w.level]
	}
	return a
}

// bTreeSource drives B-tree lookups over the private arena.
type bTreeSource struct {
	irrGen
	walk btreeWalk
}

func newBTreeSource(p Profile, core int, seed int64) RefSource {
	s := &bTreeSource{}
	s.init(p, core, seed, 0xB7EE)
	s.walk = newBTreeWalk(p, s.rng)
	s.data = func(r *Ref) {
		r.Addr = s.privBase + cache.BlockAddr(s.walk.next(s.rng))
	}
	return s
}

// serviceMixSource models a server alternating through load phases of
// PhaseInstr instructions each: point lookups at nominal load, range
// scans at heavy load (the gap scale shortens, raising the data-ref
// rate), and pointer-walk maintenance at light load. The phase is a
// function of the core-private instruction count, so the mix stays
// deterministic under sharded generation.
type serviceMixSource struct {
	irrGen
	phaseInstr uint64
	probe      hashProbe
	walk       chaseWalk
	scanCur    int64
}

func newServiceMixSource(p Profile, core int, seed int64) RefSource {
	s := &serviceMixSource{}
	s.init(p, core, seed, 0x5E5501)
	s.phaseInstr = p.PhaseInstr
	if s.phaseInstr == 0 {
		s.phaseInstr = 200_000
	}
	s.probe = newHashProbe(p, s.rng)
	length := p.ChaseLen
	if length <= 0 {
		length = 64
	}
	s.walk = chaseWalk{salt: s.rng.Uint64(), nodes: int64(p.PrivateWS), len: length}
	s.data = s.mix
	return s
}

func (s *serviceMixSource) mix(r *Ref) {
	switch (s.instructions / s.phaseInstr) % 3 {
	case 0: // point lookups, nominal load
		s.gapScale = 1.0
		r.Addr = s.privBase + cache.BlockAddr(s.probe.next(s.rng))
	case 1: // range scans, heavy load
		s.gapScale = 0.6
		r.Addr = s.privBase + cache.BlockAddr(s.scanCur)
		s.scanCur++
		if s.scanCur >= int64(s.p.PrivateWS) {
			s.scanCur = 0
		}
	default: // pointer-walk maintenance, light load
		s.gapScale = 1.7
		r.Addr = s.privBase + cache.BlockAddr(s.walk.next(s.rng))
	}
}
