package workload

import (
	"encoding/binary"
	"math"
	"sync"

	"cmpsim/internal/cache"
	"cmpsim/internal/codec"
)

// DataModel synthesizes deterministic 64-byte block contents whose
// compressibility under the selected codec matches a benchmark's
// Table 3 compression ratio. A block's contents are a pure function of
// (seed, address, version); stores may bump a block's version, changing
// its compressed size — the mechanism behind recompression on dirty
// writebacks.
//
// The value synthesizer draws words from FPC's pattern classes (the
// paper's codec); other codecs see the same value stream but price it
// with their own size function, so calibration converges on the knob
// that hits the target ratio as measured by that codec — or saturates
// below it if the codec cannot reach the target on this value mixture
// (e.g. zca on a profile with few all-zero lines).
type DataModel struct {
	seed  uint64
	codec codec.Codec
	// Cumulative thresholds over a 16-bit dial for word categories:
	// zero | se4 | se8 | se16 | repbyte | zeropad16 | random.
	thZero, thSE4, thSE8, thSE16, thRep, thPad uint32

	versions map[cache.BlockAddr]uint32
	sizes    map[cache.BlockAddr]uint8 // memoized size of current version

	// poisonNext > 0 makes the next SizeOf calls memoize a deliberately
	// wrong size (fault injection: exercises the shadow FPC checker).
	poisonNext int

	lineBuf [cache.LineBytes]byte
}

// knobThresholds converts a compressibility knob c ∈ [0,1] into the
// cumulative category thresholds. At c=0 every word is random
// (incompressible); at c=1 roughly 95% of words fall into FPC patterns.
func knobThresholds(c float64) (z, s4, s8, s16, rep, pad uint32) {
	const dial = 1 << 16
	cum := 0.0
	step := func(p float64) uint32 {
		cum += p * c
		return uint32(cum * dial)
	}
	z = step(0.50)
	s4 = step(0.12)
	s8 = step(0.12)
	s16 = step(0.10)
	rep = step(0.06)
	pad = step(0.05)
	return
}

// splitmix64 is the deterministic per-block hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewDataModel builds a model calibrated so a full cache of its blocks
// reaches approximately the profile's TargetRatio (effective size over
// physical size, capped at 2.0 by the tag limit).
func NewDataModel(p Profile, seed int64) *DataModel {
	return NewDataModelCodec(p, seed, codec.Default())
}

// NewDataModelCodec builds a model calibrated against codec c: block
// sizes, calibration packing and the ratio estimators all use c's size
// function.
func NewDataModelCodec(p Profile, seed int64, c codec.Codec) *DataModel {
	knob := CalibrateKnobCodec(p.TargetRatio, uint64(seed), c)
	d := &DataModel{
		seed:     uint64(seed) * 0x9E3779B97F4A7C15,
		codec:    c,
		versions: make(map[cache.BlockAddr]uint32),
		sizes:    make(map[cache.BlockAddr]uint8),
	}
	d.thZero, d.thSE4, d.thSE8, d.thSE16, d.thRep, d.thPad = knobThresholds(knob)
	return d
}

// Codec returns the codec this model prices sizes with.
func (d *DataModel) Codec() codec.Codec { return d.codec }

// newRawModel builds a model directly from a knob (calibration support).
func newRawModel(knob float64, seed uint64, c codec.Codec) *DataModel {
	d := &DataModel{
		seed:     seed,
		codec:    c,
		versions: make(map[cache.BlockAddr]uint32),
		sizes:    make(map[cache.BlockAddr]uint8),
	}
	d.thZero, d.thSE4, d.thSE8, d.thSE16, d.thRep, d.thPad = knobThresholds(knob)
	return d
}

// synthWord produces the w-th 32-bit word of a block's contents.
func (d *DataModel) synthWord(a cache.BlockAddr, ver uint32, w int) uint32 {
	h := splitmix64(d.seed ^ uint64(a)<<8 ^ uint64(ver)<<40 ^ uint64(w))
	dial := uint32(h & 0xFFFF)
	val := uint32(h >> 16)
	switch {
	case dial < d.thZero:
		return 0
	case dial < d.thSE4:
		return uint32(int32(val%16) - 8)
	case dial < d.thSE8:
		return uint32(int32(val%256) - 128)
	case dial < d.thSE16:
		return uint32(int32(val%65536) - 32768)
	case dial < d.thRep:
		b := val & 0xFF
		return b | b<<8 | b<<16 | b<<24
	case dial < d.thPad:
		return val << 16
	default:
		if val == 0 {
			val = 0xDEADBEEF // keep the random class incompressible
		}
		return val
	}
}

// FillLine writes the block's current contents into dst (≥ 64 bytes).
func (d *DataModel) FillLine(a cache.BlockAddr, dst []byte) {
	ver := d.versions[a]
	for w := 0; w < cache.LineBytes/4; w++ {
		binary.LittleEndian.PutUint32(dst[w*4:], d.synthWord(a, ver, w))
	}
}

// Line returns a copy of the block's current 64-byte contents.
func (d *DataModel) Line(a cache.BlockAddr) []byte {
	out := make([]byte, cache.LineBytes)
	d.FillLine(a, out)
	return out
}

// SizeOf returns the block's current compressed size in segments under
// the model's codec, memoized per version.
func (d *DataModel) SizeOf(a cache.BlockAddr) uint8 {
	if d.poisonNext > 0 {
		d.poisonNext--
		d.FillLine(a, d.lineBuf[:])
		s := 9 - uint8(d.codec.CompressedSizeSegments(d.lineBuf[:])) // legal but wrong
		d.sizes[a] = s
		return s
	}
	if s, ok := d.sizes[a]; ok {
		return s
	}
	d.FillLine(a, d.lineBuf[:])
	s := uint8(d.codec.CompressedSizeSegments(d.lineBuf[:]))
	d.sizes[a] = s
	return s
}

// Dirty records a store that changed the block's contents: the version
// bumps and the memoized size is invalidated.
func (d *DataModel) Dirty(a cache.BlockAddr) {
	d.versions[a]++
	delete(d.sizes, a)
}

// Version returns the block's current content version: the number of
// Dirty calls it has received (audit support: the shadow value model
// cross-checks its own store count against this).
func (d *DataModel) Version(a cache.BlockAddr) uint32 { return d.versions[a] }

// ForEachVersion visits every block whose contents have ever been
// dirtied, with its current version. Iteration order is unspecified;
// fn must not mutate the model (audit sweep support).
func (d *DataModel) ForEachVersion(fn func(cache.BlockAddr, uint32)) {
	for a, v := range d.versions {
		fn(a, v)
	}
}

// PoisonNextSizes corrupts the size memo for the next n SizeOf calls:
// each memoizes a legal (1..8) but wrong segment count. Fault-injection
// support — proves the shadow FPC checker catches a size pipeline that
// disagrees with block contents.
func (d *DataModel) PoisonNextSizes(n int) { d.poisonNext = n }

// MeanSegs estimates the expected compressed size over n sample blocks.
func (d *DataModel) MeanSegs(n int) float64 {
	var buf [cache.LineBytes]byte
	total := 0
	for i := 0; i < n; i++ {
		a := cache.BlockAddr(0x40000000 + i)
		ver := uint32(0)
		for w := 0; w < cache.LineBytes/4; w++ {
			binary.LittleEndian.PutUint32(buf[w*4:], d.synthWord(a, ver, w))
		}
		total += d.codec.CompressedSizeSegments(buf[:])
	}
	return float64(total) / float64(n)
}

// RatioForMeanSegs converts a mean compressed size to the effective
// cache-size ratio of the paper's compressed L2: a set of
// cache.DefaultSegsPerSet segments and cache.DefaultTagsPerSet tags
// holds min(tags, segs/E[s]) lines versus cache.DefaultLinesPerSet
// uncompressed ones, so relative to the uncompressed baseline the ratio
// is min(MaxEffectiveRatio, MaxSegs/E[s]). It is an upper bound: real
// sets lose space to packing granularity (see PackedRatio).
func RatioForMeanSegs(meanSegs float64) float64 {
	if meanSegs <= 0 {
		return cache.MaxEffectiveRatio
	}
	r := float64(cache.MaxSegs) / meanSegs
	if r > cache.MaxEffectiveRatio {
		r = cache.MaxEffectiveRatio
	}
	if r < 1 {
		r = 1
	}
	return r
}

// PackedRatio estimates the achieved effective-size ratio by actually
// packing n sample lines into simulated sets of the compressed-L2
// geometry (cache.DefaultTagsPerSet tags, cache.DefaultSegsPerSet
// segments — the same constants sim.NewConfig builds the cache with):
// lines are admitted until the tag or segment budget runs out, as the
// decoupled variable-segment cache does. This captures the
// packing-granularity loss the mean-based bound misses (e.g. four
// 7-segment lines leave 4 free segments that fit nothing).
func (d *DataModel) PackedRatio(n int) float64 {
	var buf [cache.LineBytes]byte
	totalLines, sets := 0, 0
	tags, segs := 0, 0
	for i := 0; i < n; i++ {
		a := cache.BlockAddr(0x50000000 + i)
		for w := 0; w < cache.LineBytes/4; w++ {
			binary.LittleEndian.PutUint32(buf[w*4:], d.synthWord(a, 0, w))
		}
		s := d.codec.CompressedSizeSegments(buf[:])
		if tags+1 > cache.DefaultTagsPerSet || segs+s > cache.DefaultSegsPerSet {
			totalLines += tags
			sets++
			tags, segs = 0, 0
		}
		tags++
		segs += s
	}
	if sets == 0 {
		return 1
	}
	r := float64(totalLines) / float64(sets) / cache.DefaultLinesPerSet
	if r < 1 {
		r = 1
	}
	if r > cache.MaxEffectiveRatio {
		r = cache.MaxEffectiveRatio
	}
	return r
}

// calibCache memoizes CalibrateKnob results. The binary search is pure
// in (targetRatio, seed) and costs tens of milliseconds of synthesis
// and FPC compression, which would otherwise dominate every System
// construction; experiment sweeps build thousands of systems over a
// handful of profiles. sync.Map because scheduler workers construct
// systems concurrently.
var calibCache sync.Map

type calibKey struct {
	ratio float64
	seed  uint64
	codec string
}

// CalibrateKnob binary-searches the compressibility knob whose expected
// compressed size yields the target effective-cache-size ratio under
// the default codec.
func CalibrateKnob(targetRatio float64, seed uint64) float64 {
	return CalibrateKnobCodec(targetRatio, seed, codec.Default())
}

// CalibrateKnobCodec is CalibrateKnob pricing sizes with codec c; the
// memo is keyed per codec so two codecs never share a knob.
func CalibrateKnobCodec(targetRatio float64, seed uint64, c codec.Codec) float64 {
	if targetRatio <= 1.0 {
		// Ratio 1.0x means essentially incompressible, but keep a trace
		// of compressible lines so ratios like 1.01 are achievable.
		targetRatio = math.Max(targetRatio, 1.0)
	}
	if targetRatio >= cache.MaxEffectiveRatio {
		return 1.0
	}
	key := calibKey{targetRatio, seed, c.Name()}
	if v, ok := calibCache.Load(key); ok {
		return v.(float64)
	}
	const samples = 2048
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 30; iter++ {
		mid := (lo + hi) / 2
		m := newRawModel(mid, seed, c)
		r := m.PackedRatio(samples)
		if r < targetRatio {
			lo = mid
		} else {
			hi = mid
		}
	}
	v, _ := calibCache.LoadOrStore(key, (lo+hi)/2)
	return v.(float64)
}
