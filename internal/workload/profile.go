// Package workload synthesizes per-core instruction and memory
// reference streams that stand in for the paper's eight benchmarks:
// the four Wisconsin commercial workloads (apache, zeus, oltp, jbb) and
// four SPEComp2001 benchmarks (art, apsi, fma3d, mgrid).
//
// Real traces of these workloads are proprietary and require full-system
// simulation; instead each benchmark is a Profile whose parameters are
// set to reproduce the paper's *measured inputs* — per-benchmark data
// compressibility (Table 3), prefetcher trainability and stream lengths
// (Table 4's coverage/accuracy split between commercial and scientific
// codes), instruction footprints (commercial codes miss heavily in the
// L1I; SPEComp codes almost never do), working-set sizes and sharing.
// Downstream results (speedups, interactions) then emerge from the
// simulated mechanisms rather than from tuning outputs directly.
package workload

import (
	"fmt"
	"sort"
)

// Class distinguishes the benchmark suites.
type Class uint8

// Benchmark classes. Irregular marks the linked-data-structure suite
// (pointer chasing, hash probing, B-tree walks, service mixes) that
// extends the paper's eight stride-friendly workloads.
const (
	Commercial Class = iota
	SPEComp
	Irregular
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Commercial:
		return "commercial"
	case SPEComp:
		return "SPEComp"
	default:
		return "irregular"
	}
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name  string
	Class Class

	// Core behaviour.
	BaseCPI      float64 // CPI on non-memory work
	MemPer1000   float64 // data references per 1000 instructions
	StoreFrac    float64 // fraction of data references that are stores
	BlockingFrac float64 // fraction of loads whose consumer is near
	// (stalls the core); SPEComp codes are compiled
	// with software prefetching (non-blocking loads),
	// so theirs is low

	// Instruction stream.
	InstrPerIBlock int // instructions per 64-byte code block (~16)
	IFootprint     int // code working set in blocks (shared by all cores)
	ISeqRun        int // sequential code blocks between branches off-block

	// Strided data component (what the stride prefetchers can cover).
	// Streams walk their own region of StreamWS blocks (scanned arrays,
	// log buffers, allocation arenas); it is deliberately separate from
	// the irregular working set because the paper finds the miss sets
	// targeted by prefetching (long scans, far down the LRU stack) and
	// by compression (within 2x of the LRU stack depth) nearly disjoint
	// (Fig. 8). When StreamWS is 0 streams walk the irregular region.
	StridedFrac float64 // fraction of data refs from strided streams
	StreamLen   int     // blocks a stream runs before re-seeding
	Streams     int     // concurrent streams per core
	Strides     []int64 // stride choices in blocks
	StreamWS    int     // stream region size in blocks (0: use PrivateWS)
	// BurstLen > 1 clusters strided references: entering the strided
	// component emits a run of BurstLen back-to-back stream touches with
	// ~BurstGap instructions between them (a vectorized inner loop
	// sweeping arrays). Bursts give the SPEComp codes their high
	// memory-level parallelism; the long-run strided fraction still
	// matches StridedFrac.
	BurstLen int
	BurstGap float64

	// Irregular data component. When DataShared is true the main data
	// region is one footprint shared by all cores (the commercial
	// workloads' database/file-cache pages: total working set does not
	// grow with core count); otherwise each core gets a private region
	// (the SPEComp data-parallel tiles).
	DataShared bool
	SharedFrac float64 // fraction of data refs to the high-contention shared region
	PrivateWS  int     // private working set per core, in blocks
	SharedWS   int     // shared working set, in blocks
	HotFrac    float64 // fraction of the working set that is hot
	HotProb    float64 // probability an irregular ref hits the hot set

	// Data contents.
	TargetRatio    float64 // Table 3 cache compression ratio to calibrate to
	StoreDirtyProb float64 // probability a store changes a block's
	// compressed size (version bump)

	// Reference-source selection. Kind names the RefSource that builds
	// this profile's stream ("" = the strided Generator above); the
	// registry in source.go maps names to factories. Any kind can be
	// forced onto any profile (sim.Config.RefSource), so the generic
	// fields above must stay valid for irregular profiles too.
	Kind string

	// Linked-data-structure parameters, used by the irregular kinds;
	// zero values take per-kind defaults derived from the working sets.
	ChaseLen   int    // pointer hops before re-heading at a new list head
	TreeFanout int    // B-tree branching factor
	TreeLevels int    // B-tree depth including the leaf level
	PhaseInstr uint64 // service-mix phase length in instructions
}

// Validate reports the first configuration error.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.BaseCPI <= 0:
		return fmt.Errorf("workload %s: BaseCPI must be positive", p.Name)
	case p.MemPer1000 <= 0 || p.MemPer1000 > 1000:
		return fmt.Errorf("workload %s: MemPer1000 out of range", p.Name)
	case p.StoreFrac < 0 || p.StoreFrac > 1 || p.BlockingFrac < 0 || p.BlockingFrac > 1:
		return fmt.Errorf("workload %s: fractions must be in [0,1]", p.Name)
	case p.InstrPerIBlock < 1 || p.IFootprint < 1 || p.ISeqRun < 1:
		return fmt.Errorf("workload %s: instruction-stream parameters must be positive", p.Name)
	case p.StridedFrac < 0 || p.StridedFrac > 1:
		return fmt.Errorf("workload %s: StridedFrac out of range", p.Name)
	case p.StridedFrac > 0 && (p.StreamLen < 1 || p.Streams < 1 || len(p.Strides) == 0):
		return fmt.Errorf("workload %s: stream parameters required with StridedFrac > 0", p.Name)
	case p.SharedFrac < 0 || p.SharedFrac+p.StridedFrac > 1:
		return fmt.Errorf("workload %s: StridedFrac+SharedFrac exceeds 1", p.Name)
	case p.PrivateWS < 1 || p.SharedWS < 1:
		return fmt.Errorf("workload %s: working sets must be positive", p.Name)
	case p.HotFrac <= 0 || p.HotFrac > 1 || p.HotProb < 0 || p.HotProb > 1:
		return fmt.Errorf("workload %s: hot-set parameters out of range", p.Name)
	case p.TargetRatio < 1 || p.TargetRatio > 2:
		return fmt.Errorf("workload %s: TargetRatio must be in [1,2]", p.Name)
	case p.StoreDirtyProb < 0 || p.StoreDirtyProb > 1:
		return fmt.Errorf("workload %s: StoreDirtyProb out of range", p.Name)
	case p.BurstLen < 0 || (p.BurstLen > 1 && p.BurstGap <= 0):
		return fmt.Errorf("workload %s: BurstLen needs a positive BurstGap", p.Name)
	case p.Kind != "" && !SourceRegistered(p.Kind):
		return fmt.Errorf("workload %s: unknown reference-source kind %q (have %v)", p.Name, p.Kind, SourceNames())
	case p.ChaseLen < 0 || p.TreeFanout < 0 || p.TreeLevels < 0:
		return fmt.Errorf("workload %s: linked-structure parameters must be non-negative", p.Name)
	}
	return nil
}

// profiles is the benchmark table. Working sets are in 64-byte blocks
// (65536 blocks = 4 MB, the shared L2's size).
var profiles = map[string]Profile{
	// Commercial workloads: large shared instruction footprints (heavy
	// L1I miss traffic), mostly-irregular data with hot/cold locality,
	// short trainable strides, significant sharing, compressible
	// integer/pointer data, many dependent loads. The reference stream
	// is the block-novel access stream (L1-relevant touches); pure
	// within-block reuse is folded into BaseCPI.
	"apache": {
		Name: "apache", Class: Commercial,
		BaseCPI: 0.60, MemPer1000: 60, StoreFrac: 0.30, BlockingFrac: 0.55,
		InstrPerIBlock: 16, IFootprint: 2000, ISeqRun: 6,
		StridedFrac: 0.042, StreamLen: 16, Streams: 4, Strides: []int64{1}, StreamWS: 400000,
		DataShared: true, SharedFrac: 0.083, PrivateWS: 110000, SharedWS: 3000,
		HotFrac: 0.028, HotProb: 0.876,
		TargetRatio: 1.50, StoreDirtyProb: 0.30,
	},
	"zeus": {
		Name: "zeus", Class: Commercial,
		BaseCPI: 0.60, MemPer1000: 60, StoreFrac: 0.25, BlockingFrac: 0.55,
		InstrPerIBlock: 16, IFootprint: 1700, ISeqRun: 7,
		StridedFrac: 0.0475, StreamLen: 20, Streams: 4, Strides: []int64{1}, StreamWS: 400000,
		DataShared: true, SharedFrac: 0.063, PrivateWS: 110000, SharedWS: 2500,
		HotFrac: 0.03, HotProb: 0.884,
		TargetRatio: 1.45, StoreDirtyProb: 0.25,
	},
	"oltp": {
		Name: "oltp", Class: Commercial,
		BaseCPI: 0.65, MemPer1000: 65, StoreFrac: 0.35, BlockingFrac: 0.60,
		InstrPerIBlock: 16, IFootprint: 4000, ISeqRun: 4,
		StridedFrac: 0.025, StreamLen: 12, Streams: 3, Strides: []int64{1}, StreamWS: 400000,
		DataShared: true, SharedFrac: 0.135, PrivateWS: 160000, SharedWS: 4000,
		HotFrac: 0.02, HotProb: 0.854,
		TargetRatio: 1.70, StoreDirtyProb: 0.30,
	},
	"jbb": {
		Name: "jbb", Class: Commercial,
		BaseCPI: 0.60, MemPer1000: 60, StoreFrac: 0.30, BlockingFrac: 0.55,
		InstrPerIBlock: 16, IFootprint: 1000, ISeqRun: 8,
		// Short allocation-burst streams: trainable, but the 25-deep L2
		// prefetcher overshoots them badly (the paper's 32% L2 accuracy)
		// while the resident working set is pollution-sensitive.
		StridedFrac: 0.0825, StreamLen: 10, Streams: 4, Strides: []int64{1}, StreamWS: 50000,
		SharedFrac: 0.045, PrivateWS: 40000, SharedWS: 2000,
		HotFrac: 0.06, HotProb: 0.922,
		TargetRatio: 1.80, StoreDirtyProb: 0.35,
	},

	// SPEComp benchmarks: tiny code loops, long regular strides with
	// high memory-level parallelism (software-prefetch-style
	// non-blocking loads), little sharing, floating-point data that FPC
	// barely compresses.
	"art": {
		Name: "art", Class: SPEComp,
		BaseCPI: 0.55, MemPer1000: 120, StoreFrac: 0.20, BlockingFrac: 0.15,
		InstrPerIBlock: 16, IFootprint: 100, ISeqRun: 40,
		StridedFrac: 0.045, StreamLen: 200, Streams: 4, Strides: []int64{1, 1, 2}, StreamWS: 40000,
		BurstLen: 10, BurstGap: 4,
		SharedFrac: 0.02, PrivateWS: 30000, SharedWS: 2000,
		HotFrac: 0.04, HotProb: 0.95,
		TargetRatio: 1.15, StoreDirtyProb: 0.20,
	},
	"apsi": {
		Name: "apsi", Class: SPEComp,
		BaseCPI: 0.55, MemPer1000: 100, StoreFrac: 0.25, BlockingFrac: 0.15,
		InstrPerIBlock: 16, IFootprint: 150, ISeqRun: 40,
		StridedFrac: 0.05, StreamLen: 400, Streams: 3, Strides: []int64{1}, StreamWS: 60000,
		BurstLen: 12, BurstGap: 4,
		SharedFrac: 0.02, PrivateWS: 4000, SharedWS: 2000,
		HotFrac: 0.02, HotProb: 0.998,
		TargetRatio: 1.01, StoreDirtyProb: 0.15,
	},
	"fma3d": {
		Name: "fma3d", Class: SPEComp,
		BaseCPI: 0.55, MemPer1000: 120, StoreFrac: 0.35, BlockingFrac: 0.12,
		InstrPerIBlock: 16, IFootprint: 400, ISeqRun: 25,
		// Streaming working set far beyond even a doubled cache: the
		// paper's bandwidth-bound benchmark (27.7 GB/s demand).
		StridedFrac: 0.10, StreamLen: 100, Streams: 6, Strides: []int64{1, 2}, StreamWS: 300000,
		BurstLen: 6, BurstGap: 6,
		SharedFrac: 0.02, PrivateWS: 120000, SharedWS: 2000,
		HotFrac: 0.008, HotProb: 0.92,
		TargetRatio: 1.19, StoreDirtyProb: 0.25,
	},
	"mgrid": {
		Name: "mgrid", Class: SPEComp,
		BaseCPI: 0.55, MemPer1000: 105, StoreFrac: 0.25, BlockingFrac: 0.20,
		InstrPerIBlock: 16, IFootprint: 120, ISeqRun: 40,
		StridedFrac: 0.08, StreamLen: 400, Streams: 3, Strides: []int64{1, 2, 3}, StreamWS: 60000,
		BurstLen: 12, BurstGap: 4,
		SharedFrac: 0.02, PrivateWS: 4000, SharedWS: 2000,
		HotFrac: 0.03, HotProb: 0.995,
		TargetRatio: 1.08, StoreDirtyProb: 0.15,
	},

	// Irregular workloads: linked-data-structure traversals whose next
	// address is data-dependent (the access classes the pointer-chase
	// prefetcher literature targets). StridedFrac is 0 — there is no
	// trainable stride component by construction — but every generic
	// field stays valid so the strided Generator can be forced onto
	// these profiles for A/B runs (sim.Config.RefSource = "strided").
	"ptrchase": {
		Name: "ptrchase", Class: Irregular, Kind: "ptrchase",
		BaseCPI: 0.65, MemPer1000: 70, StoreFrac: 0.15, BlockingFrac: 0.90,
		InstrPerIBlock: 16, IFootprint: 1200, ISeqRun: 8,
		SharedFrac: 0.05, PrivateWS: 180000, SharedWS: 3000,
		HotFrac: 0.05, HotProb: 0.60,
		TargetRatio: 1.55, StoreDirtyProb: 0.25,
		ChaseLen: 96,
	},
	"hashprobe": {
		Name: "hashprobe", Class: Irregular, Kind: "hashprobe",
		BaseCPI: 0.60, MemPer1000: 80, StoreFrac: 0.25, BlockingFrac: 0.65,
		InstrPerIBlock: 16, IFootprint: 1500, ISeqRun: 6,
		SharedFrac: 0.08, PrivateWS: 140000, SharedWS: 3000,
		HotFrac: 0.04, HotProb: 0.70,
		TargetRatio: 1.60, StoreDirtyProb: 0.30,
		ChaseLen: 4, // mean collision-chain length in blocks
	},
	"btree": {
		Name: "btree", Class: Irregular, Kind: "btree",
		BaseCPI: 0.62, MemPer1000: 65, StoreFrac: 0.20, BlockingFrac: 0.80,
		InstrPerIBlock: 16, IFootprint: 1800, ISeqRun: 6,
		SharedFrac: 0.06, PrivateWS: 160000, SharedWS: 3000,
		HotFrac: 0.03, HotProb: 0.75,
		TargetRatio: 1.65, StoreDirtyProb: 0.25,
		TreeFanout: 16, TreeLevels: 5,
	},
	"srvmix": {
		Name: "srvmix", Class: Irregular, Kind: "srvmix",
		BaseCPI: 0.60, MemPer1000: 60, StoreFrac: 0.30, BlockingFrac: 0.60,
		InstrPerIBlock: 16, IFootprint: 2200, ISeqRun: 5,
		DataShared: true, SharedFrac: 0.10, PrivateWS: 150000, SharedWS: 4000,
		HotFrac: 0.04, HotProb: 0.80,
		TargetRatio: 1.50, StoreDirtyProb: 0.30,
		ChaseLen: 64, PhaseInstr: 200_000,
	},
}

// Names returns all benchmark names, commercial first, then SPEComp,
// then the irregular suite, each group alphabetical (the paper's
// presentation order uses apache, zeus, oltp, jbb, art, apsi, fma3d,
// mgrid; PaperOrder gives that exact order, IrregularOrder the
// irregular suite's).
func Names() []string {
	var names []string
	for n := range profiles {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := profiles[names[i]], profiles[names[j]]
		if pi.Class != pj.Class {
			return pi.Class < pj.Class
		}
		return names[i] < names[j]
	})
	return names
}

// PaperOrder lists the benchmarks in the order the paper's figures use.
func PaperOrder() []string {
	return []string{"apache", "zeus", "oltp", "jbb", "art", "apsi", "fma3d", "mgrid"}
}

// IrregularOrder lists the irregular suite in presentation order:
// pure pointer chasing first, then the structured traversals, then the
// phased service mix.
func IrregularOrder() []string {
	return []string{"ptrchase", "hashprobe", "btree", "srvmix"}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return p, nil
}

// MustByName is ByName for tests and examples with known-good names.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}
