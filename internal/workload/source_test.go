package workload

import (
	"reflect"
	"strings"
	"testing"

	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
)

func TestSourceRegistry(t *testing.T) {
	want := []string{"strided", "ptrchase", "hashprobe", "btree", "srvmix"}
	if got := SourceNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SourceNames() = %v, want %v", got, want)
	}
	if _, err := SourceByName(""); err != nil {
		t.Fatalf("empty name must resolve to the default: %v", err)
	}
	if !SourceRegistered(DefaultSource) || SourceRegistered("nosuch") {
		t.Error("SourceRegistered misclassifies")
	}
	_, err := SourceByName("nosuch")
	if err == nil || !strings.Contains(err.Error(), "strided") {
		t.Errorf("unknown-source error must list registered names, got %v", err)
	}
}

func TestSourceResolution(t *testing.T) {
	// "" resolves to the profile's own Kind; an explicit kind overrides
	// it in both directions.
	strided := MustNewSource("", MustByName("zeus"), 0, 1)
	if _, ok := strided.(*Generator); !ok {
		t.Errorf("zeus default source = %T, want *Generator", strided)
	}
	for _, name := range IrregularOrder() {
		p := MustByName(name)
		if p.Kind != name {
			t.Errorf("%s profile Kind = %q, want %q", name, p.Kind, name)
		}
		if _, ok := MustNewSource("", p, 0, 1).(*Generator); ok {
			t.Errorf("%s default source must not be the strided Generator", name)
		}
		if _, ok := MustNewSource("strided", p, 0, 1).(*Generator); !ok {
			t.Errorf("%s with forced strided kind must build a *Generator", name)
		}
	}
	if _, ok := MustNewSource("ptrchase", MustByName("zeus"), 0, 1).(*chaseSource); !ok {
		t.Error("forcing ptrchase onto zeus must build a chase source")
	}
	if _, err := NewSource("nosuch", MustByName("zeus"), 0, 1); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestIrregularSourceDeterminism(t *testing.T) {
	for _, name := range IrregularOrder() {
		p := MustByName(name)
		a := MustNewSource("", p, 1, 42)
		b := MustNewSource("", p, 1, 42)
		c := MustNewSource("", p, 1, 43)
		ra, rb, rc := make([]Ref, 4096), make([]Ref, 4096), make([]Ref, 4096)
		differ := false
		for i := 0; i < 4; i++ {
			a.NextN(ra)
			b.NextN(rb)
			c.NextN(rc)
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("%s: same (core, seed) diverged in batch %d", name, i)
			}
			if !reflect.DeepEqual(ra, rc) {
				differ = true
			}
		}
		if !differ {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
		ia, da, fa := a.Counts()
		ib, db, fb := b.Counts()
		if ia != ib || da != db || fa != fb {
			t.Errorf("%s: counters diverged: (%d,%d,%d) vs (%d,%d,%d)",
				name, ia, da, fa, ib, db, fb)
		}
		if ia == 0 || da == 0 || fa == 0 {
			t.Errorf("%s: degenerate counters (%d,%d,%d)", name, ia, da, fa)
		}
	}
}

func TestIrregularMemRateMatchesProfile(t *testing.T) {
	// The shared gap-sampling front half must keep the profile's data
	// reference rate. srvmix modulates the rate per phase by design, so
	// it only gets a loose band.
	for _, name := range IrregularOrder() {
		p := MustByName(name)
		src := MustNewSource("", p, 0, 7)
		refs := make([]Ref, 4096)
		for i := 0; i < 64; i++ {
			src.NextN(refs)
		}
		instrs, data, _ := src.Counts()
		rate := float64(data) / float64(instrs) * 1000
		tol := 0.15
		if name == "srvmix" {
			tol = 0.45
		}
		if rate < p.MemPer1000*(1-tol) || rate > p.MemPer1000*(1+tol) {
			t.Errorf("%s: %.1f data refs per 1000 instrs, profile says %.1f",
				name, rate, p.MemPer1000)
		}
	}
}

func TestChaseStreamIsStrideFree(t *testing.T) {
	// The pointer chase must defeat stride detection: unit-stride
	// deltas between successive data references stay rare, yet the
	// walk revisits chains (addresses recur) so a correlation
	// prefetcher has something to learn.
	src := MustNewSource("", MustByName("ptrchase"), 0, 11)
	refs := make([]Ref, 65536)
	src.NextN(refs)
	var last cache.BlockAddr
	unit, data := 0, 0
	seen := map[cache.BlockAddr]int{}
	for i := range refs {
		if refs[i].Kind == coherence.IFetch {
			continue
		}
		data++
		if last != 0 && int64(refs[i].Addr)-int64(last) == 1 {
			unit++
		}
		last = refs[i].Addr
		seen[refs[i].Addr]++
	}
	if frac := float64(unit) / float64(data); frac > 0.05 {
		t.Errorf("unit-stride fraction %.3f; chase is stride-trainable", frac)
	}
	revisited := 0
	for _, n := range seen {
		if n > 1 {
			revisited++
		}
	}
	if frac := float64(revisited) / float64(len(seen)); frac < 0.10 {
		t.Errorf("only %.3f of touched blocks revisited; chains do not recur", frac)
	}
}

func TestServiceMixScanPhaseIsTrainable(t *testing.T) {
	// The heavy-load scan phase must emit long unit-stride runs — the
	// phased mix is what makes adaptive prefetching interesting here.
	src := MustNewSource("", MustByName("srvmix"), 0, 3)
	refs := make([]Ref, 4096)
	var last cache.BlockAddr
	maxRun, run := 0, 0
	for i := 0; i < 64; i++ {
		src.NextN(refs)
		for j := range refs {
			if refs[j].Kind == coherence.IFetch {
				continue
			}
			if last != 0 && int64(refs[j].Addr)-int64(last) == 1 {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
			last = refs[j].Addr
		}
	}
	if maxRun < 8 {
		t.Fatalf("longest unit-stride run %d; scan phase not trainable", maxRun)
	}
}

// checkRegions verifies every ref lies in a region the profile
// declares; it is shared with the fuzz targets.
func checkRegions(t *testing.T, p Profile, core int, refs []Ref) {
	t.Helper()
	priv := privateBase + cache.BlockAddr(core)*(privateSize+coreSkew)
	strm := streamBase + cache.BlockAddr(core)*(privateSize+coreSkew)
	if p.DataShared {
		priv, strm = privateBase, streamBase
	}
	for i := range refs {
		r := &refs[i]
		if r.Kind == coherence.IFetch {
			if r.Addr < codeBase || r.Addr >= codeBase+cache.BlockAddr(p.IFootprint) {
				t.Fatalf("ifetch addr %#x outside code region", uint64(r.Addr))
			}
			continue
		}
		inPriv := r.Addr >= priv && r.Addr < priv+cache.BlockAddr(p.PrivateWS)
		inShared := r.Addr >= sharedBase && r.Addr < sharedBase+cache.BlockAddr(p.SharedWS)
		inStream := p.StreamWS > 0 && r.Addr >= strm && r.Addr < strm+cache.BlockAddr(p.StreamWS)
		if !inPriv && !inShared && !inStream {
			t.Fatalf("data addr %#x outside declared regions (core %d)", uint64(r.Addr), core)
		}
	}
}

func TestSourceAddressRegions(t *testing.T) {
	// Every (benchmark, kind) pairing stays inside its declared address
	// regions — the deterministic companion of FuzzSourceRegions.
	refs := make([]Ref, 16384)
	for _, bench := range Names() {
		p := MustByName(bench)
		for _, kind := range SourceNames() {
			src := MustNewSource(kind, p, 2, 9)
			src.NextN(refs)
			checkRegions(t, p, 2, refs)
		}
	}
}
