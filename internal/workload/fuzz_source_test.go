package workload

import (
	"reflect"
	"testing"
)

// pickSource maps fuzz selectors onto a (profile, kind, core) triple,
// crossing every benchmark with every registered source kind.
func pickSource(benchSel, kindSel, coreSel uint8) (Profile, string, int) {
	names := Names()
	kinds := SourceNames()
	p := MustByName(names[int(benchSel)%len(names)])
	kind := kinds[int(kindSel)%len(kinds)]
	return p, kind, int(coreSel) % 8
}

// FuzzSourceRegions checks that every emitted address stays inside the
// regions the profile declares, for any (benchmark, kind, core, seed).
func FuzzSourceRegions(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), int64(1))
	f.Add(uint8(8), uint8(1), uint8(3), int64(-7))
	f.Add(uint8(11), uint8(4), uint8(7), int64(1<<40))
	f.Fuzz(func(t *testing.T, benchSel, kindSel, coreSel uint8, seed int64) {
		p, kind, core := pickSource(benchSel, kindSel, coreSel)
		src := MustNewSource(kind, p, core, seed)
		refs := make([]Ref, 4096)
		src.NextN(refs)
		checkRegions(t, p, core, refs)
	})
}

// FuzzSourceBatchEquivalence checks that NextN over arbitrary batch
// sizes equals N sequential Next calls, refs and counters both.
func FuzzSourceBatchEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), int64(1), uint8(17))
	f.Add(uint8(9), uint8(2), uint8(1), int64(99), uint8(1))
	f.Add(uint8(10), uint8(3), uint8(5), int64(-3), uint8(255))
	f.Fuzz(func(t *testing.T, benchSel, kindSel, coreSel uint8, seed int64, batchSel uint8) {
		p, kind, core := pickSource(benchSel, kindSel, coreSel)
		batched := MustNewSource(kind, p, core, seed)
		single := MustNewSource(kind, p, core, seed).(interface{ Next(*Ref) })

		const total = 2048
		got := make([]Ref, 0, total)
		batch := 1 + int(batchSel)
		buf := make([]Ref, batch)
		for len(got) < total {
			b := buf
			if rem := total - len(got); rem < len(b) {
				b = b[:rem]
			}
			if n := batched.NextN(b); n != len(b) {
				t.Fatalf("NextN returned %d, want %d", n, len(b))
			}
			got = append(got, b...)
		}
		want := make([]Ref, total)
		for i := range want {
			single.Next(&want[i])
		}
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ref %d: NextN %+v, Next %+v", i, got[i], want[i])
				}
			}
		}
		bi, bd, bf := batched.Counts()
		si, sd, sf := single.(RefSource).Counts()
		if bi != si || bd != sd || bf != sf {
			t.Fatalf("counters: NextN (%d,%d,%d), Next (%d,%d,%d)", bi, bd, bf, si, sd, sf)
		}
	})
}
