package workload

import (
	"math"
	"testing"
	"testing/quick"

	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
	"cmpsim/internal/fpc"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, name := range Names() {
		p := MustByName(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPaperOrderCoversAll(t *testing.T) {
	order := PaperOrder()
	irr := IrregularOrder()
	if len(order) != 8 || len(irr) != 4 || len(Names()) != len(order)+len(irr) {
		t.Fatalf("benchmark count: paper=%d irregular=%d names=%d",
			len(order), len(irr), len(Names()))
	}
	for _, n := range append(append([]string(nil), order...), irr...) {
		if _, err := ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestClassSplit(t *testing.T) {
	want := map[string]Class{
		"apache": Commercial, "zeus": Commercial, "oltp": Commercial, "jbb": Commercial,
		"art": SPEComp, "apsi": SPEComp, "fma3d": SPEComp, "mgrid": SPEComp,
		"ptrchase": Irregular, "hashprobe": Irregular, "btree": Irregular, "srvmix": Irregular,
	}
	for n, c := range want {
		if got := MustByName(n).Class; got != c {
			t.Errorf("%s class = %v, want %v", n, got, c)
		}
	}
	if Commercial.String() != "commercial" || SPEComp.String() != "SPEComp" ||
		Irregular.String() != "irregular" {
		t.Error("class strings")
	}
}

func TestCalibrationHitsTargetRatios(t *testing.T) {
	// The calibrated data model must reproduce each benchmark's Table 3
	// compression ratio within tolerance.
	for _, name := range PaperOrder() {
		p := MustByName(name)
		d := NewDataModel(p, 42)
		got := d.PackedRatio(2048)
		if math.Abs(got-p.TargetRatio) > 0.06 {
			t.Errorf("%s: calibrated packed ratio %.3f, target %.3f (mean segs %.2f)",
				name, got, p.TargetRatio, d.MeanSegs(512))
		}
	}
}

func TestDataModelDeterminism(t *testing.T) {
	p := MustByName("apache")
	d1 := NewDataModel(p, 7)
	d2 := NewDataModel(p, 7)
	for a := cache.BlockAddr(0); a < 64; a++ {
		if d1.SizeOf(a) != d2.SizeOf(a) {
			t.Fatalf("block %d sizes differ", a)
		}
	}
	l1, l2 := d1.Line(5), d2.Line(5)
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("line contents differ across identical models")
		}
	}
}

func TestDataModelSeedsDiffer(t *testing.T) {
	p := MustByName("apache")
	d1 := NewDataModel(p, 1)
	d2 := NewDataModel(p, 2)
	same := 0
	for a := cache.BlockAddr(0); a < 128; a++ {
		if d1.SizeOf(a) == d2.SizeOf(a) {
			same++
		}
	}
	if same == 128 {
		t.Fatal("different seeds produced identical size fields")
	}
}

func TestSizeOfMatchesFPCOnLine(t *testing.T) {
	p := MustByName("oltp")
	d := NewDataModel(p, 3)
	for a := cache.BlockAddr(0); a < 32; a++ {
		line := d.Line(a)
		if got, want := d.SizeOf(a), uint8(fpc.CompressedSizeSegments(line)); got != want {
			t.Fatalf("block %d: SizeOf=%d, fpc=%d", a, got, want)
		}
	}
}

func TestDirtyBumpsVersion(t *testing.T) {
	p := MustByName("jbb")
	d := NewDataModel(p, 9)
	a := cache.BlockAddr(123)
	before := d.Line(a)
	d.Dirty(a)
	after := d.Line(a)
	differ := false
	for i := range before {
		if before[i] != after[i] {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("Dirty must change block contents")
	}
	// SizeOf must reflect the new version.
	if got, want := d.SizeOf(a), uint8(fpc.CompressedSizeSegments(after)); got != want {
		t.Fatalf("post-dirty SizeOf=%d, want %d", got, want)
	}
}

func TestSPECompLessCompressibleThanCommercial(t *testing.T) {
	comm := NewDataModel(MustByName("jbb"), 5).MeanSegs(256)
	sci := NewDataModel(MustByName("apsi"), 5).MeanSegs(256)
	if comm >= sci {
		t.Fatalf("jbb mean segs %.2f should be below apsi %.2f", comm, sci)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := MustByName("zeus")
	g1 := NewGenerator(p, 2, 11)
	g2 := NewGenerator(p, 2, 11)
	var r1, r2 Ref
	for i := 0; i < 2000; i++ {
		g1.Next(&r1)
		g2.Next(&r2)
		if r1 != r2 {
			t.Fatalf("ref %d differs: %+v vs %+v", i, r1, r2)
		}
	}
}

func TestGeneratorCoresDiffer(t *testing.T) {
	p := MustByName("zeus")
	g1 := NewGenerator(p, 0, 11)
	g2 := NewGenerator(p, 1, 11)
	var r1, r2 Ref
	diff := false
	for i := 0; i < 100; i++ {
		g1.Next(&r1)
		g2.Next(&r2)
		if r1 != r2 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different cores produced identical streams")
	}
}

func TestGeneratorMixMatchesProfile(t *testing.T) {
	p := MustByName("apache")
	g := NewGenerator(p, 0, 42)
	var r Ref
	var data, ifetch, stores, loads, blocking uint64
	for g.Instructions < 2_000_000 {
		g.Next(&r)
		switch r.Kind {
		case coherence.IFetch:
			ifetch++
		case coherence.Store:
			data++
			stores++
		case coherence.Load:
			data++
			loads++
			if r.Blocking {
				blocking++
			}
		}
	}
	per1000 := float64(data) / float64(g.Instructions) * 1000
	if math.Abs(per1000-p.MemPer1000) > p.MemPer1000*0.1 {
		t.Errorf("data refs per 1000 = %.1f, want ≈%.1f", per1000, p.MemPer1000)
	}
	storeFrac := float64(stores) / float64(data)
	if math.Abs(storeFrac-p.StoreFrac) > 0.05 {
		t.Errorf("store frac = %.3f, want ≈%.2f", storeFrac, p.StoreFrac)
	}
	blockFrac := float64(blocking) / float64(loads)
	if math.Abs(blockFrac-p.BlockingFrac) > 0.05 {
		t.Errorf("blocking frac = %.3f, want ≈%.2f", blockFrac, p.BlockingFrac)
	}
	// One I-block fetch per InstrPerIBlock instructions.
	wantIF := float64(g.Instructions) / float64(p.InstrPerIBlock)
	if math.Abs(float64(ifetch)-wantIF) > wantIF*0.05 {
		t.Errorf("ifetches = %d, want ≈%.0f", ifetch, wantIF)
	}
}

func TestGeneratorAddressRegions(t *testing.T) {
	p := MustByName("oltp")
	g := NewGenerator(p, 3, 1)
	var r Ref
	priv := privateBase + 3*(privateSize+coreSkew)
	if p.DataShared {
		priv = privateBase
	}
	for i := 0; i < 50_000; i++ {
		g.Next(&r)
		switch r.Kind {
		case coherence.IFetch:
			if r.Addr < codeBase || r.Addr >= codeBase+cache.BlockAddr(p.IFootprint) {
				t.Fatalf("ifetch addr %#x outside code region", uint64(r.Addr))
			}
		default:
			inPriv := r.Addr >= priv && r.Addr < priv+cache.BlockAddr(p.PrivateWS)
			inShared := r.Addr >= sharedBase && r.Addr < sharedBase+cache.BlockAddr(p.SharedWS)
			inStream := p.StreamWS > 0 && r.Addr >= streamBase &&
				r.Addr < streamBase+cache.BlockAddr(p.StreamWS)
			if !inPriv && !inShared && !inStream {
				t.Fatalf("data addr %#x outside regions", uint64(r.Addr))
			}
		}
	}
}

func TestStridedRunsAreTrainable(t *testing.T) {
	// With StridedFrac 1.0 the generated misses must contain runs of at
	// least 4 consecutive same-stride addresses per stream.
	p := MustByName("apsi")
	p.StridedFrac = 1.0
	p.SharedFrac = 0
	p.Streams = 1
	g := NewGenerator(p, 0, 5)
	var r Ref
	var last cache.BlockAddr
	runLen := 0
	maxRun := 0
	for i := 0; i < 20_000; i++ {
		g.Next(&r)
		if r.Kind == coherence.IFetch {
			continue
		}
		if last != 0 && int64(r.Addr)-int64(last) == 1 {
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
		} else {
			runLen = 0
		}
		last = r.Addr
	}
	if maxRun < 8 {
		t.Fatalf("longest unit-stride run %d; streams are not trainable", maxRun)
	}
}

func TestRatioForMeanSegsBounds(t *testing.T) {
	if RatioForMeanSegs(8) != 1 {
		t.Fatal("mean 8 segs must give ratio 1")
	}
	if RatioForMeanSegs(4) != 2 {
		t.Fatal("mean 4 segs must cap at ratio 2")
	}
	if RatioForMeanSegs(0) != 2 {
		t.Fatal("degenerate mean must cap at 2")
	}
}

// Property: CalibrateKnob is monotone — higher targets need higher knobs.
func TestCalibrationMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		k1 := CalibrateKnob(1.1, uint64(seed))
		k2 := CalibrateKnob(1.5, uint64(seed))
		k3 := CalibrateKnob(1.9, uint64(seed))
		return k1 <= k2 && k2 <= k3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGapSamplingNonNegative(t *testing.T) {
	p := MustByName("fma3d")
	g := NewGenerator(p, 0, 2)
	var r Ref
	for i := 0; i < 10_000; i++ {
		g.Next(&r)
		if int32(r.Gap) < 0 {
			t.Fatal("negative gap")
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(MustByName("apache"), 0, 1)
	var r Ref
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&r)
	}
}

func BenchmarkSizeOfCold(b *testing.B) {
	d := NewDataModel(MustByName("jbb"), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SizeOf(cache.BlockAddr(i))
	}
}
