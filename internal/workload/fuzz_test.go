package workload

import (
	"bytes"
	"io"
	"testing"

	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
)

// kindOf folds an arbitrary byte into a valid reference kind.
func kindOf(k uint8) coherence.Kind { return coherence.Kind(k % 3) }

func blockAddr(a uint64) cache.BlockAddr { return cache.BlockAddr(a) }

// FuzzTraceReader feeds arbitrary byte streams to the trace parser: it
// must reject garbage with ErrTraceFormat-wrapped errors (or end with
// io.EOF), never panic, and never loop forever.
func FuzzTraceReader(f *testing.F) {
	// Seed corpus: a genuine recorded trace, a truncated one, corrupted
	// magic/version, and a bare header.
	p, err := ByName("zeus")
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := Record(&valid, p, 0, 1, 200); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add(valid.Bytes()[:7])
	bad := append([]byte{}, valid.Bytes()...)
	bad[0] = 'X'
	f.Add(bad)
	ver := append([]byte{}, valid.Bytes()...)
	ver[4] = 0xEE
	f.Add(ver)
	f.Add([]byte("CMPT\x01\x04zeus"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var r Ref
		// A reader can produce at most one record per input byte, so this
		// bound only guards against a non-advancing parser loop.
		for i := 0; i <= len(data); i++ {
			if err := tr.Next(&r); err != nil {
				if err != io.EOF && tr.Count() == 0 && len(data) > 64 {
					// Malformed mid-stream errors are expected; nothing to
					// assert beyond "no panic".
					_ = err
				}
				return
			}
		}
		t.Fatalf("parser produced more records than input bytes (%d)", len(data))
	})
}

// FuzzTraceRoundTrip writes fuzzer-chosen references and replays them:
// the decoded stream must match what was written.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint32(3), uint8(0), true, uint64(0x1000), uint64(0x1040))
	f.Add(uint32(0), uint8(2), false, uint64(1<<40), uint64(0))

	f.Fuzz(func(t *testing.T, gap uint32, kind uint8, blocking bool, a1, a2 uint64) {
		refs := []Ref{
			{Gap: gap, Kind: kindOf(kind), Blocking: blocking, Addr: blockAddr(a1)},
			{Gap: gap / 2, Kind: kindOf(kind + 1), Blocking: !blocking, Addr: blockAddr(a2)},
		}
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range refs {
			if err := tw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		tr, err := NewTraceReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range refs {
			var got Ref
			if err := tr.Next(&got); err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d: got %+v, want %+v", i, got, want)
			}
		}
		if err := tr.Next(&Ref{}); err != io.EOF {
			t.Fatalf("trailing read: %v, want EOF", err)
		}
	})
}
