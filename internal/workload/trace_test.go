package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
)

func TestTraceRoundTrip(t *testing.T) {
	p := MustByName("zeus")
	var buf bytes.Buffer
	const n = 5000
	if err := Record(&buf, p, 0, 7, n); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Benchmark != "zeus" {
		t.Fatalf("benchmark = %q", tr.Benchmark)
	}
	// Replay must equal the generator's output exactly.
	g := NewGenerator(p, 0, 7)
	var want, got Ref
	for i := 0; i < n; i++ {
		g.Next(&want)
		if err := tr.Next(&got); err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
		if want != got {
			t.Fatalf("ref %d: got %+v want %+v", i, got, want)
		}
	}
	if err := tr.Next(&got); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if tr.Count() != n {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestTraceCompactness(t *testing.T) {
	p := MustByName("mgrid") // strided: deltas tiny
	var buf bytes.Buffer
	const n = 10000
	if err := Record(&buf, p, 0, 1, n); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()) / n
	if perRef > 8 {
		t.Fatalf("trace costs %.1f bytes/ref; expected compact encoding", perRef)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"CMPT\x09\x04zeus", // bad version
	}
	for i, c := range cases {
		if _, err := NewTraceReader(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Truncated record after a valid header.
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	tw.Write(Ref{Gap: 3, Kind: coherence.Load, Addr: 100})
	tw.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	tr, err := NewTraceReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var r Ref
	if err := tr.Next(&r); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestTraceLongBenchmarkName(t *testing.T) {
	if _, err := NewTraceWriter(io.Discard, strings.Repeat("x", 300)); err == nil {
		t.Fatal("overlong name accepted")
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceArbitraryRefsProperty(t *testing.T) {
	f := func(gaps []uint16, addrs []uint32, kinds []uint8) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		var refs []Ref
		for i := 0; i < n; i++ {
			refs = append(refs, Ref{
				Gap:      uint32(gaps[i]),
				Kind:     coherence.Kind(kinds[i] % 3),
				Addr:     cache.BlockAddr(addrs[i]),
				Blocking: kinds[i]&8 != 0,
			})
		}
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf, "prop")
		if err != nil {
			return false
		}
		for _, r := range refs {
			if tw.Write(r) != nil {
				return false
			}
		}
		tw.Flush()
		tr, err := NewTraceReader(&buf)
		if err != nil {
			return false
		}
		var got Ref
		for _, want := range refs {
			if tr.Next(&got) != nil || got != want {
				return false
			}
		}
		var r Ref
		return tr.Next(&r) == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
