package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
)

// Trace capture and replay. A trace file stores one core's reference
// stream in a compact varint format so synthetic workloads can be
// frozen, inspected, diffed across versions, or replayed without the
// generator. Format:
//
//	header:  magic "CMPT" | version u8 | benchmark name (u8 len + bytes)
//	record:  gap varint | kind u8 (bit 0-1 kind, bit 2 blocking) |
//	         addr delta zig-zag varint (vs previous address)
//
// Address deltas are zig-zag encoded because strided streams produce
// tiny deltas; a typical trace costs ~4 bytes per reference.

const (
	traceMagic   = "CMPT"
	traceVersion = 1
)

var (
	// ErrTraceFormat reports a malformed trace stream.
	ErrTraceFormat = errors.New("workload: malformed trace")
)

// TraceWriter streams Refs to an io.Writer.
type TraceWriter struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
	buf      [2 * binary.MaxVarintLen64]byte
}

// NewTraceWriter writes the header and returns a writer. Call Flush
// when done.
func NewTraceWriter(w io.Writer, benchmark string) (*TraceWriter, error) {
	if len(benchmark) > 255 {
		return nil, fmt.Errorf("workload: benchmark name too long")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(len(benchmark))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(benchmark); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw}, nil
}

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// Write appends one reference.
func (t *TraceWriter) Write(r Ref) error {
	n := binary.PutUvarint(t.buf[:], uint64(r.Gap))
	kind := byte(r.Kind) & 0x3
	if r.Blocking {
		kind |= 4
	}
	t.buf[n] = kind
	n++
	delta := int64(uint64(r.Addr)) - int64(t.prevAddr)
	n += binary.PutUvarint(t.buf[n:], zigzag(delta))
	t.prevAddr = uint64(r.Addr)
	t.count++
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Count returns the references written so far.
func (t *TraceWriter) Count() uint64 { return t.count }

// Flush drains buffered output.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// TraceReader replays a trace as a reference source.
type TraceReader struct {
	r         *bufio.Reader
	Benchmark string
	prevAddr  uint64
	count     uint64
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTraceFormat, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrTraceFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil || ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrTraceFormat, ver)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTraceFormat, err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTraceFormat, err)
	}
	return &TraceReader{r: br, Benchmark: string(name)}, nil
}

// Next reads one reference; io.EOF ends the trace cleanly.
func (t *TraceReader) Next(r *Ref) error {
	gap, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: %v", ErrTraceFormat, err)
	}
	kind, err := t.r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: truncated record", ErrTraceFormat)
	}
	dz, err := binary.ReadUvarint(t.r)
	if err != nil {
		return fmt.Errorf("%w: truncated record", ErrTraceFormat)
	}
	if kind&0x3 > uint8(coherence.IFetch) {
		return fmt.Errorf("%w: bad kind %d", ErrTraceFormat, kind)
	}
	addr := uint64(int64(t.prevAddr) + unzigzag(dz))
	t.prevAddr = addr
	t.count++
	r.Gap = uint32(gap)
	r.Kind = coherence.Kind(kind & 0x3)
	r.Blocking = kind&4 != 0
	r.Addr = cache.BlockAddr(addr)
	return nil
}

// NextN fills refs with up to len(refs) records and returns the number
// read. A clean end of trace yields (n, io.EOF) with n possibly
// non-zero; any other error reports the record that failed.
func (t *TraceReader) NextN(refs []Ref) (int, error) {
	for i := range refs {
		if err := t.Next(&refs[i]); err != nil {
			return i, err
		}
	}
	return len(refs), nil
}

// Count returns the references read so far.
func (t *TraceReader) Count() uint64 { return t.count }

// Record captures n references from the profile's own reference source
// into w.
func Record(w io.Writer, p Profile, core int, seed int64, n int) error {
	return RecordSource(w, "", p, core, seed, n)
}

// RecordSource captures n references from a reference source of the
// given kind ("" = the profile's own Kind) into w.
func RecordSource(w io.Writer, kind string, p Profile, core int, seed int64, n int) error {
	src, err := NewSource(kind, p, core, seed)
	if err != nil {
		return err
	}
	tw, err := NewTraceWriter(w, p.Name)
	if err != nil {
		return err
	}
	refs := make([]Ref, 256)
	for n > 0 {
		batch := refs
		if n < len(batch) {
			batch = batch[:n]
		}
		src.NextN(batch)
		for i := range batch {
			if err := tw.Write(batch[i]); err != nil {
				return err
			}
		}
		n -= len(batch)
	}
	return tw.Flush()
}
