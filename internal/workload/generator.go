package workload

import (
	"math/rand"

	"cmpsim/internal/cache"
	"cmpsim/internal/coherence"
)

// Address-space layout, in block addresses. Code is shared by all cores
// (server processes share text pages); each core has a private data
// region; one region is shared read-write.
// Region bases and the per-core stride are deliberately not multiples
// of any cache's set count (coreSkew is odd): naturally-aligned bases
// would map every region — and every core's hot set — onto the same
// cache sets, a pathological conflict pattern real address spaces do
// not exhibit.
const (
	codeBase    cache.BlockAddr = 0x0100_0C35
	privateBase cache.BlockAddr = 0x0200_0000
	privateSize cache.BlockAddr = 0x0040_0000 // per-core region stride
	coreSkew    cache.BlockAddr = 4099        // de-aliases per-core regions
	sharedBase  cache.BlockAddr = 0x0800_0AAB
	streamBase  cache.BlockAddr = 0x1000_0AB1
)

// Ref is one generated event: Gap non-memory instructions retire, then
// the core performs the described reference. IFetch refs model the
// instruction stream moving to a new code block.
type Ref struct {
	Gap      uint32
	Kind     coherence.Kind
	Addr     cache.BlockAddr
	Blocking bool // load with a near dependent: the core stalls on a miss
}

// stream is one active strided sequence.
type stream struct {
	next      cache.BlockAddr
	stride    int64
	remaining int
}

// Generator produces core coreID's reference stream for one benchmark.
type Generator struct {
	p    Profile
	core int
	rng  *rand.Rand

	// Instruction stream state.
	iBlock     cache.BlockAddr // current code block (offset within footprint)
	iRun       int             // sequential blocks left before a branch away
	instrInBlk int             // instructions retired in the current block

	// Data stream state.
	streams   []stream
	gapData   int // instructions until the next data reference
	hotSpan   cache.BlockAddr
	privBase  cache.BlockAddr
	strmBase  cache.BlockAddr
	strmWS    int
	burstLeft int     // strided refs remaining in the current burst
	burstIdx  int     // stream the burst walks
	pStrided  float64 // per-draw probability of entering a burst

	// Counters.
	Instructions uint64
	DataRefs     uint64
	IFetches     uint64
}

// NewGenerator builds the per-core reference generator. Generators for
// different (core, seed) pairs are independent and deterministic.
func NewGenerator(p Profile, core int, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		p:        p,
		core:     core,
		rng:      rand.New(rand.NewSource(seed ^ int64(splitmix64(uint64(core)+0xABCD)))),
		privBase: privateBase + cache.BlockAddr(core)*(privateSize+coreSkew),
	}
	if p.DataShared {
		g.privBase = privateBase // one footprint for all cores
	}
	g.strmBase, g.strmWS = g.privBase, p.PrivateWS
	if p.StreamWS > 0 {
		g.strmWS = p.StreamWS
		if p.DataShared {
			g.strmBase = streamBase
		} else {
			g.strmBase = streamBase + cache.BlockAddr(core)*(privateSize+coreSkew)
		}
	}
	g.hotSpan = cache.BlockAddr(float64(p.PrivateWS) * p.HotFrac)
	if g.hotSpan < 1 {
		g.hotSpan = 1
	}
	g.iBlock = cache.BlockAddr(g.rng.Intn(p.IFootprint))
	g.iRun = p.ISeqRun
	for i := 0; i < p.Streams; i++ {
		g.streams = append(g.streams, g.seedStream())
	}
	g.pStrided = p.StridedFrac
	if p.BurstLen > 1 {
		g.pStrided = p.StridedFrac / float64(p.BurstLen)
	}
	g.gapData = g.sampleGap()
	return g
}

// sampleGap draws the instruction distance to the next data reference;
// inside a strided burst the gap is the short inner-loop distance.
func (g *Generator) sampleGap() int {
	if g.burstLeft > 0 {
		return int(g.rng.ExpFloat64()*g.p.BurstGap + 0.5)
	}
	mean := 1000 / g.p.MemPer1000
	return int(g.rng.ExpFloat64()*mean + 0.5)
}

// seedStream starts a strided run at a random spot in the stream region.
func (g *Generator) seedStream() stream {
	st := g.p.Strides[g.rng.Intn(len(g.p.Strides))]
	length := g.p.StreamLen/2 + g.rng.Intn(g.p.StreamLen) // ±50% jitter
	if length < 2 {
		length = 2
	}
	// Keep room so the run stays inside the region.
	span := int64(g.strmWS) - st*int64(length)
	if span < 1 {
		span = 1
	}
	start := g.strmBase + cache.BlockAddr(g.rng.Int63n(span))
	if st < 0 {
		start += cache.BlockAddr(-st * int64(length))
	}
	return stream{next: start, stride: st, remaining: length}
}

// nextIBlock advances the instruction stream to its next code block.
func (g *Generator) nextIBlock() cache.BlockAddr {
	if g.iRun > 0 {
		g.iRun--
		g.iBlock++
		if g.iBlock >= cache.BlockAddr(g.p.IFootprint) {
			g.iBlock = 0
		}
	} else {
		g.iBlock = cache.BlockAddr(g.rng.Intn(g.p.IFootprint))
		g.iRun = g.p.ISeqRun
	}
	return codeBase + g.iBlock
}

// strideTouch emits the next block of stream i.
func (g *Generator) strideTouch(i int, r *Ref) {
	s := &g.streams[i]
	r.Addr = s.next
	s.next = cache.BlockAddr(int64(s.next) + s.stride)
	s.remaining--
	if s.remaining <= 0 {
		*s = g.seedStream()
	}
}

// dataRef produces the next data reference address and kind.
func (g *Generator) dataRef(r *Ref) {
	if g.burstLeft > 0 {
		g.burstLeft--
		g.strideTouch(g.burstIdx, r)
		g.finishRef(r)
		return
	}
	x := g.rng.Float64()
	switch {
	case g.p.StridedFrac > 0 && x < g.pStrided:
		g.burstIdx = g.rng.Intn(len(g.streams))
		if g.p.BurstLen > 1 {
			g.burstLeft = g.p.BurstLen - 1
		}
		g.strideTouch(g.burstIdx, r)
	case x < g.pStrided+g.p.SharedFrac:
		r.Addr = sharedBase + cache.BlockAddr(g.rng.Intn(g.p.SharedWS))
	default:
		// Irregular private reference with hot/cold locality.
		if g.rng.Float64() < g.p.HotProb {
			r.Addr = g.privBase + cache.BlockAddr(g.rng.Int63n(int64(g.hotSpan)))
		} else {
			r.Addr = g.privBase + cache.BlockAddr(g.rng.Intn(g.p.PrivateWS))
		}
	}
	g.finishRef(r)
}

// finishRef assigns the reference kind and dependence.
func (g *Generator) finishRef(r *Ref) {
	if g.rng.Float64() < g.p.StoreFrac {
		r.Kind = coherence.Store
		r.Blocking = false
	} else {
		r.Kind = coherence.Load
		r.Blocking = g.rng.Float64() < g.p.BlockingFrac
	}
}

// NextN fills refs with the next len(refs) references in program order
// and returns len(refs); the synthetic stream never ends. Batch
// generation amortizes per-reference call overhead and lets the issue
// loop hand whole windows to a shard worker (sim.Config.Shards).
func (g *Generator) NextN(refs []Ref) int {
	for i := range refs {
		g.Next(&refs[i])
	}
	return len(refs)
}

// Next fills r with the next reference in program order, interleaving
// instruction-block fetches with data references.
func (g *Generator) Next(r *Ref) {
	dI := g.p.InstrPerIBlock - g.instrInBlk
	if g.gapData < dI {
		// Data reference comes first.
		adv := g.gapData
		g.instrInBlk += adv
		g.gapData = g.sampleGap()
		g.Instructions += uint64(adv)
		g.DataRefs++
		r.Gap = uint32(adv)
		g.dataRef(r)
		return
	}
	// Instruction stream crosses into the next code block.
	adv := dI
	g.gapData -= adv
	g.instrInBlk = 0
	g.Instructions += uint64(adv)
	g.IFetches++
	r.Gap = uint32(adv)
	r.Kind = coherence.IFetch
	r.Addr = g.nextIBlock()
	r.Blocking = true // the front end stalls on an I-miss
}

// Profile returns the generator's benchmark profile.
func (g *Generator) Profile() Profile { return g.p }
