package audit

import (
	"errors"
	"strings"
	"testing"

	"cmpsim/internal/cache"
	"cmpsim/internal/fpc"
	"cmpsim/internal/timing"
)

func TestLevelStringValidEnabled(t *testing.T) {
	cases := []struct {
		l       Level
		s       string
		valid   bool
		enabled bool
	}{
		{Off, "off", true, false},
		{Invariants, "invariants", true, true},
		{Shadow, "shadow", true, true},
		{Level(99), "Level(99)", false, false},
	}
	for _, c := range cases {
		if c.l.String() != c.s || c.l.Valid() != c.valid || c.l.Enabled() != c.enabled {
			t.Errorf("level %d: String=%q Valid=%v Enabled=%v, want %q %v %v",
				c.l, c.l.String(), c.l.Valid(), c.l.Enabled(), c.s, c.valid, c.enabled)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"": Off, "off": Off, "OFF": Off, " invariants ": Invariants,
		"shadow": Shadow, "Shadow": Shadow,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"bogus", "1", "on", "full"} {
		if _, err := ParseLevel(bad); err == nil {
			t.Errorf("ParseLevel(%q): want error", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "invariants")
	if got := FromEnv(); got != Invariants {
		t.Fatalf("FromEnv = %v, want Invariants", got)
	}
	t.Setenv(EnvVar, "nonsense") // unparseable means Off, not a crash
	if got := FromEnv(); got != Off {
		t.Fatalf("FromEnv(nonsense) = %v, want Off", got)
	}
	t.Setenv(EnvVar, "")
	if got := FromEnv(); got != Off {
		t.Fatalf("FromEnv(unset) = %v, want Off", got)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Invariant: "msi", Cycle: timing.FromIntCycles(1234), Core: 2, Set: 7, Addr: 0xbeef, Detail: "two owners"}
	msg := v.Error()
	for _, want := range []string{"msi", "1234", "core 2", "set 7", "0xbeef", "two owners"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q: missing %q", msg, want)
		}
	}
	// Unattributable fields stay out of the message.
	bare := (&Violation{Invariant: "flit-conservation", Cycle: 5, Core: -1, Set: -1}).Error()
	if strings.Contains(bare, "core") || strings.Contains(bare, "set") || strings.Contains(bare, "addr") {
		t.Errorf("bare violation leaked unset fields: %q", bare)
	}
}

func TestNewRejectsBadConfigurations(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("invalid level", func() { New(Level(42), nil) })
	mustPanic("shadow without data", func() { New(Shadow, nil) })
	if a := New(Invariants, nil); a.Level() != Invariants {
		t.Fatal("invariants level should not need a LineSource")
	}
}

// capture runs fn and returns the *Violation it panicked with (nil when
// it completed).
func capture(fn func()) (v *Violation) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if v, ok = r.(*Violation); !ok {
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

func TestCheckRaisesOnlyOnDetail(t *testing.T) {
	a := New(Invariants, nil)
	if v := capture(func() { a.Check("msi", 10, "") }); v != nil {
		t.Fatalf("empty detail raised %v", v)
	}
	v := capture(func() { a.Check("msi", 10, "stale sharer bit") })
	if v == nil || v.Invariant != "msi" || v.Cycle != 10 || !errors.As(error(v), new(*Violation)) {
		t.Fatalf("violation = %+v", v)
	}
}

// patternSource serves deterministic line contents keyed by address.
type patternSource struct {
	lines map[cache.BlockAddr][cache.LineBytes]byte
}

func (p *patternSource) FillLine(a cache.BlockAddr, dst []byte) {
	ln := p.lines[a]
	copy(dst, ln[:])
}

func (p *patternSource) set(a cache.BlockAddr, fill func(i int) byte) uint8 {
	var ln [cache.LineBytes]byte
	for i := range ln {
		ln[i] = fill(i)
	}
	if p.lines == nil {
		p.lines = map[cache.BlockAddr][cache.LineBytes]byte{}
	}
	p.lines[a] = ln
	return uint8(fpc.CompressedSizeSegments(ln[:]))
}

func TestShadowValueModel(t *testing.T) {
	src := &patternSource{}
	a := New(Shadow, src)
	a.OnStore(1)
	a.OnStore(1)
	a.OnStore(2)
	if v := capture(func() { a.OnLoad(100, 0, 1, 2) }); v != nil {
		t.Fatalf("matching version raised %v", v)
	}
	v := capture(func() { a.OnLoad(100, 3, 1, 7) })
	if v == nil || v.Invariant != "shadow-value" || v.Core != 3 || v.Addr != 1 {
		t.Fatalf("version mismatch produced %+v", v)
	}
	// Sweep form: lowest mismatching address wins deterministically.
	v = capture(func() {
		a.CheckVersions(200, func(fn func(cache.BlockAddr, uint32)) {
			fn(9, 5)
			fn(2, 1) // matches the shadow model
			fn(4, 5)
		})
	})
	if v == nil || v.Invariant != "shadow-value" || v.Addr != 4 {
		t.Fatalf("CheckVersions produced %+v", v)
	}
}

func TestShadowFPCChecks(t *testing.T) {
	src := &patternSource{}
	a := New(Shadow, src)
	// Small per-word values: sign-extendable, so FPC compresses them.
	segs := src.set(7, func(i int) byte {
		if i%4 == 0 {
			return byte(i / 4)
		}
		return 0
	})
	if segs < 1 || segs >= cache.MaxSegs {
		t.Fatalf("test pattern should compress, got %d segs", segs)
	}

	// Correct size: no violation, size recorded for sweeps.
	if v := capture(func() { a.OnL2Data(10, 7, segs, true) }); v != nil {
		t.Fatalf("correct fill raised %v", v)
	}
	if got, ok := a.RecordedSize(7); !ok || got != segs {
		t.Fatalf("RecordedSize = %d, %v; want %d", got, ok, segs)
	}
	// Wrong memoized size on a compressed fill → shadow-fpc.
	if v := capture(func() { a.OnL2Data(11, 7, segs+1, true) }); v == nil || v.Invariant != "shadow-fpc" {
		t.Fatalf("wrong fill size produced %+v", v)
	}
	// Uncompressed L2: storedSegs is always MaxSegs; no size check, no memo.
	src.set(8, func(i int) byte { return byte(i) })
	if v := capture(func() { a.OnL2Data(12, 8, cache.MaxSegs, false) }); v != nil {
		t.Fatalf("uncompressed fill raised %v", v)
	}
	if _, ok := a.RecordedSize(8); ok {
		t.Fatal("uncompressed fill must not enter the size model")
	}
	// Writeback sized against current contents.
	if v := capture(func() { a.OnWriteback(13, 7, segs) }); v != nil {
		t.Fatalf("correct writeback raised %v", v)
	}
	if v := capture(func() { a.OnWriteback(14, 7, segs+2) }); v == nil || v.Invariant != "shadow-fpc" {
		t.Fatalf("wrong writeback size produced %+v", v)
	}
	if a.ShadowChecks == 0 {
		t.Fatal("ShadowChecks did not count")
	}
}

func TestCheckL2LineSweep(t *testing.T) {
	src := &patternSource{}
	a := New(Shadow, src)
	segs := src.set(3, func(i int) byte { return 0 })
	a.OnL2Data(1, 3, segs, true)
	ln := &cache.Line{Addr: 3, Valid: true, Segs: segs}
	if v := capture(func() { a.CheckL2Line(2, ln) }); v != nil {
		t.Fatalf("consistent line raised %v", v)
	}
	ln.Segs = segs + 1 // mutated outside the fill/resize protocol
	if v := capture(func() { a.CheckL2Line(3, ln) }); v == nil || v.Invariant != "shadow-l2-size" {
		t.Fatalf("mutated line produced %+v", v)
	}
	// Lines the model never saw (filled before warmup hooks) are skipped.
	if v := capture(func() { a.CheckL2Line(4, &cache.Line{Addr: 99, Valid: true, Segs: 1}) }); v != nil {
		t.Fatalf("unknown line raised %v", v)
	}
}

func TestLowLevelsAreFreeOfShadowState(t *testing.T) {
	a := New(Off, nil)
	a.OnStore(1)
	a.OnLoad(1, 0, 1, 42) // would mismatch if checked
	a.OnL2Data(1, 1, 3, true)
	a.OnWriteback(1, 1, 3)
	a.CheckL2Line(1, &cache.Line{Addr: 1, Valid: true, Segs: 5})
	a.CheckVersions(1, func(fn func(cache.BlockAddr, uint32)) { fn(1, 9) })
	if a.ShadowChecks != 0 {
		t.Fatal("Off level performed shadow checks")
	}
}
