// Package audit implements the tiered runtime self-checker for the
// simulator. A silent state-corruption bug in the compressed-cache
// bookkeeping, the MSI directory or the flit accounting produces
// plausible-but-wrong speedup numbers rather than a crash; the audit
// layer turns such corruption into a structured, attributable failure.
//
// Three levels (Config.CheckLevel in internal/sim):
//
//   - Off: no checking, zero overhead (the default).
//   - Invariants: structural sweeps at event boundaries — per-set
//     segment accounting, LRU/tag integrity, MSI inclusion and sharer
//     bits, MSHR (in-flight table) sanity, stream-table bounds and link
//     flit conservation.
//   - Shadow: additionally runs a tiny functional reference model
//     (address → last globally-ordered version, plus an FPC
//     encode/decode roundtrip on every compressed L2 fill, resize and
//     victim writeback) cross-checking every load and L2 readback.
//
// A violation panics with a *Violation carrying cycle, core, set,
// address, invariant name and a state dump. internal/sim recovers it
// into an error return, and internal/core classifies it as a
// ReasonInvariant point failure, so studies degrade to
// FAILED(invariant:...) cells instead of publishing bad data.
//
// The auditor is strictly read-only over simulator state: it owns its
// shadow maps and scratch buffers, consumes no randomness and never
// mutates caches, so enabling any level leaves metrics bit-identical.
package audit

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"cmpsim/internal/cache"
	"cmpsim/internal/codec"
	"cmpsim/internal/timing"
)

// Level selects how much runtime checking a simulation performs.
type Level uint8

// Check levels, in increasing strictness (and cost).
const (
	Off Level = iota
	Invariants
	Shadow
)

// String spells the level the way the -check flag accepts it.
func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Invariants:
		return "invariants"
	case Shadow:
		return "shadow"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Valid reports whether l is one of the three defined levels.
func (l Level) Valid() bool { return l <= Shadow }

// Enabled reports whether any checking is active.
func (l Level) Enabled() bool { return l > Off && l.Valid() }

// ParseLevel converts a -check flag value ("" means Off).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return Off, nil
	case "invariants":
		return Invariants, nil
	case "shadow":
		return Shadow, nil
	default:
		return Off, fmt.Errorf("audit: unknown check level %q (want off, invariants or shadow)", s)
	}
}

// EnvVar is the environment variable consulted by FromEnv (and through
// it by sim.NewConfig), letting CI force a check level onto every run
// without touching flags: CMPSIM_CHECK=shadow go test ./...
const EnvVar = "CMPSIM_CHECK"

// FromEnv returns the level requested by the CMPSIM_CHECK environment
// variable; unset or unparseable values mean Off (commands that take an
// explicit -check flag validate strictly instead).
func FromEnv() Level {
	l, err := ParseLevel(os.Getenv(EnvVar))
	if err != nil {
		return Off
	}
	return l
}

// Violation is the structured record of one failed invariant. It
// implements error and travels by panic from the check site to
// sim.Run's recover, then as a wrapped error through the PointError
// plumbing of internal/core.
type Violation struct {
	Invariant string      // invariant name (see the DESIGN.md catalog)
	Cycle     timing.Tick // core-clock tick of the failing check (max core Now)
	Core      int         // issuing core, or -1 when not attributable
	Set       int         // cache set, or -1 when not applicable
	Addr      uint64      // block address, or 0 when not applicable
	Detail    string      // state dump from the failing checker
}

// Error formats the full violation record.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: invariant %s violated at cycle %v", v.Invariant, v.Cycle)
	if v.Core >= 0 {
		fmt.Fprintf(&b, " (core %d)", v.Core)
	}
	if v.Set >= 0 {
		fmt.Fprintf(&b, " set %d", v.Set)
	}
	if v.Addr != 0 {
		fmt.Fprintf(&b, " addr %#x", v.Addr)
	}
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	return b.String()
}

// LineSource supplies current block contents for the shadow reference
// model; workload.DataModel implements it (FillLine is a pure function
// of its internal version map, so the auditor never perturbs it).
type LineSource interface {
	FillLine(a cache.BlockAddr, dst []byte)
}

// Auditor holds the shadow reference model and scratch buffers for one
// simulation run. It is not safe for concurrent use; each sim.System
// owns one.
type Auditor struct {
	level Level
	data  LineSource
	codec codec.Codec // sizes and roundtrips use the run's codec

	// Shadow value model: address → number of globally-ordered stores
	// observed via OnStore, cross-checked against the workload data
	// model's own version counter on every load.
	versions map[cache.BlockAddr]uint32
	// Shadow size model: address → segments recorded at the last L2
	// fill/resize, cross-checked against resident line state on sweeps.
	sizes map[cache.BlockAddr]uint8

	lineBuf [cache.LineBytes]byte
	decBuf  [cache.LineBytes]byte
	encBuf  []byte

	// Sweeps and ShadowChecks count completed check batches (test and
	// overhead-measurement support).
	Sweeps       uint64
	ShadowChecks uint64
}

// New builds an auditor for the given level checking against the
// default codec. data supplies block contents for the shadow model and
// may be nil below Shadow.
func New(level Level, data LineSource) *Auditor {
	return NewCodec(level, data, codec.Default())
}

// NewCodec builds an auditor whose shadow size checks and roundtrips
// use codec c — the same codec the simulation prices sizes with, or the
// "truth" comparison below would flag every fill.
func NewCodec(level Level, data LineSource, c codec.Codec) *Auditor {
	if !level.Valid() {
		panic(fmt.Sprintf("audit: invalid level %d", level))
	}
	a := &Auditor{level: level, data: data, codec: c}
	if level >= Shadow {
		if data == nil {
			panic("audit: shadow level requires a LineSource")
		}
		a.versions = make(map[cache.BlockAddr]uint32)
		a.sizes = make(map[cache.BlockAddr]uint8)
	}
	return a
}

// Level returns the active check level.
func (a *Auditor) Level() Level { return a.level }

// Fail raises a violation: it panics with a *Violation that sim.Run
// converts into an error return.
func (a *Auditor) Fail(invariant string, cycle timing.Tick, core, set int, addr cache.BlockAddr, detail string) {
	panic(&Violation{
		Invariant: invariant, Cycle: cycle, Core: core, Set: set,
		Addr: uint64(addr), Detail: detail,
	})
}

// Check raises a violation when a structural checker returned a
// non-empty detail string (the convention of the per-package
// CheckInvariants methods).
func (a *Auditor) Check(invariant string, cycle timing.Tick, detail string) {
	if detail != "" {
		a.Fail(invariant, cycle, -1, -1, 0, detail)
	}
}

// OnStore records one globally-ordered store to a in the shadow value
// model. Call it exactly where the simulator bumps the data model's
// version (workload.DataModel.Dirty).
func (a *Auditor) OnStore(addr cache.BlockAddr) {
	if a.level < Shadow {
		return
	}
	a.versions[addr]++
}

// OnLoad cross-checks one load (or ifetch/store read) against the
// shadow value model: the data model's version for addr must equal the
// store count the auditor observed. A mismatch means some path mutated
// block contents outside the globally-ordered store stream — the value
// a load returns would be wrong.
func (a *Auditor) OnLoad(cycle timing.Tick, core int, addr cache.BlockAddr, dataVersion uint32) {
	if a.level < Shadow {
		return
	}
	a.ShadowChecks++
	if want := a.versions[addr]; want != dataVersion {
		a.Fail("shadow-value", cycle, core, -1, addr,
			fmt.Sprintf("data model at version %d, shadow model at %d", dataVersion, want))
	}
}

// OnL2Data records a compressed-L2 fill or resize of addr at storedSegs
// and, at Shadow level, verifies the compression pipeline for the
// block's current contents: the codec's CompressedSizeSegments must
// equal storedSegs when the L2 stores compressed lines (exposing a
// corrupted size memo), and an encode/decode roundtrip must reproduce
// the line bit-exactly. (The invariant keeps its historical name
// shadow-fpc whatever the configured codec.)
func (a *Auditor) OnL2Data(cycle timing.Tick, addr cache.BlockAddr, storedSegs uint8, storesCompressed bool) {
	if a.level < Shadow {
		return
	}
	if storesCompressed {
		// The uncompressed L2 stores every line at MaxSegs regardless of
		// the reported compressed size, so the size model only applies to
		// compressed storage.
		a.sizes[addr] = storedSegs
	}
	a.ShadowChecks++
	a.data.FillLine(addr, a.lineBuf[:])
	truth := uint8(a.codec.CompressedSizeSegments(a.lineBuf[:]))
	if storesCompressed && truth != storedSegs {
		a.Fail("shadow-fpc", cycle, -1, -1, addr,
			fmt.Sprintf("L2 stored %d segments but contents compress to %d", storedSegs, truth))
	}
	a.roundTrip(cycle, addr, int(truth))
}

// OnWriteback cross-checks one off-chip victim writeback: the flit
// count the memory system was handed (sizeSegs, from the size memo)
// must match the block's current contents, which must also survive an
// FPC roundtrip.
func (a *Auditor) OnWriteback(cycle timing.Tick, addr cache.BlockAddr, sizeSegs uint8) {
	if a.level < Shadow {
		return
	}
	a.ShadowChecks++
	a.data.FillLine(addr, a.lineBuf[:])
	truth := uint8(a.codec.CompressedSizeSegments(a.lineBuf[:]))
	if truth != sizeSegs {
		a.Fail("shadow-fpc", cycle, -1, -1, addr,
			fmt.Sprintf("writeback sized at %d segments but contents compress to %d", sizeSegs, truth))
	}
	a.roundTrip(cycle, addr, int(truth))
}

// roundTrip verifies encode(line) → decode == line for the contents in
// lineBuf under the auditor's codec.
func (a *Auditor) roundTrip(cycle timing.Tick, addr cache.BlockAddr, segs int) {
	var err error
	a.encBuf, _ = a.codec.AppendEncode(a.encBuf[:0], a.lineBuf[:])
	if err = a.codec.DecodeInto(a.decBuf[:], a.encBuf, segs); err != nil {
		a.Fail("shadow-fpc", cycle, -1, -1, addr, fmt.Sprintf("decode failed: %v", err))
	}
	if !bytes.Equal(a.decBuf[:], a.lineBuf[:]) {
		a.Fail("shadow-fpc", cycle, -1, -1, addr,
			fmt.Sprintf("%s roundtrip did not reproduce the line", a.codec.Name()))
	}
}

// RecordedSize returns the segments recorded for addr at its last L2
// fill/resize (sweep support).
func (a *Auditor) RecordedSize(addr cache.BlockAddr) (uint8, bool) {
	s, ok := a.sizes[addr]
	return s, ok
}

// CheckL2Line verifies one resident L2 line against the shadow size
// model during a sweep: its stored segment count must still be what the
// last fill/resize recorded (anything else means the tag state was
// mutated outside the fill/resize protocol).
func (a *Auditor) CheckL2Line(cycle timing.Tick, ln *cache.Line) {
	if a.level < Shadow {
		return
	}
	if want, ok := a.sizes[ln.Addr]; ok && want != ln.Segs {
		a.Fail("shadow-l2-size", cycle, -1, -1, ln.Addr,
			fmt.Sprintf("resident line holds %d segments, last fill/resize recorded %d", ln.Segs, want))
	}
}

// CheckVersions sweeps the shadow value model against the data model's
// version reader (fn iterates every (addr, version) pair the data model
// holds). It reports the lowest mismatching address deterministically.
func (a *Auditor) CheckVersions(cycle timing.Tick, forEach func(func(cache.BlockAddr, uint32))) {
	if a.level < Shadow {
		return
	}
	var badAddr cache.BlockAddr
	var badData, badShadow uint32
	found := false
	forEach(func(addr cache.BlockAddr, v uint32) {
		if a.versions[addr] != v && (!found || addr < badAddr) {
			found = true
			badAddr, badData, badShadow = addr, v, a.versions[addr]
		}
	})
	if found {
		a.Fail("shadow-value", cycle, -1, -1, badAddr,
			fmt.Sprintf("data model at version %d, shadow model at %d", badData, badShadow))
	}
}
