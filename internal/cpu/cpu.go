// Package cpu models one out-of-order core's timing at the level that
// matters for the paper's memory-system study: instructions retire at a
// base rate (folding in pipeline width and branch behaviour), cache
// misses overlap up to the limits of the reorder buffer and the MSHRs
// (each processor can have up to 16 outstanding memory requests), and
// loads whose consumers are close stall the core until the data returns.
//
// The model is a bounded run-ahead sequencer: the core's clock advances
// as instructions retire; a non-blocking miss is recorded with its
// completion time and the core keeps executing until (a) the MSHRs are
// exhausted, or (b) the oldest outstanding miss is more than a reorder
// buffer's worth of instructions behind — in either case the clock jumps
// to that miss's completion. This reproduces the memory-level
// parallelism differences between commercial workloads (low MLP, many
// dependent loads) and scientific ones (high MLP, strided independent
// loads) that drive the paper's contention results.
//
// All core time is integer: the clock, stall accounting and miss
// completion times are timing.Tick values. BaseCPI converts to a
// per-instruction tick cost once, at New (timing.FromCycles rounding
// contract), so Advance is a pure integer multiply-add.
package cpu

import (
	"fmt"

	"cmpsim/internal/timing"
)

// Config parameterizes one core.
type Config struct {
	// BaseCPI is the cycles per instruction of the core when it never
	// misses beyond the L1s (pipeline width, branch costs folded in).
	// It is quantized to the tick grid once at New.
	BaseCPI float64
	// ROBWindow is the maximum instructions retired past the oldest
	// outstanding miss before the core must wait (paper: 128-entry ROB).
	ROBWindow int
	// MSHRs bounds outstanding memory requests (paper: 16 per core).
	MSHRs int
}

// DefaultConfig returns the paper's core parameters with a base CPI of
// 0.5 (a 4-wide machine sustaining IPC 2 on non-memory work).
func DefaultConfig() Config {
	return Config{BaseCPI: 0.5, ROBWindow: 128, MSHRs: 16}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.BaseCPI <= 0 {
		return fmt.Errorf("cpu: BaseCPI must be positive")
	}
	if timing.FromCycles(c.BaseCPI) <= 0 {
		return fmt.Errorf("cpu: BaseCPI %g below the tick resolution", c.BaseCPI)
	}
	if c.ROBWindow < 1 || c.MSHRs < 1 {
		return fmt.Errorf("cpu: ROBWindow and MSHRs must be at least 1")
	}
	return nil
}

// miss is an outstanding memory request.
type miss struct {
	done    timing.Tick // completion tick
	atInstr uint64      // retire count when issued
}

// Core is one processor's timing state.
type Core struct {
	cfg Config
	cpi timing.Tick // per-instruction retire cost (BaseCPI on the tick grid)

	// Now is the core's local clock.
	Now timing.Tick
	// Instrs is the retired instruction count.
	Instrs uint64

	outstanding []miss // ordered by issue

	// StallTicks accumulates time spent waiting on memory.
	StallTicks timing.Tick
}

// New builds a core; it panics on invalid configuration.
func New(cfg Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{cfg: cfg, cpi: timing.FromCycles(cfg.BaseCPI)}
}

// Advance retires n instructions of non-memory work, respecting the
// reorder-buffer bound on run-ahead past outstanding misses.
func (c *Core) Advance(n uint64) {
	c.Now += timing.Tick(n) * c.cpi
	c.Instrs += n
	c.retireCompleted()
	c.enforceROB()
}

// retireCompleted drops outstanding misses whose data has arrived.
func (c *Core) retireCompleted() {
	keep := c.outstanding[:0]
	for _, m := range c.outstanding {
		if m.done > c.Now {
			keep = append(keep, m)
		}
	}
	c.outstanding = keep
}

// waitFor advances the clock to t, accounting the stall.
func (c *Core) waitFor(t timing.Tick) {
	if t > c.Now {
		c.StallTicks += t - c.Now
		c.Now = t
	}
}

// oldest returns the index of the outstanding miss issued earliest.
func (c *Core) oldest() int {
	if len(c.outstanding) == 0 {
		return -1
	}
	return 0 // issue order is append order
}

// IssueMiss records a memory request completing at done. If blocking is
// true (a load with a near dependent consumer) the core stalls until the
// data returns. Otherwise the core continues, subject to the MSHR and
// ROB-window limits. Callers obtain done from the memory-system timing
// model using the core's current Now.
func (c *Core) IssueMiss(done timing.Tick, blocking bool) {
	c.retireCompleted()
	if blocking {
		c.waitFor(done)
		return
	}
	// MSHR limit: wait for the earliest completion to free an entry.
	for len(c.outstanding) >= c.cfg.MSHRs {
		c.waitFor(c.earliestDone())
		c.retireCompleted()
	}
	c.outstanding = append(c.outstanding, miss{done: done, atInstr: c.Instrs})
	c.enforceROB()
}

// earliestDone returns the soonest outstanding completion time.
func (c *Core) earliestDone() timing.Tick {
	e := c.outstanding[0].done
	for _, m := range c.outstanding[1:] {
		if m.done < e {
			e = m.done
		}
	}
	return e
}

// enforceROB stalls the core when the oldest outstanding miss has fallen
// a full reorder-buffer window behind the retire point.
func (c *Core) enforceROB() {
	for {
		i := c.oldest()
		if i == -1 {
			return
		}
		if c.Instrs-c.outstanding[i].atInstr < uint64(c.cfg.ROBWindow) {
			return
		}
		c.waitFor(c.outstanding[i].done)
		c.outstanding = c.outstanding[1:]
		c.retireCompleted()
	}
}

// Outstanding returns the number of in-flight misses.
func (c *Core) Outstanding() int { return len(c.outstanding) }

// Drain waits for all outstanding misses (end of simulation).
func (c *Core) Drain() {
	for len(c.outstanding) > 0 {
		c.waitFor(c.earliestDone())
		c.retireCompleted()
	}
}

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.Now == 0 {
		return 0
	}
	return float64(c.Instrs) / c.Now.Cycles()
}
