package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdvanceUsesBaseCPI(t *testing.T) {
	c := New(Config{BaseCPI: 0.5, ROBWindow: 128, MSHRs: 16})
	c.Advance(100)
	if c.Now != 50 || c.Instrs != 100 {
		t.Fatalf("now=%f instrs=%d", c.Now, c.Instrs)
	}
	if got := c.IPC(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("IPC = %f", got)
	}
}

func TestBlockingMissStalls(t *testing.T) {
	c := New(DefaultConfig())
	c.Advance(10) // now = 5
	c.IssueMiss(405, true)
	if c.Now != 405 {
		t.Fatalf("now = %f, want 405", c.Now)
	}
	if c.StallCycles != 400 {
		t.Fatalf("stall = %f", c.StallCycles)
	}
}

func TestNonBlockingMissOverlaps(t *testing.T) {
	c := New(DefaultConfig())
	c.IssueMiss(400, false)
	if c.Now != 0 || c.Outstanding() != 1 {
		t.Fatalf("now=%f outstanding=%d", c.Now, c.Outstanding())
	}
	c.Advance(20) // 10 cycles; miss still pending
	if c.Outstanding() != 1 {
		t.Fatal("miss should still be outstanding")
	}
	c.Advance(1000) // now 510: miss completed
	if c.Outstanding() != 0 {
		t.Fatal("miss should have retired")
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	c := New(Config{BaseCPI: 1, ROBWindow: 1 << 20, MSHRs: 2})
	c.IssueMiss(100, false)
	c.IssueMiss(200, false)
	// Third miss must wait for the first to complete (cycle 100).
	c.IssueMiss(300, false)
	if c.Now != 100 {
		t.Fatalf("now = %f, want 100", c.Now)
	}
	if c.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
}

func TestROBWindowBoundsRunAhead(t *testing.T) {
	c := New(Config{BaseCPI: 1, ROBWindow: 64, MSHRs: 16})
	c.IssueMiss(1000, false)
	// Retire 64 instructions: the ROB fills and the core must wait for
	// the miss at cycle 1000.
	c.Advance(64)
	if c.Now != 1000 {
		t.Fatalf("now = %f, want 1000 (ROB stall)", c.Now)
	}
}

func TestROBReleasesAfterCompletion(t *testing.T) {
	c := New(Config{BaseCPI: 1, ROBWindow: 64, MSHRs: 16})
	c.IssueMiss(10, false)
	c.Advance(64) // now=64 > 10: miss already complete, no stall
	if c.Now != 64 {
		t.Fatalf("now = %f, want 64", c.Now)
	}
	if c.StallCycles != 0 {
		t.Fatalf("stall = %f", c.StallCycles)
	}
}

func TestDrain(t *testing.T) {
	c := New(DefaultConfig())
	c.IssueMiss(500, false)
	c.IssueMiss(300, false)
	c.Drain()
	if c.Now != 500 || c.Outstanding() != 0 {
		t.Fatalf("after drain: now=%f outstanding=%d", c.Now, c.Outstanding())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BaseCPI: 0, ROBWindow: 128, MSHRs: 16},
		{BaseCPI: 1, ROBWindow: 0, MSHRs: 16},
		{BaseCPI: 1, ROBWindow: 128, MSHRs: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHigherMLPFinishesSooner(t *testing.T) {
	// Two cores issue the same 8 misses of 400 cycles each; the one that
	// can overlap them (MSHRs 16) finishes far sooner than the one that
	// blocks on each (modeled as blocking issues).
	overlap := New(Config{BaseCPI: 1, ROBWindow: 1 << 20, MSHRs: 16})
	serial := New(Config{BaseCPI: 1, ROBWindow: 1 << 20, MSHRs: 16})
	for i := 0; i < 8; i++ {
		overlap.Advance(10)
		overlap.IssueMiss(overlap.Now+400, false)
		serial.Advance(10)
		serial.IssueMiss(serial.Now+400, true)
	}
	overlap.Drain()
	serial.Drain()
	if overlap.Now >= serial.Now/3 {
		t.Fatalf("overlap %f vs serial %f: expected much faster", overlap.Now, serial.Now)
	}
}

// Property: the clock is monotone and stall accounting never exceeds
// elapsed time.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(Config{BaseCPI: 0.7, ROBWindow: 32, MSHRs: 4})
		prev := 0.0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				c.Advance(uint64(op%16) + 1)
			case 1:
				c.IssueMiss(c.Now+float64(op%100), false)
			case 2:
				c.IssueMiss(c.Now+float64(op%100), true)
			}
			if c.Now < prev {
				return false
			}
			prev = c.Now
		}
		c.Drain()
		return c.StallCycles <= c.Now+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
