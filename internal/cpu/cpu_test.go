package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"cmpsim/internal/timing"
)

// cy converts whole cycles to ticks for test readability.
func cy(n int64) timing.Tick { return timing.FromIntCycles(n) }

func TestAdvanceUsesBaseCPI(t *testing.T) {
	c := New(Config{BaseCPI: 0.5, ROBWindow: 128, MSHRs: 16})
	c.Advance(100)
	if c.Now != cy(50) || c.Instrs != 100 {
		t.Fatalf("now=%v instrs=%d", c.Now, c.Instrs)
	}
	if got := c.IPC(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("IPC = %f", got)
	}
}

func TestBlockingMissStalls(t *testing.T) {
	c := New(DefaultConfig())
	c.Advance(10) // now = 5 cycles
	c.IssueMiss(cy(405), true)
	if c.Now != cy(405) {
		t.Fatalf("now = %v, want 405cy", c.Now)
	}
	if c.StallTicks != cy(400) {
		t.Fatalf("stall = %v", c.StallTicks)
	}
}

func TestNonBlockingMissOverlaps(t *testing.T) {
	c := New(DefaultConfig())
	c.IssueMiss(cy(400), false)
	if c.Now != 0 || c.Outstanding() != 1 {
		t.Fatalf("now=%v outstanding=%d", c.Now, c.Outstanding())
	}
	c.Advance(20) // 10 cycles; miss still pending
	if c.Outstanding() != 1 {
		t.Fatal("miss should still be outstanding")
	}
	c.Advance(1000) // now 510 cycles: miss completed
	if c.Outstanding() != 0 {
		t.Fatal("miss should have retired")
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	c := New(Config{BaseCPI: 1, ROBWindow: 1 << 20, MSHRs: 2})
	c.IssueMiss(cy(100), false)
	c.IssueMiss(cy(200), false)
	// Third miss must wait for the first to complete (cycle 100).
	c.IssueMiss(cy(300), false)
	if c.Now != cy(100) {
		t.Fatalf("now = %v, want 100cy", c.Now)
	}
	if c.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
}

func TestROBWindowBoundsRunAhead(t *testing.T) {
	c := New(Config{BaseCPI: 1, ROBWindow: 64, MSHRs: 16})
	c.IssueMiss(cy(1000), false)
	// Retire 64 instructions: the ROB fills and the core must wait for
	// the miss at cycle 1000.
	c.Advance(64)
	if c.Now != cy(1000) {
		t.Fatalf("now = %v, want 1000cy (ROB stall)", c.Now)
	}
}

func TestROBReleasesAfterCompletion(t *testing.T) {
	c := New(Config{BaseCPI: 1, ROBWindow: 64, MSHRs: 16})
	c.IssueMiss(cy(10), false)
	c.Advance(64) // now=64 > 10: miss already complete, no stall
	if c.Now != cy(64) {
		t.Fatalf("now = %v, want 64cy", c.Now)
	}
	if c.StallTicks != 0 {
		t.Fatalf("stall = %v", c.StallTicks)
	}
}

func TestDrain(t *testing.T) {
	c := New(DefaultConfig())
	c.IssueMiss(cy(500), false)
	c.IssueMiss(cy(300), false)
	c.Drain()
	if c.Now != cy(500) || c.Outstanding() != 0 {
		t.Fatalf("after drain: now=%v outstanding=%d", c.Now, c.Outstanding())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BaseCPI: 0, ROBWindow: 128, MSHRs: 16},
		{BaseCPI: 1, ROBWindow: 0, MSHRs: 16},
		{BaseCPI: 1, ROBWindow: 128, MSHRs: 0},
		// Below the tick grid's resolution.
		{BaseCPI: 1.0 / (4 * timing.TicksPerCycle), ROBWindow: 128, MSHRs: 16},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHigherMLPFinishesSooner(t *testing.T) {
	// Two cores issue the same 8 misses of 400 cycles each; the one that
	// can overlap them (MSHRs 16) finishes far sooner than the one that
	// blocks on each (modeled as blocking issues).
	overlap := New(Config{BaseCPI: 1, ROBWindow: 1 << 20, MSHRs: 16})
	serial := New(Config{BaseCPI: 1, ROBWindow: 1 << 20, MSHRs: 16})
	for i := 0; i < 8; i++ {
		overlap.Advance(10)
		overlap.IssueMiss(overlap.Now+cy(400), false)
		serial.Advance(10)
		serial.IssueMiss(serial.Now+cy(400), true)
	}
	overlap.Drain()
	serial.Drain()
	if overlap.Now >= serial.Now/3 {
		t.Fatalf("overlap %v vs serial %v: expected much faster", overlap.Now, serial.Now)
	}
}

// Property: the clock is monotone and stall accounting never exceeds
// elapsed time. Both facts are exact in the integer tick domain.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(Config{BaseCPI: 0.7, ROBWindow: 32, MSHRs: 4})
		var prev timing.Tick
		for _, op := range ops {
			switch op % 3 {
			case 0:
				c.Advance(uint64(op%16) + 1)
			case 1:
				c.IssueMiss(c.Now+cy(int64(op%100)), false)
			case 2:
				c.IssueMiss(c.Now+cy(int64(op%100)), true)
			}
			if c.Now < prev {
				return false
			}
			prev = c.Now
		}
		c.Drain()
		return c.StallTicks <= c.Now
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
