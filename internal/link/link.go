// Package link models the off-chip interconnect between the CMP's
// memory interface and the memory controller: a shared channel of fixed
// pin bandwidth carrying variable-length messages composed of 8-byte
// flits. With link compression enabled, a data message carries a cache
// line in 1-8 flits (its FPC-compressed size); without it, always 8.
// Every message pays a fixed-size header (which carries the length
// field the paper describes).
//
// Timing uses busy-until reservation: a message arriving at time t
// starts when the channel frees, occupies bytes/bandwidth cycles, and
// delays everything behind it — the queueing contention that makes
// prefetching expensive on a CMP.
package link

import "fmt"

// HeaderBytes is the per-message header: command, address and the
// length field for variable-length compressed messages.
const HeaderBytes = 8

// FlitBytes is the payload granule (one 8-byte segment per flit).
const FlitBytes = 8

// Channel is a shared fixed-bandwidth link with two priority classes.
// Demand messages are served with non-preemptive priority: a demand
// message waits for the demand backlog plus at most one in-progress
// low-priority transfer (the residual service), while low-priority
// messages (prefetches, writebacks) queue behind everything. This
// models a memory controller that prioritizes demand responses over
// prefetch traffic.
type Channel struct {
	bytesPerCycle float64 // 0 = infinite bandwidth (measurement mode)
	busyAll       float64 // server busy-until including low priority
	busyDemand    float64 // busy-until from demand traffic only

	// Stats.
	Messages     uint64
	TotalBytes   uint64
	PayloadFlits uint64
	BusyCycles   float64
	QueueDelay   float64 // cumulative cycles messages waited for the channel
}

// NewChannel builds a link with the given bandwidth in bytes per core
// cycle (e.g. 4.0 models 20 GB/s at 5 GHz). bytesPerCycle = 0 models
// infinite pin bandwidth, used for the paper's "bandwidth demand"
// metric: bytes are counted but nothing ever queues.
func NewChannel(bytesPerCycle float64) *Channel {
	if bytesPerCycle < 0 {
		panic(fmt.Sprintf("link: negative bandwidth %f", bytesPerCycle))
	}
	return &Channel{bytesPerCycle: bytesPerCycle}
}

// Infinite reports whether the channel models unlimited bandwidth.
func (c *Channel) Infinite() bool { return c.bytesPerCycle == 0 }

// Occupancy returns the cycles one message of the given payload size
// occupies the channel (0 for an infinite channel).
func (c *Channel) Occupancy(flits int) float64 {
	if c.Infinite() {
		return 0
	}
	return float64(HeaderBytes+flits*FlitBytes) / c.bytesPerCycle
}

// Reserve claims a bandwidth slot for one message, no earlier than at.
// It returns the slot's start cycle. Reservations are made in call
// order — callers reserve when the transfer is *requested* (e.g. when a
// fetch reaches the memory controller), not when its data is ready, so
// an idle channel is never blocked by a far-future reservation. Demand
// messages wait only for the demand backlog plus at most one residual
// low-priority transfer (non-preemptive priority over prefetches and
// writebacks).
func (c *Channel) Reserve(at float64, flits int, demand bool) (slotStart float64) {
	if flits < 0 {
		panic("link: negative flit count")
	}
	bytes := HeaderBytes + flits*FlitBytes
	c.Messages++
	c.TotalBytes += uint64(bytes)
	c.PayloadFlits += uint64(flits)
	if c.Infinite() {
		return at
	}
	occupancy := float64(bytes) / c.bytesPerCycle
	start := at
	if demand {
		if c.busyDemand > start {
			start = c.busyDemand
		}
		if c.busyAll > start {
			residual := at + occupancy
			if c.busyAll < residual {
				residual = c.busyAll
			}
			if residual > start {
				start = residual
			}
		}
	} else if c.busyAll > start {
		start = c.busyAll
	}
	if start > at {
		c.QueueDelay += start - at
	}
	done := start + occupancy
	if demand {
		c.busyDemand = done
	}
	if done > c.busyAll {
		c.busyAll = done
	}
	c.BusyCycles += occupancy
	return start
}

// Send reserves the channel for one demand message starting no earlier
// than now and returns the cycle the message has fully crossed.
func (c *Channel) Send(now float64, flits int) (done float64) {
	return c.Reserve(now, flits, true) + c.Occupancy(flits)
}

// SendLow is Send for low-priority messages (prefetches, writebacks).
func (c *Channel) SendLow(now float64, flits int) (done float64) {
	return c.Reserve(now, flits, false) + c.Occupancy(flits)
}

// BusyUntil returns the cycle at which the channel next frees.
func (c *Channel) BusyUntil() float64 { return c.busyAll }

// Utilization returns the fraction of cycles the channel was busy over
// an elapsed window (0 for an infinite channel).
func (c *Channel) Utilization(elapsedCycles float64) float64 {
	if elapsedCycles <= 0 || c.Infinite() {
		return 0
	}
	u := c.BusyCycles / elapsedCycles
	if u > 1 {
		u = 1
	}
	return u
}

// CheckInvariants verifies flit conservation and reservation-state
// sanity (audit support): every byte on the channel is accounted for by
// exactly one header or payload flit (TotalBytes = Messages×HeaderBytes
// + PayloadFlits×FlitBytes), and the busy/queueing accumulators are
// finite, non-negative and ordered. It returns the first violation, or "".
func (c *Channel) CheckInvariants() string {
	if want := c.Messages*HeaderBytes + c.PayloadFlits*FlitBytes; c.TotalBytes != want {
		return fmt.Sprintf("flit conservation: %d bytes on the wire but %d messages + %d payload flits account for %d",
			c.TotalBytes, c.Messages, c.PayloadFlits, want)
	}
	if !(c.BusyCycles >= 0) || !(c.QueueDelay >= 0) {
		return fmt.Sprintf("negative or NaN accumulators (busy %f, queue %f)", c.BusyCycles, c.QueueDelay)
	}
	if c.busyDemand > c.busyAll {
		return fmt.Sprintf("demand busy-until %f ahead of overall busy-until %f", c.busyDemand, c.busyAll)
	}
	return ""
}

// DemandGBps converts the observed byte count to the paper's bandwidth
// demand metric in GB/s, given the elapsed cycles and the clock in GHz.
func (c *Channel) DemandGBps(elapsedCycles, clockGHz float64) float64 {
	if elapsedCycles <= 0 {
		return 0
	}
	seconds := elapsedCycles / (clockGHz * 1e9)
	return float64(c.TotalBytes) / 1e9 / seconds
}
