// Package link models the off-chip interconnect between the CMP's
// memory interface and the memory controller: a shared channel of fixed
// pin bandwidth carrying variable-length messages composed of 8-byte
// flits. With link compression enabled, a data message carries a cache
// line in 1-8 flits (its FPC-compressed size); without it, always 8.
// Every message pays a fixed-size header (which carries the length
// field the paper describes).
//
// Timing uses busy-until reservation through timing.Port: a message
// arriving at tick t starts when the channel frees, occupies
// bytes×costPerByte ticks, and delays everything behind it — the
// queueing contention that makes prefetching expensive on a CMP. The
// per-byte cost is quantized to the tick grid once, at NewChannel.
package link

import (
	"fmt"

	"cmpsim/internal/timing"
)

// HeaderBytes is the per-message header: command, address and the
// length field for variable-length compressed messages.
const HeaderBytes = 8

// FlitBytes is the payload granule (one 8-byte segment per flit).
const FlitBytes = 8

// Channel is a shared fixed-bandwidth link with two priority classes.
// Demand messages are served with non-preemptive priority: a demand
// message waits for the demand backlog plus at most one in-progress
// low-priority transfer (the residual service), while low-priority
// messages (prefetches, writebacks) queue behind everything. This
// models a memory controller that prioritizes demand responses over
// prefetch traffic. The scheduling itself lives in timing.Port; Channel
// adds the message framing (header + flits) and traffic accounting.
type Channel struct {
	port *timing.Port

	// Stats.
	Messages     uint64
	TotalBytes   uint64
	PayloadFlits uint64
}

// NewChannel builds a link with the given bandwidth in bytes per core
// cycle (e.g. 4.0 models 20 GB/s at 5 GHz). bytesPerCycle = 0 models
// infinite pin bandwidth, used for the paper's "bandwidth demand"
// metric: bytes are counted but nothing ever queues.
func NewChannel(bytesPerCycle float64) *Channel {
	p, err := timing.NewPort(bytesPerCycle)
	if err != nil {
		panic(fmt.Sprintf("link: %v", err))
	}
	return &Channel{port: p}
}

// Infinite reports whether the channel models unlimited bandwidth.
func (c *Channel) Infinite() bool { return c.port.Infinite() }

// Occupancy returns the ticks one message of the given payload size
// occupies the channel (0 for an infinite channel).
func (c *Channel) Occupancy(flits int) timing.Tick {
	return c.port.Cost(HeaderBytes + flits*FlitBytes)
}

// Reserve claims a bandwidth slot for one message, no earlier than at.
// It returns the slot's start tick. Reservations are made in call
// order — callers reserve when the transfer is *requested* (e.g. when a
// fetch reaches the memory controller), not when its data is ready, so
// an idle channel is never blocked by a far-future reservation. Demand
// messages wait only for the demand backlog plus at most one residual
// low-priority transfer (non-preemptive priority over prefetches and
// writebacks).
func (c *Channel) Reserve(at timing.Tick, flits int, demand bool) (slotStart timing.Tick) {
	if flits < 0 {
		panic("link: negative flit count")
	}
	bytes := HeaderBytes + flits*FlitBytes
	c.Messages++
	c.TotalBytes += uint64(bytes)
	c.PayloadFlits += uint64(flits)
	return c.port.Reserve(at, bytes, demand)
}

// Send reserves the channel for one demand message starting no earlier
// than now and returns the tick the message has fully crossed.
func (c *Channel) Send(now timing.Tick, flits int) (done timing.Tick) {
	return c.Reserve(now, flits, true) + c.Occupancy(flits)
}

// SendLow is Send for low-priority messages (prefetches, writebacks).
func (c *Channel) SendLow(now timing.Tick, flits int) (done timing.Tick) {
	return c.Reserve(now, flits, false) + c.Occupancy(flits)
}

// BusyUntil returns the tick at which the channel next frees.
func (c *Channel) BusyUntil() timing.Tick { return c.port.BusyUntil() }

// BusyTicks returns the cumulative channel occupancy.
func (c *Channel) BusyTicks() timing.Tick { return c.port.BusyTicks() }

// QueueDelay returns the cumulative ticks messages waited for the
// channel.
func (c *Channel) QueueDelay() timing.Tick { return c.port.WaitTicks() }

// Utilization returns the fraction of an elapsed window the channel was
// busy (0 for an infinite channel).
func (c *Channel) Utilization(elapsed timing.Tick) float64 {
	return c.port.Utilization(elapsed)
}

// CheckInvariants verifies flit conservation and reservation-state
// sanity (audit support): every byte on the channel is accounted for by
// exactly one header or payload flit (TotalBytes = Messages×HeaderBytes
// + PayloadFlits×FlitBytes), the byte counts match the port's grant
// count, and the port's busy/queueing state is ordered. It returns the
// first violation, or "".
func (c *Channel) CheckInvariants() string {
	if want := c.Messages*HeaderBytes + c.PayloadFlits*FlitBytes; c.TotalBytes != want {
		return fmt.Sprintf("flit conservation: %d bytes on the wire but %d messages + %d payload flits account for %d",
			c.TotalBytes, c.Messages, c.PayloadFlits, want)
	}
	if c.port.Grants() != c.Messages {
		return fmt.Sprintf("port granted %d slots for %d messages", c.port.Grants(), c.Messages)
	}
	return c.port.CheckInvariants()
}

// DemandGBps converts the observed byte count to the paper's bandwidth
// demand metric in GB/s, given the elapsed window and the clock in GHz.
func (c *Channel) DemandGBps(elapsed timing.Tick, clockGHz float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	seconds := elapsed.Cycles() / (clockGHz * 1e9)
	return float64(c.TotalBytes) / 1e9 / seconds
}
