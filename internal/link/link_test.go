package link

import (
	"math"
	"testing"
	"testing/quick"

	"cmpsim/internal/timing"
)

// cy converts whole cycles to ticks for test readability.
func cy(n int64) timing.Tick { return timing.FromIntCycles(n) }

func TestSendAccountsBytes(t *testing.T) {
	c := NewChannel(4.0)
	c.Send(0, 8) // header + 8 flits = 72 bytes
	if c.TotalBytes != 72 || c.Messages != 1 || c.PayloadFlits != 8 {
		t.Fatalf("stats: %+v", c)
	}
}

func TestSendOccupancy(t *testing.T) {
	c := NewChannel(4.0) // 4 bytes/cycle
	done := c.Send(cy(100), 8)
	if want := cy(100) + timing.FromCycles(72.0/4.0); done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestQueueingDelaysSecondMessage(t *testing.T) {
	c := NewChannel(4.0)
	first := c.Send(0, 8) // occupies until cycle 18
	done := c.Send(0, 8)  // must wait
	if done != first+cy(18) {
		t.Fatalf("second done = %v, want %v", done, first+cy(18))
	}
	if c.QueueDelay() != first {
		t.Fatalf("queue delay = %v, want %v", c.QueueDelay(), first)
	}
}

func TestInfiniteChannelNeverQueues(t *testing.T) {
	c := NewChannel(0)
	if !c.Infinite() {
		t.Fatal("channel should be infinite")
	}
	for i := 0; i < 100; i++ {
		if done := c.Send(cy(5), 8); done != cy(5) {
			t.Fatalf("infinite send done = %v", done)
		}
	}
	if c.QueueDelay() != 0 || c.TotalBytes != 7200 {
		t.Fatalf("stats: %+v", c)
	}
}

func TestCompressedMessageIsCheaper(t *testing.T) {
	c := NewChannel(4.0)
	full := c.Send(0, 8)
	c2 := NewChannel(4.0)
	small := c2.Send(0, 2)
	if small >= full {
		t.Fatalf("2-flit message (%v) should be faster than 8-flit (%v)", small, full)
	}
}

func TestDemandGBps(t *testing.T) {
	c := NewChannel(0)
	c.Send(0, 8) // 72 bytes
	// 72 bytes over 5e9 cycles at 5 GHz = 1 second -> 72e-9 GB/s.
	got := c.DemandGBps(cy(5e9), 5.0)
	if math.Abs(got-72e-9) > 1e-12 {
		t.Fatalf("demand = %g", got)
	}
}

func TestUtilization(t *testing.T) {
	c := NewChannel(4.0)
	c.Send(0, 8) // busy 18 cycles
	if u := c.Utilization(cy(36)); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %f", u)
	}
	if u := c.Utilization(cy(9)); u != 1 {
		t.Fatalf("utilization should clamp to 1, got %f", u)
	}
	if u := c.Utilization(0); u != 0 {
		t.Fatalf("zero window utilization = %f", u)
	}
}

func TestNegativeFlitsPanics(t *testing.T) {
	c := NewChannel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative flits should panic")
		}
	}()
	c.Send(0, -1)
}

func TestNegativeBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative bandwidth should panic")
		}
	}()
	NewChannel(-1)
}

// Property: completion times are monotone in submission order and never
// precede the submission time plus occupancy. Exact in the tick domain.
func TestSendMonotoneProperty(t *testing.T) {
	f := func(times []uint16, flitsRaw []uint8) bool {
		c := NewChannel(2.5)
		var prev, now timing.Tick
		for i, dt := range times {
			now += cy(int64(dt % 100))
			flits := 0
			if i < len(flitsRaw) {
				flits = int(flitsRaw[i] % 9)
			}
			done := c.Send(now, flits)
			if done < now+c.Occupancy(flits) {
				return false
			}
			if done < prev {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
