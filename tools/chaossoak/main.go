// Command chaossoak is the deterministic chaos harness for the fleet's
// crash-recovery machinery: it supervises a coordinator/worker sweep
// while killing the coordinator on a seeded schedule, restarting it
// against the same store after every crash, and restarting workers the
// schedule kills — then asserts the surviving run's tables are
// byte-identical to an undisturbed single-process run.
//
//	go build -o /tmp/experiments ./cmd/experiments
//	go run ./tools/chaossoak -bin /tmp/experiments -kills 2 -seed 1
//
// Each coordinator incarnation i < kills carries one fault rule,
// kind=killcoord,msg=result,nth=N(i), with N(i) drawn from a seeded
// PRNG — so the crash schedule is reproducible from -seed alone. The
// final incarnation runs rule-free and must exit 0 with nothing
// re-simulated that the store already holds.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		bin     = flag.String("bin", "", "path to the experiments binary (required)")
		storeTo = flag.String("store", "", "store directory (default: a fresh temp dir, removed on success)")
		kills   = flag.Int("kills", 2, "coordinator crashes to inject before the clean incarnation")
		workers = flag.Int("workers", 2, "HTTP workers to keep running")
		seed    = flag.Int64("seed", 1, "PRNG seed for the crash schedule")
		grid    = flag.String("grid", "table3", "experiment selection handed to every incarnation")
		benches = flag.String("benchmarks", "zeus,art", "benchmark subset handed to every incarnation")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall soak deadline")
	)
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "chaossoak: -bin is required (build cmd/experiments first)")
		return 2
	}
	if *kills < 0 || *workers < 1 {
		fmt.Fprintln(os.Stderr, "chaossoak: -kills must be >= 0 and -workers >= 1")
		return 2
	}
	dir := *storeTo
	if dir == "" {
		d, err := os.MkdirTemp("", "chaossoak-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			return 1
		}
		dir = d
	}
	grid_ := []string{"-run", *grid, "-benchmarks", *benches, "-quick",
		"-cores", "2", "-warmup", "50000", "-measure", "30000", "-seeds", "1"}

	// Reference: the undisturbed single-process run the soak must match.
	ref, err := output(*bin, grid_...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak: reference run:", err)
		return 1
	}

	addr, err := reserveAddr()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		return 1
	}
	fmt.Printf("chaossoak: store=%s addr=%s kills=%d workers=%d seed=%d\n",
		dir, addr, *kills, *workers, *seed)

	// The crash schedule: incarnation i dies as its N(i)-th result
	// message arrives. Drawn up front so the whole soak is a pure
	// function of -seed.
	rng := rand.New(rand.NewSource(*seed))
	schedule := make([]int, *kills)
	for i := range schedule {
		schedule[i] = 1 + rng.Intn(3) // crash on the 1st..3rd result
	}

	// Workers outlive every coordinator incarnation: generous retry
	// budgets carry them across each restart gap, and a worker the soak
	// (or a stray fault) kills is simply restarted.
	var wg sync.WaitGroup
	stopWorkers := make(chan struct{})
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			superviseWorker(*bin, addr, fmt.Sprintf("cw%d", id), stopWorkers)
		}(i)
	}

	deadline := time.Now().Add(*timeout)
	var final string
	incarnation := 0
	for {
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "chaossoak: FAIL: deadline exceeded")
			close(stopWorkers)
			return 1
		}
		args := append([]string{"-serve", addr, "-store", dir}, grid_...)
		if incarnation < len(schedule) {
			args = append(args, "-faultinject",
				fmt.Sprintf("kind=killcoord,msg=result,nth=%d", schedule[incarnation]))
		}
		out, err := output(*bin, args...)
		code := exitCode(err)
		switch {
		case code == 0:
			final = out
		case code == 7:
			fmt.Printf("chaossoak: incarnation %d crashed as scheduled (nth=%d); restarting\n",
				incarnation, schedule[incarnation])
			incarnation++
			continue
		default:
			fmt.Fprintf(os.Stderr, "chaossoak: FAIL: incarnation %d exited %d: %v\n", incarnation, code, err)
			close(stopWorkers)
			return 1
		}
		break
	}
	close(stopWorkers)
	wg.Wait()

	if final != ref {
		fmt.Fprintf(os.Stderr, "chaossoak: FAIL: surviving run differs from reference\n--- reference\n%s\n--- survivor\n%s\n", ref, final)
		fmt.Fprintf(os.Stderr, "chaossoak: journal kept for inspection: %s\n", dir)
		return 1
	}
	fmt.Printf("chaossoak: PASS: %d coordinator crashes survived, tables byte-identical\n", incarnation)
	if *storeTo == "" {
		os.RemoveAll(dir)
	}
	return 0
}

// superviseWorker keeps one worker process alive until stop closes: a
// worker that exits while the soak still runs (killed, retry budget
// blown during a long coordinator gap) is restarted under the same ID,
// and the journal-recovered coordinator picks it up where it left off.
func superviseWorker(bin, addr, id string, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		cmd := exec.Command(bin, "-worker", "http://"+addr, "-worker-id", id,
			"-worker-retries", "60", "-worker-backoff", "100ms")
		cmd.Stderr = os.Stderr
		err := cmd.Run()
		select {
		case <-stop:
			return
		default:
		}
		if err == nil {
			// Clean exit while the soak continues: the coordinator said
			// done between incarnations. Poll again for the next one.
			time.Sleep(100 * time.Millisecond)
			continue
		}
		fmt.Printf("chaossoak: worker %s exited (%v); restarting\n", id, err)
		time.Sleep(100 * time.Millisecond)
	}
}

// output runs one subprocess and returns its stdout (stderr streams
// through for live progress).
func output(bin string, args ...string) (string, error) {
	cmd := exec.Command(bin, args...)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	return out.String(), err
}

// exitCode maps a Run error to the subprocess exit code (0 on nil).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// reserveAddr picks a free localhost port and releases it so every
// coordinator incarnation can bind the same address.
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
