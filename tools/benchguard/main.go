// Command benchguard gates CI on benchmark regressions: it reads one
// or more `go test -bench` logs (plain text or the `go test -json`
// stream the bench-smoke job archives), extracts every benchmark's
// ns/event metric (falling back to ns/op when a benchmark reports no
// custom metric), and compares each against a committed baseline.
//
//	benchguard -baseline .github/bench-baseline.json BENCH_*.json
//
// A benchmark measuring more than tolerance (default 10%) above its
// baseline fails the run. Benchmarks absent from the baseline are
// reported but do not fail; -update rewrites the baseline from the
// measurements instead of checking (run it on the machine that the
// baseline should describe — numbers are not portable across hosts).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baseline is the committed reference: benchmark name (sub-benchmark
// path included, GOMAXPROCS suffix stripped) to ns/event.
type baseline struct {
	Note       string             `json:"note,omitempty"`
	NsPerEvent map[string]float64 `json:"ns_per_event"`
}

// benchLine matches a benchmark result row. The trailing -N CPU suffix
// is stripped so baselines survive GOMAXPROCS changes.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// metric extracts "<value> <unit>" pairs from a result row's tail.
var metric = regexp.MustCompile(`([0-9.]+(?:e[+-]?[0-9]+)?) (ns/event|ns/op)`)

// testEvent is the subset of the test2json stream benchguard needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// parse scans a bench log, plain or test2json, and returns each
// benchmark's ns/event (preferring it over ns/op when both appear).
// test2json splits a result row across output events (the name ends in
// a bare tab, the numbers follow), so the stream is reassembled into
// plain text first and parsed line by line.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err == nil && ev.Action != "" {
			if ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, best, haveEvent := m[1], 0.0, false
		for _, mm := range metric.FindAllStringSubmatch(m[2], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			if mm[2] == "ns/event" {
				best, haveEvent = v, true
			} else if !haveEvent && best == 0 {
				best = v
			}
		}
		if best > 0 {
			out[name] = best
		}
	}
	return out, nil
}

func main() {
	basePath := flag.String("baseline", ".github/bench-baseline.json", "committed baseline file")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression over baseline")
	update := flag.Bool("update", false, "rewrite the baseline from the measurements instead of checking")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no bench logs given")
		os.Exit(2)
	}

	measured := map[string]float64{}
	for _, path := range flag.Args() {
		got, err := parse(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		for k, v := range got {
			measured[k] = v
		}
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark results found in input")
		os.Exit(2)
	}

	if *update {
		b := baseline{
			Note:       "ns/event per benchmark; regenerate with: go test -run '^$' -bench BenchmarkSystemRun -benchtime 3x ./internal/sim | go run ./tools/benchguard -update -baseline <file> /dev/stdin",
			NsPerEvent: measured,
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*basePath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchguard: wrote %d baselines to %s\n", len(measured), *basePath)
		return
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *basePath, err)
		os.Exit(2)
	}

	names := make([]string, 0, len(measured))
	for k := range measured {
		names = append(names, k)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		got := measured[name]
		want, ok := base.NsPerEvent[name]
		if !ok {
			fmt.Printf("benchguard: %-40s %8.1f ns/event (no baseline, skipped)\n", name, got)
			continue
		}
		limit := want * (1 + *tolerance)
		status := "ok"
		if got > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchguard: %-40s %8.1f ns/event vs baseline %.1f (+%.0f%% allowed): %s\n",
			name, got, want, *tolerance*100, status)
	}
	if failed {
		os.Exit(1)
	}
}
