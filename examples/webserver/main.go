// Webserver: reproduce the shape of Figure 1 — how the benefit of
// stride prefetching collapses as cores are added to the CMP while
// compression's benefit holds, using the zeus static web server.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"os"

	"cmpsim/internal/core"
	"cmpsim/internal/report"
)

func main() {
	log.SetFlags(0)
	opts := core.QuickOptions()
	opts.Warmup = 1_200_000
	opts.Measure = 400_000

	fmt.Println("Figure 1 shape: zeus, mechanisms vs core count")
	fmt.Println("(the paper: prefetching +74% at 1 core, -8% at 16;")
	fmt.Println(" compression grows slowly; the combination stays strong)")
	fmt.Println()

	rows := core.CoreSweep("zeus", []int{1, 4, 8, 16}, opts)
	report.CoreSweep(os.Stdout, "zeus core sweep", rows)

	// Highlight the headline comparison.
	first, last := rows[0], rows[len(rows)-1]
	fmt.Printf("\nprefetching alone:  %+0.1f%% at %d core(s) -> %+0.1f%% at %d cores\n",
		first.PrefPct, first.Cores, last.PrefPct, last.Cores)
	fmt.Printf("with compression:   %+0.1f%% at %d core(s) -> %+0.1f%% at %d cores\n",
		first.BothPct, first.Cores, last.BothPct, last.Cores)
}
