// Quickstart: simulate the paper's 8-core CMP running the zeus web
// server under the four mechanism combinations and print the speedups
// and the interaction term (EQ 5).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cmpsim/internal/core"
	"cmpsim/internal/stats"
)

func main() {
	log.SetFlags(0)

	// A scaled-down run so the example finishes in seconds; use
	// core.DefaultOptions() for paper-scale warmups.
	opts := core.QuickOptions()
	opts.Warmup = 1_500_000
	opts.Measure = 500_000

	fmt.Println("zeus on an 8-core CMP, 4 MB shared L2, 20 GB/s pins")
	fmt.Println()

	base, err := core.Run("zeus", core.Base, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12.0f cycles (IPC %.2f)\n", "base",
		base.Runtime.Mean, base.Runs[0].IPC)

	show := func(name string, m core.Mechanisms) core.Point {
		p, err := core.Run("zeus", m, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.0f cycles (%+.1f%%)\n", name,
			p.Runtime.Mean, stats.SpeedupPct(core.Speedup(base, p)))
		return p
	}

	pf := show("stride prefetching", core.Prefetch)
	compr := show("cache+link compression", core.Compression)
	both := show("prefetching + compression", core.PrefCompr)
	show("adaptive pf + compression", core.AdaptiveCompr)

	inter := stats.InteractionPct(core.Speedup(base, pf),
		core.Speedup(base, compr), core.Speedup(base, both))
	fmt.Printf("\nInteraction(Pref, Compr) = %+.1f%% (EQ 5)\n", inter)
	fmt.Println("Positive: the combination beats the product of the individual speedups.")
}
