// Bandwidth: the Figure 11 sensitivity study. The positive interaction
// between compression and prefetching comes largely from link
// compression relieving the pin-bandwidth contention that prefetching
// creates — so the interaction should be strongest when pins are scarce
// (10-20 GB/s) and fade when they are plentiful (40-80 GB/s).
//
//	go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"

	"cmpsim/internal/core"
	"cmpsim/internal/stats"
)

func main() {
	log.SetFlags(0)
	opts := core.QuickOptions()
	opts.Warmup = 1_200_000
	opts.Measure = 400_000

	bench := "zeus"
	fmt.Printf("Interaction(Pref, Compr) for %s vs available pin bandwidth\n\n", bench)
	fmt.Printf("%8s %12s %12s %12s %12s\n", "GB/s", "pf", "compr", "both", "interaction")
	for _, gb := range []float64{10, 20, 40, 80} {
		o := opts
		o.BandwidthGBps = gb
		base := must(core.Run(bench, core.Base, o))
		sp := core.Speedup(base, must(core.Run(bench, core.Prefetch, o)))
		sc := core.Speedup(base, must(core.Run(bench, core.Compression, o)))
		sb := core.Speedup(base, must(core.Run(bench, core.PrefCompr, o)))
		fmt.Printf("%8.0f %+11.1f%% %+11.1f%% %+11.1f%% %+11.1f%%\n",
			gb, stats.SpeedupPct(sp), stats.SpeedupPct(sc), stats.SpeedupPct(sb),
			stats.InteractionPct(sp, sc, sb))
	}
	fmt.Println("\nExpected shape: the interaction column shrinks toward zero as")
	fmt.Println("bandwidth grows — compression stops mattering once pins are free.")
}

func must(p core.Point, err error) core.Point {
	if err != nil {
		log.Fatal(err)
	}
	return p
}
