// Adaptive: the paper's jbb rescue story. Stride prefetching's deep L2
// startup bursts overshoot SPECjbb's short allocation streams, polluting
// the shared cache and slowing it down ~25%; the adaptive mechanism uses
// compression's extra cache tags to detect the useless and harmful
// prefetches and throttle them.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"cmpsim/internal/coherence"
	"cmpsim/internal/core"
	"cmpsim/internal/stats"
)

func main() {
	log.SetFlags(0)
	opts := core.QuickOptions()
	opts.Warmup = 1_500_000
	opts.Measure = 500_000

	base := must(core.Run("jbb", core.Base, opts))
	pf := must(core.Run("jbb", core.Prefetch, opts))
	ad := must(core.Run("jbb", core.AdaptivePf, opts))

	fmt.Println("SPECjbb on the 8-core CMP:")
	fmt.Printf("  stride prefetching:   %+6.1f%%\n", stats.SpeedupPct(core.Speedup(base, pf)))
	fmt.Printf("  adaptive prefetching: %+6.1f%%\n", stats.SpeedupPct(core.Speedup(base, ad)))
	fmt.Println()

	show := func(name string, p core.Point) {
		m := &p.Runs[0]
		e := m.Engine(coherence.PfL2)
		fmt.Printf("  %-12s L2 pf rate %5.2f/KI  accuracy %5.1f%%  useless evicts %d\n",
			name, e.RatePer1000(m.Instructions), e.Accuracy()*100, m.Adaptive.Useless)
	}
	fmt.Println("Why: the adaptive counter throttles the 25-deep L2 startup bursts")
	show("stride:", pf)
	show("adaptive:", ad)
	fmt.Printf("\n  adaptive events: %d useful, %d useless, %d harmful\n",
		ad.Runs[0].Adaptive.Useful, ad.Runs[0].Adaptive.Useless, ad.Runs[0].Adaptive.Harmful)
	fmt.Printf("  final saturating counters: L1I %.1f  L1D %.1f  L2 %d (start: 6/6/25)\n",
		ad.Runs[0].Adaptive.FinalCapL1I, ad.Runs[0].Adaptive.FinalCapL1D,
		ad.Runs[0].Adaptive.FinalCapL2)
}

func must(p core.Point, err error) core.Point {
	if err != nil {
		log.Fatal(err)
	}
	return p
}
