// Compressibility: inspect the calibrated data models behind Table 3 —
// for each benchmark, sample synthetic cache lines, run them through
// the real FPC codec, and print the segment-size distribution, the
// dominant word patterns, and the resulting effective-cache-size ratio.
//
//	go run ./examples/compressibility
package main

import (
	"fmt"

	"cmpsim/internal/cache"
	"cmpsim/internal/fpc"
	"cmpsim/internal/workload"
)

func main() {
	fmt.Println("FPC on the synthetic benchmark data (1024 sampled lines each)")
	fmt.Println()
	fmt.Printf("%-8s %-6s  %-8s %-42s %s\n", "bench", "class", "ratio", "segment histogram 1..8", "top patterns")
	for _, name := range workload.PaperOrder() {
		p := workload.MustByName(name)
		d := workload.NewDataModel(p, 1)
		var sizeHist [fpc.MaxSegments + 1]int
		var pats [8]int
		for i := 0; i < 1024; i++ {
			line := d.Line(cache.BlockAddr(0x70000000 + i))
			sizeHist[fpc.CompressedSizeSegments(line)]++
			h := fpc.PatternHistogram(line)
			for j, c := range h {
				pats[j] += c
			}
		}
		hist := ""
		for s := 1; s <= fpc.MaxSegments; s++ {
			hist += fmt.Sprintf("%5d", sizeHist[s])
		}
		best, second := topTwo(pats[:])
		fmt.Printf("%-8s %-6s  %-8.2f %s  %s, %s\n",
			name, short(p.Class), d.PackedRatio(2048), hist,
			fpc.Pattern(best), fpc.Pattern(second))
	}
	fmt.Println()
	fmt.Println("Commercial data (pointers, counters, zeros) compresses well;")
	fmt.Println("SPEComp floating-point data is mostly 'uncompressed' words —")
	fmt.Println("the paper's Table 3 split, produced by the same FPC hardware.")
}

func short(c workload.Class) string {
	if c == workload.Commercial {
		return "comm"
	}
	return "fp"
}

func topTwo(counts []int) (best, second int) {
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	second = -1
	for i, c := range counts {
		if i == best {
			continue
		}
		if second == -1 || c > counts[second] {
			second = i
		}
	}
	return
}
