// Command tracegen records a synthetic benchmark's reference stream to
// a compact trace file, or inspects an existing trace.
//
//	tracegen -bench oltp -core 0 -seed 1 -n 1000000 -o oltp.trace
//	tracegen -bench oltp -workload ptrchase -o oltp-chase.trace
//	tracegen -inspect oltp.trace
//
// -workload overrides the benchmark's reference-source kind with any
// registered generator (strided, ptrchase, hashprobe, btree, srvmix).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cmpsim/internal/coherence"
	"cmpsim/internal/workload"
)

// usageErr prints a bad-flag message plus the usage text and exits 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		bench   = flag.String("bench", "zeus", "benchmark to record: "+strings.Join(workload.Names(), ", "))
		source  = flag.String("workload", "", "reference-source kind override: "+strings.Join(workload.SourceNames(), ", ")+" (default: the benchmark's own)")
		core    = flag.Int("core", 0, "core whose stream to record")
		seed    = flag.Int64("seed", 1, "workload seed")
		n       = flag.Int("n", 1_000_000, "references to record")
		out     = flag.String("o", "", "output file (default <bench>-<core>.trace)")
		inspect = flag.String("inspect", "", "print a summary of an existing trace and exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tracegen: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *source != "" && !workload.SourceRegistered(*source) {
		usageErr("-workload %q unknown (have %v)", *source, workload.SourceNames())
	}
	if *n < 1 {
		log.Fatalf("-n %d must be positive", *n)
	}
	if *core < 0 || *core > 31 {
		log.Fatalf("-core %d out of range [0, 31]", *core)
	}

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			log.Fatal(err)
		}
		return
	}

	p, err := workload.ByName(*bench)
	if err != nil {
		usageErr("-bench: %v", err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%d.trace", *bench, *core)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := workload.RecordSource(f, *source, p, *core, *seed, *n); err != nil {
		log.Fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %s: %d refs, %d bytes (%.2f bytes/ref)\n",
		path, *n, st.Size(), float64(st.Size())/float64(*n))
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.NewTraceReader(f)
	if err != nil {
		return err
	}
	var r workload.Ref
	var loads, stores, ifetches, blocking, instr uint64
	for {
		if err := tr.Next(&r); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		instr += uint64(r.Gap)
		switch r.Kind {
		case coherence.Load:
			loads++
			if r.Blocking {
				blocking++
			}
		case coherence.Store:
			stores++
		case coherence.IFetch:
			ifetches++
		}
	}
	total := loads + stores + ifetches
	fmt.Printf("benchmark    %s\n", tr.Benchmark)
	fmt.Printf("references   %d (%d loads, %d stores, %d ifetches)\n",
		total, loads, stores, ifetches)
	fmt.Printf("instructions %d (%.1f refs per 1000)\n",
		instr, float64(total)*1000/float64(max(instr, 1)))
	if loads > 0 {
		fmt.Printf("blocking     %.1f%% of loads\n", float64(blocking)*100/float64(loads))
	}
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
