// Command compbench races the registered line codecs against each
// other: a throughput/ratio bakeoff over the paper's eight synthetic
// workload value profiles, or over an external corpus file.
//
// Usage:
//
//	compbench                     # bakeoff over the 8 paper profiles
//	compbench -lines 65536        # larger corpus per profile
//	compbench -f corpus.bin       # bench an external file instead
//	compbench -csv results.csv    # also write machine-readable rows
//
// Output is a compbench-style availability table,
//
//	codec  avail  compress   decompress
//	fpc    yes    1.93GiB/s  2.10GiB/s
//	...
//
// followed (always) by per-(codec, profile) rows; -csv writes the same
// rows as CSV with header codec,profile,ratio,compress_gibps,
// decompress_gibps.
//
// External files are chunked into 64-byte lines; a short tail line is
// zero-padded, matching cmd/fpc.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"cmpsim/internal/cache"
	"cmpsim/internal/codec"
	"cmpsim/internal/workload"
)

// corpus is one named set of 64-byte lines to push through every codec.
type corpus struct {
	name  string
	lines [][]byte
}

// row is one (codec, corpus) measurement.
type row struct {
	codec, corpus string
	ratio         float64 // input bytes / compressed segment bytes
	compGiBps     float64
	decompGiBps   float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("compbench: ")
	var (
		file   = flag.String("f", "", "bench this file instead of the synthetic profiles")
		lines  = flag.Int("lines", 16384, "synthetic lines per profile")
		seed   = flag.Int64("seed", 1, "synthetic workload seed")
		csvOut = flag.String("csv", "", "write per-(codec,corpus) rows to this CSV file ('-' = stdout)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "compbench: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *lines < 1 {
		log.Fatalf("-lines %d must be positive", *lines)
	}

	var corpora []corpus
	if *file != "" {
		c, err := fileCorpus(*file)
		if err != nil {
			log.Fatal(err)
		}
		corpora = []corpus{c}
	} else {
		for _, name := range workload.PaperOrder() {
			corpora = append(corpora, syntheticCorpus(name, *lines, *seed))
		}
	}

	var rows []row
	for _, cdc := range codec.All() {
		for _, cp := range corpora {
			rows = append(rows, bench(cdc, cp))
		}
	}

	printAvailability(rows)
	fmt.Println()
	printRows(rows)
	if *csvOut != "" {
		if err := writeCSV(*csvOut, rows); err != nil {
			log.Fatal(err)
		}
	}
}

// syntheticCorpus draws n lines from the named profile's calibrated
// value model. Lines are generated with the default codec's model so
// every codec compresses the identical byte stream — the bakeoff
// varies the codec, not the corpus.
func syntheticCorpus(name string, n int, seed int64) corpus {
	d := workload.NewDataModel(workload.MustByName(name), seed)
	cp := corpus{name: name, lines: make([][]byte, n)}
	for i := range cp.lines {
		cp.lines[i] = make([]byte, codec.LineSize)
		d.FillLine(cache.BlockAddr(i), cp.lines[i])
	}
	return cp
}

// fileCorpus chunks a file into 64-byte lines, zero-padding the tail.
func fileCorpus(path string) (corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return corpus{}, err
	}
	if len(data) == 0 {
		return corpus{}, fmt.Errorf("%s: empty input", path)
	}
	cp := corpus{name: filepath.Base(path)}
	for off := 0; off < len(data); off += codec.LineSize {
		line := make([]byte, codec.LineSize)
		copy(line, data[off:min(off+codec.LineSize, len(data))])
		cp.lines = append(cp.lines, line)
	}
	return cp, nil
}

// bench measures one codec over one corpus: compressed ratio plus
// encode and strict-decode throughput in GiB/s of uncompressed data.
func bench(cdc codec.Codec, cp corpus) row {
	// Encode pass (timed): also captures the streams for the decode
	// pass. Buffers are pre-sized so the timed region measures the
	// codec, not the allocator.
	encs := make([][]byte, len(cp.lines))
	segs := make([]int, len(cp.lines))
	for i := range encs {
		encs[i] = make([]byte, 0, codec.MaxSegments*codec.SegmentSize)
	}
	totalSegs := 0
	start := time.Now()
	for i, line := range cp.lines {
		encs[i], segs[i] = cdc.AppendEncode(encs[i][:0], line)
	}
	encElapsed := time.Since(start)
	for _, s := range segs {
		totalSegs += s
	}

	// Decode pass (timed), verifying round-trips as it goes.
	dst := make([]byte, codec.LineSize)
	start = time.Now()
	for i, enc := range encs {
		if err := cdc.DecodeInto(dst, enc, segs[i]); err != nil {
			log.Fatalf("%s/%s line %d: decode: %v", cdc.Name(), cp.name, i, err)
		}
	}
	decElapsed := time.Since(start)

	inBytes := float64(len(cp.lines) * codec.LineSize)
	const gib = 1 << 30
	return row{
		codec:       cdc.Name(),
		corpus:      cp.name,
		ratio:       inBytes / float64(totalSegs*codec.SegmentSize),
		compGiBps:   inBytes / gib / encElapsed.Seconds(),
		decompGiBps: inBytes / gib / decElapsed.Seconds(),
	}
}

// printAvailability prints the compbench-style summary table: every
// registered codec with its mean throughput across the corpora.
func printAvailability(rows []row) {
	type agg struct {
		comp, decomp float64
		n            int
	}
	sums := map[string]*agg{}
	for _, r := range rows {
		a := sums[r.codec]
		if a == nil {
			a = &agg{}
			sums[r.codec] = a
		}
		a.comp += r.compGiBps
		a.decomp += r.decompGiBps
		a.n++
	}
	fmt.Printf("%-6s %-6s %-10s %s\n", "codec", "avail", "compress", "decompress")
	for _, cdc := range codec.All() {
		a := sums[cdc.Name()]
		if a == nil || a.n == 0 {
			fmt.Printf("%-6s %-6s\n", cdc.Name(), "no")
			continue
		}
		fmt.Printf("%-6s %-6s %-10s %s\n", cdc.Name(), "yes",
			fmt.Sprintf("%.2fGiB/s", a.comp/float64(a.n)),
			fmt.Sprintf("%.2fGiB/s", a.decomp/float64(a.n)))
	}
}

// printRows prints the per-(codec, corpus) detail.
func printRows(rows []row) {
	fmt.Printf("%-6s %-10s %8s %12s %12s\n", "codec", "corpus", "ratio", "compress", "decompress")
	for _, r := range rows {
		fmt.Printf("%-6s %-10s %7.2fx %9.2fGiB/s %9.2fGiB/s\n",
			r.codec, r.corpus, r.ratio, r.compGiBps, r.decompGiBps)
	}
}

// writeCSV writes the detail rows as CSV to path ('-' = stdout).
func writeCSV(path string, rows []row) error {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"codec", "profile", "ratio", "compress_gibps", "decompress_gibps"}); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, r := range rows {
		if err := cw.Write([]string{r.codec, r.corpus, ff(r.ratio), ff(r.compGiBps), ff(r.decompGiBps)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
