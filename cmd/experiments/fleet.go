// Fleet modes for the experiments command.
//
//	experiments -fleet 2 ...            # coordinator + 2 local pipe workers
//	experiments -serve :8080 ...        # coordinator serving HTTP workers
//	experiments -worker pipe            # worker over stdin/stdout
//	experiments -worker http://host:8080
//
// Fleet runs are bit-identical to single-process runs: workers return
// each point as the checksummed PointRecord the checkpoint and result
// store already use, and encoding/json round-trips every float exactly.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cmpsim/internal/audit"
	"cmpsim/internal/core"
	"cmpsim/internal/faultinject"
	"cmpsim/internal/fleet"
	"cmpsim/internal/report"
)

// runWorkerMode runs the process as one fleet worker until the
// coordinator says done. Exit codes: 0 done, 1 transport/config error,
// 2 invalid check level (before any lease), 3 killed by a fault rule,
// 4 drained by SIGINT/SIGTERM (in-flight point finished and reported
// first), 130 second signal.
func runWorkerMode(mode, id, check, faults string, workers, shards, callRetries int, callBackoff time.Duration, progress bool) int {
	// The audit tier is the worker's own (satellite contract: CheckLevel
	// is canonicalized out of the point key, so leases never carry it).
	// Both the flag — validated by run() already — and the environment
	// must parse before the worker asks for any lease.
	if _, err := audit.ParseLevel(os.Getenv("CMPSIM_CHECK")); err != nil {
		log.Printf("CMPSIM_CHECK: %v", err)
		return 2
	}
	if id == "" {
		id = fmt.Sprintf("w%d", os.Getpid())
	}

	var caller fleet.Caller
	switch {
	case mode == "pipe":
		caller = fleet.NewPipeCaller(os.Stdin, os.Stdout)
	case strings.HasPrefix(mode, "http://"), strings.HasPrefix(mode, "https://"):
		caller = &fleet.HTTPCaller{URL: mode}
	default:
		log.Printf("-worker %q: want 'pipe' or a coordinator URL", mode)
		return 2
	}

	sched := core.NewScheduler(workers)
	defer sched.Close()
	var injector *faultinject.Injector
	if faults != "" {
		in, err := faultinject.Parse(faults)
		if err != nil {
			log.Print(err)
			return 2
		}
		injector = in
		sched.SetFaultHook(in.Hook)
		sched.SetStateFaultHook(in.StateFault)
		fmt.Fprintf(os.Stderr, "[worker %s: faultinject active]\n", id)
	}

	logf := func(string, ...any) {}
	if progress {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "["+format+"]\n", args...)
		}
	}
	// First SIGINT/SIGTERM drains the worker: the in-flight point (if
	// any) is finished and reported, then the loop exits. A second
	// signal exits immediately.
	drain := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logf("fleet: worker %s: draining on signal (signal again to exit now)", id)
		close(drain)
		<-sig
		os.Exit(130)
	}()

	cfg := fleet.WorkerConfig{
		ID: id, Fault: injector, Logf: logf, Drain: drain,
		MaxCallRetries: callRetries, CallBackoff: callBackoff,
		Runner: func(bench string, m core.Mechanisms, o core.Options) (core.Point, error) {
			// Leases carry canonical options; the worker re-applies its own
			// scheduling and audit knobs (none change the point's identity).
			o.CheckLevel = check
			o.Workers = workers
			o.Shards = shards
			return sched.Submit(bench, m, o).Wait()
		},
	}
	switch err := fleet.RunWorker(cfg, caller); {
	case err == nil:
		return 0
	case errors.Is(err, fleet.ErrKilled):
		log.Printf("worker %s: %v", id, err)
		return 3
	case errors.Is(err, fleet.ErrDrained):
		log.Printf("worker %s: %v", id, err)
		return 4
	default:
		log.Printf("worker %s: %v", id, err)
		return 1
	}
}

// workerArgs builds the argument list spawned pipe workers inherit:
// the audit tier and the fault rules travel; everything identity-
// bearing arrives inside each lease instead.
func workerArgs(check, faults string) []string {
	var args []string
	if check != "" {
		args = append(args, "-check", check)
	}
	if faults != "" {
		args = append(args, "-faultinject", faults)
	}
	return args
}

// spawnFleet starts n copies of this binary as pipe workers and serves
// each one's message stream from its own goroutine. The returned wait
// function blocks until every worker's stream has drained and its
// process exited — call it after Coordinator.Shutdown. A worker that
// dies mid-sweep is logged, its leases requeued by ServePipe's EOF
// handling; the sweep carries on with the survivors.
func spawnFleet(coord *fleet.Coordinator, n int, extra []string) (wait func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fleet: locate own binary: %w", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		args := append([]string{"-worker", "pipe", "-worker-id", id}, extra...)
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("fleet: start worker %s: %w", id, err)
		}
		fmt.Fprintf(os.Stderr, "[fleet: worker %s started (pid %d)]\n", id, cmd.Process.Pid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := coord.ServePipe(stdout, stdin); err != nil {
				fmt.Fprintf(os.Stderr, "[fleet: worker %s transport: %v]\n", id, err)
			}
			stdin.Close()
			if err := cmd.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "[fleet: worker %s exited: %v]\n", id, err)
			}
		}()
	}
	return wg.Wait, nil
}

// printFleetStats renders the coordinator's accounting to w.
func printFleetStats(w io.Writer, st fleet.Stats) {
	rows := make([]report.FleetWorkerRow, 0, len(st.Workers))
	for _, r := range st.Workers {
		rows = append(rows, report.FleetWorkerRow{
			Worker: r.Worker, Leases: r.Leases, Results: r.Results, Failures: r.Failures,
			Duplicates: r.Duplicates, Malformed: r.Malformed, Lost: r.Lost,
		})
	}
	report.Fleet(w, rows, report.FleetTotals{
		Points: st.Points, FromStore: st.FromStore, Recovered: st.Recovered,
		Completed: st.Completed, Failed: st.Failed, Requeues: st.Requeues,
		Expired: st.Expired, Lost: st.Lost, Duplicates: st.Duplicates,
		Malformed: st.Malformed,
	})
}
