package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the experiments command:
// with CMPSIM_EXPERIMENTS_MAIN=1 it runs main() instead of the tests.
// Subprocesses below set that variable — and spawned pipe workers
// inherit it, so spawnFleet's self-re-exec works under test too.
func TestMain(m *testing.M) {
	if os.Getenv("CMPSIM_EXPERIMENTS_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// tinyGrid is a sweep small enough for subprocess tests (two
// benchmarks, two mechanisms each under -quick, sub-second).
var tinyGrid = []string{
	"-run", "table3", "-benchmarks", "zeus,art", "-quick",
	"-cores", "2", "-warmup", "50000", "-measure", "30000", "-seeds", "1",
}

// experiments runs the test binary as the experiments command.
func experiments(t *testing.T, env []string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "CMPSIM_EXPERIMENTS_MAIN=1")
	cmd.Env = append(cmd.Env, env...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	switch err := cmd.Run().(type) {
	case nil:
		code = 0
	case *exec.ExitError:
		code = err.ExitCode()
	default:
		t.Fatalf("run experiments: %v", err)
	}
	return out.String(), errb.String(), code
}

func TestInvalidCheckLevelExitsTwo(t *testing.T) {
	_, stderr, code := experiments(t, nil, append([]string{"-check", "bogus"}, tinyGrid...)...)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "done in") {
		t.Fatalf("simulation ran despite invalid -check:\n%s", stderr)
	}
}

func TestWorkerInvalidCheckEnvExitsTwoBeforeAnyLease(t *testing.T) {
	// The env-var path is validated inside worker mode itself, before
	// the worker says hello to any coordinator (stdin is empty here, so
	// asking for a lease would hang or error, not exit 2).
	_, stderr, code := experiments(t, []string{"CMPSIM_CHECK=bogus"}, "-worker", "pipe")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "CMPSIM_CHECK") {
		t.Fatalf("stderr does not name the bad variable:\n%s", stderr)
	}
}

func TestWorkerRejectsStoreFlag(t *testing.T) {
	_, stderr, code := experiments(t, nil, "-worker", "pipe", "-store", t.TempDir())
	if code != 2 || !strings.Contains(stderr, "coordinator") {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
}

// TestFleetKillOneWorkerBitIdenticalOutput is the command-level
// acceptance run: a 2-worker pipe fleet with worker w1 deterministically
// killed before its first result must print byte-identical tables to a
// plain single-process run, and exit 0.
func TestFleetKillOneWorkerBitIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess simulation; skipped with -short")
	}
	want, _, code := experiments(t, nil, tinyGrid...)
	if code != 0 {
		t.Fatalf("single-process run exited %d", code)
	}
	got, stderr, code := experiments(t, nil, append([]string{
		"-fleet", "2", "-faultinject", "kind=kill,worker=w1,msg=result,nth=1",
	}, tinyGrid...)...)
	if code != 0 {
		t.Fatalf("fleet run exited %d; stderr:\n%s", code, stderr)
	}
	if got != want {
		t.Errorf("fleet output differs from single-process output:\n--- single\n%s\n--- fleet\n%s", want, got)
	}
	for _, needle := range []string{"LOST", "requeue"} {
		if !strings.Contains(stderr, needle) {
			t.Errorf("fleet stats missing %q:\n%s", needle, stderr)
		}
	}
}

// TestStoreReuseAcrossRuns pins the shared-store contract: a second run
// over the same grid simulates nothing and prints identical tables.
func TestStoreReuseAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess simulation; skipped with -short")
	}
	dir := t.TempDir()
	args := append([]string{"-store", dir}, tinyGrid...)
	first, stderr1, code := experiments(t, nil, args...)
	if code != 0 {
		t.Fatalf("first run exited %d; stderr:\n%s", code, stderr1)
	}
	if !strings.Contains(stderr1, "0 points loaded") {
		t.Errorf("first run should start from an empty store:\n%s", stderr1)
	}
	second, stderr2, code := experiments(t, nil, args...)
	if code != 0 {
		t.Fatalf("second run exited %d; stderr:\n%s", code, stderr2)
	}
	if second != first {
		t.Errorf("second run's tables differ:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if !strings.Contains(stderr2, "0 unique points") {
		t.Errorf("second run simulated points despite the store:\n%s", stderr2)
	}
}
