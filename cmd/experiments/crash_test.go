// Command-level crash-recovery acceptance tests: the coordinator is
// killed mid-sweep by a deterministic fault rule (or drained by a
// signal) and restarted against the same -store; the resumed run must
// print byte-identical tables to an undisturbed single-process run,
// with nothing already stored ever re-simulated.
package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink for streaming subprocess
// output while the process still runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// proc is one asynchronously running experiments subprocess.
type proc struct {
	cmd    *exec.Cmd
	out    *syncBuffer
	errOut *syncBuffer
}

// startExperiments launches the test binary as the experiments command
// without waiting for it.
func startExperiments(t *testing.T, args ...string) *proc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: exec.Command(exe, args...), out: &syncBuffer{}, errOut: &syncBuffer{}}
	p.cmd.Env = append(os.Environ(), "CMPSIM_EXPERIMENTS_MAIN=1")
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.errOut
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// wait blocks for exit and returns the exit code.
func (p *proc) wait(t *testing.T) int {
	t.Helper()
	switch err := p.cmd.Wait().(type) {
	case nil:
		return 0
	case *exec.ExitError:
		return err.ExitCode()
	default:
		t.Fatalf("wait: %v", err)
		return -1
	}
}

// waitStderr polls the process's stderr until needle appears.
func (p *proc) waitStderr(t *testing.T, needle string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(p.errOut.String(), needle) {
		if time.Now().After(deadline) {
			t.Fatalf("stderr never contained %q:\n%s", needle, p.errOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// reserveAddr picks a free localhost port and releases it for reuse.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCoordinatorKillRestartBitIdenticalOutput is the tentpole
// acceptance run: an HTTP coordinator is crashed (exit 7) by a
// kind=killcoord rule as a worker's second result arrives, then
// restarted against the same -store while the worker retries through
// the outage. The resumed run must print byte-identical tables to an
// undisturbed run, load the pre-crash point from the store, and report
// journal-recovered points — proving nothing stored was re-simulated.
func TestCoordinatorKillRestartBitIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess simulation; skipped with -short")
	}
	want, _, code := experiments(t, nil, tinyGrid...)
	if code != 0 {
		t.Fatalf("reference run exited %d", code)
	}

	dir := t.TempDir()
	addr := reserveAddr(t)
	coordArgs := func(faults string) []string {
		args := []string{"-serve", addr, "-store", dir}
		if faults != "" {
			args = append(args, "-faultinject", faults)
		}
		return append(args, tinyGrid...)
	}

	// Incarnation 1 crashes on the second result: one point is stored,
	// one result is lost in flight (its lease survives in the journal).
	c1 := startExperiments(t, coordArgs("kind=killcoord,msg=result,nth=2")...)
	w := startExperiments(t, "-worker", "http://"+addr, "-worker-id", "cw0",
		"-worker-retries", "40", "-worker-backoff", "100ms")
	if code := c1.wait(t); code != 7 {
		t.Fatalf("crashed coordinator exited %d, want 7; stderr:\n%s", code, c1.errOut.String())
	}
	if !strings.Contains(c1.errOut.String(), "injected coordinator crash") {
		t.Fatalf("crash not attributed to the rule:\n%s", c1.errOut.String())
	}

	// Incarnation 2: same store, no fault rules. The worker reconnects
	// and redelivers the in-flight result under its recovered lease.
	got, stderr2, code := experiments(t, nil, coordArgs("")...)
	if code != 0 {
		t.Fatalf("restarted coordinator exited %d; stderr:\n%s", code, stderr2)
	}
	if got != want {
		t.Errorf("resumed output differs from undisturbed run:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if code := w.wait(t); code != 0 {
		t.Fatalf("worker exited %d across the restart; stderr:\n%s", code, w.errOut.String())
	}
	// FromStore accounting proves the stored point was never
	// re-simulated, and the journal replay is visible in the stats.
	if !strings.Contains(stderr2, "1 points loaded") {
		t.Errorf("restart did not load the pre-crash store:\n%s", stderr2)
	}
	if !strings.Contains(stderr2, "recovered from journal") {
		t.Errorf("restart did not replay the journal:\n%s", stderr2)
	}
	if !strings.Contains(stderr2, "(1 from store,") {
		t.Errorf("stored point not served from the store on restart:\n%s", stderr2)
	}
}

// TestCoordinatorDrainSignalExitsFourAndResumes pins the graceful-drain
// contract end to end: SIGINT on a coordinator with no workers abandons
// every pending point (exit 4, nothing re-leased), and a follow-up
// fleet run over the same store finishes the sweep with byte-identical
// tables.
func TestCoordinatorDrainSignalExitsFourAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess simulation; skipped with -short")
	}
	want, _, code := experiments(t, nil, tinyGrid...)
	if code != 0 {
		t.Fatalf("reference run exited %d", code)
	}

	dir := t.TempDir()
	addr := reserveAddr(t)
	c1 := startExperiments(t, append([]string{
		"-serve", addr, "-store", dir, "-drain-timeout", "2s",
	}, tinyGrid...)...)
	c1.waitStderr(t, "fleet coordinator on")
	if err := c1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := c1.wait(t); code != 4 {
		t.Fatalf("drained coordinator exited %d, want 4; stderr:\n%s", code, c1.errOut.String())
	}
	if !strings.Contains(c1.errOut.String(), "drain: complete") {
		t.Fatalf("no drain trace:\n%s", c1.errOut.String())
	}

	got, stderr2, code := experiments(t, nil, append([]string{"-fleet", "1", "-store", dir}, tinyGrid...)...)
	if code != 0 {
		t.Fatalf("resumed run exited %d; stderr:\n%s", code, stderr2)
	}
	if got != want {
		t.Errorf("resumed output differs:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestWorkerDrainSignalExitsFour pins the worker half of the drain
// state machine: an idle worker (its coordinator forever answers wait)
// exits 4 on SIGTERM instead of dying dirty.
func TestWorkerDrainSignalExitsFour(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test; skipped with -short")
	}
	addr := reserveAddr(t)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"type":"wait"}`)
	})}
	go srv.Serve(ln)
	defer srv.Close()

	w := startExperiments(t, "-worker", "http://"+addr, "-worker-id", "dw0")
	time.Sleep(500 * time.Millisecond) // let it hello and settle into polling
	if err := w.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := w.wait(t); code != 4 {
		t.Fatalf("drained worker exited %d, want 4; stderr:\n%s", code, w.errOut.String())
	}
}
