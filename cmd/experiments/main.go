// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments                      # run everything (slow: full warmups)
//	experiments -run table5 -quick   # one experiment, scaled-down runs
//	experiments -list
//
// Experiments: table3 fig3 fig4 fig5 table4 fig6 fig7 fig8 table5 fig10
// fig11 fig1 fig12 codecs irregular. The irregular study re-runs the
// Figure 6 / Table 5 terms over the linked-data-structure suite
// (ptrchase hashprobe btree srvmix) once per registered prefetch
// engine; -prefetcher pins the engine the other studies use.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cmpsim/internal/audit"
	"cmpsim/internal/core"
	"cmpsim/internal/faultinject"
	"cmpsim/internal/fleet"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/report"
	"cmpsim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	// All work happens in run so deferred cleanup (CPU profile,
	// checkpoint close) executes before the process exits.
	os.Exit(run())
}

func run() int {
	var (
		runNames   = flag.String("run", "all", "comma-separated experiments to run, or 'all'")
		quick      = flag.Bool("quick", false, "scaled-down runs (fast, noisier)")
		seeds      = flag.Int("seeds", 0, "override seeds per data point")
		workers    = flag.Int("workers", 0, "concurrent seed simulations (0 = one per CPU, 1 = serial)")
		shards     = flag.Int("shards", 0, "reference-generation goroutines per run (0 or 1 = inline; results identical for any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		list       = flag.Bool("list", false, "list experiment names and exit")
		format     = flag.String("format", "text", "output format: text, json or csv (csv where supported)")
		timeline   = flag.String("timeline", "", "directory for per-point interval-timeline exports (JSONL + CSV)")
		interval   = flag.Uint64("interval", 0, "telemetry interval in aggregate instructions (0 = auto: 1/50 of the window when -timeline is set)")
		progress   = flag.Bool("progress", false, "log per-point scheduler progress (start/finish/cached) to stderr")
		checkpoint = flag.String("checkpoint", "", "persist finished points to this JSONL file and resume from it")
		pointTO    = flag.Duration("point-timeout", 0, "per-seed watchdog deadline; a stuck simulation fails its point (0 = none)")
		retries    = flag.Int("retries", 0, "retry attempts for retryable point failures")
		backoff    = flag.Duration("retry-backoff", 0, "first retry delay, doubled per attempt")
		faults     = flag.String("faultinject", "", "TEST ONLY: deterministic fault rules, e.g. 'kind=panic,bench=zeus,seed=0'")
		check      = flag.String("check", "", "runtime self-checking per seed run: off, invariants or shadow (default: the CMPSIM_CHECK environment variable)")
		storeDir   = flag.String("store", "", "shared result-store directory: finished points persist there and are reused across runs and processes")
		serveAddr  = flag.String("serve", "", "run as fleet coordinator: serve HTTP workers on this address while running the suite")
		workerMode = flag.String("worker", "", "run as fleet worker: 'pipe' (leases over stdin/stdout) or a coordinator URL; no experiments are printed")
		workerID   = flag.String("worker-id", "", "fleet worker id (default wPID)")
		fleetN     = flag.Int("fleet", 0, "spawn N local pipe-transport workers and run the suite through them")
		wRetries   = flag.Int("worker-retries", 0, "worker: retries per coordinator exchange before giving up (0 = default, -1 = none)")
		wBackoff   = flag.Duration("worker-backoff", 0, "worker: base delay between coordinator-exchange retries (0 = default)")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "coordinator: how long a drain (first SIGINT/SIGTERM) waits for in-flight points")
		benchList  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: the paper's full set; irregular names select within the irregular study)")
		pfName     = flag.String("prefetcher", "", "prefetch engine for every prefetching point: "+strings.Join(prefetch.Names(), ", ")+" (default stride; the irregular study sweeps all engines regardless)")
		coresN     = flag.Int("cores", 0, "override the simulated core count")
		warmupN    = flag.Uint64("warmup", 0, "override warmup instructions per core")
		measureN   = flag.Uint64("measure", 0, "override measured instructions per core")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return 2
	}
	switch *format {
	case "text", "json", "csv":
	default:
		log.Printf("unknown -format %q (want text, json or csv)", *format)
		return 1
	}
	outFormat = *format
	if *seeds < 0 {
		log.Printf("-seeds %d must be >= 0", *seeds)
		return 1
	}
	if *workers < 0 {
		log.Printf("-workers %d must be >= 0", *workers)
		return 1
	}
	if *pointTO < 0 || *backoff < 0 {
		log.Print("-point-timeout and -retry-backoff must be >= 0")
		return 1
	}
	if *retries < 0 {
		log.Printf("-retries %d must be >= 0", *retries)
		return 1
	}
	// An invalid check level is a configuration error, not a run failure:
	// exit 2 before any simulation (or, in worker mode, any lease).
	if _, err := audit.ParseLevel(*check); err != nil {
		log.Printf("-check: %v", err)
		return 2
	}
	// So is an unknown prefetcher kind; the registry error lists the
	// registered names.
	if _, err := prefetch.ByName(*pfName); err != nil {
		log.Printf("-prefetcher: %v", err)
		return 2
	}
	if *fleetN < 0 {
		log.Printf("-fleet %d must be >= 0", *fleetN)
		return 2
	}
	if *workerMode != "" && (*fleetN > 0 || *serveAddr != "") {
		log.Print("-worker excludes -fleet and -serve")
		return 2
	}
	if *fleetN > 0 && *serveAddr != "" {
		log.Print("-fleet and -serve are mutually exclusive")
		return 2
	}
	if *workerMode != "" {
		if *storeDir != "" {
			log.Print("-store belongs on the coordinator, not on workers")
			return 2
		}
		return runWorkerMode(*workerMode, *workerID, *check, *faults, *workers, *shards, *wRetries, *wBackoff, *progress)
	}

	o := core.DefaultOptions()
	if *quick {
		o = core.QuickOptions()
	}
	if *coresN > 0 {
		o.Cores = *coresN
	}
	if *warmupN > 0 {
		o.Warmup = *warmupN
	}
	if *measureN > 0 {
		o.Measure = *measureN
	}
	if *seeds > 0 {
		o.Seeds = *seeds
	}
	o.Workers = *workers
	o.Shards = *shards
	o.PointTimeout = *pointTO
	o.MaxRetries = *retries
	o.RetryBackoff = *backoff
	o.CheckLevel = *check
	o.PrefetcherKind = *pfName
	o.TelemetryInterval = *interval
	if *timeline != "" && o.TelemetryInterval == 0 {
		o.TelemetryInterval = o.Measure * uint64(o.Cores) / 50
		if o.TelemetryInterval == 0 {
			o.TelemetryInterval = 1
		}
	}

	benches := core.Benchmarks()
	if *benchList != "" {
		// Any registered workload is addressable, not just the paper's
		// eight: the irregular suite's names route to the irregular study.
		names := workload.Names()
		valid := make(map[string]bool, len(names))
		for _, b := range names {
			valid[b] = true
		}
		benches = nil
		for _, b := range strings.Split(*benchList, ",") {
			b = strings.TrimSpace(b)
			if !valid[b] {
				log.Printf("unknown benchmark %q in -benchmarks (have %v)", b, names)
				return 2
			}
			benches = append(benches, b)
		}
	}

	all := experimentTable(o, benches)
	if *list {
		var names []string
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, " "))
		return 0
	}

	var selected []string
	if *runNames == "all" {
		for n := range all {
			selected = append(selected, n)
		}
		sort.Strings(selected)
	} else {
		for _, name := range strings.Split(*runNames, ",") {
			selected = append(selected, strings.TrimSpace(name))
		}
	}
	// Validate every name before simulating anything.
	for _, name := range selected {
		if _, ok := all[name]; !ok {
			log.Printf("unknown experiment %q (use -list)", name)
			return 1
		}
	}

	if *timeline != "" {
		if err := os.MkdirAll(*timeline, 0o755); err != nil {
			log.Print(err)
			return 1
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			log.Print(err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	// Per-study wall-clock and cache effectiveness: the scheduler
	// memoizes every unique data point, so studies sharing points (e.g.
	// table3/fig3/fig5, or any study's Base runs) simulate them once.
	sched := core.DefaultScheduler()
	var injector *faultinject.Injector
	if *faults != "" {
		in, err := faultinject.Parse(*faults)
		if err != nil {
			log.Print(err)
			return 1
		}
		injector = in
		sched.SetFaultHook(in.Hook)
		sched.SetStateFaultHook(in.StateFault)
		fmt.Fprintln(os.Stderr, "[faultinject active: results are intentionally degraded]")
	}
	if *checkpoint != "" {
		cp, err := core.OpenCheckpoint(*checkpoint)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer cp.Close()
		sched.SetCheckpoint(cp)
		fmt.Fprintf(os.Stderr, "[checkpoint %s: %d points restored, %d corrupt records skipped]\n",
			cp.Path(), cp.Loaded(), cp.Skipped())
	}
	var fstore *fleet.Store
	if *storeDir != "" {
		st, err := fleet.OpenStore(*storeDir, 0)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer st.Close()
		fstore = st
		sched.SetPointStore(st)
		fmt.Fprintf(os.Stderr, "[store %s: %d points loaded, %d corrupt records skipped]\n",
			st.Dir(), st.Loaded(), st.Skipped())
	}
	var coord *fleet.Coordinator
	var fleetWait func()
	var drained atomic.Bool
	if *fleetN > 0 || *serveAddr != "" {
		// The journal lives beside the store's shards: a coordinator
		// killed mid-sweep and restarted with the same -store replays it
		// (plus the store scan) and resumes with nothing re-simulated.
		var journal *fleet.Journal
		if *storeDir != "" {
			j, err := fleet.OpenJournal(*storeDir)
			if err != nil {
				log.Print(err)
				return 1
			}
			defer j.Close()
			journal = j
			fmt.Fprintf(os.Stderr, "[journal %s: %s]\n", j.Path(), j)
		}
		coord = fleet.NewCoordinator(fleet.Config{
			Store: fstore, Journal: journal, ExpiryInterval: time.Second,
			Fault: injector,
			Crash: func(kind faultinject.Kind) {
				// A real crash: no store flush, no journal truncation, no
				// deferred cleanup. Everything durable is already fsync'd.
				fmt.Fprintf(os.Stderr, "[fleet: injected coordinator crash (%s)]\n", kind)
				os.Exit(7)
			},
		})
		sched.SetPointRunner(coord.RunPoint)
		// First SIGINT/SIGTERM drains: no new leases, in-flight points get
		// -drain-timeout to finish, then the suite ends with exit 4. A
		// second signal exits immediately with 130.
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			go func() {
				<-sig
				os.Exit(130)
			}()
			fmt.Fprintf(os.Stderr, "[drain: signal received; waiting up to %v for in-flight points (signal again to exit now)]\n", *drainTO)
			drained.Store(true)
			abandoned := coord.DrainAndWait(*drainTO)
			fmt.Fprintf(os.Stderr, "[drain: complete; %d points abandoned (journal + store keep them resumable)]\n", abandoned)
		}()
	}
	if *fleetN > 0 {
		wait, err := spawnFleet(coord, *fleetN, workerArgs(*check, *faults))
		if err != nil {
			log.Print(err)
			return 1
		}
		fleetWait = wait
	}
	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer ln.Close()
		srv := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "[fleet coordinator on http://%s — start workers with -worker http://ADDR]\n", ln.Addr())
	}
	if obs := buildObserver(*progress, *timeline); obs != nil {
		sched.SetObserver(obs)
	}
	suiteStart := time.Now()
	for _, name := range selected {
		before := sched.Stats()
		start := time.Now()
		all[name]()
		d := sched.Stats()
		fmt.Fprintf(os.Stderr, "[%s done in %s: %d points simulated (%d runs), %d served from cache, %d from checkpoint, %d from store, %d failed]\n",
			name, time.Since(start).Round(time.Millisecond),
			d.Unique-before.Unique, d.SeedRuns-before.SeedRuns,
			d.Cached()-before.Cached(), d.Restored-before.Restored,
			d.FromStore-before.FromStore, d.Failed-before.Failed)
		fmt.Println()
	}
	if coord != nil {
		coord.Shutdown()
		if fleetWait != nil {
			fleetWait()
		}
		if *serveAddr != "" {
			// Give HTTP workers one poll cycle to pick up their done reply
			// before the listener goes away with the process.
			time.Sleep(2 * fleet.DefaultPollInterval)
		}
		printFleetStats(os.Stderr, coord.Stats())
	}
	total := sched.Stats()
	fmt.Fprintf(os.Stderr, "[suite done in %s: %d unique points, %d cached requests, %d restored, %d from store, %d failed, %d workers]\n",
		time.Since(suiteStart).Round(time.Millisecond),
		total.Unique, total.Cached(), total.Restored, total.FromStore, total.Failed, sched.Workers())
	if drained.Load() {
		log.Print("sweep drained by signal; rerun with the same -store to resume")
		return 4
	}
	if total.Failed > 0 {
		log.Printf("%d point(s) failed; their rows are marked FAILED", total.Failed)
		return 1
	}
	return 0
}

// outFormat selects text (paper-style tables), json, or csv output.
var outFormat = "text"

// buildObserver assembles the scheduler progress observer: stderr
// progress lines (-progress) and/or per-point timeline exports
// (-timeline DIR). Returns nil when neither is requested.
func buildObserver(progress bool, timelineDir string) core.Observer {
	if !progress && timelineDir == "" {
		return nil
	}
	return func(ev core.PointEvent) {
		if progress {
			switch ev.Kind {
			case core.PointStart:
				fmt.Fprintf(os.Stderr, "[point %s/%s started (%d seeds)]\n",
					ev.Benchmark, ev.Mechanisms.Label(), ev.Seeds)
			case core.PointFinish:
				if ev.Err != nil {
					fmt.Fprintf(os.Stderr, "[point %s/%s failed: %v]\n",
						ev.Benchmark, ev.Mechanisms.Label(), ev.Err)
				} else {
					fmt.Fprintf(os.Stderr, "[point %s/%s done in %s]\n",
						ev.Benchmark, ev.Mechanisms.Label(), ev.Wall.Round(time.Millisecond))
				}
			case core.PointCached:
				fmt.Fprintf(os.Stderr, "[point %s/%s cached]\n",
					ev.Benchmark, ev.Mechanisms.Label())
			case core.PointRestored:
				fmt.Fprintf(os.Stderr, "[point %s/%s restored from checkpoint]\n",
					ev.Benchmark, ev.Mechanisms.Label())
			}
		}
		if timelineDir != "" && ev.Kind == core.PointFinish && ev.Point != nil {
			if err := exportPointTimelines(timelineDir, ev); err != nil {
				log.Printf("timeline export: %v", err)
			}
		}
	}
}

// exportPointTimelines writes one JSONL + CSV pair per seed run of a
// finished point. Filenames carry a hash of the point's canonical
// options so points that share benchmark and mechanisms (e.g. the
// finite- and infinite-bandwidth variants) do not collide.
func exportPointTimelines(dir string, ev core.PointEvent) error {
	h := fnv.New32a()
	fmt.Fprintf(h, "%+v", ev.Options)
	for i := range ev.Point.Runs {
		m := &ev.Point.Runs[i]
		if len(m.Timeline) == 0 {
			continue
		}
		meta := report.TimelineMeta{Benchmark: m.Benchmark, Label: m.Label, Seed: m.Seed}
		base := filepath.Join(dir, fmt.Sprintf("%s__%s__%08x__s%d",
			m.Benchmark, m.Label, h.Sum32(), m.Seed))
		for ext, write := range map[string]func(io.Writer) error{
			".jsonl": func(w io.Writer) error { return report.TimelineJSONL(w, meta, m.Timeline) },
			".csv":   func(w io.Writer) error { return report.TimelineCSV(w, meta, m.Timeline) },
		} {
			f, err := os.Create(base + ext)
			if err != nil {
				return err
			}
			if err := write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit renders rows in the selected format, falling back to the
// text renderer when no structured encoding applies.
func emit(text func(), rows any, csvFn func() error) {
	switch outFormat {
	case "json":
		if err := report.WriteJSON(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	case "csv":
		if csvFn != nil {
			if err := csvFn(); err != nil {
				log.Fatal(err)
			}
			return
		}
		fallthrough
	default:
		text()
	}
}

// experimentTable maps experiment names to runners that print results.
// benches restricts most studies' benchmark set; fig10 and the core
// sweeps pin their own benchmarks as the paper does.
func experimentTable(o core.Options, benches []string) map[string]func() {
	w := os.Stdout
	var comprRows func() []core.CompressionRow
	{
		var cached []core.CompressionRow
		comprRows = func() []core.CompressionRow {
			if cached == nil {
				cached = core.CompressionStudy(benches, o)
			}
			return cached
		}
	}
	var interRows func() []core.InteractionRow
	{
		var cached []core.InteractionRow
		interRows = func() []core.InteractionRow {
			if cached == nil {
				cached = core.InteractionStudy(benches, o)
			}
			return cached
		}
	}
	coreCounts := []int{1, 2, 4, 8, 16}
	return map[string]func(){
		"table3": func() {
			rows := comprRows()
			emit(func() { report.Table3(w, rows) }, rows, func() error { return report.CompressionCSV(w, rows) })
		},
		"fig3": func() {
			rows := comprRows()
			emit(func() { report.Fig3(w, rows) }, rows, func() error { return report.CompressionCSV(w, rows) })
		},
		"fig4": func() {
			rows := core.BandwidthStudy(benches, o)
			emit(func() { report.Fig4(w, rows) }, rows, nil)
		},
		"fig5": func() {
			rows := comprRows()
			emit(func() { report.Fig5(w, rows) }, rows, func() error { return report.CompressionCSV(w, rows) })
		},
		"table4": func() {
			rows := core.PrefetchProperties(benches, o)
			emit(func() { report.Table4(w, rows) }, rows, nil)
		},
		"fig6": func() {
			rows := core.PrefetchStudy(benches, o)
			emit(func() { report.Fig6(w, rows) }, rows, nil)
		},
		"fig7": func() {
			rows := interRows()
			emit(func() { report.Fig7(w, rows) }, rows, func() error { return report.InteractionCSV(w, rows) })
		},
		"fig8": func() {
			rows := core.MissClassification(benches, o)
			emit(func() { report.Fig8(w, rows) }, rows, nil)
		},
		"table5": func() {
			rows := interRows()
			emit(func() { report.Table5(w, rows) }, rows, func() error { return report.InteractionCSV(w, rows) })
		},
		"fig10": func() {
			rows := core.AdaptiveStudy(core.CommercialBenchmarks(), o)
			emit(func() { report.Fig10(w, rows) }, rows, nil)
		},
		"fig11": func() {
			rows := core.BandwidthSweep(benches, []int{10, 20, 40, 80}, o)
			emit(func() { report.Fig11(w, rows) }, rows, func() error { return report.BandwidthSweepCSV(w, rows) })
		},
		"fig1": func() {
			rows := core.CoreSweep("zeus", coreCounts, o)
			emit(func() { report.CoreSweep(w, "Figure 1 (zeus)", rows) }, rows, func() error { return report.CoreSweepCSV(w, rows) })
		},
		"codecs": func() {
			rows := core.CodecStudy(benches, o)
			emit(func() { report.CodecTable(w, rows) }, rows, func() error { return report.CodecCSV(w, rows) })
		},
		"irregular": func() {
			// -benchmarks may mix suites; only its irregular names apply
			// here. With none selected the study runs the whole suite.
			irr := make(map[string]bool)
			for _, b := range core.IrregularBenchmarks() {
				irr[b] = true
			}
			var sel []string
			for _, b := range benches {
				if irr[b] {
					sel = append(sel, b)
				}
			}
			if len(sel) == 0 {
				sel = core.IrregularBenchmarks()
			}
			rows := core.IrregularStudy(sel, o)
			emit(func() { report.IrregularTable(w, rows) }, rows, func() error { return report.IrregularCSV(w, rows) })
		},
		"fig12": func() {
			ra := core.CoreSweep("apache", coreCounts, o)
			rj := core.CoreSweep("jbb", coreCounts, o)
			emit(func() {
				report.CoreSweep(w, "Figure 12 (apache)", ra)
				report.CoreSweep(w, "Figure 12 (jbb)", rj)
			}, append(append([]core.CoreSweepRow{}, ra...), rj...), func() error {
				return report.CoreSweepCSV(w, append(append([]core.CoreSweepRow{}, ra...), rj...))
			})
		},
	}
}
