// Command fpc compresses a file 64 bytes at a time with Frequent
// Pattern Compression and reports the per-block pattern statistics —
// a quick way to see how FPC behaves on real data.
//
//	fpc somefile.bin
//	head -c 4096 /dev/zero | fpc -
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cmpsim/internal/fpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpc: ")
	verify := flag.Bool("verify", true, "round-trip every block through Encode/Decode")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "fpc: usage: fpc [-verify=false] <file|->")
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	var blocks, inBytes, outSegs int
	var hist [8]int
	sizeHist := make([]int, fpc.MaxSegments+1)
	buf := make([]byte, fpc.LineSize)
	encBuf := make([]byte, 0, fpc.LineSize)
	dec := make([]byte, fpc.LineSize)
	for {
		n, err := io.ReadFull(in, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			for i := n; i < len(buf); i++ {
				buf[i] = 0 // zero-pad the tail block
			}
			err = nil
		}
		if err != nil {
			log.Fatal(err)
		}
		blocks++
		inBytes += fpc.LineSize
		segs := fpc.CompressedSizeSegments(buf)
		outSegs += segs
		sizeHist[segs]++
		h := fpc.PatternHistogram(buf)
		for i, c := range h {
			hist[i] += c
		}
		if *verify {
			var s int
			encBuf, s = fpc.AppendEncode(encBuf[:0], buf)
			if err := fpc.DecodeInto(dec, encBuf, s); err != nil {
				log.Fatalf("block %d: decode: %v", blocks, err)
			}
			for i := range dec {
				if dec[i] != buf[i] {
					log.Fatalf("block %d: round-trip mismatch", blocks)
				}
			}
		}
		if n < fpc.LineSize {
			break
		}
	}
	if blocks == 0 {
		log.Fatal("empty input")
	}
	outBytes := outSegs * fpc.SegmentSize
	fmt.Printf("blocks       %d (%d bytes)\n", blocks, inBytes)
	fmt.Printf("compressed   %d bytes (ratio %.2fx)\n", outBytes, float64(inBytes)/float64(outBytes))
	fmt.Printf("segment histogram (1..8):")
	for s := 1; s <= fpc.MaxSegments; s++ {
		fmt.Printf(" %d", sizeHist[s])
	}
	fmt.Println()
	fmt.Println("word patterns:")
	for p := fpc.Pattern(0); p < 8; p++ {
		if hist[p] > 0 {
			fmt.Printf("  %-12s %d\n", p, hist[p])
		}
	}
}
