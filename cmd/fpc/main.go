// Command fpc compresses a file 64 bytes at a time with one of the
// registered line codecs (Frequent Pattern Compression by default) and
// reports the per-block statistics — a quick way to see how a codec
// behaves on real data.
//
//	fpc somefile.bin
//	head -c 4096 /dev/zero | fpc -
//	fpc -codec bdi somefile.bin
//
// The word-pattern histogram is an FPC concept and is printed only for
// the fpc codec.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cmpsim/internal/codec"
	"cmpsim/internal/fpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpc: ")
	verify := flag.Bool("verify", true, "round-trip every block through Encode/Decode")
	codecN := flag.String("codec", "fpc", "line codec: fpc, bdi, zca or cpack")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "fpc: usage: fpc [-verify=false] [-codec name] <file|->")
		flag.Usage()
		os.Exit(2)
	}
	cdc, err := codec.ByName(*codecN)
	if err != nil {
		log.Fatalf("-codec: %v", err)
	}

	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	var blocks, inBytes, outSegs int
	var hist [8]int
	sizeHist := make([]int, codec.MaxSegments+1)
	buf := make([]byte, codec.LineSize)
	encBuf := make([]byte, 0, codec.LineSize)
	dec := make([]byte, codec.LineSize)
	for {
		n, err := io.ReadFull(in, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			for i := n; i < len(buf); i++ {
				buf[i] = 0 // zero-pad the tail block
			}
			err = nil
		}
		if err != nil {
			log.Fatal(err)
		}
		blocks++
		inBytes += codec.LineSize
		segs := cdc.CompressedSizeSegments(buf)
		outSegs += segs
		sizeHist[segs]++
		if cdc.Name() == "fpc" {
			h := fpc.PatternHistogram(buf)
			for i, c := range h {
				hist[i] += c
			}
		}
		if *verify {
			var s int
			encBuf, s = cdc.AppendEncode(encBuf[:0], buf)
			if err := cdc.DecodeInto(dec, encBuf, s); err != nil {
				log.Fatalf("block %d: decode: %v", blocks, err)
			}
			for i := range dec {
				if dec[i] != buf[i] {
					log.Fatalf("block %d: round-trip mismatch", blocks)
				}
			}
		}
		if n < codec.LineSize {
			break
		}
	}
	if blocks == 0 {
		log.Fatal("empty input")
	}
	outBytes := outSegs * codec.SegmentSize
	fmt.Printf("codec        %s\n", cdc.Name())
	fmt.Printf("blocks       %d (%d bytes)\n", blocks, inBytes)
	fmt.Printf("compressed   %d bytes (ratio %.2fx)\n", outBytes, float64(inBytes)/float64(outBytes))
	fmt.Printf("segment histogram (1..%d):", codec.MaxSegments)
	for s := 1; s <= codec.MaxSegments; s++ {
		fmt.Printf(" %d", sizeHist[s])
	}
	fmt.Println()
	if cdc.Name() == "fpc" {
		fmt.Println("word patterns:")
		for p := fpc.Pattern(0); p < 8; p++ {
			if hist[p] > 0 {
				fmt.Printf("  %-12s %d\n", p, hist[p])
			}
		}
	}
}
