// Command cmpsim runs a single CMP simulation and prints its metrics.
//
// Usage:
//
//	cmpsim -bench zeus -cores 8 -compress -prefetch -adaptive \
//	       -instr 300000 -warmup 300000 -bw 20 -seed 1
//
// -bw 0 models infinite pin bandwidth (the paper's bandwidth-demand
// measurement mode). -prefetcher selects the engine from the prefetch
// registry (stride, sequential, stream, markov) and -workload overrides
// the benchmark's reference-source kind (e.g. forcing ptrchase onto a
// commercial profile).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"cmpsim/internal/audit"
	"cmpsim/internal/codec"
	"cmpsim/internal/coherence"
	"cmpsim/internal/prefetch"
	"cmpsim/internal/report"
	"cmpsim/internal/sim"
	"cmpsim/internal/workload"
)

// usageErr reports a bad flag value the way bad arguments are reported:
// the message plus the usage text, exit status 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmpsim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmpsim: ")

	var pfKind string
	flag.StringVar(&pfKind, "prefetcher",
		prefetch.DefaultName, "prefetch engine: "+strings.Join(prefetch.Names(), ", "))
	flag.StringVar(&pfKind, "pf-kind", prefetch.DefaultName, "alias for -prefetcher")
	var (
		bench    = flag.String("bench", "zeus", "benchmark: "+strings.Join(workload.Names(), ", "))
		source   = flag.String("workload", "", "reference-source kind override: "+strings.Join(workload.SourceNames(), ", ")+" (default: the benchmark's own)")
		cores    = flag.Int("cores", 8, "number of processor cores")
		seed     = flag.Int64("seed", 1, "workload seed")
		instr    = flag.Uint64("instr", 300_000, "measured instructions per core")
		warmup   = flag.Uint64("warmup", 300_000, "warmup instructions per core")
		cacheC   = flag.Bool("cache-compress", false, "enable L2 cache compression")
		linkC    = flag.Bool("link-compress", false, "enable link compression")
		compress = flag.Bool("compress", false, "enable both cache and link compression")
		codecN   = flag.String("codec", "", "compression codec: fpc (paper default), bdi, zca or cpack")
		pf       = flag.Bool("prefetch", false, "enable prefetching (see -prefetcher)")
		adaptive = flag.Bool("adaptive", false, "enable adaptive prefetch throttling")
		bwGBps   = flag.Float64("bw", 20, "pin bandwidth in GB/s (0 = infinite)")
		l2MB     = flag.Int("l2mb", 4, "shared L2 size in MB")
		l1depth  = flag.Int("l1depth", 0, "override L1 startup prefetch depth (0 = paper default 6)")
		l2depth  = flag.Int("l2depth", 0, "override L2 startup prefetch depth (0 = paper default 25)")
		timeline = flag.String("timeline", "", "export the interval timeline to PREFIX.jsonl and PREFIX.csv")
		interval = flag.Uint64("interval", 0, "telemetry interval in aggregate instructions (0 = auto: 1/50 of the window when -timeline is set)")
		check    = flag.String("check", "", "runtime self-checking: off, invariants or shadow (default: the CMPSIM_CHECK environment variable)")
		shards   = flag.Int("shards", 0, "reference-generation worker goroutines (0 or 1 = inline; metrics are identical for any value)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file after the run")
		verbose  = flag.Bool("v", false, "print the full metric breakdown")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cmpsim: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	// Validate every flag up front: one clear error beats a panic (or a
	// silently meaningless run) deep inside the simulator. Name-typo
	// errors (benchmark, prefetcher, reference source) are usage errors —
	// they list the registered names and exit 2 like any bad argument.
	if _, err := workload.ByName(*bench); err != nil {
		usageErr("-bench: %v", err)
	}
	if _, err := prefetch.ByName(pfKind); err != nil {
		usageErr("-prefetcher: %v", err)
	}
	if *source != "" && !workload.SourceRegistered(*source) {
		usageErr("-workload %q unknown (have %v)", *source, workload.SourceNames())
	}
	if *cores < 1 || *cores > 32 {
		log.Fatalf("-cores %d out of range [1, 32]", *cores)
	}
	if *instr == 0 {
		log.Fatal("-instr must be positive")
	}
	if *bwGBps < 0 {
		log.Fatalf("-bw %g must be >= 0 (0 = infinite pins)", *bwGBps)
	}
	if *l2MB < 1 {
		log.Fatalf("-l2mb %d must be positive", *l2MB)
	}
	if *l1depth < 0 || *l2depth < 0 {
		log.Fatal("-l1depth and -l2depth must be >= 0")
	}
	if *shards < 0 {
		log.Fatalf("-shards %d must be >= 0", *shards)
	}
	cdc, err := codec.ByName(*codecN)
	if err != nil {
		log.Fatalf("-codec: %v", err)
	}
	checkLevel, err := audit.ParseLevel(*check)
	if err != nil {
		log.Fatalf("-check: %v", err)
	}

	cfg := sim.NewConfig(*bench)
	cfg.Cores = *cores
	cfg.Seed = *seed
	cfg.MeasureInstr = *instr
	cfg.WarmupInstr = *warmup
	cfg.CacheCompression = *cacheC || *compress
	cfg.Codec = *codecN
	if cdc.Name() != codec.DefaultName {
		cfg.DecompressionCycles = cdc.DecompressionCycles()
	}
	cfg.LinkCompression = *linkC || *compress
	cfg.Prefetching = *pf || *adaptive
	cfg.AdaptivePrefetch = *adaptive
	cfg.L2Bytes = *l2MB << 20
	cfg.L1PrefetchDepth = *l1depth
	cfg.L2PrefetchDepth = *l2depth
	if pfKind != prefetch.DefaultName {
		cfg.PrefetcherKind = pfKind
	}
	cfg.RefSource = *source
	cfg.Memory.LinkBytesPerCycle = *bwGBps / cfg.ClockGHz
	cfg.TelemetryInterval = *interval
	cfg.Shards = *shards
	if *check != "" {
		cfg.CheckLevel = checkLevel // explicit flag overrides CMPSIM_CHECK
	}
	if *timeline != "" && cfg.TelemetryInterval == 0 {
		cfg.TelemetryInterval = cfg.MeasureInstr * uint64(cfg.Cores) / 50
		if cfg.TelemetryInterval == 0 {
			cfg.TelemetryInterval = 1
		}
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
	}
	m, err := sim.Run(cfg)
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		log.Fatal(err)
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		f.Close()
	}
	printMetrics(os.Stdout, m, *verbose)
	if *timeline != "" {
		if err := exportTimeline(*timeline, m); err != nil {
			log.Fatal(err)
		}
	}
}

// exportTimeline writes the run's timeline as prefix.jsonl + prefix.csv.
func exportTimeline(prefix string, m sim.Metrics) error {
	meta := report.TimelineMeta{Benchmark: m.Benchmark, Label: m.Label, Seed: m.Seed}
	for ext, write := range map[string]func(io.Writer) error{
		".jsonl": func(w io.Writer) error { return report.TimelineJSONL(w, meta, m.Timeline) },
		".csv":   func(w io.Writer) error { return report.TimelineCSV(w, meta, m.Timeline) },
	} {
		f, err := os.Create(prefix + ext)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cmpsim: wrote %d timeline samples to %s.jsonl and %s.csv\n",
		len(m.Timeline), prefix, prefix)
	return nil
}

func printMetrics(w *os.File, m sim.Metrics, verbose bool) {
	fmt.Fprintf(w, "benchmark      %s (%s, %d cores, seed %d)\n", m.Benchmark, m.Label, m.Cores, m.Seed)
	fmt.Fprintf(w, "instructions   %d\n", m.Instructions)
	fmt.Fprintf(w, "runtime        %.0f cycles (%.3g s at 5 GHz)\n", m.Cycles, m.Seconds)
	fmt.Fprintf(w, "IPC            %.3f aggregate (%.3f per core)\n", m.IPC, m.IPC/float64(m.Cores))
	fmt.Fprintf(w, "L2             %d accesses, %d misses (%.1f%%, %.2f per KI)\n",
		m.L2Accesses, m.L2Misses, m.L2MissRate*100, m.L2MissesPerKI)
	fmt.Fprintf(w, "bandwidth      %.2f GB/s demand, %.0f%% link utilization\n",
		m.BandwidthGBps, m.LinkUtilization*100)
	fmt.Fprintf(w, "compression    ratio %.2f (effective %.2f MB), %d compressed hits\n",
		m.CompressionRatio, m.EffectiveL2Bytes/(1<<20), m.L2CompressedHits)
	if verbose {
		fmt.Fprintf(w, "L1I            %d accesses, %d misses (%.2f%%)\n",
			m.L1IAccesses, m.L1IMisses, pct(m.L1IMisses, m.L1IAccesses))
		fmt.Fprintf(w, "L1D            %d accesses, %d misses (%.2f%%)\n",
			m.L1DAccesses, m.L1DMisses, pct(m.L1DMisses, m.L1DAccesses))
		fmt.Fprintf(w, "mem            %d fetches, %d writebacks, %d bytes\n",
			m.MemFetches, m.MemWritebacks, m.OffChipBytes)
		fmt.Fprintf(w, "queueing       link %.0f cycles, DRAM %.0f cycles (measurement window)\n",
			m.LinkQueueDelay, m.DRAMQueueDelay)
		fmt.Fprintf(w, "L2 evictions   %d total, %d useless-prefetch\n",
			m.L2Evictions, m.L2UselessPfEvictions)
		fmt.Fprintf(w, "coherence      %d upgrades, %d dirty forwards, %d invalidations\n",
			m.StoreUpgrades, m.DirtyForwards, m.Invalidations)
		fmt.Fprintf(w, "mean L2 hit    %.2f cycles\n", m.MeanL2HitLatency)
		for _, src := range []coherence.PfSource{coherence.PfL1I, coherence.PfL1D, coherence.PfL2} {
			e := m.Engine(src)
			fmt.Fprintf(w, "pf %-4s        rate %.2f/KI  coverage %.1f%%  accuracy %.1f%%  (issued %d, hits %d, partial %d, redundant %d, streams %d)\n",
				src, e.RatePer1000(m.Instructions), e.Coverage()*100, e.Accuracy()*100,
				e.Prefetches, e.PrefetchHits, e.PartialHits, e.Redundant, e.StreamAllocs)
		}
		fmt.Fprintf(w, "adaptive       useful %d, useless %d, harmful %d; final caps L1I %.1f L1D %.1f L2 %d\n",
			m.Adaptive.Useful, m.Adaptive.Useless, m.Adaptive.Harmful,
			m.Adaptive.FinalCapL1I, m.Adaptive.FinalCapL1D, m.Adaptive.FinalCapL2)
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
